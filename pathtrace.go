// Package pathtrace is a from-scratch reproduction of "Path-Based Next
// Trace Prediction" (Quinn Jacobson, Eric Rotenberg, James E. Smith;
// MICRO-30, 1997) — the trace-cache front-end predictor that treats
// traces as the unit of prediction and predicts the next trace from a
// path history of hashed trace identifiers.
//
// The package is a façade over the implementation packages:
//
//   - predictors: the correlated path-based predictor, the hybrid
//     predictor with its secondary table and update filter, the Return
//     History Stack, alternate trace prediction, cost-reduced tables,
//     and unbounded-table idealisations;
//   - the substrate the evaluation needs: a MIPS-like ISA (PT32), an
//     assembler, a functional simulator, a trace selector, conventional
//     branch predictors (GSHARE/GAg/bimodal, BTB, RAS, indirect target
//     cache) composing the paper's sequential baseline, a trace cache,
//     and a simplified out-of-order engine for the delayed-update study;
//   - six workloads standing in for the paper's SPECint95 benchmarks;
//   - an experiment harness regenerating every table and figure.
//
// # Quick start
//
//	w, _ := pathtrace.WorkloadByName("compress")
//	p := pathtrace.MustNewPredictor(pathtrace.PredictorConfig{
//		Depth: 7, IndexBits: 16, Hybrid: true, UseRHS: true,
//	})
//	pathtrace.RunWorkload(w, 1_000_000, func(tr *pathtrace.Trace) {
//		p.Predict()
//		p.Update(tr)
//	})
//	fmt.Printf("misprediction: %.2f%%\n", p.Stats().MissRate())
//
// See the examples directory for runnable programs and EXPERIMENTS.md
// for the paper-versus-measured record.
package pathtrace

import (
	"pathtrace/internal/asm"
	"pathtrace/internal/branchpred"
	"pathtrace/internal/cc"
	"pathtrace/internal/charz"
	"pathtrace/internal/engine"
	"pathtrace/internal/experiments"
	"pathtrace/internal/faults"
	"pathtrace/internal/harness"
	"pathtrace/internal/history"
	"pathtrace/internal/metrics"
	"pathtrace/internal/predictor"
	"pathtrace/internal/sim"
	"pathtrace/internal/stream"
	"pathtrace/internal/trace"
	"pathtrace/internal/tracecache"
	"pathtrace/internal/workload"
)

// Core predictor API.
type (
	// Predictor is any next-trace predictor variant (basic correlated,
	// hybrid, unbounded) under the immediate-update protocol.
	Predictor = predictor.NextTracePredictor
	// PredictorConfig selects and sizes a bounded predictor.
	PredictorConfig = predictor.Config
	// UnboundedConfig selects an unbounded-table idealisation.
	UnboundedConfig = predictor.UnboundedConfig
	// HybridPredictor exposes the lower-level speculative API used by
	// the execution engine.
	HybridPredictor = predictor.Hybrid
	// Prediction is a predictor's output for the next trace.
	Prediction = predictor.Prediction
	// PredictorStats are accuracy counters.
	PredictorStats = predictor.Stats
	// DOLC is the Depth-Older-Last-Current index-generation config.
	DOLC = history.DOLC
	// ConfidentPredictor pairs a hybrid with a JRS resetting-counter
	// confidence estimator.
	ConfidentPredictor = predictor.Confident
	// ConfidentConfig sizes the confidence estimator.
	ConfidentConfig = predictor.ConfidentConfig
	// ConfStats are confidence-quality counters.
	ConfStats = predictor.ConfStats
)

// Trace machinery.
type (
	// Trace is one selected instruction trace.
	Trace = trace.Trace
	// TraceID is the 36-bit trace identifier (start PC + outcomes).
	TraceID = trace.ID
	// HashedID is the 10-bit hashed trace identifier.
	HashedID = trace.HashedID
	// TraceBranch records one control-flow instruction inside a trace.
	TraceBranch = trace.Branch
	// TraceConfig controls trace selection.
	TraceConfig = trace.Config
	// TraceSelector partitions an instruction stream into traces.
	TraceSelector = trace.Selector
)

// Substrate.
type (
	// Program is an assembled PT32 executable image.
	Program = asm.Program
	// CPU is the PT32 functional simulator.
	CPU = sim.CPU
	// Retired is one retired instruction record.
	Retired = sim.Retired
	// Workload is one of the six benchmarks.
	Workload = workload.Workload
	// SequentialBaseline is the idealized multiple-branch baseline.
	SequentialBaseline = branchpred.Sequential
	// SequentialConfig sizes the baseline.
	SequentialConfig = branchpred.SequentialConfig
	// TraceCache models the trace cache fed by the predictor.
	TraceCache = tracecache.Cache
	// TraceCacheConfig sizes the trace cache.
	TraceCacheConfig = tracecache.Config
	// Engine is the delayed-update out-of-order model.
	Engine = engine.Engine
	// EngineConfig sizes the engine.
	EngineConfig = engine.Config
	// EngineResult is an engine run's outcome.
	EngineResult = engine.Result
)

// Experiments.
type (
	// Experiment regenerates one paper table or figure.
	Experiment = experiments.Experiment
	// ExperimentOptions control budget and workload selection.
	ExperimentOptions = experiments.Options
	// ExperimentResult is rendered text plus key metrics.
	ExperimentResult = experiments.Result
)

// Robustness: fault injection and the hardened harness.
type (
	// FaultConfig is a deterministic fault-injection plan.
	FaultConfig = faults.Config
	// FaultInjector draws faults from a plan; give each predictor its
	// own injector (they are not safe for concurrent use).
	FaultInjector = faults.Injector
	// FaultStats counts injected faults per class.
	FaultStats = faults.Stats
	// HarnessConfig controls a hardened sweep (deadlines, panic
	// recovery, keep-going, per-workload cells).
	HarnessConfig = harness.Config
	// HarnessReport is a sweep's outcome, cell by cell.
	HarnessReport = harness.Report
	// HarnessCell names one (experiment, workload) unit of work.
	HarnessCell = harness.Cell
	// HarnessCellResult is one cell's outcome.
	HarnessCellResult = harness.CellResult
	// RunError is a structured per-cell failure.
	RunError = harness.RunError
)

// Observability.
type (
	// MetricsRegistry holds named counters, gauges and histograms and
	// renders the Prometheus text exposition format. Give one to
	// HarnessConfig.Metrics (or serve it from ntpd's admin listener) to
	// export live counters.
	MetricsRegistry = metrics.Registry
	// MetricsHistogram is a fixed-bucket log-scale latency histogram
	// with exact max tracking and nearest-rank quantile reads.
	MetricsHistogram = metrics.Histogram
	// MetricsLabels are a series' constant labels.
	MetricsLabels = metrics.Labels
)

// NewMetricsRegistry returns an empty metrics registry.
func NewMetricsRegistry() *MetricsRegistry { return metrics.NewRegistry() }

// MetricsContentType is the HTTP Content-Type for rendered metrics.
const MetricsContentType = metrics.ContentType

// PredictorBackend describes one registered predictor backend: its
// name (PredictorConfig.Backend), family, constructor and optional
// save/restore codec (see internal/predictor's registry).
type PredictorBackend = predictor.Backend

// PredictorBackends lists every registered backend, sorted by name.
func PredictorBackends() []PredictorBackend { return predictor.Backends() }

// PredictorBackendByName finds a registered backend.
func PredictorBackendByName(name string) (PredictorBackend, bool) {
	return predictor.BackendByName(name)
}

// NewPredictor builds the predictor variant selected by cfg.
func NewPredictor(cfg PredictorConfig) (Predictor, error) { return predictor.New(cfg) }

// MustNewPredictor is NewPredictor for static configurations.
func MustNewPredictor(cfg PredictorConfig) Predictor { return predictor.MustNew(cfg) }

// PredictBatch runs one full Predict/Update round per trace of actuals
// against p, bit-identically to the scalar loop: the paper backends
// run a native struct-of-arrays batch sweep, other backends fall back
// to scalar rounds. When preds is non-nil (at least len(actuals)
// long), preds[i] receives the prediction made before actuals[i] was
// revealed. Returns the batch's correct-prediction count.
func PredictBatch(p Predictor, actuals []Trace, preds []Prediction) uint64 {
	return predictor.PredictBatch(p, actuals, preds)
}

// UpdateBatch is PredictBatch without materializing predictions.
func UpdateBatch(p Predictor, actuals []Trace) uint64 {
	return predictor.UpdateBatch(p, actuals)
}

// NewUnboundedPredictor builds an unbounded-table predictor (§5.2).
func NewUnboundedPredictor(cfg UnboundedConfig) (Predictor, error) {
	return predictor.NewUnbounded(cfg)
}

// NewHybridPredictor builds a hybrid with the speculative lower-level
// API (Lookup/CommitUpdate/Advance/Checkpoint/Restore).
func NewHybridPredictor(cfg PredictorConfig) (*HybridPredictor, error) {
	return predictor.NewHybrid(cfg)
}

// NewConfidentPredictor wraps a hybrid predictor with the JRS
// resetting-counter confidence estimator.
func NewConfidentPredictor(cfg ConfidentConfig) (*ConfidentPredictor, error) {
	return predictor.NewConfident(cfg)
}

// NewSequentialBaseline builds the paper's idealized sequential
// multiple-branch predictor (§5.1).
func NewSequentialBaseline(cfg SequentialConfig) (*SequentialBaseline, error) {
	return branchpred.NewSequential(cfg)
}

// NewTraceCache builds a trace cache model.
func NewTraceCache(cfg TraceCacheConfig) (*TraceCache, error) { return tracecache.New(cfg) }

// DefaultTraceCacheConfig is the 64KB, 4-way geometry.
func DefaultTraceCacheConfig() TraceCacheConfig { return tracecache.DefaultConfig() }

// NewEngine wraps a hybrid predictor in the delayed-update engine.
func NewEngine(cfg EngineConfig, p *HybridPredictor) (*Engine, error) { return engine.New(cfg, p) }

// DefaultEngineConfig is the paper's 8-wide, 64-entry-window machine.
func DefaultEngineConfig() EngineConfig { return engine.DefaultConfig() }

// Assemble translates PT32 assembly into an executable Program.
func Assemble(source string) (*Program, error) { return asm.Assemble(source) }

// CompilePTC compiles PTC (the small C-like language in internal/cc)
// to PT32 assembly text.
func CompilePTC(source string) (string, error) { return cc.Compile(source) }

// CompilePTCProgram compiles PTC source all the way to an executable
// image.
func CompilePTCProgram(source string) (*Program, error) { return cc.CompileProgram(source) }

// IsProgramImage reports whether the bytes are a serialised program
// image (as written by Program.WriteImage / ptasm -o).
func IsProgramImage(b []byte) bool { return asm.IsImage(b) }

// DecodeProgramImage deserialises a program image.
func DecodeProgramImage(b []byte) (*Program, error) { return asm.DecodeImage(b) }

// NewCPU loads a program into a fresh functional simulator.
func NewCPU(p *Program) (*CPU, error) { return sim.New(p) }

// NewTraceSelector builds a trace selector; emit is invoked per trace
// (the *Trace is reused — copy to retain).
func NewTraceSelector(cfg TraceConfig, emit func(*Trace)) (*TraceSelector, error) {
	return trace.NewSelector(cfg, emit)
}

// DefaultTraceConfig is the paper's 16-instruction / 6-branch selection.
func DefaultTraceConfig() TraceConfig { return trace.DefaultConfig() }

// StandardDOLC returns the index-generation configuration used by the
// evaluation for a given table index width and history depth (Table 3).
func StandardDOLC(indexBits, depth int) DOLC { return history.StandardDOLC(indexBits, depth) }

// Workloads returns every first-class workload: the six benchmarks in
// the paper's order followed by the synthetic adversarial zoo. The
// paper exhibits default to just the six (their tables reproduce the
// paper); naming a zoo member with -workloads pulls it into any
// experiment, the harness, stream capture, and loadgen.
func Workloads() []*Workload { return append(workload.All(), workload.Zoo()...) }

// WorkloadZoo returns the registered synthetic adversarial workloads
// (wild, storm, phase, band-lo, band-hi), sorted by name. Each is
// seed-deterministic and carries its generator parameterization in
// Params, so stream-cache keys never collide across variants.
func WorkloadZoo() []*Workload { return workload.Zoo() }

// WorkloadByName finds a workload by name: a benchmark (compress, gcc,
// go, jpeg, mksim, xlisp) or a zoo member (see WorkloadZoo).
func WorkloadByName(name string) (*Workload, bool) { return workload.ByName(name) }

// RunWorkload simulates a workload for up to limit instructions,
// feeding every selected trace to each consumer. It returns the
// instruction and trace counts.
func RunWorkload(w *Workload, limit uint64, consumers ...func(*Trace)) (instrs, traces uint64, err error) {
	return experiments.StreamTraces(w, limit, consumers...)
}

// Trace-stream capture and replay.
type (
	// TraceStream is a workload's captured selected-trace sequence:
	// simulate once, replay through any number of predictor
	// configurations (allocation-free at steady state).
	TraceStream = stream.Stream
	// TraceStreamKey identifies a captured stream: workload, instruction
	// limit, and trace-selection config.
	TraceStreamKey = stream.Key
	// StreamCache is a keyed, concurrency-safe store of captured
	// streams with single-flight capture per key.
	StreamCache = stream.Cache
	// StreamCacheStats describes a cache's activity and footprint.
	StreamCacheStats = stream.CacheStats
)

// CaptureTraceStream simulates the workload for up to limit
// instructions under the default trace-selection limits and records the
// selected-trace sequence for replay.
func CaptureTraceStream(w *Workload, limit uint64) (*TraceStream, error) {
	return stream.Capture(nil, w, limit, trace.DefaultConfig())
}

// NewStreamCache returns an empty trace-stream cache.
func NewStreamCache() *StreamCache { return stream.NewCache() }

// SharedStreamCache returns the process-wide stream cache used by
// every experiment run that does not supply its own — useful for
// inspecting footprint (Stats) or dropping recordings (Reset).
func SharedStreamCache() *StreamCache { return experiments.DefaultStreamCache }

// Workload characterization (internal/charz).
type (
	// CharzConfig parameterizes a predictability analysis: history
	// depths, H2P coverage target, reference predictor.
	CharzConfig = charz.Config
	// CharzAnalyzer accumulates predictability metrics over one trace
	// stream; its Consume method is a stream consumer.
	CharzAnalyzer = charz.Analyzer
	// CharzReport is the characterization of one stream: entropy,
	// transition classes, per-depth working sets, H2P trace set. It
	// renders as text (Text), JSON (encoding/json), or metrics
	// (Export).
	CharzReport = charz.Report
	// CharzDepthStats characterizes one path-history depth.
	CharzDepthStats = charz.DepthStats
)

// NewCharzAnalyzer builds a predictability analyzer; the zero config
// gives the standard characterization (paper depths, 90% H2P coverage,
// headline hybrid as the reference predictor).
func NewCharzAnalyzer(cfg CharzConfig) (*CharzAnalyzer, error) { return charz.New(cfg) }

// AnalyzeTraceStream characterizes a captured stream: replay through a
// fresh analyzer, report stamped with the stream's identity.
func AnalyzeTraceStream(s *TraceStream, cfg CharzConfig) (*CharzReport, error) {
	return charz.Analyze(nil, s, cfg)
}

// ParseFaultSpec parses an -inject style fault specification such as
// "table:1e-4,history:1e-5,stuck,bits:2".
func ParseFaultSpec(spec string) (FaultConfig, error) { return faults.ParseSpec(spec) }

// NewFaultInjector builds a deterministic injector for the plan.
func NewFaultInjector(cfg FaultConfig) *FaultInjector { return faults.New(cfg) }

// RunHarness sweeps experiments as isolated, deadline-bounded cells and
// returns the full report (partial results plus structured failures).
func RunHarness(cfg HarnessConfig, exps []Experiment) (*HarnessReport, error) {
	return harness.Run(cfg, exps)
}

// RegisterExperiment adds an experiment at runtime (panics on a
// duplicate id), the hook for extensions and harness tests.
func RegisterExperiment(e Experiment) { experiments.Register(e) }

// HangWorkload registers (on first call) and returns the deliberately
// hanging synthetic workload used to exercise harness deadlines.
func HangWorkload() *Workload { return workload.Hang() }

// Experiments lists every registered experiment (tables, figures,
// ablations) in paper order.
func Experiments() []Experiment { return experiments.All() }

// ExperimentByName finds an experiment by id (e.g. "fig7").
func ExperimentByName(name string) (Experiment, bool) { return experiments.ByName(name) }

// RunExperiment regenerates one table or figure.
func RunExperiment(name string, opt ExperimentOptions) (*ExperimentResult, error) {
	e, ok := experiments.ByName(name)
	if !ok {
		return nil, errUnknownExperiment(name)
	}
	return e.Run(opt)
}

type errUnknownExperiment string

func (e errUnknownExperiment) Error() string {
	return "pathtrace: unknown experiment " + string(e)
}
