// Command ntpstat turns two /metrics snapshots of a running ntpd into
// a one-page fleet-health summary: traffic and rejection rates,
// per-op latency quantiles (merged across shards), per-backend
// accuracy, per-client accounting, and crash-safety counters — the
// ops-eye view of a prediction fleet over a window, rather than
// since-boot totals.
//
// Live (scrape the admin plane twice):
//
//	ntpstat -addr 127.0.0.1:9192                # default 2s window
//	ntpstat -addr 127.0.0.1:9192 -interval 10s
//
// Offline (diff two saved scrapes; the window length is recovered
// from the ntpd_uptime_seconds gauge, so plain `curl > f.prom` pairs
// work):
//
//	curl -s http://host:9192/metrics > before.prom
//	... let traffic run ...
//	curl -s http://host:9192/metrics > after.prom
//	ntpstat before.prom after.prom
//
// Counters are diffed (rates over the window); gauges are read from
// the second snapshot (current state). Client lines are key=value so
// fleet checks can grep them, e.g.:
//
//	ntpstat before.prom after.prom | grep -E 'client=victim .*throttled=0'
package main

import (
	"flag"
	"fmt"
	"io"
	"math"
	"net/http"
	"os"
	"sort"
	"strconv"
	"time"

	"pathtrace/internal/metrics"
)

func main() { os.Exit(run()) }

func run() int {
	addr := flag.String("addr", "", "ntpd admin address (host:port) to scrape live")
	interval := flag.Duration("interval", 2*time.Second, "live mode: window between the two scrapes")
	flag.Parse()

	var before, after *metrics.Snapshot
	var dt float64
	var err error
	switch {
	case *addr != "" && flag.NArg() == 0:
		before, after, dt, err = scrapeWindow(*addr, *interval)
	case *addr == "" && flag.NArg() == 2:
		before, after, dt, err = loadWindow(flag.Arg(0), flag.Arg(1))
	default:
		fmt.Fprintln(os.Stderr, "usage: ntpstat -addr host:port [-interval 2s]  |  ntpstat before.prom after.prom")
		return 2
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "ntpstat: %v\n", err)
		return 1
	}
	report(os.Stdout, before, after, dt)
	return 0
}

func scrapeWindow(addr string, interval time.Duration) (before, after *metrics.Snapshot, dt float64, err error) {
	before, err = scrape(addr)
	if err != nil {
		return nil, nil, 0, err
	}
	time.Sleep(interval)
	after, err = scrape(addr)
	if err != nil {
		return nil, nil, 0, err
	}
	return before, after, interval.Seconds(), nil
}

func scrape(addr string) (*metrics.Snapshot, error) {
	c := &http.Client{Timeout: 10 * time.Second}
	resp, err := c.Get("http://" + addr + "/metrics")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 256))
		return nil, fmt.Errorf("scrape %s: %s: %s", addr, resp.Status, body)
	}
	return metrics.ParseText(resp.Body)
}

func loadWindow(beforePath, afterPath string) (before, after *metrics.Snapshot, dt float64, err error) {
	before, err = loadFile(beforePath)
	if err != nil {
		return nil, nil, 0, err
	}
	after, err = loadFile(afterPath)
	if err != nil {
		return nil, nil, 0, err
	}
	// The window length lives in the snapshots themselves: ntpd exports
	// its uptime, and both scrapes came from one process (a restart
	// between them would make every counter diff a lie anyway).
	u0, ok0 := before.Value("ntpd_uptime_seconds", nil)
	u1, ok1 := after.Value("ntpd_uptime_seconds", nil)
	if !ok0 || !ok1 {
		return nil, nil, 0, fmt.Errorf("snapshots carry no ntpd_uptime_seconds; not an ntpd /metrics scrape?")
	}
	dt = u1 - u0
	if dt <= 0 {
		return nil, nil, 0, fmt.Errorf("uptime went %gs -> %gs; snapshots swapped or server restarted", u0, u1)
	}
	return before, after, dt, nil
}

func loadFile(path string) (*metrics.Snapshot, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return metrics.ParseText(f)
}

// report renders the one-page summary.
func report(w io.Writer, before, after *metrics.Snapshot, dt float64) {
	d := func(name string, match metrics.Labels) float64 {
		return after.Sum(name, match) - before.Sum(name, match)
	}
	rate := func(v float64) string { return humanRate(v / dt) }

	uptime, _ := after.Value("ntpd_uptime_seconds", nil)
	draining, _ := after.Value("ntpd_draining", nil)
	drainStr := "no"
	if draining > 0 {
		drainStr = "YES"
	}
	fmt.Fprintf(w, "ntpd fleet health — %.1fs window (uptime %.1fs, draining %s)\n\n",
		dt, uptime, drainStr)

	// Traffic.
	reqs := d("ntpd_requests_total", nil)
	traces := d("ntpd_shard_traces_total", nil)
	frames := d("ntpd_batch_frames_total", nil)
	avgBatch := 0.0
	if frames > 0 {
		avgBatch = d("ntpd_batch_size_sum", nil) / frames
	}
	fmt.Fprintf(w, "traffic    requests %s   traces %s   batch frames %s   avg batch %.1f\n",
		rate(reqs), rate(traces), rate(frames), avgBatch)

	// Health: every rejection class, as window rates.
	fmt.Fprintf(w, "health     overloads %s   throttled %s   drain_rejects %s   bad_frames %s   dup_updates %s\n",
		rate(d("ntpd_shard_overload_rejects_total", nil)),
		rate(d("ntpd_throttled_total", nil)),
		rate(d("ntpd_drain_rejects_total", nil)),
		rate(d("ntpd_bad_frames_total", nil)),
		rate(d("ntpd_update_dups_total", nil)))

	// Fleet shape (gauges: current state).
	sessions := after.Sum("ntpd_shard_sessions", nil)
	conns, _ := after.Value("ntpd_connections_active", nil)
	tags, _ := after.Value("ntpd_client_tags", nil)
	shards := len(after.LabelValues("ntpd_shard_requests_total", "shard"))
	fmt.Fprintf(w, "fleet      %d shards   %.0f sessions   %.0f conns   %.0f client tags\n",
		shards, sessions, conns, tags)

	// Accuracy per backend/role over the window.
	accuracyLines(w, before, after)

	// Per-op latency quantiles from histogram bucket deltas.
	latencyLines(w, before, after)

	// Crash safety, only when the counters moved or exist nonzero.
	ck := d("ntpd_checkpoint_written_total", nil)
	ckErr := d("ntpd_checkpoint_write_errors_total", nil)
	restored, _ := after.Value("ntpd_checkpoint_restored_sessions", nil)
	if ck > 0 || ckErr > 0 || restored > 0 {
		fmt.Fprintf(w, "ckpt       written %.0f   errors %.0f   restored %.0f\n", ck, ckErr, restored)
	}

	clientLines(w, before, after, dt)
}

// accuracyLines prints one accuracy entry per (backend, role), summed
// across shards, computed over the window.
func accuracyLines(w io.Writer, before, after *metrics.Snapshot) {
	type key struct{ backend, role string }
	seen := map[key]bool{}
	var keys []key
	after.Each("ntpd_backend_rounds_total", nil, func(l metrics.Labels, _ float64) {
		k := key{l["backend"], l["role"]}
		if !seen[k] {
			seen[k] = true
			keys = append(keys, k)
		}
	})
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].role != keys[j].role {
			return keys[i].role < keys[j].role // primary before shadow
		}
		return keys[i].backend < keys[j].backend
	})
	line := "accuracy  "
	n := 0
	for _, k := range keys {
		match := metrics.Labels{"backend": k.backend, "role": k.role}
		rounds := after.Sum("ntpd_backend_rounds_total", match) - before.Sum("ntpd_backend_rounds_total", match)
		if rounds <= 0 {
			continue
		}
		correct := after.Sum("ntpd_backend_correct_total", match) - before.Sum("ntpd_backend_correct_total", match)
		line += fmt.Sprintf(" %s/%s %.2f%% correct (%s rounds)  ", k.backend, k.role, 100*correct/rounds, humanCount(rounds))
		n++
	}
	if n > 0 {
		fmt.Fprintln(w, line)
	}
}

// latencyLines prints p50/p99 per op over the window, merging the
// per-shard ntpd_shard_op_seconds histograms: each series' cumulative
// buckets are de-cumulated, diffed against the earlier snapshot, and
// the increments merged into one global distribution per op.
func latencyLines(w io.Writer, before, after *metrics.Snapshot) {
	for _, op := range after.LabelValues("ntpd_shard_op_seconds_bucket", "op") {
		match := metrics.Labels{"op": op}
		count := after.Sum("ntpd_shard_op_seconds_count", match) - before.Sum("ntpd_shard_op_seconds_count", match)
		if count <= 0 {
			continue
		}
		merged := bucketDeltas(before, after, "ntpd_shard_op_seconds_bucket", match)
		p50 := quantile(merged, 0.50)
		p99 := quantile(merged, 0.99)
		fmt.Fprintf(w, "latency    %-13s p50 %-9s p99 %-9s (%s reqs)\n",
			op, humanSeconds(p50), humanSeconds(p99), humanCount(count))
	}
}

// bucket is one upper bound and the (windowed, merged) count under it.
type bucket struct {
	le    float64
	count float64
}

// bucketDeltas merges every matching histogram series into one global
// windowed bucket set: per series, de-cumulate the sorted buckets of
// each snapshot, subtract, and accumulate the increments by le. A
// series absent from the earlier snapshot (a shard or client that
// appeared mid-window) contributes its full counts.
func bucketDeltas(before, after *metrics.Snapshot, name string, match metrics.Labels) []bucket {
	type seriesKey string
	perSeries := map[seriesKey][]bucket{}
	keyOf := func(l metrics.Labels) seriesKey {
		// Identify a series by its non-le labels, rendered sorted.
		keys := make([]string, 0, len(l))
		for k := range l {
			if k != "le" {
				keys = append(keys, k)
			}
		}
		sort.Strings(keys)
		s := ""
		for _, k := range keys {
			s += k + "=" + l[k] + ","
		}
		return seriesKey(s)
	}
	collect := func(snap *metrics.Snapshot, sign float64) {
		snap.Each(name, match, func(l metrics.Labels, v float64) {
			le := math.Inf(1)
			if s := l["le"]; s != "+Inf" {
				f, err := strconv.ParseFloat(s, 64)
				if err != nil {
					return
				}
				le = f
			}
			k := keyOf(l)
			perSeries[k] = append(perSeries[k], bucket{le: le, count: sign * v})
		})
	}
	collect(after, 1)
	collect(before, -1)

	global := map[float64]float64{}
	for _, bs := range perSeries {
		// Net cumulative count per le for this series, then de-cumulate.
		byLe := map[float64]float64{}
		for _, b := range bs {
			byLe[b.le] += b.count
		}
		les := make([]float64, 0, len(byLe))
		for le := range byLe {
			les = append(les, le)
		}
		sort.Float64s(les)
		prev := 0.0
		for _, le := range les {
			cum := byLe[le]
			if inc := cum - prev; inc > 0 {
				global[le] += inc
			}
			prev = cum
		}
	}
	out := make([]bucket, 0, len(global))
	for le, c := range global {
		out = append(out, bucket{le: le, count: c})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].le < out[j].le })
	return out
}

// quantile is the nearest-rank read off merged bucket increments: the
// upper bound of the bucket holding the q-th sample. Never below the
// true sample quantile.
func quantile(bs []bucket, q float64) float64 {
	var total float64
	for _, b := range bs {
		total += b.count
	}
	if total == 0 {
		return 0
	}
	rank := math.Ceil(q * total)
	if rank < 1 {
		rank = 1
	}
	var cum float64
	for _, b := range bs {
		cum += b.count
		if cum >= rank {
			return b.le
		}
	}
	return bs[len(bs)-1].le
}

// clientLines prints one key=value line per client tag, diffed over
// the window — the fairness readout. key=value so fleet checks can
// grep a tag's throttle/overload counts directly.
func clientLines(w io.Writer, before, after *metrics.Snapshot, dt float64) {
	tags := after.LabelValues("ntpd_client_requests_total", "client")
	if len(tags) == 0 {
		return
	}
	fmt.Fprintln(w)
	for _, tag := range tags {
		match := metrics.Labels{"client": tag}
		d := func(name string) float64 {
			return after.Sum(name, match) - before.Sum(name, match)
		}
		fmt.Fprintf(w, "client=%-16s requests/s=%-10s rounds/s=%-10s bytes/s=%-10s throttled=%.0f overloads=%.0f\n",
			tag,
			humanRate(d("ntpd_client_requests_total")/dt),
			humanRate(d("ntpd_client_rounds_total")/dt),
			humanRate(d("ntpd_client_bytes_total")/dt),
			d("ntpd_client_throttled_total"),
			d("ntpd_client_overload_rejects_total"))
	}
}

func humanRate(v float64) string { return humanCount(v) + "/s" }

func humanCount(v float64) string {
	switch {
	case v >= 1e9:
		return fmt.Sprintf("%.2fG", v/1e9)
	case v >= 1e6:
		return fmt.Sprintf("%.2fM", v/1e6)
	case v >= 1e4:
		return fmt.Sprintf("%.1fk", v/1e3)
	case v == math.Trunc(v):
		return strconv.FormatFloat(v, 'f', 0, 64)
	case v >= 10:
		return strconv.FormatFloat(v, 'f', 1, 64)
	default:
		return strconv.FormatFloat(v, 'f', 2, 64)
	}
}

func humanSeconds(s float64) string {
	if s <= 0 {
		return "0"
	}
	return time.Duration(s * float64(time.Second)).Round(time.Microsecond).String()
}
