// Command ptasm assembles and runs PT32 assembly programs.
//
// Usage:
//
//	ptasm prog.s                  assemble and run to completion
//	ptasm -limit 1000000 prog.s   bound the instruction count
//	ptasm -traces prog.s          also print trace-selection statistics
//	ptasm -disas prog.s           print the assembled text segment
//	ptasm -o prog.img prog.s      assemble to a binary image and exit
//	ptasm prog.img                run a prebuilt image
//
// The program's OUT values are printed one per line; the exit status is
// non-zero on assembly errors or simulator faults.
package main

import (
	"flag"
	"fmt"
	"os"

	"pathtrace"
)

func main() {
	var (
		limit  = flag.Uint64("limit", 0, "max instructions (0 = until halt)")
		traces = flag.Bool("traces", false, "print trace selection statistics")
		disas  = flag.Bool("disas", false, "print the assembled text segment and exit")
		outImg = flag.String("o", "", "write a binary program image to this path and exit")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: ptasm [-limit n] [-traces] [-disas] [-o out.img] prog.s|prog.img")
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fmt.Fprintf(os.Stderr, "ptasm: %v\n", err)
		os.Exit(1)
	}
	var prog *pathtrace.Program
	if pathtrace.IsProgramImage(src) {
		prog, err = pathtrace.DecodeProgramImage(src)
	} else {
		prog, err = pathtrace.Assemble(string(src))
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "ptasm: %v\n", err)
		os.Exit(1)
	}
	if *outImg != "" {
		if err := os.WriteFile(*outImg, prog.EncodeImage(), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "ptasm: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "wrote %s (%d instructions, %d data bytes)\n",
			*outImg, len(prog.Text), len(prog.Data))
		return
	}
	if *disas {
		for i := range prog.Text {
			addr := prog.TextBase + uint32(i)*4
			in, err := prog.Instr(addr)
			if err != nil {
				fmt.Fprintf(os.Stderr, "ptasm: %v\n", err)
				os.Exit(1)
			}
			fmt.Printf("%#08x: %s\n", addr, in)
		}
		return
	}
	cpu, err := pathtrace.NewCPU(prog)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ptasm: %v\n", err)
		os.Exit(1)
	}

	var sel *pathtrace.TraceSelector
	var ntraces, nbranches uint64
	if *traces {
		sel, err = pathtrace.NewTraceSelector(pathtrace.DefaultTraceConfig(), func(tr *pathtrace.Trace) {
			ntraces++
			nbranches += uint64(tr.NumBr)
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "ptasm: %v\n", err)
			os.Exit(1)
		}
	}
	visit := func(r pathtrace.Retired) {
		if sel != nil {
			sel.Feed(r)
		}
	}
	if err := cpu.Run(*limit, visit); err != nil {
		fmt.Fprintf(os.Stderr, "ptasm: %v\n", err)
		os.Exit(1)
	}
	if sel != nil {
		sel.Flush()
	}
	for _, v := range cpu.Output {
		fmt.Printf("%d\n", v)
	}
	fmt.Fprintf(os.Stderr, "retired %d instructions; halted=%v\n", cpu.InstrCount, cpu.Halted())
	if *traces && ntraces > 0 {
		fmt.Fprintf(os.Stderr, "traces: %d, avg length %.2f, avg branches %.2f\n",
			ntraces, float64(cpu.InstrCount)/float64(ntraces), float64(nbranches)/float64(ntraces))
	}
}
