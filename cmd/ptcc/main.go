// Command ptcc compiles PTC (a small C-like language) to PT32 assembly
// and optionally runs the result.
//
// Usage:
//
//	ptcc prog.ptc              compile and print the assembly
//	ptcc -run prog.ptc         compile and execute; print OUT values
//	ptcc -run -traces prog.ptc also print trace statistics
//
// PTC plays the role the C compiler played for the paper's substrate:
// workloads in readable source, lowered to the ISA the front-end models
// consume. See internal/cc for the language.
package main

import (
	"flag"
	"fmt"
	"os"

	"pathtrace"
)

func main() {
	var (
		runIt  = flag.Bool("run", false, "execute the compiled program")
		traces = flag.Bool("traces", false, "with -run: print trace statistics")
		limit  = flag.Uint64("limit", 0, "with -run: max instructions (0 = until halt)")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: ptcc [-run] [-traces] [-limit n] prog.ptc")
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fmt.Fprintf(os.Stderr, "ptcc: %v\n", err)
		os.Exit(1)
	}
	asmText, err := pathtrace.CompilePTC(string(src))
	if err != nil {
		fmt.Fprintf(os.Stderr, "ptcc: %v\n", err)
		os.Exit(1)
	}
	if !*runIt {
		fmt.Print(asmText)
		return
	}
	prog, err := pathtrace.Assemble(asmText)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ptcc: internal error: %v\n", err)
		os.Exit(1)
	}
	cpu, err := pathtrace.NewCPU(prog)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ptcc: %v\n", err)
		os.Exit(1)
	}
	var sel *pathtrace.TraceSelector
	var ntraces uint64
	if *traces {
		sel, err = pathtrace.NewTraceSelector(pathtrace.DefaultTraceConfig(), func(*pathtrace.Trace) {
			ntraces++
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "ptcc: %v\n", err)
			os.Exit(1)
		}
	}
	visit := func(r pathtrace.Retired) {
		if sel != nil {
			sel.Feed(r)
		}
	}
	if err := cpu.Run(*limit, visit); err != nil {
		fmt.Fprintf(os.Stderr, "ptcc: %v\n", err)
		os.Exit(1)
	}
	if sel != nil {
		sel.Flush()
	}
	for _, v := range cpu.Output {
		fmt.Printf("%d\n", v)
	}
	fmt.Fprintf(os.Stderr, "retired %d instructions; halted=%v\n", cpu.InstrCount, cpu.Halted())
	if sel != nil && ntraces > 0 {
		fmt.Fprintf(os.Stderr, "traces: %d, avg length %.2f\n",
			ntraces, float64(cpu.InstrCount)/float64(ntraces))
	}
}
