// Command ntpd serves path-based next-trace prediction over TCP and
// doubles as the protocol's load generator.
//
// Serve (the default mode):
//
//	ntpd -addr 127.0.0.1:9191 -admin 127.0.0.1:9192
//	ntpd -addr 127.0.0.1:0 -portfile /tmp/ntpd.port
//	ntpd -shards 4 -queue 2048 -depth 7 -indexbits 16
//	ntpd -inject table:1e-4 -seed 7          # degraded-mode serving
//
// Backends and shadow evaluation:
//
//	ntpd -backend tage                       # serve with the TAGE-style backend
//	ntpd -shadow tage                        # serve hybrid, shadow-evaluate TAGE
//	ntpd -shadow tage,basic                  # several shadows, fan-out per Update
//
// -backend picks the serving predictor backend from the registry
// (basic, hybrid, costreduced, tage, unbounded), overriding the -basic
// shorthand. -shadow names backends to evaluate on live traffic:
// every session Update is fanned out to one fresh shadow predictor per
// name, the primary alone answers Predict (responses, -verify and
// snapshots are untouched), and /metrics reports each backend's
// accuracy as ntpd_backend_{rounds,correct,miss}_total with role
// "primary"/"shadow" — a live A/B readout before switching -backend.
//
// The server hosts -shards predictor shards; sessions are hashed to
// shards and every session owns a predictor built from the -depth /
// -indexbits / -basic / -norhs / -backend flags. SIGINT/SIGTERM trigger a
// graceful drain: in-flight requests finish, new ones are refused with
// the draining status, then the process exits 0. The admin listener
// (when -admin is set) serves /healthz, /statsz (JSON), /varz and
// /metrics (Prometheus text: server counters, per-shard queue depth
// and op-latency histograms, and live predictor hit/miss/replacement
// counters). -portfile writes the bound data-plane port to a file, for
// scripts that start ntpd on port 0; -adminportfile does the same for
// the admin port, so a scrape of http://127.0.0.1:$(cat f)/metrics
// needs no address parsing.
//
// Admission control:
//
//	ntpd -client-rate 50000 -client-burst 100000     # per-client quota (traces/s)
//	ntpd -global-rate 200000                         # server-wide cap
//	ntpd -limits-file limits.json                    # hot-reloadable limits
//
// Work requests pass through token buckets before the shard queues:
// one bucket per client tag (announced by the client's hello frame)
// plus one global bucket. A refused request is answered immediately
// with the throttled status and a retry-after hint instead of
// competing for queue slots, so one greedy client cannot starve the
// rest. Limits change live — without dropping sessions — via SIGHUP
// (re-reads -limits-file) or POST /limitz on the admin plane; the
// JSON shape is {"per_client_rate": ..., "per_client_burst": ...,
// "global_rate": ..., "global_burst": ...}.
//
// Crash safety:
//
//	ntpd -addr ... -checkpoint-dir /var/lib/ntpd   # periodic snapshots + warm restart
//	ntpd -addr ... -handoff peer:9191              # drain streams sessions to the peer
//
// With -checkpoint-dir, every session is periodically snapshotted
// (versioned, checksummed frames; atomic rename) and a restarting
// server reloads them before accepting traffic. On SIGTERM the drain
// additionally snapshots every live session's final state and streams
// it to the -handoff peer (retrying with backoff, spilling to the
// checkpoint dir on failure) so a planned restart loses nothing.
// The loadgen's -failover flag exercises the client half: a retrying
// client with per-op deadlines, reconnect backoff with jitter, an
// address failover list (-failover-addrs), and snapshot-per-ack
// session recovery, which keeps -verify bit-identical across a server
// kill.
//
// Load generation:
//
//	ntpd -loadgen -addr 127.0.0.1:9191 -stream .streams/compress_2000000_16-6.ntps
//	ntpd -loadgen -addr ... -workload compress -len 2000000
//	ntpd -loadgen -addr ... -stream f.ntps -conns 4 -sessions 8 -batch 512 -verify
//
// -loadgen replays a recorded .ntps trace stream (from -stream, or
// captured in process from -workload/-len) through the server: every
// session replays the full stream, batched -batch traces per request
// over the batched wire op (per-trace sequences, suffix-replay dedup;
// -scalarops falls back to legacy per-frame OpUpdate), and the run
// reports sustained throughput plus p50/p90/p99 round-trip latency. -verify additionally replays the stream in process with the
// same predictor flags and requires each session's server-side stats
// to be bit-identical — the end-to-end correctness anchor for the
// whole serving path. The predictor flags must match the server's, and
// the session ids must be ones the server has never seen (server-side
// predictor state survives the connection, so a repeated run against
// the same server needs -sessionbase to step past the ids an earlier
// run already trained).
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"pathtrace/internal/faults"
	"pathtrace/internal/predictor"
	"pathtrace/internal/serve"
	"pathtrace/internal/stream"
	"pathtrace/internal/trace"
	"pathtrace/internal/workload"
)

func main() { os.Exit(run()) }

func run() int {
	var (
		addr     = flag.String("addr", "127.0.0.1:9191", "serve: listen address; loadgen: server address")
		admin    = flag.String("admin", "", "admin HTTP listen address (empty = disabled)")
		shards   = flag.Int("shards", 0, "predictor shards (default GOMAXPROCS)")
		queue    = flag.Int("queue", 1024, "per-shard request queue bound")
		portfile = flag.String("portfile", "", "write the bound data-plane port to this file once listening")
		adminPF  = flag.String("adminportfile", "", "write the bound admin port to this file once listening")
		drainT   = flag.Duration("drain", 10*time.Second, "graceful drain deadline on SIGTERM")
		ckptDir  = flag.String("checkpoint-dir", "", "persist session snapshots here and warm-restart from them")
		ckptEach = flag.Duration("checkpoint-every", 2*time.Second, "periodic checkpoint sweep interval")
		handoff  = flag.String("handoff", "", "peer ntpd address to stream live sessions to at drain")

		clientRate  = flag.Float64("client-rate", 0, "admission: per-client token rate, work units/s (0 = unlimited)")
		clientBurst = flag.Float64("client-burst", 0, "admission: per-client bucket depth (default one second of -client-rate)")
		globalRate  = flag.Float64("global-rate", 0, "admission: server-wide token rate (0 = unlimited)")
		globalBurst = flag.Float64("global-burst", 0, "admission: server-wide bucket depth (default one second of -global-rate)")
		limitsFile  = flag.String("limits-file", "", "JSON admission limits; overrides the rate flags and reloads on SIGHUP")

		depth     = flag.Int("depth", 7, "predictor path-history depth")
		indexBits = flag.Int("indexbits", 16, "correlated table index bits")
		basic     = flag.Bool("basic", false, "basic correlated predictor instead of the hybrid")
		noRHS     = flag.Bool("norhs", false, "disable the Return History Stack")
		backendF  = flag.String("backend", "", "serving predictor backend (overrides -basic; an unknown name lists the registry)")
		shadow    = flag.String("shadow", "", "comma-separated shadow backends to evaluate on live traffic (serve mode)")
		inject    = flag.String("inject", "", "fault-injection spec for per-session injectors, e.g. table:1e-4")
		seed      = flag.Uint64("seed", 0, "fault-injection PRNG seed")

		loadgen    = flag.Bool("loadgen", false, "run the load generator instead of serving")
		streamPath = flag.String("stream", "", "loadgen: .ntps stream file to replay")
		wl         = flag.String("workload", "", "loadgen: capture this workload in process instead of -stream")
		length     = flag.Uint64("len", 2_000_000, "loadgen: instructions to capture with -workload")
		conns      = flag.Int("conns", 1, "loadgen: TCP connections")
		sessions   = flag.Int("sessions", 0, "loadgen: sessions (default = conns)")
		batch      = flag.Int("batch", 256, "loadgen: traces per update request")
		scalarOps  = flag.Bool("scalarops", false, "loadgen: use legacy per-frame OpUpdate instead of the batched op")
		writeBuf   = flag.Int("writebuf", 0, "serve: per-connection response write buffer bytes (default 64KiB)")
		verify     = flag.Bool("verify", false, "loadgen: require server stats bit-identical to an in-process replay")
		sessBase   = flag.Uint64("sessionbase", 1, "loadgen: first session id (pick fresh ids when reusing a server)")
		failover   = flag.Bool("failover", false, "loadgen: retrying client that rides out server restarts (snapshot-per-ack recovery)")
		failAddrs  = flag.String("failover-addrs", "", "loadgen: comma-separated server list for -failover (default: -addr)")
		clientTag  = flag.String("client", "", "loadgen: client tag announced to the server (admission-control identity)")
	)
	flag.Parse()
	if flag.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "ntpd: unexpected arguments: %v\n", flag.Args())
		return 2
	}

	pcfg := predictor.Config{Depth: *depth, IndexBits: *indexBits, Hybrid: !*basic, UseRHS: !*basic && !*noRHS, Backend: *backendF}
	var fcfg *faults.Config
	if *inject != "" || *seed != 0 {
		c, err := faults.ParseSpec(*inject)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ntpd: %v\n", err)
			return 2
		}
		c.Seed = *seed
		fcfg = &c
	}

	if *loadgen {
		if *shadow != "" {
			fmt.Fprintln(os.Stderr, "ntpd: -shadow is a serve-mode flag")
			return 2
		}
		return runLoadgen(loadgenArgs{
			addr: *addr, streamPath: *streamPath, workload: *wl, length: *length,
			conns: *conns, sessions: *sessions, batch: *batch, verify: *verify,
			sessBase: *sessBase, pcfg: pcfg, fcfg: fcfg, scalarOps: *scalarOps,
			failover: *failover || *failAddrs != "", failAddrs: *failAddrs,
			clientTag: *clientTag,
		})
	}
	if *clientTag != "" {
		fmt.Fprintln(os.Stderr, "ntpd: -client is a loadgen-mode flag")
		return 2
	}
	limits := serve.Limits{
		PerClientRate: *clientRate, PerClientBurst: *clientBurst,
		GlobalRate: *globalRate, GlobalBurst: *globalBurst,
	}
	if *limitsFile != "" {
		l, err := loadLimits(*limitsFile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ntpd: %v\n", err)
			return 2
		}
		limits = l
	}
	var shadows []string
	if *shadow != "" {
		for _, name := range strings.Split(*shadow, ",") {
			if name = strings.TrimSpace(name); name != "" {
				shadows = append(shadows, name)
			}
		}
	}
	return runServe(serve.Config{
		Addr: *addr, AdminAddr: *admin, Shards: *shards, QueueLen: *queue,
		Predictor: pcfg, Faults: fcfg, Shadows: shadows,
		CheckpointDir: *ckptDir, CheckpointEvery: *ckptEach, HandoffAddr: *handoff,
		WriteBufferSize: *writeBuf, Limits: limits,
	}, *portfile, *adminPF, *drainT, *limitsFile)
}

// loadLimits reads admission limits from a JSON file. Unknown keys
// are rejected so a typo in a fleet config fails loudly instead of
// silently leaving a quota unlimited.
func loadLimits(path string) (serve.Limits, error) {
	var l serve.Limits
	data, err := os.ReadFile(path)
	if err != nil {
		return l, err
	}
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&l); err != nil {
		return l, fmt.Errorf("limits %s: %w", path, err)
	}
	if l.PerClientRate < 0 || l.PerClientBurst < 0 || l.GlobalRate < 0 || l.GlobalBurst < 0 {
		return l, fmt.Errorf("limits %s: rates and bursts must be >= 0", path)
	}
	return l, nil
}

func runServe(scfg serve.Config, portfile, adminPF string, drain time.Duration, limitsFile string) int {
	srv, err := serve.NewServer(scfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ntpd: %v\n", err)
		return 1
	}
	fmt.Fprintf(os.Stderr, "ntpd: listening on %s", srv.Addr())
	if a := srv.AdminAddr(); a != nil {
		fmt.Fprintf(os.Stderr, " (admin %s)", a)
	}
	fmt.Fprintln(os.Stderr)
	writePort := func(path string, a net.Addr) bool {
		if path == "" {
			return true
		}
		if a == nil {
			fmt.Fprintf(os.Stderr, "ntpd: -adminportfile needs -admin\n")
			return false
		}
		port := a.(*net.TCPAddr).Port
		if err := os.WriteFile(path, []byte(fmt.Sprintf("%d\n", port)), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "ntpd: portfile %s: %v\n", path, err)
			return false
		}
		return true
	}
	if !writePort(portfile, srv.Addr()) || !writePort(adminPF, srv.AdminAddr()) {
		srv.Close()
		return 1
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM, syscall.SIGHUP)
	var got os.Signal
	for got = range sig {
		if got != syscall.SIGHUP {
			break
		}
		// SIGHUP: hot-reload admission limits without dropping sessions.
		if limitsFile == "" {
			fmt.Fprintln(os.Stderr, "ntpd: SIGHUP: no -limits-file, limits unchanged")
			continue
		}
		l, err := loadLimits(limitsFile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ntpd: SIGHUP: %v (limits unchanged)\n", err)
			continue
		}
		srv.SetLimits(l)
		fmt.Fprintf(os.Stderr, "ntpd: SIGHUP: limits reloaded from %s: %+v\n", limitsFile, srv.Limits())
	}
	fmt.Fprintf(os.Stderr, "ntpd: %v: draining (deadline %s)\n", got, drain)
	ctx, cancel := context.WithTimeout(context.Background(), drain)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		fmt.Fprintf(os.Stderr, "ntpd: %v\n", err)
		return 1
	}
	fmt.Fprintln(os.Stderr, "ntpd: drained, bye")
	return 0
}

type loadgenArgs struct {
	addr, streamPath, workload string
	length                     uint64
	conns, sessions, batch     int
	sessBase                   uint64
	verify                     bool
	scalarOps                  bool
	failover                   bool
	failAddrs                  string
	clientTag                  string
	pcfg                       predictor.Config
	fcfg                       *faults.Config
}

func runLoadgen(a loadgenArgs) int {
	var s *stream.Stream
	switch {
	case a.streamPath != "" && a.workload != "":
		fmt.Fprintln(os.Stderr, "ntpd: -stream and -workload are mutually exclusive")
		return 2
	case a.streamPath != "":
		var err error
		s, err = stream.Load(a.streamPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ntpd: %v\n", err)
			return 1
		}
	case a.workload != "":
		w, ok := workload.ByName(a.workload)
		if !ok {
			fmt.Fprintf(os.Stderr, "ntpd: unknown workload %q\n", a.workload)
			return 2
		}
		fmt.Fprintf(os.Stderr, "ntpd: capturing %s for %d instructions...\n", a.workload, a.length)
		var err error
		s, err = stream.Capture(nil, w, a.length, trace.DefaultConfig())
		if err != nil {
			fmt.Fprintf(os.Stderr, "ntpd: %v\n", err)
			return 1
		}
	default:
		fmt.Fprintln(os.Stderr, "ntpd: -loadgen needs -stream <file> or -workload <name>")
		return 2
	}
	fmt.Fprintf(os.Stderr, "ntpd: replaying %d traces (%s) against %s\n", s.Len(), s.Key(), a.addr)

	lcfg := serve.LoadgenConfig{
		Addr: a.addr, Stream: s,
		Conns: a.conns, Sessions: a.sessions, Batch: a.batch,
		Verify: a.verify, Predictor: a.pcfg, Faults: a.fcfg,
		SessionBase: a.sessBase, ScalarOps: a.scalarOps,
		ClientTag: a.clientTag,
	}
	if a.failover {
		// Snapshot after every acked batch: recovery from a server kill
		// is then exact, which is what -verify demands.
		rcfg := serve.RetryConfig{SnapshotEvery: 1, Seed: 1}
		if a.failAddrs != "" {
			rcfg.Addrs = strings.Split(a.failAddrs, ",")
		}
		lcfg.Failover = &rcfg
	}
	rep, err := serve.RunLoadgen(context.Background(), lcfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ntpd: loadgen: %v\n", err)
		return 1
	}
	fmt.Println(rep)
	return 0
}
