package main

import (
	"bytes"
	"fmt"
	"os"
	"os/exec"
	"strings"
	"testing"
)

// TestMain doubles as the subprocess entry point: when NTP_RUN_MAIN is
// set, the test binary behaves as the ntp command itself (flags come
// from the environment-provided argv), so the validation tests below
// can exercise real exits through a real process boundary without
// building the binary separately.
func TestMain(m *testing.M) {
	if os.Getenv("NTP_RUN_MAIN") == "1" {
		os.Exit(run())
	}
	os.Exit(m.Run())
}

// runNTP re-executes the test binary as ntp with the given flags.
func runNTP(t *testing.T, args ...string) (stdout, stderr string, code int) {
	t.Helper()
	cmd := exec.Command(os.Args[0], args...)
	cmd.Env = append(os.Environ(), "NTP_RUN_MAIN=1")
	var out, errb bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &errb
	err := cmd.Run()
	code = 0
	if ee, ok := err.(*exec.ExitError); ok {
		code = ee.ExitCode()
	} else if err != nil {
		t.Fatalf("running %v: %v", args, err)
	}
	return out.String(), errb.String(), code
}

// PR 1 pinned: unknown ids are validated up front, the process exits 2,
// and stderr names every unknown plus the full catalogs.
func TestUnknownExperimentExits2(t *testing.T) {
	_, stderr, code := runNTP(t, "-run", "nope")
	if code != 2 {
		t.Fatalf("exit code = %d, want 2\nstderr: %s", code, stderr)
	}
	for _, want := range []string{"unknown experiment nope", "experiments:", "workloads:"} {
		if !strings.Contains(stderr, want) {
			t.Errorf("stderr missing %q:\n%s", want, stderr)
		}
	}
	// The catalog must name real experiments so the user can fix the typo.
	if !strings.Contains(stderr, "table2") || !strings.Contains(stderr, "fig7") {
		t.Errorf("stderr catalog missing known experiments:\n%s", stderr)
	}
}

func TestUnknownWorkloadExits2(t *testing.T) {
	_, stderr, code := runNTP(t, "-run", "table2", "-workloads", "compress,bogus")
	if code != 2 {
		t.Fatalf("exit code = %d, want 2\nstderr: %s", code, stderr)
	}
	if !strings.Contains(stderr, "unknown workload bogus") {
		t.Errorf("stderr missing unknown workload:\n%s", stderr)
	}
	if strings.Contains(stderr, "unknown workload compress") {
		t.Errorf("stderr wrongly flags a valid workload:\n%s", stderr)
	}
}

// Every unknown is listed in one pass — a long sweep must not die on
// the first typo only to reveal the second one an hour later.
func TestAllUnknownsListedTogether(t *testing.T) {
	_, stderr, code := runNTP(t, "-run", "nope1,nope2", "-workloads", "bogus")
	if code != 2 {
		t.Fatalf("exit code = %d, want 2\nstderr: %s", code, stderr)
	}
	for _, want := range []string{"experiment nope1", "experiment nope2", "workload bogus"} {
		if !strings.Contains(stderr, want) {
			t.Errorf("stderr missing %q:\n%s", want, stderr)
		}
	}
}

// -streams conflicts with -nocache (the stream directory rides on the
// cache), and the conflict is a flag-validation failure, not a late
// runtime one.
func TestStreamsRequiresCache(t *testing.T) {
	_, stderr, code := runNTP(t, "-run", "table2", "-nocache", "-streams", t.TempDir())
	if code != 2 {
		t.Fatalf("exit code = %d, want 2\nstderr: %s", code, stderr)
	}
	if !strings.Contains(stderr, "-streams requires the stream cache") {
		t.Errorf("stderr missing conflict message:\n%s", stderr)
	}
}

// -list exits 0 and prints the catalog without running anything.
func TestListExitsZero(t *testing.T) {
	stdout, _, code := runNTP(t, "-list")
	if code != 0 {
		t.Fatalf("exit code = %d, want 0", code)
	}
	if !strings.Contains(stdout, "table2") || !strings.Contains(stdout, "headline") {
		t.Errorf("-list output missing experiments:\n%s", stdout)
	}
}

// No flags at all: usage hint on stderr, exit 2.
func TestNoArgsExits2(t *testing.T) {
	stdout, stderr, code := runNTP(t)
	if code != 2 {
		t.Fatalf("exit code = %d, want 2", code)
	}
	if !strings.Contains(stdout, "Experiments") {
		t.Errorf("expected the experiment list on stdout:\n%s", stdout)
	}
	if !strings.Contains(stderr, "-run") {
		t.Errorf("expected a usage hint on stderr:\n%s", stderr)
	}
}

// -backend is validated up front like experiment ids: an unknown name
// exits 2 and lists the registry so the user can fix the typo.
func TestUnknownBackendExits2(t *testing.T) {
	_, stderr, code := runNTP(t, "-run", "headline", "-backend", "nope")
	if code != 2 {
		t.Fatalf("exit code = %d, want 2\nstderr: %s", code, stderr)
	}
	if !strings.Contains(stderr, `unknown backend "nope"`) {
		t.Errorf("stderr missing unknown-backend error:\n%s", stderr)
	}
	for _, want := range []string{"hybrid", "tage"} {
		if !strings.Contains(stderr, want) {
			t.Errorf("stderr backend catalog missing %q:\n%s", want, stderr)
		}
	}
}

// benchDiffBaseline writes a minimal BENCH_*.json holding one record
// with the given name and ns/op and returns its path.
func benchDiffBaseline(t *testing.T, name string, nsPerOp float64) string {
	t.Helper()
	path := t.TempDir() + "/BENCH_base.json"
	doc := fmt.Sprintf(`{"date":"2026-01-01T00:00:00Z","limit":5000,`+
		`"results":[{"name":%q,"iterations":1,"ns_per_op":%g,`+
		`"allocs_per_op":0,"bytes_per_op":0}]}`, name, nsPerOp)
	if err := os.WriteFile(path, []byte(doc), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// -benchdiff gates on the predict-batch record when the baseline has
// one, and falls back to predict-loop for pre-batch baselines. Either
// way a generous baseline passes and the report names the benchmark.
func TestBenchDiffPasses(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real benchmark rounds")
	}
	for _, name := range []string{"predict-batch", "predict-loop"} {
		stdout, stderr, code := runNTP(t, "-benchdiff", benchDiffBaseline(t, name, 1e12), "-len", "5000")
		if code != 0 {
			t.Fatalf("%s: exit code = %d, want 0\nstdout: %s\nstderr: %s", name, code, stdout, stderr)
		}
		for _, want := range []string{name, "OK"} {
			if !strings.Contains(stdout, want) {
				t.Errorf("%s: stdout missing %q:\n%s", name, want, stdout)
			}
		}
	}
}

// An impossibly fast baseline must trip the regression gate (exit 1).
func TestBenchDiffFailsOnRegression(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real benchmark rounds")
	}
	stdout, stderr, code := runNTP(t, "-benchdiff", benchDiffBaseline(t, "predict-batch", 1e-6), "-len", "5000")
	if code != 1 {
		t.Fatalf("exit code = %d, want 1\nstdout: %s\nstderr: %s", code, stdout, stderr)
	}
	if !strings.Contains(stdout, "FAIL: predict-batch regressed") {
		t.Errorf("stdout missing regression verdict:\n%s", stdout)
	}
}

// Baseline problems are config errors (exit 2), distinct from a real
// regression: a missing file and a file without a predict-loop record.
func TestBenchDiffBadBaselineExits2(t *testing.T) {
	_, stderr, code := runNTP(t, "-benchdiff", t.TempDir()+"/absent.json")
	if code != 2 {
		t.Fatalf("missing file: exit code = %d, want 2\nstderr: %s", code, stderr)
	}
	empty := t.TempDir() + "/empty.json"
	if err := os.WriteFile(empty, []byte(`{"results":[]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	_, stderr, code = runNTP(t, "-benchdiff", empty)
	if code != 2 {
		t.Fatalf("no record: exit code = %d, want 2\nstderr: %s", code, stderr)
	}
	if !strings.Contains(stderr, "no predict-batch or predict-loop record") {
		t.Errorf("stderr missing record error:\n%s", stderr)
	}
}

// The hang workload is opt-in: it must be accepted by validation when
// named (PR 1 behavior), without simulating anything here (-list only
// validates registration, so use a bogus experiment to stop before any
// simulation: the hang name must NOT be among the unknowns).
func TestHangWorkloadAcceptedByValidation(t *testing.T) {
	_, stderr, code := runNTP(t, "-run", "nope", "-workloads", "hang")
	if code != 2 {
		t.Fatalf("exit code = %d, want 2\nstderr: %s", code, stderr)
	}
	if strings.Contains(stderr, "workload hang") {
		t.Errorf("hang workload rejected by validation:\n%s", stderr)
	}
	if !strings.Contains(stderr, "unknown experiment nope") {
		t.Errorf("stderr missing the experiment error:\n%s", stderr)
	}
}
