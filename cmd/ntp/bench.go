package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"pathtrace"
)

// benchRecord is one benchmarked unit in the BENCH_<date>.json output.
type benchRecord struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

// benchFile is the full JSON document, with enough provenance to make
// two files comparable.
type benchFile struct {
	Date      string        `json:"date"`
	GoVersion string        `json:"go_version"`
	GOARCH    string        `json:"goarch"`
	Limit     uint64        `json:"limit"`
	Results   []benchRecord `json:"results"`
}

// runBench measures every requested experiment (one full regeneration
// per iteration, stream cache warm) plus the raw replay→predict loop,
// and writes the records as JSON.
func runBench(ids []string, opt pathtrace.ExperimentOptions, outPath string) int {
	if opt.Limit == 0 {
		opt.Limit = 200_000 // match bench_test.go's benchLimit
	}
	if outPath == "" {
		outPath = "BENCH_" + time.Now().Format("2006-01-02") + ".json"
	}
	out := benchFile{
		Date:      time.Now().Format(time.RFC3339),
		GoVersion: runtime.Version(),
		GOARCH:    runtime.GOARCH,
		Limit:     opt.Limit,
	}

	for _, id := range ids {
		id := id
		// Warm the stream cache (and predictor code paths) outside the
		// measured region so every iteration measures replay, not capture.
		if _, err := pathtrace.RunExperiment(id, opt); err != nil {
			fmt.Fprintf(os.Stderr, "ntp: bench %s: %v\n", id, err)
			return 1
		}
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := pathtrace.RunExperiment(id, opt); err != nil {
					b.Fatal(err)
				}
			}
		})
		rec := benchRecord{
			Name:        id,
			Iterations:  r.N,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
		}
		out.Results = append(out.Results, rec)
		fmt.Fprintf(os.Stderr, "ntp: bench %-20s %12.0f ns/op %8d allocs/op\n",
			id, rec.NsPerOp, rec.AllocsPerOp)
	}

	if rec, err := benchPredictLoop(opt.Limit); err != nil {
		fmt.Fprintf(os.Stderr, "ntp: bench predict-loop: %v\n", err)
		return 1
	} else {
		out.Results = append(out.Results, rec)
		fmt.Fprintf(os.Stderr, "ntp: bench %-20s %12.0f ns/op %8d allocs/op\n",
			rec.Name, rec.NsPerOp, rec.AllocsPerOp)
	}

	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "ntp: bench: %v\n", err)
		return 1
	}
	data = append(data, '\n')
	if err := os.WriteFile(outPath, data, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "ntp: bench: %v\n", err)
		return 1
	}
	fmt.Fprintf(os.Stderr, "ntp: wrote %s\n", outPath)
	return 0
}

// benchPredictLoop measures the steady-state replay→predict hot path
// (sequential baseline + bounded hybrid + unbounded per trace), the
// same loop BenchmarkHeadline/predict covers in the test suite. It must
// report zero allocations per operation.
func benchPredictLoop(limit uint64) (benchRecord, error) {
	w, ok := pathtrace.WorkloadByName("go")
	if !ok {
		return benchRecord{}, fmt.Errorf("workload go missing")
	}
	s, err := pathtrace.CaptureTraceStream(w, limit)
	if err != nil {
		return benchRecord{}, err
	}
	seq, err := pathtrace.NewSequentialBaseline(pathtrace.SequentialConfig{})
	if err != nil {
		return benchRecord{}, err
	}
	hybrid := pathtrace.MustNewPredictor(pathtrace.PredictorConfig{
		Depth: 7, IndexBits: 16, Hybrid: true, UseRHS: true,
	})
	ub, err := pathtrace.NewUnboundedPredictor(pathtrace.UnboundedConfig{
		Depth: 7, Hybrid: true, UseRHS: true,
	})
	if err != nil {
		return benchRecord{}, err
	}
	step := func(tr *pathtrace.Trace) {
		seq.ObserveTrace(tr)
		hybrid.Predict()
		hybrid.Update(tr)
		ub.Predict()
		ub.Update(tr)
	}
	if _, _, err := s.Replay(nil, step); err != nil { // warm pass
		return benchRecord{}, err
	}
	n := s.Len()
	var tr pathtrace.Trace
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			s.At(i%n, &tr)
			step(&tr)
		}
	})
	return benchRecord{
		Name:        "predict-loop",
		Iterations:  r.N,
		NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
	}, nil
}
