package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"pathtrace"
)

// benchRecord is one benchmarked unit in the BENCH_<date>.json output.
type benchRecord struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

// benchFile is the full JSON document, with enough provenance to make
// two files comparable.
type benchFile struct {
	Date      string        `json:"date"`
	GoVersion string        `json:"go_version"`
	GOARCH    string        `json:"goarch"`
	Limit     uint64        `json:"limit"`
	Results   []benchRecord `json:"results"`
}

// runBench measures every requested experiment (one full regeneration
// per iteration, stream cache warm) plus the raw replay→predict loop,
// and writes the records as JSON.
func runBench(ids []string, opt pathtrace.ExperimentOptions, outPath string) int {
	if opt.Limit == 0 {
		opt.Limit = 200_000 // match bench_test.go's benchLimit
	}
	if outPath == "" {
		outPath = "BENCH_" + time.Now().Format("2006-01-02") + ".json"
	}
	out := benchFile{
		Date:      time.Now().Format(time.RFC3339),
		GoVersion: runtime.Version(),
		GOARCH:    runtime.GOARCH,
		Limit:     opt.Limit,
	}

	for _, id := range ids {
		id := id
		// Warm the stream cache (and predictor code paths) outside the
		// measured region so every iteration measures replay, not capture.
		if _, err := pathtrace.RunExperiment(id, opt); err != nil {
			fmt.Fprintf(os.Stderr, "ntp: bench %s: %v\n", id, err)
			return 1
		}
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := pathtrace.RunExperiment(id, opt); err != nil {
					b.Fatal(err)
				}
			}
		})
		rec := benchRecord{
			Name:        id,
			Iterations:  r.N,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
		}
		out.Results = append(out.Results, rec)
		fmt.Fprintf(os.Stderr, "ntp: bench %-20s %12.0f ns/op %8d allocs/op\n",
			id, rec.NsPerOp, rec.AllocsPerOp)
	}

	for _, bench := range []func(uint64) (benchRecord, error){benchPredictLoop, benchPredictBatch} {
		rec, err := bench(opt.Limit)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ntp: bench: %v\n", err)
			return 1
		}
		out.Results = append(out.Results, rec)
		fmt.Fprintf(os.Stderr, "ntp: bench %-20s %12.0f ns/op %8d allocs/op\n",
			rec.Name, rec.NsPerOp, rec.AllocsPerOp)
	}

	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "ntp: bench: %v\n", err)
		return 1
	}
	data = append(data, '\n')
	if err := os.WriteFile(outPath, data, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "ntp: bench: %v\n", err)
		return 1
	}
	fmt.Fprintf(os.Stderr, "ntp: wrote %s\n", outPath)
	return 0
}

// runBenchDiff is the CI regression gate: re-measure the headline
// hot-path benchmark and compare against a committed BENCH_*.json
// baseline. The gate rides on the predict-batch record — the batched
// loop the serving layer actually runs — falling back to predict-loop
// for baselines written before the batch path existed. Both are stable
// enough (0 allocs, pure CPU) to gate on across machines. The loop runs
// three times and the best ns/op counts, so one scheduling hiccup
// cannot fail the gate; any allocation fails it regardless of timing.
// Exit 1 = regression, exit 2 = unusable baseline.
func runBenchDiff(path string, limit uint64, maxRegressPct float64) int {
	data, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ntp: benchdiff: %v\n", err)
		return 2
	}
	var base benchFile
	if err := json.Unmarshal(data, &base); err != nil {
		fmt.Fprintf(os.Stderr, "ntp: benchdiff: %s: %v\n", path, err)
		return 2
	}
	name, bench := "predict-batch", benchPredictBatch
	var old *benchRecord
	for i := range base.Results {
		if base.Results[i].Name == name {
			old = &base.Results[i]
			break
		}
	}
	if old == nil {
		name, bench = "predict-loop", benchPredictLoop
		for i := range base.Results {
			if base.Results[i].Name == name {
				old = &base.Results[i]
				break
			}
		}
	}
	if old == nil {
		fmt.Fprintf(os.Stderr, "ntp: benchdiff: %s has no predict-batch or predict-loop record\n", path)
		return 2
	}
	if limit == 0 {
		if limit = base.Limit; limit == 0 {
			limit = 200_000
		}
	}

	best := benchRecord{NsPerOp: -1}
	for round := 0; round < 3; round++ {
		rec, err := bench(limit)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ntp: benchdiff: %v\n", err)
			return 2
		}
		fmt.Fprintf(os.Stderr, "ntp: benchdiff round %d: %12.0f ns/op %8d allocs/op\n",
			round+1, rec.NsPerOp, rec.AllocsPerOp)
		if best.NsPerOp < 0 || rec.NsPerOp < best.NsPerOp {
			best = rec
		}
	}

	delta := 100 * (best.NsPerOp - old.NsPerOp) / old.NsPerOp
	fmt.Printf("%s: baseline %.0f ns/op (%s), now %.0f ns/op, delta %+.1f%% (limit %.0f%%)\n",
		name, old.NsPerOp, base.Date, best.NsPerOp, delta, maxRegressPct)
	if best.AllocsPerOp != 0 {
		fmt.Printf("FAIL: %s allocates (%d allocs/op, want 0)\n", name, best.AllocsPerOp)
		return 1
	}
	if delta > maxRegressPct {
		fmt.Printf("FAIL: %s regressed %.1f%% > %.0f%%\n", name, delta, maxRegressPct)
		return 1
	}
	fmt.Println("OK")
	return 0
}

// benchPredictLoop measures the steady-state replay→predict hot path
// (sequential baseline + bounded hybrid + unbounded per trace), the
// same loop BenchmarkHeadline/predict covers in the test suite. It must
// report zero allocations per operation.
func benchPredictLoop(limit uint64) (benchRecord, error) {
	w, ok := pathtrace.WorkloadByName("go")
	if !ok {
		return benchRecord{}, fmt.Errorf("workload go missing")
	}
	s, err := pathtrace.CaptureTraceStream(w, limit)
	if err != nil {
		return benchRecord{}, err
	}
	seq, err := pathtrace.NewSequentialBaseline(pathtrace.SequentialConfig{})
	if err != nil {
		return benchRecord{}, err
	}
	hybrid := pathtrace.MustNewPredictor(pathtrace.PredictorConfig{
		Depth: 7, IndexBits: 16, Hybrid: true, UseRHS: true,
	})
	ub, err := pathtrace.NewUnboundedPredictor(pathtrace.UnboundedConfig{
		Depth: 7, Hybrid: true, UseRHS: true,
	})
	if err != nil {
		return benchRecord{}, err
	}
	step := func(tr *pathtrace.Trace) {
		seq.ObserveTrace(tr)
		hybrid.Predict()
		hybrid.Update(tr)
		ub.Predict()
		ub.Update(tr)
	}
	if _, _, err := s.Replay(nil, step); err != nil { // warm pass
		return benchRecord{}, err
	}
	n := s.Len()
	var tr pathtrace.Trace
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			s.At(i%n, &tr)
			step(&tr)
		}
	})
	return benchRecord{
		Name:        "predict-loop",
		Iterations:  r.N,
		NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
	}, nil
}

// benchPredictBatch measures the batched predict+update hot path at the
// serving layer's default batch size (64). b.N counts traces, so ns/op
// is per trace — directly comparable with predict-loop's per-trace
// cost. This is the record the benchdiff gate rides on; it must report
// zero allocations per operation.
func benchPredictBatch(limit uint64) (benchRecord, error) {
	const batch = 64
	w, ok := pathtrace.WorkloadByName("go")
	if !ok {
		return benchRecord{}, fmt.Errorf("workload go missing")
	}
	s, err := pathtrace.CaptureTraceStream(w, limit)
	if err != nil {
		return benchRecord{}, err
	}
	n := s.Len()
	if n <= batch {
		return benchRecord{}, fmt.Errorf("stream too short for batch %d: %d traces", batch, n)
	}
	traces := make([]pathtrace.Trace, n)
	for i := range traces {
		s.At(i, &traces[i])
	}
	hybrid := pathtrace.MustNewPredictor(pathtrace.PredictorConfig{
		Depth: 7, IndexBits: 16, Hybrid: true, UseRHS: true,
	})
	preds := make([]pathtrace.Prediction, batch)
	pathtrace.PredictBatch(hybrid, traces[:batch], preds) // warm pass
	wrap := n - batch
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i += batch {
			off := i % wrap
			pathtrace.PredictBatch(hybrid, traces[off:off+batch], preds)
		}
	})
	return benchRecord{
		Name:        "predict-batch",
		Iterations:  r.N,
		NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
	}, nil
}
