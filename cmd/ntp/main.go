// Command ntp regenerates the paper's tables and figures.
//
// Usage:
//
//	ntp -list
//	ntp -run table2
//	ntp -run fig7 -len 10000000
//	ntp -run fig8 -workloads compress,gcc
//	ntp -run all -len 5000000
//
// Hardened runs:
//
//	ntp -run all -timeout 5s -keep-going
//	ntp -run all -workloads compress,gcc,hang -timeout 5s -keep-going
//	ntp -run faults -inject table:1e-4,history:1e-5 -seed 7
//	ntp -run all -parallel 4 -timeout 30s -keep-going
//
// Backends:
//
//	ntp -run backends
//	ntp -run headline -backend tage
//
// -backend re-runs any exhibit with a different registered predictor
// backend (basic, hybrid, costreduced, tage, unbounded) substituted for
// the proposed-predictor arm; baselines and explicitly pinned variants
// keep their identity. The `backends` experiment races every registered
// backend over the same streams.
//
// Performance:
//
//	ntp -run all -cpuprofile cpu.pprof
//	ntp -run table2 -memprofile mem.pprof
//	ntp -bench
//	ntp -bench -benchout BENCH_custom.json
//	ntp -benchdiff BENCH_2026-08-06.json
//	ntp -run all -nocache
//	ntp -run all -streams .streams
//	ntp -run all -metricsout metrics.prom
//
// Each experiment streams the six benchmark workloads (or the subset
// given with -workloads) through the trace selector and prints the
// regenerated exhibit. -len scales the per-workload instruction budget;
// the paper used >= 100M instructions per benchmark.
//
// Workload characterization and the adversarial zoo:
//
//	ntp -run charz
//	ntp -run charz -workloads compress,wild,storm -values
//	ntp -run headline -workloads band-hi
//
// Besides the six benchmarks, -workloads accepts the synthetic
// adversarial zoo (wild, storm, phase, band-lo, band-hi): seed-
// deterministic generators built to defeat path predictors (wild
// data-dependent branches, indirect-target storms, phase shifts, noisy
// Markov tables). The `charz` experiment tabulates predictability
// metrics (entropy, transition rate, working set, H2P set — see
// internal/charz) against every backend's miss rate; with no
// -workloads subset it covers the benchmarks plus the whole zoo.
//
// Each (workload, limit, selection) trace stream is simulated once and
// recorded in a process-wide cache; every experiment replays the
// recording (see internal/stream). -nocache disables this and
// re-simulates per cell, trading wall-clock for a flat memory profile.
// -streams names a directory of stream files: cache misses load the
// key's file instead of simulating, and fresh captures are saved back,
// so repeated sweeps skip simulation entirely (the paper's own
// capture-once, sweep-many methodology made persistent).
//
// -timeout bounds each (experiment, workload) cell; -keep-going
// continues past failed cells, reporting them at the end; -parallel
// runs cells concurrently (output order stays deterministic). -inject
// enables deterministic fault injection (see internal/faults) and
// -seed pins its PRNG streams; the `faults` experiment sweeps scaled
// rates into a degradation curve. The synthetic `hang` workload (a
// program generator that blocks forever) is available by naming it in
// -workloads, to exercise the deadline machinery.
//
// -metricsout writes a Prometheus-text snapshot of the run at exit:
// per-cell wall-time histogram, per-outcome cell counts, fault-trip
// counters and the stream-cache activity counters (see internal/metrics
// and the harness_* / ntp_stream_* metric families).
//
// -cpuprofile / -memprofile write pprof profiles covering the run.
// -bench measures every experiment (plus the raw predict loop) with
// the testing package's benchmark driver and writes a BENCH_<date>.json
// record of ns/op, allocs/op and B/op for regression tracking.
// -benchdiff closes the loop: it re-measures the headline predict loop
// (best of three) against a committed BENCH_*.json baseline and exits
// non-zero if ns/op regressed more than -benchmaxregress percent or
// the hot path allocates — the CI bench-diff gate.
//
// All experiment output goes to stdout and is bit-for-bit reproducible
// for a fixed flag set; timing goes to stderr.
package main

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"sort"
	"strings"
	"time"

	"flag"

	"pathtrace"
)

func main() { os.Exit(run()) }

// run is main with an exit code, so deferred cleanup (profile stop,
// profile write) runs before the process exits.
func run() int {
	var (
		list       = flag.Bool("list", false, "list available experiments and exit")
		runIDs     = flag.String("run", "", "comma-separated experiment ids to run, or \"all\"")
		length     = flag.Uint64("len", 0, "instructions per workload (default 2000000)")
		workloads  = flag.String("workloads", "", "comma-separated workload subset (default the six benchmarks; zoo members wild/storm/phase/band-lo/band-hi and \"hang\" opt in by name)")
		values     = flag.Bool("values", false, "also print the experiment's key metrics as CSV (key,value)")
		timeout    = flag.Duration("timeout", 0, "per-cell deadline, e.g. 5s (0 = none)")
		inject     = flag.String("inject", "", "fault-injection spec, e.g. table:1e-4,history:1e-5,stuck,bits:2")
		seed       = flag.Uint64("seed", 0, "fault-injection PRNG seed")
		keepGoing  = flag.Bool("keep-going", false, "continue past failed cells; report failures at the end")
		parallel   = flag.Int("parallel", 1, "cells to run concurrently")
		nocache    = flag.Bool("nocache", false, "disable the trace-stream cache; re-simulate every cell")
		streams    = flag.String("streams", "", "stream directory: load captured trace streams from (and save new ones to) this dir")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memprofile = flag.String("memprofile", "", "write a heap profile to this file at exit")
		bench      = flag.Bool("bench", false, "benchmark the experiments instead of printing exhibits")
		benchout   = flag.String("benchout", "", "benchmark JSON output path (default BENCH_<date>.json)")
		benchdiff  = flag.String("benchdiff", "", "re-measure the headline predict loop and fail on regression vs this BENCH_*.json baseline")
		maxRegress = flag.Float64("benchmaxregress", 15, "benchdiff: max tolerated ns/op regression, percent")
		backend    = flag.String("backend", "", "predictor backend for the proposed-predictor arm (an unknown name lists the registry)")
		metricsout = flag.String("metricsout", "", "write run metrics (Prometheus text) to this file at exit")
	)
	flag.Parse()

	if *backend != "" {
		if _, ok := pathtrace.PredictorBackendByName(*backend); !ok {
			var names []string
			for _, b := range pathtrace.PredictorBackends() {
				names = append(names, b.Name)
			}
			fmt.Fprintf(os.Stderr, "ntp: unknown backend %q\nntp: backends: %s\n",
				*backend, strings.Join(names, ", "))
			return 2
		}
	}

	if *benchdiff != "" {
		return runBenchDiff(*benchdiff, *length, *maxRegress)
	}

	if *list || *runIDs == "" && !*bench {
		listExperiments()
		if *runIDs == "" && !*list {
			fmt.Fprintln(os.Stderr, "\nuse -run <id> to run an experiment, or -bench to benchmark")
			return 2
		}
		return 0
	}

	opt := pathtrace.ExperimentOptions{Limit: *length, NoStreamCache: *nocache, Backend: *backend}
	if *streams != "" {
		if *nocache {
			fmt.Fprintln(os.Stderr, "ntp: -streams requires the stream cache; drop -nocache")
			return 2
		}
		if err := pathtrace.SharedStreamCache().SetDir(*streams); err != nil {
			fmt.Fprintf(os.Stderr, "ntp: -streams: %v\n", err)
			return 2
		}
	}
	if *workloads != "" {
		opt.Workloads = splitList(*workloads)
	}
	if *inject != "" || *seed != 0 {
		fcfg, err := pathtrace.ParseFaultSpec(*inject)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ntp: %v\n", err)
			return 2
		}
		fcfg.Seed = *seed
		opt.Faults = &fcfg
	}

	var ids []string
	if *runIDs == "all" || *runIDs == "" && *bench {
		for _, e := range pathtrace.Experiments() {
			ids = append(ids, e.Name)
		}
	} else {
		ids = splitList(*runIDs)
	}

	// Validate everything up front: a long sweep should not die on a
	// typo after an hour of simulation.
	if code := validate(ids, opt.Workloads); code != 0 {
		return code
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ntp: cpuprofile: %v\n", err)
			return 2
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "ntp: cpuprofile: %v\n", err)
			return 2
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
			fmt.Fprintf(os.Stderr, "ntp: wrote CPU profile to %s\n", *cpuprofile)
		}()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "ntp: memprofile: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "ntp: memprofile: %v\n", err)
				return
			}
			fmt.Fprintf(os.Stderr, "ntp: wrote heap profile to %s\n", *memprofile)
		}()
	}

	if *bench {
		return runBench(ids, opt, *benchout)
	}

	exps := make([]pathtrace.Experiment, len(ids))
	for i, id := range ids {
		exps[i], _ = pathtrace.ExperimentByName(id)
	}

	hardened := *timeout > 0 || *keepGoing || *parallel > 1
	cfg := pathtrace.HarnessConfig{
		Options:     opt,
		Timeout:     *timeout,
		KeepGoing:   *keepGoing,
		Parallel:    *parallel,
		PerWorkload: hardened,
	}
	if *metricsout != "" {
		cfg.Metrics = pathtrace.NewMetricsRegistry()
		// Stream-cache counters ride along as render-time reads, so the
		// written snapshot ties cell wall time to capture/replay traffic.
		cache := pathtrace.SharedStreamCache()
		for name, read := range map[string]func(s pathtrace.StreamCacheStats) uint64{
			"ntp_stream_captures_total":  func(s pathtrace.StreamCacheStats) uint64 { return s.Captures },
			"ntp_stream_hits_total":      func(s pathtrace.StreamCacheStats) uint64 { return s.Hits },
			"ntp_stream_failures_total":  func(s pathtrace.StreamCacheStats) uint64 { return s.Failures },
			"ntp_stream_loads_total":     func(s pathtrace.StreamCacheStats) uint64 { return s.Loads },
			"ntp_stream_bad_loads_total": func(s pathtrace.StreamCacheStats) uint64 { return s.BadLoads },
			"ntp_stream_saves_total":     func(s pathtrace.StreamCacheStats) uint64 { return s.Saves },
		} {
			read := read
			cfg.Metrics.CounterFunc(name, "Trace-stream cache activity.", nil,
				func() uint64 { return read(cache.Stats()) })
		}
	}

	start := time.Now()
	report, err := pathtrace.RunHarness(cfg, exps)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ntp: %v\n", err)
		return 1
	}

	failed := false
	for _, cell := range report.Cells {
		switch {
		case cell.Skipped:
			fmt.Fprintf(os.Stderr, "ntp: skipped %s\n", cell.Cell)
		case cell.Err != nil:
			failed = true
			fmt.Fprintf(os.Stderr, "ntp: FAIL %v (%.1fs)\n", cell.Err, cell.Err.Duration.Seconds())
		default:
			fmt.Printf("==== %s ====\n%s\n", cell.Cell, cell.Result.Text)
			fmt.Fprintf(os.Stderr, "ntp: %s done in %.1fs\n", cell.Cell, cell.Duration.Seconds())
			if *values {
				keys := make([]string, 0, len(cell.Result.Values))
				for k := range cell.Result.Values {
					keys = append(keys, k)
				}
				sort.Strings(keys)
				for _, k := range keys {
					fmt.Printf("%s,%s,%g\n", cell.Cell, k, cell.Result.Values[k])
				}
			}
		}
	}
	if failed || !report.OK() {
		fmt.Println(report.Summary())
	}
	if !*nocache {
		st := pathtrace.SharedStreamCache().Stats()
		disk := ""
		if *streams != "" {
			disk = fmt.Sprintf(", %d loaded (%d bad)/%d saved to %s", st.Loads, st.BadLoads, st.Saves, *streams)
		}
		fmt.Fprintf(os.Stderr, "ntp: stream cache: %d captured, %d replayed, %d failed, %.1f MB%s\n",
			st.Captures, st.Hits, st.Failures, float64(st.Bytes)/(1<<20), disk)
	}
	fmt.Fprintf(os.Stderr, "ntp: total %.1fs\n", time.Since(start).Seconds())
	if cfg.Metrics != nil {
		if code := writeMetrics(*metricsout, cfg.Metrics); code != 0 {
			return code
		}
	}
	if failed {
		return 1
	}
	return 0
}

// writeMetrics renders the run's registry as Prometheus text.
func writeMetrics(path string, reg *pathtrace.MetricsRegistry) int {
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ntp: metricsout: %v\n", err)
		return 1
	}
	rerr := reg.Render(f)
	if cerr := f.Close(); rerr == nil {
		rerr = cerr
	}
	if rerr != nil {
		fmt.Fprintf(os.Stderr, "ntp: metricsout: %v\n", rerr)
		return 1
	}
	fmt.Fprintf(os.Stderr, "ntp: wrote metrics to %s\n", path)
	return 0
}

// validate checks experiment ids and workload names before any cell
// runs, returning status 2 and the full list of unknowns on error.
func validate(ids, workloadNames []string) int {
	var unknown []string
	for _, id := range ids {
		if _, ok := pathtrace.ExperimentByName(id); !ok {
			unknown = append(unknown, "experiment "+id)
		}
	}
	for _, name := range workloadNames {
		if name == "hang" {
			// Opt-in: naming the hanging synthetic registers it.
			pathtrace.HangWorkload()
		}
		if _, ok := pathtrace.WorkloadByName(name); !ok {
			unknown = append(unknown, "workload "+name)
		}
	}
	if len(unknown) == 0 {
		return 0
	}
	fmt.Fprintf(os.Stderr, "ntp: unknown %s\n", strings.Join(unknown, ", "))
	var expIDs, wlNames []string
	for _, e := range pathtrace.Experiments() {
		expIDs = append(expIDs, e.Name)
	}
	for _, w := range pathtrace.Workloads() {
		wlNames = append(wlNames, w.Name)
	}
	fmt.Fprintf(os.Stderr, "ntp: experiments: %s\n", strings.Join(expIDs, ", "))
	fmt.Fprintf(os.Stderr, "ntp: workloads:   %s (plus \"hang\")\n", strings.Join(wlNames, ", "))
	return 2
}

func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}

func listExperiments() {
	fmt.Println("Experiments (ntp -run <id>):")
	for _, e := range pathtrace.Experiments() {
		fmt.Printf("  %-18s %s\n                     %s\n", e.Name, e.Title, e.Desc)
	}
}
