// Command ntp regenerates the paper's tables and figures.
//
// Usage:
//
//	ntp -list
//	ntp -run table2
//	ntp -run fig7 -len 10000000
//	ntp -run fig8 -workloads compress,gcc
//	ntp -run all -len 5000000
//
// Each experiment streams the six benchmark workloads (or the subset
// given with -workloads) through the trace selector and prints the
// regenerated exhibit. -len scales the per-workload instruction budget;
// the paper used >= 100M instructions per benchmark.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"pathtrace"
)

func main() {
	var (
		list      = flag.Bool("list", false, "list available experiments and exit")
		run       = flag.String("run", "", "experiment id to run, or \"all\"")
		length    = flag.Uint64("len", 0, "instructions per workload (default 2000000)")
		workloads = flag.String("workloads", "", "comma-separated workload subset (default all six)")
		values    = flag.Bool("values", false, "also print the experiment's key metrics as CSV (key,value)")
	)
	flag.Parse()

	if *list || *run == "" {
		listExperiments()
		if *run == "" && !*list {
			fmt.Fprintln(os.Stderr, "\nuse -run <id> to run an experiment")
			os.Exit(2)
		}
		return
	}

	opt := pathtrace.ExperimentOptions{Limit: *length}
	if *workloads != "" {
		opt.Workloads = strings.Split(*workloads, ",")
	}

	var ids []string
	if *run == "all" {
		for _, e := range pathtrace.Experiments() {
			ids = append(ids, e.Name)
		}
	} else {
		ids = strings.Split(*run, ",")
	}

	for _, id := range ids {
		start := time.Now()
		res, err := pathtrace.RunExperiment(strings.TrimSpace(id), opt)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ntp: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("==== %s (%.1fs) ====\n%s\n", id, time.Since(start).Seconds(), res.Text)
		if *values {
			keys := make([]string, 0, len(res.Values))
			for k := range res.Values {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			for _, k := range keys {
				fmt.Printf("%s,%s,%g\n", id, k, res.Values[k])
			}
		}
	}
}

func listExperiments() {
	fmt.Println("Experiments (ntp -run <id>):")
	for _, e := range pathtrace.Experiments() {
		fmt.Printf("  %-18s %s\n                     %s\n", e.Name, e.Title, e.Desc)
	}
}
