// Command ntp regenerates the paper's tables and figures.
//
// Usage:
//
//	ntp -list
//	ntp -run table2
//	ntp -run fig7 -len 10000000
//	ntp -run fig8 -workloads compress,gcc
//	ntp -run all -len 5000000
//
// Hardened runs:
//
//	ntp -run all -timeout 5s -keep-going
//	ntp -run all -workloads compress,gcc,hang -timeout 5s -keep-going
//	ntp -run faults -inject table:1e-4,history:1e-5 -seed 7
//	ntp -run all -parallel 4 -timeout 30s -keep-going
//
// Each experiment streams the six benchmark workloads (or the subset
// given with -workloads) through the trace selector and prints the
// regenerated exhibit. -len scales the per-workload instruction budget;
// the paper used >= 100M instructions per benchmark.
//
// -timeout bounds each (experiment, workload) cell; -keep-going
// continues past failed cells, reporting them at the end; -parallel
// runs cells concurrently (output order stays deterministic). -inject
// enables deterministic fault injection (see internal/faults) and
// -seed pins its PRNG streams; the `faults` experiment sweeps scaled
// rates into a degradation curve. The synthetic `hang` workload (a
// program generator that blocks forever) is available by naming it in
// -workloads, to exercise the deadline machinery.
//
// All experiment output goes to stdout and is bit-for-bit reproducible
// for a fixed flag set; timing goes to stderr.
package main

import (
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"flag"

	"pathtrace"
)

func main() {
	var (
		list      = flag.Bool("list", false, "list available experiments and exit")
		run       = flag.String("run", "", "comma-separated experiment ids to run, or \"all\"")
		length    = flag.Uint64("len", 0, "instructions per workload (default 2000000)")
		workloads = flag.String("workloads", "", "comma-separated workload subset (default all six; add \"hang\" for the hanging synthetic)")
		values    = flag.Bool("values", false, "also print the experiment's key metrics as CSV (key,value)")
		timeout   = flag.Duration("timeout", 0, "per-cell deadline, e.g. 5s (0 = none)")
		inject    = flag.String("inject", "", "fault-injection spec, e.g. table:1e-4,history:1e-5,stuck,bits:2")
		seed      = flag.Uint64("seed", 0, "fault-injection PRNG seed")
		keepGoing = flag.Bool("keep-going", false, "continue past failed cells; report failures at the end")
		parallel  = flag.Int("parallel", 1, "cells to run concurrently")
	)
	flag.Parse()

	if *list || *run == "" {
		listExperiments()
		if *run == "" && !*list {
			fmt.Fprintln(os.Stderr, "\nuse -run <id> to run an experiment")
			os.Exit(2)
		}
		return
	}

	opt := pathtrace.ExperimentOptions{Limit: *length}
	if *workloads != "" {
		opt.Workloads = splitList(*workloads)
	}
	if *inject != "" || *seed != 0 {
		fcfg, err := pathtrace.ParseFaultSpec(*inject)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ntp: %v\n", err)
			os.Exit(2)
		}
		fcfg.Seed = *seed
		opt.Faults = &fcfg
	}

	var ids []string
	if *run == "all" {
		for _, e := range pathtrace.Experiments() {
			ids = append(ids, e.Name)
		}
	} else {
		ids = splitList(*run)
	}

	// Validate everything up front: a long sweep should not die on a
	// typo after an hour of simulation.
	validate(ids, opt.Workloads)

	exps := make([]pathtrace.Experiment, len(ids))
	for i, id := range ids {
		exps[i], _ = pathtrace.ExperimentByName(id)
	}

	hardened := *timeout > 0 || *keepGoing || *parallel > 1
	cfg := pathtrace.HarnessConfig{
		Options:     opt,
		Timeout:     *timeout,
		KeepGoing:   *keepGoing,
		Parallel:    *parallel,
		PerWorkload: hardened,
	}

	start := time.Now()
	report, err := pathtrace.RunHarness(cfg, exps)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ntp: %v\n", err)
		os.Exit(1)
	}

	failed := false
	for _, cell := range report.Cells {
		switch {
		case cell.Skipped:
			fmt.Fprintf(os.Stderr, "ntp: skipped %s\n", cell.Cell)
		case cell.Err != nil:
			failed = true
			fmt.Fprintf(os.Stderr, "ntp: FAIL %v\n", cell.Err)
		default:
			fmt.Printf("==== %s ====\n%s\n", cell.Cell, cell.Result.Text)
			fmt.Fprintf(os.Stderr, "ntp: %s done in %.1fs\n", cell.Cell, cell.Duration.Seconds())
			if *values {
				keys := make([]string, 0, len(cell.Result.Values))
				for k := range cell.Result.Values {
					keys = append(keys, k)
				}
				sort.Strings(keys)
				for _, k := range keys {
					fmt.Printf("%s,%s,%g\n", cell.Cell, k, cell.Result.Values[k])
				}
			}
		}
	}
	if failed || !report.OK() {
		fmt.Println(report.Summary())
	}
	fmt.Fprintf(os.Stderr, "ntp: total %.1fs\n", time.Since(start).Seconds())
	if failed {
		os.Exit(1)
	}
}

// validate checks experiment ids and workload names before any cell
// runs, exiting with status 2 and the full list of unknowns.
func validate(ids, workloadNames []string) {
	var unknown []string
	for _, id := range ids {
		if _, ok := pathtrace.ExperimentByName(id); !ok {
			unknown = append(unknown, "experiment "+id)
		}
	}
	for _, name := range workloadNames {
		if name == "hang" {
			// Opt-in: naming the hanging synthetic registers it.
			pathtrace.HangWorkload()
		}
		if _, ok := pathtrace.WorkloadByName(name); !ok {
			unknown = append(unknown, "workload "+name)
		}
	}
	if len(unknown) == 0 {
		return
	}
	fmt.Fprintf(os.Stderr, "ntp: unknown %s\n", strings.Join(unknown, ", "))
	var expIDs, wlNames []string
	for _, e := range pathtrace.Experiments() {
		expIDs = append(expIDs, e.Name)
	}
	for _, w := range pathtrace.Workloads() {
		wlNames = append(wlNames, w.Name)
	}
	fmt.Fprintf(os.Stderr, "ntp: experiments: %s\n", strings.Join(expIDs, ", "))
	fmt.Fprintf(os.Stderr, "ntp: workloads:   %s (plus \"hang\")\n", strings.Join(wlNames, ", "))
	os.Exit(2)
}

func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}

func listExperiments() {
	fmt.Println("Experiments (ntp -run <id>):")
	for _, e := range pathtrace.Experiments() {
		fmt.Printf("  %-18s %s\n                     %s\n", e.Name, e.Title, e.Desc)
	}
}
