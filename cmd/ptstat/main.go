// Command ptstat prints workload characterisation statistics: dynamic
// instruction mix, trace shape, control-flow class breakdown, and the
// charz predictability metrics (entropy, transition rate, H2P set) for
// each workload — the data behind the paper's Table 1, in more detail.
//
// Usage:
//
//	ptstat                 all workloads (benchmarks + zoo), 2M instructions each
//	ptstat -len 10000000 compress gcc
//	ptstat -json wild storm
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"pathtrace"
)

// mixStats is the classic instruction/trace-shape breakdown.
type mixStats struct {
	Instrs    uint64  `json:"instrs"`
	Traces    uint64  `json:"traces"`
	AvgLen    float64 `json:"avg_trace_len"`
	BrPerTr   float64 `json:"branches_per_trace"`
	CallPct   float64 `json:"call_pct"`
	RetPct    float64 `json:"ret_pct"`
	IndPct    float64 `json:"indirect_pct"`
	CondPct   float64 `json:"cond_pct"`
	StaticTrc int     `json:"static_traces"`
}

// report is one workload's full ptstat output.
type report struct {
	Workload string                 `json:"workload"`
	Params   string                 `json:"params,omitempty"`
	Mix      mixStats               `json:"mix"`
	Charz    *pathtrace.CharzReport `json:"charz"`
}

func characterize(w *pathtrace.Workload, limit uint64) (*report, error) {
	// Capture once; the mix pass and the charz analysis replay the
	// same recording.
	s, err := pathtrace.CaptureTraceStream(w, limit)
	if err != nil {
		return nil, err
	}
	var agg struct {
		traces, branches, calls, rets, indirects uint64
		static                                   map[pathtrace.TraceID]struct{}
	}
	agg.static = map[pathtrace.TraceID]struct{}{}
	instrs, traces, err := s.Replay(nil, func(tr *pathtrace.Trace) {
		agg.traces++
		agg.branches += uint64(tr.NumBr)
		agg.calls += uint64(tr.Calls)
		if tr.EndsInRet {
			agg.rets++
		}
		agg.static[tr.ID] = struct{}{}
		for _, b := range tr.Branches {
			if b.Ctrl.Indirect() {
				agg.indirects++
			}
		}
	})
	if err != nil {
		return nil, err
	}
	cz, err := pathtrace.AnalyzeTraceStream(s, pathtrace.CharzConfig{})
	if err != nil {
		return nil, err
	}
	pct := func(n uint64) float64 { return 100 * float64(n) / float64(instrs) }
	return &report{
		Workload: w.Name,
		Params:   w.Params,
		Mix: mixStats{
			Instrs:    instrs,
			Traces:    traces,
			AvgLen:    float64(instrs) / float64(traces),
			BrPerTr:   float64(agg.branches) / float64(traces),
			CallPct:   pct(agg.calls),
			RetPct:    pct(agg.rets),
			IndPct:    pct(agg.indirects),
			CondPct:   pct(agg.branches),
			StaticTrc: len(agg.static),
		},
		Charz: cz,
	}, nil
}

func main() {
	length := flag.Uint64("len", 2_000_000, "instructions per workload")
	asJSON := flag.Bool("json", false, "emit one JSON object per workload (array)")
	flag.Parse()

	var ws []*pathtrace.Workload
	if flag.NArg() == 0 {
		ws = pathtrace.Workloads()
	} else {
		for _, name := range flag.Args() {
			w, ok := pathtrace.WorkloadByName(name)
			if !ok {
				fmt.Fprintf(os.Stderr, "ptstat: unknown workload %q\n", name)
				os.Exit(1)
			}
			ws = append(ws, w)
		}
	}

	var reports []*report
	for _, w := range ws {
		r, err := characterize(w, *length)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ptstat: %v\n", err)
			os.Exit(1)
		}
		reports = append(reports, r)
	}

	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(reports); err != nil {
			fmt.Fprintf(os.Stderr, "ptstat: %v\n", err)
			os.Exit(1)
		}
		return
	}

	fmt.Printf("%-9s %12s %9s %7s %7s %7s %7s %7s %7s %8s %8s %7s %7s %6s\n",
		"benchmark", "instrs", "traces", "avglen", "br/tr", "call%", "ret%", "ind%", "cond%", "static",
		"H(next)", "trans%", "novel7%", "h2p")
	for _, r := range reports {
		m, c := r.Mix, r.Charz
		var novelty float64
		if n := len(c.Depths); n > 0 {
			novelty = c.Depths[n-1].NoveltyPct
		}
		fmt.Printf("%-9s %12d %9d %7.2f %7.2f %6.2f%% %6.2f%% %6.2f%% %6.2f%% %8d %8.3f %6.2f%% %6.2f%% %6d\n",
			r.Workload, m.Instrs, m.Traces, m.AvgLen, m.BrPerTr,
			m.CallPct, m.RetPct, m.IndPct, m.CondPct, m.StaticTrc,
			c.TraceEntropy, c.TransitionRate, novelty, c.H2PSize)
	}
}
