// Command ptstat prints workload characterisation statistics: dynamic
// instruction mix, trace shape, and control-flow class breakdown for
// each benchmark — the data behind the paper's Table 1, in more detail.
//
// Usage:
//
//	ptstat                 all six benchmarks, 2M instructions each
//	ptstat -len 10000000 compress gcc
package main

import (
	"flag"
	"fmt"
	"os"

	"pathtrace"
)

func main() {
	length := flag.Uint64("len", 2_000_000, "instructions per workload")
	flag.Parse()

	var ws []*pathtrace.Workload
	if flag.NArg() == 0 {
		ws = pathtrace.Workloads()
	} else {
		for _, name := range flag.Args() {
			w, ok := pathtrace.WorkloadByName(name)
			if !ok {
				fmt.Fprintf(os.Stderr, "ptstat: unknown workload %q\n", name)
				os.Exit(1)
			}
			ws = append(ws, w)
		}
	}

	fmt.Printf("%-9s %12s %9s %7s %7s %7s %7s %7s %7s %8s\n",
		"benchmark", "instrs", "traces", "avglen", "br/tr", "call%", "ret%", "ind%", "cond%", "static")
	for _, w := range ws {
		type agg struct {
			traces, branches, calls, rets, indirects, conds uint64
			static                                          map[pathtrace.TraceID]struct{}
		}
		a := agg{static: map[pathtrace.TraceID]struct{}{}}
		instrs, traces, err := pathtrace.RunWorkload(w, *length, func(tr *pathtrace.Trace) {
			a.traces++
			a.branches += uint64(tr.NumBr)
			a.calls += uint64(tr.Calls)
			if tr.EndsInRet {
				a.rets++
			}
			a.static[tr.ID] = struct{}{}
			for _, b := range tr.Branches {
				if b.Ctrl.Indirect() {
					a.indirects++
				}
			}
			a.conds += uint64(tr.NumBr)
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "ptstat: %v\n", err)
			os.Exit(1)
		}
		pct := func(n uint64) float64 { return 100 * float64(n) / float64(instrs) }
		fmt.Printf("%-9s %12d %9d %7.2f %7.2f %6.2f%% %6.2f%% %6.2f%% %6.2f%% %8d\n",
			w.Name, instrs, traces,
			float64(instrs)/float64(traces),
			float64(a.branches)/float64(traces),
			pct(a.calls), pct(a.rets), pct(a.indirects), pct(a.conds),
			len(a.static))
	}
}
