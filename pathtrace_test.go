package pathtrace_test

import (
	"os"
	"strings"
	"testing"

	"pathtrace"
)

func TestPublicAPIPredictionFlow(t *testing.T) {
	w, ok := pathtrace.WorkloadByName("compress")
	if !ok {
		t.Fatal("compress workload missing")
	}
	p := pathtrace.MustNewPredictor(pathtrace.PredictorConfig{
		Depth: 5, IndexBits: 15, Hybrid: true, UseRHS: true,
	})
	instrs, traces, err := pathtrace.RunWorkload(w, 200_000, func(tr *pathtrace.Trace) {
		p.Predict()
		p.Update(tr)
	})
	if err != nil {
		t.Fatal(err)
	}
	if instrs < 200_000 || traces == 0 {
		t.Fatalf("instrs=%d traces=%d", instrs, traces)
	}
	st := p.Stats()
	if st.Predictions != traces {
		t.Errorf("predictions %d != traces %d", st.Predictions, traces)
	}
	if st.MissRate() <= 0 || st.MissRate() >= 100 {
		t.Errorf("miss rate %v implausible", st.MissRate())
	}
}

func TestPublicAPIAssembleAndSimulate(t *testing.T) {
	prog, err := pathtrace.Assemble(`
main:   li   t0, 6
        li   t1, 7
        mul  t2, t0, t1
        out  t2
        halt
`)
	if err != nil {
		t.Fatal(err)
	}
	cpu, err := pathtrace.NewCPU(prog)
	if err != nil {
		t.Fatal(err)
	}
	var traces int
	sel, err := pathtrace.NewTraceSelector(pathtrace.DefaultTraceConfig(), func(*pathtrace.Trace) {
		traces++
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := cpu.Run(0, sel.Feed); err != nil {
		t.Fatal(err)
	}
	sel.Flush()
	if len(cpu.Output) != 1 || cpu.Output[0] != 42 {
		t.Errorf("output = %v, want [42]", cpu.Output)
	}
	if traces == 0 {
		t.Error("no traces selected")
	}
}

func TestPublicAPIBaselineAndCache(t *testing.T) {
	w, _ := pathtrace.WorkloadByName("mksim")
	seq, err := pathtrace.NewSequentialBaseline(pathtrace.SequentialConfig{})
	if err != nil {
		t.Fatal(err)
	}
	tc, err := pathtrace.NewTraceCache(pathtrace.DefaultTraceCacheConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := pathtrace.RunWorkload(w, 100_000,
		func(tr *pathtrace.Trace) { seq.ObserveTrace(tr) },
		func(tr *pathtrace.Trace) { tc.Access(tr.ID) },
	); err != nil {
		t.Fatal(err)
	}
	if seq.Stats().Traces == 0 {
		t.Error("baseline saw no traces")
	}
	if tc.Stats().HitRate() <= 0 {
		t.Error("trace cache never hit")
	}
}

func TestPublicAPIEngine(t *testing.T) {
	hp, err := pathtrace.NewHybridPredictor(pathtrace.PredictorConfig{
		Depth: 7, IndexBits: 16, Hybrid: true, UseRHS: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	eng, err := pathtrace.NewEngine(pathtrace.DefaultEngineConfig(), hp)
	if err != nil {
		t.Fatal(err)
	}
	w, _ := pathtrace.WorkloadByName("jpeg")
	if _, _, err := pathtrace.RunWorkload(w, 100_000, func(tr *pathtrace.Trace) {
		eng.Feed(tr)
	}); err != nil {
		t.Fatal(err)
	}
	res := eng.Finish()
	if res.Traces == 0 || res.IPC() <= 0 {
		t.Errorf("engine result %+v", res)
	}
}

func TestPublicAPIExperiments(t *testing.T) {
	if len(pathtrace.Experiments()) < 14 {
		t.Errorf("only %d experiments registered", len(pathtrace.Experiments()))
	}
	r, err := pathtrace.RunExperiment("table3", pathtrace.ExperimentOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(r.Text, "D-O-L-C") {
		t.Error("table3 output malformed")
	}
	if _, err := pathtrace.RunExperiment("nope", pathtrace.ExperimentOptions{}); err == nil {
		t.Error("unknown experiment accepted")
	}
	if _, ok := pathtrace.ExperimentByName("fig7"); !ok {
		t.Error("fig7 not found")
	}
}

func TestStandardDOLCExported(t *testing.T) {
	d := pathtrace.StandardDOLC(16, 7)
	if d.Depth != 7 || d.Index != 16 {
		t.Errorf("StandardDOLC = %+v", d)
	}
}

// The sample assembly programs shipped under examples/asm must
// assemble, run to completion, and produce correct answers.
func TestExampleAsmPrograms(t *testing.T) {
	cases := []struct {
		file string
		want []uint32
	}{
		{"examples/asm/sieve.s", []uint32{1229}}, // primes below 10000
		{"examples/asm/gcd.s", []uint32{21, 252, 1, 25000}},
		{"examples/asm/sort.s", nil}, // checked below: single non-0xdead checksum
	}
	for _, tc := range cases {
		t.Run(tc.file, func(t *testing.T) {
			src, err := os.ReadFile(tc.file)
			if err != nil {
				t.Fatal(err)
			}
			prog, err := pathtrace.Assemble(string(src))
			if err != nil {
				t.Fatal(err)
			}
			cpu, err := pathtrace.NewCPU(prog)
			if err != nil {
				t.Fatal(err)
			}
			if err := cpu.Run(50_000_000, nil); err != nil {
				t.Fatal(err)
			}
			if !cpu.Halted() {
				t.Fatal("did not halt")
			}
			if tc.want != nil {
				if len(cpu.Output) != len(tc.want) {
					t.Fatalf("output %v, want %v", cpu.Output, tc.want)
				}
				for i := range tc.want {
					if cpu.Output[i] != tc.want[i] {
						t.Errorf("output[%d] = %d, want %d", i, cpu.Output[i], tc.want[i])
					}
				}
				return
			}
			if len(cpu.Output) != 1 || cpu.Output[0] == 0xdead || cpu.Output[0] == 0 {
				t.Errorf("sort checksum output = %v", cpu.Output)
			}
		})
	}
}

// The sample PTC programs under examples/ptc must compile, run, and
// produce independently computed answers.
func TestExamplePTCPrograms(t *testing.T) {
	collatzTotal := func(n int) uint32 {
		var total uint32
		for i := 1; i <= n; i++ {
			x := uint32(i)
			for x != 1 {
				if x&1 == 1 {
					x = 3*x + 1
				} else {
					x >>= 1
				}
				total++
			}
		}
		return total
	}
	cases := []struct {
		file string
		want []uint32
	}{
		{"examples/ptc/collatz.ptc", []uint32{collatzTotal(1000)}},
		{"examples/ptc/queens.ptc", []uint32{92}},
		{"examples/ptc/hash.ptc", nil}, // probe count checked loosely below
	}
	for _, tc := range cases {
		t.Run(tc.file, func(t *testing.T) {
			src, err := os.ReadFile(tc.file)
			if err != nil {
				t.Fatal(err)
			}
			prog, err := pathtrace.CompilePTCProgram(string(src))
			if err != nil {
				t.Fatal(err)
			}
			cpu, err := pathtrace.NewCPU(prog)
			if err != nil {
				t.Fatal(err)
			}
			if err := cpu.Run(50_000_000, nil); err != nil {
				t.Fatal(err)
			}
			if !cpu.Halted() {
				t.Fatal("did not halt")
			}
			if tc.want != nil {
				if len(cpu.Output) != len(tc.want) || cpu.Output[0] != tc.want[0] {
					t.Errorf("output = %v, want %v", cpu.Output, tc.want)
				}
				return
			}
			// hash.ptc: 512 insertions into 1024 slots; total probes must
			// be at least 512 and well under quadratic blowup.
			if len(cpu.Output) != 1 || cpu.Output[0] < 512 || cpu.Output[0] > 5120 {
				t.Errorf("probe count = %v", cpu.Output)
			}
		})
	}
}

// A PTC-compiled program must flow through the whole front-end pipeline.
func TestPTCThroughPredictor(t *testing.T) {
	src, err := os.ReadFile("examples/ptc/collatz.ptc")
	if err != nil {
		t.Fatal(err)
	}
	prog, err := pathtrace.CompilePTCProgram(string(src))
	if err != nil {
		t.Fatal(err)
	}
	cpu, err := pathtrace.NewCPU(prog)
	if err != nil {
		t.Fatal(err)
	}
	p := pathtrace.MustNewPredictor(pathtrace.PredictorConfig{
		Depth: 7, IndexBits: 16, Hybrid: true, UseRHS: true,
	})
	sel, err := pathtrace.NewTraceSelector(pathtrace.DefaultTraceConfig(), func(tr *pathtrace.Trace) {
		p.Predict()
		p.Update(tr)
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := cpu.Run(0, sel.Feed); err != nil {
		t.Fatal(err)
	}
	sel.Flush()
	st := p.Stats()
	if st.Predictions == 0 {
		t.Fatal("no predictions")
	}
	// Collatz branches are data-driven but the interpreter-free compiled
	// code is repetitive; expect a sane band.
	if r := st.MissRate(); r <= 0 || r > 60 {
		t.Errorf("miss rate %v implausible", r)
	}
}

func TestPublicAPIWorkloadZooAndCharz(t *testing.T) {
	zoo := pathtrace.WorkloadZoo()
	if len(zoo) < 5 {
		t.Fatalf("WorkloadZoo() returned %d workloads, want ≥5", len(zoo))
	}
	all := pathtrace.Workloads()
	if len(all) != 6+len(zoo) {
		t.Errorf("Workloads() returned %d, want 6 benchmarks + %d zoo", len(all), len(zoo))
	}
	for _, z := range zoo {
		if w, ok := pathtrace.WorkloadByName(z.Name); !ok || w != z {
			t.Errorf("WorkloadByName(%q) does not resolve the zoo member", z.Name)
		}
		if z.Params == "" {
			t.Errorf("zoo member %s has empty Params", z.Name)
		}
	}

	w, _ := pathtrace.WorkloadByName("wild")
	s, err := pathtrace.CaptureTraceStream(w, 100_000)
	if err != nil {
		t.Fatal(err)
	}
	r, err := pathtrace.AnalyzeTraceStream(s, pathtrace.CharzConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if r.Workload != "wild" || r.Traces == 0 || r.H2PSize == 0 {
		t.Errorf("charz report implausible: %+v", r)
	}
	if r.TransitionRate < 50 {
		t.Errorf("wild transition rate %.1f%%, want high", r.TransitionRate)
	}
	if !strings.Contains(r.Text(), "H2P set") {
		t.Error("text report missing H2P section")
	}
}
