package pathtrace_test

import (
	"fmt"
	"log"

	"pathtrace"
)

// Assemble a program, run it, and partition its execution into traces.
func Example() {
	prog, err := pathtrace.Assemble(`
main:   li   t0, 3
loop:   addi t0, t0, -1
        bnez t0, loop
        out  t0
        halt
`)
	if err != nil {
		log.Fatal(err)
	}
	cpu, err := pathtrace.NewCPU(prog)
	if err != nil {
		log.Fatal(err)
	}
	traces := 0
	sel, err := pathtrace.NewTraceSelector(pathtrace.DefaultTraceConfig(), func(*pathtrace.Trace) {
		traces++
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := cpu.Run(0, sel.Feed); err != nil {
		log.Fatal(err)
	}
	sel.Flush()
	fmt.Println("output:", cpu.Output)
	fmt.Println("instructions:", cpu.InstrCount)
	// Output:
	// output: [0]
	// instructions: 9
}

// Compile the C-like PTC language down to the simulated ISA.
func ExampleCompilePTC() {
	prog, err := pathtrace.CompilePTCProgram(`
func double(x) { return x + x; }
func main()   { out(double(21)); }
`)
	if err != nil {
		log.Fatal(err)
	}
	cpu, err := pathtrace.NewCPU(prog)
	if err != nil {
		log.Fatal(err)
	}
	if err := cpu.Run(0, nil); err != nil {
		log.Fatal(err)
	}
	fmt.Println(cpu.Output[0])
	// Output: 42
}

// Drive the paper's hybrid predictor over a deterministic trace loop:
// after warmup every trace is predicted.
func ExampleNewPredictor() {
	prog, err := pathtrace.CompilePTCProgram(`
func main() {
    var i = 0;
    var sum = 0;
    while (i < 5000) { sum += i; i += 1; }
    out(sum);
}
`)
	if err != nil {
		log.Fatal(err)
	}
	cpu, err := pathtrace.NewCPU(prog)
	if err != nil {
		log.Fatal(err)
	}
	pred, err := pathtrace.NewPredictor(pathtrace.PredictorConfig{
		Depth: 7, IndexBits: 16, Hybrid: true, UseRHS: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	sel, err := pathtrace.NewTraceSelector(pathtrace.DefaultTraceConfig(), func(tr *pathtrace.Trace) {
		pred.Predict()
		pred.Update(tr)
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := cpu.Run(0, sel.Feed); err != nil {
		log.Fatal(err)
	}
	sel.Flush()
	// A counted loop is fully predictable once learned: only a handful
	// of cold-start traces miss.
	st := pred.Stats()
	fmt.Printf("mispredictions out of %d traces: %d\n", st.Predictions, st.Mispredictions())
	// Output: mispredictions out of 4065 traces: 17
}
