// Tracecache-frontend: model a complete trace-cache fetch unit — the
// next trace predictor supplies a trace identifier each cycle, the
// trace cache is probed with its hashed index and validated with the
// full identifier, exactly the arrangement §5.5's cost-reduced
// predictor relies on. Reports the fetch-unit level statistics a
// front-end architect would look at.
package main

import (
	"fmt"
	"log"

	"pathtrace"
)

func main() {
	const limit = 2_000_000
	fmt.Printf("%-9s %9s %9s %12s %12s %14s\n",
		"workload", "pred %", "tc hit %", "both ok %", "avg trace", "fetch IPC-ish")
	for _, w := range pathtrace.Workloads() {
		pred := pathtrace.MustNewPredictor(pathtrace.PredictorConfig{
			Depth: 7, IndexBits: 16, Hybrid: true, UseRHS: true,
			CostReduced: true, // store the 10-bit cache index, as §5.5 proposes
		})
		tc, err := pathtrace.NewTraceCache(pathtrace.DefaultTraceCacheConfig())
		if err != nil {
			log.Fatal(err)
		}
		var bothOK, total uint64
		instrs, traces, err := pathtrace.RunWorkload(w, limit, func(tr *pathtrace.Trace) {
			p := pred.Predict()
			hit := tc.Access(tr.ID)
			// A useful fetch cycle needs the right prediction AND a
			// trace-cache hit. The cost-reduced predictor predicts the
			// hashed cache index; the cache's stored full ID validates.
			if p.Valid && p.Hashed == tr.Hash && hit {
				bothOK++
			}
			total++
			pred.Update(tr)
		})
		if err != nil {
			log.Fatal(err)
		}
		avgLen := float64(instrs) / float64(traces)
		useful := float64(bothOK) / float64(total)
		fmt.Printf("%-9s %8.2f%% %8.2f%% %11.2f%% %12.2f %14.2f\n",
			w.Name,
			100-pred.Stats().MissRate(),
			tc.Stats().HitRate(),
			100*useful,
			avgLen,
			useful*avgLen) // instructions per cycle the fetch unit could sustain
	}
	fmt.Println("\n\"fetch IPC-ish\" = fraction of cycles with a correct prediction and a")
	fmt.Println("trace-cache hit, times the average trace length — the bandwidth a")
	fmt.Println("trace-cache front end delivers before back-end limits.")
}
