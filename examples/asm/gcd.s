# gcd.s — Euclid's algorithm over a table of pairs; outputs each gcd.
# Run: go run ./cmd/ptasm examples/asm/gcd.s
        .data
pairs:  .word 1071, 462
        .word 3528, 3780
        .word 17, 5
        .word 100000, 75000
        .word 0, 0              # terminator
        .text
main:   la   s0, pairs
loop:   lw   a0, 0(s0)
        lw   a1, 4(s0)
        addi s0, s0, 8
        or   t0, a0, a1
        beqz t0, done           # hit the terminator
        jal  gcd
        out  v0
        j    loop
done:   halt

# gcd(a0, a1) -> v0, via the remainder chain.
gcd:    bnez a1, step
        move v0, a0
        ret
step:   rem  t0, a0, a1
        move a0, a1
        move a1, t0
        j    gcd
