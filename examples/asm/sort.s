# sort.s — insertion sort of 64 pseudo-random words, then a checksum of
# the sorted order (sum of value*index) to prove sortedness.
# Run: go run ./cmd/ptasm examples/asm/sort.s
        .data
arr:    .space 256              # 64 words
        .text
main:   # fill with an LCG
        la   t0, arr
        li   t1, 64
        li   t2, 12345
fill:   li   t3, 1103515245
        mul  t2, t2, t3
        addi t2, t2, 12345
        srl  t4, t2, 16
        andi t4, t4, 1023
        sw   t4, 0(t0)
        addi t0, t0, 4
        addi t1, t1, -1
        bnez t1, fill

        # insertion sort
        li   s0, 1              # i
isort:  li   t5, 64
        bge  s0, t5, check
        la   t0, arr
        sll  t1, s0, 2
        add  t0, t0, t1
        lw   s1, 0(t0)          # key
        addi s2, s0, -1         # j
inner:  bltz s2, place
        la   t0, arr
        sll  t1, s2, 2
        add  t0, t0, t1
        lw   t2, 0(t0)
        ble  t2, s1, place
        sw   t2, 4(t0)          # shift right
        addi s2, s2, -1
        j    inner
place:  la   t0, arr
        addi t1, s2, 1
        sll  t1, t1, 2
        add  t0, t0, t1
        sw   s1, 0(t0)
        addi s0, s0, 1
        j    isort

        # verify: monotone, and emit checksum
check:  li   s0, 1
        li   s3, 0              # checksum
        la   t0, arr
        lw   s4, 0(t0)          # previous
vloop:  li   t5, 64
        bge  s0, t5, emit
        la   t0, arr
        sll  t1, s0, 2
        add  t0, t0, t1
        lw   t2, 0(t0)
        blt  t2, s4, bad        # must be non-decreasing
        mul  t3, t2, s0
        add  s3, s3, t3
        move s4, t2
        addi s0, s0, 1
        j    vloop
bad:    li   t6, 0xdead
        out  t6
        halt
emit:   out  s3
        halt
