# sieve.s — count primes below 10000 with the sieve of Eratosthenes.
# Run: go run ./cmd/ptasm -traces examples/asm/sieve.s
        .data
flags:  .space 10000            # one byte per candidate
        .text
main:   li   s0, 10000          # limit
        li   s1, 2              # candidate
        li   s2, 0              # prime count
outer:  bge  s1, s0, done
        la   t0, flags
        add  t0, t0, s1
        lbu  t1, 0(t0)
        bnez t1, next           # composite: already marked
        addi s2, s2, 1          # found a prime
        # mark multiples
        add  t2, s1, s1
mark:   bge  t2, s0, next
        la   t3, flags
        add  t3, t3, t2
        li   t4, 1
        sb   t4, 0(t3)
        add  t2, t2, s1
        j    mark
next:   addi s1, s1, 1
        j    outer
done:   out  s2
        halt
