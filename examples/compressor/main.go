// Compressor: run the LZW `compress` workload and compare the
// path-based next trace predictor against the paper's idealized
// sequential multiple-branch baseline, across history depths — a
// single-benchmark slice of Figures 6/7.
package main

import (
	"fmt"
	"log"

	"pathtrace"
)

func main() {
	const limit = 2_000_000
	w, ok := pathtrace.WorkloadByName("compress")
	if !ok {
		log.Fatal("compress workload not registered")
	}
	fmt.Printf("workload: %s — %s\n\n", w.Name, w.Description)

	// One pass per depth keeps the example simple; the experiment
	// harness batches all depths into a single pass instead.
	fmt.Printf("%-28s %10s\n", "predictor", "misp %")
	seq, err := pathtrace.NewSequentialBaseline(pathtrace.SequentialConfig{})
	if err != nil {
		log.Fatal(err)
	}
	if _, _, err := pathtrace.RunWorkload(w, limit, func(tr *pathtrace.Trace) {
		seq.ObserveTrace(tr)
	}); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-28s %9.2f%%  (gshare branch misp %.2f%%)\n",
		"sequential (idealized)", seq.Stats().TraceMissRate(), seq.Stats().BranchMissRate())

	for _, depth := range []int{0, 1, 3, 5, 7} {
		p := pathtrace.MustNewPredictor(pathtrace.PredictorConfig{
			Depth: depth, IndexBits: 16, Hybrid: true, UseRHS: true,
		})
		if _, _, err := pathtrace.RunWorkload(w, limit, func(tr *pathtrace.Trace) {
			p.Predict()
			p.Update(tr)
		}); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-28s %9.2f%%\n",
			fmt.Sprintf("path-based, depth %d (2^16)", depth), p.Stats().MissRate())
	}

	unb, err := pathtrace.NewUnboundedPredictor(pathtrace.UnboundedConfig{
		Depth: 7, Hybrid: true, UseRHS: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	if _, _, err := pathtrace.RunWorkload(w, limit, func(tr *pathtrace.Trace) {
		unb.Predict()
		unb.Update(tr)
	}); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-28s %9.2f%%\n", "path-based, depth 7 (unbounded)", unb.Stats().MissRate())
}
