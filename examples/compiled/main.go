// Compiled: write a workload in PTC (the repository's small C-like
// language), compile it to PT32, and drive the whole front-end stack —
// trace selector, path-based predictor, sequential baseline — over the
// compiled program. This mirrors how the paper's own substrate worked:
// C benchmarks compiled for the simulated ISA.
package main

import (
	"fmt"
	"log"

	"pathtrace"
)

// A miniature interpreter workload in PTC: a register VM executing a
// small bytecode program, the control-flow pattern where path-based
// prediction shines (cf. the mksim benchmark).
const source = `
// bytecode: op in the low 4 bits, arg in the rest
// 0=halt 1=push-imm 2=add 3=sub 4=jnz(arg) 5=dup 6=out
var code[32];
var stack[64];

func runvm() {
    var pc = 0;
    var sp = 0;
    var steps = 0;
    while (1) {
        var word = code[pc];
        var op = word & 15;
        var arg = word >> 4;
        pc = pc + 1;
        steps = steps + 1;
        if (op == 0) { return steps; }
        if (op == 1) { stack[sp] = arg; sp = sp + 1; }
        if (op == 2) { stack[sp-2] = stack[sp-2] + stack[sp-1]; sp = sp - 1; }
        if (op == 3) { stack[sp-2] = stack[sp-2] - stack[sp-1]; sp = sp - 1; }
        if (op == 4) { if (stack[sp-1] != 0) { pc = arg; } }
        if (op == 5) { stack[sp] = stack[sp-1]; sp = sp + 1; }
        if (op == 6) { out(stack[sp-1]); sp = sp - 1; }
    }
    return 0;
}

func main() {
    // countdown loop in bytecode: push 50; L: push 1; sub; dup; jnz L; out
    code[0] = 1 + (50 << 4);  // push 50
    code[1] = 1 + (1 << 4);   // push 1
    code[2] = 2 + (1 << 4);   // placeholder: replaced below
    code[2] = 3;              // sub
    code[3] = 5;              // dup
    code[4] = 4 + (1 << 4);   // jnz -> instruction 1
    code[5] = 6;              // out (the final 0)
    code[6] = 0;              // halt

    var round = 0;
    var totalSteps = 0;
    while (round < 400) {
        totalSteps = totalSteps + runvm();
        round = round + 1;
    }
    out(totalSteps);
}
`

func main() {
	asmText, err := pathtrace.CompilePTC(source)
	if err != nil {
		log.Fatal(err)
	}
	prog, err := pathtrace.Assemble(asmText)
	if err != nil {
		log.Fatal(err)
	}
	cpu, err := pathtrace.NewCPU(prog)
	if err != nil {
		log.Fatal(err)
	}

	pred := pathtrace.MustNewPredictor(pathtrace.PredictorConfig{
		Depth: 7, IndexBits: 16, Hybrid: true, UseRHS: true,
	})
	seq, err := pathtrace.NewSequentialBaseline(pathtrace.SequentialConfig{})
	if err != nil {
		log.Fatal(err)
	}
	sel, err := pathtrace.NewTraceSelector(pathtrace.DefaultTraceConfig(), func(tr *pathtrace.Trace) {
		pred.Predict()
		pred.Update(tr)
		seq.ObserveTrace(tr)
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := cpu.Run(0, sel.Feed); err != nil {
		log.Fatal(err)
	}
	sel.Flush()

	fmt.Printf("compiled %d instructions of PT32 from %d bytes of PTC\n",
		len(prog.Text), len(source))
	fmt.Printf("executed %d instructions; VM outputs: ... %v\n",
		cpu.InstrCount, cpu.Output[len(cpu.Output)-2:])
	fmt.Printf("path-based predictor:   %6.2f%% trace misprediction\n", pred.Stats().MissRate())
	fmt.Printf("sequential baseline:    %6.2f%% trace misprediction\n", seq.Stats().TraceMissRate())
}
