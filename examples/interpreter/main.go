// Interpreter: contrast the Return History Stack's effect on the two
// interpreter-flavoured workloads — mksim (bytecode VM, disciplined
// call/return behaviour) and xlisp (recursive evaluator whose longjmp
// escapes leave calls with no matching returns). The paper found the
// RHS helps most benchmarks but HURTS xlisp for exactly this reason.
package main

import (
	"fmt"
	"log"

	"pathtrace"
)

func main() {
	const limit = 2_000_000
	fmt.Printf("%-8s %14s %14s %10s\n", "workload", "with RHS %", "without RHS %", "delta")
	for _, name := range []string{"mksim", "xlisp", "go", "compress"} {
		w, ok := pathtrace.WorkloadByName(name)
		if !ok {
			log.Fatalf("workload %q not registered", name)
		}
		with := pathtrace.MustNewPredictor(pathtrace.PredictorConfig{
			Depth: 7, IndexBits: 16, Hybrid: true, UseRHS: true,
		})
		without := pathtrace.MustNewPredictor(pathtrace.PredictorConfig{
			Depth: 7, IndexBits: 16, Hybrid: true,
		})
		if _, _, err := pathtrace.RunWorkload(w, limit,
			func(tr *pathtrace.Trace) {
				with.Predict()
				with.Update(tr)
			},
			func(tr *pathtrace.Trace) {
				without.Predict()
				without.Update(tr)
			},
		); err != nil {
			log.Fatal(err)
		}
		a, b := with.Stats().MissRate(), without.Stats().MissRate()
		verdict := "RHS helps"
		if a > b {
			verdict = "RHS hurts"
		}
		fmt.Printf("%-8s %13.2f%% %13.2f%% %+9.2f  %s\n", name, a, b, a-b, verdict)
	}
	fmt.Println("\nxlisp's longjmp escapes desynchronise the return history stack —")
	fmt.Println("the paper reports the same effect on the real xlisp interpreter (§5.2).")
}
