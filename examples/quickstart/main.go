// Quickstart: assemble a small PT32 program, partition its execution
// into traces, and drive the paper's hybrid next-trace predictor over
// the stream — the end-to-end flow in ~60 lines.
package main

import (
	"fmt"
	"log"

	"pathtrace"
)

const program = `
# Sum the first 200 collatz path lengths, with a helper call per number.
        .text
main:   li   s0, 1              # n
        li   s1, 0              # total
loop:   move a0, s0
        jal  pathlen
        add  s1, s1, v0
        addi s0, s0, 1
        li   t0, 200
        ble  s0, t0, loop
        out  s1
        halt

pathlen:
        li   v0, 0
        move t0, a0
plo:    li   t1, 1
        beq  t0, t1, done
        andi t2, t0, 1
        beqz t2, even
        li   t3, 3
        mul  t0, t0, t3
        addi t0, t0, 1
        j    step
even:   srl  t0, t0, 1
step:   addi v0, v0, 1
        j    plo
done:   ret
`

func main() {
	prog, err := pathtrace.Assemble(program)
	if err != nil {
		log.Fatal(err)
	}
	cpu, err := pathtrace.NewCPU(prog)
	if err != nil {
		log.Fatal(err)
	}

	// The predictor configuration from the paper's headline result:
	// depth-7 path history, 2^16-entry correlated table, hybrid with a
	// secondary table, and the Return History Stack.
	pred := pathtrace.MustNewPredictor(pathtrace.PredictorConfig{
		Depth: 7, IndexBits: 16, Hybrid: true, UseRHS: true,
	})

	sel, err := pathtrace.NewTraceSelector(pathtrace.DefaultTraceConfig(), func(tr *pathtrace.Trace) {
		pred.Predict()  // predict the next trace from the path history
		pred.Update(tr) // reveal what actually executed
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := cpu.Run(0, sel.Feed); err != nil {
		log.Fatal(err)
	}
	sel.Flush()

	st := pred.Stats()
	fmt.Printf("program output:        %v\n", cpu.Output)
	fmt.Printf("instructions retired:  %d\n", cpu.InstrCount)
	fmt.Printf("traces predicted:      %d\n", st.Predictions)
	fmt.Printf("trace mispredictions:  %d (%.2f%%)\n", st.Mispredictions(), st.MissRate())
	fmt.Printf("cold predictions:      %d\n", st.Cold)
	fmt.Printf("from secondary table:  %d\n", st.FromSecondary)
	fmt.Println("\n(collatz branch outcomes are data-driven, so a meaningful share of")
	fmt.Println("traces is inherently unpredictable — run the other examples to see")
	fmt.Println("the predictor on the paper's benchmark suite)")
}
