package charz

import (
	"context"

	"pathtrace/internal/metrics"
	"pathtrace/internal/stream"
)

// Analyze characterizes one captured stream: it replays the stream
// through a fresh Analyzer and returns the report, stamped with the
// stream's identity (workload, params, instruction count).
func Analyze(ctx context.Context, s *stream.Stream, cfg Config) (*Report, error) {
	a, err := New(cfg)
	if err != nil {
		return nil, err
	}
	instrs, _, err := s.Replay(ctx, a.Consume)
	if err != nil {
		return nil, err
	}
	r := a.Report()
	r.Workload = s.Key().Workload
	r.Params = s.Key().Params
	r.Instrs = instrs
	return r, nil
}

// Export publishes the report's headline metrics into reg, labelled by
// workload, so a serving or harness process can surface workload
// predictability next to its live predictor counters. The report is a
// snapshot: gauges read the values computed at Export time.
func (r *Report) Export(reg *metrics.Registry) {
	l := metrics.Labels{"workload": r.Workload}
	gauge := func(name, help string, v float64) {
		reg.GaugeFunc(name, help, l, func() float64 { return v })
	}
	gauge("charz_trace_entropy_bits", "Entropy of the trace-ID distribution (no path conditioning).", r.TraceEntropy)
	gauge("charz_transition_rate_pct", "Share of consecutive same-static occurrences whose successor changed.", r.TransitionRate)
	gauge("charz_distinct_traces", "Static trace working-set size.", float64(r.DistinctTraces))
	gauge("charz_ref_missrate_pct", "Reference predictor misprediction rate.", r.RefMissRate)
	gauge("charz_h2p_size", "Smallest static-trace set covering the configured share of reference misses.", float64(r.H2PSize))
	gauge("charz_h2p_share_pct", "H2P set size as a share of the static working set.", r.H2PShare)
	for _, d := range r.Depths {
		dl := metrics.Labels{"workload": r.Workload, "depth": itoa(d.Depth)}
		cond, pairs, novel := d.CondEntropy, float64(d.Pairs), d.NoveltyPct
		reg.GaugeFunc("charz_cond_entropy_bits",
			"Conditional entropy of the next trace given the last <depth> hashed trace IDs.",
			dl, func() float64 { return cond })
		reg.GaugeFunc("charz_path_pairs",
			"Distinct (path, next) pairs at <depth> — unbounded-table working set.",
			dl, func() float64 { return pairs })
		reg.GaugeFunc("charz_path_novelty_pct",
			"Share of observations introducing a new (path, next) pair at <depth>.",
			dl, func() float64 { return novel })
	}
}

// itoa avoids strconv for the tiny depth ints.
func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
