// Package charz characterizes workload predictability: how hard a
// selected-trace stream is for a path-based next-trace predictor,
// measured from the stream itself rather than from any one predictor's
// score. The metrics follow the levers the source paper identifies —
// path history depth and table reach — plus the hard-to-predict-set
// lens of Lin & Tarsa ("Branch Prediction Is Not a Solved Problem"):
//
//   - Trace-transition behaviour: for each static trace, how often its
//     dynamic successor changes between consecutive occurrences. A
//     stream dominated by stable successors is learnable by even the
//     depth-0 predictor; a wild stream defeats any finite table.
//   - Path-history entropy: the conditional entropy H(next | path_d)
//     of the next trace given the last d hashed trace IDs, at the
//     paper's history depths. This is the information-theoretic floor
//     on a depth-d path predictor's miss rate, independent of sizing.
//   - Working set: distinct (path_d, next) pairs — the table reach a
//     depth-d predictor would need to capture the stream exactly.
//   - Hard-to-predict traces: the smallest set of static trace IDs
//     covering a target share of a reference hybrid predictor's
//     mispredictions. A tiny H2P set means misses concentrate in a few
//     statics (fixable with targeted capacity); a large one means the
//     stream is uniformly hard.
//
// An Analyzer is a stream consumer (func(*trace.Trace)), so it rides
// the capture-once/replay-many path like any predictor and can run in
// the same ReplayParallel fan-out as the backends it explains.
package charz

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"pathtrace/internal/predictor"
	"pathtrace/internal/trace"
)

// DefaultDepths are the path history depths characterized by default:
// the paper's sweep endpoints plus the intermediate points where its
// depth curves bend (Figure 5).
var DefaultDepths = []int{1, 2, 4, 7}

// Transition-rate class boundaries: a static trace is stable when its
// successor changes in at most 10% of consecutive occurrences, wild
// when in at least 90%, mixed in between (the taken-rate banding of
// the branch-prediction literature, applied to trace successors).
const (
	stableMax = 0.10
	wildMin   = 0.90
)

// Config parameterizes an Analyzer. The zero value gives the standard
// characterization: DefaultDepths, 90% H2P coverage, and the paper's
// headline hybrid (depth 7, 2^16 entries, RHS) as the reference
// predictor for miss attribution.
type Config struct {
	// Depths are the path history depths to compute conditional
	// entropy and working-set size at. Nil means DefaultDepths.
	Depths []int

	// H2PCoverage is the share of reference-predictor mispredictions
	// the hard-to-predict set must cover, in (0, 1]. 0 means 0.90.
	H2PCoverage float64

	// TopH2P bounds the per-trace entries listed in the report (the
	// set size itself is always exact). 0 means 8.
	TopH2P int

	// Predictor configures the reference predictor whose misses the
	// H2P set explains. A zero value means the paper's headline
	// hybrid: Backend "hybrid", depth 7, 2^16 entries, RHS.
	Predictor predictor.Config
}

func (c Config) withDefaults() Config {
	if c.Depths == nil {
		c.Depths = DefaultDepths
	}
	if c.H2PCoverage == 0 {
		c.H2PCoverage = 0.90
	}
	if c.TopH2P == 0 {
		c.TopH2P = 8
	}
	zero := predictor.Config{}
	if c.Predictor == zero {
		c.Predictor = predictor.Config{Backend: "hybrid", Depth: 7, IndexBits: 16, UseRHS: true}
	}
	return c
}

// succStats tracks one static trace's successor behaviour.
type succStats struct {
	count  uint64   // dynamic occurrences
	pairs  uint64   // occurrences with a previous occurrence to compare
	trans  uint64   // pairs whose successor differed
	misses uint64   // reference-predictor misses attributed to this trace
	last   trace.ID // successor at the previous occurrence
	seen   bool
}

// depthState tracks entropy and working-set accounting for one depth.
type depthState struct {
	depth int
	hist  map[uint64]uint64 // path fold -> occurrences
	joint map[uint64]uint64 // (path fold, next ID) fold -> occurrences
}

// Analyzer accumulates predictability metrics over one trace stream.
// It is a single-goroutine stream consumer; use one Analyzer per
// stream.
type Analyzer struct {
	cfg     Config
	ref     predictor.NextTracePredictor
	statics map[trace.ID]*succStats
	depths  []depthState
	ring    [maxRing]trace.HashedID
	filled  int
	head    int
	traces  uint64
	prev    trace.ID
	haveOne bool
}

// maxRing bounds configurable depths (well past the paper's 7).
const maxRing = 32

// New returns an Analyzer for the given configuration.
func New(cfg Config) (*Analyzer, error) {
	cfg = cfg.withDefaults()
	a := &Analyzer{cfg: cfg, statics: map[trace.ID]*succStats{}}
	for _, d := range cfg.Depths {
		if d < 1 || d > maxRing {
			return nil, fmt.Errorf("charz: depth %d outside [1, %d]", d, maxRing)
		}
		a.depths = append(a.depths, depthState{
			depth: d,
			hist:  map[uint64]uint64{},
			joint: map[uint64]uint64{},
		})
	}
	sort.Slice(a.depths, func(i, j int) bool { return a.depths[i].depth < a.depths[j].depth })
	ref, err := predictor.New(cfg.Predictor)
	if err != nil {
		return nil, fmt.Errorf("charz: reference predictor: %w", err)
	}
	a.ref = ref
	return a, nil
}

// fnv-1a over 64-bit words; used to fold path histories and
// (path, next) pairs into map keys. Collisions across a 64-bit space
// are negligible at stream scale.
const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

func fnvFold(h, word uint64) uint64 {
	for i := 0; i < 8; i++ {
		h ^= word & 0xff
		h *= fnvPrime
		word >>= 8
	}
	return h
}

// Consume observes one trace; it is a stream consumer in the shape
// Replay and ReplayParallel expect.
func (a *Analyzer) Consume(tr *trace.Trace) {
	// Reference predictor: strict Predict/Update alternation, miss
	// attributed to the trace that actually occurred.
	p := a.ref.Predict()
	if !(p.Valid && p.ID == tr.ID) {
		a.static(tr.ID).misses++
	}
	a.ref.Update(tr)

	st := a.static(tr.ID)
	st.count++
	a.traces++

	// Successor transition accounting for the previous trace.
	if a.haveOne {
		ps := a.static(a.prev)
		if ps.seen {
			ps.pairs++
			if ps.last != tr.ID {
				ps.trans++
			}
		}
		ps.last = tr.ID
		ps.seen = true
	}
	a.prev = tr.ID
	a.haveOne = true

	// Entropy / working set at each depth: the history is the d traces
	// before tr, the outcome is tr itself.
	for i := range a.depths {
		ds := &a.depths[i]
		if a.filled < ds.depth {
			continue
		}
		hk := a.foldHistory(ds.depth)
		ds.hist[hk]++
		ds.joint[fnvFold(hk, uint64(tr.ID))]++
	}

	// Push tr into the ring after accounting (it becomes history for
	// the next trace).
	a.ring[a.head] = tr.Hash
	a.head = (a.head + 1) % maxRing
	if a.filled < maxRing {
		a.filled++
	}
}

func (a *Analyzer) static(id trace.ID) *succStats {
	st := a.statics[id]
	if st == nil {
		st = &succStats{}
		a.statics[id] = st
	}
	return st
}

// foldHistory folds the most recent d ring entries, oldest first, so
// the fold is order-sensitive like a real path history register.
func (a *Analyzer) foldHistory(d int) uint64 {
	h := uint64(fnvOffset)
	for i := d; i >= 1; i-- {
		idx := (a.head - i + maxRing) % maxRing
		h = fnvFold(h, uint64(a.ring[idx]))
	}
	return h
}

// entropy computes the Shannon entropy (bits) of a count distribution.
// The counts are summed in sorted order so the result is bit-identical
// across runs (map iteration order would otherwise reorder the
// floating-point sum).
func entropy(counts map[uint64]uint64) float64 {
	if len(counts) == 0 {
		return 0
	}
	cs := make([]uint64, 0, len(counts))
	var n uint64
	for _, c := range counts {
		cs = append(cs, c)
		n += c
	}
	sort.Slice(cs, func(i, j int) bool { return cs[i] < cs[j] })
	var sum float64 // sum of c*log2(c)
	for _, c := range cs {
		sum += float64(c) * math.Log2(float64(c))
	}
	return math.Log2(float64(n)) - sum/float64(n)
}

// DepthStats characterizes one path history depth.
type DepthStats struct {
	Depth int `json:"depth"`
	// PathEntropy is H(path_d) in bits: how spread-out the depth-d
	// path histories themselves are.
	PathEntropy float64 `json:"path_entropy_bits"`
	// CondEntropy is H(next | path_d) in bits: the residual
	// uncertainty about the next trace after seeing the last d hashed
	// trace IDs. 0 means a depth-d path predictor with unbounded
	// tables would be perfect after warmup. Caveat: this is the
	// plug-in estimate, which collapses toward 0 once paths stop
	// repeating — on adversarial streams deep paths are mostly
	// unique, so at high depths NoveltyPct is the honest difficulty
	// signal and CondEntropy is only meaningful when it is large.
	CondEntropy float64 `json:"cond_entropy_bits"`
	// Pairs is the number of distinct (path_d, next) pairs — the
	// working-set size an unbounded depth-d table would grow to.
	Pairs int `json:"pairs"`
	// NoveltyPct is the share (percent) of depth-d observations that
	// introduced a previously unseen (path_d, next) pair — the
	// compulsory-miss floor of an unbounded depth-d path predictor.
	// ~0 for a learnable stream, ~100 when successors are random.
	NoveltyPct float64 `json:"novelty_pct"`
}

// H2PEntry is one hard-to-predict static trace.
type H2PEntry struct {
	ID     trace.ID `json:"id"`
	Misses uint64   `json:"misses"`
	// Share is this trace's fraction of all reference mispredictions.
	Share float64 `json:"share"`
}

// Report is the characterization of one stream.
type Report struct {
	Workload string `json:"workload"`
	Params   string `json:"params,omitempty"`
	Traces   uint64 `json:"traces"`
	Instrs   uint64 `json:"instrs,omitempty"`

	// DistinctTraces is the static trace count (trace working set).
	DistinctTraces int `json:"distinct_traces"`
	// TraceEntropy is H(next) in bits with no path conditioning — the
	// depth-0 baseline for the conditional entropies.
	TraceEntropy float64 `json:"trace_entropy_bits"`

	// TransitionRate is the share (percent) of consecutive same-static
	// occurrences whose successor changed.
	TransitionRate float64 `json:"transition_rate_pct"`
	// Stable/Mixed/WildShare split the dynamic successor pairs by
	// their static trace's transition-rate class, in percent.
	StableShare float64 `json:"stable_share_pct"`
	MixedShare  float64 `json:"mixed_share_pct"`
	WildShare   float64 `json:"wild_share_pct"`

	Depths []DepthStats `json:"depths"`

	// RefBackend/RefMissRate identify the reference predictor and its
	// miss rate (percent) on this stream.
	RefBackend  string  `json:"ref_backend"`
	RefMissRate float64 `json:"ref_missrate_pct"`
	// H2PSize is the size of the smallest static-trace set covering
	// H2PCoverage of the reference mispredictions; H2PCoverage is the
	// coverage that set actually achieves (≥ the configured target).
	H2PSize     int     `json:"h2p_size"`
	H2PCoverage float64 `json:"h2p_coverage_pct"`
	// H2PShare is H2PSize as a percentage of DistinctTraces: small
	// means misses concentrate in a few statics.
	H2PShare float64 `json:"h2p_share_pct"`
	// H2PTraces lists the heaviest H2P members (bounded by TopH2P).
	H2PTraces []H2PEntry `json:"h2p_traces"`
}

// Report computes the characterization from everything consumed so
// far. The analyzer can keep consuming afterwards; a later Report
// reflects the longer prefix.
func (a *Analyzer) Report() *Report {
	r := &Report{
		Traces:         a.traces,
		DistinctTraces: len(a.statics),
		RefBackend:     a.cfg.Predictor.Backend,
		RefMissRate:    a.ref.Stats().MissRate(),
	}

	// Depth-0 entropy over static trace occurrence counts.
	idCounts := make(map[uint64]uint64, len(a.statics))
	for id, st := range a.statics {
		idCounts[uint64(id)] = st.count
	}
	r.TraceEntropy = entropy(idCounts)

	// Transition rate and class shares, weighted by dynamic pairs.
	var pairs, trans, stablePairs, wildPairs uint64
	for _, st := range a.statics {
		pairs += st.pairs
		trans += st.trans
		if st.pairs == 0 {
			continue
		}
		switch rate := float64(st.trans) / float64(st.pairs); {
		case rate <= stableMax:
			stablePairs += st.pairs
		case rate >= wildMin:
			wildPairs += st.pairs
		}
	}
	if pairs > 0 {
		r.TransitionRate = 100 * float64(trans) / float64(pairs)
		r.StableShare = 100 * float64(stablePairs) / float64(pairs)
		r.WildShare = 100 * float64(wildPairs) / float64(pairs)
		r.MixedShare = 100 - r.StableShare - r.WildShare
	}

	for i := range a.depths {
		ds := &a.depths[i]
		ph := entropy(ds.hist)
		jh := entropy(ds.joint)
		var obs uint64
		for _, c := range ds.hist {
			obs += c
		}
		d := DepthStats{
			Depth:       ds.depth,
			PathEntropy: ph,
			CondEntropy: math.Max(0, jh-ph),
			Pairs:       len(ds.joint),
		}
		if obs > 0 {
			d.NoveltyPct = 100 * float64(len(ds.joint)) / float64(obs)
		}
		r.Depths = append(r.Depths, d)
	}

	// H2P set: statics by miss count, heaviest first (ID breaks ties
	// so the report is deterministic), smallest prefix covering the
	// target share.
	var totalMisses uint64
	type missEntry struct {
		id     trace.ID
		misses uint64
	}
	var byMiss []missEntry
	for id, st := range a.statics {
		totalMisses += st.misses
		if st.misses > 0 {
			byMiss = append(byMiss, missEntry{id, st.misses})
		}
	}
	sort.Slice(byMiss, func(i, j int) bool {
		if byMiss[i].misses != byMiss[j].misses {
			return byMiss[i].misses > byMiss[j].misses
		}
		return byMiss[i].id < byMiss[j].id
	})
	if totalMisses > 0 {
		target := uint64(math.Ceil(a.cfg.H2PCoverage * float64(totalMisses)))
		var covered uint64
		for _, e := range byMiss {
			covered += e.misses
			r.H2PSize++
			if len(r.H2PTraces) < a.cfg.TopH2P {
				r.H2PTraces = append(r.H2PTraces, H2PEntry{
					ID:     e.id,
					Misses: e.misses,
					Share:  float64(e.misses) / float64(totalMisses),
				})
			}
			if covered >= target {
				break
			}
		}
		r.H2PCoverage = 100 * float64(covered) / float64(totalMisses)
		if r.DistinctTraces > 0 {
			r.H2PShare = 100 * float64(r.H2PSize) / float64(r.DistinctTraces)
		}
	}
	return r
}

// Text renders the report as a human-readable block.
func (r *Report) Text() string {
	var b strings.Builder
	name := r.Workload
	if name == "" {
		name = "(stream)"
	}
	fmt.Fprintf(&b, "workload %s: %d traces, %d static\n", name, r.Traces, r.DistinctTraces)
	if r.Params != "" {
		fmt.Fprintf(&b, "  params           %s\n", r.Params)
	}
	fmt.Fprintf(&b, "  trace entropy    %.3f bits\n", r.TraceEntropy)
	fmt.Fprintf(&b, "  transition rate  %.2f%%  (stable %.1f%% / mixed %.1f%% / wild %.1f%%)\n",
		r.TransitionRate, r.StableShare, r.MixedShare, r.WildShare)
	for _, d := range r.Depths {
		fmt.Fprintf(&b, "  depth %d          H(next|path) %.3f bits, %d (path,next) pairs, %.1f%% novel\n",
			d.Depth, d.CondEntropy, d.Pairs, d.NoveltyPct)
	}
	fmt.Fprintf(&b, "  ref %-12s %.2f%% misses\n", r.RefBackend, r.RefMissRate)
	fmt.Fprintf(&b, "  H2P set          %d traces (%.1f%% of static) cover %.1f%% of misses\n",
		r.H2PSize, r.H2PShare, r.H2PCoverage)
	for _, e := range r.H2PTraces {
		fmt.Fprintf(&b, "    %-24s %8d misses  %5.1f%%\n", e.ID, e.Misses, 100*e.Share)
	}
	return b.String()
}
