package charz

import (
	"context"
	"encoding/json"
	"flag"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"pathtrace/internal/metrics"
	"pathtrace/internal/stream"
	"pathtrace/internal/trace"
	"pathtrace/internal/workload"
)

var update = flag.Bool("update", false, "rewrite golden files")

// synthetic trace builder: an ID encodes (pc, outcomes); charz only
// looks at ID and Hash.
func mkTrace(pc uint32, outcomes uint8) trace.Trace {
	id := trace.MakeID(pc, outcomes)
	return trace.Trace{ID: id, Hash: id.Hash(), Len: 4}
}

func feed(t *testing.T, a *Analyzer, seq []trace.Trace) {
	t.Helper()
	for i := range seq {
		a.Consume(&seq[i])
	}
}

// A strictly repeating sequence has zero conditional entropy at any
// depth ≥ 1 and zero transition rate.
func TestPerfectlyPredictableStream(t *testing.T) {
	a, err := New(Config{Depths: []int{1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	seq := []trace.Trace{mkTrace(0x100, 1), mkTrace(0x200, 2), mkTrace(0x300, 3)}
	for i := 0; i < 400; i++ {
		feed(t, a, seq)
	}
	r := a.Report()
	if r.Traces != 1200 || r.DistinctTraces != 3 {
		t.Fatalf("traces %d distinct %d, want 1200/3", r.Traces, r.DistinctTraces)
	}
	if want := math.Log2(3); math.Abs(r.TraceEntropy-want) > 1e-9 {
		t.Errorf("TraceEntropy = %v, want %v", r.TraceEntropy, want)
	}
	if r.TransitionRate != 0 {
		t.Errorf("TransitionRate = %v, want 0", r.TransitionRate)
	}
	if r.StableShare != 100 {
		t.Errorf("StableShare = %v, want 100", r.StableShare)
	}
	for _, d := range r.Depths {
		if d.CondEntropy > 1e-9 {
			t.Errorf("depth %d CondEntropy = %v, want 0", d.Depth, d.CondEntropy)
		}
		if d.Pairs != 3 {
			t.Errorf("depth %d Pairs = %d, want 3", d.Depth, d.Pairs)
		}
	}
}

// A hub trace whose successor alternates every occurrence is wild by
// transition rate, and depth-1 history (the hub itself) cannot resolve
// it — but depth-2 history (the trace before the hub) can: conditional
// entropy must drop from ~0.5 bits to ~0 as depth grows.
func TestAlternatingSuccessorResolvedByPath(t *testing.T) {
	a, err := New(Config{Depths: []int{1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	// h x h y h x h y ... : after [h] the next is x or y (1 bit, half
	// the steps → 0.5 bits average); after [x,h] it is always y and
	// after [y,h] always x.
	h, x, y := mkTrace(0x100, 0), mkTrace(0x200, 0), mkTrace(0x300, 0)
	for i := 0; i < 500; i++ {
		feed(t, a, []trace.Trace{h, x, h, y})
	}
	r := a.Report()
	if r.WildShare < 40 {
		t.Errorf("WildShare = %v, want ≥40 (h alternates every time)", r.WildShare)
	}
	if d := r.Depths[0]; math.Abs(d.CondEntropy-0.5) > 0.01 {
		t.Errorf("depth-1 CondEntropy = %v, want ~0.5: the hub alone cannot disambiguate", d.CondEntropy)
	}
	if d := r.Depths[1]; d.CondEntropy > 1e-6 {
		t.Errorf("depth-2 CondEntropy = %v, want ~0: the pre-hub trace resolves the alternation", d.CondEntropy)
	}
	if r.TraceEntropy < 1.0 {
		t.Errorf("TraceEntropy = %v, want ≥1 bit", r.TraceEntropy)
	}
}

// H2P set: when misses concentrate in one static trace, the set is
// tiny and names it.
func TestH2PConcentration(t *testing.T) {
	a, err := New(Config{Depths: []int{1}})
	if err != nil {
		t.Fatal(err)
	}
	// A long stable run (learnable) punctuated by an unpredictable
	// trace whose successor is driven by an irregular pattern.
	stable := []trace.Trace{mkTrace(0x100, 0), mkTrace(0x200, 0), mkTrace(0x300, 0)}
	chaos := mkTrace(0x400, 0)
	succ := []trace.Trace{mkTrace(0x500, 0), mkTrace(0x600, 0), mkTrace(0x700, 0), mkTrace(0x800, 0)}
	rng := uint32(12345)
	for i := 0; i < 2000; i++ {
		feed(t, a, stable)
		a.Consume(&chaos)
		rng ^= rng << 13
		rng ^= rng >> 17
		rng ^= rng << 5
		a.Consume(&succ[rng%4])
	}
	r := a.Report()
	if r.H2PSize == 0 || r.H2PSize > 6 {
		t.Fatalf("H2PSize = %d, want small nonzero set", r.H2PSize)
	}
	if len(r.H2PTraces) == 0 {
		t.Fatal("no H2P entries listed")
	}
	if r.H2PCoverage < 90 {
		t.Errorf("H2PCoverage = %v, want ≥90", r.H2PCoverage)
	}
	// The chaos successors (0x500..0x800) should dominate the misses.
	top := r.H2PTraces[0]
	if pc := top.ID.StartPC(); pc < 0x500 || pc > 0x800 {
		t.Errorf("top H2P trace starts at %#x, want a chaos successor", pc)
	}
}

func TestDepthValidation(t *testing.T) {
	if _, err := New(Config{Depths: []int{0}}); err == nil {
		t.Error("depth 0 accepted")
	}
	if _, err := New(Config{Depths: []int{maxRing + 1}}); err == nil {
		t.Error("oversized depth accepted")
	}
}

// The report must round-trip through JSON with its field names intact
// (ptstat -json and the CI smoke grep depend on them).
func TestReportJSON(t *testing.T) {
	a, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	feed(t, a, []trace.Trace{mkTrace(0x100, 0), mkTrace(0x200, 0), mkTrace(0x100, 0)})
	b, err := json.Marshal(a.Report())
	if err != nil {
		t.Fatal(err)
	}
	for _, field := range []string{
		`"workload"`, `"traces"`, `"distinct_traces"`, `"trace_entropy_bits"`,
		`"transition_rate_pct"`, `"depths"`, `"cond_entropy_bits"`,
		`"ref_missrate_pct"`, `"h2p_size"`,
	} {
		if !strings.Contains(string(b), field) {
			t.Errorf("JSON report missing %s:\n%s", field, b)
		}
	}
}

func TestExportMetrics(t *testing.T) {
	a, err := New(Config{Depths: []int{1, 7}})
	if err != nil {
		t.Fatal(err)
	}
	feed(t, a, []trace.Trace{mkTrace(0x100, 0), mkTrace(0x200, 0), mkTrace(0x100, 0)})
	r := a.Report()
	r.Workload = "unittest"
	reg := metrics.NewRegistry()
	r.Export(reg)
	var sb strings.Builder
	if err := reg.Render(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		`charz_trace_entropy_bits{workload="unittest"}`,
		`charz_h2p_size{workload="unittest"}`,
		`charz_cond_entropy_bits{depth="7",workload="unittest"}`,
		`charz_path_pairs{depth="1",workload="unittest"}`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered metrics missing %s\n%s", want, out)
		}
	}
}

// Golden report for compress: the full analysis pipeline (capture →
// replay → report → text rendering) must stay bit-stable. Regenerate
// with -update when an intentional change shifts the numbers.
func TestCompressGoldenReport(t *testing.T) {
	w, ok := workload.ByName("compress")
	if !ok {
		t.Fatal("no compress workload")
	}
	s, err := stream.Capture(nil, w, 200_000, trace.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	r, err := Analyze(context.Background(), s, Config{})
	if err != nil {
		t.Fatal(err)
	}
	got := r.Text()
	golden := filepath.Join("testdata", "compress_golden.txt")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to create)", err)
	}
	if got != string(want) {
		t.Errorf("compress report drifted from golden:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// Analyze must be deterministic: two runs over the same stream give
// byte-identical text reports.
func TestAnalyzeDeterministic(t *testing.T) {
	w, _ := workload.ByName("compress")
	s, err := stream.Capture(nil, w, 100_000, trace.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	r1, err := Analyze(context.Background(), s, Config{})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Analyze(context.Background(), s, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if r1.Text() != r2.Text() {
		t.Errorf("reports differ:\n%s\nvs\n%s", r1.Text(), r2.Text())
	}
}
