package isa

import "fmt"

// NumRegs is the number of architectural general-purpose registers.
const NumRegs = 32

// Reg names an architectural register. Register 0 always reads as zero;
// writes to it are discarded.
type Reg uint8

// Conventional register assignments. They mirror the MIPS o32 calling
// convention closely enough that hand-written assembly reads naturally.
const (
	Zero Reg = 0 // hardwired zero
	AT   Reg = 1 // assembler temporary (used by pseudo-instructions)
	V0   Reg = 2 // function result
	V1   Reg = 3 // function result (second word)
	A0   Reg = 4 // argument 0
	A1   Reg = 5 // argument 1
	A2   Reg = 6 // argument 2
	A3   Reg = 7 // argument 3
	T0   Reg = 8 // caller-saved temporaries T0..T7
	T1   Reg = 9
	T2   Reg = 10
	T3   Reg = 11
	T4   Reg = 12
	T5   Reg = 13
	T6   Reg = 14
	T7   Reg = 15
	S0   Reg = 16 // callee-saved S0..S7
	S1   Reg = 17
	S2   Reg = 18
	S3   Reg = 19
	S4   Reg = 20
	S5   Reg = 21
	S6   Reg = 22
	S7   Reg = 23
	T8   Reg = 24
	T9   Reg = 25
	K0   Reg = 26 // reserved
	K1   Reg = 27 // reserved
	GP   Reg = 28 // global pointer (base of .data)
	SP   Reg = 29 // stack pointer
	FP   Reg = 30 // frame pointer
	RA   Reg = 31 // return address
)

var regNames = [NumRegs]string{
	"zero", "at", "v0", "v1", "a0", "a1", "a2", "a3",
	"t0", "t1", "t2", "t3", "t4", "t5", "t6", "t7",
	"s0", "s1", "s2", "s3", "s4", "s5", "s6", "s7",
	"t8", "t9", "k0", "k1", "gp", "sp", "fp", "ra",
}

// String returns the conventional name of the register, e.g. "sp".
func (r Reg) String() string {
	if int(r) < len(regNames) {
		return regNames[r]
	}
	return fmt.Sprintf("r%d", uint8(r))
}

// RegByName resolves a register name. Both conventional names ("sp",
// "ra", "t0") and numeric names ("r29") are accepted.
func RegByName(name string) (Reg, bool) {
	for i, n := range regNames {
		if n == name {
			return Reg(i), true
		}
	}
	if len(name) >= 2 && name[0] == 'r' {
		n := 0
		for _, c := range name[1:] {
			if c < '0' || c > '9' {
				return 0, false
			}
			n = n*10 + int(c-'0')
			if n >= NumRegs {
				return 0, false
			}
		}
		return Reg(n), true
	}
	return 0, false
}

// Valid reports whether r names an architectural register.
func (r Reg) Valid() bool { return r < NumRegs }
