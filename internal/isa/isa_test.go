package isa

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestRegString(t *testing.T) {
	cases := map[Reg]string{
		Zero: "zero", RA: "ra", SP: "sp", GP: "gp", T0: "t0", S7: "s7", V0: "v0",
	}
	for r, want := range cases {
		if got := r.String(); got != want {
			t.Errorf("Reg(%d).String() = %q, want %q", r, got, want)
		}
	}
}

func TestRegByName(t *testing.T) {
	for i := 0; i < NumRegs; i++ {
		r := Reg(i)
		got, ok := RegByName(r.String())
		if !ok || got != r {
			t.Errorf("RegByName(%q) = %v,%v, want %v", r.String(), got, ok, r)
		}
	}
	// Numeric aliases.
	if r, ok := RegByName("r31"); !ok || r != RA {
		t.Errorf("RegByName(r31) = %v,%v, want ra", r, ok)
	}
	for _, bad := range []string{"", "r32", "r", "rx", "foo", "r-1"} {
		if _, ok := RegByName(bad); ok {
			t.Errorf("RegByName(%q) unexpectedly ok", bad)
		}
	}
}

func TestOpcodeByNameRoundTrip(t *testing.T) {
	for op := Opcode(0); int(op) < NumOpcodes; op++ {
		got, ok := OpcodeByName(op.String())
		if !ok || got != op {
			t.Errorf("OpcodeByName(%q) = %v,%v, want %v", op.String(), got, ok, op)
		}
	}
	if _, ok := OpcodeByName("bogus"); ok {
		t.Error("OpcodeByName(bogus) unexpectedly ok")
	}
}

func TestCtrlClassification(t *testing.T) {
	tests := []struct {
		op       Opcode
		ctrl     CtrlClass
		indirect bool
		call     bool
	}{
		{ADD, CtrlNone, false, false},
		{BEQ, CtrlCondDir, false, false},
		{BGEU, CtrlCondDir, false, false},
		{J, CtrlJumpDir, false, false},
		{JAL, CtrlCallDir, false, true},
		{JR, CtrlJumpInd, true, false},
		{JALR, CtrlCallInd, true, true},
		{RET, CtrlReturn, true, false},
		{HALT, CtrlHalt, false, false},
	}
	for _, tc := range tests {
		if got := tc.op.Ctrl(); got != tc.ctrl {
			t.Errorf("%v.Ctrl() = %v, want %v", tc.op, got, tc.ctrl)
		}
		if got := tc.op.Ctrl().Indirect(); got != tc.indirect {
			t.Errorf("%v indirect = %v, want %v", tc.op, got, tc.indirect)
		}
		if got := tc.op.Ctrl().Call(); got != tc.call {
			t.Errorf("%v call = %v, want %v", tc.op, got, tc.call)
		}
	}
	if CtrlNone.ControlFlow() {
		t.Error("CtrlNone.ControlFlow() = true")
	}
	if !CtrlCondDir.ControlFlow() {
		t.Error("CtrlCondDir.ControlFlow() = false")
	}
}

// randInstr generates a canonical, encodable instruction for the given opcode.
func randInstr(rng *rand.Rand, op Opcode) Instr {
	in := Instr{Op: op}
	switch op.Format() {
	case FormatR:
		in.Rd = Reg(rng.Intn(NumRegs))
		in.Rs = Reg(rng.Intn(NumRegs))
		in.Rt = Reg(rng.Intn(NumRegs))
	case FormatI:
		in.Rt = Reg(rng.Intn(NumRegs))
		in.Rs = Reg(rng.Intn(NumRegs))
		in.Imm = int32(int16(rng.Uint32()))
	case FormatJ:
		in.Target = rng.Uint32() & 0x03ffffff << 2
	}
	return in
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for op := Opcode(0); int(op) < NumOpcodes; op++ {
		for i := 0; i < 64; i++ {
			in := randInstr(rng, op)
			got, err := Decode(in.Encode())
			if err != nil {
				t.Fatalf("Decode(Encode(%v)): %v", in, err)
			}
			if got != in {
				t.Fatalf("round trip %v -> %v", in, got)
			}
		}
	}
}

func TestDecodeInvalid(t *testing.T) {
	bad := uint32(NumOpcodes) << 26
	if _, err := Decode(bad); err == nil {
		t.Error("Decode of invalid opcode succeeded")
	}
}

// Property: encoding is stable — Encode(Decode(Encode(x))) == Encode(x).
func TestEncodeStableQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		op := Opcode(rng.Intn(NumOpcodes))
		in := randInstr(rng, op)
		w := in.Encode()
		d, err := Decode(w)
		if err != nil {
			return false
		}
		return d.Encode() == w
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestBranchTarget(t *testing.T) {
	in := Instr{Op: BEQ, Imm: -3}
	if got, want := in.BranchTarget(0x1000), uint32(0x1000+4-12); got != want {
		t.Errorf("backward target = %#x, want %#x", got, want)
	}
	in.Imm = 5
	if got, want := in.BranchTarget(0x1000), uint32(0x1000+4+20); got != want {
		t.Errorf("forward target = %#x, want %#x", got, want)
	}
}

func TestInstrString(t *testing.T) {
	cases := []struct {
		in   Instr
		want string
	}{
		{Instr{Op: NOP}, "nop"},
		{Instr{Op: HALT}, "halt"},
		{Instr{Op: RET}, "ret"},
		{Instr{Op: ADD, Rd: V0, Rs: A0, Rt: A1}, "add v0, a0, a1"},
		{Instr{Op: ADDI, Rt: T0, Rs: Zero, Imm: 42}, "addi t0, zero, 42"},
		{Instr{Op: LW, Rt: T1, Rs: SP, Imm: 8}, "lw t1, 8(sp)"},
		{Instr{Op: SW, Rt: T1, Rs: SP, Imm: -4}, "sw t1, -4(sp)"},
		{Instr{Op: BEQ, Rs: T0, Rt: Zero, Imm: 7}, "beq t0, zero, 7"},
		{Instr{Op: J, Target: 0x40}, "j 0x40"},
		{Instr{Op: JR, Rs: T9}, "jr t9"},
		{Instr{Op: JALR, Rd: RA, Rs: T9}, "jalr ra, t9"},
		{Instr{Op: OUT, Rs: V0}, "out v0"},
	}
	for _, tc := range cases {
		if got := tc.in.String(); got != tc.want {
			t.Errorf("String() = %q, want %q", got, tc.want)
		}
	}
	for op := Opcode(0); int(op) < NumOpcodes; op++ {
		s := Instr{Op: op}.String()
		if s == "" || strings.Contains(s, "%!") {
			t.Errorf("opcode %d String() = %q", op, s)
		}
	}
}
