package isa

// Opcode identifies a PT32 operation. Opcodes are dense small integers;
// the binary encoding maps them onto MIPS-style major opcode and funct
// fields (see encoding.go).
type Opcode uint8

// The complete PT32 instruction set.
const (
	// R-type ALU operations: rd <- rs OP rt.
	ADD Opcode = iota
	SUB
	MUL
	DIV // rd <- rs / rt (signed; division by zero yields 0)
	REM // rd <- rs % rt (signed; modulo by zero yields 0)
	AND
	OR
	XOR
	NOR
	SLT  // set on less than, signed
	SLTU // set on less than, unsigned
	SLLV // shift left logical by register
	SRLV // shift right logical by register
	SRAV // shift right arithmetic by register

	// I-type ALU operations: rt <- rs OP imm.
	ADDI
	ANDI
	ORI
	XORI
	SLTI
	SLTIU
	SLL // shift by immediate (shamt in imm)
	SRL
	SRA
	LUI // rt <- imm << 16

	// Memory operations: rt <-> mem[rs+imm].
	LW
	LB  // sign-extending byte load
	LBU // zero-extending byte load
	SW
	SB

	// Conditional branches: PC-relative, compare rs against rt.
	BEQ
	BNE
	BLT
	BGE
	BLTU
	BGEU

	// Unconditional control flow.
	J    // direct jump to absolute word target
	JAL  // direct call: ra <- PC+4, jump to target
	JR   // indirect jump to address in rs
	JALR // indirect call: rd <- PC+4, jump to rs
	RET  // return: jump to address in ra (architecturally distinct from JR)

	// System operations.
	HALT // stop the program
	OUT  // emit the value of rs to the simulator output channel
	NOP  // no operation

	numOpcodes
)

// NumOpcodes is the number of defined opcodes.
const NumOpcodes = int(numOpcodes)

// Format describes how an instruction's operands are encoded.
type Format uint8

const (
	FormatR Format = iota // rd, rs, rt (register-register)
	FormatI               // rt, rs, imm16
	FormatJ               // target26
)

// CtrlClass classifies an opcode's effect on control flow. The trace
// selector and the predictors key off this classification.
type CtrlClass uint8

const (
	CtrlNone    CtrlClass = iota // falls through to PC+4
	CtrlCondDir                  // conditional branch, direct target
	CtrlJumpDir                  // unconditional jump, direct target
	CtrlCallDir                  // call, direct target
	CtrlJumpInd                  // unconditional jump, indirect target
	CtrlCallInd                  // call, indirect target
	CtrlReturn                   // return (indirect target via ra)
	CtrlHalt                     // program end
)

// Indirect reports whether the class transfers control to a target that
// is not statically encoded in the instruction. Indirect transfers must
// terminate a trace.
func (c CtrlClass) Indirect() bool {
	switch c {
	case CtrlJumpInd, CtrlCallInd, CtrlReturn:
		return true
	}
	return false
}

// Call reports whether the class is a procedure call.
func (c CtrlClass) Call() bool { return c == CtrlCallDir || c == CtrlCallInd }

// ControlFlow reports whether the class can redirect the PC at all.
func (c CtrlClass) ControlFlow() bool { return c != CtrlNone }

type opInfo struct {
	name   string
	format Format
	ctrl   CtrlClass
}

var opTable = [NumOpcodes]opInfo{
	ADD:   {"add", FormatR, CtrlNone},
	SUB:   {"sub", FormatR, CtrlNone},
	MUL:   {"mul", FormatR, CtrlNone},
	DIV:   {"div", FormatR, CtrlNone},
	REM:   {"rem", FormatR, CtrlNone},
	AND:   {"and", FormatR, CtrlNone},
	OR:    {"or", FormatR, CtrlNone},
	XOR:   {"xor", FormatR, CtrlNone},
	NOR:   {"nor", FormatR, CtrlNone},
	SLT:   {"slt", FormatR, CtrlNone},
	SLTU:  {"sltu", FormatR, CtrlNone},
	SLLV:  {"sllv", FormatR, CtrlNone},
	SRLV:  {"srlv", FormatR, CtrlNone},
	SRAV:  {"srav", FormatR, CtrlNone},
	ADDI:  {"addi", FormatI, CtrlNone},
	ANDI:  {"andi", FormatI, CtrlNone},
	ORI:   {"ori", FormatI, CtrlNone},
	XORI:  {"xori", FormatI, CtrlNone},
	SLTI:  {"slti", FormatI, CtrlNone},
	SLTIU: {"sltiu", FormatI, CtrlNone},
	SLL:   {"sll", FormatI, CtrlNone},
	SRL:   {"srl", FormatI, CtrlNone},
	SRA:   {"sra", FormatI, CtrlNone},
	LUI:   {"lui", FormatI, CtrlNone},
	LW:    {"lw", FormatI, CtrlNone},
	LB:    {"lb", FormatI, CtrlNone},
	LBU:   {"lbu", FormatI, CtrlNone},
	SW:    {"sw", FormatI, CtrlNone},
	SB:    {"sb", FormatI, CtrlNone},
	BEQ:   {"beq", FormatI, CtrlCondDir},
	BNE:   {"bne", FormatI, CtrlCondDir},
	BLT:   {"blt", FormatI, CtrlCondDir},
	BGE:   {"bge", FormatI, CtrlCondDir},
	BLTU:  {"bltu", FormatI, CtrlCondDir},
	BGEU:  {"bgeu", FormatI, CtrlCondDir},
	J:     {"j", FormatJ, CtrlJumpDir},
	JAL:   {"jal", FormatJ, CtrlCallDir},
	JR:    {"jr", FormatR, CtrlJumpInd},
	JALR:  {"jalr", FormatR, CtrlCallInd},
	RET:   {"ret", FormatR, CtrlReturn},
	HALT:  {"halt", FormatR, CtrlHalt},
	OUT:   {"out", FormatR, CtrlNone},
	NOP:   {"nop", FormatR, CtrlNone},
}

// String returns the assembler mnemonic for the opcode.
func (op Opcode) String() string {
	if int(op) < NumOpcodes {
		return opTable[op].name
	}
	return "op?"
}

// Format returns the encoding format of the opcode.
func (op Opcode) Format() Format { return opTable[op].format }

// Ctrl returns the control-flow classification of the opcode.
func (op Opcode) Ctrl() CtrlClass { return opTable[op].ctrl }

// Valid reports whether op is a defined opcode.
func (op Opcode) Valid() bool { return int(op) < NumOpcodes }

// OpcodeByName resolves an assembler mnemonic to its opcode.
func OpcodeByName(name string) (Opcode, bool) {
	op, ok := opByName[name]
	return op, ok
}

var opByName = func() map[string]Opcode {
	m := make(map[string]Opcode, NumOpcodes)
	for op, info := range opTable {
		m[info.name] = Opcode(op)
	}
	return m
}()
