// Package isa defines the PT32 instruction set architecture used by the
// reproduction as its execution substrate.
//
// PT32 is a 32-bit, MIPS-like load/store register machine: 32 general
// purpose registers (r0 hardwired to zero), fixed 32-bit instruction
// words, word-aligned PCs, and conventional (non-delayed) branches —
// the same deviation from MIPS that SimpleScalar makes in the paper
// this repository reproduces.
//
// The ISA deliberately distinguishes every control-flow class the next
// trace predictor cares about:
//
//   - conditional branches (BEQ, BNE, BLT, BGE, BLTU, BGEU) with
//     PC-relative targets, embeddable inside traces;
//   - direct jumps (J) and direct calls (JAL), embeddable because their
//     targets are static;
//   - indirect jumps (JR), indirect calls (JALR) and returns (RET),
//     which must terminate a trace because a trace is named only by its
//     starting PC and conditional branch outcomes.
//
// Instructions encode to and decode from 32-bit words in three formats
// (R, I and J), so programs can be stored in simulated memory exactly
// as a binary would be.
package isa
