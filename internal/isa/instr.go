package isa

import (
	"errors"
	"fmt"
)

// Instr is a decoded PT32 instruction. Field use depends on the
// opcode's format:
//
//	FormatR: Rd, Rs, Rt
//	FormatI: Rt (destination or store source), Rs (base/left operand), Imm
//	FormatJ: Target (absolute byte address of a word-aligned location)
type Instr struct {
	Op     Opcode
	Rd     Reg
	Rs     Reg
	Rt     Reg
	Imm    int32  // sign-extended 16-bit immediate (shamt for shifts)
	Target uint32 // absolute byte target for J/JAL
}

// Binary encoding layout (32-bit words):
//
//	bits 31..26  opcode
//	R-type: 25..21 rd, 20..16 rs, 15..11 rt
//	I-type: 25..21 rt, 20..16 rs, 15..0 imm
//	J-type: 25..0  word target (byte address >> 2)
const (
	opShift = 26
	aShift  = 21
	bShift  = 16
	cShift  = 11

	regMask    = 0x1f
	immMask    = 0xffff
	targetMask = 0x03ffffff
)

// ErrBadEncoding is returned by Decode for words whose opcode field does
// not name a defined instruction.
var ErrBadEncoding = errors.New("isa: invalid instruction encoding")

// Encode packs the instruction into its 32-bit binary form.
func (in Instr) Encode() uint32 {
	w := uint32(in.Op) << opShift
	switch in.Op.Format() {
	case FormatR:
		w |= uint32(in.Rd&regMask) << aShift
		w |= uint32(in.Rs&regMask) << bShift
		w |= uint32(in.Rt&regMask) << cShift
	case FormatI:
		w |= uint32(in.Rt&regMask) << aShift
		w |= uint32(in.Rs&regMask) << bShift
		w |= uint32(in.Imm) & immMask
	case FormatJ:
		w |= (in.Target >> 2) & targetMask
	}
	return w
}

// Decode unpacks a 32-bit word into an instruction.
func Decode(w uint32) (Instr, error) {
	op := Opcode(w >> opShift)
	if !op.Valid() {
		return Instr{}, fmt.Errorf("%w: word %#08x", ErrBadEncoding, w)
	}
	in := Instr{Op: op}
	switch op.Format() {
	case FormatR:
		in.Rd = Reg(w >> aShift & regMask)
		in.Rs = Reg(w >> bShift & regMask)
		in.Rt = Reg(w >> cShift & regMask)
	case FormatI:
		in.Rt = Reg(w >> aShift & regMask)
		in.Rs = Reg(w >> bShift & regMask)
		in.Imm = int32(int16(w & immMask))
	case FormatJ:
		in.Target = (w & targetMask) << 2
	}
	return in, nil
}

// String renders the instruction in assembler syntax.
func (in Instr) String() string {
	switch in.Op {
	case NOP, HALT:
		return in.Op.String()
	case RET:
		return "ret"
	case OUT:
		return fmt.Sprintf("out %s", in.Rs)
	case JR:
		return fmt.Sprintf("jr %s", in.Rs)
	case JALR:
		return fmt.Sprintf("jalr %s, %s", in.Rd, in.Rs)
	case J, JAL:
		return fmt.Sprintf("%s %#x", in.Op, in.Target)
	case LW, LB, LBU, SW, SB:
		return fmt.Sprintf("%s %s, %d(%s)", in.Op, in.Rt, in.Imm, in.Rs)
	case LUI:
		return fmt.Sprintf("lui %s, %d", in.Rt, uint32(in.Imm)&immMask)
	case ANDI, ORI, XORI:
		// Logical immediates are zero-extended by the machine; print the
		// unsigned form so disassembly re-assembles to the same bits.
		return fmt.Sprintf("%s %s, %s, %d", in.Op, in.Rt, in.Rs, uint32(in.Imm)&immMask)
	case BEQ, BNE, BLT, BGE, BLTU, BGEU:
		return fmt.Sprintf("%s %s, %s, %d", in.Op, in.Rs, in.Rt, in.Imm)
	}
	switch in.Op.Format() {
	case FormatR:
		return fmt.Sprintf("%s %s, %s, %s", in.Op, in.Rd, in.Rs, in.Rt)
	case FormatI:
		return fmt.Sprintf("%s %s, %s, %d", in.Op, in.Rt, in.Rs, in.Imm)
	}
	return in.Op.String()
}

// BranchTarget computes the target of a PC-relative conditional branch
// located at pc. The immediate counts instruction words, as in MIPS.
func (in Instr) BranchTarget(pc uint32) uint32 {
	return pc + 4 + uint32(in.Imm)<<2
}
