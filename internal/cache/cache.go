// Package cache models simple set-associative byte-addressed caches —
// the 4KB instruction cache and 4KB data cache of the paper's execution
// engine (§4.1). The model tracks hits and misses only; contents are
// immaterial to the front-end studies.
package cache

import "fmt"

// Config describes a cache geometry.
type Config struct {
	SizeBytes int // total capacity
	LineBytes int // line size (power of two)
	Assoc     int // ways (LRU replacement)
}

// ICache4K is the paper's 4KB instruction cache (32B lines, 2-way).
func ICache4K() Config { return Config{SizeBytes: 4096, LineBytes: 32, Assoc: 2} }

// DCache4K is the paper's 4KB data cache (32B lines, 4-way; the paper's
// was 4-ported, which a hit/miss model need not represent).
func DCache4K() Config { return Config{SizeBytes: 4096, LineBytes: 32, Assoc: 4} }

// Stats counts accesses.
type Stats struct {
	Accesses uint64
	Hits     uint64
}

// Misses returns Accesses - Hits.
func (s Stats) Misses() uint64 { return s.Accesses - s.Hits }

// HitRate returns the hit rate in percent.
func (s Stats) HitRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return 100 * float64(s.Hits) / float64(s.Accesses)
}

type line struct {
	tag   uint32
	valid bool
	used  uint64
}

// Cache is a set-associative cache with LRU replacement.
type Cache struct {
	sets      [][]line
	setMask   uint32
	lineShift uint
	clock     uint64
	stats     Stats
}

// New builds a cache; the geometry must divide into a power-of-two
// number of sets with power-of-two lines.
func New(cfg Config) (*Cache, error) {
	if cfg.SizeBytes <= 0 || cfg.LineBytes <= 0 || cfg.Assoc <= 0 {
		return nil, fmt.Errorf("cache: bad geometry %+v", cfg)
	}
	if cfg.LineBytes&(cfg.LineBytes-1) != 0 {
		return nil, fmt.Errorf("cache: line size %d not a power of two", cfg.LineBytes)
	}
	lines := cfg.SizeBytes / cfg.LineBytes
	if lines == 0 || lines%cfg.Assoc != 0 {
		return nil, fmt.Errorf("cache: %d lines not divisible by %d ways", lines, cfg.Assoc)
	}
	nsets := lines / cfg.Assoc
	if nsets&(nsets-1) != 0 {
		return nil, fmt.Errorf("cache: %d sets not a power of two", nsets)
	}
	shift := uint(0)
	for 1<<shift < cfg.LineBytes {
		shift++
	}
	sets := make([][]line, nsets)
	backing := make([]line, lines)
	for i := range sets {
		sets[i], backing = backing[:cfg.Assoc:cfg.Assoc], backing[cfg.Assoc:]
	}
	return &Cache{sets: sets, setMask: uint32(nsets - 1), lineShift: shift}, nil
}

// MustNew is New for static configurations.
func MustNew(cfg Config) *Cache {
	c, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return c
}

// Access probes the line containing addr, filling on a miss. It
// reports whether the probe hit.
func (c *Cache) Access(addr uint32) bool {
	c.clock++
	c.stats.Accesses++
	tag := addr >> c.lineShift
	set := c.sets[tag&c.setMask]
	for i := range set {
		if set[i].valid && set[i].tag == tag {
			set[i].used = c.clock
			c.stats.Hits++
			return true
		}
	}
	victim := 0
	for i := range set {
		if !set[i].valid {
			victim = i
			break
		}
		if set[i].used < set[victim].used {
			victim = i
		}
	}
	set[victim] = line{tag: tag, valid: true, used: c.clock}
	return false
}

// Stats returns the access counters.
func (c *Cache) Stats() Stats { return c.stats }
