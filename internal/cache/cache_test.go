package cache

import "testing"

func TestGeometryValidation(t *testing.T) {
	bad := []Config{
		{SizeBytes: 0, LineBytes: 32, Assoc: 2},
		{SizeBytes: 4096, LineBytes: 0, Assoc: 2},
		{SizeBytes: 4096, LineBytes: 33, Assoc: 2},
		{SizeBytes: 4096, LineBytes: 32, Assoc: 0},
		{SizeBytes: 4096, LineBytes: 32, Assoc: 5},
		{SizeBytes: 96, LineBytes: 32, Assoc: 1}, // 3 sets
	}
	for _, cfg := range bad {
		if _, err := New(cfg); err == nil {
			t.Errorf("accepted %+v", cfg)
		}
	}
	for _, good := range []Config{ICache4K(), DCache4K()} {
		if _, err := New(good); err != nil {
			t.Errorf("rejected %+v: %v", good, err)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("MustNew did not panic")
		}
	}()
	MustNew(Config{})
}

func TestHitMissWithinLine(t *testing.T) {
	c := MustNew(Config{SizeBytes: 128, LineBytes: 32, Assoc: 2})
	if c.Access(0x100) {
		t.Error("cold access hit")
	}
	// Same line: hits.
	for _, a := range []uint32{0x100, 0x11f, 0x104} {
		if !c.Access(a) {
			t.Errorf("same-line access %#x missed", a)
		}
	}
	// Next line: miss.
	if c.Access(0x120) {
		t.Error("next line hit cold")
	}
	st := c.Stats()
	if st.Accesses != 5 || st.Hits != 3 || st.Misses() != 2 {
		t.Errorf("stats = %+v", st)
	}
	if st.HitRate() != 60 {
		t.Errorf("HitRate = %v", st.HitRate())
	}
}

func TestLRUWithinSet(t *testing.T) {
	// One set, two ways: lines 0x0, 0x40... with 2 sets? Make 1-set:
	c := MustNew(Config{SizeBytes: 64, LineBytes: 32, Assoc: 2}) // 1 set
	c.Access(0x00)
	c.Access(0x20)
	c.Access(0x00) // MRU
	c.Access(0x40) // evicts 0x20
	if !c.Access(0x00) {
		t.Error("MRU line evicted")
	}
	if c.Access(0x20) {
		t.Error("LRU line survived")
	}
}

func TestCapacityWorkingSet(t *testing.T) {
	c := MustNew(ICache4K())
	// A working set equal to capacity: after warmup, all hits.
	for round := 0; round < 3; round++ {
		for a := uint32(0); a < 4096; a += 32 {
			c.Access(a)
		}
	}
	st := c.Stats()
	if st.Misses() != 128 { // compulsory only
		t.Errorf("misses = %d, want 128 compulsory", st.Misses())
	}
	// Double the working set: every access misses (LRU thrash).
	c2 := MustNew(ICache4K())
	for round := 0; round < 3; round++ {
		for a := uint32(0); a < 8192; a += 32 {
			c2.Access(a)
		}
	}
	if rate := c2.Stats().HitRate(); rate > 1 {
		t.Errorf("thrash hit rate %v, want ~0", rate)
	}
}

func TestZeroStats(t *testing.T) {
	var s Stats
	if s.HitRate() != 0 {
		t.Error("zero stats hit rate")
	}
}
