// Package snapshot implements the versioned, checksummed binary codec
// for serving-session snapshots: everything needed to resume a client's
// predictor session bit-identically on another process — the predictor
// backend's serialized state section plus the session's exactly-once
// bookkeeping (last applied update sequence number and its cached
// response).
//
// Frame layout (all integers little-endian):
//
//	magic   [4]byte "NTSS"
//	version u8      (currently 2)
//	payload [...]   (version-specific; see encodePayload)
//	crc32   u32     IEEE checksum of magic+version+payload
//
// The version-2 payload is backend-tagged: the session header is
// followed by the predictor backend's registered name and an opaque
// per-backend state section whose layout the backend's own codec
// (predictor.Backend.Save/Restore) defines. The snapshot package owns
// the envelope — framing, checksum, session bookkeeping, backend tag —
// and backends own their state bytes, so a new predictor backend needs
// no snapshot-layer change to become crash-safe.
//
// Version policy: the version byte identifies the payload layout.
// Decoders reject versions they do not know (ErrVersion) rather than
// guessing; any layout change — even an additive one — bumps the
// version, because frames are consumed across process generations
// (checkpoints on disk, drain handoffs between releases) where silent
// misinterpretation would corrupt a session rather than just crash it.
// Version-1 frames (pre-backend-registry, paper-family state inline)
// are still decoded: their state section is byte-identical to the
// paper codec's, so Decode validates it and infers the backend name
// from the saved kind byte.
//
// Decode is strict: a frame must carry the exact payload its counts
// imply — no trailing garbage, no truncated sections — and every
// length read is bounded by the remaining input before any allocation
// is sized from it, so a corrupt or adversarial frame can neither panic
// the decoder nor make it allocate beyond O(len(input)).
package snapshot

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"

	"pathtrace/internal/predictor"
)

// Typed decode errors. Decode never returns a partially filled Session
// alongside an error.
var (
	// ErrTruncated reports a frame too short to hold even the header and
	// checksum.
	ErrTruncated = errors.New("snapshot: frame truncated")
	// ErrMagic reports a frame that does not start with the snapshot
	// magic — not a snapshot at all.
	ErrMagic = errors.New("snapshot: bad magic")
	// ErrVersion reports a frame written by an unknown codec version.
	ErrVersion = errors.New("snapshot: unsupported version")
	// ErrChecksum reports a frame whose checksum does not match its
	// contents — a torn write or bit rot.
	ErrChecksum = errors.New("snapshot: checksum mismatch")
	// ErrCorrupt reports a frame whose checksum is intact but whose
	// structure is not (impossible counts, out-of-range fields, trailing
	// bytes, an unregistered backend tag) — a crafted or misframed
	// input.
	ErrCorrupt = errors.New("snapshot: corrupt frame")
)

const (
	// Version is the current frame layout version.
	Version = 2

	// legacyVersion is the pre-backend-tag layout, still decoded.
	legacyVersion = 1

	// MaxEncoded bounds an encoded frame. It comfortably holds a fully
	// populated serving predictor (64K correlated entries at 24 bytes
	// each is 1.5 MiB) and callers use it to size wire-protocol frame
	// limits; Encode refuses to emit a larger frame.
	MaxEncoded = 8 << 20

	headerBytes   = 5 // magic + version
	checksumBytes = 4
	minFrame      = headerBytes + checksumBytes

	// sessionHeaderBytes: ID + LastSeq + LastApplied + LastCorrect.
	sessionHeaderBytes = 8 + 8 + 4 + 4
)

var magic = [4]byte{'N', 'T', 'S', 'S'}

// Session is one serving session's complete resumable state.
type Session struct {
	// ID is the wire session identifier.
	ID uint64
	// LastSeq is the sequence number of the last applied update, with
	// its cached response below — the exactly-once duplicate-detection
	// state that makes a retried update after a crash idempotent.
	LastSeq     uint64
	LastApplied uint32
	LastCorrect uint32
	// Backend is the registered predictor backend that produced State —
	// the frame's backend tag. Restore routes State through this
	// backend's codec, and serving refuses frames whose backend family
	// differs from the server's.
	Backend string
	// State is the backend's serialized predictor state, opaque to the
	// envelope.
	State []byte
}

// Encode serializes a session into a checksummed frame. It fails on a
// structurally invalid session (unknown or unregistered backend, empty
// state) or one whose frame would exceed MaxEncoded.
func Encode(s *Session) ([]byte, error) {
	if s == nil {
		return nil, fmt.Errorf("snapshot: encode nil session")
	}
	if len(s.Backend) == 0 || len(s.Backend) > 0xFF {
		return nil, fmt.Errorf("snapshot: session %#x: backend tag %q length outside [1, 255]", s.ID, s.Backend)
	}
	if b, ok := predictor.BackendByName(s.Backend); !ok || !b.Snapshottable() {
		return nil, fmt.Errorf("snapshot: session %#x: backend %q is not a registered snapshottable backend", s.ID, s.Backend)
	}
	if len(s.State) == 0 {
		return nil, fmt.Errorf("snapshot: session %#x: empty state section", s.ID)
	}

	b := make([]byte, 0, minFrame+sessionHeaderBytes+1+len(s.Backend)+4+len(s.State))
	b = append(b, magic[:]...)
	b = append(b, Version)
	le := binary.LittleEndian
	b = le.AppendUint64(b, s.ID)
	b = le.AppendUint64(b, s.LastSeq)
	b = le.AppendUint32(b, s.LastApplied)
	b = le.AppendUint32(b, s.LastCorrect)
	b = append(b, uint8(len(s.Backend)))
	b = append(b, s.Backend...)
	b = le.AppendUint32(b, uint32(len(s.State)))
	b = append(b, s.State...)
	b = binary.LittleEndian.AppendUint32(b, crc32.ChecksumIEEE(b))
	if len(b) > MaxEncoded {
		return nil, fmt.Errorf("snapshot: session %#x encodes to %d bytes > max %d",
			s.ID, len(b), MaxEncoded)
	}
	return b, nil
}

// Decode parses and validates a snapshot frame (current or legacy
// version). The returned Session shares no memory with b.
func Decode(b []byte) (*Session, error) {
	if len(b) < minFrame {
		return nil, fmt.Errorf("%w: %d bytes < minimum %d", ErrTruncated, len(b), minFrame)
	}
	if [4]byte(b[:4]) != magic {
		return nil, fmt.Errorf("%w: %q", ErrMagic, b[:4])
	}
	version := b[4]
	if version != Version && version != legacyVersion {
		return nil, fmt.Errorf("%w: %d (supported: %d, %d)", ErrVersion, version, legacyVersion, Version)
	}
	body, sum := b[:len(b)-checksumBytes], binary.LittleEndian.Uint32(b[len(b)-checksumBytes:])
	if got := crc32.ChecksumIEEE(body); got != sum {
		return nil, fmt.Errorf("%w: computed %#x, frame says %#x", ErrChecksum, got, sum)
	}

	payload := body[headerBytes:]
	if len(payload) < sessionHeaderBytes {
		return nil, fmt.Errorf("%w: payload %d bytes < session header %d", ErrCorrupt, len(payload), sessionHeaderBytes)
	}
	le := binary.LittleEndian
	s := &Session{
		ID:          le.Uint64(payload),
		LastSeq:     le.Uint64(payload[8:]),
		LastApplied: le.Uint32(payload[16:]),
		LastCorrect: le.Uint32(payload[20:]),
	}
	rest := payload[sessionHeaderBytes:]

	if version == legacyVersion {
		return decodeLegacyState(s, rest)
	}

	// v2: backend tag + opaque state section.
	if len(rest) < 1 {
		return nil, fmt.Errorf("%w: missing backend tag", ErrCorrupt)
	}
	nameLen := int(rest[0])
	rest = rest[1:]
	if nameLen == 0 {
		return nil, fmt.Errorf("%w: empty backend tag", ErrCorrupt)
	}
	if len(rest) < nameLen {
		return nil, fmt.Errorf("%w: backend tag %d bytes, %d remain", ErrCorrupt, nameLen, len(rest))
	}
	s.Backend = string(rest[:nameLen])
	rest = rest[nameLen:]
	if b, ok := predictor.BackendByName(s.Backend); !ok || !b.Snapshottable() {
		return nil, fmt.Errorf("%w: backend tag %q is not a registered snapshottable backend", ErrCorrupt, s.Backend)
	}
	if len(rest) < 4 {
		return nil, fmt.Errorf("%w: missing state length", ErrCorrupt)
	}
	stateLen := int(le.Uint32(rest))
	rest = rest[4:]
	if stateLen == 0 {
		return nil, fmt.Errorf("%w: empty state section", ErrCorrupt)
	}
	if stateLen != len(rest) {
		return nil, fmt.Errorf("%w: state length %d but %d bytes follow", ErrCorrupt, stateLen, len(rest))
	}
	s.State = append([]byte(nil), rest...)
	return s, nil
}

// decodeLegacyState finishes decoding a version-1 frame: the remainder
// of the payload is a paper-family state section (the layouts are
// byte-identical — the codec moved, the bytes did not). It is validated
// through the paper codec, and the backend name is inferred from the
// saved kind byte, so a checkpoint written before backend tags restores
// exactly as it always did.
func decodeLegacyState(s *Session, state []byte) (*Session, error) {
	st, err := predictor.DecodeSavedState(state)
	if err != nil {
		return nil, fmt.Errorf("%w: legacy state: %v", ErrCorrupt, err)
	}
	switch st.Kind {
	case predictor.SavedBasic:
		s.Backend = "basic"
	case predictor.SavedHybrid:
		s.Backend = "hybrid"
	default:
		return nil, fmt.Errorf("%w: legacy state kind %d", ErrCorrupt, st.Kind)
	}
	s.State = append([]byte(nil), state...)
	return s, nil
}
