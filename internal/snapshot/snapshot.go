// Package snapshot implements the versioned, checksummed binary codec
// for serving-session snapshots: everything needed to resume a client's
// predictor session bit-identically on another process — the predictor's
// full saved state (tables, path history, RHS, fault-injector PRNG
// positions) plus the session's exactly-once bookkeeping (last applied
// update sequence number and its cached response).
//
// Frame layout (all integers little-endian):
//
//	magic   [4]byte "NTSS"
//	version u8      (currently 1)
//	payload [...]   (version-specific; see encodePayload)
//	crc32   u32     IEEE checksum of magic+version+payload
//
// Version policy: the version byte identifies the payload layout.
// Decoders reject versions they do not know (ErrVersion) rather than
// guessing; any layout change — even an additive one — bumps the
// version, because frames are consumed across process generations
// (checkpoints on disk, drain handoffs between releases) where silent
// misinterpretation would corrupt a session rather than just crash it.
//
// Decode is strict: a frame must carry the exact payload its counts
// imply — no trailing garbage, no truncated tables — and every length
// read is bounded by the remaining input before any allocation is
// sized from it, so a corrupt or adversarial frame can neither panic
// the decoder nor make it allocate beyond O(len(input)).
package snapshot

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"

	"pathtrace/internal/faults"
	"pathtrace/internal/history"
	"pathtrace/internal/predictor"
	"pathtrace/internal/trace"
)

// Typed decode errors. Decode never returns a partially filled Session
// alongside an error.
var (
	// ErrTruncated reports a frame too short to hold even the header and
	// checksum.
	ErrTruncated = errors.New("snapshot: frame truncated")
	// ErrMagic reports a frame that does not start with the snapshot
	// magic — not a snapshot at all.
	ErrMagic = errors.New("snapshot: bad magic")
	// ErrVersion reports a frame written by an unknown codec version.
	ErrVersion = errors.New("snapshot: unsupported version")
	// ErrChecksum reports a frame whose checksum does not match its
	// contents — a torn write or bit rot.
	ErrChecksum = errors.New("snapshot: checksum mismatch")
	// ErrCorrupt reports a frame whose checksum is intact but whose
	// structure is not (impossible counts, out-of-range fields, trailing
	// bytes) — a crafted or misframed input.
	ErrCorrupt = errors.New("snapshot: corrupt frame")
)

const (
	// Version is the current frame layout version.
	Version = 1

	// MaxEncoded bounds an encoded frame. It comfortably holds a fully
	// populated serving predictor (64K correlated entries at 24 bytes
	// each is 1.5 MiB) and callers use it to size wire-protocol frame
	// limits; Encode refuses to emit a larger frame.
	MaxEncoded = 8 << 20

	headerBytes   = 5 // magic + version
	checksumBytes = 4
	minFrame      = headerBytes + checksumBytes

	corrEntryBytes = 24 // u32 index | u16 tag | u64 val | u64 alt | u8 ctr | u8 flags
	secEntryBytes  = 13 // u32 index | u64 val | u8 ctr
	regBytes       = 2 + 2*history.MaxSize
)

var magic = [4]byte{'N', 'T', 'S', 'S'}

// Session is one serving session's complete resumable state.
type Session struct {
	// ID is the wire session identifier.
	ID uint64
	// LastSeq is the sequence number of the last applied update, with
	// its cached response below — the exactly-once duplicate-detection
	// state that makes a retried update after a crash idempotent.
	LastSeq     uint64
	LastApplied uint32
	LastCorrect uint32
	// State is the predictor's full saved state.
	State *predictor.SavedState
}

// session flag bits.
const (
	flagUseRHS          = 1 << 0
	flagCostReduced     = 1 << 1
	flagSecondaryFilter = 1 << 2
	flagHasFaults       = 1 << 3
)

// Encode serializes a session into a checksummed frame. It fails on a
// structurally invalid session (nil state, RHS bookkeeping mismatch) or
// one whose frame would exceed MaxEncoded.
func Encode(s *Session) ([]byte, error) {
	if s == nil || s.State == nil {
		return nil, fmt.Errorf("snapshot: encode nil session")
	}
	st := s.State
	if st.UseRHS != (st.RHS != nil) {
		return nil, fmt.Errorf("snapshot: session %#x: UseRHS %v but RHS state %v",
			s.ID, st.UseRHS, st.RHS != nil)
	}
	if err := checkEncodeRanges(st); err != nil {
		return nil, err
	}

	b := make([]byte, 0, encodedSize(st))
	b = append(b, magic[:]...)
	b = append(b, Version)
	b = encodePayload(b, s)
	b = binary.LittleEndian.AppendUint32(b, crc32.ChecksumIEEE(b))
	if len(b) > MaxEncoded {
		return nil, fmt.Errorf("snapshot: session %#x encodes to %d bytes > max %d",
			s.ID, len(b), MaxEncoded)
	}
	return b, nil
}

// checkEncodeRanges verifies every field fits its wire width, so Encode
// never silently wraps a value.
func checkEncodeRanges(st *predictor.SavedState) error {
	u8 := func(name string, v int) error {
		if v < 0 || v > 0xFF {
			return fmt.Errorf("snapshot: %s %d does not fit u8", name, v)
		}
		return nil
	}
	for _, f := range []struct {
		name string
		v    int
	}{
		{"depth", st.Depth}, {"index bits", st.IndexBits},
		{"secondary bits", st.SecondaryBits}, {"tag bits", st.TagBits},
		{"counter bits", st.CounterBits}, {"counter inc", st.CounterInc},
		{"counter dec", st.CounterDec}, {"sec counter bits", st.SecCounterBits},
		{"sec counter dec", st.SecCounterDec},
		{"DOLC depth", st.DOLC.Depth}, {"DOLC older", st.DOLC.Older},
		{"DOLC last", st.DOLC.Last}, {"DOLC current", st.DOLC.Current},
		{"DOLC index", st.DOLC.Index},
	} {
		if err := u8(f.name, f.v); err != nil {
			return err
		}
	}
	if st.RHSDepth < 0 || st.RHSDepth > 0xFFFF {
		return fmt.Errorf("snapshot: RHS depth %d does not fit u16", st.RHSDepth)
	}
	if st.RHS != nil {
		if st.RHS.Max < 0 || st.RHS.Max > 0xFFFF {
			return fmt.Errorf("snapshot: RHS capacity %d does not fit u16", st.RHS.Max)
		}
		if len(st.RHS.Regs) > 0xFFFF {
			return fmt.Errorf("snapshot: RHS holds %d regs, does not fit u16", len(st.RHS.Regs))
		}
	}
	if st.Faults != nil {
		if bits := st.Faults.Config.Bits; bits < 0 || bits > 0xFF {
			return fmt.Errorf("snapshot: fault bits %d does not fit u8", bits)
		}
	}
	return nil
}

// encodedSize returns the exact frame size for a state, for one-shot
// allocation.
func encodedSize(st *predictor.SavedState) int {
	n := minFrame + fixedPayloadBytes
	if st.RHS != nil {
		n += 4 + len(st.RHS.Regs)*regBytes
	}
	if st.Faults != nil {
		n += faultsBytes
	}
	n += 4 + len(st.Corr)*corrEntryBytes
	n += 4 + len(st.Sec)*secEntryBytes
	return n
}

const (
	// session ids/seq/cache + kind + flags + geometry + stats + hist
	fixedPayloadBytes = 8 + 8 + 4 + 4 + 1 + 1 + geometryBytes + statsBytes + regBytes
	geometryBytes     = 9 + 2 + 5 // nine u8 params, u16 RHS depth, five DOLC u8s
	statsBytes        = 6 * 8
	faultsBytes       = 8 + 1 + 8 + 4*8 + 1 + 8 + 8 + 4*8 + 5*8
)

func encodePayload(b []byte, s *Session) []byte {
	st := s.State
	le := binary.LittleEndian
	b = le.AppendUint64(b, s.ID)
	b = le.AppendUint64(b, s.LastSeq)
	b = le.AppendUint32(b, s.LastApplied)
	b = le.AppendUint32(b, s.LastCorrect)
	b = append(b, uint8(st.Kind))
	var flags uint8
	if st.UseRHS {
		flags |= flagUseRHS
	}
	if st.CostReduced {
		flags |= flagCostReduced
	}
	if st.SecondaryFilter {
		flags |= flagSecondaryFilter
	}
	if st.Faults != nil {
		flags |= flagHasFaults
	}
	b = append(b, flags)

	b = append(b, uint8(st.Depth), uint8(st.IndexBits), uint8(st.SecondaryBits),
		uint8(st.TagBits), uint8(st.CounterBits), uint8(st.CounterInc),
		uint8(st.CounterDec), uint8(st.SecCounterBits), uint8(st.SecCounterDec))
	b = le.AppendUint16(b, uint16(st.RHSDepth))
	b = append(b, uint8(st.DOLC.Depth), uint8(st.DOLC.Older), uint8(st.DOLC.Last),
		uint8(st.DOLC.Current), uint8(st.DOLC.Index))

	for _, v := range [...]uint64{
		st.Stats.Predictions, st.Stats.Correct, st.Stats.Cold,
		st.Stats.FromSecondary, st.Stats.AltCorrect, st.Stats.AltPresent,
	} {
		b = le.AppendUint64(b, v)
	}

	b = appendReg(b, st.Hist)

	if st.RHS != nil {
		b = le.AppendUint16(b, uint16(st.RHS.Max))
		b = le.AppendUint16(b, uint16(len(st.RHS.Regs)))
		for _, r := range st.RHS.Regs {
			b = appendReg(b, r)
		}
	}

	if st.Faults != nil {
		f := st.Faults
		b = le.AppendUint64(b, f.Config.Seed)
		b = append(b, uint8(f.Config.Bits))
		b = le.AppendUint64(b, f.Config.Interval)
		for _, rate := range [...]float64{
			f.Config.Table, f.Config.Secondary, f.Config.History, f.Config.TraceCache,
		} {
			b = le.AppendUint64(b, math.Float64bits(rate))
		}
		var stuck uint8
		if f.Config.StuckZero {
			stuck = 1
		}
		b = append(b, stuck)
		b = le.AppendUint64(b, f.Fire)
		b = le.AppendUint64(b, f.Eff)
		for _, t := range f.Ticks {
			b = le.AppendUint64(b, t)
		}
		for _, v := range [...]uint64{
			f.Stats.Opportunities, f.Stats.TableFaults, f.Stats.SecFaults,
			f.Stats.HistoryFaults, f.Stats.TCacheFaults,
		} {
			b = le.AppendUint64(b, v)
		}
	}

	b = le.AppendUint32(b, uint32(len(st.Corr)))
	for _, e := range st.Corr {
		b = le.AppendUint32(b, e.Index)
		b = le.AppendUint16(b, e.Tag)
		b = le.AppendUint64(b, e.Val)
		b = le.AppendUint64(b, e.Alt)
		var ef uint8
		if e.AltValid {
			ef = 1
		}
		b = append(b, e.Ctr, ef)
	}
	b = le.AppendUint32(b, uint32(len(st.Sec)))
	for _, e := range st.Sec {
		b = le.AppendUint32(b, e.Index)
		b = le.AppendUint64(b, e.Val)
		b = append(b, e.Ctr)
	}
	return b
}

func appendReg(b []byte, r history.RegState) []byte {
	b = append(b, uint8(r.Size), uint8(r.N))
	for _, id := range r.IDs {
		b = binary.LittleEndian.AppendUint16(b, uint16(id))
	}
	return b
}

// reader walks a checksum-verified payload with sticky error state.
// Every read is bounds-checked; overrunning the payload sets ErrCorrupt
// (the checksum already proved the frame arrived whole, so a read past
// the end means the structure lies about itself).
type reader struct {
	b   []byte
	off int
	err error
}

func (r *reader) fail(format string, args ...any) {
	if r.err == nil {
		r.err = fmt.Errorf("%w: "+format, append([]any{ErrCorrupt}, args...)...)
	}
}

func (r *reader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if len(r.b)-r.off < n {
		r.fail("payload overrun at offset %d", r.off)
		return nil
	}
	s := r.b[r.off : r.off+n]
	r.off += n
	return s
}

func (r *reader) u8() uint8 {
	if s := r.take(1); s != nil {
		return s[0]
	}
	return 0
}

func (r *reader) u16() uint16 {
	if s := r.take(2); s != nil {
		return binary.LittleEndian.Uint16(s)
	}
	return 0
}

func (r *reader) u32() uint32 {
	if s := r.take(4); s != nil {
		return binary.LittleEndian.Uint32(s)
	}
	return 0
}

func (r *reader) u64() uint64 {
	if s := r.take(8); s != nil {
		return binary.LittleEndian.Uint64(s)
	}
	return 0
}

func (r *reader) rate(name string) float64 {
	v := math.Float64frombits(r.u64())
	if math.IsNaN(v) || v < 0 || v > 1 {
		r.fail("fault rate %s = %v outside [0, 1]", name, v)
	}
	return v
}

// count reads a u32 element count and verifies the remaining payload
// can actually hold that many elemBytes-sized elements, bounding any
// allocation derived from it by the input length.
func (r *reader) count(what string, elemBytes int) int {
	n := int(r.u32())
	if r.err != nil {
		return 0
	}
	if rem := len(r.b) - r.off; n*elemBytes > rem {
		r.fail("%s count %d needs %d bytes, %d remain", what, n, n*elemBytes, rem)
		return 0
	}
	return n
}

func (r *reader) reg() history.RegState {
	var st history.RegState
	st.Size = int(r.u8())
	st.N = int(r.u8())
	for i := range st.IDs {
		st.IDs[i] = trace.HashedID(r.u16())
	}
	return st
}

// Decode parses and validates a snapshot frame. The returned Session
// shares no memory with b.
func Decode(b []byte) (*Session, error) {
	if len(b) < minFrame {
		return nil, fmt.Errorf("%w: %d bytes < minimum %d", ErrTruncated, len(b), minFrame)
	}
	if [4]byte(b[:4]) != magic {
		return nil, fmt.Errorf("%w: %q", ErrMagic, b[:4])
	}
	if v := b[4]; v != Version {
		return nil, fmt.Errorf("%w: %d (supported: %d)", ErrVersion, v, Version)
	}
	body, sum := b[:len(b)-checksumBytes], binary.LittleEndian.Uint32(b[len(b)-checksumBytes:])
	if got := crc32.ChecksumIEEE(body); got != sum {
		return nil, fmt.Errorf("%w: computed %#x, frame says %#x", ErrChecksum, got, sum)
	}

	r := &reader{b: body, off: headerBytes}
	s := &Session{State: &predictor.SavedState{}}
	st := s.State
	s.ID = r.u64()
	s.LastSeq = r.u64()
	s.LastApplied = r.u32()
	s.LastCorrect = r.u32()
	st.Kind = predictor.SavedKind(r.u8())
	flags := r.u8()
	if flags&^uint8(flagUseRHS|flagCostReduced|flagSecondaryFilter|flagHasFaults) != 0 {
		r.fail("unknown flag bits %#x", flags)
	}
	st.UseRHS = flags&flagUseRHS != 0
	st.CostReduced = flags&flagCostReduced != 0
	st.SecondaryFilter = flags&flagSecondaryFilter != 0

	st.Depth = int(r.u8())
	st.IndexBits = int(r.u8())
	st.SecondaryBits = int(r.u8())
	st.TagBits = int(r.u8())
	st.CounterBits = int(r.u8())
	st.CounterInc = int(r.u8())
	st.CounterDec = int(r.u8())
	st.SecCounterBits = int(r.u8())
	st.SecCounterDec = int(r.u8())
	st.RHSDepth = int(r.u16())
	st.DOLC.Depth = int(r.u8())
	st.DOLC.Older = int(r.u8())
	st.DOLC.Last = int(r.u8())
	st.DOLC.Current = int(r.u8())
	st.DOLC.Index = int(r.u8())

	st.Stats.Predictions = r.u64()
	st.Stats.Correct = r.u64()
	st.Stats.Cold = r.u64()
	st.Stats.FromSecondary = r.u64()
	st.Stats.AltCorrect = r.u64()
	st.Stats.AltPresent = r.u64()

	st.Hist = r.reg()

	if st.UseRHS {
		rhs := &history.StackState{Max: int(r.u16())}
		n := int(r.u16())
		if r.err == nil {
			if rem := len(r.b) - r.off; n*regBytes > rem {
				r.fail("RHS count %d needs %d bytes, %d remain", n, n*regBytes, rem)
			}
		}
		if r.err == nil {
			rhs.Regs = make([]history.RegState, n)
			for i := range rhs.Regs {
				rhs.Regs[i] = r.reg()
			}
			st.RHS = rhs
		}
	}

	if flags&flagHasFaults != 0 {
		f := &faults.InjectorState{}
		f.Config.Seed = r.u64()
		f.Config.Bits = int(r.u8())
		f.Config.Interval = r.u64()
		f.Config.Table = r.rate("table")
		f.Config.Secondary = r.rate("secondary")
		f.Config.History = r.rate("history")
		f.Config.TraceCache = r.rate("tcache")
		switch stuck := r.u8(); stuck {
		case 0:
		case 1:
			f.Config.StuckZero = true
		default:
			r.fail("stuck-zero byte %d", stuck)
		}
		f.Fire = r.u64()
		f.Eff = r.u64()
		for i := range f.Ticks {
			f.Ticks[i] = r.u64()
		}
		f.Stats.Opportunities = r.u64()
		f.Stats.TableFaults = r.u64()
		f.Stats.SecFaults = r.u64()
		f.Stats.HistoryFaults = r.u64()
		f.Stats.TCacheFaults = r.u64()
		if r.err == nil {
			st.Faults = f
		}
	}

	if n := r.count("correlated entries", corrEntryBytes); r.err == nil && n > 0 {
		st.Corr = make([]predictor.SavedEntry, n)
		for i := range st.Corr {
			e := &st.Corr[i]
			e.Index = r.u32()
			e.Tag = r.u16()
			e.Val = r.u64()
			e.Alt = r.u64()
			e.Ctr = r.u8()
			switch ef := r.u8(); ef {
			case 0:
			case 1:
				e.AltValid = true
			default:
				r.fail("correlated entry %d flag byte %d", i, ef)
			}
		}
	}
	if n := r.count("secondary entries", secEntryBytes); r.err == nil && n > 0 {
		st.Sec = make([]predictor.SavedSecEntry, n)
		for i := range st.Sec {
			e := &st.Sec[i]
			e.Index = r.u32()
			e.Val = r.u64()
			e.Ctr = r.u8()
		}
	}

	if r.err == nil && r.off != len(r.b) {
		r.fail("%d trailing bytes after payload", len(r.b)-r.off)
	}
	if r.err != nil {
		return nil, r.err
	}
	return s, nil
}
