package snapshot

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"math/rand"
	"reflect"
	"testing"

	"pathtrace/internal/faults"
	"pathtrace/internal/predictor"
	"pathtrace/internal/trace"
)

// stream generates a deterministic pseudo-random trace stream with
// calls and returns.
func stream(seed int64, n int) []*trace.Trace {
	rng := rand.New(rand.NewSource(seed))
	out := make([]*trace.Trace, n)
	for i := range out {
		id := trace.MakeID(0x1000+uint32(rng.Intn(256))*4, uint8(rng.Intn(64)))
		t := &trace.Trace{ID: id, Hash: id.Hash(), StartPC: 0x1000}
		t.Calls = rng.Intn(3)
		t.EndsInRet = rng.Intn(4) == 0
		out[i] = t
	}
	return out
}

// codecConfigs maps each snapshottable backend to a round-trip config
// (keyed by backend name; "faulty" exercises the paper codec's fault
// block through the hybrid backend).
func codecConfigs() map[string]predictor.Config {
	return map[string]predictor.Config{
		"basic":       {Backend: "basic", Depth: 3, IndexBits: 10},
		"hybrid":      {Backend: "hybrid", Depth: 7, IndexBits: 12, UseRHS: true},
		"costreduced": {Backend: "costreduced", Depth: 5, IndexBits: 10, UseRHS: true},
		"tage":        {Backend: "tage", Depth: 7, IndexBits: 10},
		"faulty": {Backend: "hybrid", Depth: 7, IndexBits: 10, UseRHS: true,
			Faults: faults.New(faults.Config{Seed: 9, Table: 0.02, History: 0.02, Bits: 2})},
	}
}

// warmSession trains a predictor under cfg, saves it through its
// backend's codec hooks, and wraps the state in a Session with
// non-trivial bookkeeping.
func warmSession(t *testing.T, cfg predictor.Config, rounds int) (*Session, predictor.Backend) {
	t.Helper()
	b, err := predictor.ResolveBackend(cfg)
	if err != nil {
		t.Fatalf("ResolveBackend: %v", err)
	}
	p, err := b.New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	for _, tc := range stream(3, rounds) {
		p.Predict()
		p.Update(tc)
	}
	state, err := b.Save(p)
	if err != nil {
		t.Fatalf("Save: %v", err)
	}
	return &Session{
		ID:          0xDEADBEEFCAFE,
		LastSeq:     12345,
		LastApplied: 777,
		LastCorrect: 555,
		Backend:     b.Name,
		State:       state,
	}, b
}

// TestEncodeDecodeRoundTripAllBackends runs the full
// Save → Snapshot → Restore round trip for every snapshottable backend
// in the registry: the frame must decode to an identical session, and
// the restored predictor must resume bit-identically with the
// original. New backends fail the test until they get a config entry.
func TestEncodeDecodeRoundTripAllBackends(t *testing.T) {
	configs := codecConfigs()
	for _, b := range predictor.Backends() {
		if !b.Snapshottable() {
			continue
		}
		cfg, ok := configs[b.Name]
		if !ok {
			t.Errorf("no codec config for newly registered backend %q — add one", b.Name)
			continue
		}
		t.Run(b.Name, func(t *testing.T) {
			s, backend := warmSession(t, cfg, 2000)
			frame, err := Encode(s)
			if err != nil {
				t.Fatalf("Encode: %v", err)
			}
			if len(frame) > MaxEncoded {
				t.Fatalf("frame %d bytes > MaxEncoded %d", len(frame), MaxEncoded)
			}
			got, err := Decode(frame)
			if err != nil {
				t.Fatalf("Decode: %v", err)
			}
			if !reflect.DeepEqual(got, s) {
				t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, s)
			}
			if _, err := backend.Restore(got.State, cfg); err != nil {
				t.Fatalf("Restore of decoded state: %v", err)
			}
		})
	}
}

// The decoded state must actually restore: end-to-end, a session that
// crossed the codec continues bit-identically with the original.
func TestDecodedSessionResumesBitIdentical(t *testing.T) {
	cfg := predictor.Config{Backend: "hybrid", Depth: 7, IndexBits: 12, UseRHS: true}
	warm, tail := stream(3, 2000), stream(5, 1000)

	b, _ := predictor.BackendByName("hybrid")
	orig, err := b.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range warm {
		orig.Predict()
		orig.Update(tc)
	}
	state, err := b.Save(orig)
	if err != nil {
		t.Fatalf("Save: %v", err)
	}
	frame, err := Encode(&Session{ID: 1, Backend: "hybrid", State: state})
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	dec, err := Decode(frame)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	tagged, ok := predictor.BackendByName(dec.Backend)
	if !ok {
		t.Fatalf("decoded backend %q not registered", dec.Backend)
	}
	resumed, err := tagged.Restore(dec.State, cfg)
	if err != nil {
		t.Fatalf("Restore: %v", err)
	}
	for i, tc := range tail {
		if a, b := orig.Predict(), resumed.Predict(); a != b {
			t.Fatalf("round %d: original %+v, resumed %+v", i, a, b)
		}
		orig.Update(tc)
		resumed.Update(tc)
	}
	if a, b := orig.Stats(), resumed.Stats(); a != b {
		t.Fatalf("stats diverged: original %+v, resumed %+v", a, b)
	}
}

// legacyFrame hand-builds a version-1 frame, exactly as the
// pre-backend-tag encoder laid it out: session header followed by the
// paper state section inline, no backend tag.
func legacyFrame(t *testing.T, st *predictor.SavedState, id, lastSeq uint64, applied, correct uint32) []byte {
	t.Helper()
	b := append([]byte(nil), 'N', 'T', 'S', 'S', 1)
	le := binary.LittleEndian
	b = le.AppendUint64(b, id)
	b = le.AppendUint64(b, lastSeq)
	b = le.AppendUint32(b, applied)
	b = le.AppendUint32(b, correct)
	b = predictor.AppendSavedState(b, st)
	return le.AppendUint32(b, crc32.ChecksumIEEE(b))
}

// TestDecodeLegacyV1Frame proves the compatibility promise: a frame
// written before backend tags existed still decodes — the backend is
// inferred from the saved kind — and the session restores
// bit-identically.
func TestDecodeLegacyV1Frame(t *testing.T) {
	for name, cfg := range map[string]predictor.Config{
		"basic":  {Depth: 3, IndexBits: 10},
		"hybrid": {Depth: 7, IndexBits: 12, Hybrid: true, UseRHS: true},
	} {
		cfg := cfg
		t.Run(name, func(t *testing.T) {
			p := predictor.MustNew(cfg)
			for _, tc := range stream(11, 1500) {
				p.Predict()
				p.Update(tc)
			}
			st, err := predictor.Save(p)
			if err != nil {
				t.Fatalf("Save: %v", err)
			}
			frame := legacyFrame(t, st, 0xABCD, 99, 12, 7)

			s, err := Decode(frame)
			if err != nil {
				t.Fatalf("Decode(v1): %v", err)
			}
			if s.Backend != name {
				t.Fatalf("inferred backend %q, want %q", s.Backend, name)
			}
			if s.ID != 0xABCD || s.LastSeq != 99 || s.LastApplied != 12 || s.LastCorrect != 7 {
				t.Fatalf("session header mismatch: %+v", s)
			}
			b, _ := predictor.BackendByName(s.Backend)
			resumed, err := b.Restore(s.State, cfg)
			if err != nil {
				t.Fatalf("Restore: %v", err)
			}
			for i, tc := range stream(13, 500) {
				if a, b := p.Predict(), resumed.Predict(); a != b {
					t.Fatalf("round %d: original %+v, resumed %+v", i, a, b)
				}
				p.Update(tc)
				resumed.Update(tc)
			}

			// A corrupted legacy state section (valid checksum, broken
			// structure) is ErrCorrupt, not a crash or a bad install.
			bad := append([]byte(nil), frame...)
			bad[30] |= 0x80 // reserved flag bit in the paper state section
			fixCRC(bad)
			if _, err := Decode(bad); !errors.Is(err, ErrCorrupt) {
				t.Errorf("corrupt legacy state: Decode = %v, want ErrCorrupt", err)
			}
		})
	}
}

// fixCRC recomputes the trailing checksum after a deliberate patch, so
// structural validation is exercised rather than the checksum.
func fixCRC(b []byte) {
	binary.LittleEndian.PutUint32(b[len(b)-4:], crc32.ChecksumIEEE(b[:len(b)-4]))
}

func validFrame(t *testing.T) []byte {
	t.Helper()
	s, _ := warmSession(t, predictor.Config{Backend: "hybrid", Depth: 4, IndexBits: 10, UseRHS: true}, 1000)
	b, err := Encode(s)
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	return b
}

func TestDecodeTypedErrors(t *testing.T) {
	frame := validFrame(t)
	// v2 layout: magic(4) ver(1) header(24) nameLen(1) name stateLen(4).
	const nameOff = 5 + sessionHeaderBytes
	nameLen := int(frame[nameOff])
	stateLenOff := nameOff + 1 + nameLen

	cases := map[string]struct {
		mutate func([]byte) []byte
		want   error
	}{
		"empty":     {func(b []byte) []byte { return nil }, ErrTruncated},
		"tiny":      {func(b []byte) []byte { return b[:5] }, ErrTruncated},
		"magic":     {func(b []byte) []byte { b[0] ^= 0xFF; fixCRC(b); return b }, ErrMagic},
		"version":   {func(b []byte) []byte { b[4] = 99; fixCRC(b); return b }, ErrVersion},
		"bitflip":   {func(b []byte) []byte { b[20] ^= 0x10; return b }, ErrChecksum},
		"short-crc": {func(b []byte) []byte { return b[:len(b)-1] }, ErrChecksum},
		"trailing": {func(b []byte) []byte {
			b = append(b[:len(b)-4], 0xAB)
			b = binary.LittleEndian.AppendUint32(b, 0)
			fixCRC(b)
			return b
		}, ErrCorrupt},
		// The corrupt-backend-tag case: a checksum-valid frame whose tag
		// names no registered backend must be refused outright.
		"badtag": {func(b []byte) []byte {
			b[nameOff+1] ^= 0xFF
			fixCRC(b)
			return b
		}, ErrCorrupt},
		"zerotag": {func(b []byte) []byte { b[nameOff] = 0; fixCRC(b); return b }, ErrCorrupt},
		"statelen": {func(b []byte) []byte {
			binary.LittleEndian.PutUint32(b[stateLenOff:], 0xFFFFFFFF)
			fixCRC(b)
			return b
		}, ErrCorrupt},
	}
	for name, tc := range cases {
		b := tc.mutate(append([]byte(nil), frame...))
		if _, err := Decode(b); !errors.Is(err, tc.want) {
			t.Errorf("%s: Decode = %v, want %v", name, err, tc.want)
		}
	}
}

// A frame tagged with a registered but non-snapshottable backend is as
// unrestorable as an unknown one; both Encode and Decode refuse it.
func TestRejectsNonSnapshottableBackendTag(t *testing.T) {
	if _, err := Encode(&Session{ID: 1, Backend: "unbounded", State: []byte{1}}); err == nil {
		t.Error("Encode accepted a non-snapshottable backend")
	}
	// Hand-build the frame Encode refused to make.
	b := append([]byte(nil), 'N', 'T', 'S', 'S', Version)
	le := binary.LittleEndian
	b = le.AppendUint64(b, 1)
	b = le.AppendUint64(b, 0)
	b = le.AppendUint32(b, 0)
	b = le.AppendUint32(b, 0)
	b = append(b, uint8(len("unbounded")))
	b = append(b, "unbounded"...)
	b = le.AppendUint32(b, 1)
	b = append(b, 0xAA)
	b = le.AppendUint32(b, crc32.ChecksumIEEE(b))
	if _, err := Decode(b); !errors.Is(err, ErrCorrupt) {
		t.Errorf("Decode = %v, want ErrCorrupt", err)
	}
}

// Wire-fault injectors model the failure modes checkpoints actually
// face; every corruption must be detected, never silently decoded.
func TestDecodeRejectsInjectedCorruption(t *testing.T) {
	frame := validFrame(t)
	for seed := uint64(1); seed <= 50; seed++ {
		if _, err := Decode(faults.FlipBits(frame, seed, 3)); err == nil {
			t.Fatalf("seed %d: bit-flipped frame decoded successfully", seed)
		}
		if _, err := Decode(faults.Truncate(frame, seed)); err == nil {
			t.Fatalf("seed %d: truncated frame decoded successfully", seed)
		}
	}
}

func TestEncodeRejectsInvalidSessions(t *testing.T) {
	if _, err := Encode(nil); err == nil {
		t.Error("Encode(nil) succeeded")
	}
	if _, err := Encode(&Session{ID: 1, Backend: "hybrid"}); err == nil {
		t.Error("Encode with empty state succeeded")
	}
	if _, err := Encode(&Session{ID: 1, State: []byte{1}}); err == nil {
		t.Error("Encode with empty backend tag succeeded")
	}
	if _, err := Encode(&Session{ID: 1, Backend: "nope", State: []byte{1}}); err == nil {
		t.Error("Encode with unregistered backend succeeded")
	}
	if _, err := Encode(&Session{ID: 1, Backend: string(bytes.Repeat([]byte{'x'}, 300)), State: []byte{1}}); err == nil {
		t.Error("Encode with oversized backend tag succeeded")
	}
}
