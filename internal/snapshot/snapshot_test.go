package snapshot

import (
	"encoding/binary"
	"errors"
	"hash/crc32"
	"math/rand"
	"reflect"
	"testing"

	"pathtrace/internal/faults"
	"pathtrace/internal/predictor"
	"pathtrace/internal/trace"
)

// stream generates a deterministic pseudo-random trace stream with
// calls and returns.
func stream(seed int64, n int) []*trace.Trace {
	rng := rand.New(rand.NewSource(seed))
	out := make([]*trace.Trace, n)
	for i := range out {
		id := trace.MakeID(0x1000+uint32(rng.Intn(256))*4, uint8(rng.Intn(64)))
		t := &trace.Trace{ID: id, Hash: id.Hash(), StartPC: 0x1000}
		t.Calls = rng.Intn(3)
		t.EndsInRet = rng.Intn(4) == 0
		out[i] = t
	}
	return out
}

// warmSession trains a predictor under cfg and wraps its saved state in
// a Session with non-trivial bookkeeping.
func warmSession(t *testing.T, cfg predictor.Config, rounds int) *Session {
	t.Helper()
	p := predictor.MustNew(cfg)
	for _, tc := range stream(3, rounds) {
		p.Predict()
		p.Update(tc)
	}
	st, err := predictor.Save(p)
	if err != nil {
		t.Fatalf("Save: %v", err)
	}
	return &Session{
		ID:          0xDEADBEEFCAFE,
		LastSeq:     12345,
		LastApplied: 777,
		LastCorrect: 555,
		State:       st,
	}
}

func codecConfigs() map[string]predictor.Config {
	return map[string]predictor.Config{
		"basic":       {Depth: 3, IndexBits: 10},
		"hybrid":      {Depth: 7, IndexBits: 12, Hybrid: true, UseRHS: true},
		"costReduced": {Depth: 5, IndexBits: 10, Hybrid: true, UseRHS: true, CostReduced: true},
		"faulty": {Depth: 7, IndexBits: 10, Hybrid: true, UseRHS: true,
			Faults: faults.New(faults.Config{Seed: 9, Table: 0.02, History: 0.02, Bits: 2})},
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	for name, cfg := range codecConfigs() {
		cfg := cfg
		t.Run(name, func(t *testing.T) {
			s := warmSession(t, cfg, 2000)
			b, err := Encode(s)
			if err != nil {
				t.Fatalf("Encode: %v", err)
			}
			if len(b) > MaxEncoded {
				t.Fatalf("frame %d bytes > MaxEncoded %d", len(b), MaxEncoded)
			}
			got, err := Decode(b)
			if err != nil {
				t.Fatalf("Decode: %v", err)
			}
			if !reflect.DeepEqual(got, s) {
				t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got.State, s.State)
			}
		})
	}
}

// The decoded state must actually restore: end-to-end, a session that
// crossed the codec continues bit-identically with the original.
func TestDecodedSessionResumesBitIdentical(t *testing.T) {
	cfg := predictor.Config{Depth: 7, IndexBits: 12, Hybrid: true, UseRHS: true}
	warm, tail := stream(3, 2000), stream(5, 1000)

	orig := predictor.MustNew(cfg)
	for _, tc := range warm {
		orig.Predict()
		orig.Update(tc)
	}
	st, err := predictor.Save(orig)
	if err != nil {
		t.Fatalf("Save: %v", err)
	}
	b, err := Encode(&Session{ID: 1, State: st})
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	dec, err := Decode(b)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	resumed, err := predictor.Restore(dec.State, cfg)
	if err != nil {
		t.Fatalf("Restore: %v", err)
	}
	for i, tc := range tail {
		if a, b := orig.Predict(), resumed.Predict(); a != b {
			t.Fatalf("round %d: original %+v, resumed %+v", i, a, b)
		}
		orig.Update(tc)
		resumed.Update(tc)
	}
	if a, b := orig.Stats(), resumed.Stats(); a != b {
		t.Fatalf("stats diverged: original %+v, resumed %+v", a, b)
	}
}

// fixCRC recomputes the trailing checksum after a deliberate patch, so
// structural validation is exercised rather than the checksum.
func fixCRC(b []byte) {
	binary.LittleEndian.PutUint32(b[len(b)-4:], crc32.ChecksumIEEE(b[:len(b)-4]))
}

func validFrame(t *testing.T) []byte {
	t.Helper()
	b, err := Encode(warmSession(t, predictor.Config{Depth: 4, IndexBits: 10, Hybrid: true, UseRHS: true}, 1000))
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	return b
}

func TestDecodeTypedErrors(t *testing.T) {
	frame := validFrame(t)

	cases := map[string]struct {
		mutate func([]byte) []byte
		want   error
	}{
		"empty":     {func(b []byte) []byte { return nil }, ErrTruncated},
		"tiny":      {func(b []byte) []byte { return b[:5] }, ErrTruncated},
		"magic":     {func(b []byte) []byte { b[0] ^= 0xFF; fixCRC(b); return b }, ErrMagic},
		"version":   {func(b []byte) []byte { b[4] = 99; fixCRC(b); return b }, ErrVersion},
		"bitflip":   {func(b []byte) []byte { b[20] ^= 0x10; return b }, ErrChecksum},
		"short-crc": {func(b []byte) []byte { return b[:len(b)-1] }, ErrChecksum},
		"trailing": {func(b []byte) []byte {
			b = append(b[:len(b)-4], 0xAB)
			b = binary.LittleEndian.AppendUint32(b, 0)
			fixCRC(b)
			return b
		}, ErrCorrupt},
		"flags": {func(b []byte) []byte { b[30] |= 0x80; fixCRC(b); return b }, ErrCorrupt},
	}
	for name, tc := range cases {
		b := tc.mutate(append([]byte(nil), frame...))
		if _, err := Decode(b); !errors.Is(err, tc.want) {
			t.Errorf("%s: Decode = %v, want %v", name, err, tc.want)
		}
	}
}

// A count field claiming more elements than the payload holds must be
// rejected before any allocation is sized from it.
func TestDecodeRejectsOversizedCounts(t *testing.T) {
	s := warmSession(t, predictor.Config{Depth: 2, IndexBits: 8}, 200)
	b, err := Encode(s)
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	// The secondary count is the last u32 before the checksum (a basic
	// predictor has no secondary entries).
	off := len(b) - 4 - 4
	binary.LittleEndian.PutUint32(b[off:], 0xFFFFFFFF)
	fixCRC(b)
	if _, err := Decode(b); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Decode = %v, want ErrCorrupt", err)
	}
}

// Wire-fault injectors model the failure modes checkpoints actually
// face; every corruption must be detected, never silently decoded.
func TestDecodeRejectsInjectedCorruption(t *testing.T) {
	frame := validFrame(t)
	for seed := uint64(1); seed <= 50; seed++ {
		if _, err := Decode(faults.FlipBits(frame, seed, 3)); err == nil {
			t.Fatalf("seed %d: bit-flipped frame decoded successfully", seed)
		}
		if _, err := Decode(faults.Truncate(frame, seed)); err == nil {
			t.Fatalf("seed %d: truncated frame decoded successfully", seed)
		}
	}
}

func TestEncodeRejectsInvalidSessions(t *testing.T) {
	if _, err := Encode(nil); err == nil {
		t.Error("Encode(nil) succeeded")
	}
	if _, err := Encode(&Session{ID: 1}); err == nil {
		t.Error("Encode with nil state succeeded")
	}
	s := warmSession(t, predictor.Config{Depth: 4, IndexBits: 10, Hybrid: true, UseRHS: true}, 100)
	s.State.RHS = nil // UseRHS still set: bookkeeping mismatch
	if _, err := Encode(s); err == nil {
		t.Error("Encode with RHS mismatch succeeded")
	}
}
