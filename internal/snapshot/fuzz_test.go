package snapshot

import (
	"bytes"
	"testing"

	"pathtrace/internal/faults"
	"pathtrace/internal/predictor"
)

// FuzzSnapshotDecode drives the decoder with arbitrary bytes: it must
// never panic, never allocate unboundedly, and anything it accepts must
// re-encode to a frame that decodes to the same session (the decoder
// and encoder agree on the format). Seeds cover every snapshottable
// backend plus a hand-built legacy v1 frame, so both payload layouts
// stay in the corpus.
func FuzzSnapshotDecode(f *testing.F) {
	f.Add([]byte(nil))
	f.Add([]byte("NTSS"))
	f.Add(bytes.Repeat([]byte{0xFF}, 64))
	for name, cfg := range codecConfigs() {
		b, err := predictor.ResolveBackend(cfg)
		if err != nil {
			f.Fatalf("%s: %v", name, err)
		}
		p, err := b.New(cfg)
		if err != nil {
			f.Fatalf("%s: %v", name, err)
		}
		for _, tc := range stream(7, 500) {
			p.Predict()
			p.Update(tc)
		}
		state, err := b.Save(p)
		if err != nil {
			f.Fatalf("%s: Save: %v", name, err)
		}
		frame, err := Encode(&Session{ID: 42, LastSeq: 7, Backend: b.Name, State: state})
		if err != nil {
			f.Fatalf("%s: Encode: %v", name, err)
		}
		f.Add(frame)
		f.Add(faults.FlipBits(frame, 1, 4))
		f.Add(faults.Truncate(frame, 2))
	}
	// A legacy v1 frame: backend inferred from the kind byte.
	{
		p := predictor.MustNew(predictor.Config{Depth: 3, IndexBits: 8, Hybrid: true})
		for _, tc := range stream(9, 300) {
			p.Predict()
			p.Update(tc)
		}
		if st, err := predictor.Save(p); err == nil {
			var t testing.T
			f.Add(legacyFrame(&t, st, 5, 6, 7, 8))
		}
	}

	f.Fuzz(func(t *testing.T, b []byte) {
		s, err := Decode(b)
		if err != nil {
			if s != nil {
				t.Fatal("Decode returned both a session and an error")
			}
			return
		}
		re, err := Encode(s)
		if err != nil {
			t.Fatalf("accepted frame failed to re-encode: %v", err)
		}
		s2, err := Decode(re)
		if err != nil {
			t.Fatalf("re-encoded frame failed to decode: %v", err)
		}
		re2, err := Encode(s2)
		if err != nil {
			t.Fatalf("second re-encode failed: %v", err)
		}
		if !bytes.Equal(re, re2) {
			t.Fatal("re-encoding is not a fixed point")
		}
	})
}
