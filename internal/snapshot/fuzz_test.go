package snapshot

import (
	"bytes"
	"testing"

	"pathtrace/internal/faults"
	"pathtrace/internal/predictor"
)

// FuzzSnapshotDecode drives the decoder with arbitrary bytes: it must
// never panic, never allocate unboundedly, and anything it accepts must
// re-encode to a frame that decodes to the same session (the decoder
// and encoder agree on the format).
func FuzzSnapshotDecode(f *testing.F) {
	f.Add([]byte(nil))
	f.Add([]byte("NTSS"))
	f.Add(bytes.Repeat([]byte{0xFF}, 64))
	for name, cfg := range codecConfigs() {
		p := predictor.MustNew(cfg)
		for _, tc := range stream(7, 500) {
			p.Predict()
			p.Update(tc)
		}
		st, err := predictor.Save(p)
		if err != nil {
			f.Fatalf("%s: Save: %v", name, err)
		}
		b, err := Encode(&Session{ID: 42, LastSeq: 7, State: st})
		if err != nil {
			f.Fatalf("%s: Encode: %v", name, err)
		}
		f.Add(b)
		f.Add(faults.FlipBits(b, 1, 4))
		f.Add(faults.Truncate(b, 2))
	}

	f.Fuzz(func(t *testing.T, b []byte) {
		s, err := Decode(b)
		if err != nil {
			if s != nil {
				t.Fatal("Decode returned both a session and an error")
			}
			return
		}
		re, err := Encode(s)
		if err != nil {
			t.Fatalf("accepted frame failed to re-encode: %v", err)
		}
		s2, err := Decode(re)
		if err != nil {
			t.Fatalf("re-encoded frame failed to decode: %v", err)
		}
		re2, err := Encode(s2)
		if err != nil {
			t.Fatalf("second re-encode failed: %v", err)
		}
		if !bytes.Equal(re, re2) {
			t.Fatal("re-encoding is not a fixed point")
		}
	})
}
