// Package engine models the execution back end needed for the paper's
// delayed-update study (§5.4, Table 4). Under "real updates", the path
// history register is updated speculatively with each prediction (and
// backed up when a prediction turns out wrong), while the prediction
// tables are updated only when a trace's last instruction retires.
//
// The model is trace-granular: an N-wide machine with a bounded
// in-flight instruction window fetches one trace per cycle, executes
// each trace with a fixed latency after issue, and retires in order —
// the paper's 8-wide, 64-entry-window, out-of-order engine reduced to
// the features that determine *when* predictor state changes relative
// to when predictions are made. Wrong-path fetches make no table
// updates and their history damage is repaired by checkpoint restore,
// so they are modelled as fetch stalls until the misprediction
// resolves.
package engine

import (
	"fmt"

	"pathtrace/internal/cache"
	"pathtrace/internal/predictor"
	"pathtrace/internal/trace"
	"pathtrace/internal/tracecache"
)

// Config describes the machine.
type Config struct {
	// Width is the fetch/issue width in instructions per cycle (8).
	Width int
	// Window is the in-flight instruction window (64).
	Window int
	// ExecLatency is the delay in cycles from the end of issue to
	// completion (branch resolution) of a trace.
	ExecLatency int

	// TraceCache, when non-nil, models trace storage: a fetch that
	// misses spends TCMissPenalty extra cycles while the trace is built
	// from the instruction cache.
	TraceCache    *tracecache.Cache
	TCMissPenalty int // default 3 when a trace cache is attached

	// ICache, when non-nil (with a TraceCache), models the instruction
	// cache consulted when a trace must be built on a trace-cache miss;
	// each line miss adds ICacheMissPenalty cycles to the fetch.
	ICache            *cache.Cache
	ICacheMissPenalty int // default 3

	// DCache, when non-nil, models the data cache: each missing data
	// reference in a trace adds DCacheMissPenalty cycles to the trace's
	// completion.
	DCache            *cache.Cache
	DCacheMissPenalty int // default 6

	// AltRecovery enables §6's motivation for the alternate prediction:
	// when the primary prediction is wrong but the alternate names the
	// actual trace, the front end redirects to the alternate after
	// AltPenalty cycles instead of waiting for full branch resolution.
	AltRecovery bool
	AltPenalty  int // default 2

	// Oracle makes every prediction correct (and still performs table
	// updates), isolating the machine's bandwidth ceiling.
	Oracle bool
}

// DefaultConfig matches the paper's engine parameters.
func DefaultConfig() Config { return Config{Width: 8, Window: 64, ExecLatency: 4} }

func (c Config) validate() error {
	if c.Width < 1 || c.Window < 1 || c.ExecLatency < 0 {
		return fmt.Errorf("engine: invalid config %+v", c)
	}
	if c.TCMissPenalty < 0 || c.AltPenalty < 0 ||
		c.ICacheMissPenalty < 0 || c.DCacheMissPenalty < 0 {
		return fmt.Errorf("engine: negative penalty in config")
	}
	return nil
}

// Result reports the outcome of a run.
type Result struct {
	Stats  predictor.Stats
	Cycles uint64
	Traces uint64
	Instrs uint64

	TCHits        uint64
	TCMisses      uint64
	AltRecoveries uint64
}

// IPC returns retired instructions per cycle.
func (r Result) IPC() float64 {
	if r.Cycles == 0 {
		return 0
	}
	return float64(r.Instrs) / float64(r.Cycles)
}

// inflight is one fetched trace awaiting retirement.
type inflight struct {
	tok    predictor.Token
	tr     trace.Trace // copy without Branches
	retire uint64
	len    int
}

// Engine drives a hybrid predictor with speculative history and
// retirement-time table updates.
type Engine struct {
	cfg  Config
	pred *predictor.Hybrid

	cycle      uint64
	lastRetire uint64

	// window is a ring buffer of fetched-but-not-retired traces (in
	// order): head indexes the oldest, count is the live length. A ring
	// (rather than window = window[1:] per retirement) keeps the backing
	// array stable once warm, so steady-state Feed allocates nothing.
	window    []inflight
	head      int
	count     int
	occupancy int // instructions in the window

	// Speculation state for the prediction of the NEXT trace.
	next    predictor.Prediction
	nextTok predictor.Token
	started bool

	res Result
}

// New creates an engine around a hybrid predictor.
func New(cfg Config, p *predictor.Hybrid) (*Engine, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if p == nil {
		return nil, fmt.Errorf("engine: nil predictor")
	}
	if cfg.TraceCache != nil && cfg.TCMissPenalty == 0 {
		cfg.TCMissPenalty = 3
	}
	if cfg.AltRecovery && cfg.AltPenalty == 0 {
		cfg.AltPenalty = 2
	}
	if cfg.ICache != nil && cfg.ICacheMissPenalty == 0 {
		cfg.ICacheMissPenalty = 3
	}
	if cfg.DCache != nil && cfg.DCacheMissPenalty == 0 {
		cfg.DCacheMissPenalty = 6
	}
	return &Engine{cfg: cfg, pred: p}, nil
}

// MustNew is New for static configurations.
func MustNew(cfg Config, p *predictor.Hybrid) *Engine {
	e, err := New(cfg, p)
	if err != nil {
		panic(err)
	}
	return e
}

// drainRetirements applies table updates for every trace whose retire
// cycle has passed.
func (e *Engine) drainRetirements(now uint64) {
	for e.count > 0 && e.window[e.head].retire <= now {
		f := &e.window[e.head]
		e.occupancy -= f.len
		e.pred.CommitUpdate(f.tok, &f.tr)
		e.res.Traces++
		e.res.Instrs += uint64(f.tr.Len)
		*f = inflight{} // drop references until the slot is reused
		e.head = (e.head + 1) % len(e.window)
		e.count--
	}
}

// pushInflight appends to the ring, growing (and linearising) the
// backing array only when full — amortised to zero once the window has
// reached its steady-state depth.
func (e *Engine) pushInflight(f inflight) {
	if e.count == len(e.window) {
		grown := make([]inflight, 2*len(e.window)+4)
		for i := 0; i < e.count; i++ {
			grown[i] = e.window[(e.head+i)%len(e.window)]
		}
		e.window = grown
		e.head = 0
	}
	e.window[(e.head+e.count)%len(e.window)] = f
	e.count++
}

// Feed processes the next trace of the actual (correct-path) stream.
func (e *Engine) Feed(actual *trace.Trace) {
	if !e.started {
		// Initial prediction from the reset history.
		_, e.nextTok = e.pred.Lookup()
		e.next = e.nextTok.Pred
		e.started = true
	}

	// Stall fetch until the window has room for this trace.
	for e.occupancy+actual.Len > e.cfg.Window && e.count > 0 {
		headRetire := e.window[e.head].retire
		if e.cycle < headRetire {
			e.cycle = headRetire
		}
		e.drainRetirements(headRetire)
	}
	e.drainRetirements(e.cycle)

	fetchCycle := e.cycle
	// Trace cache: a miss stalls fetch while the trace is built from
	// the instruction cache (whose own line misses stall further).
	if e.cfg.TraceCache != nil {
		if e.cfg.TraceCache.Access(actual.ID) {
			e.res.TCHits++
		} else {
			e.res.TCMisses++
			fetchCycle += uint64(e.cfg.TCMissPenalty)
			if e.cfg.ICache != nil {
				const lineBytes = 32
				start := actual.StartPC &^ (lineBytes - 1)
				end := actual.StartPC + uint32(4*actual.Len)
				for a := start; a < end; a += lineBytes {
					if !e.cfg.ICache.Access(a) {
						fetchCycle += uint64(e.cfg.ICacheMissPenalty)
					}
				}
			}
		}
	}
	issueCycles := uint64((actual.Len + e.cfg.Width - 1) / e.cfg.Width)
	complete := fetchCycle + issueCycles + uint64(e.cfg.ExecLatency)
	// Data cache: each missing reference delays the trace's completion.
	if e.cfg.DCache != nil {
		for _, m := range actual.Mems {
			if !e.cfg.DCache.Access(m.Addr) {
				complete += uint64(e.cfg.DCacheMissPenalty)
			}
		}
	}
	retire := complete
	if retire < e.lastRetire {
		retire = e.lastRetire
	}
	e.lastRetire = retire

	cp := *actual
	cp.Branches = nil // the selector reuses these slices; retirement
	cp.Mems = nil     // only needs the identifier and metadata
	e.pushInflight(inflight{tok: e.nextTok, tr: cp, retire: retire, len: actual.Len})
	e.occupancy += actual.Len

	correct := e.cfg.Oracle || e.next.Valid && e.next.ID == actual.ID

	switch {
	case correct:
		// Speculative advance down the (correct) predicted path; the
		// next prediction issues on the next cycle.
		e.pred.Advance(actual)
		e.cycle = fetchCycle + 1
	case e.cfg.AltRecovery && e.next.AltValid && e.next.Alt == actual.ID:
		// §6: "this alternate trace can simplify and reduce the latency
		// for recovering" — the fetch unit redirects to the alternate
		// without waiting for full branch resolution.
		e.res.AltRecoveries++
		e.pred.Advance(actual)
		resume := fetchCycle + uint64(e.cfg.AltPenalty)
		if resume > e.cycle {
			e.cycle = resume
		}
	default:
		// Mispredicted (or no prediction): the front end goes down the
		// wrong path until this trace's branches resolve at completion.
		// Wrong-path fetches make no table updates and the speculative
		// history is backed up at resolution, so the observable effects
		// are (a) the fetch stall and (b) the history ending up on the
		// true path — model both directly.
		e.pred.Advance(actual)
		resolve := complete + 1
		if resolve > e.cycle {
			e.cycle = resolve
		}
		e.drainRetirements(e.cycle)
	}

	// Predict the successor of `actual` with the (possibly stale)
	// tables and the speculative history.
	_, e.nextTok = e.pred.Lookup()
	e.next = e.nextTok.Pred
}

// FeedBatch feeds a contiguous batch of completed traces, in order.
// The pipeline model is inherently sequential — each trace's fetch
// cycle depends on the previous one's — so this is Feed in a loop; it
// exists so batch-oriented drivers (stream.ReplayBatch, the serving
// layer) can hand the engine the same slices they hand predictors.
func (e *Engine) FeedBatch(actuals []trace.Trace) {
	for i := range actuals {
		e.Feed(&actuals[i])
	}
}

// Finish retires everything still in flight and returns the result.
func (e *Engine) Finish() Result {
	e.drainRetirements(^uint64(0))
	if e.lastRetire > e.cycle {
		e.cycle = e.lastRetire
	}
	e.res.Cycles = e.cycle
	e.res.Stats = e.pred.Stats()
	return e.res
}
