package engine

import (
	"math/rand"
	"testing"

	"pathtrace/internal/cache"
	"pathtrace/internal/predictor"
	"pathtrace/internal/trace"
	"pathtrace/internal/tracecache"
)

func tr(pc uint32, outs uint8, length int) *trace.Trace {
	id := trace.MakeID(pc, outs)
	return &trace.Trace{ID: id, Hash: id.Hash(), StartPC: pc, Len: length}
}

func newPred(t *testing.T, depth int) *predictor.Hybrid {
	t.Helper()
	p, err := predictor.NewHybrid(predictor.Config{Depth: depth, IndexBits: 14, UseRHS: true})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestConfigValidation(t *testing.T) {
	p := newPred(t, 2)
	bad := []Config{
		{Width: 0, Window: 64, ExecLatency: 1},
		{Width: 8, Window: 0, ExecLatency: 1},
		{Width: 8, Window: 64, ExecLatency: -1},
	}
	for _, cfg := range bad {
		if _, err := New(cfg, p); err == nil {
			t.Errorf("config %+v accepted", cfg)
		}
	}
	if _, err := New(DefaultConfig(), nil); err == nil {
		t.Error("nil predictor accepted")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustNew did not panic")
		}
	}()
	MustNew(Config{}, p)
}

func TestEngineLearnsRepeatingSequence(t *testing.T) {
	e := MustNew(DefaultConfig(), newPred(t, 2))
	seq := []*trace.Trace{
		tr(0x1004, 0, 12), tr(0x1008, 1, 16), tr(0x100c, 0, 8), tr(0x1010, 2, 16),
	}
	for round := 0; round < 200; round++ {
		for _, x := range seq {
			e.Feed(x)
		}
	}
	res := e.Finish()
	if res.Traces != 800 {
		t.Fatalf("retired %d traces, want 800", res.Traces)
	}
	if res.Instrs != 800/4*(12+16+8+16) {
		t.Errorf("retired %d instrs", res.Instrs)
	}
	// Deterministic sequence: the delayed-update predictor must still
	// converge to near-perfect accuracy.
	if rate := res.Stats.MissRate(); rate > 5 {
		t.Errorf("miss rate %.2f%% on a deterministic sequence", rate)
	}
	if res.Cycles == 0 || res.IPC() <= 0 {
		t.Errorf("cycles=%d ipc=%v", res.Cycles, res.IPC())
	}
}

func TestEngineCloseToImmediateUpdates(t *testing.T) {
	// On a mixed stream, delayed updates should track immediate updates
	// within a couple of percentage points (the paper's Table 4 shows
	// differences of a few tenths).
	mkStream := func() []*trace.Trace {
		rng := rand.New(rand.NewSource(11))
		var seq []*trace.Trace
		// A few deterministic cycles plus noise traces.
		for i := 0; i < 5000; i++ {
			switch i % 5 {
			case 0:
				seq = append(seq, tr(0x1004, 0, 16))
			case 1:
				seq = append(seq, tr(0x1008, 1, 12))
			case 2:
				seq = append(seq, tr(0x100c, 3, 16))
			case 3:
				seq = append(seq, tr(0x1010+uint32(rng.Intn(8))*4, 0, 10))
			case 4:
				seq = append(seq, tr(0x1100, 0, 16))
			}
		}
		return seq
	}

	// Immediate updates.
	ip := newPred(t, 3)
	for _, x := range mkStream() {
		ip.Predict()
		ip.Update(x)
	}
	immediate := ip.Stats().MissRate()

	// Delayed updates through the engine.
	e := MustNew(DefaultConfig(), newPred(t, 3))
	for _, x := range mkStream() {
		e.Feed(x)
	}
	delayed := e.Finish().Stats.MissRate()

	if diff := delayed - immediate; diff < -5 || diff > 5 {
		t.Errorf("delayed %.2f%% vs immediate %.2f%%: gap too large", delayed, immediate)
	}
}

func TestEngineWindowBoundsOccupancy(t *testing.T) {
	cfg := Config{Width: 8, Window: 32, ExecLatency: 100} // long latency
	e := MustNew(cfg, newPred(t, 1))
	for i := 0; i < 100; i++ {
		e.Feed(tr(0x1004, 0, 16))
		if e.occupancy > cfg.Window {
			t.Fatalf("window occupancy %d exceeds %d", e.occupancy, cfg.Window)
		}
	}
	res := e.Finish()
	// With a 100-cycle latency and a 2-trace window, cycles must be
	// dominated by stalls: at least ~latency per 2 traces.
	if res.Cycles < 100*50 {
		t.Errorf("cycles = %d; window stall not modelled", res.Cycles)
	}
}

func TestEngineMispredictStallsFetch(t *testing.T) {
	// An unpredictable stream forces a resolution stall per trace, so
	// total cycles grow with exec latency.
	stream := func(n int) []*trace.Trace {
		rng := rand.New(rand.NewSource(3))
		var seq []*trace.Trace
		for i := 0; i < n; i++ {
			seq = append(seq, tr(0x1000+uint32(rng.Intn(512))*4, uint8(rng.Intn(64)), 16))
		}
		return seq
	}
	run := func(lat int) uint64 {
		e := MustNew(Config{Width: 8, Window: 64, ExecLatency: lat}, newPred(t, 1))
		for _, x := range stream(500) {
			e.Feed(x)
		}
		return e.Finish().Cycles
	}
	fast, slow := run(1), run(20)
	if slow <= fast {
		t.Errorf("cycles with latency 20 (%d) not greater than with latency 1 (%d)", slow, fast)
	}
}

func TestFinishRetiresEverything(t *testing.T) {
	e := MustNew(DefaultConfig(), newPred(t, 1))
	for i := 0; i < 10; i++ {
		e.Feed(tr(0x1004, 0, 16))
	}
	res := e.Finish()
	if res.Traces != 10 {
		t.Errorf("retired %d, want 10", res.Traces)
	}
	if res.Stats.Predictions != 10 {
		t.Errorf("predictions %d, want 10", res.Stats.Predictions)
	}
	if e.count != 0 {
		t.Errorf("window not drained: %d", e.count)
	}
}

func TestEngineTraceCacheStalls(t *testing.T) {
	// A working set larger than the cache forces misses; cycles must
	// exceed the cacheless run on the same stream.
	stream := func() []*trace.Trace {
		var seq []*trace.Trace
		for i := 0; i < 4000; i++ {
			seq = append(seq, tr(0x1000+uint32(i%512)*16, 0, 16))
		}
		return seq
	}
	run := func(cfg Config) Result {
		e := MustNew(cfg, newPred(t, 1))
		for _, x := range stream() {
			e.Feed(x)
		}
		return e.Finish()
	}
	base := run(DefaultConfig())
	cfg := DefaultConfig()
	cfg.TraceCache = tracecache.MustNew(tracecache.Config{Lines: 64, Assoc: 2})
	cached := run(cfg)
	if cached.TCHits+cached.TCMisses != cached.Traces {
		t.Errorf("cache probes %d != traces %d", cached.TCHits+cached.TCMisses, cached.Traces)
	}
	if cached.TCMisses == 0 {
		t.Fatal("tiny cache never missed on a 512-trace working set")
	}
	if cached.Cycles <= base.Cycles {
		t.Errorf("trace cache misses did not cost cycles: %d vs %d", cached.Cycles, base.Cycles)
	}
}

func TestEngineAltRecoveryReducesCycles(t *testing.T) {
	// A two-successor pattern that keeps the primary wrong half the time
	// but the alternate usually right.
	stream := func() []*trace.Trace {
		var seq []*trace.Trace
		rng := rand.New(rand.NewSource(13))
		x := tr(0x1004, 0, 16)
		a, bb := tr(0x1008, 0, 16), tr(0x100c, 0, 16)
		for i := 0; i < 4000; i++ {
			seq = append(seq, x)
			if rng.Intn(2) == 0 {
				seq = append(seq, a)
			} else {
				seq = append(seq, bb)
			}
		}
		return seq
	}
	run := func(alt bool) Result {
		cfg := Config{Width: 8, Window: 64, ExecLatency: 12, AltRecovery: alt}
		e := MustNew(cfg, newPred(t, 0))
		for _, x := range stream() {
			e.Feed(x)
		}
		return e.Finish()
	}
	without := run(false)
	with := run(true)
	if with.AltRecoveries == 0 {
		t.Fatal("alternate recovery never triggered")
	}
	if with.Cycles >= without.Cycles {
		t.Errorf("alt recovery did not save cycles: %d vs %d", with.Cycles, without.Cycles)
	}
	if without.AltRecoveries != 0 {
		t.Error("alt recoveries counted while disabled")
	}
}

func TestEngineOracleCeiling(t *testing.T) {
	stream := func() []*trace.Trace {
		rng := rand.New(rand.NewSource(3))
		var seq []*trace.Trace
		for i := 0; i < 2000; i++ {
			seq = append(seq, tr(0x1000+uint32(rng.Intn(512))*4, uint8(rng.Intn(64)), 16))
		}
		return seq
	}
	run := func(oracle bool) Result {
		cfg := DefaultConfig()
		cfg.Oracle = oracle
		e := MustNew(cfg, newPred(t, 1))
		for _, x := range stream() {
			e.Feed(x)
		}
		return e.Finish()
	}
	real := run(false)
	oracle := run(true)
	if oracle.Cycles >= real.Cycles {
		t.Errorf("oracle (%d cycles) not faster than real prediction (%d)", oracle.Cycles, real.Cycles)
	}
	// The machine's ceiling with a 64-instr window and ~6-cycle trace
	// latency is 4 traces / 6 cycles = ~10.7 IPC; expect the oracle near it.
	if oracle.IPC() < 8 {
		t.Errorf("oracle IPC %v suspiciously low", oracle.IPC())
	}
}

func TestEngineConfigPenaltyValidation(t *testing.T) {
	p := newPred(t, 1)
	if _, err := New(Config{Width: 8, Window: 64, TCMissPenalty: -1}, p); err == nil {
		t.Error("negative TC penalty accepted")
	}
	if _, err := New(Config{Width: 8, Window: 64, AltPenalty: -2}, p); err == nil {
		t.Error("negative alt penalty accepted")
	}
}

func TestEngineDataCacheDelaysCompletion(t *testing.T) {
	// Traces with scattered memory references: D-cache misses must cost
	// cycles relative to the cacheless run.
	stream := func() []*trace.Trace {
		var seq []*trace.Trace
		rng := rand.New(rand.NewSource(19))
		for i := 0; i < 2000; i++ {
			x := tr(0x1004, 0, 16)
			for j := 0; j < 4; j++ {
				x.Mems = append(x.Mems, trace.MemRef{Addr: uint32(rng.Intn(1<<20)) * 4})
			}
			seq = append(seq, x)
		}
		return seq
	}
	run := func(withD bool) Result {
		cfg := DefaultConfig()
		if withD {
			cfg.DCache = cache.MustNew(cache.DCache4K())
		}
		e := MustNew(cfg, newPred(t, 1))
		for _, x := range stream() {
			e.Feed(x)
		}
		return e.Finish()
	}
	base := run(false)
	cached := run(true)
	if cached.Cycles <= base.Cycles {
		t.Errorf("D-cache misses free: %d vs %d cycles", cached.Cycles, base.Cycles)
	}
}

func TestEngineICacheOnTraceMiss(t *testing.T) {
	// Huge trace working set (every trace distinct) with a tiny trace
	// cache: every fetch rebuilds from the I-cache, whose misses add up.
	stream := func() []*trace.Trace {
		var seq []*trace.Trace
		for i := 0; i < 2000; i++ {
			seq = append(seq, tr(0x1000+uint32(i)*64, 0, 16))
		}
		return seq
	}
	run := func(withI bool) Result {
		cfg := DefaultConfig()
		cfg.TraceCache = tracecache.MustNew(tracecache.Config{Lines: 16, Assoc: 1})
		if withI {
			cfg.ICache = cache.MustNew(cache.ICache4K())
		}
		e := MustNew(cfg, newPred(t, 1))
		for _, x := range stream() {
			e.Feed(x)
		}
		return e.Finish()
	}
	base := run(false)
	cached := run(true)
	if cached.Cycles <= base.Cycles {
		t.Errorf("I-cache misses free: %d vs %d cycles", cached.Cycles, base.Cycles)
	}
}
