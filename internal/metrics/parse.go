package metrics

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// This file is the read side of the exposition format Render writes:
// a small parser for Prometheus text 0.0.4, used by tooling (the
// ntpstat fleet reporter) that diffs two /metrics scrapes. It parses
// the subset Render emits — `name{k="v",...} value` sample lines plus
// # HELP/# TYPE comments — which is also the subset any conformant
// exporter produces for counters, gauges and histograms.

// Sample is one parsed series sample.
type Sample struct {
	Name   string
	Labels Labels
	Value  float64
}

// Snapshot is one parsed exposition: every sample, indexed by family
// name. Samples within a family keep their input order (Render sorts
// by label set, so snapshots of the same registry align).
type Snapshot struct {
	byName map[string][]Sample
}

// ParseText parses a Prometheus text 0.0.4 exposition. Comment and
// blank lines are skipped; a malformed sample line is an error (the
// input is a scrape, not a log — half a snapshot would silently
// mis-report rates).
func ParseText(r io.Reader) (*Snapshot, error) {
	snap := &Snapshot{byName: map[string][]Sample{}}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		s, err := parseSample(line)
		if err != nil {
			return nil, fmt.Errorf("metrics: line %d: %w", lineNo, err)
		}
		snap.byName[s.Name] = append(snap.byName[s.Name], s)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("metrics: parse: %w", err)
	}
	return snap, nil
}

// parseSample parses one `name[{labels}] value` line. Timestamps (a
// third field) are accepted and ignored.
func parseSample(line string) (Sample, error) {
	s := Sample{}
	nameEnd := strings.IndexAny(line, "{ ")
	if nameEnd <= 0 {
		return s, fmt.Errorf("malformed sample %q", line)
	}
	s.Name = line[:nameEnd]
	rest := line[nameEnd:]
	if rest[0] == '{' {
		labels, tail, err := parseLabels(rest)
		if err != nil {
			return s, fmt.Errorf("%v in %q", err, line)
		}
		s.Labels = labels
		rest = tail
	}
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 {
		return s, fmt.Errorf("malformed value in %q", line)
	}
	v, err := strconv.ParseFloat(fields[0], 64)
	if err != nil {
		return s, fmt.Errorf("bad value %q in %q", fields[0], line)
	}
	s.Value = v
	return s, nil
}

// parseLabels parses a `{k="v",...}` block (escapes: \\, \", \n) and
// returns the remainder of the line after the closing brace.
func parseLabels(in string) (Labels, string, error) {
	l := Labels{}
	i := 1 // past '{'
	for {
		if i >= len(in) {
			return nil, "", fmt.Errorf("unterminated label block")
		}
		if in[i] == '}' {
			return l, in[i+1:], nil
		}
		eq := strings.IndexByte(in[i:], '=')
		if eq < 0 {
			return nil, "", fmt.Errorf("missing '=' in labels")
		}
		key := strings.TrimSpace(in[i : i+eq])
		i += eq + 1
		if i >= len(in) || in[i] != '"' {
			return nil, "", fmt.Errorf("label value not quoted")
		}
		i++
		var b strings.Builder
		for {
			if i >= len(in) {
				return nil, "", fmt.Errorf("unterminated label value")
			}
			c := in[i]
			if c == '\\' && i+1 < len(in) {
				switch in[i+1] {
				case '\\':
					b.WriteByte('\\')
				case '"':
					b.WriteByte('"')
				case 'n':
					b.WriteByte('\n')
				default:
					b.WriteByte(c)
					b.WriteByte(in[i+1])
				}
				i += 2
				continue
			}
			if c == '"' {
				i++
				break
			}
			b.WriteByte(c)
			i++
		}
		l[key] = b.String()
		if i < len(in) && in[i] == ',' {
			i++
		}
	}
}

// Value returns the sample of name whose label set equals l exactly.
func (s *Snapshot) Value(name string, l Labels) (float64, bool) {
	for _, smp := range s.byName[name] {
		if labelsEqual(smp.Labels, l) {
			return smp.Value, true
		}
	}
	return 0, false
}

// Sum adds every sample of name whose labels include all of match
// (nil matches everything) — e.g. summing a per-shard counter family
// into a server-wide total.
func (s *Snapshot) Sum(name string, match Labels) float64 {
	var total float64
	for _, smp := range s.byName[name] {
		if labelsMatch(smp.Labels, match) {
			total += smp.Value
		}
	}
	return total
}

// Each calls fn for every sample of name whose labels include all of
// match (nil matches everything).
func (s *Snapshot) Each(name string, match Labels, fn func(Labels, float64)) {
	for _, smp := range s.byName[name] {
		if labelsMatch(smp.Labels, match) {
			fn(smp.Labels, smp.Value)
		}
	}
}

// LabelValues returns the sorted distinct values of key across every
// sample of name.
func (s *Snapshot) LabelValues(name, key string) []string {
	seen := map[string]struct{}{}
	for _, smp := range s.byName[name] {
		if v, ok := smp.Labels[key]; ok {
			seen[v] = struct{}{}
		}
	}
	out := make([]string, 0, len(seen))
	for v := range seen {
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}

// Has reports whether the snapshot carries any sample of name.
func (s *Snapshot) Has(name string) bool { return len(s.byName[name]) > 0 }

func labelsEqual(a, b Labels) bool {
	if len(a) != len(b) {
		return false
	}
	return labelsMatch(a, b)
}

func labelsMatch(l, match Labels) bool {
	for k, v := range match {
		if l[k] != v {
			return false
		}
	}
	return true
}
