package metrics

import (
	"flag"
	"os"
	"regexp"
	"strings"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// buildTestRegistry assembles one of every collector kind with fixed
// values, so rendering is fully deterministic.
func buildTestRegistry() *Registry {
	r := NewRegistry()
	c := r.Counter("app_requests_total", "Requests handled.", nil)
	c.Add(42)
	for shard, n := range []uint64{7, 11} {
		sc := r.Counter("app_shard_requests_total", "Requests per shard.",
			Labels{"shard": []string{"0", "1"}[shard]})
		sc.Add(n)
	}
	g := r.Gauge("app_queue_depth", "Tasks queued.", Labels{"shard": "0"})
	g.Set(3)
	r.GaugeFunc("app_uptime_seconds", "Seconds since boot.", nil, func() float64 { return 12.5 })
	r.CounterFunc("app_frames_total", "Frames parsed.", nil, func() uint64 { return 9001 })

	h := r.Histogram("app_op_seconds", "Op latency.", 1e-9, Labels{"op": "update"})
	for _, ns := range []int64{3, 3, 900, 1500, 250_000} {
		h.Observe(ns)
	}
	return r
}

// TestRenderGolden locks the exact Prometheus text rendering.
func TestRenderGolden(t *testing.T) {
	var b strings.Builder
	if err := buildTestRegistry().Render(&b); err != nil {
		t.Fatal(err)
	}
	const path = "testdata/render.golden"
	if *updateGolden {
		if err := os.WriteFile(path, []byte(b.String()), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if b.String() != string(want) {
		t.Errorf("rendering drifted from golden:\n--- got ---\n%s--- want ---\n%s", b.String(), want)
	}
}

// TestRenderWellFormed: every non-comment line must match the text
// exposition grammar, and histogram buckets must be cumulative.
func TestRenderWellFormed(t *testing.T) {
	var b strings.Builder
	if err := buildTestRegistry().Render(&b); err != nil {
		t.Fatal(err)
	}
	line := regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_][a-zA-Z0-9_]*="[^"]*"(,[a-zA-Z_][a-zA-Z0-9_]*="[^"]*")*\})? \S+$`)
	var lastBucket uint64 = 0
	inBuckets := false
	for _, l := range strings.Split(strings.TrimRight(b.String(), "\n"), "\n") {
		if strings.HasPrefix(l, "#") {
			continue
		}
		if !line.MatchString(l) {
			t.Errorf("malformed exposition line: %q", l)
		}
		if strings.Contains(l, "_bucket{") {
			var v uint64
			if _, err := fmtSscan(l, &v); err != nil {
				t.Errorf("unparseable bucket line %q: %v", l, err)
				continue
			}
			if inBuckets && v < lastBucket {
				t.Errorf("bucket counts not cumulative at %q", l)
			}
			lastBucket, inBuckets = v, true
		} else {
			inBuckets = false
		}
	}
}

// fmtSscan pulls the trailing integer off an exposition line.
func fmtSscan(line string, v *uint64) (int, error) {
	i := strings.LastIndexByte(line, ' ')
	var err error
	*v, err = parseUint(line[i+1:])
	if err != nil {
		return 0, err
	}
	return 1, nil
}

func parseUint(s string) (uint64, error) {
	var v uint64
	for _, c := range []byte(s) {
		if c < '0' || c > '9' {
			return 0, errNotInt
		}
		v = v*10 + uint64(c-'0')
	}
	return v, nil
}

var errNotInt = errDummy("not an integer")

type errDummy string

func (e errDummy) Error() string { return string(e) }

// TestRegistryIdempotent: re-registering returns the same collector
// (no double counting), and a kind clash panics.
func TestRegistryIdempotent(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x_total", "x", Labels{"k": "v"})
	b := r.Counter("x_total", "x", Labels{"k": "v"})
	if a != b {
		t.Error("same (name, labels) returned distinct counters")
	}
	a.Inc()
	if b.Load() != 1 {
		t.Error("re-registered counter does not share state")
	}
	if c := r.Counter("x_total", "x", Labels{"k": "w"}); c == a {
		t.Error("distinct labels returned the same counter")
	}
	h1 := r.Histogram("h_seconds", "h", 1e-9, nil)
	h2 := r.Histogram("h_seconds", "h", 1e-9, nil)
	if h1 != h2 {
		t.Error("same histogram series returned distinct histograms")
	}
	defer func() {
		if recover() == nil {
			t.Error("kind clash did not panic")
		}
	}()
	r.Gauge("x_total", "x", nil)
}
