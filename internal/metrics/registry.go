package metrics

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// ContentType is the HTTP Content-Type for Render output (the
// Prometheus text exposition format, version 0.0.4).
const ContentType = "text/plain; version=0.0.4; charset=utf-8"

// Labels are a series' constant label set. Label values are escaped at
// registration; keys must be valid Prometheus label names.
type Labels map[string]string

// Kind is a metric family's type.
type Kind uint8

const (
	KindCounter Kind = iota
	KindGauge
	KindHistogram
)

func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	}
	return "untyped"
}

// series is one (family, label set) time series.
type series struct {
	labels string // rendered label pairs, sorted, no braces; "" when unlabeled
	obj    any    // *Counter, *Gauge or *Histogram for re-registration
	value  func() string
	hist   *Histogram
	scale  float64 // histogram only: raw units -> rendered units
}

type family struct {
	name, help string
	kind       Kind
	series     map[string]*series
}

// Registry holds named metric families and renders them as Prometheus
// text. Registration is idempotent: registering the same (name, labels)
// pair again returns the existing collector, so components can re-wire
// a shared registry without double counting. Registering one name with
// two kinds panics — that is a programming error, caught at startup.
type Registry struct {
	mu   sync.Mutex
	fams map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{fams: map[string]*family{}}
}

func renderLabels(l Labels) string {
	if len(l) == 0 {
		return ""
	}
	keys := make([]string, 0, len(l))
	for k := range l {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(k)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l[k]))
		b.WriteByte('"')
	}
	return b.String()
}

func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// register adds (or finds) the series; returns it and whether it
// already existed.
func (r *Registry) register(name, help string, kind Kind, l Labels) (*series, bool) {
	fam, ok := r.fams[name]
	if !ok {
		fam = &family{name: name, help: help, kind: kind, series: map[string]*series{}}
		r.fams[name] = fam
	} else if fam.kind != kind {
		panic(fmt.Sprintf("metrics: %s registered as %s and %s", name, fam.kind, kind))
	}
	ls := renderLabels(l)
	if s, ok := fam.series[ls]; ok {
		return s, true
	}
	s := &series{labels: ls}
	fam.series[ls] = s
	return s, false
}

// Counter registers (or returns the existing) counter series.
func (r *Registry) Counter(name, help string, l Labels) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	s, existed := r.register(name, help, KindCounter, l)
	if existed {
		return s.obj.(*Counter)
	}
	c := &Counter{}
	s.obj = c
	s.value = func() string { return strconv.FormatUint(c.Load(), 10) }
	return c
}

// CounterFunc registers a counter whose value is read from fn at render
// time — for wiring pre-existing atomic counters into the registry
// without touching their hot paths. Re-registration replaces fn.
func (r *Registry) CounterFunc(name, help string, l Labels, fn func() uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	s, _ := r.register(name, help, KindCounter, l)
	s.value = func() string { return strconv.FormatUint(fn(), 10) }
}

// Gauge registers (or returns the existing) gauge series.
func (r *Registry) Gauge(name, help string, l Labels) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	s, existed := r.register(name, help, KindGauge, l)
	if existed {
		return s.obj.(*Gauge)
	}
	g := &Gauge{}
	s.obj = g
	s.value = func() string { return strconv.FormatInt(g.Load(), 10) }
	return g
}

// GaugeFunc registers a gauge whose value is read from fn at render
// time. Re-registration replaces fn.
func (r *Registry) GaugeFunc(name, help string, l Labels, fn func() float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	s, _ := r.register(name, help, KindGauge, l)
	s.value = func() string { return formatFloat(fn()) }
}

// Histogram registers (or returns the existing) histogram series.
// scale multiplies raw observed units into rendered units — a
// nanosecond histogram rendered in Prometheus-conventional seconds
// passes 1e-9. Observations are unscaled; only rendering scales.
func (r *Registry) Histogram(name, help string, scale float64, l Labels) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	s, existed := r.register(name, help, KindHistogram, l)
	if existed {
		return s.obj.(*Histogram)
	}
	if scale == 0 {
		scale = 1
	}
	h := &Histogram{}
	s.obj = h
	s.hist = h
	s.scale = scale
	return h
}

func formatFloat(v float64) string {
	// 12 significant digits: enough for any counter or latency we
	// render, few enough to hide binary-float noise (3*1e-9 would
	// otherwise print as 3.0000000000000004e-09).
	return strconv.FormatFloat(v, 'g', 12, 64)
}

// Render writes every family in the Prometheus text exposition format,
// families sorted by name and series by label set, so output is
// deterministic for a fixed set of values.
func (r *Registry) Render(w io.Writer) error {
	r.mu.Lock()
	names := make([]string, 0, len(r.fams))
	for name := range r.fams {
		names = append(names, name)
	}
	sort.Strings(names)
	fams := make([]*family, len(names))
	for i, name := range names {
		fams[i] = r.fams[name]
	}
	r.mu.Unlock()

	var b strings.Builder
	for _, fam := range fams {
		b.Reset()
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s %s\n", fam.name, fam.help, fam.name, fam.kind)
		keys := make([]string, 0, len(fam.series))
		for k := range fam.series {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			s := fam.series[k]
			if fam.kind == KindHistogram {
				renderHistogram(&b, fam.name, s)
				continue
			}
			if s.value == nil {
				continue
			}
			b.WriteString(fam.name)
			if s.labels != "" {
				b.WriteByte('{')
				b.WriteString(s.labels)
				b.WriteByte('}')
			}
			b.WriteByte(' ')
			b.WriteString(s.value())
			b.WriteByte('\n')
		}
		if _, err := io.WriteString(w, b.String()); err != nil {
			return err
		}
	}
	return nil
}

// renderHistogram writes the _bucket/_sum/_count triplet for one
// series. Only non-empty buckets are rendered (cumulatively, so the
// sparse output is still a valid Prometheus histogram) plus +Inf.
func renderHistogram(b *strings.Builder, name string, s *series) {
	withLabel := func(extra string) string {
		switch {
		case s.labels == "" && extra == "":
			return ""
		case s.labels == "":
			return "{" + extra + "}"
		case extra == "":
			return "{" + s.labels + "}"
		}
		return "{" + s.labels + "," + extra + "}"
	}
	var cum uint64
	s.hist.Buckets(func(upper, count uint64) {
		cum += count
		le := formatFloat(float64(upper) * s.scale)
		fmt.Fprintf(b, "%s_bucket%s %d\n", name, withLabel(`le="`+le+`"`), cum)
	})
	fmt.Fprintf(b, "%s_bucket%s %d\n", name, withLabel(`le="+Inf"`), s.hist.Count())
	fmt.Fprintf(b, "%s_sum%s %s\n", name, withLabel(""), formatFloat(float64(s.hist.Sum())*s.scale))
	fmt.Fprintf(b, "%s_count%s %d\n", name, withLabel(""), s.hist.Count())
}
