// Package metrics is the repo's small, dependency-free observability
// layer: atomic counters and gauges, a fixed-bucket log-scale latency
// histogram with exact nearest-rank quantile extraction (no sorting,
// no per-sample allocation), and a registry that renders everything in
// the Prometheus text exposition format.
//
// The paper's entire argument is measurement-driven — misprediction
// rates per predictor configuration (§4) — and the serving and replay
// stack around the reproduction needs the same discipline: every layer
// (predictor, shard, server, load generator, experiment harness)
// reports through this one package, so a number seen on `/metrics`, in
// a loadgen report and in a harness summary is computed the same way.
//
// Design constraints, in order:
//
//   - hot-path cheap: Observe/Inc/Add are single atomic RMWs; nothing
//     on the instrumentation path allocates, locks, or formats;
//   - exact where it matters: quantiles are nearest-rank over fixed
//     log-scale buckets (resolution 2^-3 ≈ 12.5% per bucket) and the
//     maximum is tracked exactly, so small-sample percentiles cannot
//     under-report the tail the way a truncating sort-rank estimator
//     does;
//   - deterministic rendering: families and series render in sorted
//     order, so output is golden-file testable.
package metrics

import "sync/atomic"

// Counter is a monotonically increasing counter. The zero value is
// ready to use; all methods are safe for concurrent use.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Load returns the current count.
func (c *Counter) Load() uint64 { return c.v.Load() }

// Gauge is a value that can go up and down. The zero value is ready to
// use; all methods are safe for concurrent use.
type Gauge struct{ v atomic.Int64 }

// Set stores n.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adds n (negative to subtract).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Load returns the current value.
func (g *Gauge) Load() int64 { return g.v.Load() }
