package metrics

import (
	"math"
	"math/rand"
	"sort"
	"sync"
	"testing"
	"time"
)

// TestBucketMapping pins the bucket geometry: the index is monotone,
// every value lands at or below its bucket's upper bound, and the
// relative bucket width is bounded by 2^-histSubBits.
func TestBucketMapping(t *testing.T) {
	prev := -1
	for _, v := range []uint64{0, 1, 2, 15, 16, 17, 31, 32, 100, 1000, 1 << 20, 1<<40 + 12345, math.MaxUint64/2 + 1, math.MaxUint64} {
		i := bucketIndex(v)
		if i < prev {
			t.Errorf("bucketIndex not monotone at %d: %d < %d", v, i, prev)
		}
		prev = i
		ub := bucketUpper(i)
		if v > ub {
			t.Errorf("value %d above its bucket upper bound %d", v, ub)
		}
		if v >= histLinear && ub != math.MaxUint64 {
			if float64(ub) > float64(v)*(1+1.0/histSub)+1 {
				t.Errorf("bucket of %d too wide: upper %d", v, ub)
			}
		}
	}
	// Exhaustive round trip over every bucket boundary.
	for i := 0; i < numBuckets; i++ {
		ub := bucketUpper(i)
		if got := bucketIndex(ub); got != i {
			t.Fatalf("bucketIndex(bucketUpper(%d)=%d) = %d", i, ub, got)
		}
		if ub != math.MaxUint64 {
			if got := bucketIndex(ub + 1); got != i+1 {
				t.Fatalf("bucketIndex(%d) = %d, want %d", ub+1, got, i+1)
			}
		}
	}
}

// TestQuantileTinySamples is the regression test for the loadgen's old
// sort-based estimator, whose truncating rank (int(q*(n-1))) reported
// the MINIMUM as p99 on a 2-sample run and indexed nothing useful on
// empty input.
func TestQuantileTinySamples(t *testing.T) {
	// n = 0: everything is zero, nothing panics.
	var h0 Histogram
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if got := h0.Quantile(q); got != 0 {
			t.Errorf("empty Quantile(%g) = %d, want 0", q, got)
		}
	}
	if h0.Max() != 0 || h0.Count() != 0 {
		t.Errorf("empty histogram max/count = %d/%d", h0.Max(), h0.Count())
	}

	// n = 1: every quantile is the single sample, exactly (the bucket
	// upper bound clamps to the exact max).
	var h1 Histogram
	h1.Observe(100)
	for _, q := range []float64{0, 0.5, 0.9, 0.99, 1} {
		if got := h1.Quantile(q); got != 100 {
			t.Errorf("n=1 Quantile(%g) = %d, want 100", q, got)
		}
	}

	// n = 2: p99 must report the LARGER sample (rank ceil(0.99*2)=2),
	// not the smaller one the truncating estimator returned.
	var h2 Histogram
	h2.Observe(1)
	h2.Observe(1000)
	if got := h2.Quantile(0.99); got != 1000 {
		t.Errorf("n=2 Quantile(0.99) = %d, want 1000", got)
	}
	if got := h2.Quantile(0.50); got != 1 {
		t.Errorf("n=2 Quantile(0.50) = %d, want 1", got)
	}
	if got := h2.Max(); got != 1000 {
		t.Errorf("n=2 Max = %d, want 1000", got)
	}
}

// TestQuantileExactRanks: for values below histLinear the buckets are
// exact, so nearest-rank quantiles must match the textbook sorted-rank
// definition exactly.
func TestQuantileExactRanks(t *testing.T) {
	var h Histogram
	vals := []int64{3, 1, 4, 1, 5, 9, 2, 6, 5, 3} // n = 10
	for _, v := range vals {
		h.Observe(v)
	}
	sorted := append([]int64(nil), vals...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	for _, q := range []float64{0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1} {
		rank := int(math.Ceil(q * float64(len(sorted))))
		want := uint64(sorted[rank-1])
		if got := h.Quantile(q); got != want {
			t.Errorf("Quantile(%g) = %d, want %d (nearest rank %d)", q, got, want, rank)
		}
	}
}

// TestQuantileWithinOneBucket: for arbitrary values the quantile must
// bracket the true nearest-rank sample within one bucket (never below
// it, at most one bucket width above).
func TestQuantileWithinOneBucket(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var h Histogram
	var vals []uint64
	for i := 0; i < 5000; i++ {
		v := uint64(rng.Int63n(int64(10 * time.Millisecond)))
		vals = append(vals, v)
		h.Observe(int64(v))
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	for _, q := range []float64{0.5, 0.9, 0.99, 0.999} {
		rank := int(math.Ceil(q * float64(len(vals))))
		exact := vals[rank-1]
		got := h.Quantile(q)
		if got < exact {
			t.Errorf("Quantile(%g) = %d under-reports exact %d", q, got, exact)
		}
		if got > bucketUpper(bucketIndex(exact)) {
			t.Errorf("Quantile(%g) = %d beyond the bucket of exact %d (upper %d)",
				q, got, exact, bucketUpper(bucketIndex(exact)))
		}
	}
	if h.Quantile(1) != vals[len(vals)-1] {
		t.Errorf("p100 = %d, want exact max %d", h.Quantile(1), vals[len(vals)-1])
	}
}

// TestObserveNegativeAndSum: negatives clamp to zero; count/sum track.
func TestObserveNegativeAndSum(t *testing.T) {
	var h Histogram
	h.Observe(-5)
	h.Observe(7)
	if h.Count() != 2 || h.Sum() != 7 {
		t.Errorf("count/sum = %d/%d, want 2/7", h.Count(), h.Sum())
	}
	if got := h.Quantile(0); got != 0 {
		t.Errorf("min quantile = %d, want 0 (clamped negative)", got)
	}
}

// TestHistogramConcurrent hammers one histogram from many goroutines;
// meaningful under -race, and the totals must balance.
func TestHistogramConcurrent(t *testing.T) {
	var h Histogram
	const workers, per = 8, 10000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < per; i++ {
				h.Observe(rng.Int63n(1 << 30))
			}
		}(int64(w))
	}
	wg.Wait()
	if h.Count() != workers*per {
		t.Errorf("count = %d, want %d", h.Count(), workers*per)
	}
	var cum uint64
	h.Buckets(func(_, c uint64) { cum += c })
	if cum != h.Count() {
		t.Errorf("bucket sum %d != count %d", cum, h.Count())
	}
}
