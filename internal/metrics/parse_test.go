package metrics

import (
	"strings"
	"testing"
)

// TestParseRoundTrip renders a registry and parses it back: every
// rendered sample must survive, including escaped label values and the
// cumulative histogram triplet.
func TestParseRoundTrip(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("rt_requests_total", "Requests.", Labels{"client": "alpha"}).Add(41)
	reg.Counter("rt_requests_total", "Requests.", Labels{"client": "be\"ta\\x"}).Add(7)
	reg.GaugeFunc("rt_depth", "Depth.", nil, func() float64 { return 2.5 })
	h := reg.Histogram("rt_lat_seconds", "Latency.", 1e-9, Labels{"shard": "0"})
	for _, ns := range []int64{100, 1000, 1000, 50_000} {
		h.Observe(ns)
	}

	var b strings.Builder
	if err := reg.Render(&b); err != nil {
		t.Fatalf("render: %v", err)
	}
	snap, err := ParseText(strings.NewReader(b.String()))
	if err != nil {
		t.Fatalf("parse:\n%s\nerr: %v", b.String(), err)
	}

	if v, ok := snap.Value("rt_requests_total", Labels{"client": "alpha"}); !ok || v != 41 {
		t.Errorf("alpha counter = %v, %v; want 41, true", v, ok)
	}
	if v, ok := snap.Value("rt_requests_total", Labels{"client": "be\"ta\\x"}); !ok || v != 7 {
		t.Errorf("escaped-label counter = %v, %v; want 7, true", v, ok)
	}
	if got := snap.Sum("rt_requests_total", nil); got != 48 {
		t.Errorf("Sum(rt_requests_total) = %v, want 48", got)
	}
	if v, ok := snap.Value("rt_depth", nil); !ok || v != 2.5 {
		t.Errorf("gauge = %v, %v; want 2.5, true", v, ok)
	}

	// Histogram: the +Inf bucket and _count must both say 4, _sum must
	// carry the scaled total, and bucket counts must be cumulative.
	if v, ok := snap.Value("rt_lat_seconds_count", Labels{"shard": "0"}); !ok || v != 4 {
		t.Errorf("hist count = %v, %v; want 4, true", v, ok)
	}
	if v, ok := snap.Value("rt_lat_seconds_bucket", Labels{"shard": "0", "le": "+Inf"}); !ok || v != 4 {
		t.Errorf("+Inf bucket = %v, %v; want 4, true", v, ok)
	}
	wantSum := float64(100+1000+1000+50_000) * 1e-9
	if v, ok := snap.Value("rt_lat_seconds_sum", Labels{"shard": "0"}); !ok || v < wantSum*0.999 || v > wantSum*1.001 {
		t.Errorf("hist sum = %v, %v; want ~%v", v, ok, wantSum)
	}
	var last float64
	snap.Each("rt_lat_seconds_bucket", Labels{"shard": "0"}, func(l Labels, v float64) {
		if v < last {
			t.Errorf("bucket counts not cumulative: %v after %v (le=%s)", v, last, l["le"])
		}
		last = v
	})

	if got := snap.LabelValues("rt_requests_total", "client"); len(got) != 2 {
		t.Errorf("LabelValues = %v, want 2 entries", got)
	}
	if !snap.Has("rt_depth") || snap.Has("rt_missing") {
		t.Errorf("Has() misreports presence")
	}
}

func TestParseRejectsMalformed(t *testing.T) {
	for _, in := range []string{
		"name_only\n",
		"x{unterminated=\"v\n",
		"x{k=\"v\"} notanumber\n",
	} {
		if _, err := ParseText(strings.NewReader(in)); err == nil {
			t.Errorf("ParseText(%q) succeeded, want error", in)
		}
	}
	// Timestamps (third field) are legal exposition and ignored.
	snap, err := ParseText(strings.NewReader("x{k=\"v\"} 3 1712345678\n"))
	if err != nil {
		t.Fatalf("timestamped sample: %v", err)
	}
	if v, ok := snap.Value("x", Labels{"k": "v"}); !ok || v != 3 {
		t.Errorf("timestamped sample = %v, %v; want 3, true", v, ok)
	}
}
