package metrics

import (
	"math"
	"math/bits"
	"sync/atomic"
	"time"
)

// Histogram bucket layout: values 0..15 get one exact bucket each;
// above that, every power-of-two octave is split into 8 log-linear
// sub-buckets, so relative resolution is bounded by 2^-3 (12.5%)
// everywhere. 496 buckets cover the full uint64 range — for latencies
// recorded in nanoseconds that spans sub-nanosecond to ~585 years —
// with no configuration, so every histogram in the process shares one
// shape and two histograms can always be compared bucket for bucket.
const (
	histSubBits = 3
	histSub     = 1 << histSubBits       // sub-buckets per octave
	histLinear  = 1 << (histSubBits + 1) // exact buckets for 0..15
	numBuckets  = histLinear + (64-histSubBits-1)*histSub
)

// bucketIndex maps a value to its bucket. Monotone: v <= w implies
// bucketIndex(v) <= bucketIndex(w).
func bucketIndex(v uint64) int {
	if v < histLinear {
		return int(v)
	}
	e := bits.Len64(v) // >= histSubBits+2
	sub := int(v>>(uint(e)-histSubBits-1)) & (histSub - 1)
	return histLinear + (e-histSubBits-2)*histSub + sub
}

// bucketUpper returns the largest value that lands in bucket i.
func bucketUpper(i int) uint64 {
	if i < histLinear {
		return uint64(i)
	}
	o := (i - histLinear) / histSub
	s := uint64((i-histLinear)%histSub) + 1
	e := uint(o + histSubBits + 2) // bits.Len64 of values in this octave
	lo := uint64(1) << (e - 1)
	width := uint64(1) << (e - histSubBits - 1)
	if s == histSub && e == 64 {
		return math.MaxUint64 // lo + 8*width overflows in the top octave
	}
	return lo + s*width - 1
}

// Histogram is a fixed-bucket log-scale histogram of non-negative
// integer values (typically nanoseconds). The zero value is ready to
// use. Observe is wait-free (a handful of atomic adds, no allocation);
// readers (Quantile, Count, Sum, Max, Buckets) may run concurrently
// with writers and see a consistent-enough snapshot — counters only
// grow, so a racing quantile is at worst one in-flight sample stale.
type Histogram struct {
	count   atomic.Uint64
	sum     atomic.Uint64
	max     atomic.Uint64
	buckets [numBuckets]atomic.Uint64
}

// Observe records one value. Negative values clamp to zero.
func (h *Histogram) Observe(v int64) {
	var u uint64
	if v > 0 {
		u = uint64(v)
	}
	h.buckets[bucketIndex(u)].Add(1)
	h.count.Add(1)
	h.sum.Add(u)
	for {
		cur := h.max.Load()
		if u <= cur || h.max.CompareAndSwap(cur, u) {
			return
		}
	}
}

// ObserveDuration records a duration in nanoseconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(int64(d)) }

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() uint64 { return h.sum.Load() }

// Max returns the largest observed value, exactly (0 when empty).
func (h *Histogram) Max() uint64 { return h.max.Load() }

// Quantile returns the q-quantile (0 <= q <= 1) by the nearest-rank
// definition: the smallest observed-bucket upper bound whose cumulative
// count reaches ceil(q*n). The result never under-reports: it is an
// upper bound of the bucket holding the rank-selected sample, clamped
// to the exact observed maximum — so for tiny samples (n = 1, 2) the
// tail quantiles report the large sample, not the small one, and p100
// is exact. Returns 0 on an empty histogram.
func (h *Histogram) Quantile(q float64) uint64 {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	} else if q > 1 {
		q = 1
	}
	rank := uint64(math.Ceil(q * float64(n)))
	if rank < 1 {
		rank = 1
	}
	var cum uint64
	for i := range h.buckets {
		cum += h.buckets[i].Load()
		if cum >= rank {
			ub := bucketUpper(i)
			// The global max lives in the topmost non-empty bucket, so
			// clamping can only tighten, never cross a bucket below it.
			if m := h.max.Load(); ub > m {
				ub = m
			}
			return ub
		}
	}
	return h.max.Load() // racing writers; best effort
}

// QuantileDuration is Quantile for nanosecond histograms.
func (h *Histogram) QuantileDuration(q float64) time.Duration {
	return time.Duration(h.Quantile(q))
}

// Buckets calls f for every non-empty bucket in increasing order with
// the bucket's inclusive upper bound and (non-cumulative) count.
func (h *Histogram) Buckets(f func(upper uint64, count uint64)) {
	for i := range h.buckets {
		if c := h.buckets[i].Load(); c != 0 {
			f(bucketUpper(i), c)
		}
	}
}
