package faults

import (
	"errors"
	"io"
)

// Wire/storage fault injectors: deterministic corruptions of byte
// streams and at-rest frames, for proving that decoders reject — and
// never act on — torn, truncated or bit-flipped input. Unlike the
// table/history injectors above (which model soft errors inside a hint
// structure, where corruption may only cost accuracy), these model
// failures of the serialization boundary, where corruption MUST be
// detected: a snapshot restored from a torn write is a correctness bug.
//
// All corruption decisions derive from a caller-supplied seed through
// the same splitmix64 PRNG the rest of the package uses, so a failing
// case reproduces from its seed alone.

// ErrTornWrite is the error a TornWriter returns once its budget is
// exhausted — the io layer's analogue of a crash mid-write.
var ErrTornWrite = errors.New("faults: torn write")

// TornWriter passes through at most N bytes to W, then fails every
// subsequent write: the classic power-cut torn frame. A write that
// straddles the boundary is partially applied (short write), exactly
// like a kernel buffer cut off mid-flush.
type TornWriter struct {
	W io.Writer
	N int // bytes to pass through before tearing
}

// Write implements io.Writer.
func (t *TornWriter) Write(p []byte) (int, error) {
	if t.N <= 0 {
		return 0, ErrTornWrite
	}
	if len(p) <= t.N {
		n, err := t.W.Write(p)
		t.N -= n
		return n, err
	}
	n, err := t.W.Write(p[:t.N])
	t.N -= n
	if err == nil {
		err = ErrTornWrite
	}
	return n, err
}

// FlipBits returns a copy of b with nbits bit positions XOR-flipped,
// chosen deterministically from seed. Duplicate draws may collapse, but
// at least one bit always flips for non-empty input — the caller is
// guaranteed a frame that differs from the original.
func FlipBits(b []byte, seed uint64, nbits int) []byte {
	out := make([]byte, len(b))
	copy(out, b)
	if len(out) == 0 || nbits < 1 {
		return out
	}
	rng := splitmix64{s: seed ^ 0xc2b2ae3d27d4eb4f}
	for i := 0; i < nbits; i++ {
		pos := rng.intn(len(out) * 8)
		out[pos/8] ^= 1 << uint(pos%8)
	}
	return out
}

// Truncate returns a prefix of b whose length is drawn deterministically
// from seed in [0, len(b)): a short read / short write of the frame.
func Truncate(b []byte, seed uint64) []byte {
	if len(b) == 0 {
		return nil
	}
	rng := splitmix64{s: seed ^ 0x9e3779b97f4a7c15}
	n := rng.intn(len(b))
	out := make([]byte, n)
	copy(out, b[:n])
	return out
}
