package faults

import (
	"testing"

	"pathtrace/internal/history"
	"pathtrace/internal/trace"
)

func TestParseSpec(t *testing.T) {
	cases := []struct {
		spec string
		want Config
	}{
		{"", Config{}},
		{"table:1e-4", Config{Table: 1e-4}},
		{"sec:0.5", Config{Secondary: 0.5}},
		{"secondary:0.5", Config{Secondary: 0.5}},
		{"tracecache:0.25", Config{TraceCache: 0.25}},
		{"stuck", Config{StuckZero: true}},
		{
			"table:1e-4,sec:1e-3,history:1e-5,tcache:0.25,stuck,bits:2,interval:8",
			Config{Table: 1e-4, Secondary: 1e-3, History: 1e-5, TraceCache: 0.25,
				StuckZero: true, Bits: 2, Interval: 8},
		},
		{" table:0.1 , history:0.2 ", Config{Table: 0.1, History: 0.2}},
	}
	for _, c := range cases {
		got, err := ParseSpec(c.spec)
		if err != nil {
			t.Errorf("ParseSpec(%q) error: %v", c.spec, err)
			continue
		}
		if got != c.want {
			t.Errorf("ParseSpec(%q) = %+v, want %+v", c.spec, got, c.want)
		}
	}
}

func TestParseSpecErrors(t *testing.T) {
	for _, spec := range []string{
		"bogus:1", "table", "table:2", "table:-0.1", "table:xyz",
		"bits:0", "bits", "interval:-1", "stuck:0.5",
	} {
		if _, err := ParseSpec(spec); err == nil {
			t.Errorf("ParseSpec(%q) succeeded, want error", spec)
		}
	}
}

func TestSpecRoundTrip(t *testing.T) {
	for _, spec := range []string{
		"table:0.0001", "table:0.5,sec:0.25,history:0.125,tcache:1,stuck,bits:3,interval:16",
	} {
		cfg, err := ParseSpec(spec)
		if err != nil {
			t.Fatalf("ParseSpec(%q): %v", spec, err)
		}
		back, err := ParseSpec(cfg.String())
		if err != nil {
			t.Fatalf("ParseSpec(String()=%q): %v", cfg.String(), err)
		}
		if back != cfg {
			t.Errorf("round trip %q -> %+v -> %q -> %+v", spec, cfg, cfg.String(), back)
		}
	}
	if got := (Config{}).String(); got != "none" {
		t.Errorf("empty config String() = %q, want none", got)
	}
}

func TestScale(t *testing.T) {
	c := Config{Table: 0.1, Secondary: 0.2, History: 0.3, TraceCache: 0.4, StuckZero: true}
	z := c.Scale(0)
	if z.Enabled() {
		t.Errorf("Scale(0) still enabled: %+v", z)
	}
	up := c.Scale(10)
	if up.Table != 1 || up.Secondary != 1 || up.History != 1 || up.TraceCache != 1 {
		t.Errorf("Scale(10) did not cap rates at 1: %+v", up)
	}
	if !up.StuckZero {
		t.Error("Scale(10) dropped StuckZero")
	}
	half := c.Scale(0.5)
	if half.Table != 0.05 {
		t.Errorf("Scale(0.5).Table = %g, want 0.05", half.Table)
	}
}

func TestNilInjectorSafe(t *testing.T) {
	var i *Injector
	if i.StuckZero() {
		t.Error("nil injector StuckZero() = true")
	}
	if f := i.CorrFault(1024, 36, 10, 2); f.Fire {
		t.Error("nil injector CorrFault fired")
	}
	if f := i.SecFault(1024, 36, 4); f.Fire {
		t.Error("nil injector SecFault fired")
	}
}

// TestDeterminism: equal configs give bit-identical fault sequences.
func TestDeterminism(t *testing.T) {
	cfg := Config{Seed: 42, Table: 0.3, Secondary: 0.2, History: 0.1}
	a, b := New(cfg), New(cfg)
	for n := 0; n < 5000; n++ {
		fa, fb := a.CorrFault(1<<16, 36, 10, 2), b.CorrFault(1<<16, 36, 10, 2)
		if fa != fb {
			t.Fatalf("draw %d: CorrFault diverged: %+v vs %+v", n, fa, fb)
		}
		sa, sb := a.SecFault(1<<16, 36, 4), b.SecFault(1<<16, 36, 4)
		if sa != sb {
			t.Fatalf("draw %d: SecFault diverged: %+v vs %+v", n, sa, sb)
		}
	}
	if a.Stats() != b.Stats() {
		t.Errorf("stats diverged: %+v vs %+v", a.Stats(), b.Stats())
	}
	if a.Stats().TableFaults == 0 || a.Stats().SecFaults == 0 {
		t.Errorf("no faults fired at high rates: %+v", a.Stats())
	}

	other := New(Config{Seed: 43, Table: 0.3})
	diverged := false
	for n := 0; n < 5000; n++ {
		if other.CorrFault(1<<16, 36, 10, 2) != New(cfg).CorrFault(1<<16, 36, 10, 2) {
			diverged = true
			break
		}
	}
	if !diverged {
		t.Error("different seeds produced identical fault sequences")
	}
}

// TestNestedFireSets: the fire stream consumes one draw per opportunity
// regardless of rate, so every fault that fires at rate r also fires at
// any higher rate — the property that makes degradation curves monotone.
func TestNestedFireSets(t *testing.T) {
	lo := New(Config{Seed: 7, Table: 0.05})
	hi := New(Config{Seed: 7, Table: 0.20})
	var loFires, hiFires int
	for n := 0; n < 20000; n++ {
		fl := lo.CorrFault(1<<16, 36, 10, 2)
		fh := hi.CorrFault(1<<16, 36, 10, 2)
		if fl.Fire {
			loFires++
			if !fh.Fire {
				t.Fatalf("draw %d: fired at rate 0.05 but not at 0.20", n)
			}
		}
		if fh.Fire {
			hiFires++
		}
	}
	if loFires == 0 {
		t.Fatal("no faults fired at rate 0.05 in 20000 draws")
	}
	if hiFires <= loFires {
		t.Errorf("fires at 0.20 (%d) not above fires at 0.05 (%d)", hiFires, loFires)
	}
}

func TestInterval(t *testing.T) {
	inj := New(Config{Seed: 1, Table: 1, Interval: 4})
	fires := 0
	for n := 0; n < 100; n++ {
		if inj.CorrFault(16, 36, 10, 2).Fire {
			fires++
		}
	}
	if fires != 25 {
		t.Errorf("rate 1 with interval 4: %d fires in 100 draws, want 25", fires)
	}
}

func TestTableFaultFields(t *testing.T) {
	inj := New(Config{Seed: 3, Table: 1, Bits: 2})
	for n := 0; n < 1000; n++ {
		f := inj.CorrFault(64, 36, 10, 2)
		if !f.Fire {
			t.Fatalf("rate-1 fault did not fire at draw %d", n)
		}
		if f.Index < 0 || f.Index >= 64 {
			t.Fatalf("index %d out of range", f.Index)
		}
		if f.Mask == 0 {
			t.Fatalf("zero mask for slot %v", f.Slot)
		}
		var width uint64
		switch f.Slot {
		case SlotValue, SlotAlt:
			width = 36
		case SlotTag:
			width = 10
		case SlotCounter:
			width = 2
		default:
			t.Fatalf("unknown slot %v", f.Slot)
		}
		if f.Mask >= 1<<width {
			t.Fatalf("mask %#x exceeds %d-bit field (slot %v)", f.Mask, width, f.Slot)
		}
	}
	// A table with no tags must never target the tag slot.
	inj = New(Config{Seed: 4, Secondary: 1})
	for n := 0; n < 1000; n++ {
		if f := inj.SecFault(64, 36, 4); f.Slot == SlotTag || f.Slot == SlotAlt {
			t.Fatalf("secondary fault targeted %v", f.Slot)
		}
	}
}

func TestOnPushCorruptsHistory(t *testing.T) {
	inj := New(Config{Seed: 9, History: 1})
	reg := history.MustNewReg(8)
	reg.SetFaultHook(inj)
	clean := history.MustNewReg(8)
	for i := 0; i < 32; i++ {
		reg.Push(trace.HashedID(i & 0x3ff))
		clean.Push(trace.HashedID(i & 0x3ff))
	}
	if inj.Stats().HistoryFaults == 0 {
		t.Fatal("rate-1 history faults never fired")
	}
	same := true
	for i := 0; i < 8; i++ {
		if reg.At(i) != clean.At(i) {
			same = false
		}
	}
	if same {
		t.Error("history register unchanged despite rate-1 corruption")
	}
}

func TestDescribe(t *testing.T) {
	if got := (Stats{}).Describe(); got != "no faults injected" {
		t.Errorf("empty stats Describe() = %q", got)
	}
	s := Stats{TableFaults: 2, HistoryFaults: 1}
	if got := s.Describe(); got != "history:1 table:2" {
		t.Errorf("Describe() = %q, want \"history:1 table:2\"", got)
	}
}
