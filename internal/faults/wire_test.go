package faults

import (
	"bytes"
	"errors"
	"testing"
)

func TestTornWriterBudget(t *testing.T) {
	var buf bytes.Buffer
	w := &TornWriter{W: &buf, N: 10}

	n, err := w.Write([]byte("12345"))
	if n != 5 || err != nil {
		t.Fatalf("first write: n=%d err=%v", n, err)
	}
	// Straddles the boundary: 5 remaining, 8 offered -> short write.
	n, err = w.Write([]byte("abcdefgh"))
	if n != 5 || !errors.Is(err, ErrTornWrite) {
		t.Fatalf("straddling write: n=%d err=%v", n, err)
	}
	// Budget exhausted: every subsequent write fails outright.
	n, err = w.Write([]byte("x"))
	if n != 0 || !errors.Is(err, ErrTornWrite) {
		t.Fatalf("post-tear write: n=%d err=%v", n, err)
	}
	if got := buf.String(); got != "12345abcde" {
		t.Fatalf("written %q, want %q", got, "12345abcde")
	}
}

func TestFlipBitsDeterministicAndDiffers(t *testing.T) {
	orig := bytes.Repeat([]byte{0xA5}, 64)
	a := FlipBits(orig, 42, 3)
	b := FlipBits(orig, 42, 3)
	if !bytes.Equal(a, b) {
		t.Fatal("same seed produced different corruptions")
	}
	if bytes.Equal(a, orig) {
		t.Fatal("FlipBits returned an unmodified frame")
	}
	if c := FlipBits(orig, 43, 3); bytes.Equal(a, c) {
		t.Fatal("different seeds produced identical corruptions")
	}
	// Input must not be mutated.
	if !bytes.Equal(orig, bytes.Repeat([]byte{0xA5}, 64)) {
		t.Fatal("FlipBits mutated its input")
	}
	if got := FlipBits(nil, 1, 3); len(got) != 0 {
		t.Fatalf("FlipBits(nil) = %v", got)
	}
}

func TestTruncateDeterministicProperPrefix(t *testing.T) {
	orig := bytes.Repeat([]byte{0x5A}, 64)
	a := Truncate(orig, 9)
	b := Truncate(orig, 9)
	if !bytes.Equal(a, b) {
		t.Fatal("same seed produced different truncations")
	}
	if len(a) >= len(orig) {
		t.Fatalf("Truncate returned %d bytes, want a proper prefix of %d", len(a), len(orig))
	}
	if !bytes.Equal(a, orig[:len(a)]) {
		t.Fatal("Truncate result is not a prefix of the input")
	}
	if got := Truncate(nil, 1); got != nil {
		t.Fatalf("Truncate(nil) = %v", got)
	}
}
