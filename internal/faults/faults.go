// Package faults provides deterministic, seed-driven fault injection
// for the predictor's hardware structures. The paper's predictor is a
// hint mechanism — corrupted state can never break correctness, only
// accuracy — which makes graceful degradation under faults a measurable
// property. This package supplies the injectors; the structures under
// test (internal/predictor tables, the internal/history register, the
// internal/tracecache lines) call the hooks at configurable intervals.
//
// Determinism: all randomness comes from two private splitmix64 streams
// seeded from Config.Seed — one for *whether* a fault fires, one for
// *what* it does. The fire stream consumes exactly one draw per
// opportunity per fault class regardless of rate, so two sweeps that
// differ only in rate see nested (coupled) fault sets: every fault
// injected at rate r also fires at any rate r' > r. That coupling is
// what makes the degradation curves of the `faults` experiment
// monotone rather than noise-dominated.
package faults

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"pathtrace/internal/history"
	"pathtrace/internal/trace"
	"pathtrace/internal/tracecache"
)

// Config describes a fault-injection plan. Rates are per-opportunity
// probabilities: one opportunity per predictor table update, one per
// history-register push, one per trace-cache access.
type Config struct {
	// Seed drives both PRNG streams. Two runs with equal Config produce
	// bit-for-bit identical injections.
	Seed uint64

	// Bits is the number of bits flipped per corruption event (>= 1).
	Bits int

	// Interval decimates opportunities: only every Interval-th
	// opportunity of each class may fire (default 1 = every one).
	Interval uint64

	// Table is the per-update probability of corrupting a correlated
	// prediction-table entry (value, alternate, tag or counter bits).
	Table float64

	// Secondary is the per-update probability of corrupting a
	// secondary-table entry.
	Secondary float64

	// History is the per-push probability of corrupting one hashed
	// identifier in the path history register.
	History float64

	// TraceCache is the per-access probability of invalidating or
	// corrupting a trace-cache line.
	TraceCache float64

	// StuckZero forces every counter write to zero (stuck-at-zero
	// counters): the confidence mechanism is disabled and entries are
	// always replaceable.
	StuckZero bool
}

// specKinds maps -inject spec keys to config fields, in canonical
// rendering order.
var specKinds = []string{"table", "sec", "history", "tcache", "stuck", "bits", "interval"}

// ParseSpec parses a fault specification of the form
//
//	kind:rate[,kind:rate...]
//
// with kinds table, sec, history, tcache (probabilities in [0,1]),
// the flag stuck (no rate), and the modifiers bits:<n> and
// interval:<n>. Example: "table:1e-4,history:1e-5,stuck,bits:2".
// The zero-valued parts of the returned Config keep their defaults
// (Bits 1, Interval 1, Seed 0 — set the seed separately).
func ParseSpec(spec string) (Config, error) {
	var c Config
	if strings.TrimSpace(spec) == "" {
		return c, nil
	}
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		key, val, hasVal := strings.Cut(part, ":")
		key = strings.TrimSpace(key)
		val = strings.TrimSpace(val)
		switch key {
		case "stuck":
			if hasVal && val != "" && val != "1" && val != "true" {
				return c, fmt.Errorf("faults: stuck takes no rate (got %q)", part)
			}
			c.StuckZero = true
			continue
		case "bits", "interval":
			if !hasVal {
				return c, fmt.Errorf("faults: %s needs a value (e.g. %s:2)", key, key)
			}
			n, err := strconv.Atoi(val)
			if err != nil || n < 1 {
				return c, fmt.Errorf("faults: bad %s value %q", key, val)
			}
			if key == "bits" {
				c.Bits = n
			} else {
				c.Interval = uint64(n)
			}
			continue
		}
		if !hasVal {
			return c, fmt.Errorf("faults: %q needs a rate (e.g. table:1e-4); kinds are %s",
				part, strings.Join(specKinds, ", "))
		}
		rate, err := strconv.ParseFloat(val, 64)
		if err != nil || rate < 0 || rate > 1 {
			return c, fmt.Errorf("faults: bad rate %q in %q (want a probability in [0,1])", val, part)
		}
		switch key {
		case "table":
			c.Table = rate
		case "sec", "secondary":
			c.Secondary = rate
		case "history":
			c.History = rate
		case "tcache", "tracecache":
			c.TraceCache = rate
		default:
			return c, fmt.Errorf("faults: unknown kind %q; kinds are %s",
				key, strings.Join(specKinds, ", "))
		}
	}
	return c, nil
}

// String renders the config as a canonical spec string (parseable by
// ParseSpec; Seed is rendered separately by callers).
func (c Config) String() string {
	var parts []string
	add := func(k string, r float64) {
		if r > 0 {
			parts = append(parts, fmt.Sprintf("%s:%g", k, r))
		}
	}
	add("table", c.Table)
	add("sec", c.Secondary)
	add("history", c.History)
	add("tcache", c.TraceCache)
	if c.StuckZero {
		parts = append(parts, "stuck")
	}
	if c.Bits > 1 {
		parts = append(parts, fmt.Sprintf("bits:%d", c.Bits))
	}
	if c.Interval > 1 {
		parts = append(parts, fmt.Sprintf("interval:%d", c.Interval))
	}
	if len(parts) == 0 {
		return "none"
	}
	return strings.Join(parts, ",")
}

// Enabled reports whether the plan injects anything at all.
func (c Config) Enabled() bool {
	return c.Table > 0 || c.Secondary > 0 || c.History > 0 || c.TraceCache > 0 || c.StuckZero
}

// Scale multiplies every rate by f (capping at 1). StuckZero is kept
// only for f > 0, so Scale(0) is a clean baseline.
func (c Config) Scale(f float64) Config {
	s := c
	cap1 := func(r float64) float64 {
		if r > 1 {
			return 1
		}
		return r
	}
	s.Table = cap1(c.Table * f)
	s.Secondary = cap1(c.Secondary * f)
	s.History = cap1(c.History * f)
	s.TraceCache = cap1(c.TraceCache * f)
	s.StuckZero = c.StuckZero && f > 0
	return s
}

func (c Config) withDefaults() Config {
	if c.Bits == 0 {
		c.Bits = 1
	}
	if c.Interval == 0 {
		c.Interval = 1
	}
	return c
}

// Stats counts injected faults per class.
type Stats struct {
	Opportunities uint64 // fire-stream draws consumed
	TableFaults   uint64
	SecFaults     uint64
	HistoryFaults uint64
	TCacheFaults  uint64
}

// splitmix64 is the PRNG behind both streams: tiny, fast, and fully
// deterministic across platforms (unlike math/rand sources, its output
// is pinned by this file alone).
type splitmix64 struct{ s uint64 }

func (r *splitmix64) next() uint64 {
	r.s += 0x9e3779b97f4a7c15
	z := r.s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// float64 returns a uniform draw in [0, 1).
func (r *splitmix64) float64() float64 {
	return float64(r.next()>>11) / (1 << 53)
}

// intn returns a uniform draw in [0, n).
func (r *splitmix64) intn(n int) int {
	if n <= 1 {
		return 0
	}
	return int(r.next() % uint64(n))
}

// Injector is one deterministic fault source. It is NOT safe for
// concurrent use; give each predictor/cache its own injector (the
// harness runs cells concurrently, each cell with its own injectors).
type Injector struct {
	cfg   Config
	fire  splitmix64 // whether a fault fires (rate-coupled stream)
	eff   splitmix64 // what the fault does (entry, slot, bits)
	ticks [4]uint64  // per-class opportunity counters (interval gating)
	stats Stats
}

// Fault classes, indexing Injector.ticks.
const (
	classTable = iota
	classSec
	classHistory
	classTCache
)

// New builds an injector for the plan.
func New(cfg Config) *Injector {
	cfg = cfg.withDefaults()
	return &Injector{
		cfg: cfg,
		// Distinct, seed-derived stream origins. The +1 keeps seed 0 and
		// the xor constant from colliding.
		fire: splitmix64{s: cfg.Seed*0x9e3779b97f4a7c15 + 1},
		eff:  splitmix64{s: cfg.Seed ^ 0xd1b54a32d192ed03},
	}
}

// Config returns the plan the injector was built with.
func (i *Injector) Config() Config { return i.cfg }

// InjectorState is the complete serializable state of an injector: the
// plan plus both PRNG stream positions, the per-class opportunity
// counters and the fault tallies. An injector rebuilt via FromState
// produces exactly the draw sequence the original would have produced
// next — the property that lets a fault-injected predictor session be
// snapshotted and resumed bit-identically elsewhere.
type InjectorState struct {
	Config Config
	Fire   uint64 // fire-stream PRNG position
	Eff    uint64 // effect-stream PRNG position
	Ticks  [4]uint64
	Stats  Stats
}

// State captures the injector for serialization.
func (i *Injector) State() InjectorState {
	return InjectorState{
		Config: i.cfg,
		Fire:   i.fire.s,
		Eff:    i.eff.s,
		Ticks:  i.ticks,
		Stats:  i.stats,
	}
}

// FromState rebuilds an injector mid-stream from a serialized state.
func FromState(st InjectorState) *Injector {
	return &Injector{
		cfg:   st.Config.withDefaults(),
		fire:  splitmix64{s: st.Fire},
		eff:   splitmix64{s: st.Eff},
		ticks: st.Ticks,
		stats: st.Stats,
	}
}

// Stats returns the counts of injected faults so far.
func (i *Injector) Stats() Stats { return i.stats }

// StuckZero reports whether counters are stuck at zero under this plan.
func (i *Injector) StuckZero() bool { return i != nil && i.cfg.StuckZero }

// fires burns one fire-stream draw and reports whether a fault of the
// class fires. The draw is consumed even when the rate is zero so that
// plans differing only in rate share a fire stream (nested fault sets).
func (i *Injector) fires(class int, rate float64) bool {
	i.ticks[class]++
	if (i.ticks[class]-1)%i.cfg.Interval != 0 {
		return false
	}
	i.stats.Opportunities++
	return i.fire.float64() < rate
}

// mask returns cfg.Bits random bit flips within a field of the given
// width (at least one bit, even if duplicates collapse).
func (i *Injector) mask(width int) uint64 {
	if width <= 0 {
		return 0
	}
	var m uint64
	for b := 0; b < i.cfg.Bits; b++ {
		m |= 1 << uint(i.eff.intn(width))
	}
	return m
}

// Slot identifies which field of a table entry a fault targets.
type Slot int

const (
	SlotValue   Slot = iota // the stored (predicted) identifier
	SlotAlt                 // the alternate identifier
	SlotTag                 // the entry tag (correlated table only)
	SlotCounter             // the saturating counter
)

func (s Slot) String() string {
	switch s {
	case SlotValue:
		return "value"
	case SlotAlt:
		return "alt"
	case SlotTag:
		return "tag"
	case SlotCounter:
		return "counter"
	}
	return fmt.Sprintf("slot(%d)", int(s))
}

// TableFault is one table-corruption decision.
type TableFault struct {
	Fire  bool
	Index int    // entry index in [0, entries)
	Slot  Slot   // field to corrupt
	Mask  uint64 // bits to XOR into the field
}

// tableFault draws a corruption decision for a table of the given
// geometry. tagBits 0 means the table has no tags (basic predictor,
// secondary table); altBits 0 means no alternate field.
func (i *Injector) tableFault(class int, rate float64, entries, valBits, altBits, tagBits, ctrBits int) TableFault {
	if !i.fires(class, rate) {
		return TableFault{}
	}
	f := TableFault{Fire: true, Index: i.eff.intn(entries)}
	// Slot weights: the stored value is the likeliest victim (it has
	// the most bits in a real SRAM array), then alternate/tag/counter.
	roll := i.eff.intn(10)
	switch {
	case roll < 5:
		f.Slot = SlotValue
	case roll < 7 && altBits > 0:
		f.Slot = SlotAlt
	case roll < 9 && tagBits > 0:
		f.Slot = SlotTag
	default:
		f.Slot = SlotCounter
	}
	switch f.Slot {
	case SlotValue:
		f.Mask = i.mask(valBits)
	case SlotAlt:
		f.Mask = i.mask(altBits)
	case SlotTag:
		f.Mask = i.mask(tagBits)
	case SlotCounter:
		f.Mask = i.mask(ctrBits)
	}
	if class == classTable {
		i.stats.TableFaults++
	} else {
		i.stats.SecFaults++
	}
	return f
}

// CorrFault draws a corruption decision for the correlated table.
// Call exactly once per predictor update.
func (i *Injector) CorrFault(entries, valBits, tagBits, ctrBits int) TableFault {
	if i == nil {
		return TableFault{}
	}
	return i.tableFault(classTable, i.cfg.Table, entries, valBits, valBits, tagBits, ctrBits)
}

// SecFault draws a corruption decision for the secondary table.
// Call exactly once per hybrid update.
func (i *Injector) SecFault(entries, valBits, ctrBits int) TableFault {
	if i == nil {
		return TableFault{}
	}
	return i.tableFault(classSec, i.cfg.Secondary, entries, valBits, 0, 0, ctrBits)
}

// OnPush implements history.PushHook: after each push the injector may
// corrupt one hashed identifier at a random position. Install with
// reg.SetFaultHook(injector).
func (i *Injector) OnPush(r *history.Reg) {
	if !i.fires(classHistory, i.cfg.History) {
		return
	}
	pos := i.eff.intn(r.Size())
	mask := trace.HashedID(i.mask(trace.HashBits))
	if mask == 0 {
		mask = 1
	}
	r.CorruptAt(pos, mask)
	i.stats.HistoryFaults++
}

// TraceCacheHook returns a hook for tracecache.Cache.SetFaultHook: on
// each access it may invalidate a random line or flip bits in its
// stored identifier (so the tag check rejects the next probe).
func (i *Injector) TraceCacheHook() func(*tracecache.Cache) {
	return func(c *tracecache.Cache) {
		if !i.fires(classTCache, i.cfg.TraceCache) {
			return
		}
		sets, ways := c.Geometry()
		set, way := i.eff.intn(sets), i.eff.intn(ways)
		if i.eff.intn(2) == 0 {
			c.InvalidateWay(set, way)
		} else {
			c.CorruptWay(set, way, i.mask(trace.IDBits))
		}
		i.stats.TCacheFaults++
	}
}

// Describe renders the stats as a deterministic one-line summary.
func (s Stats) Describe() string {
	kv := map[string]uint64{
		"table": s.TableFaults, "sec": s.SecFaults,
		"history": s.HistoryFaults, "tcache": s.TCacheFaults,
	}
	keys := make([]string, 0, len(kv))
	for k, v := range kv {
		if v > 0 {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	if len(keys) == 0 {
		return "no faults injected"
	}
	parts := make([]string, len(keys))
	for j, k := range keys {
		parts[j] = fmt.Sprintf("%s:%d", k, kv[k])
	}
	return strings.Join(parts, " ")
}
