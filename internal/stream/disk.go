package stream

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"

	"pathtrace/internal/isa"
	"pathtrace/internal/trace"
)

// Stream files let a sweep skip simulation across process runs: the
// paper's own methodology records each benchmark's dynamic trace stream
// once and feeds the file to every predictor configuration. The format
// is a flat little-endian dump of the stream's arrays behind a
// self-describing key header, with a CRC so a truncated or corrupted
// file is rejected instead of replayed.
//
// Layout (all little-endian):
//
//	magic     "NTPSTRM2"
//	workload  u16 length + bytes
//	params    u16 length + bytes (v2 only; the workload's generator
//	          parameterization, "" for the fixed benchmarks)
//	limit     u64
//	sel       u32 MaxLen, u32 MaxBranches, u8 flags (bit0 = BreakOnLoopClosure)
//	instrs    u64
//	counts    u32 records, u32 branches, u32 mems
//	records   36 bytes each (see encodeRecord)
//	branches  10 bytes each
//	mems      5 bytes each
//	crc32     u32 (IEEE, over everything after the magic)
//
// v1 files ("NTPSTRM1", no params field) still decode — they predate
// parameterized workloads, so their params are implicitly empty.
const (
	diskMagic   = "NTPSTRM2"
	diskMagicV1 = "NTPSTRM1"
)

const (
	diskHeaderBytes = 37 // limit + sel + instrs + counts (after the workload name)
	diskRecordBytes = 36
	diskBranchBytes = 10
	diskMemBytes    = 5
)

// ErrCorrupt reports a stream file that failed structural or checksum
// validation.
var ErrCorrupt = errors.New("stream: corrupt stream file")

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// paramsHash digests a workload parameterization for file names and
// key rendering (the full string lives in the file header; the name
// only needs to be collision-resistant across a directory).
func paramsHash(params string) uint32 {
	return crc32.ChecksumIEEE([]byte(params))
}

// Filename returns the file name a stream with this key is saved under:
// workload, limit and selection are all spelled out so a directory of
// streams is self-describing and distinct keys never collide. A
// parameterized workload (non-empty Params) additionally carries a
// digest of its parameters, so two same-name/different-seed synthetic
// workloads never share a file; LoadKey's header check backstops the
// digest with the full string.
func (k Key) Filename() string {
	name := k.Workload
	if k.Params != "" {
		name = fmt.Sprintf("%s@%08x", k.Workload, paramsHash(k.Params))
	}
	name = fmt.Sprintf("%s_%d_%d-%d", name, k.Limit, k.Sel.MaxLen, k.Sel.MaxBranches)
	if k.Sel.BreakOnLoopClosure {
		name += "-loop"
	}
	return name + ".ntps"
}

// Encode writes the stream to w in the stream-file format.
func (s *Stream) Encode(w io.Writer) error {
	crc := crc32.NewIEEE()
	bw := bufio.NewWriterSize(io.MultiWriter(w, crc), 1<<16)
	if _, err := w.Write([]byte(diskMagic)); err != nil {
		return err
	}
	var buf [diskHeaderBytes]byte
	le := binary.LittleEndian
	le.PutUint16(buf[:], uint16(len(s.key.Workload)))
	bw.Write(buf[:2])
	bw.WriteString(s.key.Workload)
	le.PutUint16(buf[:], uint16(len(s.key.Params)))
	bw.Write(buf[:2])
	bw.WriteString(s.key.Params)
	le.PutUint64(buf[:], s.key.Limit)
	le.PutUint32(buf[8:], uint32(s.key.Sel.MaxLen))
	le.PutUint32(buf[12:], uint32(s.key.Sel.MaxBranches))
	buf[16] = 0
	if s.key.Sel.BreakOnLoopClosure {
		buf[16] = 1
	}
	le.PutUint64(buf[17:], s.instrs)
	le.PutUint32(buf[25:], uint32(len(s.recs)))
	le.PutUint32(buf[29:], uint32(len(s.branches)))
	le.PutUint32(buf[33:], uint32(len(s.mems)))
	bw.Write(buf[:diskHeaderBytes])
	for i := range s.recs {
		encodeRecord(buf[:diskRecordBytes], &s.recs[i])
		bw.Write(buf[:diskRecordBytes])
	}
	for i := range s.branches {
		b := &s.branches[i]
		le.PutUint32(buf[:], b.PC)
		le.PutUint32(buf[4:], b.Target)
		buf[8] = uint8(b.Ctrl)
		buf[9] = 0
		if b.Taken {
			buf[9] = 1
		}
		bw.Write(buf[:diskBranchBytes])
	}
	for i := range s.mems {
		m := &s.mems[i]
		le.PutUint32(buf[:], m.Addr)
		buf[4] = 0
		if m.Store {
			buf[4] = 1
		}
		bw.Write(buf[:diskMemBytes])
	}
	if err := bw.Flush(); err != nil {
		return err
	}
	le.PutUint32(buf[:], crc.Sum32())
	_, err := w.Write(buf[:4])
	return err
}

func encodeRecord(buf []byte, r *record) {
	le := binary.LittleEndian
	le.PutUint64(buf[:], uint64(r.id))
	le.PutUint16(buf[8:], uint16(r.hash))
	le.PutUint32(buf[10:], r.startPC)
	le.PutUint32(buf[14:], r.nextPC)
	le.PutUint32(buf[18:], r.brOff)
	le.PutUint32(buf[22:], r.memOff)
	le.PutUint16(buf[26:], r.length)
	le.PutUint16(buf[28:], r.calls)
	le.PutUint16(buf[30:], r.numCtrl)
	le.PutUint16(buf[32:], r.numMem)
	buf[34] = r.numBr
	buf[35] = r.flags
}

// Decode reads a stream in the stream-file format, validating the magic
// and checksum and the internal consistency of every record's offsets.
func Decode(r io.Reader) (*Stream, error) {
	var magic [8]byte
	if _, err := io.ReadFull(r, magic[:]); err != nil {
		return nil, fmt.Errorf("%w: short magic", ErrCorrupt)
	}
	hasParams := string(magic[:]) == diskMagic
	if !hasParams && string(magic[:]) != diskMagicV1 {
		return nil, fmt.Errorf("%w: bad magic %q", ErrCorrupt, magic[:])
	}
	// The checksum is computed over exactly the bytes parsed (the
	// buffered reader reads ahead, so a TeeReader would hash the CRC
	// trailer into itself); readFull hashes what it consumes.
	crc := crc32.NewIEEE()
	br := bufio.NewReaderSize(r, 1<<16)
	var buf [diskHeaderBytes]byte
	le := binary.LittleEndian
	readFull := func(b []byte, what string) error {
		if _, err := io.ReadFull(br, b); err != nil {
			return fmt.Errorf("%w: short %s", ErrCorrupt, what)
		}
		crc.Write(b)
		return nil
	}
	if err := readFull(buf[:2], "header"); err != nil {
		return nil, err
	}
	nameLen := int(le.Uint16(buf[:]))
	name := make([]byte, nameLen)
	if err := readFull(name, "workload name"); err != nil {
		return nil, err
	}
	var params []byte
	if hasParams {
		if err := readFull(buf[:2], "params length"); err != nil {
			return nil, err
		}
		params = make([]byte, int(le.Uint16(buf[:])))
		if err := readFull(params, "params"); err != nil {
			return nil, err
		}
	}
	if err := readFull(buf[:diskHeaderBytes], "header"); err != nil {
		return nil, err
	}
	s := &Stream{key: Key{
		Workload: string(name),
		Params:   string(params),
		Limit:    le.Uint64(buf[:]),
		Sel: trace.Config{
			MaxLen:             int(le.Uint32(buf[8:])),
			MaxBranches:        int(le.Uint32(buf[12:])),
			BreakOnLoopClosure: buf[16]&1 != 0,
		},
	}}
	s.instrs = le.Uint64(buf[17:])
	nRecs := int(le.Uint32(buf[25:]))
	nBranches := int(le.Uint32(buf[29:]))
	nMems := int(le.Uint32(buf[33:]))
	// Bound the up-front allocations: a corrupt count field must fail
	// cheaply (the subsequent reads would catch it anyway, but only
	// after a multi-gigabyte make).
	const maxElems = 1 << 28
	if nRecs > maxElems || nBranches > maxElems || nMems > maxElems {
		return nil, fmt.Errorf("%w: implausible element counts %d/%d/%d", ErrCorrupt, nRecs, nBranches, nMems)
	}
	// Grow the arrays as elements are actually read instead of trusting
	// the count fields with one huge make: every element costs input
	// bytes, so a lying header fails at the first short read having
	// allocated at most ~2x the bytes the attacker really sent.
	const chunkElems = 1 << 16
	s.recs = make([]record, 0, minInt(nRecs, chunkElems))
	for i := 0; i < nRecs; i++ {
		if err := readFull(buf[:diskRecordBytes], "record"); err != nil {
			return nil, err
		}
		s.recs = append(s.recs, record{})
		rec := &s.recs[i]
		rec.id = trace.ID(le.Uint64(buf[:]))
		rec.hash = trace.HashedID(le.Uint16(buf[8:]))
		rec.startPC = le.Uint32(buf[10:])
		rec.nextPC = le.Uint32(buf[14:])
		rec.brOff = le.Uint32(buf[18:])
		rec.memOff = le.Uint32(buf[22:])
		rec.length = le.Uint16(buf[26:])
		rec.calls = le.Uint16(buf[28:])
		rec.numCtrl = le.Uint16(buf[30:])
		rec.numMem = le.Uint16(buf[32:])
		rec.numBr = buf[34]
		rec.flags = buf[35]
		if int(rec.brOff)+int(rec.numCtrl) > nBranches || int(rec.memOff)+int(rec.numMem) > nMems {
			return nil, fmt.Errorf("%w: record %d offsets out of range", ErrCorrupt, i)
		}
	}
	s.branches = make([]trace.Branch, 0, minInt(nBranches, chunkElems))
	for i := 0; i < nBranches; i++ {
		if err := readFull(buf[:diskBranchBytes], "branch"); err != nil {
			return nil, err
		}
		s.branches = append(s.branches, trace.Branch{
			PC:     le.Uint32(buf[:]),
			Target: le.Uint32(buf[4:]),
			Ctrl:   isa.CtrlClass(buf[8]),
			Taken:  buf[9]&1 != 0,
		})
	}
	s.mems = make([]trace.MemRef, 0, minInt(nMems, chunkElems))
	for i := 0; i < nMems; i++ {
		if err := readFull(buf[:diskMemBytes], "mem"); err != nil {
			return nil, err
		}
		s.mems = append(s.mems, trace.MemRef{Addr: le.Uint32(buf[:]), Store: buf[4]&1 != 0})
	}
	sum := crc.Sum32() // the trailer itself is not part of the checksum
	if _, err := io.ReadFull(br, buf[:4]); err != nil {
		return nil, fmt.Errorf("%w: short checksum", ErrCorrupt)
	}
	if got := le.Uint32(buf[:]); got != sum {
		return nil, fmt.Errorf("%w: checksum mismatch (file %08x, computed %08x)", ErrCorrupt, got, sum)
	}
	return s, nil
}

// Save writes the stream into dir (created if missing) under its key's
// Filename, atomically: the file appears only once fully written, so a
// concurrent Load never sees a partial stream.
func (s *Stream) Save(dir string) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	path := filepath.Join(dir, s.key.Filename())
	tmp, err := os.CreateTemp(dir, ".ntps-*")
	if err != nil {
		return "", err
	}
	defer os.Remove(tmp.Name())
	if err := s.Encode(tmp); err != nil {
		tmp.Close()
		return "", err
	}
	if err := tmp.Close(); err != nil {
		return "", err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return "", err
	}
	return path, nil
}

// Load reads one stream file.
func Load(path string) (*Stream, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	s, err := Decode(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return s, nil
}

// LoadKey loads the stream for key from dir, verifying the file's
// header matches the requested key (a renamed or stale file must not
// silently stand in for a different capture). A missing file reports
// os.ErrNotExist.
func LoadKey(dir string, key Key) (*Stream, error) {
	s, err := Load(filepath.Join(dir, key.Filename()))
	if err != nil {
		return nil, err
	}
	if s.key != key {
		return nil, fmt.Errorf("%w: %s holds key %v, want %v", ErrCorrupt, key.Filename(), s.key, key)
	}
	return s, nil
}
