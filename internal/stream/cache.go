package stream

import (
	"context"
	"errors"
	"os"
	"sync"

	"pathtrace/internal/trace"
	"pathtrace/internal/workload"
)

// Cache is a keyed, concurrency-safe store of captured streams. The
// first request for a key runs the capture (under the requester's
// context); concurrent requests for the same key block until that
// capture finishes and then share the stored stream, so a parallel
// sweep never simulates the same (workload, limit, selection) twice.
//
// Failed captures are not stored: a capture aborted by one cell's
// deadline must not poison every later cell, so each blocked waiter
// retries the capture under its own context. Waiters always respect
// their own context while blocked, which keeps harness deadlines
// meaningful even when the capturing goroutine has been abandoned.
type Cache struct {
	mu      sync.Mutex
	entries map[Key]*entry
	stats   CacheStats
	dir     string
	used    bool // set by the first Get; freezes dir
}

type entry struct {
	done chan struct{} // closed when the capture finishes
	s    *Stream
	err  error
}

// CacheStats describes a cache's activity and footprint.
type CacheStats struct {
	Captures uint64 // streams simulated and stored
	Hits     uint64 // requests served from a stored stream
	Failures uint64 // captures that returned an error (not stored)
	Loads    uint64 // streams loaded from the stream directory
	BadLoads uint64 // stream-directory loads rejected (corrupt, key mismatch)
	Saves    uint64 // captured streams saved to the stream directory
	Streams  int    // streams currently stored
	Bytes    int64  // approximate footprint of stored streams
}

// NewCache returns an empty stream cache.
func NewCache() *Cache {
	return &Cache{entries: map[Key]*entry{}}
}

// ErrDirInUse reports a SetDir call after the cache has served its
// first Get.
var ErrDirInUse = errors.New("stream: SetDir after first Get")

// SetDir gives the cache a stream directory: a miss first tries to load
// the key's stream file from dir, and a fresh capture is saved back, so
// later processes skip simulation entirely. A load that fails for any
// reason other than a missing file (corruption, key mismatch) falls
// back to capturing — the directory is a cache of recomputable data,
// never a source of errors. Empty disables disk access.
//
// Contract: SetDir must be called before the cache's first Get and
// returns ErrDirInUse afterwards. Streams already resident would never
// be re-loaded from (or saved to) a late-arriving directory, so a
// mid-flight change would silently apply to an arbitrary subset of
// keys; configure the directory up front instead. Reset does not lift
// the restriction (counters and in-flight captures still span it).
func (c *Cache) SetDir(dir string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.used {
		return ErrDirInUse
	}
	c.dir = dir
	return nil
}

// acquire produces the stream for key, from the stream directory when
// one is configured and holds the key, otherwise by capturing (and then
// saving, best-effort). Runs outside the cache lock. badLoad reports a
// stream file that existed but could not be used (corruption, key
// mismatch) — the fallback capture both hides and, via the save,
// repairs it, but the event itself must stay countable: a recurring
// BadLoads stream is an operator's only signal that a stream directory
// is being re-simulated instead of read.
func (c *Cache) acquire(ctx context.Context, w *workload.Workload, key Key) (s *Stream, fromDisk, saved, badLoad bool, err error) {
	c.mu.Lock()
	dir := c.dir
	c.mu.Unlock()
	if dir != "" {
		s, lerr := LoadKey(dir, key)
		if lerr == nil {
			return s, true, false, false, nil
		}
		badLoad = !errors.Is(lerr, os.ErrNotExist)
	}
	s, err = Capture(ctx, w, key.Limit, key.Sel)
	if err == nil && dir != "" {
		// Save overwrites atomically, so a bad stream file is repaired in
		// place and the next process loads it cleanly.
		if _, serr := s.Save(dir); serr == nil {
			saved = true
		}
	}
	return s, false, saved, badLoad, err
}

// Get returns the stream for (w, limit, sel), capturing it on first
// request. ctx bounds both a capture this call performs and any wait
// for another goroutine's in-flight capture; nil disables both checks.
func (c *Cache) Get(ctx context.Context, w *workload.Workload, limit uint64, sel trace.Config) (*Stream, error) {
	key := Key{Workload: w.Name, Params: w.Params, Limit: limit, Sel: sel}
	for {
		c.mu.Lock()
		c.used = true
		e, ok := c.entries[key]
		if !ok {
			e = &entry{done: make(chan struct{})}
			c.entries[key] = e
			c.mu.Unlock()
			var fromDisk, saved, badLoad bool
			e.s, fromDisk, saved, badLoad, e.err = c.acquire(ctx, w, key)
			c.mu.Lock()
			if badLoad {
				c.stats.BadLoads++
			}
			// Guard against a concurrent Reset having replaced the map:
			// only account for (or remove) the entry if it is still ours.
			if c.entries[key] == e {
				if e.err != nil {
					delete(c.entries, key)
					c.stats.Failures++
				} else {
					if fromDisk {
						c.stats.Loads++
					} else {
						c.stats.Captures++
					}
					if saved {
						c.stats.Saves++
					}
					c.stats.Streams++
					c.stats.Bytes += e.s.SizeBytes()
				}
			}
			c.mu.Unlock()
			close(e.done)
			return e.s, e.err
		}
		c.mu.Unlock()

		var cancel <-chan struct{}
		if ctx != nil {
			cancel = ctx.Done()
		}
		select {
		case <-e.done:
			if e.err != nil {
				// The capture failed (and removed its entry); retry under
				// our own context — the failure may have been the other
				// cell's deadline, not anything deterministic.
				continue
			}
			c.mu.Lock()
			c.stats.Hits++
			c.mu.Unlock()
			return e.s, nil
		case <-cancel:
			return nil, ctx.Err()
		}
	}
}

// Stats returns a snapshot of the cache's counters.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// Reset drops every stored stream (in-flight captures finish but are
// not stored). Counters other than Streams/Bytes are preserved.
func (c *Cache) Reset() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.entries = map[Key]*entry{}
	c.stats.Streams = 0
	c.stats.Bytes = 0
}
