package stream

import (
	"bytes"
	"context"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"pathtrace/internal/trace"
	"pathtrace/internal/workload"
)

const diskTestLimit = 50_000

func captureForTest(t *testing.T, name string) *Stream {
	t.Helper()
	w, ok := workload.ByName(name)
	if !ok {
		t.Fatalf("unknown workload %q", name)
	}
	s, err := Capture(nil, w, diskTestLimit, trace.DefaultConfig())
	if err != nil {
		t.Fatalf("Capture(%s): %v", name, err)
	}
	return s
}

func TestDiskRoundTrip(t *testing.T) {
	for _, w := range workload.All() {
		s := captureForTest(t, w.Name)
		var buf bytes.Buffer
		if err := s.Encode(&buf); err != nil {
			t.Fatalf("%s: Encode: %v", w.Name, err)
		}
		got, err := Decode(&buf)
		if err != nil {
			t.Fatalf("%s: Decode: %v", w.Name, err)
		}
		if !reflect.DeepEqual(got, s) {
			t.Errorf("%s: decoded stream differs from captured", w.Name)
		}
	}
}

func TestDiskSaveLoadKey(t *testing.T) {
	dir := t.TempDir()
	s := captureForTest(t, "compress")
	path, err := s.Save(dir)
	if err != nil {
		t.Fatalf("Save: %v", err)
	}
	if filepath.Base(path) != s.Key().Filename() {
		t.Errorf("saved as %s, want %s", filepath.Base(path), s.Key().Filename())
	}
	got, err := LoadKey(dir, s.Key())
	if err != nil {
		t.Fatalf("LoadKey: %v", err)
	}
	if !reflect.DeepEqual(got, s) {
		t.Error("loaded stream differs from saved")
	}

	// A different key must not resolve to this file.
	if _, err := LoadKey(dir, Key{Workload: "compress", Limit: diskTestLimit + 1, Sel: trace.DefaultConfig()}); !errors.Is(err, os.ErrNotExist) {
		t.Errorf("LoadKey(wrong limit) = %v, want ErrNotExist", err)
	}

	// A file renamed over another key's name is rejected by the header
	// check, not silently accepted.
	other := Key{Workload: "compress", Limit: diskTestLimit * 2, Sel: trace.DefaultConfig()}
	if err := os.Rename(path, filepath.Join(dir, other.Filename())); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadKey(dir, other); !errors.Is(err, ErrCorrupt) {
		t.Errorf("LoadKey(renamed file) = %v, want ErrCorrupt", err)
	}
}

func TestDiskCorruptionRejected(t *testing.T) {
	s := captureForTest(t, "compress")
	var buf bytes.Buffer
	if err := s.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	flip := func(b []byte, i int) []byte {
		out := append([]byte(nil), b...)
		out[i] ^= 0x40
		return out
	}
	cases := map[string][]byte{
		"bad magic":      flip(good, 0),
		"flipped header": flip(good, 12),
		"flipped body":   flip(good, len(good)/2),
		"flipped crc":    flip(good, len(good)-1),
		"truncated":      good[:len(good)-5],
		"empty":          nil,
	}
	for name, data := range cases {
		if _, err := Decode(bytes.NewReader(data)); !errors.Is(err, ErrCorrupt) {
			t.Errorf("%s: Decode = %v, want ErrCorrupt", name, err)
		}
	}
}

func TestCacheStreamDir(t *testing.T) {
	dir := t.TempDir()
	w, _ := workload.ByName("compress")
	sel := trace.DefaultConfig()

	c1 := NewCache()
	if err := c1.SetDir(dir); err != nil {
		t.Fatalf("SetDir: %v", err)
	}
	s1, err := c1.Get(nil, w, diskTestLimit, sel)
	if err != nil {
		t.Fatalf("first Get: %v", err)
	}
	if st := c1.Stats(); st.Captures != 1 || st.Loads != 0 || st.Saves != 1 {
		t.Errorf("first cache stats = %+v, want 1 capture, 0 loads, 1 save", st)
	}

	// A second cache (a later process) loads the file instead of
	// simulating, and the stream is identical.
	c2 := NewCache()
	if err := c2.SetDir(dir); err != nil {
		t.Fatalf("SetDir: %v", err)
	}
	s2, err := c2.Get(nil, w, diskTestLimit, sel)
	if err != nil {
		t.Fatalf("second Get: %v", err)
	}
	if st := c2.Stats(); st.Captures != 0 || st.Loads != 1 || st.Saves != 0 {
		t.Errorf("second cache stats = %+v, want 0 captures, 1 load, 0 saves", st)
	}
	if !reflect.DeepEqual(s1, s2) {
		t.Error("loaded stream differs from captured")
	}

	// A corrupt file falls back to capture and is rewritten.
	path := filepath.Join(dir, Key{Workload: w.Name, Limit: diskTestLimit, Sel: sel}.Filename())
	if err := os.WriteFile(path, []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	c3 := NewCache()
	if err := c3.SetDir(dir); err != nil {
		t.Fatalf("SetDir: %v", err)
	}
	s3, err := c3.Get(nil, w, diskTestLimit, sel)
	if err != nil {
		t.Fatalf("Get over corrupt file: %v", err)
	}
	if st := c3.Stats(); st.Captures != 1 || st.Loads != 0 || st.Saves != 1 || st.BadLoads != 1 {
		t.Errorf("corrupt-fallback stats = %+v, want 1 capture, 0 loads, 1 save, 1 bad load", st)
	}
	if !reflect.DeepEqual(s1, s3) {
		t.Error("re-captured stream differs")
	}

	// The fallback save repaired the file: a fresh cache loads it.
	c4 := NewCache()
	if err := c4.SetDir(dir); err != nil {
		t.Fatalf("SetDir: %v", err)
	}
	if _, err := c4.Get(nil, w, diskTestLimit, sel); err != nil {
		t.Fatalf("Get after repair: %v", err)
	}
	if st := c4.Stats(); st.Loads != 1 || st.BadLoads != 0 || st.Captures != 0 {
		t.Errorf("post-repair stats = %+v, want a clean load", st)
	}
}

// TestCacheCorruptLoadNotPermanent pins the failure-retry contract in
// the presence of a bad stream file: when the fallback capture also
// fails (here: an already-expired context), the error must surface to
// the caller, be counted, and NOT be cached — a later Get under a live
// context must recover by re-capturing and repairing the file.
func TestCacheCorruptLoadNotPermanent(t *testing.T) {
	dir := t.TempDir()
	w, _ := workload.ByName("compress")
	sel := trace.DefaultConfig()

	// Seed a corrupt stream file under the key's name.
	path := filepath.Join(dir, Key{Workload: w.Name, Limit: diskTestLimit, Sel: sel}.Filename())
	if err := os.WriteFile(path, []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}

	c := NewCache()
	if err := c.SetDir(dir); err != nil {
		t.Fatalf("SetDir: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // the load fails on corruption, then the capture on ctx
	if _, err := c.Get(ctx, w, diskTestLimit, sel); !errors.Is(err, context.Canceled) {
		t.Fatalf("Get(corrupt file, dead ctx) = %v, want context.Canceled", err)
	}
	if st := c.Stats(); st.Failures != 1 || st.BadLoads != 1 || st.Streams != 0 {
		t.Errorf("failed-get stats = %+v, want 1 failure, 1 bad load, 0 streams", st)
	}

	// The failure was not negatively cached: the same cache, asked again
	// under a live context, re-reads disk, falls back, and repairs.
	s, err := c.Get(nil, w, diskTestLimit, sel)
	if err != nil {
		t.Fatalf("retry Get: %v", err)
	}
	st := c.Stats()
	if st.Captures != 1 || st.BadLoads != 2 || st.Saves != 1 || st.Streams != 1 {
		t.Errorf("retry stats = %+v, want 1 capture, 2 bad loads, 1 save, 1 stream", st)
	}

	// And the save genuinely repaired the file on disk.
	got, err := LoadKey(dir, s.Key())
	if err != nil {
		t.Fatalf("LoadKey after repair: %v", err)
	}
	if !reflect.DeepEqual(got, s) {
		t.Error("repaired file differs from captured stream")
	}
}
