package stream

import (
	"bytes"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"

	"pathtrace/internal/trace"
	"pathtrace/internal/workload"
)

// Two same-name/different-seed synthetic workloads must never share a
// cache entry or a .ntps file: the generator parameterization is part
// of the stream key, the file name, and the on-disk header.
func TestParamsKeyedStreamsNeverCollide(t *testing.T) {
	a := workload.NewWild("twin", workload.WildParams{Seed: 1, Iters: 50_000})
	b := workload.NewWild("twin", workload.WildParams{Seed: 2, Iters: 50_000})
	sel := trace.DefaultConfig()
	const limit = 20_000

	ka := Key{Workload: a.Name, Params: a.Params, Limit: limit, Sel: sel}
	kb := Key{Workload: b.Name, Params: b.Params, Limit: limit, Sel: sel}
	if ka == kb {
		t.Fatal("different-seed instances produced equal keys")
	}
	if ka.Filename() == kb.Filename() {
		t.Fatalf("different-seed instances share file name %s", ka.Filename())
	}

	// The cache must treat them as distinct entries with distinct
	// captured content.
	c := NewCache()
	sa, err := c.Get(nil, a, limit, sel)
	if err != nil {
		t.Fatal(err)
	}
	sb, err := c.Get(nil, b, limit, sel)
	if err != nil {
		t.Fatal(err)
	}
	if st := c.Stats(); st.Captures != 2 || st.Hits != 0 {
		t.Fatalf("cache collapsed distinct params: %+v", st)
	}
	var ba, bb bytes.Buffer
	if err := sa.Encode(&ba); err != nil {
		t.Fatal(err)
	}
	if err := sb.Encode(&bb); err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(ba.Bytes(), bb.Bytes()) {
		t.Fatal("different-seed instances captured identical streams")
	}

	// Same instance again: a hit, not a recapture.
	if _, err := c.Get(nil, a, limit, sel); err != nil {
		t.Fatal(err)
	}
	if st := c.Stats(); st.Hits != 1 {
		t.Fatalf("same-params re-get missed the cache: %+v", st)
	}

	// On disk, both live side by side and LoadKey returns the right
	// one; asking with the wrong params must not silently hand back
	// the other instance's stream.
	dir := t.TempDir()
	if _, err := sa.Save(dir); err != nil {
		t.Fatal(err)
	}
	if _, err := sb.Save(dir); err != nil {
		t.Fatal(err)
	}
	ga, err := LoadKey(dir, ka)
	if err != nil {
		t.Fatal(err)
	}
	if ga.Key() != ka {
		t.Fatalf("LoadKey(%v) returned key %v", ka, ga.Key())
	}
	// Rename b's file over a's name: the header check must reject it.
	if err := os.Rename(filepath.Join(dir, kb.Filename()), filepath.Join(dir, ka.Filename())); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadKey(dir, ka); err == nil {
		t.Fatal("LoadKey accepted a stream captured under different params")
	}
}

// Streams captured by a same-seed re-generation are bit-identical, so
// params-keyed capture is still deterministic (cache warm starts stay
// valid across processes).
func TestParamsKeyedCaptureDeterministic(t *testing.T) {
	sel := trace.DefaultConfig()
	var bufs [2]bytes.Buffer
	for i := range bufs {
		w := workload.NewStorm("det", workload.StormParams{Seed: 9, Iters: 50_000})
		s, err := Capture(nil, w, 20_000, sel)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Encode(&bufs[i]); err != nil {
			t.Fatal(err)
		}
	}
	if !bytes.Equal(bufs[0].Bytes(), bufs[1].Bytes()) {
		t.Fatal("same-seed captures are not bit-identical")
	}
}

// A v1 stream file (no params field) still decodes, with empty params.
func TestDecodeV1Compat(t *testing.T) {
	w, ok := workload.ByName("compress")
	if !ok {
		t.Fatal("no compress")
	}
	s, err := Capture(nil, w, 20_000, trace.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	var v2 bytes.Buffer
	if err := s.Encode(&v2); err != nil {
		t.Fatal(err)
	}
	// Rewrite the v2 bytes as v1: swap the magic and splice out the
	// (empty) params length field. The CRC covers everything after the
	// magic, so it needs recomputing — do that by hand-building the v1
	// byte stream.
	v1 := buildV1(t, v2.Bytes())
	got, err := Decode(bytes.NewReader(v1))
	if err != nil {
		t.Fatalf("v1 decode: %v", err)
	}
	if got.Key() != s.Key() || got.Len() != s.Len() {
		t.Fatalf("v1 decode key %v len %d, want %v len %d", got.Key(), got.Len(), s.Key(), s.Len())
	}
}

// buildV1 converts an encoded v2 stream with empty params into its v1
// encoding: v1 magic, no params length field, recomputed CRC.
func buildV1(t *testing.T, v2 []byte) []byte {
	t.Helper()
	if string(v2[:8]) != diskMagic {
		t.Fatalf("not a v2 stream: %q", v2[:8])
	}
	nameLen := int(uint16(v2[8]) | uint16(v2[9])<<8)
	// Layout after magic: nameLen(2) name(nameLen) paramsLen(2) ...
	pOff := 8 + 2 + nameLen
	if int(uint16(v2[pOff])|uint16(v2[pOff+1])<<8) != 0 {
		t.Fatal("buildV1 requires empty params")
	}
	body := append([]byte{}, v2[8:pOff]...)
	body = append(body, v2[pOff+2:len(v2)-4]...) // drop params field and old CRC
	out := append([]byte(diskMagicV1), body...)
	sum := crc32.ChecksumIEEE(body)
	return append(out, byte(sum), byte(sum>>8), byte(sum>>16), byte(sum>>24))
}
