// Package stream captures a workload's selected-trace sequence once
// and replays it to any number of consumers, so an experiment sweep
// pays the simulation cost of each (workload, limit, selection) triple
// exactly once instead of once per (experiment, workload) cell.
//
// This is the trace-then-sweep methodology of predictor studies (and of
// the source paper's own evaluation, which feeds one dynamic stream per
// benchmark through many predictor configurations): the functional
// simulator produces the stream, the stream is recorded, and every
// predictor configuration replays the recording. A Stream is immutable
// once captured, so concurrent replays are safe; each Replay call
// materialises traces into its own scratch struct and performs no
// allocations, which also makes the replay→predict loop allocation-free
// at steady state.
//
// Fault injection (internal/faults) targets predictor tables, history
// registers and trace-cache lines — all downstream of trace selection —
// so a cached stream is bit-identical input whether or not faults are
// being injected, and injected runs replay from the same recording as
// clean ones.
package stream

import (
	"context"
	"fmt"
	"runtime"
	"sync"

	"pathtrace/internal/sim"
	"pathtrace/internal/trace"
	"pathtrace/internal/workload"
)

// Key identifies one captured stream: everything that determines the
// selected-trace sequence. Faults, experiment identity and predictor
// configuration deliberately do not participate — they are all
// downstream of trace selection.
type Key struct {
	Workload string
	// Params is the workload's generator parameterization
	// (workload.Workload.Params; "" for the fixed benchmarks). It is
	// part of the key so two same-name workloads built with different
	// parameters or seeds — routine for the synthetic zoo — can never
	// share a cached or on-disk stream.
	Params string
	Limit  uint64
	Sel    trace.Config
}

func (k Key) String() string {
	name := k.Workload
	if k.Params != "" {
		name = fmt.Sprintf("%s@%08x", k.Workload, paramsHash(k.Params))
	}
	return fmt.Sprintf("%s/%d/%d-%d", name, k.Limit, k.Sel.MaxLen, k.Sel.MaxBranches)
}

// record is one selected trace, encoded compactly: fixed-width metadata
// here, variable-length branch and memory-reference lists in the
// stream's shared flat arrays (located by offset + count). 40 bytes per
// trace, versus ~200+ for a materialised trace.Trace with its own
// slices.
type record struct {
	id      trace.ID
	startPC uint32
	nextPC  uint32
	brOff   uint32 // offset into Stream.branches
	memOff  uint32 // offset into Stream.mems
	length  uint16 // instructions in the trace
	calls   uint16
	numCtrl uint16 // entries in branches (all control-flow instructions)
	numMem  uint16 // entries in mems
	hash    trace.HashedID
	numBr   uint8 // embedded conditional branches
	flags   uint8
}

const (
	flagEndsInRet = 1 << iota
	flagEndsHalt
)

// Approximate per-element footprints for Stats bookkeeping (struct
// sizes rounded up for alignment).
const (
	recordBytes = 40
	branchBytes = 16
	memBytes    = 8
)

// Stream is one captured trace sequence. Immutable after Capture
// returns; safe for concurrent Replay.
type Stream struct {
	key      Key
	instrs   uint64
	recs     []record
	branches []trace.Branch
	mems     []trace.MemRef
}

// maxEncodableLen bounds trace length so it fits the record's uint16
// count fields.
const maxEncodableLen = 1<<16 - 1

// Capture simulates the workload for up to limit instructions (0 = to
// completion) under the given trace-selection configuration and records
// every selected trace. ctx, when non-nil, bounds the simulation via
// the instruction-step watchdog (sim.RunContext); an aborted capture
// returns the watchdog's error and records nothing reusable.
func Capture(ctx context.Context, w *workload.Workload, limit uint64, sel trace.Config) (*Stream, error) {
	if sel.MaxLen > maxEncodableLen {
		return nil, fmt.Errorf("stream: MaxLen %d exceeds encodable %d", sel.MaxLen, maxEncodableLen)
	}
	prog, err := w.ProgramErr()
	if err != nil {
		return nil, err
	}
	cpu, err := sim.New(prog)
	if err != nil {
		return nil, err
	}
	s := &Stream{key: Key{Workload: w.Name, Params: w.Params, Limit: limit, Sel: sel}}
	selector, err := trace.NewSelector(sel, s.appendTrace)
	if err != nil {
		return nil, err
	}
	if err := cpu.RunContext(ctx, limit, selector.Feed); err != nil {
		return nil, err
	}
	selector.Flush()
	s.instrs = selector.Instrs()
	return s, nil
}

func (s *Stream) appendTrace(tr *trace.Trace) {
	r := record{
		id:      tr.ID,
		hash:    tr.Hash,
		startPC: tr.StartPC,
		nextPC:  tr.NextPC,
		brOff:   uint32(len(s.branches)),
		memOff:  uint32(len(s.mems)),
		length:  uint16(tr.Len),
		calls:   uint16(tr.Calls),
		numCtrl: uint16(len(tr.Branches)),
		numMem:  uint16(len(tr.Mems)),
		numBr:   uint8(tr.NumBr),
	}
	if tr.EndsInRet {
		r.flags |= flagEndsInRet
	}
	if tr.EndsHalt {
		r.flags |= flagEndsHalt
	}
	s.recs = append(s.recs, r)
	s.branches = append(s.branches, tr.Branches...)
	s.mems = append(s.mems, tr.Mems...)
}

// Key returns the identity the stream was captured under.
func (s *Stream) Key() Key { return s.key }

// Len returns the number of traces in the stream.
func (s *Stream) Len() int { return len(s.recs) }

// Instrs returns the number of instructions the capture consumed.
func (s *Stream) Instrs() uint64 { return s.instrs }

// SizeBytes returns the stream's approximate memory footprint.
func (s *Stream) SizeBytes() int64 {
	return int64(len(s.recs))*recordBytes +
		int64(len(s.branches))*branchBytes +
		int64(len(s.mems))*memBytes
}

// At materialises trace i into dst, reusing no memory beyond dst
// itself: the Branches and Mems slices alias the stream's shared flat
// arrays (capacity-clamped), exactly the reuse contract of the live
// trace.Selector — consumers must copy anything they retain and must
// not mutate the slices.
func (s *Stream) At(i int, dst *trace.Trace) {
	r := &s.recs[i]
	brEnd := r.brOff + uint32(r.numCtrl)
	memEnd := r.memOff + uint32(r.numMem)
	*dst = trace.Trace{
		ID:        r.id,
		Hash:      r.hash,
		StartPC:   r.startPC,
		NextPC:    r.nextPC,
		Len:       int(r.length),
		NumBr:     int(r.numBr),
		Calls:     int(r.calls),
		EndsInRet: r.flags&flagEndsInRet != 0,
		EndsHalt:  r.flags&flagEndsHalt != 0,
		Branches:  s.branches[r.brOff:brEnd:brEnd],
		Mems:      s.mems[r.memOff:memEnd:memEnd],
	}
}

// replayStride is how many traces are replayed between context checks —
// the replay analogue of the simulator's instruction-step watchdog.
const replayStride = 8192

// scratchPool recycles replay scratch traces. The scratch escapes (it
// is passed to dynamic consumer closures), so a plain local would cost
// one heap allocation per Replay call; pooling makes a warm replay
// allocate nothing at all.
var scratchPool = sync.Pool{New: func() any { return new(trace.Trace) }}

// Replay feeds every trace to each consumer in turn, in capture order,
// and returns the stream's instruction and trace counts — the same
// totals a live simulation's selector would report. A single scratch
// trace is reused across the whole replay, so the loop allocates
// nothing. ctx, when non-nil, is observed every replayStride traces.
func (s *Stream) Replay(ctx context.Context, consumers ...func(*trace.Trace)) (instrs, traces uint64, err error) {
	tr := scratchPool.Get().(*trace.Trace)
	defer scratchPool.Put(tr)
	check := replayStride
	for i := range s.recs {
		if ctx != nil {
			if check--; check <= 0 {
				check = replayStride
				if err := ctx.Err(); err != nil {
					return 0, 0, fmt.Errorf("stream: replay aborted at %d traces: %w", i, err)
				}
			}
		}
		s.At(i, tr)
		for _, fn := range consumers {
			fn(tr)
		}
	}
	return s.instrs, uint64(len(s.recs)), nil
}

// ReplayBatch feeds the stream to fn in contiguous batches of up to
// batch traces (the final batch may be short), in capture order, and
// returns the same totals as Replay. The batch buffer is allocated once
// and reused across fn calls, and its traces alias the stream's shared
// arrays — fn must copy anything it retains and must not mutate the
// slice. ctx, when non-nil, is observed between batches. An error from
// fn aborts the replay and is returned verbatim.
func (s *Stream) ReplayBatch(ctx context.Context, batch int, fn func([]trace.Trace) error) (instrs, traces uint64, err error) {
	if batch < 1 {
		return 0, 0, fmt.Errorf("stream: ReplayBatch size %d < 1", batch)
	}
	buf := make([]trace.Trace, batch)
	for off := 0; off < len(s.recs); off += batch {
		if ctx != nil {
			if err := ctx.Err(); err != nil {
				return 0, 0, fmt.Errorf("stream: batch replay aborted at %d traces: %w", off, err)
			}
		}
		n := len(s.recs) - off
		if n > batch {
			n = batch
		}
		for k := 0; k < n; k++ {
			s.At(off+k, &buf[k])
		}
		if err := fn(buf[:n]); err != nil {
			return 0, 0, err
		}
	}
	return s.instrs, uint64(len(s.recs)), nil
}

// ReplayParallel feeds the full stream to every consumer, each on its
// own goroutine with its own scratch trace — the payoff a recorded
// stream has over a live simulator, which can only fan out one
// instruction stream sequentially. Each consumer still sees every trace
// in capture order, so per-consumer results are bit-identical to a
// sequential Replay; consumers must therefore not share mutable state
// with each other.
//
// A consumer panic is recovered and returned as an error (a goroutine
// panic would otherwise escape the caller's recovery entirely), naming
// the consumer's position in the argument list.
func (s *Stream) ReplayParallel(ctx context.Context, consumers ...func(*trace.Trace)) (instrs, traces uint64, err error) {
	if len(consumers) <= 1 || runtime.GOMAXPROCS(0) == 1 {
		// One processor: goroutines only add scheduling plus k-fold
		// trace materialisation; a single shared pass is strictly
		// faster.
		return s.Replay(ctx, consumers...)
	}
	errs := make([]error, len(consumers))
	var wg sync.WaitGroup
	for i, fn := range consumers {
		wg.Add(1)
		go func(i int, fn func(*trace.Trace)) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					errs[i] = fmt.Errorf("stream: consumer %d panicked: %v", i, r)
				}
			}()
			_, _, errs[i] = s.Replay(ctx, fn)
		}(i, fn)
	}
	wg.Wait()
	for _, e := range errs {
		if e != nil {
			return 0, 0, e
		}
	}
	return s.instrs, uint64(len(s.recs)), nil
}
