package stream

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"pathtrace/internal/faults"
	"pathtrace/internal/predictor"
	"pathtrace/internal/sim"
	"pathtrace/internal/trace"
	"pathtrace/internal/workload"
)

const testLimit = 200_000

// simulateFresh runs the workload directly (no capture) and feeds each
// selected trace to fn — the pre-stream code path, used as the ground
// truth for equivalence tests.
func simulateFresh(t *testing.T, w *workload.Workload, limit uint64, sel trace.Config, fn func(*trace.Trace)) (instrs, traces uint64) {
	t.Helper()
	prog, err := w.ProgramErr()
	if err != nil {
		t.Fatalf("%s: program: %v", w.Name, err)
	}
	cpu, err := sim.New(prog)
	if err != nil {
		t.Fatalf("%s: sim: %v", w.Name, err)
	}
	selector, err := trace.NewSelector(sel, fn)
	if err != nil {
		t.Fatalf("%s: selector: %v", w.Name, err)
	}
	if err := cpu.RunContext(nil, limit, selector.Feed); err != nil {
		t.Fatalf("%s: run: %v", w.Name, err)
	}
	selector.Flush()
	return selector.Instrs(), selector.Traces()
}

// copyTrace deep-copies a selector-owned trace for retention.
func copyTrace(tr *trace.Trace) trace.Trace {
	cp := *tr
	cp.Branches = append([]trace.Branch(nil), tr.Branches...)
	cp.Mems = append([]trace.MemRef(nil), tr.Mems...)
	return cp
}

func tracesEqual(a, b *trace.Trace) bool {
	if a.ID != b.ID || a.Hash != b.Hash || a.StartPC != b.StartPC ||
		a.NextPC != b.NextPC || a.Len != b.Len || a.NumBr != b.NumBr ||
		a.Calls != b.Calls || a.EndsInRet != b.EndsInRet || a.EndsHalt != b.EndsHalt ||
		len(a.Branches) != len(b.Branches) || len(a.Mems) != len(b.Mems) {
		return false
	}
	for i := range a.Branches {
		if a.Branches[i] != b.Branches[i] {
			return false
		}
	}
	for i := range a.Mems {
		if a.Mems[i] != b.Mems[i] {
			return false
		}
	}
	return true
}

// TestReplayMatchesFreshSimulation checks, for every workload, that the
// replayed stream is field-for-field identical to a fresh simulation:
// same trace sequence (including Branches and Mems), same instruction
// and trace totals.
func TestReplayMatchesFreshSimulation(t *testing.T) {
	sel := trace.DefaultConfig()
	for _, w := range workload.All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			var fresh []trace.Trace
			fi, ft := simulateFresh(t, w, testLimit, sel, func(tr *trace.Trace) {
				fresh = append(fresh, copyTrace(tr))
			})

			s, err := Capture(nil, w, testLimit, sel)
			if err != nil {
				t.Fatalf("capture: %v", err)
			}
			i := 0
			ri, rt, err := s.Replay(nil, func(tr *trace.Trace) {
				if i < len(fresh) && !tracesEqual(tr, &fresh[i]) {
					t.Fatalf("trace %d differs: replay %+v fresh %+v", i, *tr, fresh[i])
				}
				i++
			})
			if err != nil {
				t.Fatalf("replay: %v", err)
			}
			if i != len(fresh) {
				t.Fatalf("replayed %d traces, fresh simulation selected %d", i, len(fresh))
			}
			if ri != fi || rt != ft {
				t.Errorf("totals differ: replay (%d, %d) fresh (%d, %d)", ri, rt, fi, ft)
			}
		})
	}
}

// TestReplayPredictorAccuracyIdentical asserts bit-identical predictor
// statistics between a predictor driven by replay and one driven by a
// fresh simulation — clean and under fault injection with a fixed seed
// (faults are downstream of trace selection, so a cached stream must
// give injected runs the same inputs as a live simulation would).
func TestReplayPredictorAccuracyIdentical(t *testing.T) {
	sel := trace.DefaultConfig()
	cfgs := map[string]func() predictor.Config{
		"clean": func() predictor.Config {
			return predictor.Config{Depth: 7, IndexBits: 14, Hybrid: true, UseRHS: true}
		},
		"inject": func() predictor.Config {
			return predictor.Config{
				Depth: 7, IndexBits: 14, Hybrid: true, UseRHS: true,
				Faults: faults.New(faults.Config{Table: 1e-3, History: 1e-4, Seed: 42}),
			}
		},
	}
	for name, mk := range cfgs {
		mk := mk
		t.Run(name, func(t *testing.T) {
			for _, w := range workload.All() {
				pFresh := predictor.MustNew(mk())
				simulateFresh(t, w, testLimit, sel, func(tr *trace.Trace) {
					pFresh.Predict()
					pFresh.Update(tr)
				})

				pReplay := predictor.MustNew(mk())
				s, err := Capture(nil, w, testLimit, sel)
				if err != nil {
					t.Fatalf("%s: capture: %v", w.Name, err)
				}
				if _, _, err := s.Replay(nil, func(tr *trace.Trace) {
					pReplay.Predict()
					pReplay.Update(tr)
				}); err != nil {
					t.Fatalf("%s: replay: %v", w.Name, err)
				}

				if pFresh.Stats() != pReplay.Stats() {
					t.Errorf("%s: stats differ: fresh %+v replay %+v",
						w.Name, pFresh.Stats(), pReplay.Stats())
				}
			}
		})
	}
}

// TestReplayAllocFree verifies the replay loop performs zero heap
// allocations once the stream is captured.
func TestReplayAllocFree(t *testing.T) {
	w, ok := workload.ByName("go")
	if !ok {
		t.Fatal("workload go missing")
	}
	s, err := Capture(nil, w, 50_000, trace.DefaultConfig())
	if err != nil {
		t.Fatalf("capture: %v", err)
	}
	var n uint64
	sink := func(tr *trace.Trace) { n += uint64(tr.Len) }
	allocs := testing.AllocsPerRun(3, func() {
		if _, _, err := s.Replay(nil, sink); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("Replay allocates %v per run, want 0", allocs)
	}
}

// TestCacheDedupConcurrent checks that concurrent Gets for one key
// share a single capture and return the same stream.
func TestCacheDedupConcurrent(t *testing.T) {
	c := NewCache()
	w, _ := workload.ByName("go")
	const goroutines = 8
	streams := make([]*Stream, goroutines)
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			s, err := c.Get(nil, w, 50_000, trace.DefaultConfig())
			if err != nil {
				t.Errorf("get: %v", err)
				return
			}
			streams[i] = s
		}()
	}
	wg.Wait()
	for i := 1; i < goroutines; i++ {
		if streams[i] != streams[0] {
			t.Fatalf("goroutine %d got a different stream", i)
		}
	}
	st := c.Stats()
	if st.Captures != 1 {
		t.Errorf("captures = %d, want 1", st.Captures)
	}
	if st.Hits != goroutines-1 {
		t.Errorf("hits = %d, want %d", st.Hits, goroutines-1)
	}
	if st.Streams != 1 || st.Bytes <= 0 {
		t.Errorf("stored streams = %d bytes = %d", st.Streams, st.Bytes)
	}
}

// TestCacheFailedCaptureNotStored checks a context-cancelled capture is
// not cached and a later request retries successfully.
func TestCacheFailedCaptureNotStored(t *testing.T) {
	c := NewCache()
	w, _ := workload.ByName("go")
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := c.Get(ctx, w, 50_000, trace.DefaultConfig()); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled get: err = %v, want context.Canceled", err)
	}
	if st := c.Stats(); st.Failures != 1 || st.Streams != 0 {
		t.Fatalf("after failure: %+v", st)
	}
	s, err := c.Get(nil, w, 50_000, trace.DefaultConfig())
	if err != nil || s == nil {
		t.Fatalf("retry: %v", err)
	}
	if st := c.Stats(); st.Captures != 1 || st.Streams != 1 {
		t.Fatalf("after retry: %+v", st)
	}
}

// TestCacheWaiterRespectsOwnContext checks a waiter blocked on another
// goroutine's slow capture gives up when its own context expires.
func TestCacheWaiterRespectsOwnContext(t *testing.T) {
	w, ok := workload.ByName("hang")
	if !ok {
		t.Skip("no hang workload")
	}
	c := NewCache()
	capturing := make(chan struct{})
	go func() {
		close(capturing)
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		c.Get(ctx, w, 1<<40, trace.DefaultConfig()) // runs until its deadline
	}()
	<-capturing
	time.Sleep(10 * time.Millisecond) // let the capturer insert its entry
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := c.Get(ctx, w, 1<<40, trace.DefaultConfig())
	if err == nil {
		t.Fatal("waiter did not fail")
	}
	if d := time.Since(start); d > time.Second {
		t.Fatalf("waiter blocked %v past its own deadline", d)
	}
}

// TestCacheKeying checks distinct limits and selection configs get
// distinct streams.
func TestCacheKeying(t *testing.T) {
	c := NewCache()
	w, _ := workload.ByName("go")
	a, err := c.Get(nil, w, 30_000, trace.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, err := c.Get(nil, w, 60_000, trace.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	sel := trace.Config{MaxLen: 32, MaxBranches: 6}
	d, err := c.Get(nil, w, 30_000, sel)
	if err != nil {
		t.Fatal(err)
	}
	if a == b || a == d {
		t.Fatal("distinct keys shared a stream")
	}
	if st := c.Stats(); st.Captures != 3 || st.Streams != 3 {
		t.Fatalf("stats: %+v", st)
	}
	c.Reset()
	if st := c.Stats(); st.Streams != 0 || st.Bytes != 0 {
		t.Fatalf("after reset: %+v", st)
	}
	a2, err := c.Get(nil, w, 30_000, trace.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if a2 == a {
		t.Fatal("reset did not drop stored stream")
	}
}
