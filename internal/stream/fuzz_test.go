package stream

import (
	"bytes"
	"errors"
	"testing"

	"pathtrace/internal/trace"
	"pathtrace/internal/workload"
)

// FuzzDecode hardens the .ntps decoder against untrusted bytes: now
// that streams cross machines (the serving loadgen ships them, CI
// commits them), Decode must never panic, hang, or over-allocate on
// hostile input — it either returns a structurally valid stream or an
// error.
//
// Seeded with a freshly encoded real capture (so the fuzzer starts
// from deep inside the valid format, not from garbage) plus a few
// structural corner cases.
//
// Run with -fuzzminimizetime 5x (as CI does): coverage-keeping
// mutations of a structured seed otherwise trigger the engine's
// default 60-second minimization per interesting input, collapsing
// throughput to single-digit execs/sec.
func FuzzDecode(f *testing.F) {
	w, ok := workload.ByName("compress")
	if !ok {
		f.Fatal("unknown workload compress")
	}
	// A small limit keeps the seed a few KB: the fuzz engine's per-exec
	// cost scales with corpus entry size, and format coverage does not
	// need many records.
	s, err := Capture(nil, w, 2_000, trace.DefaultConfig())
	if err != nil {
		f.Fatalf("Capture: %v", err)
	}
	var buf bytes.Buffer
	if err := s.Encode(&buf); err != nil {
		f.Fatalf("Encode: %v", err)
	}
	good := buf.Bytes()
	f.Add(good)
	f.Add(good[:len(good)-4])             // checksum missing
	f.Add(good[:len(good)/2])             // truncated body
	f.Add([]byte(diskMagic))              // header missing
	f.Add([]byte{})                       // empty
	f.Add(bytes.Repeat([]byte{0xff}, 64)) // wrong magic, huge counts

	f.Fuzz(func(t *testing.T, data []byte) {
		decoded, err := Decode(bytes.NewReader(data))
		if err != nil {
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("Decode error is not ErrCorrupt: %v", err)
			}
			return
		}
		// A successfully decoded stream must be internally consistent:
		// every record materialises without slicing out of range, and a
		// re-encode must decode to the same stream (the format is
		// canonical).
		var tr trace.Trace
		for i := 0; i < decoded.Len(); i++ {
			decoded.At(i, &tr)
		}
		var re bytes.Buffer
		if err := decoded.Encode(&re); err != nil {
			t.Fatalf("re-Encode of decoded stream: %v", err)
		}
		if _, err := Decode(bytes.NewReader(re.Bytes())); err != nil {
			t.Fatalf("decode of re-encode failed: %v", err)
		}
	})
}
