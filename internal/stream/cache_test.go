package stream

import (
	"errors"
	"reflect"
	"testing"

	"pathtrace/internal/trace"
	"pathtrace/internal/workload"
)

// TestSetDirAfterFirstGet pins the SetDir contract: the stream
// directory is part of the cache's identity from the first Get on, so
// a later SetDir must fail loudly instead of applying to an arbitrary
// subset of keys.
func TestSetDirAfterFirstGet(t *testing.T) {
	dir := t.TempDir()
	w, _ := workload.ByName("compress")
	c := NewCache()

	// Before any Get: allowed, repeatedly.
	if err := c.SetDir(dir); err != nil {
		t.Fatalf("SetDir before Get: %v", err)
	}
	if err := c.SetDir(""); err != nil {
		t.Fatalf("second SetDir before Get: %v", err)
	}

	if _, err := c.Get(nil, w, 10_000, trace.DefaultConfig()); err != nil {
		t.Fatalf("Get: %v", err)
	}

	// After the first Get: refused with the typed error...
	if err := c.SetDir(dir); !errors.Is(err, ErrDirInUse) {
		t.Errorf("SetDir after Get = %v, want ErrDirInUse", err)
	}
	// ...even after Reset (counters and semantics span a Reset).
	c.Reset()
	if err := c.SetDir(dir); !errors.Is(err, ErrDirInUse) {
		t.Errorf("SetDir after Reset = %v, want ErrDirInUse", err)
	}

	// The refused SetDir must not have taken effect: a second Get for
	// the same key re-captures (cache was Reset) rather than saving to
	// or loading from dir.
	if _, err := c.Get(nil, w, 10_000, trace.DefaultConfig()); err != nil {
		t.Fatalf("Get after Reset: %v", err)
	}
	if st := c.Stats(); st.Loads != 0 || st.Saves != 0 {
		t.Errorf("stats = %+v, want no disk traffic", st)
	}
}

// TestCursor covers the exported iteration helper against the Replay
// baseline: same traces, same order, independent cursors.
func TestCursor(t *testing.T) {
	w, _ := workload.ByName("compress")
	s, err := Capture(nil, w, 20_000, trace.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}

	var viaReplay []trace.ID
	if _, _, err := s.Replay(nil, func(tr *trace.Trace) {
		viaReplay = append(viaReplay, tr.ID)
	}); err != nil {
		t.Fatal(err)
	}

	cur := s.Cursor()
	if cur.Remaining() != s.Len() {
		t.Errorf("Remaining = %d, want %d", cur.Remaining(), s.Len())
	}
	var viaCursor []trace.ID
	var tr trace.Trace
	for cur.Next(&tr) {
		viaCursor = append(viaCursor, tr.ID)
	}
	if !reflect.DeepEqual(viaCursor, viaReplay) {
		t.Error("cursor order differs from replay order")
	}
	if cur.Remaining() != 0 {
		t.Errorf("Remaining after exhaustion = %d", cur.Remaining())
	}
	if cur.Next(&tr) {
		t.Error("Next after exhaustion returned true")
	}

	// Reset rewinds; two cursors do not interfere.
	cur.Reset()
	other := s.Cursor()
	var a, b trace.Trace
	for i := 0; i < 10 && cur.Next(&a); i++ {
		if !other.Next(&b) {
			t.Fatal("second cursor exhausted early")
		}
		if a.ID != b.ID {
			t.Fatalf("cursors diverge at %d: %v vs %v", i, a.ID, b.ID)
		}
	}
}
