package stream

import "pathtrace/internal/trace"

// Cursor is an exported, resumable iterator over a stream's traces, for
// consumers that pull traces in chunks rather than accepting a Replay
// callback — the serving load generator batches traces onto the wire
// this way. Each Cursor owns its position and scratch, so any number of
// cursors can walk the same stream concurrently.
type Cursor struct {
	s *Stream
	i int
}

// Cursor returns an iterator positioned at the stream's first trace.
func (s *Stream) Cursor() *Cursor { return &Cursor{s: s} }

// Next materialises the next trace into dst and advances, returning
// false when the stream is exhausted. dst's Branches and Mems alias the
// stream's shared arrays, under the same no-mutate, copy-to-retain
// contract as Stream.At.
func (c *Cursor) Next(dst *trace.Trace) bool {
	if c.i >= len(c.s.recs) {
		return false
	}
	c.s.At(c.i, dst)
	c.i++
	return true
}

// NextBatch materialises up to len(dst) consecutive traces into dst and
// advances, returning how many entries were filled (0 once the stream
// is exhausted). Filled entries carry the same aliasing contract as
// Next: Branches and Mems alias the stream's shared arrays and stay
// valid only until the cursor's owner reuses dst.
func (c *Cursor) NextBatch(dst []trace.Trace) int {
	n := len(c.s.recs) - c.i
	if n > len(dst) {
		n = len(dst)
	}
	for k := 0; k < n; k++ {
		c.s.At(c.i+k, &dst[k])
	}
	c.i += n
	return n
}

// Remaining returns how many traces are left.
func (c *Cursor) Remaining() int { return len(c.s.recs) - c.i }

// Reset rewinds the cursor to the first trace.
func (c *Cursor) Reset() { c.i = 0 }
