package asm

import (
	"os"
	"path/filepath"
	"testing"
)

// seedSources loads the example programs as fuzz seeds so the fuzzer
// starts from realistic inputs rather than noise.
func seedSources(f *testing.F) {
	f.Helper()
	paths, _ := filepath.Glob(filepath.Join("..", "..", "examples", "asm", "*.s"))
	for _, p := range paths {
		if b, err := os.ReadFile(p); err == nil {
			f.Add(string(b))
		}
	}
}

// FuzzLexer feeds arbitrary single lines to the lexer: it must return
// tokens or an error, never panic.
func FuzzLexer(f *testing.F) {
	for _, s := range []string{
		"main: addi r1, r0, 42",
		"\tlw r2, 4(sp)  ; comment",
		".word 0xdeadbeef",
		"label:",
		"; only a comment",
		"out \"str\\n\"",
		"bad \x00 bytes \xff",
	} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, line string) {
		toks, err := lexLine(line, 1)
		if err == nil && toks == nil && line != "" {
			// nil tokens with no error is fine only for blank lines;
			// anything else must produce one or the other.
			_ = toks
		}
	})
}

// FuzzParse feeds arbitrary source to the full assembler: it must
// assemble or report an error, never panic, and never return a nil
// program without an error.
func FuzzParse(f *testing.F) {
	seedSources(f)
	f.Add("main: j main")
	f.Add("main:\n\taddi r1, r0, 1\n\thalt\n")
	f.Add(".data\nbuf: .space 64\n.text\nmain: halt")
	f.Fuzz(func(t *testing.T, src string) {
		if len(src) > 1<<16 {
			t.Skip("oversized input")
		}
		p, err := Assemble(src)
		if err == nil && p == nil {
			t.Fatal("Assemble returned nil program without error")
		}
	})
}
