package asm

import (
	"strings"
	"testing"

	"pathtrace/internal/isa"
)

func mustAssemble(t *testing.T, src string) *Program {
	t.Helper()
	p, err := Assemble(src)
	if err != nil {
		t.Fatalf("Assemble: %v", err)
	}
	return p
}

func decodeAll(t *testing.T, p *Program) []isa.Instr {
	t.Helper()
	out := make([]isa.Instr, len(p.Text))
	for i, w := range p.Text {
		in, err := isa.Decode(w)
		if err != nil {
			t.Fatalf("decode text[%d]: %v", i, err)
		}
		out[i] = in
	}
	return out
}

func TestAssembleBasic(t *testing.T) {
	p := mustAssemble(t, `
        .text
main:   addi t0, zero, 5
loop:   addi t0, t0, -1
        bne  t0, zero, loop
        halt
`)
	ins := decodeAll(t, p)
	if len(ins) != 4 {
		t.Fatalf("got %d instructions, want 4", len(ins))
	}
	if ins[0].Op != isa.ADDI || ins[0].Rt != isa.T0 || ins[0].Imm != 5 {
		t.Errorf("ins[0] = %v", ins[0])
	}
	// bne at index 2 targets loop at index 1: imm = (1-2-1) = -2... in words:
	// target = pc+4+imm*4; pc = base+8, target = base+4 => imm = -2.
	if ins[2].Op != isa.BNE || ins[2].Imm != -2 {
		t.Errorf("ins[2] = %v, want bne imm -2", ins[2])
	}
	if p.Entry != p.TextBase {
		t.Errorf("Entry = %#x, want %#x (main is first)", p.Entry, p.TextBase)
	}
}

func TestAssembleEntryMain(t *testing.T) {
	p := mustAssemble(t, `
        .text
helper: ret
main:   halt
`)
	if want := p.TextBase + 4; p.Entry != want {
		t.Errorf("Entry = %#x, want %#x", p.Entry, want)
	}
}

func TestAssembleLiExpansion(t *testing.T) {
	p := mustAssemble(t, `
main:   li t0, 42
        li t1, -7
        li t2, 0x12345678
        li t3, 0x10000
        halt
`)
	ins := decodeAll(t, p)
	// li small -> 1 instr each; li big -> lui+ori; li 0x10000 -> lui only.
	want := []isa.Opcode{isa.ADDI, isa.ADDI, isa.LUI, isa.ORI, isa.LUI, isa.HALT}
	if len(ins) != len(want) {
		t.Fatalf("got %d instrs, want %d: %v", len(ins), len(want), ins)
	}
	for i, op := range want {
		if ins[i].Op != op {
			t.Errorf("ins[%d].Op = %v, want %v", i, ins[i].Op, op)
		}
	}
	if ins[2].Imm != 0x1234 || ins[3].Imm != 0x5678 {
		t.Errorf("li 0x12345678 -> lui %#x / ori %#x", ins[2].Imm, ins[3].Imm)
	}
}

func TestAssembleLaAndData(t *testing.T) {
	p := mustAssemble(t, `
        .data
vals:   .word 1, 2, 3
ptr:    .word vals
bytes:  .byte 'A', '\n', 0x7f
        .align 2
after:  .word -1
        .space 8
        .text
main:   la t0, vals
        lw t1, 4(t0)
        halt
`)
	if got := p.Symbols["vals"]; got != p.DataBase {
		t.Errorf("vals = %#x, want %#x", got, p.DataBase)
	}
	// vals occupies 12 bytes; ptr at +12 holds address of vals.
	off := p.Symbols["ptr"] - p.DataBase
	got := uint32(p.Data[off]) | uint32(p.Data[off+1])<<8 |
		uint32(p.Data[off+2])<<16 | uint32(p.Data[off+3])<<24
	if got != p.DataBase {
		t.Errorf("ptr value = %#x, want %#x", got, p.DataBase)
	}
	boff := p.Symbols["bytes"] - p.DataBase
	if p.Data[boff] != 'A' || p.Data[boff+1] != '\n' || p.Data[boff+2] != 0x7f {
		t.Errorf("bytes = %v", p.Data[boff:boff+3])
	}
	if a := p.Symbols["after"]; a%4 != 0 {
		t.Errorf("after not aligned: %#x", a)
	}
	ins := decodeAll(t, p)
	if ins[0].Op != isa.LUI || ins[1].Op != isa.ORI {
		t.Errorf("la expansion = %v %v", ins[0], ins[1])
	}
	addr := uint32(ins[0].Imm)<<16 | uint32(ins[1].Imm)&0xffff
	if addr != p.DataBase {
		t.Errorf("la resolves to %#x, want %#x", addr, p.DataBase)
	}
}

func TestAssemblePseudoBranches(t *testing.T) {
	p := mustAssemble(t, `
main:   beqz t0, main
        bnez t1, main
        bltz t2, main
        bgez t3, main
        bgtz t4, main
        blez t5, main
        bgt  t0, t1, main
        ble  t0, t1, main
        bgtu t0, t1, main
        bleu t0, t1, main
        b    main
        call main
        halt
`)
	ins := decodeAll(t, p)
	want := []isa.Opcode{isa.BEQ, isa.BNE, isa.BLT, isa.BGE, isa.BLT, isa.BGE,
		isa.BLT, isa.BGE, isa.BLTU, isa.BGEU, isa.J, isa.JAL, isa.HALT}
	for i, op := range want {
		if ins[i].Op != op {
			t.Errorf("ins[%d].Op = %v, want %v", i, ins[i].Op, op)
		}
	}
	// bgt t0,t1 swaps to blt t1,t0.
	if ins[6].Rs != isa.T1 || ins[6].Rt != isa.T0 {
		t.Errorf("bgt operands: %v", ins[6])
	}
	// bgtz t4 -> blt zero, t4.
	if ins[4].Rs != isa.Zero || ins[4].Rt != isa.T4 {
		t.Errorf("bgtz operands: %v", ins[4])
	}
}

func TestAssembleJalr(t *testing.T) {
	p := mustAssemble(t, `
main:   jalr t9
        jalr s0, t8
        jr   ra
        ret
        halt
`)
	ins := decodeAll(t, p)
	if ins[0].Rd != isa.RA || ins[0].Rs != isa.T9 {
		t.Errorf("jalr t9 = %v", ins[0])
	}
	if ins[1].Rd != isa.S0 || ins[1].Rs != isa.T8 {
		t.Errorf("jalr s0, t8 = %v", ins[1])
	}
	if ins[3].Op != isa.RET || ins[3].Rs != isa.RA {
		t.Errorf("ret = %v", ins[3])
	}
}

func TestAssembleErrors(t *testing.T) {
	cases := []struct {
		name, src, wantSub string
	}{
		{"unknown mnemonic", "main: frob t0", "unknown mnemonic"},
		{"dup label", "x: nop\nx: nop", "duplicate label"},
		{"undefined symbol", "main: j nowhere", "undefined symbol"},
		{"bad reg", "main: add t0, t1, 5", "expected register"},
		{"instr in data", ".data\nadd t0, t1, t2", "in .data"},
		{"word in text", ".text\n.word 5", ".word outside"},
		{"imm range", "main: addi t0, t0, 100000", "out of range"},
		{"trailing comma", "main: add t0, t1,", "trailing comma"},
		{"bad directive", ".frob", "unknown directive"},
		{"empty", "", "empty program"},
		{"bad char", "main: add t0, t1, t2 @", "unexpected character"},
		{"la literal", "main: la t0, 5", "la needs a symbol"},
		{"dot label", ".foo: nop", "may not start with '.'"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Assemble(tc.src)
			if err == nil {
				t.Fatalf("Assemble succeeded, want error containing %q", tc.wantSub)
			}
			if !strings.Contains(err.Error(), tc.wantSub) {
				t.Errorf("error = %q, want substring %q", err, tc.wantSub)
			}
		})
	}
}

func TestSourceErrorLineNumbers(t *testing.T) {
	_, err := Assemble("nop\nnop\nfrob\n")
	se, ok := err.(*SourceError)
	if !ok {
		t.Fatalf("error type %T, want *SourceError", err)
	}
	if se.Line != 3 {
		t.Errorf("error line = %d, want 3", se.Line)
	}
}

func TestProgramInstr(t *testing.T) {
	p := mustAssemble(t, "main: nop\nhalt")
	in, err := p.Instr(p.TextBase + 4)
	if err != nil || in.Op != isa.HALT {
		t.Errorf("Instr = %v, %v", in, err)
	}
	if _, err := p.Instr(p.TextBase + 8); err == nil {
		t.Error("Instr past end succeeded")
	}
	if _, err := p.Instr(p.TextBase + 1); err == nil {
		t.Error("unaligned Instr succeeded")
	}
}

func TestMustAssemblePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustAssemble did not panic on bad source")
		}
	}()
	MustAssemble("frob")
}

func TestCommentsAndLabelsOnly(t *testing.T) {
	p := mustAssemble(t, `
# full line comment
; another
// and another
main:           # label with comment
        nop     ; trailing
        halt    // trailing
only:
`)
	if len(p.Text) != 2 {
		t.Errorf("got %d instructions, want 2", len(p.Text))
	}
	if p.Symbols["only"] != p.TextBase+8 {
		t.Errorf("trailing label = %#x", p.Symbols["only"])
	}
}
