package asm

import (
	"strings"
	"testing"

	"pathtrace/internal/isa"
)

// Coverage of the operand-form error paths and less common syntax.

func TestOperandErrors(t *testing.T) {
	cases := []struct{ name, src, wantSub string }{
		{"mem garbage", "main: lw t0, 4(t1", "malformed memory operand"},
		{"mem double paren", "main: lw t0, 4(t1)(t2)", "malformed memory operand"},
		{"mem offset range", "main: lw t0, 99999(t1)", "out of range"},
		{"mem bad base", "main: lw t0, 4(99)", "expected register"},
		{"branch imm range", "main: beq t0, t1, 40000", "out of range"},
		{"branch two regs", "main: beq t0, main", "needs 3 operands"},
		{"jump operand count", "main: j", "needs 1 operand"},
		{"jump range", "main: j 999999999", "out of range"},
		{"jr count", "main: jr t0, t1", "needs 1 operand"},
		{"jalr count", "main: jalr t0, t1, t2", "needs 1 or 2"},
		{"ret operands", "main: ret t0", "takes no operands"},
		{"halt operands", "main: halt 1", "takes no operands"},
		{"out count", "main: out", "needs 1 operand"},
		{"out non-reg", "main: out 5", "expected register"},
		{"lui count", "main: lui t0", "needs 2 operands"},
		{"lui range", "main: lui t0, 99999", "out of range"},
		{"lui reg", "main: lui 7, 1", "expected register"},
		{"rrr count", "main: add t0, t1", "expected 3 register operands"},
		{"rri count", "main: addi t0, t1", "expected reg, reg, imm"},
		{"rri imm", "main: addi t0, t1, t2", "expected immediate"},
		{"li count", "main: li t0", "needs 2 operands"},
		{"move count", "main: move t0", "expected 2 register operands"},
		{"beqz count", "main: beqz t0", "needs 2 operands"},
		{"bgt count", "main: bgt t0, t1", "needs 3 operands"},
		{"b count", "main: b", "needs 1 operand"},
		{"call count", "main: call", "needs 1 operand"},
		{"subi count", "main: subi t0, t1", "expected reg, reg, imm"},
		{"mem load count", "main: lw t0", "needs 2 operands"},
		{"word bad operand", ".data\nx: .word (", "bad .word operand"},
		{"byte bad operand", ".data\nx: .byte foo", "bad .byte operand"},
		{"space bad", ".data\nx: .space -1", "non-negative"},
		{"align bad", ".align 20", "power-of-two exponent"},
		{"branch target junk", "main: beq t0, t1, (", "expected immediate"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Assemble(tc.src)
			if err == nil {
				t.Fatalf("assembled, want error containing %q", tc.wantSub)
			}
			if !strings.Contains(err.Error(), tc.wantSub) {
				t.Errorf("error = %q, want substring %q", err, tc.wantSub)
			}
		})
	}
}

func TestNumericBranchAndJumpOperands(t *testing.T) {
	// Raw numeric targets are accepted for low-level testing.
	p := mustAssemble(t, `
main:   beq  t0, t1, 4
        j    0x10000
        jal  0x10008
        halt
`)
	ins := decodeAll(t, p)
	if ins[0].Imm != 4 {
		t.Errorf("numeric branch imm = %d", ins[0].Imm)
	}
	if ins[1].Target != 0x10000 || ins[2].Target != 0x10008 {
		t.Errorf("numeric jump targets = %#x, %#x", ins[1].Target, ins[2].Target)
	}
}

func TestBareOffsetMemoryOperand(t *testing.T) {
	// `lw t0, 16` means absolute address 16 (base = zero register).
	p := mustAssemble(t, "main: lw t0, 16\nsw t0, 20(zero)\nhalt")
	ins := decodeAll(t, p)
	if ins[0].Rs != isa.Zero || ins[0].Imm != 16 {
		t.Errorf("bare offset: %+v", ins[0])
	}
}

func TestCharLiterals(t *testing.T) {
	p := mustAssemble(t, `
        .data
c:      .byte 'a', '\n', '\t', '\0', '\\', '\''
        .text
main:   halt
`)
	want := []byte{'a', '\n', '\t', 0, '\\', '\''}
	for i, w := range want {
		if p.Data[i] != w {
			t.Errorf("data[%d] = %q, want %q", i, p.Data[i], w)
		}
	}
	for _, bad := range []string{
		".data\nx: .byte 'ab'",
		".data\nx: .byte '\\q'",
		".data\nx: .byte '",
		".data\nx: .byte '\\",
	} {
		if _, err := Assemble(bad); err == nil {
			t.Errorf("accepted %q", bad)
		}
	}
}

func TestNumberFormats(t *testing.T) {
	p := mustAssemble(t, `
        .data
n:      .word 0b1010, 0x1F, -0x10, +7
        .text
main:   halt
`)
	word := func(i int) int32 {
		off := i * 4
		return int32(uint32(p.Data[off]) | uint32(p.Data[off+1])<<8 |
			uint32(p.Data[off+2])<<16 | uint32(p.Data[off+3])<<24)
	}
	for i, want := range []int32{10, 31, -16, 7} {
		if got := word(i); got != want {
			t.Errorf("word %d = %d, want %d", i, got, want)
		}
	}
	for _, bad := range []string{".data\nx: .word 0x", ".data\nx: .word 0b", ".data\nx: .word -"} {
		if _, err := Assemble(bad); err == nil {
			t.Errorf("accepted %q", bad)
		}
	}
}

func TestIgnoredDirectives(t *testing.T) {
	p := mustAssemble(t, `
        .globl main
        .ent main
main:   halt
        .end main
`)
	if len(p.Text) != 1 {
		t.Errorf("text length %d", len(p.Text))
	}
}

func TestTextAlignPads(t *testing.T) {
	p := mustAssemble(t, `
main:   nop
        .align 3
target: halt
`)
	if p.Symbols["target"]%8 != 0 {
		t.Errorf("target not 8-aligned: %#x", p.Symbols["target"])
	}
	// Padding must be NOPs.
	in, err := p.Instr(p.TextBase + 4)
	if err != nil || in.Op != isa.NOP {
		t.Errorf("padding = %v, %v", in, err)
	}
}

func TestTokenStringForms(t *testing.T) {
	toks, err := lexLine("add t0, t1, (t2): 5", 1)
	if err != nil {
		t.Fatal(err)
	}
	var parts []string
	for _, tk := range toks {
		parts = append(parts, tk.String())
	}
	joined := strings.Join(parts, " ")
	for _, want := range []string{"add", ",", "(", ")", ":", "5"} {
		if !strings.Contains(joined, want) {
			t.Errorf("token dump %q missing %q", joined, want)
		}
	}
}

func TestBranchOutOfRange(t *testing.T) {
	// A branch whose target is too many instruction words away.
	var b strings.Builder
	b.WriteString("main: beq t0, t1, far\n")
	for i := 0; i < 33000; i++ {
		b.WriteString("nop\n")
	}
	b.WriteString("far: halt\n")
	if _, err := Assemble(b.String()); err == nil ||
		!strings.Contains(err.Error(), "out of range") {
		t.Errorf("distant branch error = %v", err)
	}
}

func TestImageValidateRejections(t *testing.T) {
	base := imageFixture(t)
	mutate := func(f func(p *Program)) error {
		q, err := DecodeImage(base.EncodeImage())
		if err != nil {
			t.Fatal(err)
		}
		f(q)
		_, err = DecodeImage(q.EncodeImage())
		return err
	}
	if err := mutate(func(p *Program) { p.Text = nil }); err == nil {
		t.Error("empty text accepted")
	}
	if err := mutate(func(p *Program) { p.Entry = p.TextBase + 2 }); err == nil {
		t.Error("unaligned entry accepted")
	}
	if err := mutate(func(p *Program) { p.DataBase = p.TextBase }); err == nil {
		t.Error("overlapping segments accepted")
	}
	if err := mutate(func(p *Program) { p.StackTop = p.DataBase }); err == nil {
		t.Error("segments beyond stack top accepted")
	}
}
