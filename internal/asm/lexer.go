package asm

import (
	"fmt"
	"strings"
)

// token kinds produced by the line lexer.
type tokKind uint8

const (
	tokIdent tokKind = iota // labels, mnemonics, register names, directives
	tokNum                  // integer literal (value in num)
	tokComma
	tokColon
	tokLParen
	tokRParen
)

type token struct {
	kind tokKind
	text string
	num  int64
}

func (t token) String() string {
	switch t.kind {
	case tokNum:
		return fmt.Sprintf("%d", t.num)
	case tokComma:
		return ","
	case tokColon:
		return ":"
	case tokLParen:
		return "("
	case tokRParen:
		return ")"
	}
	return t.text
}

// stripComment removes "#", ";" and "//" comments.
func stripComment(line string) string {
	for i := 0; i < len(line); i++ {
		switch line[i] {
		case '#', ';':
			return line[:i]
		case '/':
			if i+1 < len(line) && line[i+1] == '/' {
				return line[:i]
			}
		}
	}
	return line
}

func isIdentStart(c byte) bool {
	return c == '_' || c == '.' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z'
}

func isIdentChar(c byte) bool {
	return isIdentStart(c) || c >= '0' && c <= '9'
}

// lexLine tokenises one source line (comments already stripped).
func lexLine(line string, lineNo int) ([]token, error) {
	var toks []token
	i := 0
	for i < len(line) {
		c := line[i]
		switch {
		case c == ' ' || c == '\t' || c == '\r':
			i++
		case c == ',':
			toks = append(toks, token{kind: tokComma})
			i++
		case c == ':':
			toks = append(toks, token{kind: tokColon})
			i++
		case c == '(':
			toks = append(toks, token{kind: tokLParen})
			i++
		case c == ')':
			toks = append(toks, token{kind: tokRParen})
			i++
		case c == '\'':
			// Character literal: 'a', '\n', '\0', '\\', '\''.
			v, n, err := lexChar(line[i:])
			if err != nil {
				return nil, errf(lineNo, "%v", err)
			}
			toks = append(toks, token{kind: tokNum, num: v})
			i += n
		case c == '-' || c == '+' || c >= '0' && c <= '9':
			v, n, err := lexNumber(line[i:])
			if err != nil {
				return nil, errf(lineNo, "%v", err)
			}
			toks = append(toks, token{kind: tokNum, num: v})
			i += n
		case isIdentStart(c):
			j := i + 1
			for j < len(line) && isIdentChar(line[j]) {
				j++
			}
			toks = append(toks, token{kind: tokIdent, text: line[i:j]})
			i = j
		default:
			return nil, errf(lineNo, "unexpected character %q", c)
		}
	}
	return toks, nil
}

func lexChar(s string) (int64, int, error) {
	if len(s) < 3 {
		return 0, 0, fmt.Errorf("unterminated character literal")
	}
	if s[1] == '\\' {
		if len(s) < 4 || s[3] != '\'' {
			return 0, 0, fmt.Errorf("bad character escape")
		}
		var v int64
		switch s[2] {
		case 'n':
			v = '\n'
		case 't':
			v = '\t'
		case '0':
			v = 0
		case '\\':
			v = '\\'
		case '\'':
			v = '\''
		default:
			return 0, 0, fmt.Errorf("unknown escape \\%c", s[2])
		}
		return v, 4, nil
	}
	if s[2] != '\'' {
		return 0, 0, fmt.Errorf("unterminated character literal")
	}
	return int64(s[1]), 3, nil
}

func lexNumber(s string) (int64, int, error) {
	neg := false
	i := 0
	if s[0] == '-' {
		neg = true
		i = 1
	} else if s[0] == '+' {
		i = 1
	}
	if i >= len(s) || s[i] < '0' || s[i] > '9' {
		return 0, 0, fmt.Errorf("malformed number %q", s)
	}
	base := int64(10)
	if strings.HasPrefix(s[i:], "0x") || strings.HasPrefix(s[i:], "0X") {
		base = 16
		i += 2
	} else if strings.HasPrefix(s[i:], "0b") || strings.HasPrefix(s[i:], "0B") {
		base = 2
		i += 2
	}
	var v int64
	start := i
	for i < len(s) {
		c := s[i]
		var d int64
		switch {
		case c >= '0' && c <= '9':
			d = int64(c - '0')
		case c >= 'a' && c <= 'f':
			d = int64(c-'a') + 10
		case c >= 'A' && c <= 'F':
			d = int64(c-'A') + 10
		default:
			d = -1
		}
		if d < 0 || d >= base {
			break
		}
		v = v*base + d
		i++
	}
	if i == start {
		return 0, 0, fmt.Errorf("malformed number %q", s)
	}
	if neg {
		v = -v
	}
	return v, i, nil
}
