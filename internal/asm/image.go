package asm

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"sort"
)

// Binary image format for assembled programs, so `ptasm -o` can write
// an executable once and `ptasm`/`ptcc` (or any embedder) can load it
// without re-assembling. Little-endian throughout:
//
//	magic    [8]byte  "PT32IMG1"
//	textBase uint32
//	dataBase uint32
//	stackTop uint32
//	entry    uint32
//	nText    uint32   instruction words
//	nData    uint32   data bytes
//	nSyms    uint32
//	text     nText * uint32
//	data     nData bytes
//	symbols  nSyms * { nameLen uint16, name bytes, addr uint32 }

var imageMagic = [8]byte{'P', 'T', '3', '2', 'I', 'M', 'G', '1'}

// maxImageSection bounds section sizes on load, so corrupt headers
// cannot trigger huge allocations.
const maxImageSection = 1 << 26

// WriteImage serialises the program.
func (p *Program) WriteImage(w io.Writer) error {
	var buf bytes.Buffer
	buf.Write(imageMagic[:])
	le := binary.LittleEndian
	var hdr [28]byte
	le.PutUint32(hdr[0:], p.TextBase)
	le.PutUint32(hdr[4:], p.DataBase)
	le.PutUint32(hdr[8:], p.StackTop)
	le.PutUint32(hdr[12:], p.Entry)
	le.PutUint32(hdr[16:], uint32(len(p.Text)))
	le.PutUint32(hdr[20:], uint32(len(p.Data)))
	le.PutUint32(hdr[24:], uint32(len(p.Symbols)))
	buf.Write(hdr[:])
	var word [4]byte
	for _, t := range p.Text {
		le.PutUint32(word[:], t)
		buf.Write(word[:])
	}
	buf.Write(p.Data)
	// Symbols in sorted order for deterministic output.
	names := make([]string, 0, len(p.Symbols))
	for n := range p.Symbols {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		if len(n) > 1<<15 {
			return fmt.Errorf("asm: symbol name %q too long", n[:32])
		}
		var l [2]byte
		le.PutUint16(l[:], uint16(len(n)))
		buf.Write(l[:])
		buf.WriteString(n)
		le.PutUint32(word[:], p.Symbols[n])
		buf.Write(word[:])
	}
	_, err := w.Write(buf.Bytes())
	return err
}

// EncodeImage serialises the program to a byte slice.
func (p *Program) EncodeImage() []byte {
	var buf bytes.Buffer
	// WriteImage on a bytes.Buffer cannot fail.
	_ = p.WriteImage(&buf)
	return buf.Bytes()
}

// IsImage reports whether the bytes begin with the image magic, so
// tools can accept either assembly source or a prebuilt image.
func IsImage(b []byte) bool {
	return len(b) >= len(imageMagic) && bytes.Equal(b[:len(imageMagic)], imageMagic[:])
}

// DecodeImage deserialises a program image.
func DecodeImage(b []byte) (*Program, error) {
	if !IsImage(b) {
		return nil, fmt.Errorf("asm: not a PT32 image (bad magic)")
	}
	r := bytes.NewReader(b[len(imageMagic):])
	le := binary.LittleEndian
	var hdr [28]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, fmt.Errorf("asm: truncated image header: %w", err)
	}
	p := &Program{
		TextBase: le.Uint32(hdr[0:]),
		DataBase: le.Uint32(hdr[4:]),
		StackTop: le.Uint32(hdr[8:]),
		Entry:    le.Uint32(hdr[12:]),
		Symbols:  map[string]uint32{},
	}
	nText := le.Uint32(hdr[16:])
	nData := le.Uint32(hdr[20:])
	nSyms := le.Uint32(hdr[24:])
	if nText > maxImageSection || nData > maxImageSection || nSyms > maxImageSection {
		return nil, fmt.Errorf("asm: image section too large (text=%d data=%d syms=%d)", nText, nData, nSyms)
	}
	p.Text = make([]uint32, nText)
	var word [4]byte
	for i := range p.Text {
		if _, err := io.ReadFull(r, word[:]); err != nil {
			return nil, fmt.Errorf("asm: truncated text section: %w", err)
		}
		p.Text[i] = le.Uint32(word[:])
	}
	p.Data = make([]byte, nData)
	if _, err := io.ReadFull(r, p.Data); err != nil {
		return nil, fmt.Errorf("asm: truncated data section: %w", err)
	}
	for i := uint32(0); i < nSyms; i++ {
		var l [2]byte
		if _, err := io.ReadFull(r, l[:]); err != nil {
			return nil, fmt.Errorf("asm: truncated symbol table: %w", err)
		}
		name := make([]byte, le.Uint16(l[:]))
		if _, err := io.ReadFull(r, name); err != nil {
			return nil, fmt.Errorf("asm: truncated symbol name: %w", err)
		}
		if _, err := io.ReadFull(r, word[:]); err != nil {
			return nil, fmt.Errorf("asm: truncated symbol address: %w", err)
		}
		p.Symbols[string(name)] = le.Uint32(word[:])
	}
	if r.Len() != 0 {
		return nil, fmt.Errorf("asm: %d trailing bytes after image", r.Len())
	}
	if err := p.validateImage(); err != nil {
		return nil, err
	}
	return p, nil
}

// ReadImage deserialises a program image from a reader.
func ReadImage(r io.Reader) (*Program, error) {
	b, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	return DecodeImage(b)
}

// validateImage sanity-checks the loaded layout so the simulator can
// trust it.
func (p *Program) validateImage() error {
	if len(p.Text) == 0 {
		return fmt.Errorf("asm: image has no text")
	}
	if p.TextBase%4 != 0 || p.Entry%4 != 0 {
		return fmt.Errorf("asm: unaligned text base or entry")
	}
	textEnd := uint64(p.TextBase) + uint64(4*len(p.Text))
	dataEnd := uint64(p.DataBase) + uint64(len(p.Data))
	if uint64(p.Entry) < uint64(p.TextBase) || uint64(p.Entry) >= textEnd {
		return fmt.Errorf("asm: entry %#x outside text [%#x, %#x)", p.Entry, p.TextBase, textEnd)
	}
	if textEnd > uint64(p.DataBase) && uint64(p.TextBase) < dataEnd {
		return fmt.Errorf("asm: text and data segments overlap")
	}
	if dataEnd > uint64(p.StackTop) || textEnd > uint64(p.StackTop) {
		return fmt.Errorf("asm: segment beyond the stack top")
	}
	return nil
}
