package asm

import (
	"pathtrace/internal/isa"
)

// instruction parses one mnemonic line and emits machine statements.
func (a *assembler) instruction(mnem string, rest []token, lineNo int) error {
	args, err := splitArgs(rest, lineNo)
	if err != nil {
		return err
	}
	// Pseudo-instructions first; anything else must be a machine opcode.
	if ok, err := a.pseudo(mnem, args, lineNo); ok || err != nil {
		return err
	}
	op, ok := isa.OpcodeByName(mnem)
	if !ok {
		return errf(lineNo, "unknown mnemonic %q", mnem)
	}
	switch op {
	case isa.ADD, isa.SUB, isa.MUL, isa.DIV, isa.REM, isa.AND, isa.OR,
		isa.XOR, isa.NOR, isa.SLT, isa.SLTU, isa.SLLV, isa.SRLV, isa.SRAV:
		rd, rs, rt, err := regRegReg(args, lineNo)
		if err != nil {
			return err
		}
		a.emit(lineNo, isa.Instr{Op: op, Rd: rd, Rs: rs, Rt: rt})
	case isa.ADDI, isa.ANDI, isa.ORI, isa.XORI, isa.SLTI, isa.SLTIU,
		isa.SLL, isa.SRL, isa.SRA:
		rt, rs, imm, err := regRegImm(args, lineNo)
		if err != nil {
			return err
		}
		a.emit(lineNo, isa.Instr{Op: op, Rt: rt, Rs: rs, Imm: imm})
	case isa.LUI:
		if len(args) != 2 {
			return errf(lineNo, "lui needs 2 operands")
		}
		rt, err := asReg(args[0], lineNo)
		if err != nil {
			return err
		}
		imm, err := asImm(args[1], lineNo, 0, 0xffff)
		if err != nil {
			return err
		}
		a.emit(lineNo, isa.Instr{Op: isa.LUI, Rt: rt, Imm: imm})
	case isa.LW, isa.LB, isa.LBU, isa.SW, isa.SB:
		if len(args) != 2 {
			return errf(lineNo, "%s needs 2 operands", mnem)
		}
		rt, err := asReg(args[0], lineNo)
		if err != nil {
			return err
		}
		off, base, err := asMem(args[1], lineNo)
		if err != nil {
			return err
		}
		a.emit(lineNo, isa.Instr{Op: op, Rt: rt, Rs: base, Imm: off})
	case isa.BEQ, isa.BNE, isa.BLT, isa.BGE, isa.BLTU, isa.BGEU:
		if len(args) != 3 {
			return errf(lineNo, "%s needs 3 operands", mnem)
		}
		rs, rt, err := twoRegs(args[:2], lineNo)
		if err != nil {
			return err
		}
		return a.emitBranch(op, rs, rt, args[2], lineNo)
	case isa.J, isa.JAL:
		if len(args) != 1 {
			return errf(lineNo, "%s needs 1 operand", mnem)
		}
		return a.emitJump(op, args[0], lineNo)
	case isa.JR:
		if len(args) != 1 {
			return errf(lineNo, "jr needs 1 operand")
		}
		rs, err := asReg(args[0], lineNo)
		if err != nil {
			return err
		}
		a.emit(lineNo, isa.Instr{Op: isa.JR, Rs: rs})
	case isa.JALR:
		var rd, rs isa.Reg
		switch len(args) {
		case 1:
			rd = isa.RA
			r, err := asReg(args[0], lineNo)
			if err != nil {
				return err
			}
			rs = r
		case 2:
			var err error
			rd, err = asReg(args[0], lineNo)
			if err != nil {
				return err
			}
			rs, err = asReg(args[1], lineNo)
			if err != nil {
				return err
			}
		default:
			return errf(lineNo, "jalr needs 1 or 2 operands")
		}
		a.emit(lineNo, isa.Instr{Op: isa.JALR, Rd: rd, Rs: rs})
	case isa.RET, isa.HALT, isa.NOP:
		if len(args) != 0 {
			return errf(lineNo, "%s takes no operands", mnem)
		}
		in := isa.Instr{Op: op}
		if op == isa.RET {
			in.Rs = isa.RA
		}
		a.emit(lineNo, in)
	case isa.OUT:
		if len(args) != 1 {
			return errf(lineNo, "out needs 1 operand")
		}
		rs, err := asReg(args[0], lineNo)
		if err != nil {
			return err
		}
		a.emit(lineNo, isa.Instr{Op: isa.OUT, Rs: rs})
	default:
		return errf(lineNo, "unhandled opcode %q", mnem)
	}
	return nil
}

// pseudo expands pseudo-instructions. It reports whether mnem was a
// pseudo-instruction.
func (a *assembler) pseudo(mnem string, args [][]token, lineNo int) (bool, error) {
	switch mnem {
	case "li", "la":
		if len(args) != 2 {
			return true, errf(lineNo, "%s needs 2 operands", mnem)
		}
		rt, err := asReg(args[0], lineNo)
		if err != nil {
			return true, err
		}
		if sym, ok := asSymbol(args[1]); ok {
			a.emitFix(lineNo, isa.Instr{Op: isa.LUI, Rt: rt}, fixHi16, sym, 0)
			a.emitFix(lineNo, isa.Instr{Op: isa.ORI, Rt: rt, Rs: rt}, fixLo16, sym, 0)
			return true, nil
		}
		if mnem == "la" {
			return true, errf(lineNo, "la needs a symbol operand")
		}
		v, err := asImm(args[1], lineNo, -1<<31, 1<<32-1)
		if err != nil {
			return true, err
		}
		if v >= -(1<<15) && v < 1<<15 {
			a.emit(lineNo, isa.Instr{Op: isa.ADDI, Rt: rt, Rs: isa.Zero, Imm: v})
		} else {
			u := uint32(v)
			a.emit(lineNo, isa.Instr{Op: isa.LUI, Rt: rt, Imm: int32(u >> 16)})
			if lo := u & 0xffff; lo != 0 {
				a.emit(lineNo, isa.Instr{Op: isa.ORI, Rt: rt, Rs: rt, Imm: int32(lo)})
			}
		}
		return true, nil
	case "move":
		rd, rs, err := twoRegs(args, lineNo)
		if err != nil {
			return true, err
		}
		a.emit(lineNo, isa.Instr{Op: isa.ADD, Rd: rd, Rs: rs, Rt: isa.Zero})
		return true, nil
	case "neg":
		rd, rs, err := twoRegs(args, lineNo)
		if err != nil {
			return true, err
		}
		a.emit(lineNo, isa.Instr{Op: isa.SUB, Rd: rd, Rs: isa.Zero, Rt: rs})
		return true, nil
	case "not":
		rd, rs, err := twoRegs(args, lineNo)
		if err != nil {
			return true, err
		}
		a.emit(lineNo, isa.Instr{Op: isa.NOR, Rd: rd, Rs: rs, Rt: isa.Zero})
		return true, nil
	case "subi":
		rt, rs, imm, err := regRegImm(args, lineNo)
		if err != nil {
			return true, err
		}
		a.emit(lineNo, isa.Instr{Op: isa.ADDI, Rt: rt, Rs: rs, Imm: -imm})
		return true, nil
	case "beqz", "bnez", "bltz", "bgez", "bgtz", "blez":
		if len(args) != 2 {
			return true, errf(lineNo, "%s needs 2 operands", mnem)
		}
		rs, err := asReg(args[0], lineNo)
		if err != nil {
			return true, err
		}
		var op isa.Opcode
		var ra, rb isa.Reg
		switch mnem {
		case "beqz":
			op, ra, rb = isa.BEQ, rs, isa.Zero
		case "bnez":
			op, ra, rb = isa.BNE, rs, isa.Zero
		case "bltz":
			op, ra, rb = isa.BLT, rs, isa.Zero
		case "bgez":
			op, ra, rb = isa.BGE, rs, isa.Zero
		case "bgtz":
			op, ra, rb = isa.BLT, isa.Zero, rs
		case "blez":
			op, ra, rb = isa.BGE, isa.Zero, rs
		}
		return true, a.emitBranch(op, ra, rb, args[1], lineNo)
	case "bgt", "ble", "bgtu", "bleu":
		if len(args) != 3 {
			return true, errf(lineNo, "%s needs 3 operands", mnem)
		}
		rs, rt, err := twoRegs(args[:2], lineNo)
		if err != nil {
			return true, err
		}
		var op isa.Opcode
		switch mnem {
		case "bgt":
			op = isa.BLT
		case "ble":
			op = isa.BGE
		case "bgtu":
			op = isa.BLTU
		case "bleu":
			op = isa.BGEU
		}
		// Swapped operands: bgt rs,rt == blt rt,rs.
		return true, a.emitBranch(op, rt, rs, args[2], lineNo)
	case "b":
		if len(args) != 1 {
			return true, errf(lineNo, "b needs 1 operand")
		}
		return true, a.emitJump(isa.J, args[0], lineNo)
	case "call":
		if len(args) != 1 {
			return true, errf(lineNo, "call needs 1 operand")
		}
		return true, a.emitJump(isa.JAL, args[0], lineNo)
	}
	return false, nil
}

func (a *assembler) emitBranch(op isa.Opcode, rs, rt isa.Reg, target []token, lineNo int) error {
	if sym, ok := asSymbol(target); ok {
		a.emitFix(lineNo, isa.Instr{Op: op, Rs: rs, Rt: rt}, fixBranch, sym, 0)
		return nil
	}
	imm, err := asImm(target, lineNo, -(1 << 15), 1<<15-1)
	if err != nil {
		return err
	}
	a.emit(lineNo, isa.Instr{Op: op, Rs: rs, Rt: rt, Imm: imm})
	return nil
}

func (a *assembler) emitJump(op isa.Opcode, target []token, lineNo int) error {
	if sym, ok := asSymbol(target); ok {
		a.emitFix(lineNo, isa.Instr{Op: op}, fixJump, sym, 0)
		return nil
	}
	imm, err := asImm(target, lineNo, 0, 1<<28-1)
	if err != nil {
		return err
	}
	a.emit(lineNo, isa.Instr{Op: op, Target: uint32(imm)})
	return nil
}

// Operand helpers.

func asReg(g []token, lineNo int) (isa.Reg, error) {
	if len(g) == 1 && g[0].kind == tokIdent {
		if r, ok := isa.RegByName(g[0].text); ok {
			return r, nil
		}
	}
	return 0, errf(lineNo, "expected register, got %q", joinToks(g))
}

func asImm(g []token, lineNo int, lo, hi int64) (int32, error) {
	if len(g) != 1 || g[0].kind != tokNum {
		return 0, errf(lineNo, "expected immediate, got %q", joinToks(g))
	}
	v := g[0].num
	if v < lo || v > hi {
		return 0, errf(lineNo, "immediate %d out of range [%d, %d]", v, lo, hi)
	}
	return int32(v), nil
}

// asSymbol reports whether the operand is a bare identifier that is not
// a register name.
func asSymbol(g []token) (string, bool) {
	if len(g) == 1 && g[0].kind == tokIdent {
		if _, isReg := isa.RegByName(g[0].text); !isReg {
			return g[0].text, true
		}
	}
	return "", false
}

// asMem parses "off(base)", "(base)" or a bare offset (base = zero).
func asMem(g []token, lineNo int) (int32, isa.Reg, error) {
	var off int64
	i := 0
	if i < len(g) && g[i].kind == tokNum {
		off = g[i].num
		i++
	}
	if off < -(1<<15) || off >= 1<<15 {
		return 0, 0, errf(lineNo, "memory offset %d out of range", off)
	}
	if i == len(g) {
		return int32(off), isa.Zero, nil
	}
	if len(g)-i != 3 || g[i].kind != tokLParen || g[i+2].kind != tokRParen {
		return 0, 0, errf(lineNo, "malformed memory operand %q", joinToks(g))
	}
	base, err := asReg(g[i+1:i+2], lineNo)
	if err != nil {
		return 0, 0, err
	}
	return int32(off), base, nil
}

func twoRegs(args [][]token, lineNo int) (isa.Reg, isa.Reg, error) {
	if len(args) != 2 {
		return 0, 0, errf(lineNo, "expected 2 register operands")
	}
	ra, err := asReg(args[0], lineNo)
	if err != nil {
		return 0, 0, err
	}
	rb, err := asReg(args[1], lineNo)
	if err != nil {
		return 0, 0, err
	}
	return ra, rb, nil
}

func regRegReg(args [][]token, lineNo int) (isa.Reg, isa.Reg, isa.Reg, error) {
	if len(args) != 3 {
		return 0, 0, 0, errf(lineNo, "expected 3 register operands")
	}
	rd, err := asReg(args[0], lineNo)
	if err != nil {
		return 0, 0, 0, err
	}
	rs, err := asReg(args[1], lineNo)
	if err != nil {
		return 0, 0, 0, err
	}
	rt, err := asReg(args[2], lineNo)
	if err != nil {
		return 0, 0, 0, err
	}
	return rd, rs, rt, nil
}

func regRegImm(args [][]token, lineNo int) (isa.Reg, isa.Reg, int32, error) {
	if len(args) != 3 {
		return 0, 0, 0, errf(lineNo, "expected reg, reg, imm")
	}
	rt, err := asReg(args[0], lineNo)
	if err != nil {
		return 0, 0, 0, err
	}
	rs, err := asReg(args[1], lineNo)
	if err != nil {
		return 0, 0, 0, err
	}
	imm, err := asImm(args[2], lineNo, -(1 << 15), 1<<16-1)
	if err != nil {
		return 0, 0, 0, err
	}
	return rt, rs, imm, nil
}

func joinToks(g []token) string {
	s := ""
	for _, t := range g {
		s += t.String()
	}
	return s
}
