package asm

import (
	"bytes"
	"testing"
)

func imageFixture(t *testing.T) *Program {
	t.Helper()
	return mustAssemble(t, `
        .data
vals:   .word 1, 2, 3
        .text
main:   la   t0, vals
        lw   t1, 8(t0)
        out  t1
        halt
helper: ret
`)
}

func TestImageRoundTrip(t *testing.T) {
	p := imageFixture(t)
	img := p.EncodeImage()
	if !IsImage(img) {
		t.Fatal("encoded image fails magic check")
	}
	q, err := DecodeImage(img)
	if err != nil {
		t.Fatal(err)
	}
	if q.TextBase != p.TextBase || q.DataBase != p.DataBase ||
		q.StackTop != p.StackTop || q.Entry != p.Entry {
		t.Errorf("layout mismatch: %+v vs %+v", q, p)
	}
	if len(q.Text) != len(p.Text) {
		t.Fatalf("text length %d vs %d", len(q.Text), len(p.Text))
	}
	for i := range p.Text {
		if q.Text[i] != p.Text[i] {
			t.Fatalf("text[%d] differs", i)
		}
	}
	if !bytes.Equal(q.Data, p.Data) {
		t.Error("data differs")
	}
	if len(q.Symbols) != len(p.Symbols) {
		t.Fatalf("symbols %d vs %d", len(q.Symbols), len(p.Symbols))
	}
	for n, a := range p.Symbols {
		if q.Symbols[n] != a {
			t.Errorf("symbol %q = %#x, want %#x", n, q.Symbols[n], a)
		}
	}
	// Deterministic encoding.
	if !bytes.Equal(img, q.EncodeImage()) {
		t.Error("re-encoding differs")
	}
}

func TestImageWriteRead(t *testing.T) {
	p := imageFixture(t)
	var buf bytes.Buffer
	if err := p.WriteImage(&buf); err != nil {
		t.Fatal(err)
	}
	q, err := ReadImage(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if q.Entry != p.Entry {
		t.Error("entry mismatch after Write/Read")
	}
}

func TestImageErrors(t *testing.T) {
	p := imageFixture(t)
	img := p.EncodeImage()

	t.Run("bad magic", func(t *testing.T) {
		bad := append([]byte(nil), img...)
		bad[0] = 'X'
		if _, err := DecodeImage(bad); err == nil {
			t.Error("accepted bad magic")
		}
		if IsImage(bad) {
			t.Error("IsImage accepted bad magic")
		}
	})
	t.Run("truncations", func(t *testing.T) {
		for _, cut := range []int{9, 20, 40, len(img) - 1} {
			if cut >= len(img) {
				continue
			}
			if _, err := DecodeImage(img[:cut]); err == nil {
				t.Errorf("accepted truncation at %d", cut)
			}
		}
	})
	t.Run("trailing garbage", func(t *testing.T) {
		if _, err := DecodeImage(append(append([]byte(nil), img...), 0)); err == nil {
			t.Error("accepted trailing bytes")
		}
	})
	t.Run("huge section", func(t *testing.T) {
		bad := append([]byte(nil), img...)
		// nText field at offset 8+16.
		for i := 0; i < 4; i++ {
			bad[24+i] = 0xff
		}
		if _, err := DecodeImage(bad); err == nil {
			t.Error("accepted absurd section size")
		}
	})
	t.Run("bad entry", func(t *testing.T) {
		bad := append([]byte(nil), img...)
		// entry field at offset 8+12: point far outside text.
		bad[20] = 0
		bad[21] = 0
		bad[22] = 0
		bad[23] = 0x40
		if _, err := DecodeImage(bad); err == nil {
			t.Error("accepted out-of-text entry")
		}
	})
}

// A decoded image must run identically to the original program.
func TestImageRunsIdentically(t *testing.T) {
	p := imageFixture(t)
	q, err := DecodeImage(p.EncodeImage())
	if err != nil {
		t.Fatal(err)
	}
	// Use the disassembler for a text-level check (the simulator lives
	// in a package that imports this one, so run equivalence is covered
	// by the ptasm-level tests).
	for i := range p.Text {
		a, err1 := p.Instr(p.TextBase + uint32(i)*4)
		b, err2 := q.Instr(q.TextBase + uint32(i)*4)
		if err1 != nil || err2 != nil || a != b {
			t.Fatalf("instr %d differs: %v vs %v", i, a, b)
		}
	}
}
