// Package asm implements a two-pass assembler for the PT32 instruction
// set defined in package isa.
//
// The source language is a conventional line-oriented assembly dialect:
//
//	# comment (also ";" and "//")
//	        .data
//	table:  .word 1, 2, 3, loop      # labels may appear in .word
//	buf:    .space 256
//	        .byte 0x41, 10
//	        .align 4
//	        .text
//	main:   li   t0, 100000          # pseudo-instruction
//	loop:   addi t0, t0, -1
//	        bne  t0, zero, loop
//	        halt
//
// Pseudo-instructions (li, la, move, neg, not, beqz, bnez, bgt, ble,
// bgtu, bleu, subi, b) expand into one or two machine instructions.
// Labels are resolved across the whole file; branch targets are
// PC-relative, jump targets absolute.
package asm

import (
	"fmt"

	"pathtrace/internal/isa"
)

// Default memory layout. The bases are far apart so out-of-segment
// accesses fault loudly in the simulator.
const (
	DefaultTextBase = 0x0001_0000
	DefaultDataBase = 0x0010_0000
	DefaultStackTop = 0x0080_0000
)

// Program is the output of assembly: an executable image for the
// simulator in package sim.
type Program struct {
	Text     []uint32 // encoded instructions, word per instruction
	TextBase uint32   // address of Text[0]
	Data     []byte   // initialised data segment
	DataBase uint32   // address of Data[0]
	StackTop uint32   // initial stack pointer
	Entry    uint32   // initial PC ("main" if defined, else TextBase)
	Symbols  map[string]uint32
}

// Instr decodes the instruction stored at the given address.
func (p *Program) Instr(addr uint32) (isa.Instr, error) {
	i := int(addr-p.TextBase) / 4
	if addr%4 != 0 || i < 0 || i >= len(p.Text) {
		return isa.Instr{}, fmt.Errorf("asm: address %#x outside text segment", addr)
	}
	return isa.Decode(p.Text[i])
}

// SourceError reports an assembly failure with its source position.
type SourceError struct {
	Line int
	Msg  string
}

func (e *SourceError) Error() string {
	return fmt.Sprintf("asm: line %d: %s", e.Line, e.Msg)
}

func errf(line int, format string, args ...any) error {
	return &SourceError{Line: line, Msg: fmt.Sprintf(format, args...)}
}
