package asm

import (
	"fmt"
	"strings"

	"pathtrace/internal/isa"
)

// fixKind describes how a symbolic operand patches an instruction in
// pass 2.
type fixKind uint8

const (
	fixNone   fixKind = iota
	fixBranch         // imm = (sym - (pc+4)) / 4
	fixJump           // target = sym
	fixHi16           // imm = sym >> 16
	fixLo16           // imm = sym & 0xffff
)

// mstmt is a machine instruction awaiting final encoding.
type mstmt struct {
	line int
	in   isa.Instr
	fix  fixKind
	sym  string
	add  int64 // addend applied to the symbol value
}

// ditem is one datum in the data segment.
type ditem struct {
	line  int
	addr  uint32
	size  int
	word  bool   // 32-bit value (otherwise a byte)
	sym   string // if non-empty, value = symbol address + val
	val   int64
	space bool // .space: size zero bytes
}

type assembler struct {
	text    []mstmt
	data    []ditem
	symbols map[string]uint32
	textPC  uint32
	dataPC  uint32
	inData  bool
}

// Assemble translates PT32 assembly source into an executable Program.
func Assemble(source string) (*Program, error) {
	a := &assembler{
		symbols: make(map[string]uint32),
		textPC:  DefaultTextBase,
		dataPC:  DefaultDataBase,
	}
	for lineNo, raw := range strings.Split(source, "\n") {
		if err := a.line(stripComment(raw), lineNo+1); err != nil {
			return nil, err
		}
	}
	return a.finish()
}

// MustAssemble is Assemble for known-good embedded sources; it panics on
// error. Workload programs are compiled once at first use.
func MustAssemble(source string) *Program {
	p, err := Assemble(source)
	if err != nil {
		panic(err)
	}
	return p
}

func (a *assembler) line(line string, lineNo int) error {
	toks, err := lexLine(line, lineNo)
	if err != nil {
		return err
	}
	// Leading labels: "name:" possibly several.
	for len(toks) >= 2 && toks[0].kind == tokIdent && toks[1].kind == tokColon {
		name := toks[0].text
		if strings.HasPrefix(name, ".") {
			return errf(lineNo, "label %q may not start with '.'", name)
		}
		if _, dup := a.symbols[name]; dup {
			return errf(lineNo, "duplicate label %q", name)
		}
		if a.inData {
			a.symbols[name] = a.dataPC
		} else {
			a.symbols[name] = a.textPC
		}
		toks = toks[2:]
	}
	if len(toks) == 0 {
		return nil
	}
	if toks[0].kind != tokIdent {
		return errf(lineNo, "expected mnemonic or directive, got %q", toks[0])
	}
	head, rest := toks[0].text, toks[1:]
	if strings.HasPrefix(head, ".") {
		return a.directive(head, rest, lineNo)
	}
	if a.inData {
		return errf(lineNo, "instruction %q in .data section", head)
	}
	return a.instruction(head, rest, lineNo)
}

func (a *assembler) directive(name string, args []token, lineNo int) error {
	switch name {
	case ".text":
		a.inData = false
	case ".data":
		a.inData = true
	case ".globl", ".global", ".ent", ".end":
		// Accepted and ignored for source compatibility.
	case ".word":
		if !a.inData {
			return errf(lineNo, ".word outside .data")
		}
		vals, err := splitArgs(args, lineNo)
		if err != nil {
			return err
		}
		for _, v := range vals {
			d := ditem{line: lineNo, addr: a.dataPC, size: 4, word: true}
			switch {
			case len(v) == 1 && v[0].kind == tokNum:
				d.val = v[0].num
			case len(v) == 1 && v[0].kind == tokIdent:
				d.sym = v[0].text
			default:
				return errf(lineNo, "bad .word operand")
			}
			a.data = append(a.data, d)
			a.dataPC += 4
		}
	case ".byte":
		if !a.inData {
			return errf(lineNo, ".byte outside .data")
		}
		vals, err := splitArgs(args, lineNo)
		if err != nil {
			return err
		}
		for _, v := range vals {
			if len(v) != 1 || v[0].kind != tokNum {
				return errf(lineNo, "bad .byte operand")
			}
			a.data = append(a.data, ditem{line: lineNo, addr: a.dataPC, size: 1, val: v[0].num})
			a.dataPC++
		}
	case ".space":
		if !a.inData {
			return errf(lineNo, ".space outside .data")
		}
		if len(args) != 1 || args[0].kind != tokNum || args[0].num < 0 {
			return errf(lineNo, ".space needs one non-negative size")
		}
		a.data = append(a.data, ditem{line: lineNo, addr: a.dataPC, size: int(args[0].num), space: true})
		a.dataPC += uint32(args[0].num)
	case ".align":
		if len(args) != 1 || args[0].kind != tokNum || args[0].num < 0 || args[0].num > 12 {
			return errf(lineNo, ".align needs a power-of-two exponent 0..12")
		}
		align := uint32(1) << args[0].num
		pc := &a.textPC
		if a.inData {
			pc = &a.dataPC
		}
		if pad := (align - *pc%align) % align; pad > 0 {
			if a.inData {
				a.data = append(a.data, ditem{line: lineNo, addr: a.dataPC, size: int(pad), space: true})
				a.dataPC += pad
			} else {
				for i := uint32(0); i < pad; i += 4 {
					a.emit(lineNo, isa.Instr{Op: isa.NOP})
				}
			}
		}
	default:
		return errf(lineNo, "unknown directive %q", name)
	}
	return nil
}

// splitArgs splits a token list on commas into operand groups.
func splitArgs(toks []token, lineNo int) ([][]token, error) {
	if len(toks) == 0 {
		return nil, nil
	}
	var out [][]token
	cur := []token{}
	for _, t := range toks {
		if t.kind == tokComma {
			if len(cur) == 0 {
				return nil, errf(lineNo, "empty operand")
			}
			out = append(out, cur)
			cur = []token{}
			continue
		}
		cur = append(cur, t)
	}
	if len(cur) == 0 {
		return nil, errf(lineNo, "trailing comma")
	}
	return append(out, cur), nil
}

func (a *assembler) emit(line int, in isa.Instr) {
	a.text = append(a.text, mstmt{line: line, in: in})
	a.textPC += 4
}

func (a *assembler) emitFix(line int, in isa.Instr, fix fixKind, sym string, add int64) {
	a.text = append(a.text, mstmt{line: line, in: in, fix: fix, sym: sym, add: add})
	a.textPC += 4
}

func (a *assembler) finish() (*Program, error) {
	p := &Program{
		TextBase: DefaultTextBase,
		DataBase: DefaultDataBase,
		StackTop: DefaultStackTop,
		Symbols:  a.symbols,
	}
	// Pass 2: resolve symbols in text.
	p.Text = make([]uint32, len(a.text))
	for i, m := range a.text {
		in := m.in
		if m.fix != fixNone {
			addr, ok := a.symbols[m.sym]
			if !ok {
				return nil, errf(m.line, "undefined symbol %q", m.sym)
			}
			v := int64(addr) + m.add
			pc := p.TextBase + uint32(i)*4
			switch m.fix {
			case fixBranch:
				delta := v - int64(pc) - 4
				if delta%4 != 0 {
					return nil, errf(m.line, "unaligned branch target %q", m.sym)
				}
				words := delta / 4
				if words < -(1<<15) || words >= 1<<15 {
					return nil, errf(m.line, "branch to %q out of range (%d words)", m.sym, words)
				}
				in.Imm = int32(words)
			case fixJump:
				in.Target = uint32(v)
			case fixHi16:
				in.Imm = int32(uint32(v) >> 16)
			case fixLo16:
				in.Imm = int32(uint32(v) & 0xffff)
			}
		}
		p.Text[i] = in.Encode()
	}
	// Materialise the data segment.
	p.Data = make([]byte, a.dataPC-DefaultDataBase)
	for _, d := range a.data {
		if d.space {
			continue
		}
		v := d.val
		if d.sym != "" {
			addr, ok := a.symbols[d.sym]
			if !ok {
				return nil, errf(d.line, "undefined symbol %q", d.sym)
			}
			v += int64(addr)
		}
		off := d.addr - DefaultDataBase
		if d.word {
			u := uint32(v)
			p.Data[off] = byte(u)
			p.Data[off+1] = byte(u >> 8)
			p.Data[off+2] = byte(u >> 16)
			p.Data[off+3] = byte(u >> 24)
		} else {
			p.Data[off] = byte(v)
		}
	}
	if main, ok := a.symbols["main"]; ok {
		p.Entry = main
	} else {
		p.Entry = p.TextBase
	}
	if len(p.Text) == 0 {
		return nil, fmt.Errorf("asm: empty program")
	}
	return p, nil
}
