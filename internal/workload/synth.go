package workload

import (
	"fmt"
	"math/rand"
	"strings"
)

// SynthParams parameterise the synthetic program generator used for the
// large-static-footprint benchmarks. The generator emits a deterministic
// (seeded) assembly program: a layered call graph of functions whose
// bodies are chains of data-dependent control-flow blocks (diamonds,
// compare chains, small loops, jump-table switches), driven by a table
// of random words walked with a wrapping cursor.
type SynthParams struct {
	Seed      int64
	Funcs     int // total functions
	Layers    int // call-graph layers; roots are layer 0
	Blocks    int // decision blocks per function (±2, randomised)
	Recurse   bool
	Depth     int // call/recursion depth budget (a0 at the roots)
	DataWords int
	Iters     int
}

type synthGen struct {
	p   SynthParams
	rng *rand.Rand
	b   strings.Builder
	// layer assignment: fn index -> layer
	layer []int
	// functions per layer
	byLayer [][]int
}

// synthSource generates the program text.
func synthSource(p SynthParams) string {
	g := &synthGen{p: p, rng: rand.New(rand.NewSource(p.Seed))}
	g.assignLayers()
	g.emitData()
	g.emitMain()
	for fn := 0; fn < p.Funcs; fn++ {
		g.emitFunc(fn)
	}
	return g.b.String()
}

func (g *synthGen) assignLayers() {
	g.layer = make([]int, g.p.Funcs)
	g.byLayer = make([][]int, g.p.Layers)
	for fn := 0; fn < g.p.Funcs; fn++ {
		l := fn * g.p.Layers / g.p.Funcs
		g.layer[fn] = l
		g.byLayer[l] = append(g.byLayer[l], fn)
	}
}

func (g *synthGen) emitData() {
	fmt.Fprintf(&g.b, "# synthetic workload: seed=%d funcs=%d layers=%d\n",
		g.p.Seed, g.p.Funcs, g.p.Layers)
	g.b.WriteString("        .data\nsdata:\n")
	// Words are drawn from a small alphabet with Markov stickiness, so
	// control flow is *correlated* rather than random: once early
	// branches reveal which pattern word is live, the rest of its bits
	// are determined — learnable by history-based predictors, exactly
	// like real integer code. A fresh random table would make every
	// branch a coin flip, which no predictor (and no real program)
	// exhibits.
	alphabet := make([]uint32, 16)
	for i := range alphabet {
		alphabet[i] = g.rng.Uint32()
	}
	cur := 0
	for i := 0; i < g.p.DataWords; i += 8 {
		g.b.WriteString("        .word ")
		for j := 0; j < 8 && i+j < g.p.DataWords; j++ {
			if j > 0 {
				g.b.WriteString(", ")
			}
			if g.rng.Intn(4) == 0 {
				cur = g.rng.Intn(len(alphabet))
			}
			fmt.Fprintf(&g.b, "%d", int32(alphabet[cur]))
		}
		g.b.WriteString("\n")
	}
	g.b.WriteString("sdata_end:\n        .word 0\n")
}

func (g *synthGen) emitMain() {
	g.b.WriteString("        .text\n")
	fmt.Fprintf(&g.b, "main:   la   s6, sdata\n")
	fmt.Fprintf(&g.b, "        li   s7, 0\n")
	fmt.Fprintf(&g.b, "        li   s5, %d\n", g.p.Iters)
	g.b.WriteString("m_loop:\n")
	for _, root := range g.byLayer[0] {
		fmt.Fprintf(&g.b, "        li   a0, %d\n", g.p.Depth)
		fmt.Fprintf(&g.b, "        jal  f%d\n", root)
	}
	g.b.WriteString(`        out  s7
        addi s5, s5, -1
        bnez s5, m_loop
        halt
`)
}

// nextWord emits the data-cursor load into t0 with wraparound.
func (g *synthGen) nextWord(id string) {
	fmt.Fprintf(&g.b, `        lw   t0, 0(s6)
        addi s6, s6, 4
        la   t9, sdata_end
        blt  s6, t9, %[1]s_nw
        la   s6, sdata
%[1]s_nw:
`, id)
}

func (g *synthGen) emitFunc(fn int) {
	id := fmt.Sprintf("f%d", fn)
	fmt.Fprintf(&g.b, "\n%s:\n", id)
	g.b.WriteString(`        addi sp, sp, -12
        sw   ra, 0(sp)
        sw   s0, 4(sp)
        move s0, a0
`)
	g.nextWord(id)
	g.b.WriteString("        sw   t0, 8(sp)\n")

	nblocks := g.p.Blocks - 1 + g.rng.Intn(3)
	for b := 0; b < nblocks; b++ {
		g.emitBlock(fmt.Sprintf("%s_b%d", id, b), b)
	}
	g.emitCalls(fn, id)

	g.b.WriteString(`        lw   ra, 0(sp)
        lw   s0, 4(sp)
        addi sp, sp, 12
        ret
`)
}

func (g *synthGen) emitBlock(id string, b int) {
	sh := (b*5 + g.rng.Intn(4)) % 27
	switch g.rng.Intn(4) {
	case 0: // diamond
		c1, c2 := g.rng.Intn(100)+1, g.rng.Intn(100)+1
		fmt.Fprintf(&g.b, `        srl  t2, t0, %d
        andi t2, t2, 1
        beqz t2, %[2]s_e
        addi s7, s7, %[3]d
        j    %[2]s_x
%[2]s_e:
        addi s7, s7, %[4]d
        xor  s7, s7, t0
%[2]s_x:
`, sh, id, c1, c2)
	case 1: // three-arm compare chain
		c1, c2, c3 := g.rng.Intn(50)+1, g.rng.Intn(50)+1, g.rng.Intn(50)+1
		fmt.Fprintf(&g.b, `        srl  t2, t0, %d
        andi t2, t2, 7
        li   t3, 3
        blt  t2, t3, %[2]s_a
        li   t3, 6
        blt  t2, t3, %[2]s_b
        addi s7, s7, %[3]d
        j    %[2]s_x
%[2]s_a:
        addi s7, s7, %[4]d
        j    %[2]s_x
%[2]s_b:
        addi s7, s7, %[5]d
%[2]s_x:
`, sh, id, c1, c2, c3)
	case 2: // data-dependent small loop
		fmt.Fprintf(&g.b, `        srl  t2, t0, %d
        andi t2, t2, 7
%[2]s_l:
        beqz t2, %[2]s_x
        addi s7, s7, 1
        addi t2, t2, -1
        j    %[2]s_l
%[2]s_x:
`, sh, id)
	case 3: // four-way jump-table switch (indirect jump)
		fmt.Fprintf(&g.b, `        srl  t2, t0, %d
        andi t2, t2, 3
        sll  t2, t2, 2
        la   t3, jt_%[2]s
        add  t3, t3, t2
        lw   t3, 0(t3)
        jr   t3
`, sh, id)
		for c := 0; c < 4; c++ {
			fmt.Fprintf(&g.b, "%s_c%d:\n        addi s7, s7, %d\n        j    %s_x\n",
				id, c, g.rng.Intn(200)+1, id)
		}
		fmt.Fprintf(&g.b, "%s_x:\n", id)
		// Jump tables live in .data; switch back to .text afterwards.
		fmt.Fprintf(&g.b, "        .data\njt_%[1]s: .word %[1]s_c0, %[1]s_c1, %[1]s_c2, %[1]s_c3\n        .text\n", id)
	}
}

func (g *synthGen) emitCalls(fn int, id string) {
	layer := g.layer[fn]
	last := layer == g.p.Layers-1
	if last && !g.p.Recurse {
		return
	}
	if last && g.p.Recurse {
		// Tree recursion: always recurse once, conditionally twice.
		bit := 1 << uint(g.rng.Intn(8))
		fmt.Fprintf(&g.b, `        blez s0, %[1]s_nr
        addi a0, s0, -1
        jal  %[1]s
        lw   t2, 8(sp)
        andi t2, t2, %[2]d
        beqz t2, %[1]s_nr
        addi a0, s0, -1
        jal  %[1]s
%[1]s_nr:
`, id, bit)
		return
	}
	next := g.byLayer[layer+1]
	a := next[g.rng.Intn(len(next))]
	bcallee := next[g.rng.Intn(len(next))]
	bit := 1 << uint(g.rng.Intn(8))
	fmt.Fprintf(&g.b, `        blez s0, %[1]s_nc
        lw   t2, 8(sp)
        andi t2, t2, %[2]d
        addi a0, s0, -1
        beqz t2, %[1]s_cb
        jal  f%[3]d
        j    %[1]s_nc
%[1]s_cb:
        jal  f%[4]d
%[1]s_nc:
`, id, bit, a, bcallee)
	// Some functions make a second, unconditional call.
	if g.rng.Intn(2) == 0 {
		c := next[g.rng.Intn(len(next))]
		fmt.Fprintf(&g.b, `        blez s0, %[1]s_nc2
        addi a0, s0, -1
        jal  f%[2]d
%[1]s_nc2:
`, id, c)
	}
}

func init() {
	register(&Workload{
		Name:       "gcc",
		PaperInput: "genrecog.i (SPECint95 126.gcc)",
		Description: "Generated program with a very large static footprint: " +
			"120 functions of data-driven branchy code in a 4-layer call " +
			"graph with jump-table switches.",
		source: func() string {
			return synthSource(SynthParams{
				Seed: 42, Funcs: 120, Layers: 4, Blocks: 6,
				Depth: 4, DataWords: 4096, Iters: 100000,
			})
		},
	})
	register(&Workload{
		Name:       "go",
		PaperInput: "2stone9.in (SPECint95 099.go)",
		Description: "Generated program with game-search character: deep " +
			"data-dependent decision chains and tree recursion at the leaves.",
		source: func() string {
			return synthSource(SynthParams{
				Seed: 7, Funcs: 48, Layers: 3, Blocks: 8, Recurse: true,
				Depth: 6, DataWords: 2048, Iters: 100000,
			})
		},
	})
}
