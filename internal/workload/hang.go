package workload

import "sync"

// HangName is the name of the deliberately hanging synthetic workload.
const HangName = "hang"

var hangOnce sync.Once

// Hang registers (on first call) and returns the deliberately hanging
// synthetic workload: its program generator blocks forever, so any
// cell that runs it exercises the harness's deadline watchdog. It is
// NOT part of All() unless Hang has been called — callers opt in by
// naming it (e.g. `ntp -workloads compress,hang`).
//
// The goroutine that first touches the workload leaks (parked on a
// channel that is never written); that is the point — the harness must
// survive a cell that never comes back.
func Hang() *Workload {
	hangOnce.Do(func() {
		register(&Workload{
			Name:        HangName,
			PaperInput:  "n/a (synthetic)",
			Description: "synthetic workload whose program generation blocks forever; exercises harness deadlines",
			source: func() string {
				select {} // block forever, without burning CPU
			},
		})
	})
	w, _ := ByName(HangName)
	return w
}
