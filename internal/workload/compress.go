package workload

import "fmt"

// compressSource emits the LZW compression benchmark. The input stream
// is produced by a run-structured generator (about 5/8 of bytes repeat
// the previous byte, the rest draw a fresh symbol from a 32-symbol
// alphabet), which gives the compressor realistic hash-probe and
// dictionary-reset behaviour.
//
// Per iteration the program compresses inputLen bytes with a 4096-code
// LZW dictionary held in an open-addressed hash table, and emits a
// checksum of the code stream (sum' = sum*31 + code).
func compressSource(iters, inputLen int) string {
	return fmt.Sprintf(`
# compress: LZW compression kernel (SPECint95 `+"`compress`"+` substitute).
        .data
hkeys:  .space 32768            # 8192-slot open-addressed hash: keys
hcodes: .space 32768            #                                 codes
        .text
main:   li   s7, %d             # outer iterations
iter:
        # --- clear dictionary: keys <- -1, next_code <- 256 ---
        la   t0, hkeys
        li   t1, 8192
        li   t2, -1
clr:    sw   t2, 0(t0)
        addi t0, t0, 4
        addi t1, t1, -1
        bnez t1, clr
        li   s0, 256            # next_code

        # --- seed the input generator with the iteration number ---
        li   t0, 0x9E3779B1
        mul  s1, s7, t0
        addi s1, s1, 12345      # s1 = generator state
        li   s2, 0              # s2 = previous byte (run source)

        jal  nextbyte
        move s3, v0             # s3 = prefix code
        li   s4, %d             # bytes remaining
        li   s5, 0              # checksum

loop:   jal  nextbyte
        move s6, v0             # s6 = next char
        sll  t0, s3, 8
        or   t0, t0, s6         # t0 = key = prefix<<8 | char
        li   t1, 0x9E3779B1
        mul  t1, t0, t1
        srl  t1, t1, 19
        andi t1, t1, 8191       # t1 = hash slot
probe:  sll  t2, t1, 2
        la   t3, hkeys
        add  t3, t3, t2
        lw   t4, 0(t3)
        li   t5, -1
        beq  t4, t5, miss       # empty slot: new string
        beq  t4, t0, hit        # found (prefix,char)
        addi t1, t1, 1
        andi t1, t1, 8191
        j    probe

hit:    la   t3, hcodes
        add  t3, t3, t2
        lw   s3, 0(t3)          # prefix = dictionary code
        j    next

miss:   # emit prefix code into the checksum
        li   t6, 31
        mul  s5, s5, t6
        add  s5, s5, s3
        # insert key -> next_code at the probed slot
        sw   t0, 0(t3)
        la   t7, hcodes
        add  t7, t7, t2
        sw   s0, 0(t7)
        addi s0, s0, 1
        move s3, s6             # prefix = char
        li   t6, 4096
        blt  s0, t6, next
        # dictionary full: reset
        la   t6, hkeys
        li   t7, 8192
        li   t4, -1
rst:    sw   t4, 0(t6)
        addi t6, t6, 4
        addi t7, t7, -1
        bnez t7, rst
        li   s0, 256

next:   addi s4, s4, -1
        bnez s4, loop

        # emit the final prefix and the iteration checksum
        li   t6, 31
        mul  s5, s5, t6
        add  s5, s5, s3
        out  s5
        addi s7, s7, -1
        bnez s7, iter
        halt

# nextbyte: v0 <- next input byte. State: s1 = LCG, s2 = previous byte.
# With probability 13/16 the previous byte repeats (runs); otherwise a
# fresh symbol from a 16-symbol alphabet is drawn.
nextbyte:
        li   t8, 1103515245
        mul  s1, s1, t8
        addi s1, s1, 12345
        srl  t8, s1, 16
        andi t9, t8, 15
        li   at, 13
        bge  t9, at, nb_new
        bnez s2, nb_run
nb_new: srl  t9, t8, 4
        andi t9, t9, 15
        move s2, t9
        move v0, t9
        ret
nb_run: move v0, s2
        ret
`, iters, inputLen-1)
}

// compressRef is the Go reference implementation of exactly the same
// algorithm, used by tests to validate the assembly program end to end.
func compressRef(iters, inputLen int) []uint32 {
	var outs []uint32
	for it := uint32(iters); it >= 1; it-- {
		keys := make([]int32, 8192)
		for i := range keys {
			keys[i] = -1
		}
		codes := make([]uint32, 8192)
		nextCode := uint32(256)

		state := it*0x9E3779B1 + 12345
		prevb := uint32(0)
		nextbyte := func() uint32 {
			state = state*1103515245 + 12345
			r := state >> 16
			if r&15 < 13 && prevb != 0 {
				return prevb
			}
			b := (r >> 4) & 15
			prevb = b
			return b
		}

		prefix := nextbyte()
		var sum uint32
		for n := inputLen - 1; n > 0; n-- {
			c := nextbyte()
			key := prefix<<8 | c
			slot := (key * 0x9E3779B1) >> 19 & 8191
			for {
				if keys[slot] == -1 {
					sum = sum*31 + prefix
					keys[slot] = int32(key)
					codes[slot] = nextCode
					nextCode++
					prefix = c
					if nextCode == 4096 {
						for i := range keys {
							keys[i] = -1
						}
						nextCode = 256
					}
					break
				}
				if uint32(keys[slot]) == key {
					prefix = codes[slot]
					break
				}
				slot = (slot + 1) & 8191
			}
		}
		sum = sum*31 + prefix
		outs = append(outs, sum)
	}
	return outs
}

func init() {
	register(&Workload{
		Name:       "compress",
		PaperInput: "bigtest.in (SPECint95 129.compress)",
		Description: "LZW compression with an open-addressed hash dictionary " +
			"over a run-structured synthetic source; small static footprint.",
		source: func() string { return compressSource(100000, 6000) },
	})
}
