package workload

import (
	"fmt"
	"math"
	"strings"
)

// jpegCoeff returns the 8x8 integer transform matrix: a scaled DCT-II
// basis rounded to integers, as a JPEG-style codec would use in
// fixed-point arithmetic.
func jpegCoeff() [64]int32 {
	var c [64]int32
	for i := 0; i < 8; i++ {
		for k := 0; k < 8; k++ {
			v := 8 * math.Cos(float64(2*k+1)*float64(i)*math.Pi/16)
			c[i*8+k] = int32(math.Round(v))
		}
	}
	return c
}

// jpegQuant returns a quantisation table with the usual low-frequency
// emphasis.
func jpegQuant() [64]int32 {
	var q [64]int32
	for i := 0; i < 8; i++ {
		for j := 0; j < 8; j++ {
			q[i*8+j] = int32(8 + 4*(i+j))
		}
	}
	return q
}

// jpegZigzag returns the standard zig-zag scan order.
func jpegZigzag() [64]int32 {
	var zz [64]int32
	i, j, n := 0, 0, 0
	up := true
	for n < 64 {
		zz[n] = int32(i*8 + j)
		n++
		if up {
			switch {
			case j == 7:
				i++
				up = false
			case i == 0:
				j++
				up = false
			default:
				i--
				j++
			}
		} else {
			switch {
			case i == 7:
				j++
				up = true
			case j == 0:
				i++
				up = true
			default:
				i++
				j--
			}
		}
	}
	return zz
}

func wordList(vals []int32) string {
	var b strings.Builder
	for i, v := range vals {
		if i%8 == 0 {
			if i > 0 {
				b.WriteString("\n")
			}
			b.WriteString("        .word ")
		} else {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%d", v)
	}
	return b.String()
}

// unrolledMACs emits eight multiply-accumulate steps for the unrolled
// DCT inner product: step k loads from t6+aStride*k and t7+bStride*k,
// multiplies into t8 and accumulates into t3.
func unrolledMACs(aStride, bStride int) string {
	var b strings.Builder
	for k := 0; k < 8; k++ {
		fmt.Fprintf(&b, "        lw   t8, %d(t6)\n", aStride*k)
		fmt.Fprintf(&b, "        lw   t9, %d(t7)\n", bStride*k)
		b.WriteString("        mul  t8, t8, t9\n")
		b.WriteString("        add  t3, t3, t8\n")
	}
	return b.String()
}

// jpegArchetypes returns 12 base 8x8 pixel blocks (random walks with
// small steps). Real images are dominated by recurring smooth content;
// drawing blocks from a small archetype set plus a per-block DC offset
// reproduces that: the AC coefficient pattern (and hence the RLE
// control flow) repeats per archetype, while the DC varies.
func jpegArchetypes() [12][64]int32 {
	var arch [12][64]int32
	state := uint32(0xBEEF)
	for a := range arch {
		prev := int32(100)
		for i := 0; i < 64; i++ {
			state = state*1103515245 + 12345
			prev += int32(state>>16&15) - 7
			if prev < 0 {
				prev = 0
			}
			if prev > 199 {
				prev = 199
			}
			arch[a][i] = prev
		}
	}
	return arch
}

// jpegSource emits the block-transform benchmark: per iteration it
// selects `blocks` 8x8 pixel blocks (archetype + DC offset), applies
// the separable integer transform (tmp = C*blk, out = tmp*C^T),
// quantises, and zig-zag run-length encodes into a checksum.
func jpegSource(iters, blocks int) string {
	coeff := jpegCoeff()
	quant := jpegQuant()
	zz := jpegZigzag()
	arch := jpegArchetypes()
	var archWords []int32
	for _, a := range arch {
		archWords = append(archWords, a[:]...)
	}
	// Scale zig-zag indices to byte offsets at generation time.
	var zzb [64]int32
	for i, v := range zz {
		zzb[i] = v * 4
	}
	return fmt.Sprintf(`
# jpeg: 8x8 block transform / quantise / zig-zag RLE kernel
# (SPECint95 132.ijpeg substitute).
        .data
coef:
%[1]s
qtab:
%[2]s
zig:
%[3]s
arch:
%[4]s
blk:    .space 256
tmp:    .space 256
outb:   .space 256
        .text
main:   li   s7, %[5]d          # outer iterations
iter:   li   s6, %[6]d          # blocks per iteration
        li   s5, 0              # checksum
        li   t0, 0x41C64E6D
        mul  s4, s7, t0
        addi s4, s4, 1013       # pixel generator state
blkloop:
        jal  doblock
        addi s6, s6, -1
        bnez s6, blkloop
        out  s5
        addi s7, s7, -1
        bnez s7, iter
        halt

# doblock: process one 8x8 block through the four pipeline stages.
doblock:
        addi sp, sp, -4
        sw   ra, 0(sp)
        jal  dofill
        jal  pass1
        jal  pass2
        jal  dozz
        lw   ra, 0(sp)
        addi sp, sp, 4
        ret

# dofill: pick an archetype and DC offset; fill the block.
dofill:
        li   t3, 1103515245
        mul  s4, s4, t3
        addi s4, s4, 12345
        srl  t3, s4, 16
        li   t4, 12
        rem  t4, t3, t4         # archetype index
        srl  t5, t3, 8
        andi t5, t5, 31         # DC offset 0..31
        sll  t4, t4, 8          # archetype byte offset (64 words)
        la   t6, arch
        add  t6, t6, t4         # source pointer
        la   t0, blk
        li   t1, 16             # 16 iterations of 4 pixels
fill:   lw   t2, 0(t6)
        add  t2, t2, t5
        sw   t2, 0(t0)
        lw   t2, 4(t6)
        add  t2, t2, t5
        sw   t2, 4(t0)
        lw   t2, 8(t6)
        add  t2, t2, t5
        sw   t2, 8(t0)
        lw   t2, 12(t6)
        add  t2, t2, t5
        sw   t2, 12(t0)
        addi t6, t6, 16
        addi t0, t0, 16
        addi t1, t1, -1
        nop                     # de-phase the loop body (17 instrs)
        bnez t1, fill

        ret

# pass1: tmp = C * blk (tmp[i][j] = sum_k C[i][k]*blk[k][j]);
# inner k-loop fully unrolled, as in ijpeg's fast DCT.
pass1:  li   t0, 0              # i
rowi:   li   t1, 0              # j
rowj:   li   t3, 0              # acc
        sll  t4, t0, 5          # i*32
        la   t6, coef
        add  t6, t6, t4         # &C[i][0]
        sll  t5, t1, 2          # j*4
        la   t7, blk
        add  t7, t7, t5         # &blk[0][j]
%[7]s        sra  t3, t3, 3          # renormalise
        sll  t4, t0, 5
        sll  t5, t1, 2
        add  t4, t4, t5
        la   t6, tmp
        add  t6, t6, t4
        sw   t3, 0(t6)
        nop                     # de-phase the j body (53 instrs)
        addi t1, t1, 1
        li   t8, 8
        blt  t1, t8, rowj
        addi t0, t0, 1
        blt  t0, t8, rowi

        ret

# pass2: outb = tmp * C^T (outb[i][j] = sum_k tmp[i][k]*C[j][k]),
# quantised in place.
pass2:  li   t0, 0
coli:   li   t1, 0
colj:   li   t3, 0
        sll  t4, t0, 5
        la   t6, tmp
        add  t6, t6, t4         # &tmp[i][0]
        sll  t5, t1, 5
        la   t7, coef
        add  t7, t7, t5         # &C[j][0]
%[8]s        sra  t3, t3, 6
        sll  t4, t0, 5
        sll  t5, t1, 2
        add  t4, t4, t5
        la   t6, outb
        add  t6, t6, t4
        # --- quantise in place ---
        la   t7, qtab
        add  t7, t7, t4
        lw   t7, 0(t7)
        div  t3, t3, t7
        sw   t3, 0(t6)
        nop                     # de-phase the j body (53 instrs)
        addi t1, t1, 1
        li   t8, 8
        blt  t1, t8, colj
        addi t0, t0, 1
        blt  t0, t8, coli

        ret

# dozz: zig-zag RLE of the quantised block into the checksum.
dozz:   li   t0, 0              # scan position
        li   t1, 0              # zero-run length
zzloop: sll  t2, t0, 2
        la   t3, zig
        add  t3, t3, t2
        lw   t3, 0(t3)          # byte offset of coefficient
        la   t4, outb
        add  t4, t4, t3
        lw   t4, 0(t4)
        beqz t4, zrun
        li   t5, 31
        mul  s5, s5, t5
        add  s5, s5, t4
        add  s5, s5, t1         # fold the run length in
        li   t1, 0
        j    zznext
zrun:   addi t1, t1, 1
zznext: addi t0, t0, 1
        li   t5, 64
        blt  t0, t5, zzloop
        add  s5, s5, t1         # trailing run
        ret
`, wordList(coeff[:]), wordList(quant[:]), wordList(zzb[:]), wordList(archWords),
		iters, blocks, unrolledMACs(4, 32), unrolledMACs(4, 4))
}

// jpegRef is the Go reference implementation matching jpegSource.
func jpegRef(iters, blocks int) []uint32 {
	coeff := jpegCoeff()
	quant := jpegQuant()
	zz := jpegZigzag()
	arch := jpegArchetypes()
	var outs []uint32
	for it := uint32(iters); it >= 1; it-- {
		var sum uint32
		state := it*0x41C64E6D + 1013
		for b := 0; b < blocks; b++ {
			var blk, tmp, out [64]int32
			state = state*1103515245 + 12345
			r := state >> 16
			a := r % 12
			dc := int32(r >> 8 & 31)
			for i := 0; i < 64; i++ {
				blk[i] = arch[a][i] + dc
			}
			for i := 0; i < 8; i++ {
				for j := 0; j < 8; j++ {
					var acc int32
					for k := 0; k < 8; k++ {
						acc += coeff[i*8+k] * blk[k*8+j]
					}
					tmp[i*8+j] = acc >> 3
				}
			}
			for i := 0; i < 8; i++ {
				for j := 0; j < 8; j++ {
					var acc int32
					for k := 0; k < 8; k++ {
						acc += tmp[i*8+k] * coeff[j*8+k]
					}
					acc >>= 6
					if q := quant[i*8+j]; q != 0 {
						acc /= q
					} else {
						acc = 0
					}
					out[i*8+j] = acc
				}
			}
			run := uint32(0)
			for n := 0; n < 64; n++ {
				v := out[zz[n]]
				if v == 0 {
					run++
					continue
				}
				sum = sum*31 + uint32(v) + run
				run = 0
			}
			sum += run
		}
		outs = append(outs, sum)
	}
	return outs
}

func init() {
	register(&Workload{
		Name:       "jpeg",
		PaperInput: "vigo.ppm (SPECint95 132.ijpeg)",
		Description: "8x8 integer block transform, quantisation and zig-zag " +
			"run-length coding; loop-dominated with a small static footprint.",
		source: func() string { return jpegSource(100000, 40) },
	})
}
