package workload

import (
	"fmt"
	"strings"
)

// VM opcodes interpreted by the mksim workload. Each bytecode
// instruction is two words: (opcode, argument).
const (
	vHALT = iota
	vPUSH
	vADD
	vSUB
	vMUL
	vDIV2
	vDUP
	vDROP
	vSWAP
	vJMP
	vJZ
	vJNZ
	vLT
	vLOADG
	vSTOREG
	vOUT
	vAND1
	vNumOps
)

// vmAsm is a tiny bytecode assembler with labels.
type vmAsm struct {
	words  []int32
	labels map[string]int32
	fixups map[int]string // word index of argument -> label
}

func newVMAsm() *vmAsm {
	return &vmAsm{labels: map[string]int32{}, fixups: map[int]string{}}
}

func (a *vmAsm) emit(op, arg int32) {
	a.words = append(a.words, op, arg)
}

func (a *vmAsm) emitL(op int32, label string) {
	a.fixups[len(a.words)+1] = label
	a.words = append(a.words, op, 0)
}

func (a *vmAsm) label(name string) {
	a.labels[name] = int32(len(a.words) / 2) // instruction index
}

func (a *vmAsm) finish() []int32 {
	for idx, name := range a.fixups {
		target, ok := a.labels[name]
		if !ok {
			panic(fmt.Sprintf("workload: vm label %q undefined", name))
		}
		a.words[idx] = target
	}
	return a.words
}

// collatzBytecode builds a VM program that sums the Collatz step counts
// of 1..n and emits the total.
//
// Globals: 0 = i, 1 = total, 2 = n.
func collatzBytecode(n int32) []int32 {
	a := newVMAsm()
	a.emit(vPUSH, 1)
	a.emit(vSTOREG, 0) // i = 1
	a.label("outer")
	a.emit(vLOADG, 0)
	a.emit(vPUSH, n+1)
	a.emit(vLT, 0) // i < n+1
	a.emitL(vJZ, "end")
	a.emit(vLOADG, 0)
	a.emit(vSTOREG, 2) // cur = i
	a.label("inner")
	a.emit(vLOADG, 2)
	a.emit(vPUSH, 1)
	a.emit(vSUB, 0)
	a.emitL(vJZ, "done") // while cur != 1
	a.emit(vLOADG, 2)
	a.emit(vAND1, 0)
	a.emitL(vJZ, "even")
	a.emit(vLOADG, 2) // odd: cur = 3*cur + 1
	a.emit(vPUSH, 3)
	a.emit(vMUL, 0)
	a.emit(vPUSH, 1)
	a.emit(vADD, 0)
	a.emit(vSTOREG, 2)
	a.emitL(vJMP, "step")
	a.label("even")
	a.emit(vLOADG, 2) // even: cur = cur / 2
	a.emit(vDIV2, 0)
	a.emit(vSTOREG, 2)
	a.label("step")
	a.emit(vLOADG, 1) // total++
	a.emit(vPUSH, 1)
	a.emit(vADD, 0)
	a.emit(vSTOREG, 1)
	a.emitL(vJMP, "inner")
	a.label("done")
	a.emit(vLOADG, 0) // i++
	a.emit(vPUSH, 1)
	a.emit(vADD, 0)
	a.emit(vSTOREG, 0)
	a.emitL(vJMP, "outer")
	a.label("end")
	a.emit(vLOADG, 1)
	a.emit(vOUT, 0)
	a.emit(vHALT, 0)
	return a.finish()
}

// mksimSource emits a stack-machine bytecode interpreter with
// jump-table dispatch (an indirect jump per interpreted instruction),
// running the Collatz bytecode. This mirrors m88ksim's character:
// an interpreter loop with large dispatch fan-out.
func mksimSource(iters int, code []int32) string {
	return fmt.Sprintf(`
# mksim: bytecode VM interpreter with jump-table dispatch
# (SPECint95 124.m88ksim substitute).
        .data
vmjt:   .word op_halt, op_push, op_add, op_sub, op_mul, op_div2
        .word op_dup, op_drop, op_swap, op_jmp, op_jz, op_jnz
        .word op_lt, op_loadg, op_storeg, op_out, op_and1
code:
%s
vstack: .space 4096
globals: .space 64
        .text
main:   li   s7, %d             # outer iterations
iter:   la   s0, code           # code base
        li   s1, 0              # VM pc (instruction index)
        la   s2, vstack         # VM operand stack pointer (grows up)
        la   s3, globals
        sw   zero, 0(s3)
        sw   zero, 4(s3)
        sw   zero, 8(s3)
        sw   zero, 12(s3)

vmloop: sll  t0, s1, 3          # fetch (op, arg)
        add  t0, t0, s0
        lw   t1, 0(t0)
        lw   t2, 4(t0)
        addi s1, s1, 1
        sll  t3, t1, 2          # dispatch through the jump table
        la   t4, vmjt
        add  t4, t4, t3
        lw   t4, 0(t4)
        jr   t4

op_push:
        sw   t2, 0(s2)
        addi s2, s2, 4
        j    vmloop
op_add: lw   t5, -4(s2)
        lw   t6, -8(s2)
        add  t5, t6, t5
        sw   t5, -8(s2)
        addi s2, s2, -4
        j    vmloop
op_sub: lw   t5, -4(s2)
        lw   t6, -8(s2)
        sub  t5, t6, t5
        sw   t5, -8(s2)
        addi s2, s2, -4
        j    vmloop
op_mul: lw   t5, -4(s2)
        lw   t6, -8(s2)
        mul  t5, t6, t5
        sw   t5, -8(s2)
        addi s2, s2, -4
        j    vmloop
op_div2:
        lw   t5, -4(s2)
        srl  t5, t5, 1
        sw   t5, -4(s2)
        j    vmloop
op_dup: lw   t5, -4(s2)
        sw   t5, 0(s2)
        addi s2, s2, 4
        j    vmloop
op_drop:
        addi s2, s2, -4
        j    vmloop
op_swap:
        lw   t5, -4(s2)
        lw   t6, -8(s2)
        sw   t5, -8(s2)
        sw   t6, -4(s2)
        j    vmloop
op_jmp: move s1, t2
        j    vmloop
op_jz:  lw   t5, -4(s2)
        addi s2, s2, -4
        bnez t5, vmloop
        move s1, t2
        j    vmloop
op_jnz: lw   t5, -4(s2)
        addi s2, s2, -4
        beqz t5, vmloop
        move s1, t2
        j    vmloop
op_lt:  lw   t5, -4(s2)         # b
        lw   t6, -8(s2)         # a
        slt  t5, t6, t5
        sw   t5, -8(s2)
        addi s2, s2, -4
        j    vmloop
op_loadg:
        sll  t5, t2, 2
        add  t5, t5, s3
        lw   t5, 0(t5)
        sw   t5, 0(s2)
        addi s2, s2, 4
        j    vmloop
op_storeg:
        sll  t5, t2, 2
        add  t5, t5, s3
        lw   t6, -4(s2)
        addi s2, s2, -4
        sw   t6, 0(t5)
        j    vmloop
op_out: lw   t5, -4(s2)
        addi s2, s2, -4
        out  t5
        j    vmloop
op_and1:
        lw   t5, -4(s2)
        andi t5, t5, 1
        sw   t5, -4(s2)
        j    vmloop
op_halt:
        addi s7, s7, -1
        bnez s7, iter
        halt
`, bytecodeWords(code), iters)
}

func bytecodeWords(code []int32) string {
	var b strings.Builder
	for i := 0; i < len(code); i += 8 {
		b.WriteString("        .word ")
		end := i + 8
		if end > len(code) {
			end = len(code)
		}
		for j := i; j < end; j++ {
			if j > i {
				b.WriteString(", ")
			}
			fmt.Fprintf(&b, "%d", code[j])
		}
		b.WriteString("\n")
	}
	return b.String()
}

// collatzTotal is the reference result: total Collatz steps for 1..n,
// matching the VM program's semantics (cur>>1 on even, 3cur+1 on odd).
func collatzTotal(n int) uint32 {
	var total uint32
	for i := 1; i <= n; i++ {
		cur := uint32(i)
		for cur != 1 {
			if cur&1 == 1 {
				cur = 3*cur + 1
			} else {
				cur >>= 1
			}
			total++
		}
	}
	return total
}

func init() {
	register(&Workload{
		Name:       "mksim",
		PaperInput: "ctl.in (SPECint95 124.m88ksim)",
		Description: "Stack-machine bytecode interpreter with jump-table " +
			"dispatch (one indirect jump per interpreted instruction), running " +
			"a Collatz workload.",
		source: func() string { return mksimSource(100000, collatzBytecode(150)) },
	})
}
