package workload

import (
	"fmt"
	"math/rand"
	"strings"
)

// The workload zoo: seed-deterministic synthetic generators whose
// parameters dial the control-flow statistics that decide next-trace
// predictability — path entropy, trace-transition rate, indirect-target
// spread, phase behaviour. Where the six canonical benchmarks ask "how
// well does the predictor do on SPECint-like code?", the zoo asks "where
// does it break?": each generator targets one failure mode named by the
// workload-characterization literature (taken/transition-rate classes;
// Lin & Tarsa's hard-to-predict branches; Bullseye-style wild
// data-dependent branches).
//
//	wild     — every branch tests a bit of an in-program xorshift32
//	           stream: maximal path entropy, unlearnable by any history
//	           depth (the Bullseye wild-branch storm).
//	storm    — indirect-target storm: a 16-way jump table indexed by the
//	           xorshift stream, so every dispatch ends a trace at one of
//	           16 uniformly random successor PCs.
//	phase    — phase-shifting loops: each phase is fully deterministic
//	           (learnable), but the phase itself is redrawn at random
//	           every few iterations, repeatedly invalidating what the
//	           tables just learned and stressing cross-phase aliasing.
//	band-lo  — table-driven branches at a low-entropy band (sticky
//	band-hi    Markov pattern, little noise) and a high-entropy band
//	           (fast-mixing pattern, heavy noise): the tunable dial
//	           between compress-like and wild-like behaviour.
//
// All zoo members are registered at init as first-class workloads
// (Synthetic: true): ByName finds them, `ntp -workloads`, the harness,
// stream capture, fault injection and loadgen accept them with no extra
// wiring; only All() — the paper's canonical six — excludes them.
// Constructors (NewWild etc.) build unregistered instances for
// parameter sweeps; Workload.Params carries the full parameterization
// into stream-cache keys so same-name/different-seed instances never
// share a cached stream.

// xorshift32 is the in-program PRNG every data-dependent zoo generator
// uses: three shift-xor steps on a nonzero 32-bit state. Branching on
// its bits is genuinely data-dependent — there is no table to memorize
// and the period (2^32-1) exceeds any run length.
func (g *zooGen) xorshift() {
	g.b.WriteString(`        sll  t2, s1, 13
        xor  s1, s1, t2
        srl  t2, s1, 17
        xor  s1, s1, t2
        sll  t2, s1, 5
        xor  s1, s1, t2
`)
}

type zooGen struct {
	rng *rand.Rand
	b   strings.Builder
}

func newZooGen(seed int64) *zooGen {
	return &zooGen{rng: rand.New(rand.NewSource(seed))}
}

// state0 derives a nonzero xorshift seed from the generator rng.
func (g *zooGen) state0() uint32 {
	return g.rng.Uint32() | 1
}

// emitOutGated emits the once-every-1024-iterations checksum output
// (counter in reg), so zoo programs produce output at the same cadence
// as the benchmarks without flooding the simulator's output buffer.
func (g *zooGen) emitOutGated(label, reg string) {
	fmt.Fprintf(&g.b, `        andi t2, %[2]s, 1023
        bnez t2, %[1]s_oskip
        out  s7
%[1]s_oskip:
`, label, reg)
}

// WildParams parameterize the wild-branch generator.
type WildParams struct {
	Seed   int64
	Blocks int // branch blocks per iteration (default 12)
	// WildEvery makes every WildEvery-th block wild (PRNG-driven) and
	// the rest deterministic (short periodic pattern on the iteration
	// counter): 1 = all wild (default), larger values dilute the storm
	// toward learnable code.
	WildEvery int
	Iters     int // outer iterations (default 4M; programs run under -len)
}

func (p *WildParams) defaults() {
	if p.Blocks == 0 {
		p.Blocks = 12
	}
	if p.WildEvery == 0 {
		p.WildEvery = 1
	}
	if p.Iters == 0 {
		p.Iters = 4_000_000
	}
}

func wildSource(p WildParams) string {
	p.defaults()
	g := newZooGen(p.Seed)
	fmt.Fprintf(&g.b, "# zoo wild: seed=%d blocks=%d every=%d\n", p.Seed, p.Blocks, p.WildEvery)
	g.b.WriteString("        .text\n")
	fmt.Fprintf(&g.b, "main:   li   s1, %d\n", int32(g.state0()))
	fmt.Fprintf(&g.b, "        li   s5, %d\n", p.Iters)
	g.b.WriteString("        li   s4, 0\nw_loop:\n")
	g.xorshift()
	for b := 0; b < p.Blocks; b++ {
		id := fmt.Sprintf("wb%d", b)
		if b%p.WildEvery == 0 {
			// Wild: branch on a fresh PRNG bit; 50/50, uncorrelated
			// with any history the predictor can hold.
			c1, c2 := g.rng.Intn(100)+1, g.rng.Intn(100)+1
			fmt.Fprintf(&g.b, `        srl  t2, s1, %d
        andi t2, t2, 1
        beqz t2, %[2]s_e
        addi s7, s7, %[3]d
        j    %[2]s_x
%[2]s_e:
        addi s7, s7, %[4]d
        xor  s7, s7, s1
%[2]s_x:
`, b*7%27, id, c1, c2)
		} else {
			// Deterministic: short periodic pattern on the iteration
			// counter — the learnable dilution.
			fmt.Fprintf(&g.b, `        srl  t2, s4, %d
        andi t2, t2, 1
        beqz t2, %[2]s_x
        addi s7, s7, %[3]d
%[2]s_x:
`, g.rng.Intn(3), id, g.rng.Intn(100)+1)
		}
	}
	g.emitOutGated("w", "s4")
	g.b.WriteString(`        addi s4, s4, 1
        addi s5, s5, -1
        bnez s5, w_loop
        halt
`)
	return g.b.String()
}

// NewWild builds a wild-branch workload (unregistered; the default
// instance is registered at init under the name "wild").
func NewWild(name string, p WildParams) *Workload {
	p.defaults()
	return &Workload{
		Name:       name,
		PaperInput: "n/a (synthetic zoo)",
		Description: fmt.Sprintf("Bullseye-style wild data-dependent branches: %d blocks/iter "+
			"branching on xorshift32 bits (1 in %d wild) — maximal path entropy.", p.Blocks, p.WildEvery),
		Params:    fmt.Sprintf("wild/v1:seed=%d,blocks=%d,every=%d,iters=%d", p.Seed, p.Blocks, p.WildEvery, p.Iters),
		Synthetic: true,
		source:    func() string { return wildSource(p) },
	}
}

// StormParams parameterize the indirect-target storm generator.
type StormParams struct {
	Seed    int64
	Targets int // jump-table size, power of two (default 16)
	Iters   int
}

func (p *StormParams) defaults() {
	if p.Targets == 0 {
		p.Targets = 16
	}
	if p.Iters == 0 {
		p.Iters = 4_000_000
	}
}

func stormSource(p StormParams) string {
	p.defaults()
	g := newZooGen(p.Seed)
	fmt.Fprintf(&g.b, "# zoo storm: seed=%d targets=%d\n", p.Seed, p.Targets)
	g.b.WriteString("        .text\n")
	fmt.Fprintf(&g.b, "main:   li   s1, %d\n", int32(g.state0()))
	fmt.Fprintf(&g.b, "        li   s5, %d\n", p.Iters)
	g.b.WriteString("s_loop:\n")
	g.xorshift()
	// Uniformly random dispatch: the indirect jump ends its trace, so
	// the successor trace starts at one of Targets PCs with no
	// history-visible correlation — an indirect-target storm.
	fmt.Fprintf(&g.b, `        andi t2, s1, %d
        sll  t2, t2, 2
        la   t3, st_jt
        add  t3, t3, t2
        lw   t3, 0(t3)
        jr   t3
`, p.Targets-1)
	for c := 0; c < p.Targets; c++ {
		id := fmt.Sprintf("st_c%d", c)
		// Each handler does distinct work plus one wild branch, so the
		// handlers stay distinct static traces with internal entropy.
		fmt.Fprintf(&g.b, `%[1]s:
        addi s7, s7, %[2]d
        xor  s7, s7, s1
        srl  t2, s1, %[3]d
        andi t2, t2, 1
        beqz t2, %[1]s_x
        addi s7, s7, %[4]d
%[1]s_x:
        j    s_cont
`, id, g.rng.Intn(200)+1, (c*5+g.rng.Intn(4))%27, g.rng.Intn(100)+1)
	}
	g.b.WriteString("s_cont:\n")
	g.emitOutGated("s", "s5")
	g.b.WriteString(`        addi s5, s5, -1
        bnez s5, s_loop
        halt
        .data
st_jt:`)
	for c := 0; c < p.Targets; c++ {
		if c%8 == 0 {
			g.b.WriteString("\n        .word ")
		} else {
			g.b.WriteString(", ")
		}
		fmt.Fprintf(&g.b, "st_c%d", c)
	}
	g.b.WriteString("\n        .text\n")
	return g.b.String()
}

// NewStorm builds an indirect-target-storm workload (unregistered; the
// default instance is registered at init under the name "storm").
func NewStorm(name string, p StormParams) *Workload {
	p.defaults()
	return &Workload{
		Name:       name,
		PaperInput: "n/a (synthetic zoo)",
		Description: fmt.Sprintf("Indirect-target storm: a %d-way jump table indexed by "+
			"xorshift32 bits, every dispatch a trace break to a random successor.", p.Targets),
		Params:    fmt.Sprintf("storm/v1:seed=%d,targets=%d,iters=%d", p.Seed, p.Targets, p.Iters),
		Synthetic: true,
		source:    func() string { return stormSource(p) },
	}
}

// PhaseParams parameterize the phase-shifting-loop generator.
type PhaseParams struct {
	Seed   int64
	Phases int // distinct phase bodies, power of two (default 8)
	Span   int // iterations between random phase redraws (default 24)
	Iters  int
}

func (p *PhaseParams) defaults() {
	if p.Phases == 0 {
		p.Phases = 8
	}
	if p.Span == 0 {
		p.Span = 24
	}
	if p.Iters == 0 {
		p.Iters = 4_000_000
	}
}

func phaseSource(p PhaseParams) string {
	p.defaults()
	g := newZooGen(p.Seed)
	fmt.Fprintf(&g.b, "# zoo phase: seed=%d phases=%d span=%d\n", p.Seed, p.Phases, p.Span)
	g.b.WriteString("        .text\n")
	fmt.Fprintf(&g.b, "main:   li   s1, %d\n", int32(g.state0()))
	fmt.Fprintf(&g.b, "        li   s5, %d\n", p.Iters)
	g.b.WriteString(`        li   s4, 0
        li   s3, 0
p_loop:
        bnez s4, p_keep
`)
	// Redraw the phase (s3 = table byte offset) from the PRNG; within
	// the following Span iterations everything is deterministic and
	// learnable — then the rug is pulled again.
	g.xorshift()
	fmt.Fprintf(&g.b, `        andi s3, s1, %d
        sll  s3, s3, 2
        li   s4, %d
p_keep:
        addi s4, s4, -1
        la   t3, ph_jt
        add  t3, t3, s3
        lw   t3, 0(t3)
        jr   t3
`, p.Phases-1, p.Span)
	for c := 0; c < p.Phases; c++ {
		id := fmt.Sprintf("ph_c%d", c)
		trip := c%5 + 2
		// Phase body: fixed-trip loop plus a pattern branch on the
		// phase-local countdown — deterministic given the phase.
		fmt.Fprintf(&g.b, `%[1]s:
        li   t2, %[2]d
%[1]s_l:
        addi s7, s7, %[3]d
        addi t2, t2, -1
        bnez t2, %[1]s_l
        andi t2, s4, %[4]d
        beqz t2, %[1]s_s
        xor  s7, s7, s4
%[1]s_s:
        j    p_cont
`, id, trip, g.rng.Intn(200)+1, 1<<uint(g.rng.Intn(2)))
	}
	g.b.WriteString("p_cont:\n")
	g.emitOutGated("p", "s5")
	g.b.WriteString(`        addi s5, s5, -1
        bnez s5, p_loop
        halt
        .data
ph_jt:`)
	for c := 0; c < p.Phases; c++ {
		if c%8 == 0 {
			g.b.WriteString("\n        .word ")
		} else {
			g.b.WriteString(", ")
		}
		fmt.Fprintf(&g.b, "ph_c%d", c)
	}
	g.b.WriteString("\n        .text\n")
	return g.b.String()
}

// NewPhase builds a phase-shifting workload (unregistered; the default
// instance is registered at init under the name "phase").
func NewPhase(name string, p PhaseParams) *Workload {
	p.defaults()
	return &Workload{
		Name:       name,
		PaperInput: "n/a (synthetic zoo)",
		Description: fmt.Sprintf("Phase-shifting loops: %d deterministic phase bodies, the live "+
			"phase redrawn at random every %d iterations — learn, shift, repeat.", p.Phases, p.Span),
		Params:    fmt.Sprintf("phase/v1:seed=%d,phases=%d,span=%d,iters=%d", p.Seed, p.Phases, p.Span, p.Iters),
		Synthetic: true,
		source:    func() string { return phaseSource(p) },
	}
}

// BandParams parameterize the entropy-band generator: a data-table
// walker whose branch bits follow a sticky Markov pattern (FlipPct
// dials the trace-transition rate) corrupted by noise (NoisePct dials
// the path entropy). The two registered instances bracket the band:
// band-lo near the benchmarks, band-hi near wild.
type BandParams struct {
	Seed     int64
	Words    int // data table size (default 16384; large enough not to cycle within a run)
	Blocks   int // branch blocks per iteration = data bits tested per word (default 8)
	FlipPct  int // % chance per word the Markov pattern state resamples
	NoisePct int // % chance per tested bit it is replaced by pure noise
	Iters    int
}

func (p *BandParams) defaults() {
	if p.Words == 0 {
		p.Words = 16384
	}
	if p.Blocks == 0 {
		p.Blocks = 8
	}
	if p.Iters == 0 {
		p.Iters = 4_000_000
	}
}

func bandSource(p BandParams) string {
	p.defaults()
	g := newZooGen(p.Seed)
	fmt.Fprintf(&g.b, "# zoo band: seed=%d words=%d blocks=%d flip=%d%% noise=%d%%\n",
		p.Seed, p.Words, p.Blocks, p.FlipPct, p.NoisePct)
	g.b.WriteString("        .data\nbdata:\n")
	alphabet := make([]uint32, 8)
	for i := range alphabet {
		alphabet[i] = g.rng.Uint32()
	}
	cur := 0
	for i := 0; i < p.Words; i += 8 {
		g.b.WriteString("        .word ")
		for j := 0; j < 8 && i+j < p.Words; j++ {
			if j > 0 {
				g.b.WriteString(", ")
			}
			if g.rng.Intn(100) < p.FlipPct {
				cur = g.rng.Intn(len(alphabet))
			}
			w := alphabet[cur]
			for bit := 0; bit < p.Blocks; bit++ {
				if g.rng.Intn(100) < p.NoisePct {
					w ^= uint32(g.rng.Intn(2)) << uint(bit)
				}
			}
			fmt.Fprintf(&g.b, "%d", int32(w))
		}
		g.b.WriteString("\n")
	}
	g.b.WriteString("bdata_end:\n        .word 0\n        .text\n")
	fmt.Fprintf(&g.b, "main:   la   s6, bdata\n        li   s5, %d\n", p.Iters)
	g.b.WriteString(`b_loop:
        lw   t0, 0(s6)
        addi s6, s6, 4
        la   t9, bdata_end
        blt  s6, t9, b_nw
        la   s6, bdata
b_nw:
`)
	for b := 0; b < p.Blocks; b++ {
		id := fmt.Sprintf("bb%d", b)
		c1, c2 := g.rng.Intn(100)+1, g.rng.Intn(100)+1
		fmt.Fprintf(&g.b, `        srl  t2, t0, %d
        andi t2, t2, 1
        beqz t2, %[2]s_e
        addi s7, s7, %[3]d
        j    %[2]s_x
%[2]s_e:
        addi s7, s7, %[4]d
%[2]s_x:
`, b, id, c1, c2)
	}
	g.emitOutGated("b", "s5")
	g.b.WriteString(`        addi s5, s5, -1
        bnez s5, b_loop
        halt
`)
	return g.b.String()
}

// NewBand builds an entropy-band workload (unregistered; "band-lo" and
// "band-hi" instances are registered at init).
func NewBand(name string, p BandParams) *Workload {
	p.defaults()
	return &Workload{
		Name:       name,
		PaperInput: "n/a (synthetic zoo)",
		Description: fmt.Sprintf("Entropy-band table walker: sticky Markov branch pattern "+
			"(flip %d%%) with %d%% bit noise — a tunable predictability dial.", p.FlipPct, p.NoisePct),
		Params: fmt.Sprintf("band/v1:seed=%d,words=%d,blocks=%d,flip=%d,noise=%d,iters=%d",
			p.Seed, p.Words, p.Blocks, p.FlipPct, p.NoisePct, p.Iters),
		Synthetic: true,
		source:    func() string { return bandSource(p) },
	}
}

// ZooNames lists the registered zoo workloads in sorted order.
func ZooNames() []string {
	var names []string
	for _, w := range Zoo() {
		names = append(names, w.Name)
	}
	return names
}

func init() {
	register(NewWild("wild", WildParams{Seed: 101}))
	register(NewStorm("storm", StormParams{Seed: 202}))
	register(NewPhase("phase", PhaseParams{Seed: 303}))
	register(NewBand("band-lo", BandParams{Seed: 404, FlipPct: 10, NoisePct: 5}))
	register(NewBand("band-hi", BandParams{Seed: 505, FlipPct: 50, NoisePct: 45}))
}
