package workload

import (
	"fmt"
	"strings"
)

// xlispSource emits the recursive N-queens benchmark (the paper ran
// xlisp on "queens 7"). Control flow character: deep recursion through
// a single solver routine, with data-dependent backtracking.
//
// To reproduce xlisp's RHS-confusing behaviour — "to minimize overhead
// it uses unusual control flow to backup quickly to the point before
// the recursion without iteratively performing returns" — every other
// iteration caps the solution count and bails out of the recursion with
// a longjmp (restoring sp and jumping through a saved continuation),
// leaving a stack of calls with no matching returns.
func xlispSource(iters, n int) string {
	full := (1 << n) - 1
	// Column dispatch table: candidate bit value -> per-column stub.
	// Like xlisp's evaluator dispatching on expression type, the solver
	// dispatches each candidate column through an indirect call to a
	// distinct stub, turning the data-dependent choice into control
	// flow that trace identifiers (and path history) can see.
	var coltab strings.Builder
	for v := 0; v < 1<<n; v++ {
		col := 0
		for k := 0; k < n; k++ {
			if v == 1<<k {
				col = k
			}
		}
		if v%8 == 0 {
			if v > 0 {
				coltab.WriteString("\n")
			}
			coltab.WriteString("        .word ")
		} else {
			coltab.WriteString(", ")
		}
		fmt.Fprintf(&coltab, "col%d", col)
	}
	var stubs strings.Builder
	for k := 0; k < n; k++ {
		fmt.Fprintf(&stubs, "col%d:  j    solve\n", k)
	}
	return fmt.Sprintf(`
# xlisp: recursive N-queens with setjmp/longjmp escapes and
# interpreter-style column dispatch (SPECint95 130.li substitute;
# input "queens %d").
        .data
jb:     .space 8                # jmp_buf: saved sp, saved pc
coltab:
%s
        .text
main:   li   s7, %d             # outer iterations
iter:   li   s0, 0              # solution count
        # Even iterations cap the search and escape via longjmp.
        andi t0, s7, 1
        bnez t0, nocap
        li   s3, 32             # cap
        j    setj
nocap:  li   s3, 100000
setj:   la   t0, jb
        sw   sp, 0(t0)
        la   t1, resume
        sw   t1, 4(t0)
        li   a0, 0              # cols
        li   a1, 0              # major diagonals
        li   a2, 0              # minor diagonals
        jal  solve
resume: out  s0
        addi s7, s7, -1
        bnez s7, iter
        halt

# solve(a0=cols, a1=d1, a2=d2): recursive backtracking search.
# s0 accumulates solutions; when s0 reaches the cap s3, longjmp out.
solve:  li   t0, %d             # FULL board mask
        bne  a0, t0, srec
        addi s0, s0, 1
        bge  s0, s3, escape
        ret
srec:   addi sp, sp, -20
        sw   ra, 16(sp)
        or   t1, a0, a1
        or   t1, t1, a2
        nor  t1, t1, zero
        and  t1, t1, t0         # t1 = available squares
sloop:  beqz t1, sdone
        sub  t2, zero, t1
        and  t2, t2, t1         # lowest available bit
        xor  t1, t1, t2
        sw   a0, 0(sp)
        sw   a1, 4(sp)
        sw   a2, 8(sp)
        sw   t1, 12(sp)
        # dispatch the candidate column through its stub
        sll  t4, t2, 2
        la   t5, coltab
        add  t5, t5, t4
        lw   t5, 0(t5)
        or   a0, a0, t2
        or   a1, a1, t2
        sll  a1, a1, 1
        li   t3, %d
        and  a1, a1, t3
        or   a2, a2, t2
        srl  a2, a2, 1
        jalr t5
        lw   a0, 0(sp)
        lw   a1, 4(sp)
        lw   a2, 8(sp)
        lw   t1, 12(sp)
        j    sloop
sdone:  lw   ra, 16(sp)
        addi sp, sp, 20
        ret

# longjmp: restore the saved stack pointer and continue at resume:
# without unwinding the recursion (calls with no matching returns).
escape: la   t4, jb
        lw   sp, 0(t4)
        lw   t5, 4(t4)
        jr   t5

# per-column dispatch stubs
%s`, n, coltab.String(), iters, full, full, stubs.String())
}

// xlispRef returns the expected OUT stream: the solution count per
// iteration, capped at 32 on even iteration numbers (the counter runs
// from iters down to 1).
func xlispRef(iters, n int) []uint32 {
	total := uint32(queensCount(n))
	var outs []uint32
	for it := iters; it >= 1; it-- {
		if it%2 == 0 && total >= 32 {
			outs = append(outs, 32)
		} else {
			outs = append(outs, total)
		}
	}
	return outs
}

// queensCount solves N-queens in Go (reference only).
func queensCount(n int) int {
	full := uint32(1<<n) - 1
	var rec func(cols, d1, d2 uint32) int
	rec = func(cols, d1, d2 uint32) int {
		if cols == full {
			return 1
		}
		count := 0
		avail := ^(cols | d1 | d2) & full
		for avail != 0 {
			bit := avail & (^avail + 1)
			avail ^= bit
			count += rec(cols|bit, (d1|bit)<<1&full, (d2|bit)>>1)
		}
		return count
	}
	return rec(0, 0, 0)
}

func init() {
	register(&Workload{
		Name:       "xlisp",
		PaperInput: "queens 7 (SPECint95 130.li)",
		Description: "Recursive N-queens (n=7) with periodic longjmp escapes " +
			"that leave calls unmatched by returns, as xlisp's interpreter does.",
		source: func() string { return xlispSource(100000, 7) },
	})
}
