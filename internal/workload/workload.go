// Package workload provides the six benchmark programs used throughout
// the evaluation. They stand in for the SPECint95 benchmarks of the
// original paper (compress, gcc, go, ijpeg, m88ksim, xlisp), which are
// not redistributable; each substitute is written for (or generated
// into) the PT32 ISA and tuned to match the control-flow *character* of
// the benchmark it replaces — see DESIGN.md §2 for the substitution
// argument.
//
//	compress — LZW compression with a hash-table dictionary over a
//	           run-structured synthetic source (small static footprint,
//	           data-dependent hash probing).
//	gcc      — generated program with a very large static footprint:
//	           hundreds of functions of branchy, data-driven code with
//	           calls and jump-table switches.
//	go       — generated program with tree recursion and deep,
//	           data-dependent decision chains (game-search character).
//	jpeg     — 8x8 block transform/quantise/zig-zag RLE kernel
//	           (loop-dominated, few static traces).
//	mksim    — bytecode-VM interpreter with jump-table dispatch
//	           (indirect jumps), running a Collatz workload.
//	xlisp    — recursive N-queens solver (deep recursion; the paper ran
//	           xlisp on "queens 7").
package workload

import (
	"fmt"
	"sort"
	"sync"

	"pathtrace/internal/asm"
)

// Workload describes one benchmark.
type Workload struct {
	// Name is the benchmark's short name (matching the paper's table).
	Name string
	// PaperInput records what the original paper ran, for documentation.
	PaperInput string
	// Description summarises the program and what it substitutes for.
	Description string

	// Params canonically encodes the generator parameters (including
	// the seed) that determine the program, or "" when the name alone
	// identifies it (the six fixed benchmarks). It participates in
	// trace-stream cache keys and stream file names, so two same-name
	// workloads built with different parameters can never share a
	// cached or on-disk stream.
	Params string

	// Synthetic marks workload-zoo members: first-class named workloads
	// usable everywhere a benchmark is (ByName, -workloads, the stream
	// cache, fault injection), but excluded from All() so the paper's
	// exhibits keep their canonical six-benchmark workload set. Zoo()
	// returns them.
	Synthetic bool

	// Source returns the assembly source, scaled by size. Size 1 is the
	// standard configuration; smaller fractions of work are not
	// meaningful — programs run until the harness's instruction limit.
	source func() string

	// Program generation is cached per workload (not behind one global
	// lock): a workload whose generator misbehaves — the synthetic
	// hanging workload does so on purpose — must not block every other
	// workload's assembly.
	once    sync.Once
	prog    *asm.Program
	progErr error
}

// ProgramErr generates and assembles the workload once (cached;
// programs are deterministic) and reports generation failures as
// errors, including panics inside the source generator.
func (w *Workload) ProgramErr() (p *asm.Program, err error) {
	w.once.Do(func() {
		defer func() {
			if r := recover(); r != nil {
				w.progErr = fmt.Errorf("workload %s: program generation panicked: %v", w.Name, r)
			}
		}()
		w.prog, w.progErr = asm.Assemble(w.source())
		if w.progErr != nil {
			w.progErr = fmt.Errorf("workload %s: %w", w.Name, w.progErr)
		}
	})
	return w.prog, w.progErr
}

// Program is ProgramErr for the known-good benchmarks; it panics on
// generation failure.
func (w *Workload) Program() *asm.Program {
	p, err := w.ProgramErr()
	if err != nil {
		panic(err)
	}
	return p
}

var (
	regMu    sync.RWMutex
	registry = map[string]*Workload{}
)

func register(w *Workload) {
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := registry[w.Name]; dup {
		panic(fmt.Sprintf("workload: duplicate %q", w.Name))
	}
	registry[w.Name] = w
}

// Names returns the benchmark names in the paper's order.
func Names() []string {
	return []string{"compress", "gcc", "go", "jpeg", "mksim", "xlisp"}
}

// All returns all registered non-synthetic workloads in the paper's
// order: the canonical six, then any extras (registered by tests or
// extensions) sorted by name. Zoo members (Synthetic) are excluded so
// the paper exhibits keep their benchmark set; Zoo() returns them.
func All() []*Workload {
	regMu.RLock()
	defer regMu.RUnlock()
	var out []*Workload
	for _, n := range Names() {
		if w, ok := registry[n]; ok {
			out = append(out, w)
		}
	}
	var extra []string
	for n, w := range registry {
		if w.Synthetic {
			continue
		}
		found := false
		for _, c := range Names() {
			if n == c {
				found = true
				break
			}
		}
		if !found {
			extra = append(extra, n)
		}
	}
	sort.Strings(extra)
	for _, n := range extra {
		out = append(out, registry[n])
	}
	return out
}

// Zoo returns the registered synthetic workloads sorted by name — the
// adversarial/parameterized workload zoo (see zoo.go). They are
// first-class workloads (ByName finds them, streams cache them, every
// experiment accepts them by name); they are simply not part of the
// canonical six that All() yields.
func Zoo() []*Workload {
	regMu.RLock()
	defer regMu.RUnlock()
	var names []string
	for n, w := range registry {
		if w.Synthetic {
			names = append(names, n)
		}
	}
	sort.Strings(names)
	out := make([]*Workload, len(names))
	for i, n := range names {
		out[i] = registry[n]
	}
	return out
}

// ByName looks up a workload.
func ByName(name string) (*Workload, bool) {
	regMu.RLock()
	defer regMu.RUnlock()
	w, ok := registry[name]
	return w, ok
}
