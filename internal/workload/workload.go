// Package workload provides the six benchmark programs used throughout
// the evaluation. They stand in for the SPECint95 benchmarks of the
// original paper (compress, gcc, go, ijpeg, m88ksim, xlisp), which are
// not redistributable; each substitute is written for (or generated
// into) the PT32 ISA and tuned to match the control-flow *character* of
// the benchmark it replaces — see DESIGN.md §2 for the substitution
// argument.
//
//	compress — LZW compression with a hash-table dictionary over a
//	           run-structured synthetic source (small static footprint,
//	           data-dependent hash probing).
//	gcc      — generated program with a very large static footprint:
//	           hundreds of functions of branchy, data-driven code with
//	           calls and jump-table switches.
//	go       — generated program with tree recursion and deep,
//	           data-dependent decision chains (game-search character).
//	jpeg     — 8x8 block transform/quantise/zig-zag RLE kernel
//	           (loop-dominated, few static traces).
//	mksim    — bytecode-VM interpreter with jump-table dispatch
//	           (indirect jumps), running a Collatz workload.
//	xlisp    — recursive N-queens solver (deep recursion; the paper ran
//	           xlisp on "queens 7").
package workload

import (
	"fmt"
	"sort"
	"sync"

	"pathtrace/internal/asm"
)

// Workload describes one benchmark.
type Workload struct {
	// Name is the benchmark's short name (matching the paper's table).
	Name string
	// PaperInput records what the original paper ran, for documentation.
	PaperInput string
	// Description summarises the program and what it substitutes for.
	Description string

	// Source returns the assembly source, scaled by size. Size 1 is the
	// standard configuration; smaller fractions of work are not
	// meaningful — programs run until the harness's instruction limit.
	source func() string

	// Program generation is cached per workload (not behind one global
	// lock): a workload whose generator misbehaves — the synthetic
	// hanging workload does so on purpose — must not block every other
	// workload's assembly.
	once    sync.Once
	prog    *asm.Program
	progErr error
}

// ProgramErr generates and assembles the workload once (cached;
// programs are deterministic) and reports generation failures as
// errors, including panics inside the source generator.
func (w *Workload) ProgramErr() (p *asm.Program, err error) {
	w.once.Do(func() {
		defer func() {
			if r := recover(); r != nil {
				w.progErr = fmt.Errorf("workload %s: program generation panicked: %v", w.Name, r)
			}
		}()
		w.prog, w.progErr = asm.Assemble(w.source())
		if w.progErr != nil {
			w.progErr = fmt.Errorf("workload %s: %w", w.Name, w.progErr)
		}
	})
	return w.prog, w.progErr
}

// Program is ProgramErr for the known-good benchmarks; it panics on
// generation failure.
func (w *Workload) Program() *asm.Program {
	p, err := w.ProgramErr()
	if err != nil {
		panic(err)
	}
	return p
}

var (
	regMu    sync.RWMutex
	registry = map[string]*Workload{}
)

func register(w *Workload) {
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := registry[w.Name]; dup {
		panic(fmt.Sprintf("workload: duplicate %q", w.Name))
	}
	registry[w.Name] = w
}

// Names returns the benchmark names in the paper's order.
func Names() []string {
	return []string{"compress", "gcc", "go", "jpeg", "mksim", "xlisp"}
}

// All returns all registered workloads in the paper's order.
func All() []*Workload {
	regMu.RLock()
	defer regMu.RUnlock()
	var out []*Workload
	for _, n := range Names() {
		if w, ok := registry[n]; ok {
			out = append(out, w)
		}
	}
	// Include any extras (registered by tests or extensions) after the
	// canonical six, sorted by name.
	var extra []string
	for n := range registry {
		found := false
		for _, c := range Names() {
			if n == c {
				found = true
				break
			}
		}
		if !found {
			extra = append(extra, n)
		}
	}
	sort.Strings(extra)
	for _, n := range extra {
		out = append(out, registry[n])
	}
	return out
}

// ByName looks up a workload.
func ByName(name string) (*Workload, bool) {
	regMu.RLock()
	defer regMu.RUnlock()
	w, ok := registry[name]
	return w, ok
}
