package workload

import (
	"strings"
	"testing"

	"pathtrace/internal/sim"
)

func TestZooRegistered(t *testing.T) {
	want := []string{"band-hi", "band-lo", "phase", "storm", "wild"}
	got := ZooNames()
	if strings.Join(got, ",") != strings.Join(want, ",") {
		t.Fatalf("ZooNames() = %v, want %v", got, want)
	}
	for _, name := range want {
		w, ok := ByName(name)
		if !ok {
			t.Fatalf("ByName(%q) failed", name)
		}
		if !w.Synthetic {
			t.Errorf("%s not marked Synthetic", name)
		}
		if w.Params == "" {
			t.Errorf("%s has empty Params; zoo members must carry their parameterization", name)
		}
		if w.PaperInput == "" || w.Description == "" {
			t.Errorf("%s missing documentation fields", name)
		}
	}
	// Zoo members must NOT leak into the canonical set.
	for _, w := range All() {
		if w.Synthetic {
			t.Errorf("All() includes synthetic workload %q", w.Name)
		}
	}
}

// Every zoo generator must be seed-deterministic: the same parameters
// produce a bit-identical program, a different seed a different one.
func TestZooSeedDeterminism(t *testing.T) {
	gens := []struct {
		name string
		src  func(seed int64) string
	}{
		{"wild", func(s int64) string { return wildSource(WildParams{Seed: s}) }},
		{"storm", func(s int64) string { return stormSource(StormParams{Seed: s}) }},
		{"phase", func(s int64) string { return phaseSource(PhaseParams{Seed: s}) }},
		{"band", func(s int64) string { return bandSource(BandParams{Seed: s, FlipPct: 20, NoisePct: 20}) }},
	}
	for _, g := range gens {
		g := g
		t.Run(g.name, func(t *testing.T) {
			t.Parallel()
			if g.src(7) != g.src(7) {
				t.Errorf("%s: same seed produced different programs", g.name)
			}
			if g.src(7) == g.src(8) {
				t.Errorf("%s: different seeds produced identical programs", g.name)
			}
		})
	}
}

// Constructors must bake the seed into Params so stream-cache keys
// distinguish same-name instances.
func TestZooParamsCarrySeed(t *testing.T) {
	a := NewWild("twin", WildParams{Seed: 1})
	b := NewWild("twin", WildParams{Seed: 2})
	if a.Params == b.Params {
		t.Fatalf("different seeds share Params %q", a.Params)
	}
	if a.Name != b.Name {
		t.Fatalf("names differ: %q vs %q", a.Name, b.Name)
	}
}

// Zoo workloads must sustain long runs like the benchmarks: no fault,
// no early halt, output produced.
func TestZooWorkloadsExecute(t *testing.T) {
	for _, w := range Zoo() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			t.Parallel()
			c := sim.MustNew(w.Program())
			if err := c.Run(3_000_000, nil); err != nil {
				t.Fatalf("%s faulted: %v", w.Name, err)
			}
			if c.Halted() {
				t.Errorf("%s halted after only %d instructions; workloads must sustain long runs",
					w.Name, c.InstrCount)
			}
			if len(c.Output) == 0 {
				t.Errorf("%s produced no output in 3M instructions", w.Name)
			}
		})
	}
}
