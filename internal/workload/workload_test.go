package workload

import (
	"strings"
	"testing"

	"pathtrace/internal/asm"
	"pathtrace/internal/isa"
	"pathtrace/internal/sim"
)

// runToHalt assembles and runs a program to completion.
func runToHalt(t *testing.T, src string, limit uint64) *sim.CPU {
	t.Helper()
	p, err := asm.Assemble(src)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	c := sim.MustNew(p)
	if err := c.Run(limit, nil); err != nil {
		t.Fatalf("run: %v", err)
	}
	if !c.Halted() {
		t.Fatalf("program did not halt within %d instructions", limit)
	}
	return c
}

func checkOutputs(t *testing.T, got []uint32, want []uint32) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("output count = %d, want %d\n got: %v\nwant: %v", len(got), len(want), got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("output[%d] = %#x, want %#x", i, got[i], want[i])
		}
	}
}

func TestCompressMatchesReference(t *testing.T) {
	c := runToHalt(t, compressSource(2, 512), 2_000_000)
	checkOutputs(t, c.Output, compressRef(2, 512))
}

func TestCompressProducesVariedChecksums(t *testing.T) {
	c := runToHalt(t, compressSource(3, 256), 2_000_000)
	if c.Output[0] == c.Output[1] && c.Output[1] == c.Output[2] {
		t.Error("all iterations produced identical checksums; generator not seeded per iteration?")
	}
}

func TestJpegMatchesReference(t *testing.T) {
	c := runToHalt(t, jpegSource(2, 3), 2_000_000)
	checkOutputs(t, c.Output, jpegRef(2, 3))
}

func TestJpegTables(t *testing.T) {
	zz := jpegZigzag()
	seen := map[int32]bool{}
	for _, v := range zz {
		if v < 0 || v > 63 || seen[v] {
			t.Fatalf("zigzag invalid at %d", v)
		}
		seen[v] = true
	}
	if zz[0] != 0 || zz[1] != 1 || zz[2] != 8 || zz[63] != 63 {
		t.Errorf("zigzag head/tail = %d %d %d ... %d", zz[0], zz[1], zz[2], zz[63])
	}
	co := jpegCoeff()
	for k := 0; k < 8; k++ {
		if co[k] != 8 {
			t.Errorf("DC row coefficient %d = %d, want 8", k, co[k])
		}
	}
	for _, q := range jpegQuant() {
		if q < 1 {
			t.Errorf("quant entry %d < 1", q)
		}
	}
}

func TestQueensCount(t *testing.T) {
	// Classic values: the paper's input was queens 7.
	for n, want := range map[int]int{4: 2, 5: 10, 6: 4, 7: 40, 8: 92} {
		if got := queensCount(n); got != want {
			t.Errorf("queens(%d) = %d, want %d", n, got, want)
		}
	}
}

func TestXlispMatchesReference(t *testing.T) {
	// n=7: odd iterations complete (40 solutions), even iterations are
	// capped at 32 and escape via longjmp.
	c := runToHalt(t, xlispSource(3, 7), 2_000_000)
	checkOutputs(t, c.Output, xlispRef(3, 7))
	want := []uint32{40, 32, 40}
	checkOutputs(t, c.Output, want)
}

func TestXlispSmallBoardNoCap(t *testing.T) {
	// queens(6) = 4 < cap: every iteration returns normally.
	c := runToHalt(t, xlispSource(4, 6), 2_000_000)
	checkOutputs(t, c.Output, []uint32{4, 4, 4, 4})
}

func TestXlispLongjmpLeavesUnmatchedCalls(t *testing.T) {
	// Count calls and returns in the retired stream of a capped
	// iteration: the longjmp must leave calls unmatched.
	p := asm.MustAssemble(xlispSource(2, 7)) // iterations 2 (capped) then 1 (full)
	c := sim.MustNew(p)
	calls, rets := 0, 0
	if err := c.Run(0, func(r sim.Retired) {
		switch r.Ctrl {
		case isa.CtrlCallDir, isa.CtrlCallInd:
			calls++
		case isa.CtrlReturn:
			rets++
		}
	}); err != nil {
		t.Fatal(err)
	}
	if calls <= rets {
		t.Errorf("calls=%d rets=%d; longjmp should leave calls unmatched", calls, rets)
	}
}

func TestCollatzBytecode(t *testing.T) {
	code := collatzBytecode(30)
	if len(code)%2 != 0 {
		t.Fatal("odd bytecode length")
	}
	for i := 0; i < len(code); i += 2 {
		if op := code[i]; op < 0 || op >= vNumOps {
			t.Fatalf("bad opcode %d at %d", op, i)
		}
	}
}

func TestMksimMatchesReference(t *testing.T) {
	c := runToHalt(t, mksimSource(2, collatzBytecode(30)), 5_000_000)
	want := collatzTotal(30)
	checkOutputs(t, c.Output, []uint32{want, want})
}

func TestMksimUsesIndirectDispatch(t *testing.T) {
	p := asm.MustAssemble(mksimSource(1, collatzBytecode(5)))
	c := sim.MustNew(p)
	indirect := 0
	if err := c.Run(0, func(r sim.Retired) {
		if r.Ctrl == isa.CtrlJumpInd {
			indirect++
		}
	}); err != nil {
		t.Fatal(err)
	}
	if indirect < 50 {
		t.Errorf("only %d indirect jumps; dispatch should be one per VM instruction", indirect)
	}
}

func TestSynthDeterministicAndBranchy(t *testing.T) {
	p := SynthParams{Seed: 99, Funcs: 24, Layers: 3, Blocks: 4,
		Depth: 3, DataWords: 256, Iters: 3}
	src1 := synthSource(p)
	src2 := synthSource(p)
	if src1 != src2 {
		t.Fatal("generator not deterministic")
	}
	c := runToHalt(t, src1, 5_000_000)
	if len(c.Output) != 3 {
		t.Fatalf("outputs = %v", c.Output)
	}
	// Deterministic execution: a second run matches.
	c2 := runToHalt(t, src1, 5_000_000)
	checkOutputs(t, c2.Output, c.Output)

	// The generated program must actually exercise calls, conditional
	// branches and indirect jumps.
	prog := asm.MustAssemble(src1)
	cpu := sim.MustNew(prog)
	var cond, calls, ind int
	if err := cpu.Run(0, func(r sim.Retired) {
		switch r.Ctrl {
		case isa.CtrlCondDir:
			cond++
		case isa.CtrlCallDir:
			calls++
		case isa.CtrlJumpInd:
			ind++
		}
	}); err != nil {
		t.Fatal(err)
	}
	if cond < 100 || calls < 10 {
		t.Errorf("cond=%d calls=%d; generated code insufficiently branchy", cond, calls)
	}
}

func TestSynthRecursion(t *testing.T) {
	p := SynthParams{Seed: 5, Funcs: 9, Layers: 3, Blocks: 3, Recurse: true,
		Depth: 5, DataWords: 128, Iters: 2}
	c := runToHalt(t, synthSource(p), 10_000_000)
	if len(c.Output) != 2 {
		t.Fatalf("outputs = %v", c.Output)
	}
}

func TestRegistryCanonicalOrder(t *testing.T) {
	all := All()
	if len(all) < 6 {
		t.Fatalf("registered %d workloads, want >= 6", len(all))
	}
	for i, name := range Names() {
		if all[i].Name != name {
			t.Errorf("All()[%d] = %q, want %q", i, all[i].Name, name)
		}
	}
	for _, name := range Names() {
		w, ok := ByName(name)
		if !ok || w.Name != name {
			t.Errorf("ByName(%q) failed", name)
		}
		if w.PaperInput == "" || w.Description == "" {
			t.Errorf("%s missing documentation fields", name)
		}
	}
	if _, ok := ByName("nope"); ok {
		t.Error("ByName(nope) succeeded")
	}
}

// Every registered workload must assemble and run a window of
// instructions without faulting, and produce at least one output within
// a modest budget.
func TestRegisteredWorkloadsExecute(t *testing.T) {
	for _, w := range All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			t.Parallel()
			prog := w.Program()
			c := sim.MustNew(prog)
			if err := c.Run(3_000_000, nil); err != nil {
				t.Fatalf("%s faulted: %v", w.Name, err)
			}
			if c.Halted() {
				t.Errorf("%s halted after only %d instructions; workloads must sustain long runs",
					w.Name, c.InstrCount)
			}
			if len(c.Output) == 0 {
				t.Errorf("%s produced no output in 3M instructions", w.Name)
			}
		})
	}
}

// Program() caches: same pointer on second call.
func TestProgramCache(t *testing.T) {
	w, _ := ByName("compress")
	if w.Program() != w.Program() {
		t.Error("Program() not cached")
	}
}

func TestSynthSourceShape(t *testing.T) {
	src := synthSource(SynthParams{Seed: 1, Funcs: 12, Layers: 3, Blocks: 4,
		Depth: 3, DataWords: 64, Iters: 1})
	for _, want := range []string{"main:", "f0:", "f11:", "sdata:", "jr   t3"} {
		if !strings.Contains(src, want) {
			t.Errorf("generated source missing %q", want)
		}
	}
}
