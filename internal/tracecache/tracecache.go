// Package tracecache models the trace cache that the next trace
// predictor feeds (Rotenberg, Bennett, Smith; MICRO-29 1996). Traces
// are stored whole and indexed by their hashed identifier; the full
// identifier serves as the tag, exactly the arrangement assumed by the
// cost-reduced predictor of §5.5 (the prediction table stores the
// 10-bit hashed cache index, and the full identifier stored in the
// cache validates the fetch).
package tracecache

import (
	"fmt"

	"pathtrace/internal/trace"
)

// Config sizes the cache.
type Config struct {
	// Lines is the total number of trace lines. The paper's execution
	// engine models a 64KB trace cache; at 64B of instruction storage
	// per 16-instruction line that is 1024 lines.
	Lines int
	// Assoc is the set associativity (LRU replacement).
	Assoc int
}

// DefaultConfig is the 64KB, 4-way configuration.
func DefaultConfig() Config { return Config{Lines: 1024, Assoc: 4} }

// Stats counts cache accesses.
type Stats struct {
	Accesses uint64
	Hits     uint64
	Fills    uint64
	Evicts   uint64
}

// HitRate returns the hit rate in percent.
func (s Stats) HitRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return 100 * float64(s.Hits) / float64(s.Accesses)
}

type line struct {
	id    trace.ID
	valid bool
	used  uint64 // LRU timestamp
}

// Cache is a set-associative trace cache keyed by hashed trace ID.
type Cache struct {
	sets    [][]line
	setMask uint32
	clock   uint64
	stats   Stats

	// hook, when set, runs before every Access; fault injection uses it
	// to invalidate or corrupt lines. It must not call Access.
	hook func(*Cache)
}

// New builds a trace cache. Lines/Assoc must divide into a power-of-two
// number of sets.
func New(cfg Config) (*Cache, error) {
	if cfg.Lines <= 0 || cfg.Assoc <= 0 || cfg.Lines%cfg.Assoc != 0 {
		return nil, fmt.Errorf("tracecache: bad geometry %d lines / %d ways", cfg.Lines, cfg.Assoc)
	}
	nsets := cfg.Lines / cfg.Assoc
	if nsets&(nsets-1) != 0 {
		return nil, fmt.Errorf("tracecache: %d sets is not a power of two", nsets)
	}
	sets := make([][]line, nsets)
	backing := make([]line, cfg.Lines)
	for i := range sets {
		sets[i], backing = backing[:cfg.Assoc:cfg.Assoc], backing[cfg.Assoc:]
	}
	return &Cache{sets: sets, setMask: uint32(nsets - 1)}, nil
}

// MustNew is New for static configurations.
func MustNew(cfg Config) *Cache {
	c, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return c
}

func (c *Cache) set(id trace.ID) []line {
	return c.sets[uint32(id.Hash())&c.setMask]
}

// SetFaultHook installs a hook invoked before every Access (nil
// removes it). Used by fault injection.
func (c *Cache) SetFaultHook(fn func(*Cache)) { c.hook = fn }

// Geometry returns the number of sets and ways.
func (c *Cache) Geometry() (sets, ways int) {
	return len(c.sets), len(c.sets[0])
}

// InvalidateWay clears one line (fault-injection primitive; a harmless
// hint-structure fault — the next access to that trace simply misses).
func (c *Cache) InvalidateWay(set, way int) {
	if set < 0 || set >= len(c.sets) || way < 0 || way >= len(c.sets[set]) {
		return
	}
	c.sets[set][way] = line{}
}

// CorruptWay XORs mask into the stored identifier of one line, so the
// full-ID tag check rejects (or, for a colliding trace, misdirects)
// later probes. Invalid lines are left untouched.
func (c *Cache) CorruptWay(set, way int, mask uint64) {
	if set < 0 || set >= len(c.sets) || way < 0 || way >= len(c.sets[set]) {
		return
	}
	if l := &c.sets[set][way]; l.valid {
		l.id ^= trace.ID(mask)
	}
}

// Access probes the cache for a trace and fills it on a miss. It
// returns whether the probe hit.
func (c *Cache) Access(id trace.ID) bool {
	if c.hook != nil {
		c.hook(c)
	}
	c.clock++
	c.stats.Accesses++
	set := c.set(id)
	for i := range set {
		if set[i].valid && set[i].id == id {
			set[i].used = c.clock
			c.stats.Hits++
			return true
		}
	}
	// Miss: fill, evicting the LRU way.
	victim := 0
	for i := range set {
		if !set[i].valid {
			victim = i
			break
		}
		if set[i].used < set[victim].used {
			victim = i
		}
	}
	if set[victim].valid {
		c.stats.Evicts++
	}
	set[victim] = line{id: id, valid: true, used: c.clock}
	c.stats.Fills++
	return false
}

// Contains probes without modifying cache state.
func (c *Cache) Contains(id trace.ID) bool {
	for _, l := range c.set(id) {
		if l.valid && l.id == id {
			return true
		}
	}
	return false
}

// Stats returns the access counters.
func (c *Cache) Stats() Stats { return c.stats }
