package tracecache

import (
	"testing"

	"pathtrace/internal/trace"
)

func id(pc uint32, outs uint8) trace.ID { return trace.MakeID(pc, outs) }

func TestGeometryValidation(t *testing.T) {
	bad := []Config{
		{Lines: 0, Assoc: 1},
		{Lines: 8, Assoc: 3},
		{Lines: 12, Assoc: 2}, // 6 sets, not a power of two
		{Lines: 8, Assoc: 0},
	}
	for _, cfg := range bad {
		if _, err := New(cfg); err == nil {
			t.Errorf("config %+v accepted", cfg)
		}
	}
	if _, err := New(DefaultConfig()); err != nil {
		t.Errorf("default config rejected: %v", err)
	}
	defer func() {
		if recover() == nil {
			t.Error("MustNew did not panic")
		}
	}()
	MustNew(Config{})
}

func TestMissThenHit(t *testing.T) {
	c := MustNew(Config{Lines: 16, Assoc: 2})
	a := id(0x1000, 0)
	if c.Access(a) {
		t.Error("first access hit")
	}
	if !c.Access(a) {
		t.Error("second access missed")
	}
	st := c.Stats()
	if st.Accesses != 2 || st.Hits != 1 || st.Fills != 1 || st.Evicts != 0 {
		t.Errorf("stats = %+v", st)
	}
	if st.HitRate() != 50 {
		t.Errorf("HitRate = %v", st.HitRate())
	}
}

func TestTagDisambiguatesWithinSet(t *testing.T) {
	c := MustNew(Config{Lines: 8, Assoc: 2})
	// Two traces with the same hash (same set) but different IDs: both
	// must be cacheable simultaneously in a 2-way set.
	a := id(0x1000, 0)
	b := id(0x1000+1024*4, 0) // differs above the hash's PC bits
	if a.Hash() != b.Hash() {
		t.Fatalf("test setup: hashes differ (%#x vs %#x)", a.Hash(), b.Hash())
	}
	if a == b {
		t.Fatal("test setup: IDs equal")
	}
	c.Access(a)
	c.Access(b)
	if !c.Contains(a) || !c.Contains(b) {
		t.Error("2-way set failed to hold two same-hash traces")
	}
	if !c.Access(a) || !c.Access(b) {
		t.Error("re-access missed")
	}
}

func TestLRUEviction(t *testing.T) {
	c := MustNew(Config{Lines: 2, Assoc: 2}) // one set, two ways
	a, b, d := id(0x1000, 0), id(0x1004, 0), id(0x1008, 0)
	c.Access(a)
	c.Access(b)
	c.Access(a) // a is now MRU
	c.Access(d) // evicts b (LRU)
	if !c.Contains(a) {
		t.Error("MRU evicted")
	}
	if c.Contains(b) {
		t.Error("LRU survived")
	}
	if c.Stats().Evicts != 1 {
		t.Errorf("Evicts = %d", c.Stats().Evicts)
	}
}

func TestContainsDoesNotFill(t *testing.T) {
	c := MustNew(Config{Lines: 4, Assoc: 1})
	a := id(0x2000, 3)
	if c.Contains(a) {
		t.Error("empty cache contains")
	}
	if c.Stats().Accesses != 0 {
		t.Error("Contains counted as access")
	}
	if c.Contains(a) {
		t.Error("Contains filled the cache")
	}
}

func TestZeroStats(t *testing.T) {
	var s Stats
	if s.HitRate() != 0 {
		t.Error("zero stats hit rate")
	}
}
