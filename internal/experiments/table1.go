package experiments

import (
	"fmt"

	"pathtrace/internal/stats"
	"pathtrace/internal/trace"
)

// table1 regenerates the benchmark summary (paper Table 1): dynamic
// instruction count, average trace length, and the number of static
// traces, per benchmark.
func table1(opt Options) (*Result, error) {
	ws, err := opt.workloads()
	if err != nil {
		return nil, err
	}
	res := newResult("table1")
	t := stats.NewTable("Table 1: Benchmark summary",
		"benchmark", "input (paper)", "instructions", "traces",
		"avg trace length", "branches/trace", "static traces")
	for _, w := range ws {
		static := make(map[trace.ID]struct{})
		var branches uint64
		instrs, traces, err := opt.Stream(w, func(tr *trace.Trace) {
			static[tr.ID] = struct{}{}
			branches += uint64(tr.NumBr)
		})
		if err != nil {
			return nil, err
		}
		avgLen := float64(instrs) / float64(traces)
		avgBr := float64(branches) / float64(traces)
		t.AddRowf(w.Name, w.PaperInput, instrs, traces, avgLen, avgBr, len(static))
		res.Values[w.Name+".instrs"] = float64(instrs)
		res.Values[w.Name+".avg_trace_len"] = avgLen
		res.Values[w.Name+".static_traces"] = float64(len(static))
		res.Values[w.Name+".branches_per_trace"] = avgBr
	}
	res.Text = joinSections(t.String(),
		fmt.Sprintf("(paper ran >= 100M instructions per benchmark; this run used %d per benchmark — scale with -len)", opt.limit()))
	return res, nil
}

func init() {
	register(Experiment{
		Name:  "table1",
		Title: "Table 1: Benchmark summary",
		Desc:  "Dynamic instructions, average trace length and static trace counts per benchmark.",
		Run:   table1,
	})
}
