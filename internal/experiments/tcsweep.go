package experiments

import (
	"fmt"

	"pathtrace/internal/stats"
	"pathtrace/internal/trace"
	"pathtrace/internal/tracecache"
)

// ablationTraceCache sweeps trace cache geometry: hit rate per
// benchmark across sizes (lines) and associativities. The paper's
// engine modelled a 64KB (1024-line) trace cache; this shows where each
// benchmark's trace working set saturates and what associativity buys.
func ablationTraceCache(opt Options) (*Result, error) {
	ws, err := opt.workloads()
	if err != nil {
		return nil, err
	}
	res := newResult("ablation-tracecache")
	geoms := []tracecache.Config{
		{Lines: 256, Assoc: 1},
		{Lines: 256, Assoc: 4},
		{Lines: 1024, Assoc: 1},
		{Lines: 1024, Assoc: 4}, // the paper's 64KB point
		{Lines: 4096, Assoc: 4},
	}
	cols := []string{"benchmark"}
	for _, g := range geoms {
		cols = append(cols, fmt.Sprintf("%dL/%dw hit%%", g.Lines, g.Assoc))
	}
	t := stats.NewTable("Trace cache geometry sweep (hit rate %)", cols...)
	for _, w := range ws {
		caches := make([]*tracecache.Cache, len(geoms))
		var consumers []func(*trace.Trace)
		for i, g := range geoms {
			c, err := tracecache.New(g)
			if err != nil {
				return nil, err
			}
			caches[i] = c
			consumers = append(consumers, func(tr *trace.Trace) { c.Access(tr.ID) })
		}
		if _, _, err := opt.Stream(w, consumers...); err != nil {
			return nil, err
		}
		row := []any{w.Name}
		for i, g := range geoms {
			hr := caches[i].Stats().HitRate()
			row = append(row, hr)
			res.Values[fmt.Sprintf("%s.%dL%dw", w.Name, g.Lines, g.Assoc)] = hr
		}
		t.AddRowf(row...)
	}
	res.Text = joinSections(t.String(),
		"gcc's trace working set (thousands of static traces x path-dependent variants) "+
			"overwhelms even 4096 lines — the same pressure that drives its prediction-table "+
			"aliasing in Figure 7.")
	return res, nil
}

func init() {
	register(Experiment{
		Name:  "ablation-tracecache",
		Title: "Ablation: trace cache geometry",
		Desc:  "Hit rates across cache sizes and associativities.",
		Run:   ablationTraceCache,
	})
}
