package experiments

import (
	"strings"
	"testing"

	"pathtrace/internal/stream"
)

// The charz experiment must characterize each workload and show the
// adversarial zoo defeating the 1997 hybrid: the acceptance bar is
// ≥2x the hybrid's compress miss rate for at least two zoo members,
// reproducibly from their fixed registration seeds.
func TestCharzAdversarialZoo(t *testing.T) {
	opt := Options{
		Limit:     400_000,
		Workloads: []string{"compress", "wild", "storm", "band-hi"},
		Streams:   stream.NewCache(),
	}
	r := run(t, "charz", opt)

	for _, want := range []string{
		"Workload predictability", "Misprediction %", "adv wild:", "corr(",
	} {
		if !strings.Contains(r.Text, want) {
			t.Errorf("charz text missing %q:\n%s", want, r.Text)
		}
	}

	// Every workload gets predictability values and a non-empty H2P set.
	for _, wl := range opt.Workloads {
		for _, key := range []string{".trace_entropy", ".transition_rate", ".cond_entropy7", ".h2p_size", ".hybrid", ".tage"} {
			if _, ok := r.Values[wl+key]; !ok {
				t.Errorf("missing value %s%s", wl, key)
			}
		}
		if r.Values[wl+".h2p_size"] < 1 {
			t.Errorf("%s: empty H2P set", wl)
		}
	}

	// The zoo must visibly defeat the hybrid: ≥2x compress for at
	// least these two members (empirically they sit at 4-9x).
	for _, wl := range []string{"wild", "storm", "band-hi"} {
		ratio, ok := r.Values["adv_ratio."+wl]
		if !ok {
			t.Fatalf("missing adv_ratio.%s", wl)
		}
		if ratio < 2 {
			t.Errorf("adv_ratio.%s = %.2f, want ≥2 (zoo member fails to defeat the hybrid)", wl, ratio)
		}
	}

	// TAGE must degrade more gracefully than the hybrid on the zoo.
	if h, tg := r.Values["mean-zoo.hybrid"], r.Values["mean-zoo.tage"]; !(tg < h) {
		t.Errorf("zoo means: tage %.2f%% not below hybrid %.2f%%", tg, h)
	}

	// The predictability metrics must actually track difficulty on
	// this spread of workloads: transition rate and depth-7 pair
	// novelty should correlate strongly with the hybrid's misses.
	for _, key := range []string{"corr.transition_rate", "corr.novelty7"} {
		if c, ok := r.Values[key]; !ok || c < 0.5 {
			t.Errorf("%s = %.3f (ok=%v), want strong positive correlation", key, c, ok)
		}
	}
}

// With no workload subset, charz covers the canonical six plus the
// whole zoo.
func TestCharzDefaultCoversZoo(t *testing.T) {
	if testing.Short() {
		t.Skip("full-suite charz is slow")
	}
	opt := Options{Limit: 120_000, Streams: stream.NewCache()}
	r := run(t, "charz", opt)
	for _, wl := range []string{"compress", "gcc", "go", "jpeg", "mksim", "xlisp",
		"band-hi", "band-lo", "phase", "storm", "wild"} {
		if _, ok := r.Values[wl+".hybrid"]; !ok {
			t.Errorf("default charz run missing workload %s", wl)
		}
	}
}
