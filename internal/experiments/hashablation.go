package experiments

import (
	"pathtrace/internal/predictor"
	"pathtrace/internal/stats"
	"pathtrace/internal/trace"
)

// ablationHash isolates the §3.2 hashed-identifier construction. The
// paper places the first two branch outcomes in the low bits, the low
// PC bits next, and XORs the remaining outcomes into higher PC bits —
// so that the bits most likely to differ between traces land where the
// index generator and tags look first. Alternatives evaluated by
// re-hashing each trace before the predictors see it:
//
//   - paper: trace.ID.Hash() as implemented;
//   - pc-only: drop branch outcomes entirely (distinct traces from the
//     same start PC collide);
//   - fold: XOR-fold the whole 36-bit ID into 10 bits with no
//     structural placement.
func ablationHash(opt Options) (*Result, error) {
	ws, err := opt.workloads()
	if err != nil {
		return nil, err
	}
	res := newResult("ablation-hash")
	hashes := []struct {
		name string
		fn   func(trace.ID) trace.HashedID
	}{
		{"paper §3.2", func(id trace.ID) trace.HashedID { return id.Hash() }},
		{"pc-only", func(id trace.ID) trace.HashedID {
			return trace.HashedID(id >> 6 & 0x3ff)
		}},
		{"xor-fold", func(id trace.ID) trace.HashedID {
			v := uint64(id)
			return trace.HashedID((v ^ v>>10 ^ v>>20 ^ v>>30) & 0x3ff)
		}},
	}
	cols := []string{"benchmark"}
	for _, h := range hashes {
		cols = append(cols, h.name)
	}
	t := stats.NewTable("Ablation: hashed trace identifier construction (2^16 hybrid+RHS depth 7, misp %)", cols...)
	sums := make([]float64, len(hashes))
	for _, w := range ws {
		preds := make([]predictor.NextTracePredictor, len(hashes))
		var consumers []func(*trace.Trace)
		for i, h := range hashes {
			p, err := predictor.New(opt.applyBackend(predictor.Config{
				Depth: maxDepth, IndexBits: 16, Hybrid: true, UseRHS: true,
			}))
			if err != nil {
				return nil, err
			}
			preds[i] = p
			fn := h.fn
			consumers = append(consumers, func(tr *trace.Trace) {
				// Re-hash before the predictor sees the trace. The copy
				// keeps consumers independent.
				cp := *tr
				cp.Hash = fn(tr.ID)
				p.Predict()
				p.Update(&cp)
			})
		}
		if _, _, err := opt.Stream(w, consumers...); err != nil {
			return nil, err
		}
		row := []any{w.Name}
		for i, h := range hashes {
			rate := preds[i].Stats().MissRate()
			row = append(row, rate)
			sums[i] += rate
			res.Values[w.Name+"."+h.name] = rate
		}
		t.AddRowf(row...)
	}
	mean := []any{"MEAN"}
	for i, h := range hashes {
		m := sums[i] / float64(len(ws))
		mean = append(mean, m)
		res.Values["mean."+h.name] = m
	}
	t.AddRowf(mean...)
	res.Text = joinSections(t.String(),
		"The hash matters because path history, index, and tag all consume it: "+
			"dropping branch outcomes (pc-only) makes same-start traces "+
			"indistinguishable in the history; an unstructured fold performs close "+
			"to the paper's layout, whose value is mainly in placing "+
			"high-entropy bits where short DOLC budgets look.")
	return res, nil
}

func init() {
	register(Experiment{
		Name:  "ablation-hash",
		Title: "Ablation: hashed identifier construction",
		Desc:  "Paper's §3.2 hash vs pc-only vs unstructured XOR fold.",
		Run:   ablationHash,
	})
}
