package experiments

import (
	"pathtrace/internal/branchpred"
	"pathtrace/internal/predictor"
	"pathtrace/internal/stats"
	"pathtrace/internal/trace"
)

// realistic revisits §3's claim that "next trace predictors replace the
// conventional branch predictor, branch target buffer (BTB) and return
// address stack (RAS)": the sequential baseline is re-run with *real*
// front-end components (a bounded RAS, a tagged BTB) instead of the
// perfect ones, which is what an actual conventional front end has. The
// path-based predictor needs none of those structures.
func realistic(opt Options) (*Result, error) {
	ws, err := opt.workloads()
	if err != nil {
		return nil, err
	}
	res := newResult("realistic")
	t := stats.NewTable("Conventional front end with real components vs the trace predictor (trace misp %)",
		"benchmark", "seq perfect BTB/RAS", "seq real BTB+RAS-16", "return misp %", "path 2^16 d7")
	var sums [3]float64
	for _, w := range ws {
		ideal, err := branchpred.NewSequential(branchpred.SequentialConfig{})
		if err != nil {
			return nil, err
		}
		real, err := branchpred.NewSequential(branchpred.SequentialConfig{
			RealRAS: 16, RealBTB: 12,
		})
		if err != nil {
			return nil, err
		}
		path, err := predictor.New(opt.applyBackend(predictor.Config{
			Depth: maxDepth, IndexBits: 16, Hybrid: true, UseRHS: true,
		}))
		if err != nil {
			return nil, err
		}
		if _, _, err := opt.Stream(w,
			func(tr *trace.Trace) { ideal.ObserveTrace(tr) },
			func(tr *trace.Trace) { real.ObserveTrace(tr) },
			func(tr *trace.Trace) {
				path.Predict()
				path.Update(tr)
			},
		); err != nil {
			return nil, err
		}
		iv := ideal.Stats().TraceMissRate()
		rv := real.Stats().TraceMissRate()
		pv := path.Stats().MissRate()
		t.AddRowf(w.Name, iv, rv, real.Stats().ReturnMissRate(), pv)
		res.Values[w.Name+".ideal"] = iv
		res.Values[w.Name+".real"] = rv
		res.Values[w.Name+".return_miss"] = real.Stats().ReturnMissRate()
		res.Values[w.Name+".path"] = pv
		sums[0] += iv
		sums[1] += rv
		sums[2] += pv
	}
	n := float64(len(ws))
	t.AddRowf("MEAN", sums[0]/n, sums[1]/n, "", sums[2]/n)
	res.Values["mean.ideal"] = sums[0] / n
	res.Values["mean.real"] = sums[1] / n
	res.Values["mean.path"] = sums[2] / n
	res.Text = joinSections(t.String(),
		"The gap between the two sequential columns is the price of real front-end "+
			"structures: a tagged BTB's capacity and conflict misses dominate on the "+
			"large-footprint benchmarks (gcc), while the bounded RAS stays accurate as "+
			"long as call/return discipline holds. The path-based predictor needs "+
			"neither structure (§3).")
	return res, nil
}

func init() {
	register(Experiment{
		Name:  "realistic",
		Title: "§3: replacing the conventional BTB/RAS front end",
		Desc:  "Sequential baseline with real RAS and BTB vs the perfect-component baseline vs path-based.",
		Run:   realistic,
	})
}
