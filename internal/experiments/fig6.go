package experiments

import (
	"fmt"

	"pathtrace/internal/branchpred"
	"pathtrace/internal/predictor"
	"pathtrace/internal/stats"
	"pathtrace/internal/trace"
)

// maxDepth is the deepest path history studied (paper: depths 0..7).
const maxDepth = 7

func depthAxis() []float64 {
	x := make([]float64, maxDepth+1)
	for i := range x {
		x[i] = float64(i)
	}
	return x
}

// fig6 regenerates "Next trace prediction with unbounded tables"
// (paper Figure 6): misprediction rate versus history depth for the
// correlated predictor, the hybrid predictor, and the hybrid with the
// Return History Stack — all with unbounded tables — against the
// idealized sequential baseline.
func fig6(opt Options) (*Result, error) {
	ws, err := opt.workloads()
	if err != nil {
		return nil, err
	}
	res := newResult("fig6")
	variants := []struct {
		key string
		mk  func(depth int) (predictor.NextTracePredictor, error)
	}{
		{"correlated", func(d int) (predictor.NextTracePredictor, error) {
			return predictor.NewUnbounded(predictor.UnboundedConfig{Depth: d})
		}},
		{"hybrid", func(d int) (predictor.NextTracePredictor, error) {
			return predictor.NewUnbounded(predictor.UnboundedConfig{Depth: d, Hybrid: true})
		}},
		{"hybrid+rhs", func(d int) (predictor.NextTracePredictor, error) {
			return predictor.NewUnbounded(predictor.UnboundedConfig{Depth: d, Hybrid: true, UseRHS: true})
		}},
	}

	var sections []string
	meanPerVariant := make([][]float64, len(variants)) // [variant][depth] accumulating
	for i := range meanPerVariant {
		meanPerVariant[i] = make([]float64, maxDepth+1)
	}
	var meanSeq float64

	for _, w := range ws {
		preds := make([][]predictor.NextTracePredictor, len(variants))
		var consumers []func(*trace.Trace)
		for vi, v := range variants {
			preds[vi] = make([]predictor.NextTracePredictor, maxDepth+1)
			for d := 0; d <= maxDepth; d++ {
				p, err := v.mk(d)
				if err != nil {
					return nil, err
				}
				preds[vi][d] = p
				consumers = append(consumers, func(tr *trace.Trace) {
					p.Predict()
					p.Update(tr)
				})
			}
		}
		seq, err := branchpred.NewSequential(branchpred.SequentialConfig{})
		if err != nil {
			return nil, err
		}
		consumers = append(consumers, func(tr *trace.Trace) { seq.ObserveTrace(tr) })

		if _, _, err := opt.Stream(w, consumers...); err != nil {
			return nil, err
		}

		fig := &stats.Figure{
			Title:  fmt.Sprintf("Figure 6 (%s): unbounded tables, misprediction %% vs history depth", w.Name),
			XLabel: "depth",
			X:      depthAxis(),
		}
		for vi, v := range variants {
			y := make([]float64, maxDepth+1)
			for d := 0; d <= maxDepth; d++ {
				y[d] = preds[vi][d].Stats().MissRate()
				meanPerVariant[vi][d] += y[d]
				res.Values[fmt.Sprintf("%s.%s.d%d", w.Name, v.key, d)] = y[d]
			}
			fig.Add(v.key, y)
		}
		seqRate := seq.Stats().TraceMissRate()
		meanSeq += seqRate
		res.Values[w.Name+".sequential"] = seqRate
		flat := make([]float64, maxDepth+1)
		for i := range flat {
			flat[i] = seqRate
		}
		fig.Add("sequential", flat)
		sections = append(sections, fig.String())
	}

	// Mean across benchmarks.
	n := float64(len(ws))
	fig := &stats.Figure{
		Title:  "Figure 6 (MEAN): unbounded tables, misprediction % vs history depth",
		XLabel: "depth",
		X:      depthAxis(),
	}
	for vi, v := range variants {
		y := make([]float64, maxDepth+1)
		for d := range y {
			y[d] = meanPerVariant[vi][d] / n
			res.Values[fmt.Sprintf("mean.%s.d%d", v.key, d)] = y[d]
		}
		fig.Add(v.key, y)
	}
	flat := make([]float64, maxDepth+1)
	for i := range flat {
		flat[i] = meanSeq / n
	}
	fig.Add("sequential", flat)
	res.Values["mean.sequential"] = meanSeq / n
	sections = append(sections, fig.String())

	best := res.Values[fmt.Sprintf("mean.%s.d%d", "hybrid+rhs", maxDepth)]
	if seqMean := meanSeq / n; seqMean > 0 {
		res.Values["mean.reduction_vs_sequential_pct"] = 100 * (seqMean - best) / seqMean
		sections = append(sections, fmt.Sprintf(
			"mean misprediction at depth %d (hybrid+RHS, unbounded): %.2f%%; sequential: %.2f%%; reduction: %.1f%%",
			maxDepth, best, seqMean, res.Values["mean.reduction_vs_sequential_pct"]))
	}
	res.Text = joinSections(sections...)
	return res, nil
}

func init() {
	register(Experiment{
		Name:  "fig6",
		Title: "Figure 6: Next trace prediction with unbounded tables",
		Desc:  "Misprediction vs history depth 0-7 for correlated / hybrid / hybrid+RHS with unbounded tables.",
		Run:   fig6,
	})
}
