package experiments

import (
	"fmt"

	"pathtrace/internal/branchpred"
	"pathtrace/internal/predictor"
	"pathtrace/internal/stats"
	"pathtrace/internal/trace"
)

// headline regenerates the paper's summary claim: the proposed
// predictor's mean misprediction rate, compared with the most
// aggressive previously proposed multiple-branch prediction method
// (the idealized sequential baseline). The paper reports roughly a
// quarter reduction for the 2^16-entry configuration (8.9% vs 11.1%)
// and 34% with unbounded tables.
func headline(opt Options) (*Result, error) {
	ws, err := opt.workloads()
	if err != nil {
		return nil, err
	}
	res := newResult("headline")
	t := stats.NewTable("Headline: path-based next trace predictor vs idealized sequential baseline",
		"benchmark", "sequential misp %", "2^16 hybrid+RHS misp %", "unbounded misp %")
	var seqs, bounded, unbounded []float64
	cfgB := opt.applyBackend(predictor.Config{Depth: maxDepth, IndexBits: 16, Hybrid: true, UseRHS: true})
	for _, w := range ws {
		seq, err := branchpred.NewSequential(branchpred.SequentialConfig{})
		if err != nil {
			return nil, err
		}
		pb, err := predictor.New(cfgB)
		if err != nil {
			return nil, err
		}
		pu, err := predictor.NewUnbounded(predictor.UnboundedConfig{Depth: maxDepth, Hybrid: true, UseRHS: true})
		if err != nil {
			return nil, err
		}
		if _, _, err := opt.Stream(w,
			func(tr *trace.Trace) { seq.ObserveTrace(tr) },
			func(tr *trace.Trace) {
				pb.Predict()
				pb.Update(tr)
			},
			func(tr *trace.Trace) {
				pu.Predict()
				pu.Update(tr)
			},
		); err != nil {
			return nil, err
		}
		s, b, u := seq.Stats().TraceMissRate(), pb.Stats().MissRate(), pu.Stats().MissRate()
		t.AddRowf(w.Name, s, b, u)
		res.Values[w.Name+".sequential"] = s
		res.Values[w.Name+".bounded"] = b
		res.Values[w.Name+".unbounded"] = u
		seqs = append(seqs, s)
		bounded = append(bounded, b)
		unbounded = append(unbounded, u)
	}
	ms, mb, mu := stats.Mean(seqs), stats.Mean(bounded), stats.Mean(unbounded)
	t.AddRowf("MEAN", ms, mb, mu)
	res.Values["mean.sequential"] = ms
	res.Values["mean.bounded"] = mb
	res.Values["mean.unbounded"] = mu
	var lines []string
	if ms > 0 {
		rb := 100 * (ms - mb) / ms
		ru := 100 * (ms - mu) / ms
		res.Values["reduction.bounded_pct"] = rb
		res.Values["reduction.unbounded_pct"] = ru
		lines = append(lines,
			fmt.Sprintf("bounded 2^16 predictor: %.1f%% lower mean misprediction than the sequential baseline (paper: ~26%%)", rb),
			fmt.Sprintf("unbounded predictor:    %.1f%% lower mean misprediction than the sequential baseline (paper: 34%%)", ru))
	}
	res.Text = joinSections(append([]string{t.String()}, lines...)...)
	return res, nil
}

func init() {
	register(Experiment{
		Name:  "headline",
		Title: "Headline comparison",
		Desc:  "Mean misprediction: proposed predictor vs the idealized sequential baseline.",
		Run:   headline,
	})
}
