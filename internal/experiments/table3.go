package experiments

import (
	"fmt"

	"pathtrace/internal/history"
	"pathtrace/internal/stats"
)

// table3 prints the DOLC index-generation configurations used for each
// history depth and table size (paper Table 3). The published table is
// partly illegible in the archived text; these configurations were
// chosen by the same trial-and-error procedure the paper describes and
// are the ones every bounded experiment in this repository uses.
func table3(Options) (*Result, error) {
	res := newResult("table3")
	t := stats.NewTable("Table 3: Index generation configurations used (D-O-L-C, fold parts)",
		"depth", "14-bit index", "15-bit index", "16-bit index")
	for d := 0; d <= maxDepth; d++ {
		row := []string{fmt.Sprintf("%d", d)}
		for _, w := range []int{14, 15, 16} {
			cfg := history.StandardDOLC(w, d)
			row = append(row, fmt.Sprintf("%s (%dp)", cfg, cfg.Parts()))
			res.Values[fmt.Sprintf("w%d.d%d.parts", w, d)] = float64(cfg.Parts())
		}
		t.AddRow(row...)
	}
	res.Text = joinSections(t.String())
	return res, nil
}

func init() {
	register(Experiment{
		Name:  "table3",
		Title: "Table 3: DOLC index generation configurations",
		Desc:  "The D-O-L-C parameters used for 14/15/16-bit indexes at each history depth.",
		Run:   table3,
		// table3 renders the DOLC parameter listing; it never touches a
		// workload, so the harness gives it a single cell.
		Global: true,
	})
}
