package experiments

import (
	"fmt"
	"testing"

	"pathtrace/internal/faults"
)

// TestFaultsExperiment checks the two robustness invariants the faults
// experiment is built around: bit-for-bit reproducibility under a fixed
// seed, and (graceful, monotone) degradation as the injection rate
// scales — the fault sets are nested by construction, so the curve may
// flatten but must not improve.
func TestFaultsExperiment(t *testing.T) {
	opt := Options{
		Limit:     120_000,
		Workloads: []string{"compress"},
		Faults:    &faults.Config{Table: 5e-3, History: 5e-4, Seed: 7},
	}
	r1, err := faultsExp(opt)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := faultsExp(opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(r1.Values) == 0 {
		t.Fatal("faults experiment produced no values")
	}
	for k, v := range r1.Values {
		if r2.Values[k] != v {
			t.Errorf("same-seed runs differ at %s: %g vs %g", k, v, r2.Values[k])
		}
	}
	if r1.Text != r2.Text {
		t.Error("same-seed runs rendered different text")
	}

	// Monotone degradation across the multiplier sweep. The coupled fire
	// stream makes the fault set at each point a superset of the one
	// before, so accuracy can only get worse; a tiny epsilon absorbs the
	// rare fault that happens to help.
	const eps = 0.05
	prev := r1.Values["mean.x0"]
	for _, m := range faultMultipliers[1:] {
		cur, ok := r1.Values[fmt.Sprintf("mean.x%d", m)]
		if !ok {
			t.Fatalf("missing mean.x%d", m)
		}
		if cur+eps < prev {
			t.Errorf("degradation not monotone: mean.x%d = %g below previous %g", m, cur, prev)
		}
		prev = cur
	}
	clean := r1.Values["mean.x0"]
	worst := r1.Values[fmt.Sprintf("mean.x%d", faultMultipliers[len(faultMultipliers)-1])]
	if worst <= clean {
		t.Errorf("no measurable degradation: clean %g, x%d %g",
			clean, faultMultipliers[len(faultMultipliers)-1], worst)
	}

	// A different seed must produce a different fault pattern somewhere
	// in the sweep (at these rates thousands of faults fire).
	opt.Faults = &faults.Config{Table: 5e-3, History: 5e-4, Seed: 8}
	r3, err := faultsExp(opt)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for k, v := range r1.Values {
		if r3.Values[k] != v {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical metrics")
	}
}

// TestFaultsExperimentCleanBaseline: with injection disabled the x0 and
// x1 points coincide with a fault-free predictor (Scale(0) and a nil
// injector must agree).
func TestFaultsExperimentDefaults(t *testing.T) {
	opt := Options{Limit: 60_000, Workloads: []string{"compress"}}
	res, err := faultsExp(opt)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := res.Values["mean.x0"]; !ok {
		t.Fatal("default run missing mean.x0")
	}
	if res.Values["compress.x0.faults"] != 0 {
		t.Errorf("x0 injected %g faults, want 0", res.Values["compress.x0.faults"])
	}
}
