package experiments

import (
	"pathtrace/internal/engine"
	"pathtrace/internal/predictor"
	"pathtrace/internal/stats"
	"pathtrace/internal/trace"
)

// table4 regenerates the delayed-update study (paper Table 4): the
// 2^16-entry hybrid+RHS predictor with ideal (immediate) updates versus
// real updates through the out-of-order execution engine, where the
// history register is speculative and the tables update at retirement.
func table4(opt Options) (*Result, error) {
	ws, err := opt.workloads()
	if err != nil {
		return nil, err
	}
	res := newResult("table4")
	t := stats.NewTable("Table 4: Impact of real (delayed) updates, 2^16 entries, depth 7",
		"benchmark", "misp % ideal updates", "misp % real updates", "delta", "engine IPC")
	cfg := predictor.Config{Depth: maxDepth, IndexBits: 16, Hybrid: true, UseRHS: true}
	for _, w := range ws {
		ideal, err := predictor.New(opt.applyBackend(cfg))
		if err != nil {
			return nil, err
		}
		real, err := predictor.NewHybrid(cfg)
		if err != nil {
			return nil, err
		}
		eng, err := engine.New(engine.DefaultConfig(), real)
		if err != nil {
			return nil, err
		}
		if _, _, err := opt.Stream(w,
			func(tr *trace.Trace) {
				ideal.Predict()
				ideal.Update(tr)
			},
			func(tr *trace.Trace) { eng.Feed(tr) },
		); err != nil {
			return nil, err
		}
		engRes := eng.Finish()
		im, rm := ideal.Stats().MissRate(), engRes.Stats.MissRate()
		t.AddRowf(w.Name, im, rm, rm-im, engRes.IPC())
		res.Values[w.Name+".ideal"] = im
		res.Values[w.Name+".real"] = rm
		res.Values[w.Name+".ipc"] = engRes.IPC()
	}
	res.Text = joinSections(t.String())
	return res, nil
}

func init() {
	register(Experiment{
		Name:  "table4",
		Title: "Table 4: Impact of delayed updates",
		Desc:  "Ideal (immediate) vs real (retirement-time) predictor updates through the OoO engine.",
		Run:   table4,
	})
}
