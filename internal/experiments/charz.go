package experiments

import (
	"fmt"
	"math"

	"pathtrace/internal/charz"
	"pathtrace/internal/predictor"
	"pathtrace/internal/stats"
	"pathtrace/internal/trace"
	"pathtrace/internal/workload"
)

// charzRun characterizes workload predictability and correlates the
// metrics with every backend's actual misprediction rate. It is the
// experiment behind the adversarial workload zoo: the paper's six
// benchmarks are all learnable by a big-enough path predictor, so the
// zoo's synthetic workloads (wild data-dependent branches, indirect
// storms, phase shifters, noisy Markov tables) supply the other end of
// each metric's axis — and demonstrate which backends degrade
// gracefully when predictability collapses.
//
// With no -workloads subset the run covers the canonical six plus the
// whole zoo.
func charzRun(opt Options) (*Result, error) {
	var ws []*workload.Workload
	if len(opt.Workloads) == 0 {
		ws = append(workload.All(), workload.Zoo()...)
	} else {
		var err error
		if ws, err = opt.workloads(); err != nil {
			return nil, err
		}
	}
	res := newResult("charz")
	backends := predictor.Backends()

	depths := charz.DefaultDepths
	headline := depths[len(depths)-1] // the paper's depth-7 headline

	ct := stats.NewTable(
		fmt.Sprintf("Workload predictability: entropy (bits), transition rate, depth-%d working set, H2P set", headline),
		"workload", "traces", "static", "H(next)", "trans%",
		fmt.Sprintf("H(next|p%d)", headline), fmt.Sprintf("pairs%d", headline),
		fmt.Sprintf("novel%d%%", headline), "h2p", "h2p%stat")
	cols := []string{"workload"}
	for _, b := range backends {
		cols = append(cols, b.Name)
	}
	mt := stats.NewTable("Misprediction % per backend (paper geometry: 2^16 entries, depth 7)", cols...)

	// Per-workload metric and miss-rate vectors for the correlation
	// pass, in run order.
	type row struct {
		w      *workload.Workload
		rep    *charz.Report
		miss   map[string]float64
		hybrid float64
		isZoo  bool
	}
	var rows []row

	for _, w := range ws {
		an, err := charz.New(charz.Config{Depths: depths})
		if err != nil {
			return nil, err
		}
		preds := make([]predictor.NextTracePredictor, len(backends))
		consumers := []func(*trace.Trace){an.Consume}
		for i, b := range backends {
			p, err := predictor.New(backendConfig(b.Name))
			if err != nil {
				return nil, fmt.Errorf("experiments: backend %q: %w", b.Name, err)
			}
			preds[i] = p
			consumers = append(consumers, func(tr *trace.Trace) {
				p.Predict()
				p.Update(tr)
			})
		}
		instrs, _, err := opt.Stream(w, consumers...)
		if err != nil {
			return nil, err
		}
		rep := an.Report()
		rep.Workload = w.Name
		rep.Params = w.Params
		rep.Instrs = instrs

		hd := rep.Depths[len(rep.Depths)-1]
		ct.AddRowf(w.Name, float64(rep.Traces), float64(rep.DistinctTraces),
			rep.TraceEntropy, rep.TransitionRate, hd.CondEntropy, float64(hd.Pairs),
			hd.NoveltyPct, float64(rep.H2PSize), rep.H2PShare)

		miss := map[string]float64{}
		mrow := []any{w.Name}
		for i, b := range backends {
			v := preds[i].Stats().MissRate()
			miss[b.Name] = v
			mrow = append(mrow, v)
			res.Values[w.Name+"."+b.Name] = v
		}
		mt.AddRowf(mrow...)

		res.Values[w.Name+".trace_entropy"] = rep.TraceEntropy
		res.Values[w.Name+".transition_rate"] = rep.TransitionRate
		res.Values[fmt.Sprintf("%s.cond_entropy%d", w.Name, headline)] = hd.CondEntropy
		res.Values[fmt.Sprintf("%s.pairs%d", w.Name, headline)] = float64(hd.Pairs)
		res.Values[fmt.Sprintf("%s.novelty%d", w.Name, headline)] = hd.NoveltyPct
		res.Values[w.Name+".h2p_size"] = float64(rep.H2PSize)
		res.Values[w.Name+".h2p_share"] = rep.H2PShare
		res.Values[w.Name+".ref_missrate"] = rep.RefMissRate

		rows = append(rows, row{
			w: w, rep: rep, miss: miss, hybrid: miss["hybrid"],
			isZoo: w.Synthetic,
		})
	}

	// Group means: do the zoo members actually sit on the hard side?
	var lines []string
	for _, grp := range []struct {
		key   string
		zoo   bool
		label string
	}{{"canonical", false, "canonical"}, {"zoo", true, "zoo"}} {
		var n float64
		sums := map[string]float64{}
		for _, r := range rows {
			if r.isZoo != grp.zoo {
				continue
			}
			n++
			for b, v := range r.miss {
				sums[b] += v
			}
		}
		if n == 0 {
			continue
		}
		for _, b := range backends {
			res.Values["mean-"+grp.key+"."+b.Name] = sums[b.Name] / n
		}
		lines = append(lines, fmt.Sprintf("%s mean: hybrid %.2f%%, tage %.2f%% (%d workloads)",
			grp.label, sums["hybrid"]/n, sums["tage"]/n, int(n)))
	}

	// Adversarial ratios against compress, the classic learnable
	// baseline, when it is in the run.
	var compressHybrid float64
	for _, r := range rows {
		if r.w.Name == "compress" {
			compressHybrid = r.hybrid
		}
	}
	if compressHybrid > 0 {
		for _, r := range rows {
			if !r.isZoo {
				continue
			}
			ratio := r.hybrid / compressHybrid
			res.Values["adv_ratio."+r.w.Name] = ratio
			grace := "-"
			if tg, ok := r.miss["tage"]; ok && r.hybrid > 0 {
				grace = fmt.Sprintf("tage %.1f%% lower", 100*(r.hybrid-tg)/r.hybrid)
			}
			lines = append(lines, fmt.Sprintf("adv %s: %.1fx the hybrid misses of compress (%s)",
				r.w.Name, ratio, grace))
		}
	}

	// Metric→misprediction correlation across the run's workloads:
	// which predictability metric best anticipates the hybrid's
	// actual miss rate?
	if len(rows) >= 3 {
		hybridMiss := make([]float64, len(rows))
		for i, r := range rows {
			hybridMiss[i] = r.hybrid
		}
		// The deep conditional entropy is deliberately absent: its
		// plug-in estimate collapses to 0 once paths stop repeating
		// (see charz.DepthStats.CondEntropy), so it anti-correlates
		// with difficulty on adversarial streams. NoveltyPct is the
		// depth-aware difficulty signal that survives that regime.
		metrics := []struct {
			key string
			val func(r row) float64
		}{
			{"trace_entropy", func(r row) float64 { return r.rep.TraceEntropy }},
			{"transition_rate", func(r row) float64 { return r.rep.TransitionRate }},
			{"cond_entropy1", func(r row) float64 { return r.rep.Depths[0].CondEntropy }},
			{fmt.Sprintf("novelty%d", headline), func(r row) float64 {
				return r.rep.Depths[len(r.rep.Depths)-1].NoveltyPct
			}},
			{"h2p_share", func(r row) float64 { return r.rep.H2PShare }},
		}
		for _, m := range metrics {
			xs := make([]float64, len(rows))
			for i, r := range rows {
				xs[i] = m.val(r)
			}
			if c, ok := pearson(xs, hybridMiss); ok {
				res.Values["corr."+m.key] = c
				lines = append(lines, fmt.Sprintf("corr(%s, hybrid miss%%) = %+.3f  (n=%d)",
					m.key, c, len(rows)))
			}
		}
	}

	res.Text = joinSections(append([]string{ct.String(), mt.String()}, lines...)...)
	return res, nil
}

// pearson returns the Pearson correlation coefficient of two equal-
// length vectors; ok is false when either vector is constant (the
// coefficient is undefined).
func pearson(xs, ys []float64) (float64, bool) {
	n := float64(len(xs))
	var mx, my float64
	for i := range xs {
		mx += xs[i]
		my += ys[i]
	}
	mx /= n
	my /= n
	var sxy, sxx, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0, false
	}
	return sxy / math.Sqrt(sxx*syy), true
}

func init() {
	register(Experiment{
		Name:  "charz",
		Title: "Workload predictability characterization",
		Desc:  "Entropy/transition/H2P metrics vs per-backend miss rates, across the benchmarks and the adversarial zoo.",
		Run:   charzRun,
	})
}
