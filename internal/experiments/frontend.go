package experiments

import (
	"pathtrace/internal/cache"
	"pathtrace/internal/engine"
	"pathtrace/internal/predictor"
	"pathtrace/internal/stats"
	"pathtrace/internal/trace"
	"pathtrace/internal/tracecache"
)

// frontend ties predictor accuracy to delivered fetch bandwidth: the
// out-of-order engine with the 64KB trace cache attached, run with (a)
// an oracle predictor (machine ceiling), (b) the depth-7 hybrid+RHS,
// (c) the same with §6's alternate-trace recovery, and (d) a depth-0
// predictor. This is the "so what" of the paper: each point of trace
// misprediction costs front-end bandwidth.
func frontend(opt Options) (*Result, error) {
	ws, err := opt.workloads()
	if err != nil {
		return nil, err
	}
	res := newResult("frontend")
	t := stats.NewTable("Front-end IPC: OoO engine + 64KB trace cache (8-wide, 64-entry window)",
		"benchmark", "oracle IPC", "depth-7 IPC", "depth-7+alt IPC", "depth-0 IPC",
		"d7 + 4KB I$/D$ IPC", "tc hit %", "alt recoveries")
	type variant struct {
		key    string
		depth  int
		oracle bool
		alt    bool
		mem    bool
	}
	variants := []variant{
		{"oracle", maxDepth, true, false, false},
		{"d7", maxDepth, false, false, false},
		{"d7alt", maxDepth, false, true, false},
		{"d0", 0, false, false, false},
		{"d7mem", maxDepth, false, false, true},
	}
	for _, w := range ws {
		engines := make([]*engine.Engine, len(variants))
		var consumers []func(*trace.Trace)
		for i, v := range variants {
			p, err := predictor.NewHybrid(predictor.Config{
				Depth: v.depth, IndexBits: 16, Hybrid: true, UseRHS: true,
			})
			if err != nil {
				return nil, err
			}
			cfg := engine.DefaultConfig()
			cfg.TraceCache, err = tracecache.New(tracecache.DefaultConfig())
			if err != nil {
				return nil, err
			}
			cfg.Oracle = v.oracle
			cfg.AltRecovery = v.alt
			if v.mem {
				// The paper's full engine: 4KB I-cache and 4KB D-cache.
				if cfg.ICache, err = cache.New(cache.ICache4K()); err != nil {
					return nil, err
				}
				if cfg.DCache, err = cache.New(cache.DCache4K()); err != nil {
					return nil, err
				}
			}
			e, err := engine.New(cfg, p)
			if err != nil {
				return nil, err
			}
			engines[i] = e
			consumers = append(consumers, func(tr *trace.Trace) { e.Feed(tr) })
		}
		if _, _, err := opt.Stream(w, consumers...); err != nil {
			return nil, err
		}
		results := make([]engine.Result, len(variants))
		for i, e := range engines {
			results[i] = e.Finish()
			res.Values[w.Name+"."+variants[i].key+".ipc"] = results[i].IPC()
		}
		hitRate := 100 * float64(results[1].TCHits) / float64(results[1].TCHits+results[1].TCMisses)
		res.Values[w.Name+".tc_hit"] = hitRate
		res.Values[w.Name+".alt_recoveries"] = float64(results[2].AltRecoveries)
		t.AddRowf(w.Name, results[0].IPC(), results[1].IPC(), results[2].IPC(), results[3].IPC(),
			results[4].IPC(), hitRate, results[2].AltRecoveries)
	}
	res.Text = joinSections(t.String(),
		"Oracle isolates the machine + trace cache ceiling; the gap to depth-7 is the "+
			"cost of real prediction, the gap from depth-0 to depth-7 is what path history "+
			"buys, alternate recovery (§6) claws back part of the remaining misprediction "+
			"penalty, and the last column adds the paper's 4KB instruction and data caches "+
			"to the machine model.")
	return res, nil
}

func init() {
	register(Experiment{
		Name:  "frontend",
		Title: "Front-end bandwidth: predictor + trace cache + engine",
		Desc:  "IPC with oracle / depth-7 / depth-7+alternate-recovery / depth-0 prediction.",
		Run:   frontend,
	})
}
