package experiments

import (
	"fmt"

	"pathtrace/internal/predictor"
	"pathtrace/internal/stats"
	"pathtrace/internal/trace"
)

// confidence evaluates the JRS resetting-counter confidence estimator
// attached to the depth-7 hybrid+RHS predictor: what fraction of
// predictions can be flagged high-confidence, and how accurate the two
// classes are. The useful shape: high-confidence accuracy near 100%
// with substantial coverage, so speculation depth can be gated by
// confidence.
func confidence(opt Options) (*Result, error) {
	ws, err := opt.workloads()
	if err != nil {
		return nil, err
	}
	res := newResult("confidence")
	thresholds := []int{4, 8, 12}
	var sections []string
	for _, thr := range thresholds {
		t := stats.NewTable(
			fmt.Sprintf("Confidence (resetting 4-bit counters, threshold %d), 2^16 hybrid+RHS depth 7", thr),
			"benchmark", "coverage %", "high-conf acc %", "low-conf acc %", "overall acc %")
		for _, w := range ws {
			c, err := predictor.NewConfident(predictor.ConfidentConfig{
				Predictor: predictor.Config{Depth: maxDepth, IndexBits: 16, Hybrid: true, UseRHS: true},
				Threshold: thr,
			})
			if err != nil {
				return nil, err
			}
			if _, _, err := opt.Stream(w, func(tr *trace.Trace) {
				c.Predict()
				c.Update(tr)
			}); err != nil {
				return nil, err
			}
			cs := c.ConfStats()
			overall := 100 - c.Stats().MissRate()
			t.AddRowf(w.Name, cs.Coverage(), cs.HighAccuracy(), cs.LowAccuracy(), overall)
			key := fmt.Sprintf("%s.t%d.", w.Name, thr)
			res.Values[key+"coverage"] = cs.Coverage()
			res.Values[key+"high_acc"] = cs.HighAccuracy()
			res.Values[key+"low_acc"] = cs.LowAccuracy()
		}
		sections = append(sections, t.String())
	}
	res.Text = joinSections(sections...)
	return res, nil
}

func init() {
	register(Experiment{
		Name:  "confidence",
		Title: "Extension: JRS confidence estimation for trace predictions",
		Desc:  "Resetting-counter confidence: coverage vs accuracy at several thresholds.",
		Run:   confidence,
	})
}
