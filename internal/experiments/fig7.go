package experiments

import (
	"fmt"

	"pathtrace/internal/branchpred"
	"pathtrace/internal/predictor"
	"pathtrace/internal/stats"
	"pathtrace/internal/trace"
)

// fig7Sizes are the bounded correlated-table sizes studied (paper
// Figure 7: 2^14, 2^15 and 2^16 entries).
var fig7Sizes = []int{14, 15, 16}

// fig7 regenerates "Next trace prediction" with bounded tables (paper
// Figure 7): misprediction rate versus history depth for hybrid+RHS
// predictors with 2^14 / 2^15 / 2^16-entry correlated tables, against
// the idealized sequential baseline. Aliasing makes deep histories
// hurt, sooner for smaller tables — the paper's central finite-table
// result.
func fig7(opt Options) (*Result, error) {
	ws, err := opt.workloads()
	if err != nil {
		return nil, err
	}
	res := newResult("fig7")
	var sections []string
	meanPerSize := make(map[int][]float64, len(fig7Sizes))
	for _, sz := range fig7Sizes {
		meanPerSize[sz] = make([]float64, maxDepth+1)
	}
	var meanSeq float64

	for _, w := range ws {
		preds := map[int][]predictor.NextTracePredictor{}
		var consumers []func(*trace.Trace)
		for _, sz := range fig7Sizes {
			row := make([]predictor.NextTracePredictor, maxDepth+1)
			for d := 0; d <= maxDepth; d++ {
				p, err := predictor.New(opt.applyBackend(predictor.Config{
					Depth: d, IndexBits: sz, Hybrid: true, UseRHS: true,
				}))
				if err != nil {
					return nil, err
				}
				row[d] = p
				consumers = append(consumers, func(tr *trace.Trace) {
					p.Predict()
					p.Update(tr)
				})
			}
			preds[sz] = row
		}
		seq, err := branchpred.NewSequential(branchpred.SequentialConfig{})
		if err != nil {
			return nil, err
		}
		consumers = append(consumers, func(tr *trace.Trace) { seq.ObserveTrace(tr) })

		if _, _, err := opt.Stream(w, consumers...); err != nil {
			return nil, err
		}

		fig := &stats.Figure{
			Title:  fmt.Sprintf("Figure 7 (%s): bounded tables, misprediction %% vs history depth", w.Name),
			XLabel: "depth",
			X:      depthAxis(),
		}
		for _, sz := range fig7Sizes {
			y := make([]float64, maxDepth+1)
			for d := 0; d <= maxDepth; d++ {
				y[d] = preds[sz][d].Stats().MissRate()
				meanPerSize[sz][d] += y[d]
				res.Values[fmt.Sprintf("%s.2^%d.d%d", w.Name, sz, d)] = y[d]
			}
			fig.Add(fmt.Sprintf("2^%d entries", sz), y)
		}
		seqRate := seq.Stats().TraceMissRate()
		meanSeq += seqRate
		res.Values[w.Name+".sequential"] = seqRate
		flat := make([]float64, maxDepth+1)
		for i := range flat {
			flat[i] = seqRate
		}
		fig.Add("sequential", flat)
		sections = append(sections, fig.String())
	}

	n := float64(len(ws))
	fig := &stats.Figure{
		Title:  "Figure 7 (MEAN): bounded tables, misprediction % vs history depth",
		XLabel: "depth",
		X:      depthAxis(),
	}
	summary := stats.NewTable("Mean misprediction at maximum depth (paper: 10.0 / 9.5 / 8.9 vs 11.1 sequential)",
		"config", "mean misp %")
	for _, sz := range fig7Sizes {
		y := make([]float64, maxDepth+1)
		for d := range y {
			y[d] = meanPerSize[sz][d] / n
			res.Values[fmt.Sprintf("mean.2^%d.d%d", sz, d)] = y[d]
		}
		fig.Add(fmt.Sprintf("2^%d entries", sz), y)
		summary.AddRowf(fmt.Sprintf("2^%d entries, depth %d", sz, maxDepth), y[maxDepth])
	}
	flat := make([]float64, maxDepth+1)
	for i := range flat {
		flat[i] = meanSeq / n
	}
	fig.Add("sequential", flat)
	res.Values["mean.sequential"] = meanSeq / n
	summary.AddRowf("sequential baseline", meanSeq/n)
	if seqMean := meanSeq / n; seqMean > 0 {
		best := res.Values[fmt.Sprintf("mean.2^16.d%d", maxDepth)]
		res.Values["mean.reduction_vs_sequential_pct"] = 100 * (seqMean - best) / seqMean
	}
	sections = append(sections, fig.String(), summary.String())
	res.Text = joinSections(sections...)
	return res, nil
}

func init() {
	register(Experiment{
		Name:  "fig7",
		Title: "Figure 7: Next trace prediction with bounded tables",
		Desc:  "Misprediction vs depth for hybrid+RHS at 2^14/2^15/2^16 correlated-table entries.",
		Run:   fig7,
	})
}
