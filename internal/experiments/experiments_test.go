package experiments

import (
	"strings"
	"testing"

	"pathtrace/internal/faults"
	"pathtrace/internal/stream"
	"pathtrace/internal/trace"
	"pathtrace/internal/workload"
)

// Small budget keeps the full suite fast; shapes asserted here are
// robust well below the default limit.
const testLimit = 400_000

func run(t *testing.T, name string, opt Options) *Result {
	t.Helper()
	e, ok := ByName(name)
	if !ok {
		t.Fatalf("experiment %q not registered", name)
	}
	if opt.Limit == 0 {
		opt.Limit = testLimit
	}
	r, err := e.Run(opt)
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	if r.Text == "" {
		t.Fatalf("%s produced no text", name)
	}
	return r
}

func TestRegistryComplete(t *testing.T) {
	want := []string{"table1", "table2", "table3", "table4",
		"fig6", "fig7", "fig8", "costreduced", "headline",
		"ablation-counter", "ablation-hybrid", "ablation-rhs",
		"ablation-dolc", "ablation-select"}
	names := Names()
	for _, w := range want {
		found := false
		for _, n := range names {
			if n == w {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("experiment %q missing from registry", w)
		}
	}
	if _, ok := ByName("nope"); ok {
		t.Error("ByName(nope) succeeded")
	}
	if len(All()) != len(names) {
		t.Error("All/Names length mismatch")
	}
}

func TestStreamTracesCountsAndChaining(t *testing.T) {
	w, _ := workload.ByName("compress")
	var n uint64
	var lastNext uint32
	broken := 0
	instrs, traces, err := StreamTraces(w, 100_000, func(tr *trace.Trace) {
		n++
		if lastNext != 0 && tr.StartPC != lastNext {
			broken++
		}
		lastNext = tr.NextPC
	})
	if err != nil {
		t.Fatal(err)
	}
	if n != traces || traces == 0 {
		t.Errorf("callback saw %d traces, selector reports %d", n, traces)
	}
	if instrs < 100_000 || instrs > 100_016 {
		t.Errorf("instrs = %d, want ~100000", instrs)
	}
	if broken != 0 {
		t.Errorf("%d broken trace chains", broken)
	}
}

func TestStreamTracesMultipleConsumersSeeSameStream(t *testing.T) {
	w, _ := workload.ByName("mksim")
	var a, b []trace.ID
	_, _, err := StreamTraces(w, 50_000,
		func(tr *trace.Trace) { a = append(a, tr.ID) },
		func(tr *trace.Trace) { b = append(b, tr.ID) },
	)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) == 0 || len(a) != len(b) {
		t.Fatalf("consumer streams differ in length: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("streams diverge at %d", i)
		}
	}
}

// equalValues compares two result Value maps exactly (replay must be
// bit-identical to a fresh simulation, so no tolerance is allowed).
func equalValues(t *testing.T, name string, cached, fresh map[string]float64) {
	t.Helper()
	if len(cached) != len(fresh) {
		t.Errorf("%s: value count differs: cached %d fresh %d", name, len(cached), len(fresh))
	}
	for k, v := range fresh {
		if cv, ok := cached[k]; !ok || cv != v {
			t.Errorf("%s: %s: cached %v fresh %v", name, k, cached[k], v)
		}
	}
}

// TestStreamCacheEquivalence runs experiments once through the stream
// cache and once with NoStreamCache (direct simulation) and requires
// bit-identical results — the cache must be a pure perf optimisation.
func TestStreamCacheEquivalence(t *testing.T) {
	for _, name := range []string{"table2", "fig6", "ablation-select"} {
		name := name
		t.Run(name, func(t *testing.T) {
			opt := Options{Limit: 100_000, Workloads: []string{"compress", "go"}}
			opt.Streams = stream.NewCache()
			cached := run(t, name, opt)
			opt.Streams = nil
			opt.NoStreamCache = true
			fresh := run(t, name, opt)
			equalValues(t, name, cached.Values, fresh.Values)
		})
	}
}

// TestStreamCacheEquivalenceUnderFaults repeats the equivalence check
// for the fault-injection experiment with a fixed seed: faults are
// injected downstream of trace selection, so replayed and fresh runs
// must corrupt identically.
func TestStreamCacheEquivalenceUnderFaults(t *testing.T) {
	mkOpt := func() Options {
		return Options{
			Limit:     100_000,
			Workloads: []string{"compress"},
			Faults:    &faults.Config{Table: 1e-3, History: 1e-4, Seed: 7},
		}
	}
	opt := mkOpt()
	opt.Streams = stream.NewCache()
	cached := run(t, "faults", opt)
	opt = mkOpt()
	opt.NoStreamCache = true
	fresh := run(t, "faults", opt)
	equalValues(t, "faults", cached.Values, fresh.Values)
}

// TestStreamCacheReuse checks a multi-experiment sweep hits the cache
// rather than re-capturing: each (workload, limit, selection) triple is
// simulated once.
func TestStreamCacheReuse(t *testing.T) {
	c := stream.NewCache()
	opt := Options{Limit: 100_000, Workloads: []string{"compress", "go"}, Streams: c}
	run(t, "table2", opt)
	run(t, "fig6", opt)
	st := c.Stats()
	if st.Captures != 2 {
		t.Errorf("captures = %d, want 2 (one per workload)", st.Captures)
	}
	if st.Hits == 0 {
		t.Error("second experiment did not hit the stream cache")
	}
}

func TestOptionsValidation(t *testing.T) {
	e, _ := ByName("table1")
	if _, err := e.Run(Options{Limit: 1000, Workloads: []string{"bogus"}}); err == nil {
		t.Error("unknown workload accepted")
	}
}

func TestTable1Shapes(t *testing.T) {
	r := run(t, "table1", Options{})
	// gcc must have by far the most static traces (its defining trait).
	if r.Values["gcc.static_traces"] <= 2*r.Values["compress.static_traces"] {
		t.Errorf("gcc static traces (%v) not dominant over compress (%v)",
			r.Values["gcc.static_traces"], r.Values["compress.static_traces"])
	}
	for _, w := range workload.Names() {
		l := r.Values[w+".avg_trace_len"]
		if l < 8 || l > 16 {
			t.Errorf("%s avg trace length %v outside [8,16]", w, l)
		}
	}
}

func TestTable2Shapes(t *testing.T) {
	r := run(t, "table2", Options{})
	// jpeg is the most predictable benchmark; gcc among the least.
	if r.Values["jpeg.trace_miss"] >= r.Values["gcc.trace_miss"] {
		t.Errorf("jpeg (%v) not easier than gcc (%v)",
			r.Values["jpeg.trace_miss"], r.Values["gcc.trace_miss"])
	}
	if m := r.Values["mean.trace_miss"]; m <= 0 || m >= 100 {
		t.Errorf("mean trace miss %v out of range", m)
	}
}

func TestTable3Static(t *testing.T) {
	r := run(t, "table3", Options{})
	if !strings.Contains(r.Text, "D-O-L-C") {
		t.Error("table3 text lacks DOLC header")
	}
	if r.Values["w16.d7.parts"] < 2 {
		t.Errorf("deep 16-bit config should fold (parts=%v)", r.Values["w16.d7.parts"])
	}
}

func TestFig6Shapes(t *testing.T) {
	r := run(t, "fig6", Options{Workloads: []string{"compress", "mksim"}})
	// Hybrid must not be worse than correlated-only at max depth (cold
	// starts are its whole purpose).
	for _, w := range []string{"compress", "mksim"} {
		h := r.Values[w+".hybrid.d7"]
		c := r.Values[w+".correlated.d7"]
		if h > c+1e-9 {
			t.Errorf("%s: hybrid (%v) worse than correlated (%v) at depth 7", w, h, c)
		}
		// Depth helps: depth 7 must beat depth 0 for the hybrid.
		if r.Values[w+".hybrid.d7"] >= r.Values[w+".hybrid.d0"] {
			t.Errorf("%s: no benefit from history depth", w)
		}
	}
	// mksim: path predictor beats the sequential baseline clearly.
	if r.Values["mksim.hybrid+rhs.d7"] >= r.Values["mksim.sequential"] {
		t.Errorf("mksim: path predictor (%v) not better than sequential (%v)",
			r.Values["mksim.hybrid+rhs.d7"], r.Values["mksim.sequential"])
	}
}

func TestFig7Shapes(t *testing.T) {
	r := run(t, "fig7", Options{Workloads: []string{"gcc", "compress"}})
	// Larger tables never hurt on the aliasing-bound benchmark at depth 7.
	g14 := r.Values["gcc.2^14.d7"]
	g16 := r.Values["gcc.2^16.d7"]
	if g16 > g14+1e-9 {
		t.Errorf("gcc: 2^16 (%v) worse than 2^14 (%v) at depth 7", g16, g14)
	}
	for _, k := range []string{"mean.2^14.d7", "mean.2^15.d7", "mean.2^16.d7"} {
		if v := r.Values[k]; v <= 0 || v >= 100 {
			t.Errorf("%s = %v out of range", k, v)
		}
	}
}

func TestTable4Shapes(t *testing.T) {
	r := run(t, "table4", Options{Workloads: []string{"compress", "jpeg"}})
	for _, w := range []string{"compress", "jpeg"} {
		ideal, real := r.Values[w+".ideal"], r.Values[w+".real"]
		if diff := real - ideal; diff < -5 || diff > 5 {
			t.Errorf("%s: delayed updates shift accuracy too much (%v vs %v)", w, real, ideal)
		}
		if ipc := r.Values[w+".ipc"]; ipc <= 0 || ipc > 16 {
			t.Errorf("%s: engine IPC %v implausible", w, ipc)
		}
	}
}

func TestFig8Shapes(t *testing.T) {
	r := run(t, "fig8", Options{})
	for _, w := range []string{"compress", "gcc"} {
		for d := 0; d <= maxDepth; d++ {
			p := r.Values[w+".primary.d"+string(rune('0'+d))]
			a := r.Values[w+".alt.d"+string(rune('0'+d))]
			if a > p+1e-9 {
				t.Errorf("%s d%d: alternate-inclusive miss (%v) exceeds primary (%v)", w, d, a, p)
			}
		}
		if c := r.Values[w+".alt_catch_pct"]; c <= 0 || c > 100 {
			t.Errorf("%s: alternate catch rate %v", w, c)
		}
	}
}

func TestCostReducedShapes(t *testing.T) {
	r := run(t, "costreduced", Options{Workloads: []string{"compress", "mksim"}})
	for _, w := range []string{"compress", "mksim"} {
		full, red := r.Values[w+".full"], r.Values[w+".reduced"]
		// §5.5: "should not affect prediction accuracy in any significant
		// way" — and hashing can only (spuriously) help.
		if red > full+0.5 {
			t.Errorf("%s: cost-reduced (%v) notably worse than full (%v)", w, red, full)
		}
		if hit := r.Values[w+".tc_hit"]; hit <= 0 || hit > 100 {
			t.Errorf("%s: trace cache hit rate %v", w, hit)
		}
	}
}

func TestHeadlineShapes(t *testing.T) {
	r := run(t, "headline", Options{})
	if r.Values["mean.unbounded"] >= r.Values["mean.sequential"] {
		t.Errorf("unbounded predictor (%v) not better than sequential (%v) on mean",
			r.Values["mean.unbounded"], r.Values["mean.sequential"])
	}
	if red := r.Values["reduction.unbounded_pct"]; red < 10 {
		t.Errorf("unbounded reduction %v%% below the paper's ballpark", red)
	}
}

func TestAblationCounter(t *testing.T) {
	r := run(t, "ablation-counter", Options{Workloads: []string{"compress", "go"}})
	if r.Values["mean.inc1/dec2 (paper)"] <= 0 {
		t.Error("missing mean for paper counter")
	}
}

func TestAblationRHSXlispShape(t *testing.T) {
	r := run(t, "ablation-rhs", Options{Workloads: []string{"xlisp", "go"}})
	// The paper's xlisp result: the RHS HURTS it (longjmp desync).
	if r.Values["xlisp.RHS-16 (paper)"] < r.Values["xlisp.no RHS"] {
		t.Errorf("xlisp: RHS (%v) unexpectedly better than no-RHS (%v)",
			r.Values["xlisp.RHS-16 (paper)"], r.Values["xlisp.no RHS"])
	}
	// And helps the call-heavy synthetic search code.
	if r.Values["go.RHS-16 (paper)"] > r.Values["go.no RHS"]+0.5 {
		t.Errorf("go: RHS (%v) notably worse than no-RHS (%v)",
			r.Values["go.RHS-16 (paper)"], r.Values["go.no RHS"])
	}
}

func TestAblationSelect(t *testing.T) {
	r := run(t, "ablation-select", Options{Workloads: []string{"compress"}})
	if len(r.Values) == 0 || !strings.Contains(r.Text, "16/6") {
		t.Error("ablation-select output incomplete")
	}
}

func TestAblationHybridAndDOLC(t *testing.T) {
	r := run(t, "ablation-hybrid", Options{Workloads: []string{"gcc"}})
	if !strings.Contains(r.Text, "correlated only") {
		t.Error("hybrid ablation missing columns")
	}
	r = run(t, "ablation-dolc", Options{Workloads: []string{"gcc"}})
	if !strings.Contains(r.Text, "DOLC") {
		t.Error("dolc ablation missing columns")
	}
}

func TestMultiBranchShapes(t *testing.T) {
	// This ordering needs warm tables: the path predictor's 2^16 entries
	// train more slowly than the bundle predictors' PHTs.
	r := run(t, "multibranch", Options{Limit: 2_000_000})
	// The multiported GAg is the weakest bundle predictor (paper §2).
	if r.Values["mean.mgag"] < r.Values["mean.patel"] {
		t.Errorf("mgag (%v) unexpectedly better than patel (%v) on mean",
			r.Values["mean.mgag"], r.Values["mean.patel"])
	}
	// The proposed path-based predictor has the best mean of the four.
	for _, k := range []string{"mean.mgag", "mean.patel", "mean.sequential"} {
		if r.Values["mean.path"] > r.Values[k] {
			t.Errorf("path-based mean (%v) not better than %s (%v)",
				r.Values["mean.path"], k, r.Values[k])
		}
	}
}

func TestFrontendShapes(t *testing.T) {
	r := run(t, "frontend", Options{Workloads: []string{"mksim", "compress"}})
	for _, w := range []string{"mksim", "compress"} {
		oracle := r.Values[w+".oracle.ipc"]
		d7 := r.Values[w+".d7.ipc"]
		d7alt := r.Values[w+".d7alt.ipc"]
		d0 := r.Values[w+".d0.ipc"]
		if !(oracle >= d7alt && d7alt >= d7) {
			t.Errorf("%s: IPC ordering violated: oracle %v, d7+alt %v, d7 %v", w, oracle, d7alt, d7)
		}
		if d0 > d7+0.2 {
			t.Errorf("%s: depth 0 (%v) outperforms depth 7 (%v)", w, d0, d7)
		}
		if oracle <= 0 || oracle > 16 {
			t.Errorf("%s: oracle IPC %v implausible", w, oracle)
		}
	}
}

func TestConfidenceShapes(t *testing.T) {
	r := run(t, "confidence", Options{Workloads: []string{"mksim", "compress"}})
	for _, w := range []string{"mksim", "compress"} {
		for _, thr := range []string{"t4", "t8", "t12"} {
			hi := r.Values[w+"."+thr+".high_acc"]
			lo := r.Values[w+"."+thr+".low_acc"]
			if hi <= lo {
				t.Errorf("%s %s: high-conf accuracy (%v) not above low (%v)", w, thr, hi, lo)
			}
		}
		// Raising the threshold trades coverage for accuracy.
		if r.Values[w+".t12.coverage"] > r.Values[w+".t4.coverage"]+1e-9 {
			t.Errorf("%s: coverage did not shrink with threshold", w)
		}
		if r.Values[w+".t12.high_acc"]+1e-9 < r.Values[w+".t4.high_acc"] {
			t.Errorf("%s: high-conf accuracy did not rise with threshold", w)
		}
	}
}

func TestTraceCacheSweepShapes(t *testing.T) {
	r := run(t, "ablation-tracecache", Options{Workloads: []string{"gcc", "mksim"}})
	// Bigger caches never hit less; mksim's tiny working set saturates
	// everywhere while gcc never does.
	if r.Values["gcc.4096L4w"] < r.Values["gcc.256L4w"] {
		t.Error("gcc: larger trace cache hit rate decreased")
	}
	if r.Values["mksim.256L1w"] < 95 {
		t.Errorf("mksim should saturate a small cache (got %v)", r.Values["mksim.256L1w"])
	}
	if r.Values["gcc.4096L4w"] > 95 {
		t.Errorf("gcc's working set should still thrash 4096 lines (got %v)", r.Values["gcc.4096L4w"])
	}
}

func TestRealisticShapes(t *testing.T) {
	r := run(t, "realistic", Options{Workloads: []string{"gcc", "compress"}})
	// Real components can only hurt the sequential baseline.
	for _, w := range []string{"gcc", "compress"} {
		if r.Values[w+".real"]+1e-9 < r.Values[w+".ideal"] {
			t.Errorf("%s: real components (%v) beat perfect ones (%v)",
				w, r.Values[w+".real"], r.Values[w+".ideal"])
		}
	}
	// gcc's footprint must show a real-BTB penalty.
	if r.Values["gcc.real"] <= r.Values["gcc.ideal"] {
		t.Errorf("gcc: no BTB capacity penalty (%v vs %v)",
			r.Values["gcc.real"], r.Values["gcc.ideal"])
	}
}

func TestHashAblationShapes(t *testing.T) {
	r := run(t, "ablation-hash", Options{Workloads: []string{"compress", "mksim"}})
	for _, w := range []string{"compress", "mksim"} {
		// Dropping branch outcomes must hurt (same-start traces collide).
		if r.Values[w+".pc-only"] <= r.Values[w+".paper §3.2"] {
			t.Errorf("%s: pc-only hash (%v) not worse than the paper hash (%v)",
				w, r.Values[w+".pc-only"], r.Values[w+".paper §3.2"])
		}
		// The unstructured fold should be in the same ballpark.
		if diff := r.Values[w+".xor-fold"] - r.Values[w+".paper §3.2"]; diff > 3 || diff < -3 {
			t.Errorf("%s: xor-fold diverges from paper hash by %v points", w, diff)
		}
	}
}
