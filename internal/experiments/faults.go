package experiments

import (
	"fmt"

	"pathtrace/internal/faults"
	"pathtrace/internal/predictor"
	"pathtrace/internal/stats"
	"pathtrace/internal/trace"
	"pathtrace/internal/tracecache"
)

// faultMultipliers scales the base injection plan into a sweep: x0 is
// the clean baseline, then increasing rate multiples. Because the
// injectors' fire streams are rate-coupled (see internal/faults), the
// fault set at each point is a superset of the previous point's, so the
// degradation curve is monotone by construction — a non-monotone curve
// means a real bug, not sampling noise.
var faultMultipliers = []int{0, 1, 4, 16, 64}

// faultsExp measures graceful degradation: the depth-7 2^16 hybrid+RHS
// predictor's misprediction rate as the fault-injection rate scales up.
// The predictor is a hint structure — corrupted tables, history or
// trace-cache lines can never break program correctness — so the whole
// effect of a fault shows up here, as lost accuracy.
func faultsExp(opt Options) (*Result, error) {
	ws, err := opt.workloads()
	if err != nil {
		return nil, err
	}
	base := faults.Config{Table: 1e-4}
	if opt.Faults != nil {
		if opt.Faults.Enabled() {
			base = *opt.Faults
		} else {
			base.Seed = opt.Faults.Seed
		}
	}

	res := newResult("faults")
	xs := make([]float64, len(faultMultipliers))
	for i, m := range faultMultipliers {
		xs[i] = float64(m)
	}
	var sections []string
	meanCurve := make([]float64, len(faultMultipliers))
	meanHit := make([]float64, len(faultMultipliers))
	withTC := base.TraceCache > 0

	for _, w := range ws {
		preds := make([]predictor.NextTracePredictor, len(faultMultipliers))
		injs := make([]*faults.Injector, len(faultMultipliers))
		caches := make([]*tracecache.Cache, len(faultMultipliers))
		var consumers []func(*trace.Trace)
		for i, m := range faultMultipliers {
			inj := faults.New(base.Scale(float64(m)))
			injs[i] = inj
			p, err := predictor.New(opt.applyBackend(predictor.Config{
				Depth: maxDepth, IndexBits: 16, Hybrid: true, UseRHS: true,
				Faults: inj,
			}))
			if err != nil {
				return nil, err
			}
			preds[i] = p
			if withTC {
				tc, err := tracecache.New(tracecache.DefaultConfig())
				if err != nil {
					return nil, err
				}
				tc.SetFaultHook(inj.TraceCacheHook())
				caches[i] = tc
				// One consumer for the predictor AND its trace cache:
				// both draw from the same injector, whose PRNG streams
				// are sequenced — they must stay on one replay goroutine.
				consumers = append(consumers, func(tr *trace.Trace) {
					p.Predict()
					p.Update(tr)
					tc.Access(tr.ID)
				})
			} else {
				consumers = append(consumers, func(tr *trace.Trace) {
					p.Predict()
					p.Update(tr)
				})
			}
		}
		if _, _, err := opt.Stream(w, consumers...); err != nil {
			return nil, err
		}

		fig := &stats.Figure{
			Title:  fmt.Sprintf("Degradation (%s): misprediction %% vs fault-rate multiplier (base %s)", w.Name, base.String()),
			XLabel: "rate multiplier",
			X:      xs,
		}
		y := make([]float64, len(faultMultipliers))
		var faultLines []string
		for i, m := range faultMultipliers {
			y[i] = preds[i].Stats().MissRate()
			meanCurve[i] += y[i]
			res.Values[fmt.Sprintf("%s.x%d", w.Name, m)] = y[i]
			st := injs[i].Stats()
			res.Values[fmt.Sprintf("%s.x%d.faults", w.Name, m)] =
				float64(st.TableFaults + st.SecFaults + st.HistoryFaults + st.TCacheFaults)
			faultLines = append(faultLines, fmt.Sprintf("  x%-3d %s", m, st.Describe()))
			if withTC {
				hit := caches[i].Stats().HitRate()
				meanHit[i] += hit
				res.Values[fmt.Sprintf("%s.x%d.tc_hit", w.Name, m)] = hit
			}
		}
		fig.Add("misprediction %", y)
		sections = append(sections, fig.String(),
			"injected faults per point:\n"+joinLines(faultLines))
	}

	n := float64(len(ws))
	fig := &stats.Figure{
		Title:  fmt.Sprintf("Degradation (MEAN): misprediction %% vs fault-rate multiplier (base %s, seed %d)", base.String(), base.Seed),
		XLabel: "rate multiplier",
		X:      xs,
	}
	y := make([]float64, len(faultMultipliers))
	for i, m := range faultMultipliers {
		y[i] = meanCurve[i] / n
		res.Values[fmt.Sprintf("mean.x%d", m)] = y[i]
	}
	fig.Add("misprediction %", y)
	if withTC {
		hits := make([]float64, len(faultMultipliers))
		for i, m := range faultMultipliers {
			hits[i] = meanHit[i] / n
			res.Values[fmt.Sprintf("mean.x%d.tc_hit", m)] = hits[i]
		}
		fig.Add("trace cache hit %", hits)
	}
	sections = append(sections, fig.String(), fmt.Sprintf(
		"graceful degradation: accuracy lost at x%d vs clean baseline: %.2f points "+
			"(hint structure — faults cost accuracy, never correctness)",
		faultMultipliers[len(faultMultipliers)-1], y[len(y)-1]-y[0]))
	res.Text = joinSections(sections...)
	return res, nil
}

func joinLines(lines []string) string {
	out := ""
	for i, l := range lines {
		if i > 0 {
			out += "\n"
		}
		out += l
	}
	return out
}

func init() {
	register(Experiment{
		Name:  "faults",
		Title: "Robustness: graceful degradation under fault injection",
		Desc:  "Misprediction vs deterministic fault-injection rate (table/secondary/history/tcache).",
		Run:   faultsExp,
	})
}
