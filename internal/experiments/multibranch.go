package experiments

import (
	"pathtrace/internal/branchpred"
	"pathtrace/internal/predictor"
	"pathtrace/internal/stats"
	"pathtrace/internal/trace"
)

// multibranch compares the realizable multiple-branch predictors the
// paper's §2 surveys — the multiported GAg (Yeh et al., used by the
// original trace cache study) and the trace-indexed multi-counter
// predictor of Patel et al. — against the idealized sequential
// predictor that upper-bounds them and against the proposed path-based
// next trace predictor. Trace-level misprediction throughout.
func multibranch(opt Options) (*Result, error) {
	ws, err := opt.workloads()
	if err != nil {
		return nil, err
	}
	res := newResult("multibranch")
	t := stats.NewTable("Realizable multiple-branch predictors vs idealized sequential vs path-based (trace misp %)",
		"benchmark", "mgag-16", "patel-16/6", "sequential (ideal)", "path 2^16 d7")
	var sums [4]float64
	for _, w := range ws {
		mg, err := branchpred.NewMultiGAg(16)
		if err != nil {
			return nil, err
		}
		hg, err := branchpred.NewMultiBranchHarness(mg, 0)
		if err != nil {
			return nil, err
		}
		pm, err := branchpred.NewPatelMulti(16, trace.DefaultMaxBranches)
		if err != nil {
			return nil, err
		}
		hp, err := branchpred.NewMultiBranchHarness(pm, 0)
		if err != nil {
			return nil, err
		}
		seq, err := branchpred.NewSequential(branchpred.SequentialConfig{})
		if err != nil {
			return nil, err
		}
		path, err := predictor.New(opt.applyBackend(predictor.Config{
			Depth: maxDepth, IndexBits: 16, Hybrid: true, UseRHS: true,
		}))
		if err != nil {
			return nil, err
		}
		if _, _, err := opt.Stream(w,
			func(tr *trace.Trace) { hg.ObserveTrace(tr) },
			func(tr *trace.Trace) { hp.ObserveTrace(tr) },
			func(tr *trace.Trace) { seq.ObserveTrace(tr) },
			func(tr *trace.Trace) {
				path.Predict()
				path.Update(tr)
			},
		); err != nil {
			return nil, err
		}
		vals := [4]float64{
			hg.Stats().TraceMissRate(),
			hp.Stats().TraceMissRate(),
			seq.Stats().TraceMissRate(),
			path.Stats().MissRate(),
		}
		t.AddRowf(w.Name, vals[0], vals[1], vals[2], vals[3])
		res.Values[w.Name+".mgag"] = vals[0]
		res.Values[w.Name+".patel"] = vals[1]
		res.Values[w.Name+".sequential"] = vals[2]
		res.Values[w.Name+".path"] = vals[3]
		for i := range sums {
			sums[i] += vals[i]
		}
	}
	n := float64(len(ws))
	t.AddRowf("MEAN", sums[0]/n, sums[1]/n, sums[2]/n, sums[3]/n)
	res.Values["mean.mgag"] = sums[0] / n
	res.Values["mean.patel"] = sums[1] / n
	res.Values["mean.sequential"] = sums[2] / n
	res.Values["mean.path"] = sums[3] / n
	res.Text = joinSections(t.String(),
		"Paper §2: Patel's predictor \"offers superior accuracy compared with the "+
			"multiported GAg but does not quite achieve the overall accuracy of a single "+
			"branch GSHARE\" — per conditional branch. At trace granularity its "+
			"trace-address indexing is itself a (depth-0) form of path correlation, so on "+
			"path-friendly workloads it can edge past the sequential baseline; the "+
			"multiported GAg is the weakest throughout, and the path-based predictor "+
			"has the best mean.")
	return res, nil
}

func init() {
	register(Experiment{
		Name:  "multibranch",
		Title: "§2 baselines: realizable multiple-branch predictors",
		Desc:  "Multiported GAg and Patel-style trace-indexed predictor vs sequential vs path-based.",
		Run:   multibranch,
	})
}
