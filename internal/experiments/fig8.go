package experiments

import (
	"fmt"

	"pathtrace/internal/predictor"
	"pathtrace/internal/stats"
	"pathtrace/internal/trace"
)

// fig8 regenerates the alternate-trace-prediction figure (paper Figure
// 8): for the 2^16-entry predictor, the primary misprediction rate and
// the rate at which BOTH the primary and the alternate were wrong,
// versus history depth. The paper shows compress and gcc as its two
// representative benchmarks; the workload list is honoured if the
// caller narrows it.
func fig8(opt Options) (*Result, error) {
	if len(opt.Workloads) == 0 {
		opt.Workloads = []string{"compress", "gcc"}
	}
	ws, err := opt.workloads()
	if err != nil {
		return nil, err
	}
	res := newResult("fig8")
	var sections []string
	for _, w := range ws {
		preds := make([]predictor.NextTracePredictor, maxDepth+1)
		var consumers []func(*trace.Trace)
		for d := 0; d <= maxDepth; d++ {
			p, err := predictor.New(opt.applyBackend(predictor.Config{
				Depth: d, IndexBits: 16, Hybrid: true, UseRHS: true,
			}))
			if err != nil {
				return nil, err
			}
			preds[d] = p
			consumers = append(consumers, func(tr *trace.Trace) {
				p.Predict()
				p.Update(tr)
			})
		}
		if _, _, err := opt.Stream(w, consumers...); err != nil {
			return nil, err
		}
		fig := &stats.Figure{
			Title:  fmt.Sprintf("Figure 8 (%s): alternate trace prediction, 2^16 entries", w.Name),
			XLabel: "depth",
			X:      depthAxis(),
		}
		prim := make([]float64, maxDepth+1)
		alt := make([]float64, maxDepth+1)
		for d := 0; d <= maxDepth; d++ {
			st := preds[d].Stats()
			prim[d] = st.MissRate()
			alt[d] = st.AltMissRate()
			res.Values[fmt.Sprintf("%s.primary.d%d", w.Name, d)] = prim[d]
			res.Values[fmt.Sprintf("%s.alt.d%d", w.Name, d)] = alt[d]
		}
		fig.Add("primary", prim)
		fig.Add("primary+alternate", alt)
		sections = append(sections, fig.String())

		// Headline fraction: share of primary misses caught by the
		// alternate at the deepest history.
		st := preds[maxDepth].Stats()
		if m := st.Mispredictions(); m > 0 {
			caught := 100 * float64(st.AltCorrect) / float64(m)
			res.Values[w.Name+".alt_catch_pct"] = caught
			sections = append(sections, fmt.Sprintf(
				"%s: alternate catches %.1f%% of primary mispredictions at depth %d (paper: ~2/3 for compress, just under half for gcc)",
				w.Name, caught, maxDepth))
		}
	}
	res.Text = joinSections(sections...)
	return res, nil
}

func init() {
	register(Experiment{
		Name:  "fig8",
		Title: "Figure 8: Alternate trace prediction accuracy",
		Desc:  "Primary vs primary-and-alternate misprediction rates (compress, gcc).",
		Run:   fig8,
	})
}
