package experiments

import (
	"fmt"

	"pathtrace/internal/predictor"
	"pathtrace/internal/stats"
	"pathtrace/internal/trace"
)

// backendConfig gives each registered backend a fair configuration at
// the paper's headline geometry (2^16 correlated entries, depth 7).
// Paper variants that support the return history stack get it, matching
// the headline setup; backends without an entry here (future
// registrations) run the plain geometry.
func backendConfig(name string) predictor.Config {
	cfg := predictor.Config{Backend: name, Depth: maxDepth, IndexBits: 16}
	switch name {
	case "hybrid", "costreduced":
		cfg.UseRHS = true
	case "unbounded":
		cfg.Hybrid = true
		cfg.UseRHS = true
	}
	return cfg
}

// backendsCompare races every registered predictor backend over the
// same trace streams — the offline answer to the question ntpd's
// shadow evaluation asks online: would a different backend serve this
// traffic better? The 1997 hybrid and the TAGE-style contender are the
// headline matchup; basic, cost-reduced and the unbounded idealisation
// bracket them from below and above.
func backendsCompare(opt Options) (*Result, error) {
	ws, err := opt.workloads()
	if err != nil {
		return nil, err
	}
	res := newResult("backends")
	backends := predictor.Backends()
	cols := []string{"benchmark"}
	for _, b := range backends {
		cols = append(cols, b.Name)
	}
	t := stats.NewTable("Backend comparison: misprediction % at 2^16 entries, depth 7", cols...)
	sums := make([]float64, len(backends))
	for _, w := range ws {
		preds := make([]predictor.NextTracePredictor, len(backends))
		var consumers []func(*trace.Trace)
		for i, b := range backends {
			p, err := predictor.New(backendConfig(b.Name))
			if err != nil {
				return nil, fmt.Errorf("experiments: backend %q: %w", b.Name, err)
			}
			preds[i] = p
			consumers = append(consumers, func(tr *trace.Trace) {
				p.Predict()
				p.Update(tr)
			})
		}
		if _, _, err := opt.Stream(w, consumers...); err != nil {
			return nil, err
		}
		row := []any{w.Name}
		for i, b := range backends {
			v := preds[i].Stats().MissRate()
			row = append(row, v)
			sums[i] += v
			res.Values[w.Name+"."+b.Name] = v
		}
		t.AddRowf(row...)
	}
	n := float64(len(ws))
	mean := []any{"MEAN"}
	for i, b := range backends {
		m := sums[i] / n
		mean = append(mean, m)
		res.Values["mean."+b.Name] = m
	}
	t.AddRowf(mean...)

	var lines []string
	if h, tg := res.Values["mean.hybrid"], res.Values["mean.tage"]; h > 0 && tg > 0 {
		delta := 100 * (h - tg) / h
		res.Values["tage_vs_hybrid_pct"] = delta
		verdict := "lower"
		if delta < 0 {
			verdict = "higher"
			delta = -delta
		}
		lines = append(lines, fmt.Sprintf(
			"tage vs hybrid: %.1f%% %s mean misprediction than the paper's hybrid+RHS", delta, verdict))
	}
	res.Text = joinSections(append([]string{t.String()}, lines...)...)
	return res, nil
}

func init() {
	register(Experiment{
		Name:  "backends",
		Title: "Backend comparison",
		Desc:  "Every registered predictor backend (incl. the TAGE-style contender) over the same streams.",
		Run:   backendsCompare,
	})
}
