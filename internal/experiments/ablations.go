package experiments

import (
	"fmt"

	"pathtrace/internal/history"
	"pathtrace/internal/predictor"
	"pathtrace/internal/stats"
	"pathtrace/internal/trace"
)

// ablationTable runs one predictor configuration per column over every
// workload and renders a benchmark x config table of misprediction
// rates plus a MEAN row.
func ablationTable(opt Options, title string, configs []struct {
	Name string
	Make func() (predictor.NextTracePredictor, error)
}) (*Result, *stats.Table, error) {
	ws, err := opt.workloads()
	if err != nil {
		return nil, nil, err
	}
	res := newResult("")
	cols := []string{"benchmark"}
	for _, c := range configs {
		cols = append(cols, c.Name)
	}
	t := stats.NewTable(title, cols...)
	sums := make([]float64, len(configs))
	for _, w := range ws {
		preds := make([]predictor.NextTracePredictor, len(configs))
		var consumers []func(*trace.Trace)
		for i, c := range configs {
			p, err := c.Make()
			if err != nil {
				return nil, nil, err
			}
			preds[i] = p
			consumers = append(consumers, func(tr *trace.Trace) {
				p.Predict()
				p.Update(tr)
			})
		}
		if _, _, err := opt.Stream(w, consumers...); err != nil {
			return nil, nil, err
		}
		row := []any{w.Name}
		for i, c := range configs {
			rate := preds[i].Stats().MissRate()
			row = append(row, rate)
			sums[i] += rate
			res.Values[w.Name+"."+c.Name] = rate
		}
		t.AddRowf(row...)
	}
	mean := []any{"MEAN"}
	for i, c := range configs {
		m := sums[i] / float64(len(ws))
		mean = append(mean, m)
		res.Values["mean."+c.Name] = m
	}
	t.AddRowf(mean...)
	return res, t, nil
}

// base returns the standard 2^16 hybrid+RHS config at depth 7.
func baseCfg() predictor.Config {
	return predictor.Config{Depth: maxDepth, IndexBits: 16, Hybrid: true, UseRHS: true}
}

func mk(cfg predictor.Config) func() (predictor.NextTracePredictor, error) {
	return func() (predictor.NextTracePredictor, error) { return predictor.New(cfg) }
}

// ablationCounter compares the paper's increment-by-1/decrement-by-2
// counter against a conventional 2-bit counter and a 1-bit counter
// (§3.2: "the increment-by-1, decrement-by-2 counter gives slightly
// better performance than either a one bit or a conventional two-bit
// counter").
func ablationCounter(opt Options) (*Result, error) {
	inc1dec2 := baseCfg()
	conv2 := baseCfg()
	conv2.CounterInc, conv2.CounterDec = 1, 1
	onebit := baseCfg()
	onebit.CounterBits, onebit.CounterInc, onebit.CounterDec = 1, 1, 1
	res, t, err := ablationTable(opt,
		"Ablation: correlated counter policy (2^16 hybrid+RHS, depth 7), misprediction %",
		[]struct {
			Name string
			Make func() (predictor.NextTracePredictor, error)
		}{
			{"inc1/dec2 (paper)", mk(inc1dec2)},
			{"conventional 2-bit", mk(conv2)},
			{"1-bit", mk(onebit)},
		})
	if err != nil {
		return nil, err
	}
	res.Name = "ablation-counter"
	res.Text = joinSections(t.String())
	return res, nil
}

// ablationHybrid isolates the hybrid predictor's two mechanisms: the
// secondary table itself and the saturated-secondary update filter.
func ablationHybrid(opt Options) (*Result, error) {
	full := baseCfg()
	noFilter := baseCfg()
	noFilter.SecondaryFilter = predictor.NoFilter()
	correlatedOnly := predictor.Config{Depth: maxDepth, IndexBits: 16}
	smallSec := baseCfg()
	smallSec.SecCounterBits = 2
	res, t, err := ablationTable(opt,
		"Ablation: hybrid mechanisms (2^16, depth 7), misprediction %",
		[]struct {
			Name string
			Make func() (predictor.NextTracePredictor, error)
		}{
			{"hybrid+filter (paper)", mk(full)},
			{"hybrid, no filter", mk(noFilter)},
			{"correlated only", mk(correlatedOnly)},
			{"2-bit secondary ctr", mk(smallSec)},
		})
	if err != nil {
		return nil, err
	}
	res.Name = "ablation-hybrid"
	res.Text = joinSections(t.String())
	return res, nil
}

// ablationRHS compares RHS on/off and RHS stack depths.
func ablationRHS(opt Options) (*Result, error) {
	on := baseCfg()
	off := baseCfg()
	off.UseRHS = false
	shallow := baseCfg()
	shallow.RHSDepth = 4
	deep := baseCfg()
	deep.RHSDepth = 64
	res, t, err := ablationTable(opt,
		"Ablation: Return History Stack (2^16 hybrid, depth 7), misprediction %",
		[]struct {
			Name string
			Make func() (predictor.NextTracePredictor, error)
		}{
			{"RHS-16 (paper)", mk(on)},
			{"no RHS", mk(off)},
			{"RHS-4", mk(shallow)},
			{"RHS-64", mk(deep)},
		})
	if err != nil {
		return nil, err
	}
	res.Name = "ablation-rhs"
	res.Text = joinSections(t.String(),
		"Expected shape (paper §5.2): the RHS helps call-heavy codes and HURTS "+
			"compress and xlisp — xlisp's longjmp escapes leave calls with no "+
			"matching returns, which desynchronises the stack.")
	return res, nil
}

// ablationDOLC compares the tuned DOLC index generation against a naive
// truncate-to-fit index that only uses the most recent traces' bits.
func ablationDOLC(opt Options) (*Result, error) {
	tuned := baseCfg()
	// Narrow per-position budget, the shape the paper's legible Table 3
	// rows suggest (more bits from more recent traces, few from older).
	narrow := baseCfg()
	narrow.DOLC = history.DOLC{Depth: maxDepth, Older: 4, Last: 6, Current: 6, Index: 16}
	// Even, minimal spread: same two bits from every history position.
	even := baseCfg()
	even.DOLC = history.DOLC{Depth: maxDepth, Older: 2, Last: 2, Current: 2, Index: 16}
	res, t, err := ablationTable(opt,
		"Ablation: index generation (2^16 hybrid+RHS, depth 7), misprediction %",
		[]struct {
			Name string
			Make func() (predictor.NextTracePredictor, error)
		}{
			{"DOLC " + history.StandardDOLC(16, maxDepth).String() + " (tuned)", mk(tuned)},
			{"narrow 7-4-6-6", mk(narrow)},
			{"2 bits everywhere", mk(even)},
		})
	if err != nil {
		return nil, err
	}
	res.Name = "ablation-dolc"
	res.Text = joinSections(t.String())
	return res, nil
}

// ablationSelect compares trace-selection limits: the paper's 16/6,
// longer traces, fewer branches, and the loop-closure break heuristic.
func ablationSelect(opt Options) (*Result, error) {
	ws, err := opt.workloads()
	if err != nil {
		return nil, err
	}
	res := newResult("ablation-select")
	selCfgs := []struct {
		name string
		cfg  trace.Config
	}{
		{"16/6 (paper)", trace.Config{MaxLen: 16, MaxBranches: 6}},
		{"32/6", trace.Config{MaxLen: 32, MaxBranches: 6}},
		{"16/4", trace.Config{MaxLen: 16, MaxBranches: 4}},
		{"16/6+loopbreak", trace.Config{MaxLen: 16, MaxBranches: 6, BreakOnLoopClosure: true}},
	}
	cols := []string{"benchmark"}
	for _, sc := range selCfgs {
		cols = append(cols, sc.name+" misp%", sc.name+" len")
	}
	t := stats.NewTable("Ablation: trace selection limits (2^16 hybrid+RHS, depth 7)", cols...)
	for _, w := range ws {
		row := []any{w.Name}
		for _, sc := range selCfgs {
			p, err := predictor.New(opt.applyBackend(baseCfg()))
			if err != nil {
				return nil, err
			}
			instrs, traces, err := opt.StreamSelect(w, sc.cfg, func(tr *trace.Trace) {
				p.Predict()
				p.Update(tr)
			})
			if err != nil {
				return nil, err
			}
			rate := p.Stats().MissRate()
			avgLen := float64(instrs) / float64(traces)
			row = append(row, rate, avgLen)
			res.Values[fmt.Sprintf("%s.%s", w.Name, sc.name)] = rate
		}
		t.AddRowf(row...)
	}
	res.Text = joinSections(t.String())
	return res, nil
}

func init() {
	register(Experiment{
		Name:  "ablation-counter",
		Title: "Ablation: counter policy",
		Desc:  "inc-1/dec-2 (paper) vs conventional 2-bit vs 1-bit correlated counters.",
		Run:   ablationCounter,
	})
	register(Experiment{
		Name:  "ablation-hybrid",
		Title: "Ablation: hybrid mechanisms",
		Desc:  "Secondary table, update filter, and secondary counter width.",
		Run:   ablationHybrid,
	})
	register(Experiment{
		Name:  "ablation-rhs",
		Title: "Ablation: Return History Stack",
		Desc:  "RHS on/off and stack depth sensitivity.",
		Run:   ablationRHS,
	})
	register(Experiment{
		Name:  "ablation-dolc",
		Title: "Ablation: DOLC index generation",
		Desc:  "Tuned DOLC vs naive full-ID folding vs uniform bit spread.",
		Run:   ablationDOLC,
	})
	register(Experiment{
		Name:  "ablation-select",
		Title: "Ablation: trace selection",
		Desc:  "Trace length/branch limits and the loop-closure break heuristic.",
		Run:   ablationSelect,
	})
}
