package experiments

import (
	"pathtrace/internal/predictor"
	"pathtrace/internal/stats"
	"pathtrace/internal/trace"
	"pathtrace/internal/tracecache"
)

// costReduced regenerates the §5.5 result: storing the 10-bit hashed
// trace-cache index in the prediction table instead of the full 36-bit
// identifier "should not affect prediction accuracy in any significant
// way" — the full identifier still lives in the trace cache and
// validates the fetched trace. The trace cache's hit rate is reported
// alongside, since the cost-reduced predictor only makes sense with one.
func costReduced(opt Options) (*Result, error) {
	ws, err := opt.workloads()
	if err != nil {
		return nil, err
	}
	res := newResult("costreduced")
	t := stats.NewTable("Cost-reduced predictor (§5.5): 10-bit hashed IDs in the table, 2^16 entries, depth 7",
		"benchmark", "misp % full IDs", "misp % hashed IDs", "delta", "entry bits full", "entry bits reduced", "trace cache hit %")
	cfgFull := predictor.Config{Depth: maxDepth, IndexBits: 16, Hybrid: true, UseRHS: true}
	cfgRed := cfgFull
	cfgRed.CostReduced = true
	// Entry size accounting per §5.5: full = 36-bit ID + 2-bit counter +
	// 10-bit tag (+36-bit alternate); reduced stores 10-bit hashes.
	const fullBits, reducedBits = 36 + 2 + 10, 10 + 2 + 10
	for _, w := range ws {
		full, err := predictor.New(opt.applyBackend(cfgFull))
		if err != nil {
			return nil, err
		}
		red, err := predictor.New(cfgRed)
		if err != nil {
			return nil, err
		}
		tc, err := tracecache.New(tracecache.DefaultConfig())
		if err != nil {
			return nil, err
		}
		if _, _, err := opt.Stream(w,
			func(tr *trace.Trace) {
				full.Predict()
				full.Update(tr)
			},
			func(tr *trace.Trace) {
				red.Predict()
				red.Update(tr)
			},
			func(tr *trace.Trace) { tc.Access(tr.ID) },
		); err != nil {
			return nil, err
		}
		fm, rm := full.Stats().MissRate(), red.Stats().MissRate()
		t.AddRowf(w.Name, fm, rm, rm-fm, fullBits, reducedBits, tc.Stats().HitRate())
		res.Values[w.Name+".full"] = fm
		res.Values[w.Name+".reduced"] = rm
		res.Values[w.Name+".tc_hit"] = tc.Stats().HitRate()
	}
	res.Text = joinSections(t.String())
	return res, nil
}

func init() {
	register(Experiment{
		Name:  "costreduced",
		Title: "§5.5: Cost-reduced predictor",
		Desc:  "Full 36-bit IDs vs 10-bit hashed IDs in the prediction table; trace cache validates.",
		Run:   costReduced,
	})
}
