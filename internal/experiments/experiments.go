// Package experiments regenerates every table and figure of the
// paper's evaluation section (plus the ablations called out in
// DESIGN.md). Each experiment streams the six workloads through the
// trace selector and feeds predictor configurations, then renders its
// results in the shape of the corresponding paper exhibit.
package experiments

import (
	"context"
	"fmt"
	"strings"

	"pathtrace/internal/faults"
	"pathtrace/internal/predictor"
	"pathtrace/internal/sim"
	"pathtrace/internal/stream"
	"pathtrace/internal/trace"
	"pathtrace/internal/workload"
)

// DefaultLimit is the per-workload instruction budget when none is
// given. The paper ran >= 100M instructions per benchmark; the default
// here keeps the full suite interactive while -len scales it up.
const DefaultLimit = 2_000_000

// Options control an experiment run.
type Options struct {
	// Limit is the instruction budget per workload (DefaultLimit if 0).
	Limit uint64
	// Workloads restricts the benchmark set (all six if empty).
	Workloads []string
	// Ctx, when non-nil, cancels the run: the simulator checks it every
	// few thousand instructions (the instruction-step watchdog), so a
	// deadline or cancellation stops even a runaway workload promptly.
	Ctx context.Context
	// Backend, when non-empty, overrides the predictor backend used for
	// the proposed-predictor arm of each experiment (`ntp -backend`) —
	// the backend axis. Baselines (sequential, GAg, Patel) and
	// explicitly pinned variants (the hashed-ID arm of `costreduced`,
	// the paper-variant sweeps inside the ablations) keep their
	// identity, so the exhibits still compare against the paper.
	Backend string

	// Faults, when non-nil, is the fault-injection plan. The `faults`
	// experiment sweeps scaled versions of it; other experiments run
	// clean regardless (their exhibits reproduce the paper). Faults are
	// injected downstream of trace selection (predictor tables, history
	// registers, trace-cache lines), so they compose freely with the
	// stream cache: injected runs replay the same recording as clean
	// ones.
	Faults *faults.Config

	// Streams overrides the trace-stream cache used by Stream (nil =
	// the process-wide DefaultStreamCache). Tests use a private cache
	// for isolation.
	Streams *stream.Cache

	// NoStreamCache bypasses capture/replay entirely and re-simulates
	// the workload for this run — the pre-cache behaviour, kept for
	// equivalence testing and for memory-constrained one-shot runs.
	NoStreamCache bool
}

func (o Options) limit() uint64 {
	if o.Limit == 0 {
		return DefaultLimit
	}
	return o.Limit
}

// applyBackend applies the run's backend override to a
// proposed-predictor configuration. Experiments route the
// configuration of their "the predictor under study" arm through this
// before predictor.New, which is all it takes to re-run any exhibit
// under a different registered backend.
func (o Options) applyBackend(cfg predictor.Config) predictor.Config {
	if o.Backend != "" {
		cfg.Backend = o.Backend
	}
	return cfg
}

func (o Options) workloads() ([]*workload.Workload, error) {
	if len(o.Workloads) == 0 {
		return workload.All(), nil
	}
	var out []*workload.Workload
	for _, name := range o.Workloads {
		w, ok := workload.ByName(name)
		if !ok {
			return nil, fmt.Errorf("experiments: unknown workload %q", name)
		}
		out = append(out, w)
	}
	return out, nil
}

// Result is an experiment's rendered output plus its key metrics (for
// tests and EXPERIMENTS.md bookkeeping).
type Result struct {
	Name   string
	Text   string
	Values map[string]float64
}

func newResult(name string) *Result {
	return &Result{Name: name, Values: map[string]float64{}}
}

// Experiment couples an id to its runner.
type Experiment struct {
	Name  string // id used with `ntp -run`
	Title string // paper exhibit it regenerates
	Desc  string
	Run   func(Options) (*Result, error)

	// Global marks experiments that do not iterate workloads (table3's
	// DOLC listing); the harness gives them a single cell instead of
	// one per workload.
	Global bool
}

var registry []Experiment

func register(e Experiment) {
	for _, x := range registry {
		if x.Name == e.Name {
			panic("experiments: duplicate " + e.Name)
		}
	}
	registry = append(registry, e)
}

// Register adds an experiment to the registry at runtime — the hook
// for extensions and for harness tests that need synthetic (failing,
// panicking, hanging) experiments. Like init-time registration it
// panics on a duplicate id.
func Register(e Experiment) { register(e) }

// canonicalOrder lists experiment ids in the paper's presentation
// order; unlisted experiments follow in registration order.
var canonicalOrder = []string{
	"table1", "table2", "fig6", "table3", "fig7", "table4",
	"costreduced", "fig8", "headline", "backends", "charz", "multibranch", "realistic", "frontend", "confidence",
	"ablation-counter", "ablation-hybrid", "ablation-rhs",
	"ablation-dolc", "ablation-select", "ablation-tracecache", "ablation-hash",
}

// All returns the experiments in the paper's presentation order.
func All() []Experiment {
	out := make([]Experiment, 0, len(registry))
	seen := map[string]bool{}
	for _, id := range canonicalOrder {
		if e, ok := ByName(id); ok {
			out = append(out, e)
			seen[id] = true
		}
	}
	for _, e := range registry {
		if !seen[e.Name] {
			out = append(out, e)
		}
	}
	return out
}

// ByName finds an experiment.
func ByName(name string) (Experiment, bool) {
	for _, e := range registry {
		if e.Name == name {
			return e, true
		}
	}
	return Experiment{}, false
}

// Names lists the experiment ids in presentation order.
func Names() []string {
	all := All()
	out := make([]string, len(all))
	for i, e := range all {
		out[i] = e.Name
	}
	return out
}

// StreamTraces runs a workload for up to limit instructions, feeding
// each selected trace to every consumer in turn. It returns the
// instruction and trace counts.
func StreamTraces(w *workload.Workload, limit uint64, consumers ...func(*trace.Trace)) (instrs, traces uint64, err error) {
	return Options{Limit: limit}.Stream(w, consumers...)
}

// DefaultStreamCache is the process-wide trace-stream cache shared by
// every experiment run that does not supply its own (Options.Streams).
// Streams are keyed by (workload, limit, selection config), so a full
// multi-experiment sweep simulates each workload once and replays the
// recording everywhere else.
var DefaultStreamCache = stream.NewCache()

// Stream runs a workload under the options' instruction budget and
// context, feeding each selected trace to every consumer in turn, with
// the paper's default trace-selection limits. It returns the
// instruction and trace counts. Every experiment streams through here
// (or StreamSelect), which is what gives the harness a single place to
// enforce deadlines and the stream cache a single place to intercept
// re-simulation.
func (o Options) Stream(w *workload.Workload, consumers ...func(*trace.Trace)) (instrs, traces uint64, err error) {
	return o.StreamSelect(w, trace.DefaultConfig(), consumers...)
}

// StreamSelect is Stream with an explicit trace-selection
// configuration (the trace-selection ablation sweeps these). The first
// run for a (workload, limit, selection) triple simulates and records
// the trace sequence; every later run replays the recording.
func (o Options) StreamSelect(w *workload.Workload, sel trace.Config, consumers ...func(*trace.Trace)) (instrs, traces uint64, err error) {
	if o.Ctx != nil {
		if err := o.Ctx.Err(); err != nil {
			return 0, 0, fmt.Errorf("experiments: %s: %w", w.Name, err)
		}
	}
	if o.NoStreamCache {
		return o.simulate(w, sel, consumers...)
	}
	c := o.Streams
	if c == nil {
		c = DefaultStreamCache
	}
	s, err := c.Get(o.Ctx, w, o.limit(), sel)
	if err != nil {
		return 0, 0, fmt.Errorf("experiments: %s: %w", w.Name, err)
	}
	// Fan each consumer out to its own goroutine: experiment consumers
	// are independent by contract (each closure owns its predictor,
	// baseline, cache or engine), so a k-consumer experiment costs one
	// replay of wall-clock instead of k.
	instrs, traces, err = s.ReplayParallel(o.Ctx, consumers...)
	if err != nil {
		return 0, 0, fmt.Errorf("experiments: %s: %w", w.Name, err)
	}
	return instrs, traces, nil
}

// simulate is the direct (uncached) path: simulate the workload and
// feed the selector's traces straight to the consumers.
func (o Options) simulate(w *workload.Workload, selCfg trace.Config, consumers ...func(*trace.Trace)) (instrs, traces uint64, err error) {
	prog, err := w.ProgramErr()
	if err != nil {
		return 0, 0, fmt.Errorf("experiments: %s: %w", w.Name, err)
	}
	cpu, err := sim.New(prog)
	if err != nil {
		return 0, 0, err
	}
	sel, err := trace.NewSelector(selCfg, func(tr *trace.Trace) {
		for _, fn := range consumers {
			fn(tr)
		}
	})
	if err != nil {
		return 0, 0, err
	}
	if err := cpu.RunContext(o.Ctx, o.limit(), sel.Feed); err != nil {
		return 0, 0, fmt.Errorf("experiments: %s: %w", w.Name, err)
	}
	sel.Flush()
	return sel.Instrs(), sel.Traces(), nil
}

// joinSections concatenates rendered blocks with blank lines.
func joinSections(parts ...string) string {
	var nonEmpty []string
	for _, p := range parts {
		if strings.TrimSpace(p) != "" {
			nonEmpty = append(nonEmpty, strings.TrimRight(p, "\n"))
		}
	}
	return strings.Join(nonEmpty, "\n\n") + "\n"
}
