package experiments

import (
	"pathtrace/internal/branchpred"
	"pathtrace/internal/stats"
	"pathtrace/internal/trace"
)

// table2 regenerates the sequential-baseline accuracy table (paper
// Table 2): the idealized sequential predictor — 16-bit GSHARE,
// perfect BTB, 4K-entry correlated indirect-target cache, perfect
// return address predictor — applied branch-by-branch to each trace.
func table2(opt Options) (*Result, error) {
	ws, err := opt.workloads()
	if err != nil {
		return nil, err
	}
	res := newResult("table2")
	t := stats.NewTable("Table 2: Prediction accuracy for sequential predictors",
		"benchmark", "gshare branch misp %", "branches/trace", "trace misp %", "indirect misp %")
	var missRates []float64
	for _, w := range ws {
		seq, err := branchpred.NewSequential(branchpred.SequentialConfig{})
		if err != nil {
			return nil, err
		}
		if _, _, err := opt.Stream(w, func(tr *trace.Trace) {
			seq.ObserveTrace(tr)
		}); err != nil {
			return nil, err
		}
		st := seq.Stats()
		t.AddRowf(w.Name, st.BranchMissRate(), st.BranchesPerTrace(),
			st.TraceMissRate(), st.IndirectMissRate())
		res.Values[w.Name+".branch_miss"] = st.BranchMissRate()
		res.Values[w.Name+".trace_miss"] = st.TraceMissRate()
		res.Values[w.Name+".branches_per_trace"] = st.BranchesPerTrace()
		missRates = append(missRates, st.TraceMissRate())
	}
	mean := stats.Mean(missRates)
	t.AddRowf("MEAN", "", "", mean, "")
	res.Values["mean.trace_miss"] = mean
	res.Text = joinSections(t.String())
	return res, nil
}

func init() {
	register(Experiment{
		Name:  "table2",
		Title: "Table 2: Sequential predictor accuracy",
		Desc:  "Idealized sequential baseline: 16-bit gshare + perfect BTB/RAS + 4K indirect target cache.",
		Run:   table2,
	})
}
