package harness_test

import (
	"context"
	"runtime"
	"strings"
	"testing"
	"time"

	"pathtrace/internal/experiments"
	"pathtrace/internal/harness"
	"pathtrace/internal/metrics"
)

// TestHarnessMetrics: an instrumented sweep publishes per-outcome cell
// counts, fault-trip counters and the cell wall-time histogram, and the
// Summary carries the same trip counts deterministically.
func TestHarnessMetrics(t *testing.T) {
	testExperiments(t)
	reg := metrics.NewRegistry()
	rep, err := harness.Run(harness.Config{KeepGoing: true, Metrics: reg},
		[]experiments.Experiment{
			mustExp(t, "test-ok"), mustExp(t, "test-fail"), mustExp(t, "test-panic"),
		})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Cells) != 3 {
		t.Fatalf("got %d cells, want 3", len(rep.Cells))
	}

	var b strings.Builder
	if err := reg.Render(&b); err != nil {
		t.Fatal(err)
	}
	body := b.String()
	for _, want := range []string{
		`harness_cells_total{outcome="failed"} 2`,
		`harness_cells_total{outcome="ok"} 1`,
		`harness_fault_trips_total{kind="panic"} 1`,
		`harness_cell_seconds_count 3`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics missing %q:\n%s", want, body)
		}
	}

	if ft := rep.FaultTrips(); ft != (harness.FaultTrips{Panics: 1}) {
		t.Errorf("FaultTrips() = %+v, want exactly one panic", ft)
	}
	if s := rep.Summary(); !strings.Contains(s, "trips: 1 panics, 0 timeouts, 0 abandoned") {
		t.Errorf("Summary() missing trips line: %q", s)
	}

	// Skipped cells are counted too: a non-KeepGoing sweep skips the
	// cell after the failure.
	reg2 := metrics.NewRegistry()
	if _, err := harness.Run(harness.Config{Metrics: reg2},
		[]experiments.Experiment{mustExp(t, "test-fail"), mustExp(t, "test-ok")}); err != nil {
		t.Fatal(err)
	}
	b.Reset()
	if err := reg2.Render(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `harness_cells_total{outcome="skipped"} 1`) {
		t.Errorf("skipped cell not counted:\n%s", b.String())
	}
}

// TestPanicReleasesCellContext: the per-cell timeout context must be
// canceled once a panicked cell's recovery is processed — otherwise
// every panicked cell pins a timer until its full deadline — and the
// sweep must not leak goroutines. Run under -race this also checks the
// recovery path for data races.
func TestPanicReleasesCellContext(t *testing.T) {
	testExperiments(t)
	cellCtxMu.Lock()
	cellCtxs = nil
	cellCtxMu.Unlock()
	before := runtime.NumGoroutine()

	rep, err := harness.Run(harness.Config{
		Timeout:   time.Minute, // real WithTimeout ctx: a leak would pin its timer
		KeepGoing: true,
		Parallel:  2,
	}, []experiments.Experiment{
		mustExp(t, "test-ctx-panic"), mustExp(t, "test-ctx-panic"),
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range rep.Cells {
		if c.Err == nil || !c.Err.Panicked {
			t.Fatalf("probe cell did not report a panic: %+v", c)
		}
		if c.Err.Duration <= 0 {
			t.Errorf("panicked cell has no wall time: %+v", c.Err)
		}
	}

	cellCtxMu.Lock()
	ctxs := append([]context.Context(nil), cellCtxs...)
	cellCtxMu.Unlock()
	if len(ctxs) != 2 {
		t.Fatalf("probe recorded %d contexts, want 2", len(ctxs))
	}
	for i, ctx := range ctxs {
		select {
		case <-ctx.Done():
		default:
			t.Errorf("cell %d context still live after panic recovery — its timer is leaked", i)
		}
	}

	// Goroutine count settles back to (about) where it started: the
	// panicked cells' goroutines are gone, nothing was abandoned.
	deadline := time.Now().Add(2 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= before+2 {
			break
		}
		if time.Now().After(deadline) {
			t.Errorf("goroutines grew from %d to %d after panicked sweep",
				before, runtime.NumGoroutine())
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
}
