package harness_test

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"pathtrace/internal/asm"
	"pathtrace/internal/experiments"
	"pathtrace/internal/faults"
	"pathtrace/internal/harness"
	"pathtrace/internal/sim"
	"pathtrace/internal/workload"
)

// Synthetic experiments exercising the harness failure paths. Registered
// once for the whole test binary (the registry rejects duplicates).
var registerOnce sync.Once

// cellCtxs collects the contexts handed to test-ctx-panic cells.
var (
	cellCtxMu sync.Mutex
	cellCtxs  []context.Context
)

func testExperiments(t *testing.T) {
	t.Helper()
	registerOnce.Do(func() {
		experiments.Register(experiments.Experiment{
			Name: "test-ok", Title: "always succeeds", Global: true,
			Run: func(opt experiments.Options) (*experiments.Result, error) {
				return &experiments.Result{Name: "test-ok", Text: "fine\n",
					Values: map[string]float64{"v": 1}}, nil
			},
		})
		experiments.Register(experiments.Experiment{
			Name: "test-fail", Title: "always errors", Global: true,
			Run: func(opt experiments.Options) (*experiments.Result, error) {
				return nil, errors.New("synthetic failure")
			},
		})
		experiments.Register(experiments.Experiment{
			Name: "test-panic", Title: "always panics", Global: true,
			Run: func(opt experiments.Options) (*experiments.Result, error) {
				panic("synthetic panic")
			},
		})
		// test-ctx-panic records the cell context it was handed, then
		// panics — the probe behind TestPanicReleasesCellContext.
		experiments.Register(experiments.Experiment{
			Name: "test-ctx-panic", Title: "records its context, then panics", Global: true,
			Run: func(opt experiments.Options) (*experiments.Result, error) {
				cellCtxMu.Lock()
				cellCtxs = append(cellCtxs, opt.Ctx)
				cellCtxMu.Unlock()
				panic("ctx probe panic")
			},
		})
		// test-spin simulates an endless loop with no instruction limit:
		// only the instruction-step watchdog in sim.RunContext can stop
		// it. This is the cooperative-deadline path (no goroutine leak).
		experiments.Register(experiments.Experiment{
			Name: "test-spin", Title: "spins until the watchdog fires", Global: true,
			Run: func(opt experiments.Options) (*experiments.Result, error) {
				cpu, err := sim.New(asm.MustAssemble("main: j main"))
				if err != nil {
					return nil, err
				}
				if err := cpu.RunContext(opt.Ctx, 0, nil); err != nil {
					return nil, err
				}
				return &experiments.Result{Name: "test-spin"}, nil
			},
		})
	})
}

func mustExp(t *testing.T, name string) experiments.Experiment {
	t.Helper()
	e, ok := experiments.ByName(name)
	if !ok {
		t.Fatalf("experiment %q not registered", name)
	}
	return e
}

func TestPanicRecovered(t *testing.T) {
	testExperiments(t)
	rep, err := harness.Run(harness.Config{KeepGoing: true},
		[]experiments.Experiment{mustExp(t, "test-panic"), mustExp(t, "test-ok")})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Cells) != 2 {
		t.Fatalf("got %d cells, want 2", len(rep.Cells))
	}
	re := rep.Cells[0].Err
	if re == nil {
		t.Fatal("panicking cell reported no error")
	}
	if !re.Panicked || re.PanicValue != "synthetic panic" {
		t.Errorf("RunError = %+v, want Panicked with value \"synthetic panic\"", re)
	}
	if re.Stack == "" {
		t.Error("panic RunError has no stack")
	}
	if re.Cell.Experiment != "test-panic" {
		t.Errorf("RunError cell = %q, want test-panic", re.Cell)
	}
	if !strings.Contains(re.Error(), "test-panic") || !strings.Contains(re.Error(), "synthetic panic") {
		t.Errorf("Error() = %q, want cell name and panic value", re.Error())
	}
	if rep.Cells[1].Err != nil || rep.Cells[1].Result == nil {
		t.Errorf("keep-going did not run the healthy cell: %+v", rep.Cells[1])
	}
}

// TestWatchdogDeadline: a cell spinning inside the simulator is stopped
// by the instruction-step watchdog at the deadline (cooperatively — the
// cell goroutine returns, nothing is abandoned).
func TestWatchdogDeadline(t *testing.T) {
	testExperiments(t)
	start := time.Now()
	rep, err := harness.Run(harness.Config{
		Timeout: 100 * time.Millisecond,
		Grace:   5 * time.Second, // only the watchdog should end this cell
	}, []experiments.Experiment{mustExp(t, "test-spin")})
	if err != nil {
		t.Fatal(err)
	}
	re := rep.Cells[0].Err
	if re == nil {
		t.Fatal("spinning cell reported no error")
	}
	if !re.TimedOut {
		t.Errorf("RunError = %+v, want TimedOut", re)
	}
	if re.Abandoned {
		t.Errorf("watchdog path abandoned the cell: %+v", re)
	}
	if !errors.Is(re, context.DeadlineExceeded) {
		t.Errorf("RunError does not unwrap to DeadlineExceeded: %v", re)
	}
	if el := time.Since(start); el > 3*time.Second {
		t.Errorf("watchdog took %v to stop a 100ms-deadline cell", el)
	}
}

// TestHangAbandoned: a cell blocked outside simulated code (the hang
// workload's program generator never returns) is abandoned after the
// grace period; other workloads' cells still complete.
func TestHangAbandoned(t *testing.T) {
	testExperiments(t)
	workload.Hang()
	rep, err := harness.Run(harness.Config{
		Options: experiments.Options{
			Limit:     50_000,
			Workloads: []string{workload.HangName, "compress"},
		},
		Timeout:     300 * time.Millisecond,
		Grace:       200 * time.Millisecond,
		KeepGoing:   true,
		PerWorkload: true,
	}, []experiments.Experiment{mustExp(t, "table2")})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Cells) != 2 {
		t.Fatalf("got %d cells, want 2", len(rep.Cells))
	}
	hang, healthy := rep.Cells[0], rep.Cells[1]
	if hang.Cell.Workload != workload.HangName {
		t.Fatalf("cell order: %v", rep.Cells)
	}
	if hang.Err == nil || !hang.Err.TimedOut || !hang.Err.Abandoned {
		t.Errorf("hang cell = %+v, want TimedOut+Abandoned", hang.Err)
	}
	if healthy.Err != nil || healthy.Result == nil {
		t.Errorf("healthy cell failed alongside the hang: %+v", healthy)
	}
	if rep.OK() {
		t.Error("report claims OK despite a failed cell")
	}
	if s := rep.Summary(); !strings.Contains(s, "1 ok, 1 failed") {
		t.Errorf("Summary() = %q", s)
	}
}

// TestCanceledContextStops: canceling the parent context skips queued
// cells and interrupts the running one promptly.
func TestCanceledContextStops(t *testing.T) {
	testExperiments(t)
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	rep, err := harness.Run(harness.Config{
		Options:   experiments.Options{Ctx: ctx},
		KeepGoing: true,
	}, []experiments.Experiment{
		mustExp(t, "test-spin"), mustExp(t, "test-ok"), mustExp(t, "test-ok"),
	})
	if err != nil {
		t.Fatal(err)
	}
	if el := time.Since(start); el > 3*time.Second {
		t.Errorf("cancellation took %v to stop the sweep", el)
	}
	first := rep.Cells[0].Err
	if first == nil || !errors.Is(first, context.Canceled) {
		t.Errorf("running cell error = %v, want context.Canceled", first)
	}
	for _, c := range rep.Cells[1:] {
		if !c.Skipped {
			t.Errorf("queued cell %s not skipped after cancel: %+v", c.Cell, c)
		}
	}
}

// TestStopOnFirstFailure: without KeepGoing the first failed cell
// cancels the rest of the sweep.
func TestStopOnFirstFailure(t *testing.T) {
	testExperiments(t)
	rep, err := harness.Run(harness.Config{},
		[]experiments.Experiment{mustExp(t, "test-fail"), mustExp(t, "test-ok")})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Cells[0].Err == nil {
		t.Fatal("failing cell reported no error")
	}
	if !rep.Cells[1].Skipped {
		t.Errorf("cell after failure not skipped: %+v", rep.Cells[1])
	}
	if len(rep.Failures()) != 1 {
		t.Errorf("Failures() = %v, want exactly one", rep.Failures())
	}
}

// TestSameSeedReproduces: two harness runs of the faults experiment with
// the same seed produce identical metrics, cell for cell and key for key.
func TestSameSeedReproduces(t *testing.T) {
	testExperiments(t)
	cfg := harness.Config{
		Options: experiments.Options{
			Limit:     60_000,
			Workloads: []string{"compress"},
			Faults:    &faults.Config{Table: 1e-2, History: 1e-3, Seed: 7},
		},
		Timeout:     time.Minute,
		PerWorkload: true,
	}
	run := func() map[string]float64 {
		rep, err := harness.Run(cfg, []experiments.Experiment{mustExp(t, "faults")})
		if err != nil {
			t.Fatal(err)
		}
		if len(rep.Cells) != 1 || rep.Cells[0].Err != nil {
			t.Fatalf("faults cell failed: %+v", rep.Cells)
		}
		return rep.Cells[0].Result.Values
	}
	a, b := run(), run()
	if len(a) == 0 {
		t.Fatal("faults experiment produced no values")
	}
	for k, v := range a {
		if b[k] != v {
			t.Errorf("same-seed mismatch at %s: %g vs %g", k, v, b[k])
		}
	}
}

// TestParallelCells: cells run concurrently and the report still comes
// back in sweep order with every cell accounted for. Run under -race
// this is the harness's concurrency check.
func TestParallelCells(t *testing.T) {
	testExperiments(t)
	cfg := harness.Config{
		Options: experiments.Options{
			Limit:     40_000,
			Workloads: []string{"compress", "jpeg"},
		},
		Parallel:    4,
		KeepGoing:   true,
		PerWorkload: true,
	}
	exps := []experiments.Experiment{mustExp(t, "table2"), mustExp(t, "headline")}
	rep, err := harness.Run(cfg, exps)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"table2/compress", "table2/jpeg", "headline/compress", "headline/jpeg"}
	if len(rep.Cells) != len(want) {
		t.Fatalf("got %d cells, want %d", len(rep.Cells), len(want))
	}
	for i, c := range rep.Cells {
		if c.Cell.String() != want[i] {
			t.Errorf("cell %d = %s, want %s (order must be deterministic)", i, c.Cell, want[i])
		}
		if c.Err != nil || c.Result == nil {
			t.Errorf("cell %s failed: %+v", c.Cell, c.Err)
		}
	}
}

func TestCellsExpansion(t *testing.T) {
	testExperiments(t)
	cfg := harness.Config{
		Options:     experiments.Options{Workloads: []string{"compress", "gcc"}},
		PerWorkload: true,
	}
	cells := cfg.Cells([]experiments.Experiment{mustExp(t, "table2"), mustExp(t, "test-ok")})
	// test-ok is Global: one cell regardless of PerWorkload.
	want := []string{"table2/compress", "table2/gcc", "test-ok"}
	if len(cells) != len(want) {
		t.Fatalf("cells = %v, want %v", cells, want)
	}
	for i := range cells {
		if cells[i].String() != want[i] {
			t.Errorf("cell %d = %s, want %s", i, cells[i], want[i])
		}
	}
}
