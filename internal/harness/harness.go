// Package harness runs experiment sweeps as isolated cells — one
// (experiment, workload) pair per cell — each with its own deadline and
// panic recovery, so one broken or hanging cell cannot take down the
// whole sweep. Failures are captured as structured RunErrors; the
// report keeps every completed cell's result alongside the failures.
//
// Two layers of protection bound a cell:
//
//   - the instruction-step watchdog in sim.RunContext observes the
//     cell's context every few thousand simulated instructions, so a
//     deadline or cancellation stops a runaway *simulation* promptly
//     and without leaking goroutines;
//   - a grace timer after the deadline catches cells stuck *outside*
//     simulated code (a blocked program generator, a wedged consumer);
//     such a cell's goroutine is abandoned and the sweep moves on.
//
// Cells share the trace-stream cache (internal/stream) through
// Options: the first cell to need a (workload, limit, selection)
// stream captures it under that cell's own deadline, and every later
// cell — including parallel cells blocked on the same in-flight
// capture — replays the recording. A capture aborted by one cell's
// deadline is not stored; the next cell that needs the stream retries
// the capture under its own deadline, so a single short-fused cell
// cannot poison the sweep. Waiting cells observe their own context
// while blocked, which keeps per-cell deadlines meaningful even when
// the capturing cell has been abandoned.
package harness

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"
	"strings"
	"sync"
	"time"

	"pathtrace/internal/experiments"
	"pathtrace/internal/metrics"
	"pathtrace/internal/workload"
)

// Config controls a harness run.
type Config struct {
	// Options is the base experiment configuration. Options.Ctx, when
	// non-nil, is the parent context of every cell: canceling it stops
	// the sweep promptly (running cells are interrupted by the
	// simulator watchdog, queued cells are marked skipped).
	Options experiments.Options

	// Timeout is the per-cell deadline (0 = none).
	Timeout time.Duration

	// Grace is how long after a cell's deadline the harness waits for
	// the cell goroutine to notice before abandoning it (default 1s).
	// Only cells blocked outside simulated code ever hit this.
	Grace time.Duration

	// KeepGoing continues the sweep past failed cells. When false, the
	// first failure cancels the remaining cells (reported as skipped).
	KeepGoing bool

	// Parallel is the number of cells run concurrently (default 1).
	// Results are reported in sweep order regardless.
	Parallel int

	// PerWorkload splits each experiment into one cell per workload so
	// a single pathological workload only costs its own cells.
	// Experiments marked Global always get exactly one cell.
	PerWorkload bool

	// Metrics, when non-nil, receives the sweep's observability series:
	// harness_cell_seconds (wall time of every finished cell),
	// harness_cells_total{outcome="ok"|"failed"|"skipped"} and
	// harness_fault_trips_total{kind="panic"|"timeout"|"abandoned"} —
	// one trip per protection layer that fired, so a run that both
	// timed out and was abandoned counts under both kinds.
	Metrics *metrics.Registry
}

// Cell names one unit of work: an experiment, optionally pinned to a
// single workload.
type Cell struct {
	Experiment string
	Workload   string // empty for whole-experiment (or Global) cells
}

func (c Cell) String() string {
	if c.Workload == "" {
		return c.Experiment
	}
	return c.Experiment + "/" + c.Workload
}

// RunError describes one failed cell.
type RunError struct {
	Cell       Cell
	Err        error         // underlying error (ctx.Err() for timeouts)
	Panicked   bool          // the cell panicked
	PanicValue any           // value recovered from the panic
	Stack      string        // goroutine stack at the panic
	TimedOut   bool          // the cell's deadline expired
	Abandoned  bool          // cell goroutine never returned; left behind
	Duration   time.Duration // wall time spent in the cell
}

// Error renders a deterministic description (no durations, so harness
// output is stable across runs).
func (e *RunError) Error() string {
	switch {
	case e.Panicked:
		return fmt.Sprintf("%s: panicked: %v", e.Cell, e.PanicValue)
	case e.Abandoned:
		return fmt.Sprintf("%s: deadline exceeded; cell unresponsive, abandoned", e.Cell)
	case e.TimedOut:
		return fmt.Sprintf("%s: deadline exceeded: %v", e.Cell, e.Err)
	default:
		return fmt.Sprintf("%s: %v", e.Cell, e.Err)
	}
}

func (e *RunError) Unwrap() error { return e.Err }

// CellResult is one cell's outcome: exactly one of Result, Err, or
// Skipped is meaningful.
type CellResult struct {
	Cell     Cell
	Result   *experiments.Result
	Err      *RunError
	Skipped  bool // never started: an earlier failure or cancellation
	Duration time.Duration
}

// Report is the outcome of a sweep, cells in deterministic sweep order.
type Report struct {
	Cells []CellResult
}

// Failures returns the failed cells, in sweep order.
func (r *Report) Failures() []*RunError {
	var out []*RunError
	for _, c := range r.Cells {
		if c.Err != nil {
			out = append(out, c.Err)
		}
	}
	return out
}

// OK reports whether every cell completed successfully.
func (r *Report) OK() bool {
	for _, c := range r.Cells {
		if c.Err != nil || c.Skipped {
			return false
		}
	}
	return true
}

// FaultTrips counts which protection layers fired across the sweep.
// A single cell can trip more than one layer (a deadline expiry whose
// goroutine then never returns counts as timeout AND abandoned).
type FaultTrips struct {
	Panics    int
	Timeouts  int
	Abandoned int
}

// FaultTrips tallies the report's failed cells by protection layer.
func (r *Report) FaultTrips() FaultTrips {
	var ft FaultTrips
	for _, c := range r.Cells {
		if c.Err == nil {
			continue
		}
		if c.Err.Panicked {
			ft.Panics++
		}
		if c.Err.TimedOut {
			ft.Timeouts++
		}
		if c.Err.Abandoned {
			ft.Abandoned++
		}
	}
	return ft
}

// Summary renders a deterministic failure report: counts, the fault
// trips when any protection layer fired, and one line per failed cell.
func (r *Report) Summary() string {
	var ok, failed, skipped int
	var lines []string
	for _, c := range r.Cells {
		switch {
		case c.Skipped:
			skipped++
		case c.Err != nil:
			failed++
			lines = append(lines, "  FAIL "+c.Err.Error())
		default:
			ok++
		}
	}
	head := fmt.Sprintf("harness: %d ok, %d failed, %d skipped (of %d cells)",
		ok, failed, skipped, len(r.Cells))
	out := []string{head}
	if ft := r.FaultTrips(); ft != (FaultTrips{}) {
		out = append(out, fmt.Sprintf("  trips: %d panics, %d timeouts, %d abandoned",
			ft.Panics, ft.Timeouts, ft.Abandoned))
	}
	return strings.Join(append(out, lines...), "\n")
}

// Cells expands the experiment list into the sweep's cell list, in
// deterministic order (experiments in given order, workloads in
// registry order or the order given in Options.Workloads).
func (cfg Config) Cells(exps []experiments.Experiment) []Cell {
	var names []string
	if cfg.PerWorkload {
		if len(cfg.Options.Workloads) > 0 {
			names = cfg.Options.Workloads
		} else {
			for _, w := range workload.All() {
				names = append(names, w.Name)
			}
		}
	}
	var cells []Cell
	for _, e := range exps {
		if e.Global || !cfg.PerWorkload || len(names) == 0 {
			cells = append(cells, Cell{Experiment: e.Name})
			continue
		}
		for _, n := range names {
			cells = append(cells, Cell{Experiment: e.Name, Workload: n})
		}
	}
	return cells
}

// Run sweeps the experiments cell by cell and returns the full report.
// The returned error is reserved for setup problems; per-cell failures
// live in the report.
func Run(cfg Config, exps []experiments.Experiment) (*Report, error) {
	if len(exps) == 0 {
		return nil, errors.New("harness: no experiments to run")
	}
	parent := cfg.Options.Ctx
	if parent == nil {
		parent = context.Background()
	}
	runCtx, cancel := context.WithCancel(parent)
	defer cancel()

	cells := cfg.Cells(exps)
	results := make([]CellResult, len(cells))

	workers := cfg.Parallel
	if workers < 1 {
		workers = 1
	}
	if workers > len(cells) {
		workers = len(cells)
	}
	idx := make(chan int, len(cells))
	for i := range cells {
		idx <- i
	}
	close(idx)

	var wg sync.WaitGroup
	var failOnce sync.Once
	for n := 0; n < workers; n++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				if runCtx.Err() != nil {
					results[i] = CellResult{Cell: cells[i], Skipped: true}
					cfg.recordCell(results[i])
					continue
				}
				res := cfg.runCell(runCtx, cells[i])
				results[i] = res
				cfg.recordCell(res)
				if res.Err != nil && !cfg.KeepGoing {
					failOnce.Do(cancel)
				}
			}
		}()
	}
	wg.Wait()
	return &Report{Cells: results}, nil
}

// recordCell publishes one cell's outcome to cfg.Metrics (no-op when
// the sweep is not instrumented). Registration is idempotent, so the
// per-cell cost is a map lookup under the registry lock — irrelevant
// next to a cell's simulation time.
func (cfg Config) recordCell(res CellResult) {
	reg := cfg.Metrics
	if reg == nil {
		return
	}
	outcome := "ok"
	switch {
	case res.Skipped:
		outcome = "skipped"
	case res.Err != nil:
		outcome = "failed"
	}
	reg.Counter("harness_cells_total", "Sweep cells by outcome.",
		metrics.Labels{"outcome": outcome}).Inc()
	if !res.Skipped {
		reg.Histogram("harness_cell_seconds", "Wall time per finished cell.",
			1e-9, nil).ObserveDuration(res.Duration)
	}
	if res.Err != nil {
		trip := func(kind string) {
			reg.Counter("harness_fault_trips_total", "Cell protection layers fired.",
				metrics.Labels{"kind": kind}).Inc()
		}
		if res.Err.Panicked {
			trip("panic")
		}
		if res.Err.TimedOut {
			trip("timeout")
		}
		if res.Err.Abandoned {
			trip("abandoned")
		}
	}
}

// runCell executes one cell under its deadline, recovering panics and
// abandoning the goroutine if it outlives the deadline by the grace
// period.
func (cfg Config) runCell(parent context.Context, c Cell) CellResult {
	start := time.Now()
	ctx := parent
	cancel := context.CancelFunc(func() {})
	if cfg.Timeout > 0 {
		ctx, cancel = context.WithTimeout(parent, cfg.Timeout)
	}
	defer cancel()

	opt := cfg.Options
	opt.Ctx = ctx
	if c.Workload != "" {
		opt.Workloads = []string{c.Workload}
	}

	type outcome struct {
		res *experiments.Result
		err *RunError
	}
	done := make(chan outcome, 1)
	go func() {
		defer func() {
			if v := recover(); v != nil {
				done <- outcome{err: &RunError{
					Cell:       c,
					Err:        fmt.Errorf("panic: %v", v),
					Panicked:   true,
					PanicValue: v,
					Stack:      string(debug.Stack()),
				}}
			}
		}()
		e, ok := experiments.ByName(c.Experiment)
		if !ok {
			done <- outcome{err: &RunError{Cell: c, Err: fmt.Errorf("unknown experiment %q", c.Experiment)}}
			return
		}
		res, err := e.Run(opt)
		if err != nil {
			done <- outcome{err: &RunError{Cell: c, Err: err}}
			return
		}
		done <- outcome{res: res}
	}()

	grace := cfg.Grace
	if grace <= 0 {
		grace = time.Second
	}
	var out outcome
	select {
	case out = <-done:
	case <-ctx.Done():
		// The simulator watchdog usually surfaces the cancellation as an
		// ordinary error within a few thousand instructions; wait the
		// grace period for that, then write the cell off as stuck
		// outside simulated code and leave its goroutine behind. The
		// timer is stopped explicitly: time.After would pin its channel
		// (and, under a long grace, the runCell frame) until expiry even
		// after the cell answered, which a parallel sweep of thousands
		// of cells turns into real memory held for no reason.
		graceTimer := time.NewTimer(grace)
		select {
		case out = <-done:
			graceTimer.Stop()
		case <-graceTimer.C:
			out = outcome{err: &RunError{
				Cell:      c,
				Err:       ctx.Err(),
				TimedOut:  errors.Is(ctx.Err(), context.DeadlineExceeded),
				Abandoned: true,
			}}
		}
	}

	dur := time.Since(start)
	if out.err != nil {
		out.err.Duration = dur
		if errors.Is(ctx.Err(), context.DeadlineExceeded) {
			out.err.TimedOut = true
		}
		return CellResult{Cell: c, Err: out.err, Duration: dur}
	}
	return CellResult{Cell: c, Result: out.res, Duration: dur}
}
