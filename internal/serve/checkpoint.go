package serve

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"pathtrace/internal/snapshot"
)

// This file is the crash-safety half of the server: periodic per-shard
// checkpointing of session snapshots to disk, warm restart from those
// checkpoints, and the drain-time offload that streams every live
// session to a peer (or spills it to disk) so a SIGTERM loses nothing.
//
// Checkpointing is asynchronous and best-effort: the shard goroutine
// only encodes (an in-memory walk of its dirty sessions); file IO
// happens on a dedicated writer goroutine behind a bounded queue, so a
// slow disk never blocks prediction. The authoritative zero-loss path
// is the drain offload, which runs after the shards have quiesced and
// snapshots final state synchronously.

// checkpointer owns the periodic checkpoint machinery: a ticker that
// asks each shard to encode its dirty sessions, and a writer that
// persists the frames atomically.
type checkpointer struct {
	s   *Server
	dir string

	frames   chan ckptFrame
	tickStop chan struct{}
	tickWG   sync.WaitGroup
	writeWG  sync.WaitGroup
	stopOnce sync.Once

	written   atomic.Uint64 // checkpoint files persisted
	writeErrs atomic.Uint64 // checkpoint writes that failed
	dropped   atomic.Uint64 // frames dropped because the writer was behind
}

func newCheckpointer(s *Server, dir string, every time.Duration) *checkpointer {
	ck := &checkpointer{
		s:        s,
		dir:      dir,
		frames:   make(chan ckptFrame, 1024),
		tickStop: make(chan struct{}),
	}
	ck.writeWG.Add(1)
	go ck.writeLoop()
	ck.tickWG.Add(1)
	go ck.tickLoop(every)
	return ck
}

func (ck *checkpointer) tickLoop(every time.Duration) {
	defer ck.tickWG.Done()
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-ck.tickStop:
			return
		case <-t.C:
			ck.sweep()
		}
	}
}

// sweep enqueues one checkpoint task per shard. The task runs on the
// shard goroutine (so session state is read race-free) and hands the
// encoded frames to the writer. A full shard queue skips the shard
// this tick — its sessions stay dirty and the next tick retries.
func (ck *checkpointer) sweep() {
	for _, sh := range ck.s.shards {
		sh.enqueue(task{req: request{op: opCheckpoint}, done: func(resp shardResp) {
			for _, f := range resp.ckpt {
				ck.submit(f)
			}
		}})
	}
}

// submit offers a frame to the writer without blocking: the submitting
// goroutine is a shard goroutine, and a stalled disk must not stall
// prediction. A dropped frame is only a stale checkpoint — the session
// re-dirties on its next update, and the drain offload never goes
// through this queue.
func (ck *checkpointer) submit(f ckptFrame) {
	select {
	case ck.frames <- f:
	default:
		ck.dropped.Add(1)
	}
}

func (ck *checkpointer) writeLoop() {
	defer ck.writeWG.Done()
	for f := range ck.frames {
		if err := writeSnapshotFile(ck.dir, f.id, f.frame); err != nil {
			ck.writeErrs.Add(1)
		} else {
			ck.written.Add(1)
		}
	}
}

// stopTicker stops the periodic sweeps. Called from quiesce, before the
// shards stop (sweep tasks still in shard queues will run and feed the
// writer, which stays up until close).
func (ck *checkpointer) stopTicker() {
	close(ck.tickStop)
	ck.tickWG.Wait()
}

// close flushes and stops the writer. Callers must have stopped the
// shards first: after close, a submit would panic on the closed
// channel, and the shard goroutines are the only submitters.
func (ck *checkpointer) close() {
	ck.stopOnce.Do(func() {
		close(ck.frames)
		ck.writeWG.Wait()
	})
}

const snapshotFileExt = ".ntss"

func snapshotPath(dir string, id uint64) string {
	return filepath.Join(dir, fmt.Sprintf("%016x%s", id, snapshotFileExt))
}

// writeSnapshotFile persists one frame crash-safely: write to a
// temporary file, fsync it, rename over the final name, fsync the
// directory. A crash at any point leaves either the previous checkpoint
// or the new one — never a torn file — and a torn write that does slip
// through (lying disk) is caught by the frame checksum on load.
func writeSnapshotFile(dir string, id uint64, frame []byte) error {
	final := snapshotPath(dir, id)
	tmp := final + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	_, werr := f.Write(frame)
	serr := f.Sync()
	cerr := f.Close()
	if err := errors.Join(werr, serr, cerr); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, final); err != nil {
		os.Remove(tmp)
		return err
	}
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
	return nil
}

// loadCheckpoints restores every decodable session snapshot in dir into
// its shard. Runs during NewServer, before the shards start. Corrupt or
// incompatible files are counted and skipped, never installed: a torn
// checkpoint costs a warm start, not correctness.
func (s *Server) loadCheckpoints(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		return err
	}
	for _, e := range ents {
		if e.IsDir() || !strings.HasSuffix(e.Name(), snapshotFileExt) {
			continue
		}
		b, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			s.counters.CorruptSnapshots.Add(1)
			continue
		}
		sess, err := snapshot.Decode(b)
		if err != nil {
			s.counters.CorruptSnapshots.Add(1)
			continue
		}
		if err := s.shardFor(sess.ID).installSnapshot(sess); err != nil {
			s.counters.CorruptSnapshots.Add(1)
			continue
		}
		s.counters.RestoredSessions.Add(1)
	}
	return nil
}

// offload snapshots every live session after quiesce and gets each one
// somewhere safe: streamed to the handoff peer when configured (with
// retries, falling back to disk), else spilled to the checkpoint
// directory. Returns an error naming the sessions that ended up with
// nowhere to go.
func (s *Server) offload() error {
	if s.ckpt != nil {
		// Flush pending periodic checkpoint writes first so the spill
		// below cannot race the writer on the same files.
		s.ckpt.close()
	}
	var frames []ckptFrame
	for _, sh := range s.shards {
		for _, sess := range sh.sessions {
			snap, err := sh.exportSession(sess)
			if err != nil {
				s.counters.LostSessions.Add(1)
				continue
			}
			b, err := snapshot.Encode(snap)
			if err != nil {
				s.counters.LostSessions.Add(1)
				continue
			}
			frames = append(frames, ckptFrame{id: sess.id, frame: b})
		}
	}
	if len(frames) == 0 {
		return s.offloadErr()
	}

	spill := func(f ckptFrame) {
		if s.cfg.CheckpointDir == "" {
			s.counters.LostSessions.Add(1)
			return
		}
		if err := writeSnapshotFile(s.cfg.CheckpointDir, f.id, f.frame); err != nil {
			s.counters.LostSessions.Add(1)
		} else {
			s.counters.SpilledSessions.Add(1)
		}
	}

	if s.cfg.HandoffAddr == "" {
		for _, f := range frames {
			spill(f)
		}
		return s.offloadErr()
	}

	// Stream to the peer with bounded concurrency; each worker keeps one
	// connection and re-dials on failure.
	ch := make(chan ckptFrame)
	var wg sync.WaitGroup
	for i := 0; i < min(4, len(frames)); i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var cl *Client
			defer func() {
				if cl != nil {
					cl.Close()
				}
			}()
			for f := range ch {
				if s.handoffOne(&cl, f) {
					s.counters.HandoffSessions.Add(1)
				} else {
					s.counters.HandoffFailed.Add(1)
					spill(f)
				}
			}
		}()
	}
	for _, f := range frames {
		ch <- f
	}
	close(ch)
	wg.Wait()
	return s.offloadErr()
}

// handoffOne delivers one session snapshot to the handoff peer,
// retrying transient failures with doubling backoff. *cl caches the
// worker's connection across sessions.
func (s *Server) handoffOne(cl **Client, f ckptFrame) bool {
	backoff := 50 * time.Millisecond
	for attempt := 0; attempt < 4; attempt++ {
		if attempt > 0 {
			s.counters.HandoffRetries.Add(1)
			time.Sleep(backoff)
			backoff *= 2
		}
		if *cl == nil {
			c, err := DialTimeout(s.cfg.HandoffAddr, 2*time.Second)
			if err != nil {
				continue
			}
			c.SetOpTimeout(5 * time.Second)
			*cl = c
		}
		if _, err := (*cl).Restore(f.id, f.frame); err != nil {
			if errors.Is(err, ErrBadSnapshot) {
				// The peer understood the frame and refused it (geometry
				// mismatch); retrying the same bytes cannot succeed.
				return false
			}
			(*cl).Close()
			*cl = nil
			continue
		}
		return true
	}
	return false
}

// offloadErr reports drain losses as an error only when the operator
// asked for zero loss (a checkpoint dir or handoff peer is configured)
// and sessions still ended up with nowhere to go. With neither
// configured, discarding sessions at drain is the configured behavior:
// the counter records it, Shutdown succeeds.
func (s *Server) offloadErr() error {
	if s.cfg.CheckpointDir == "" && s.cfg.HandoffAddr == "" {
		return nil
	}
	if lost := s.counters.LostSessions.Load(); lost > 0 {
		return fmt.Errorf("serve: %d sessions lost at drain (handoff and spill both failed)", lost)
	}
	return nil
}
