package serve

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"testing"
	"time"

	"pathtrace/internal/metrics"
	"pathtrace/internal/predictor"
	"pathtrace/internal/trace"
)

// takeTraces returns the first n traces of the shared test stream.
func takeTraces(t *testing.T, n int) []trace.Trace {
	t.Helper()
	s := captureTestStream(t)
	out := make([]trace.Trace, 0, n)
	cur := s.Cursor()
	var tr trace.Trace
	for len(out) < n && cur.Next(&tr) {
		out = append(out, tr)
	}
	if len(out) < n {
		t.Fatalf("test stream too short: %d < %d traces", len(out), n)
	}
	return out
}

// TestTokenBucket drives the bucket with explicit clocks, so refill,
// priming, capping and the retry-after hint are all exact.
func TestTokenBucket(t *testing.T) {
	var b tokenBucket
	t0 := time.Unix(1000, 0)

	// A fresh bucket holds a full burst.
	if ra, ok := b.take(10, 10, 10, t0); !ok || ra != 0 {
		t.Fatalf("fresh take(burst) = %v, %v; want admitted", ra, ok)
	}
	// Now empty: the next token is 100ms away at 10/s.
	ra, ok := b.take(1, 10, 10, t0)
	if ok {
		t.Fatal("take from empty bucket admitted")
	}
	if ra < 90*time.Millisecond || ra > 110*time.Millisecond {
		t.Fatalf("retry-after = %v, want ~100ms", ra)
	}
	// Refill: 500ms at 10/s = 5 tokens.
	if _, ok := b.take(5, 10, 10, t0.Add(500*time.Millisecond)); !ok {
		t.Fatal("refilled tokens not granted")
	}
	// Tokens cap at burst: after a long idle stretch, exactly one burst
	// is available, not rate*idle.
	t1 := t0.Add(time.Hour)
	if _, ok := b.take(10, 10, 10, t1); !ok {
		t.Fatal("capped bucket refused a burst")
	}
	if _, ok := b.take(1, 10, 10, t1); ok {
		t.Fatal("bucket granted more than burst after idle")
	}

	// Oversized requests are clamped to the bucket depth: a full bucket
	// admits them (charging a whole burst) instead of refusing forever.
	var big tokenBucket
	if _, ok := big.take(1e9, 10, 10, t0); !ok {
		t.Fatal("oversized request refused by a full bucket")
	}
	if _, ok := big.take(1, 10, 10, t0); ok {
		t.Fatal("oversized request did not drain the bucket")
	}

	// The minimum hint is 1ms, never 0: a zero hint would make clients
	// spin.
	var tiny tokenBucket
	tiny.take(1, 1e9, 1, t0)
	if ra, ok := tiny.take(1, 1e9, 1, t0); ok || ra < time.Millisecond {
		t.Fatalf("hint = %v, %v; want >= 1ms refusal", ra, ok)
	}
}

func TestTokenBucketRefund(t *testing.T) {
	var b tokenBucket
	t0 := time.Unix(2000, 0)
	if _, ok := b.take(8, 1, 8, t0); !ok {
		t.Fatal("initial take refused")
	}
	b.refund(8)
	if _, ok := b.take(8, 1, 8, t0); !ok {
		t.Fatal("refunded tokens not spendable")
	}
}

func TestAdmissionCostModel(t *testing.T) {
	traces := make([]trace.Trace, 7)
	for _, tc := range []struct {
		req  request
		want float64
	}{
		{request{op: OpPredict}, 1},
		{request{op: OpUpdate, traces: traces[:1]}, 1},
		{request{op: OpUpdateBatch, traces: traces}, 7},
		{request{op: OpPredictBatch, traces: traces}, 7},
		{request{op: OpOpen}, 0},
		{request{op: OpStats}, 0},
		{request{op: OpSnapshot}, 0},
		{request{op: OpRestore}, 0},
		{request{op: OpHello}, 0},
	} {
		if got := admissionCost(&tc.req); got != tc.want {
			t.Errorf("admissionCost(op %#x) = %v, want %v", tc.req.op, got, tc.want)
		}
	}
}

// TestThrottleCountersExactlyOnce rejects a known number of requests
// and requires the server-wide and per-client throttle counters to
// say exactly that number — the "exactly once per rejection" contract
// the fleet reporter's rates depend on.
func TestThrottleCountersExactlyOnce(t *testing.T) {
	srv := newTestServer(t, Config{Shards: 1, Limits: Limits{
		// One token, refilling at a rate that cannot matter within the
		// test's lifetime: exactly one work op is ever admitted.
		PerClientRate: 0.001, PerClientBurst: 1,
	}})
	cl, err := Dial(srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	cl.SetClientTag("metered")

	const session = 7
	if _, err := openRetry(cl, session); err != nil {
		t.Fatal(err)
	}
	traces := takeTraces(t, 1)
	if _, _, err := cl.Update(session, traces); err != nil {
		t.Fatalf("first update (full bucket): %v", err)
	}

	const rejected = 5
	for i := 0; i < rejected; i++ {
		_, _, err := cl.Update(session, traces)
		if !errors.Is(err, ErrThrottled) {
			t.Fatalf("update %d: err = %v, want ErrThrottled", i, err)
		}
		var te *ThrottledError
		if !errors.As(err, &te) || te.RetryAfter < time.Millisecond {
			t.Fatalf("update %d: no usable retry-after hint in %v", i, err)
		}
	}

	// Control ops stay exempt while throttled: the client can still
	// observe and recover.
	if _, err := cl.Stats(session); err != nil {
		t.Fatalf("stats while throttled: %v", err)
	}
	if _, err := cl.Snapshot(session); err != nil {
		t.Fatalf("snapshot while throttled: %v", err)
	}

	st := srv.Stats()
	if st.Throttled != rejected {
		t.Errorf("server Throttled = %d, want %d", st.Throttled, rejected)
	}
	found := false
	for _, cs := range st.Clients {
		if cs.Client == "metered" {
			found = true
			if cs.Throttled != rejected {
				t.Errorf("client throttled = %d, want %d", cs.Throttled, rejected)
			}
			if cs.Rounds != 1 {
				t.Errorf("client rounds = %d, want 1 (only the admitted trace)", cs.Rounds)
			}
			if cs.Requests == 0 || cs.Bytes == 0 {
				t.Errorf("client accounting empty: %+v", cs)
			}
		}
	}
	if !found {
		t.Fatalf("no client stats for tag %q: %+v", "metered", st.Clients)
	}
}

// TestOverloadCountersExactlyOnce checks the other rejection class the
// same way: every ErrOverloaded a client saw is counted exactly once,
// both per shard and per client tag.
func TestOverloadCountersExactlyOnce(t *testing.T) {
	s := captureTestStream(t)
	srv := newTestServer(t, Config{Shards: 1, QueueLen: 1})

	var overloads, oks atomic64
	var wg sync.WaitGroup
	for c := 0; c < 8; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			cl, err := Dial(srv.Addr().String())
			if err != nil {
				t.Errorf("dial: %v", err)
				return
			}
			defer cl.Close()
			cl.SetClientTag("storm")
			session := uint64(300 + c)
			if _, err := openRetry(cl, session); err != nil {
				t.Errorf("open: %v", err)
				return
			}
			batch := make([]trace.Trace, 0, 64)
			cur := s.Cursor()
			var tr trace.Trace
			for len(batch) < cap(batch) && cur.Next(&tr) {
				batch = append(batch, tr)
			}
			for i := 0; i < 50; i++ {
				_, _, err := cl.Update(session, batch)
				switch {
				case err == nil:
					oks.add(1)
				case errors.Is(err, ErrOverloaded):
					overloads.add(1)
				default:
					t.Errorf("update: %v", err)
					return
				}
			}
		}(c)
	}
	wg.Wait()

	st := srv.Stats()
	// openRetry retries also surface ErrOverloaded to clients without
	// the test counting them, so compare >=; the per-client counter and
	// the wire observations must never drift the other way (double
	// counting).
	var client ClientStats
	for _, cs := range st.Clients {
		if cs.Client == "storm" {
			client = cs
		}
	}
	if client.Client == "" {
		t.Fatalf("no client stats for storm: %+v", st.Clients)
	}
	if client.Overloads < overloads.load() {
		t.Errorf("client overloads = %d < %d observed on the wire", client.Overloads, overloads.load())
	}
	if st.Overloads < overloads.load() {
		t.Errorf("shard overloads = %d < %d observed on the wire", st.Overloads, overloads.load())
	}
	t.Logf("oks=%d overloads(wire)=%d overloads(client)=%d", oks.load(), overloads.load(), client.Overloads)
}

// TestClientTagPropagation covers the identity plumbing: a tagged
// connection accounts under its tag, an untagged one under "default",
// and an invalid hello is a per-request rejection that leaves the
// connection fully usable.
func TestClientTagPropagation(t *testing.T) {
	srv := newTestServer(t, Config{Shards: 2})

	tagged, err := Dial(srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer tagged.Close()
	tagged.SetClientTag("alice")
	if _, err := openRetry(tagged, 1); err != nil {
		t.Fatal(err)
	}
	traces := takeTraces(t, 8)
	if _, _, _, err := tagged.UpdateBatch(1, traces); err != nil {
		t.Fatal(err)
	}

	untagged, err := Dial(srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer untagged.Close()
	if _, err := openRetry(untagged, 2); err != nil {
		t.Fatal(err)
	}
	if _, _, err := untagged.Update(2, traces[:1]); err != nil {
		t.Fatal(err)
	}

	got := map[string]ClientStats{}
	for _, cs := range srv.Stats().Clients {
		got[cs.Client] = cs
	}
	if cs := got["alice"]; cs.Rounds != 8 {
		t.Errorf("alice rounds = %d, want 8", cs.Rounds)
	}
	if cs := got[defaultClientTag]; cs.Rounds != 1 {
		t.Errorf("default rounds = %d, want 1", cs.Rounds)
	}

	// An invalid tag (in-range length, forbidden character) is rejected
	// without killing the connection or changing its identity.
	raw, err := Dial(srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()
	if _, err := raw.roundTrip(OpHello, 0, []byte(`bad"tag`)); !errors.Is(err, ErrBadRequest) {
		t.Fatalf("invalid hello: err = %v, want ErrBadRequest", err)
	}
	if _, err := openRetry(raw, 3); err != nil {
		t.Fatalf("open after rejected hello: %v", err)
	}
	if _, ok := got[`bad"tag`]; ok {
		t.Error("invalid tag minted a client entry")
	}
}

// TestRetryClientHonorsRetryAfter drives a RetryClient through a quota
// tight enough to throttle most updates: every operation must still
// succeed (the client sleeps the server's hint and retries), and the
// server must confirm throttling actually happened.
func TestRetryClientHonorsRetryAfter(t *testing.T) {
	srv := newTestServer(t, Config{Shards: 2, Limits: Limits{
		PerClientRate: 500, PerClientBurst: 2,
	}})
	rc, err := NewRetryClient(RetryConfig{
		Addrs:     []string{srv.Addr().String()},
		ClientTag: "patient",
		Seed:      7,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Close()

	const session = 11
	if _, _, err := rc.Open(session); err != nil {
		t.Fatal(err)
	}
	traces := takeTraces(t, 1)
	for i := 0; i < 30; i++ {
		if _, _, err := rc.Update(session, traces); err != nil {
			t.Fatalf("update %d: %v", i, err)
		}
	}
	st := srv.Stats()
	if st.Throttled == 0 {
		t.Error("quota never throttled: test proved nothing")
	}
	for _, cs := range st.Clients {
		if cs.Client == "patient" && cs.Rounds != 30 {
			t.Errorf("rounds = %d, want 30 (every update eventually admitted)", cs.Rounds)
		}
	}
}

// TestFairnessSmoke is the isolation property end to end: an aggressor
// demanding far more than its quota is throttled, while a well-behaved
// client paced under its own quota sees zero errors of any kind.
func TestFairnessSmoke(t *testing.T) {
	srv := newTestServer(t, Config{Limits: Limits{
		PerClientRate: 1000, PerClientBurst: 100,
	}})
	traces := takeTraces(t, 50)

	var wg sync.WaitGroup
	var aggressorThrottled atomic64
	var victimErr error
	deadline := time.Now().Add(400 * time.Millisecond)

	wg.Add(1)
	go func() { // aggressor: ~50k traces/s demanded against a 1k quota
		defer wg.Done()
		cl, err := Dial(srv.Addr().String())
		if err != nil {
			t.Errorf("aggressor dial: %v", err)
			return
		}
		defer cl.Close()
		cl.SetClientTag("aggressor")
		if _, err := openRetry(cl, 100); err != nil {
			t.Errorf("aggressor open: %v", err)
			return
		}
		for time.Now().Before(deadline) {
			_, _, _, err := cl.UpdateBatch(100, traces)
			switch {
			case err == nil:
			case errors.Is(err, ErrThrottled):
				aggressorThrottled.add(1)
				time.Sleep(throttleDelay(err, time.Millisecond))
			case errors.Is(err, ErrOverloaded):
				time.Sleep(time.Millisecond)
			default:
				t.Errorf("aggressor update: %v", err)
				return
			}
		}
	}()

	wg.Add(1)
	go func() { // victim: ~200 traces/s, a fifth of its quota
		defer wg.Done()
		cl, err := Dial(srv.Addr().String())
		if err != nil {
			victimErr = err
			return
		}
		defer cl.Close()
		cl.SetClientTag("victim")
		if _, err := openRetry(cl, 200); err != nil {
			victimErr = fmt.Errorf("open: %w", err)
			return
		}
		for time.Now().Before(deadline) {
			if _, _, err := cl.Update(200, traces[:1]); err != nil {
				victimErr = err
				return
			}
			time.Sleep(5 * time.Millisecond)
		}
	}()
	wg.Wait()

	if victimErr != nil {
		t.Errorf("victim saw an error despite staying under quota: %v", victimErr)
	}
	if aggressorThrottled.load() == 0 {
		t.Error("aggressor was never throttled: quota not enforced")
	}
	var victim ClientStats
	for _, cs := range srv.Stats().Clients {
		if cs.Client == "victim" {
			victim = cs
		}
	}
	if victim.Throttled != 0 || victim.Overloads != 0 {
		t.Errorf("victim rejected server-side: %+v", victim)
	}
	t.Logf("aggressor throttled %d times; victim clean", aggressorThrottled.load())
}

// TestLimitzHotReload swaps quotas through the admin plane and checks
// they bind immediately — same connection, same session, nothing
// dropped.
func TestLimitzHotReload(t *testing.T) {
	srv := newTestServer(t, Config{Shards: 1, AdminAddr: "127.0.0.1:0"})
	base := "http://" + srv.AdminAddr().String() + "/limitz"

	var l Limits
	get := func() Limits {
		t.Helper()
		resp, err := http.Get(base)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var out Limits
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
		return out
	}
	post := func(body string) *http.Response {
		t.Helper()
		resp, err := http.Post(base, "application/json", bytes.NewReader([]byte(body)))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp
	}

	if l = get(); l.enabled() {
		t.Fatalf("limits enabled at boot: %+v", l)
	}

	cl, err := Dial(srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if _, err := openRetry(cl, 5); err != nil {
		t.Fatal(err)
	}
	traces := takeTraces(t, 1)
	if _, _, err := cl.Update(5, traces); err != nil {
		t.Fatalf("update before limits: %v", err)
	}

	// Install a one-token quota: the next update drains it, the one
	// after is throttled — on the connection that predates the reload.
	if resp := post(`{"per_client_rate": 0.001, "per_client_burst": 1}`); resp.StatusCode != http.StatusOK {
		t.Fatalf("POST limits: %s", resp.Status)
	}
	if l = get(); l.PerClientRate != 0.001 || l.PerClientBurst != 1 {
		t.Fatalf("limits after POST = %+v", l)
	}
	if _, _, err := cl.Update(5, traces); err != nil {
		t.Fatalf("update draining the fresh bucket: %v", err)
	}
	if _, _, err := cl.Update(5, traces); !errors.Is(err, ErrThrottled) {
		t.Fatalf("update past quota: err = %v, want ErrThrottled", err)
	}

	// Reload back to unlimited: the same session flows again.
	if resp := post(`{}`); resp.StatusCode != http.StatusOK {
		t.Fatalf("POST zero limits: %s", resp.Status)
	}
	if _, _, err := cl.Update(5, traces); err != nil {
		t.Fatalf("update after limits removed: %v", err)
	}

	// Malformed reloads must not change anything.
	if resp := post(`{"bogus_field": 1}`); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown field accepted: %s", resp.Status)
	}
	if resp := post(`{"per_client_rate": -1}`); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("negative rate accepted: %s", resp.Status)
	}
	if l = get(); l.enabled() {
		t.Errorf("rejected POSTs still changed limits: %+v", l)
	}
}

// TestAdminServerTimeouts is the slowloris regression: the admin
// listener must carry header/read/idle bounds so a peer dribbling
// bytes cannot pin goroutines forever.
func TestAdminServerTimeouts(t *testing.T) {
	srv := newTestServer(t, Config{AdminAddr: "127.0.0.1:0"})
	hs := srv.admin.srv
	if hs.ReadHeaderTimeout <= 0 {
		t.Error("admin ReadHeaderTimeout unset: slowloris regression")
	}
	if hs.ReadTimeout <= 0 {
		t.Error("admin ReadTimeout unset")
	}
	if hs.IdleTimeout <= 0 {
		t.Error("admin IdleTimeout unset")
	}
	if hs.WriteTimeout <= 0 {
		t.Error("admin WriteTimeout unset")
	}
}

// TestShardEnqueueStopRace hammers enqueue from many goroutines while
// stop closes the queue. Before the queue-liveness lock this was a
// send-on-closed-channel panic under exactly this interleaving; run
// with -race.
func TestShardEnqueueStopRace(t *testing.T) {
	backend, err := predictor.ResolveBackend(headlineConfig())
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 20; round++ {
		sh := newShard(0, backend, headlineConfig(), nil, nil, 4,
			newShardMetrics(metrics.NewRegistry(), 0, "hybrid", nil))
		sh.start()

		start := make(chan struct{})
		var wg sync.WaitGroup
		for g := 0; g < 8; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				<-start
				for i := 0; i < 200; i++ {
					// A false return is either queue-full backpressure or
					// the shard shutting down mid-hammer; both are legal —
					// the test is that no interleaving panics.
					sh.enqueue(task{
						req:  request{op: OpOpen, session: uint64(g*1000 + i)},
						done: func(shardResp) {},
					})
				}
			}(g)
		}
		close(start)
		sh.stop() // races with the enqueues by design
		wg.Wait()

		if sh.enqueue(task{req: request{op: OpOpen}, done: func(shardResp) {}}) {
			t.Fatal("enqueue succeeded after stop")
		}
	}
}

// TestBackoffForBoundaries pins the overflow fix: with a huge base the
// old shifted backoff (base << attempt) wrapped negative; the doubling
// loop must saturate at MaxBackoff for every attempt, including the
// ones that used to overflow.
func TestBackoffForBoundaries(t *testing.T) {
	mk := func(base, max time.Duration) *RetryClient {
		rc, err := NewRetryClient(RetryConfig{
			Addrs:       []string{"127.0.0.1:1"},
			BaseBackoff: base,
			MaxBackoff:  max,
		})
		if err != nil {
			t.Fatal(err)
		}
		return rc
	}

	rc := mk(20*time.Millisecond, time.Second)
	for attempt, want := range map[int]time.Duration{
		0: 20 * time.Millisecond,
		1: 40 * time.Millisecond,
		3: 160 * time.Millisecond,
		5: 640 * time.Millisecond,
		6: time.Second,
	} {
		if got := rc.backoffFor(attempt); got != want {
			t.Errorf("backoffFor(%d) = %v, want %v", attempt, got, want)
		}
	}

	// The regression: a base over ~2.56h made base<<20 wrap negative.
	huge := mk(3*time.Hour, 5*time.Hour)
	for _, attempt := range []int{0, 1, 20, 62, 63, 1000} {
		got := huge.backoffFor(attempt)
		if got <= 0 {
			t.Fatalf("backoffFor(%d) = %v: overflowed", attempt, got)
		}
		if got > 5*time.Hour {
			t.Fatalf("backoffFor(%d) = %v: exceeded MaxBackoff", attempt, got)
		}
	}
	if got := huge.backoffFor(0); got != 3*time.Hour {
		t.Errorf("backoffFor(0) = %v, want the base", got)
	}
	for _, attempt := range []int{1, 63} {
		if got := huge.backoffFor(attempt); got != 5*time.Hour {
			t.Errorf("backoffFor(%d) = %v, want saturation at MaxBackoff", attempt, got)
		}
	}
}
