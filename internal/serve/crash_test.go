package serve

import (
	"context"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"os"
	"testing"
	"time"

	"pathtrace/internal/faults"
	"pathtrace/internal/predictor"
	"pathtrace/internal/snapshot"
	"pathtrace/internal/stream"
	"pathtrace/internal/trace"
)

// This file covers the crash-safety cycle end to end: snapshot a live
// session over the wire, move it between servers, drain to disk and
// warm-restart from it, hand sessions to a peer at drain, reject
// corrupted checkpoints, answer duplicate updates from cache, and ride
// a retrying client through a server kill — in every case requiring
// the surviving predictor state to be bit-identical to an
// uninterrupted run.

// updater is the Update surface shared by Client and RetryClient.
type updater interface {
	Update(session uint64, traces []trace.Trace) (applied, correct uint32, err error)
}

// feedBatches streams up to n batches of batchSize traces from cur
// into the session; n < 0 drains the cursor. Returns batches sent.
func feedBatches(t *testing.T, u updater, session uint64, cur *stream.Cursor, batchSize, n int) int {
	t.Helper()
	var tr trace.Trace
	batch := make([]trace.Trace, 0, batchSize)
	sent := 0
	for n < 0 || sent < n {
		batch = batch[:0]
		for len(batch) < batchSize && cur.Next(&tr) {
			batch = append(batch, tr)
		}
		if len(batch) == 0 {
			break
		}
		applied, _, err := u.Update(session, batch)
		if err != nil {
			t.Fatalf("update session %d (batch %d): %v", session, sent, err)
		}
		if int(applied) != len(batch) {
			t.Fatalf("update session %d: applied %d of %d", session, applied, len(batch))
		}
		sent++
	}
	return sent
}

// refStats is the uninterrupted in-process replay every crash cycle
// must reproduce exactly.
func refStats(t *testing.T, s *stream.Stream) predictor.Stats {
	t.Helper()
	p := predictor.MustNew(headlineConfig())
	if _, _, err := s.Replay(nil, func(tr *trace.Trace) {
		p.Predict()
		p.Update(tr)
	}); err != nil {
		t.Fatal(err)
	}
	return p.Stats()
}

func dialT(t *testing.T, srv *Server) *Client {
	t.Helper()
	cl, err := Dial(srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cl.Close() })
	return cl
}

// TestSnapshotMovesSessionBetweenServers: half the stream on server A,
// OpSnapshot, OpRestore onto an unrelated server B (different shard
// count), the other half on B — stats bit-identical to no move at all.
func TestSnapshotMovesSessionBetweenServers(t *testing.T) {
	s := captureTestStream(t)
	want := refStats(t, s)
	srvA := newTestServer(t, Config{Shards: 2})
	srvB := newTestServer(t, Config{Shards: 3})

	const session, batch = 7, 128
	clA := dialT(t, srvA)
	if _, _, err := clA.Open(session); err != nil {
		t.Fatal(err)
	}
	cur := s.Cursor()
	half := int(s.Len()) / batch / 2
	feedBatches(t, clA, session, cur, batch, half)

	frame, err := clA.Snapshot(session)
	if err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	clB := dialT(t, srvB)
	if _, err := clB.Restore(session, frame); err != nil {
		t.Fatalf("Restore: %v", err)
	}
	feedBatches(t, clB, session, cur, batch, -1)

	st, err := clB.Stats(session)
	if err != nil {
		t.Fatal(err)
	}
	if !st.Session.Equal(want) {
		t.Errorf("moved session stats %+v, want %+v", st.Session, want)
	}
	if got := srvA.shardFor(session).counters.Snapshots.Load(); got != 1 {
		t.Errorf("server A snapshot ops = %d, want 1", got)
	}
	if got := srvB.shardFor(session).counters.Restores.Load(); got != 1 {
		t.Errorf("server B restores = %d, want 1", got)
	}
}

// TestSnapshotRoundTripAllBackends drives the wire-level
// Save → Snapshot → Restore cycle for every snapshottable backend in
// the registry: half the stream on server A, snapshot, restore onto a
// server with a different shard count, the other half on B, and the
// final stats must be bit-identical to an uninterrupted in-process
// replay under the same backend. A newly registered backend fails the
// test until it gets a config entry here.
func TestSnapshotRoundTripAllBackends(t *testing.T) {
	s := captureTestStream(t)
	configs := map[string]predictor.Config{
		"basic":       {Backend: "basic", Depth: 5, IndexBits: 12},
		"hybrid":      {Backend: "hybrid", Depth: 7, IndexBits: 12, UseRHS: true},
		"costreduced": {Backend: "costreduced", Depth: 7, IndexBits: 12},
		"tage":        {Backend: "tage", Depth: 7, IndexBits: 12},
	}
	for _, b := range predictor.Backends() {
		if !b.Snapshottable() {
			continue
		}
		cfg, ok := configs[b.Name]
		if !ok {
			t.Errorf("no round-trip config for newly registered backend %q — add one", b.Name)
			continue
		}
		t.Run(b.Name, func(t *testing.T) {
			const session, batch, nBatches = 7, 128, 20
			// Uninterrupted reference over the same traces.
			ref := predictor.MustNew(cfg)
			cur := s.Cursor()
			var tr trace.Trace
			for i := 0; i < nBatches*batch && cur.Next(&tr); i++ {
				ref.Predict()
				ref.Update(&tr)
			}

			srvA := newTestServer(t, Config{Shards: 2, Predictor: cfg})
			srvB := newTestServer(t, Config{Shards: 3, Predictor: cfg})
			clA := dialT(t, srvA)
			if _, _, err := clA.Open(session); err != nil {
				t.Fatal(err)
			}
			cur = s.Cursor()
			feedBatches(t, clA, session, cur, batch, nBatches/2)
			frame, err := clA.Snapshot(session)
			if err != nil {
				t.Fatalf("Snapshot: %v", err)
			}
			clB := dialT(t, srvB)
			if _, err := clB.Restore(session, frame); err != nil {
				t.Fatalf("Restore: %v", err)
			}
			feedBatches(t, clB, session, cur, batch, nBatches/2)
			st, err := clB.Stats(session)
			if err != nil {
				t.Fatal(err)
			}
			if !st.Session.Equal(ref.Stats()) {
				t.Errorf("moved session stats %+v, want %+v", st.Session, ref.Stats())
			}
		})
	}
}

// TestRestoreRejectsWrongBackendFrame: a frame saved by a TAGE server
// is checksum-valid and well-formed, but must not install into a
// hybrid server — the backend families differ — and a frame whose tag
// bytes were corrupted (checksum fixed up) must be rejected at decode.
func TestRestoreRejectsWrongBackendFrame(t *testing.T) {
	s := captureTestStream(t)
	tageSrv := newTestServer(t, Config{Shards: 1,
		Predictor: predictor.Config{Backend: "tage", Depth: 7, IndexBits: 16}})
	cl := dialT(t, tageSrv)
	if _, _, err := cl.Open(1); err != nil {
		t.Fatal(err)
	}
	feedBatches(t, cl, 1, s.Cursor(), 128, 5)
	frame, err := cl.Snapshot(1)
	if err != nil {
		t.Fatalf("Snapshot: %v", err)
	}

	hybridSrv := newTestServer(t, Config{Shards: 1}) // headline hybrid
	clH := dialT(t, hybridSrv)
	if _, err := clH.Restore(1, frame); !errors.Is(err, ErrBadSnapshot) {
		t.Errorf("cross-family Restore = %v, want ErrBadSnapshot", err)
	}
	if got := hybridSrv.shardFor(1).counters.RestoreRejects.Load(); got != 1 {
		t.Errorf("restore rejects = %d, want 1", got)
	}

	// Corrupt the backend tag in place and fix the checksum: the frame
	// is now checksum-valid but tagged with an unregistered name.
	bad := append([]byte(nil), frame...)
	bad[30] ^= 0xFF // first byte of the tag ("tage" starts at offset 30)
	binary.LittleEndian.PutUint32(bad[len(bad)-4:], crc32.ChecksumIEEE(bad[:len(bad)-4]))
	if _, err := snapshot.Decode(bad); !errors.Is(err, snapshot.ErrCorrupt) {
		t.Errorf("Decode of corrupt tag = %v, want snapshot.ErrCorrupt", err)
	}
	if _, err := cl.Restore(2, bad); !errors.Is(err, ErrBadSnapshot) {
		t.Errorf("Restore of corrupt tag = %v, want ErrBadSnapshot", err)
	}
}

// TestDrainSpillAndWarmRestart: a drained server spills its live
// session to the checkpoint dir; a fresh server on the same dir
// restores it before accepting traffic, Open reports the session's
// last applied sequence (so the client's dedup stream continues), and
// finishing the stream yields bit-identical stats.
func TestDrainSpillAndWarmRestart(t *testing.T) {
	s := captureTestStream(t)
	want := refStats(t, s)
	dir := t.TempDir()

	const session, batch = 9, 128
	srvA := newTestServer(t, Config{Shards: 2, CheckpointDir: dir})
	clA := dialT(t, srvA)
	if _, _, err := clA.Open(session); err != nil {
		t.Fatal(err)
	}
	cur := s.Cursor()
	half := int(s.Len()) / batch / 2
	sent := feedBatches(t, clA, session, cur, batch, half)
	clA.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srvA.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if got := srvA.counters.LostSessions.Load(); got != 0 {
		t.Fatalf("drain lost %d sessions", got)
	}

	srvB := newTestServer(t, Config{Shards: 2, CheckpointDir: dir})
	if got := srvB.counters.RestoredSessions.Load(); got != 1 {
		t.Fatalf("warm restart restored %d sessions, want 1", got)
	}
	clB := dialT(t, srvB)
	_, lastSeq, err := clB.Open(session)
	if err != nil {
		t.Fatal(err)
	}
	if lastSeq != uint64(sent) {
		t.Errorf("restored session lastSeq = %d, want %d", lastSeq, sent)
	}
	feedBatches(t, clB, session, cur, batch, -1)

	st, err := clB.Stats(session)
	if err != nil {
		t.Fatal(err)
	}
	if !st.Session.Equal(want) {
		t.Errorf("restarted session stats %+v, want %+v", st.Session, want)
	}
}

// TestDrainHandsSessionsToPeer: draining a server with a handoff peer
// streams the session (state and sequence position) to the peer, where
// the stream finishes bit-identically.
func TestDrainHandsSessionsToPeer(t *testing.T) {
	s := captureTestStream(t)
	want := refStats(t, s)
	srvB := newTestServer(t, Config{Shards: 2})
	srvA := newTestServer(t, Config{Shards: 2, HandoffAddr: srvB.Addr().String()})

	const session, batch = 5, 128
	clA := dialT(t, srvA)
	if _, _, err := clA.Open(session); err != nil {
		t.Fatal(err)
	}
	cur := s.Cursor()
	half := int(s.Len()) / batch / 2
	sent := feedBatches(t, clA, session, cur, batch, half)
	clA.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srvA.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if got := srvA.counters.HandoffSessions.Load(); got != 1 {
		t.Fatalf("handoff sessions = %d, want 1", got)
	}

	clB := dialT(t, srvB)
	_, lastSeq, err := clB.Open(session)
	if err != nil {
		t.Fatal(err)
	}
	if lastSeq != uint64(sent) {
		t.Errorf("handed-off session lastSeq = %d, want %d", lastSeq, sent)
	}
	feedBatches(t, clB, session, cur, batch, -1)

	st, err := clB.Stats(session)
	if err != nil {
		t.Fatal(err)
	}
	if !st.Session.Equal(want) {
		t.Errorf("handed-off session stats %+v, want %+v", st.Session, want)
	}
}

// TestCorruptCheckpointsSkippedOnRestart: bit-flipped and truncated
// checkpoint files are counted and skipped at startup — never
// installed, never fatal.
func TestCorruptCheckpointsSkippedOnRestart(t *testing.T) {
	s := captureTestStream(t)
	dir := t.TempDir()

	const session, batch = 1, 128
	srvA := newTestServer(t, Config{Shards: 1, CheckpointDir: dir})
	clA := dialT(t, srvA)
	if _, _, err := clA.Open(session); err != nil {
		t.Fatal(err)
	}
	feedBatches(t, clA, session, s.Cursor(), batch, 20)
	clA.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srvA.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}

	good, err := os.ReadFile(snapshotPath(dir, session))
	if err != nil {
		t.Fatalf("read spilled checkpoint: %v", err)
	}
	// Session 1's file: a flipped bit somewhere in the frame. Session
	// 2's file: a torn prefix, as a crashed write would leave on a
	// filesystem that reordered the rename.
	if err := os.WriteFile(snapshotPath(dir, session), faults.FlipBits(good, 99, 1), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(snapshotPath(dir, 2), faults.Truncate(good, 7), 0o644); err != nil {
		t.Fatal(err)
	}

	srvB := newTestServer(t, Config{Shards: 1, CheckpointDir: dir})
	if got := srvB.counters.RestoredSessions.Load(); got != 0 {
		t.Errorf("restored %d sessions from corrupt dir, want 0", got)
	}
	if got := srvB.counters.CorruptSnapshots.Load(); got != 2 {
		t.Errorf("corrupt snapshots = %d, want 2", got)
	}
}

// TestDuplicateUpdateAnsweredFromCache: resending the session's last
// acked sequence returns the cached ack without touching the
// predictor — the exactly-once guarantee a retrying client leans on.
func TestDuplicateUpdateAnsweredFromCache(t *testing.T) {
	s := captureTestStream(t)
	srv := newTestServer(t, Config{Shards: 1})
	cl := dialT(t, srv)

	const session = 3
	if _, _, err := cl.Open(session); err != nil {
		t.Fatal(err)
	}
	var tr trace.Trace
	cur := s.Cursor()
	batch := make([]trace.Trace, 0, 64)
	for len(batch) < 64 && cur.Next(&tr) {
		batch = append(batch, tr)
	}

	applied1, correct1, err := cl.UpdateSeq(session, 1, batch)
	if err != nil {
		t.Fatal(err)
	}
	st1, err := cl.Stats(session)
	if err != nil {
		t.Fatal(err)
	}

	applied2, correct2, err := cl.UpdateSeq(session, 1, batch) // retry after a "lost ack"
	if err != nil {
		t.Fatal(err)
	}
	if applied2 != applied1 || correct2 != correct1 {
		t.Errorf("duplicate ack (%d, %d) differs from original (%d, %d)",
			applied2, correct2, applied1, correct1)
	}
	st2, err := cl.Stats(session)
	if err != nil {
		t.Fatal(err)
	}
	if !st2.Session.Equal(st1.Session) {
		t.Errorf("duplicate update changed predictor stats: %+v -> %+v", st1.Session, st2.Session)
	}
	if got := srv.shardFor(session).counters.DupUpdates.Load(); got != 1 {
		t.Errorf("dup updates = %d, want 1", got)
	}

	// A *new* sequence with the same payload must apply (dedup is exact
	// sequence match, not content hashing).
	if _, _, err := cl.UpdateSeq(session, 2, batch); err != nil {
		t.Fatal(err)
	}
	st3, err := cl.Stats(session)
	if err != nil {
		t.Fatal(err)
	}
	if st3.Session.Equal(st2.Session) {
		t.Error("next sequence did not advance the predictor")
	}
}

// TestRetryClientSurvivesServerKill is the client half of zero-loss:
// with snapshot-per-ack recovery and a failover list, an abrupt server
// death mid-stream (no drain, no checkpoint dir — the sessions really
// are gone) is invisible to the caller, and the stream's final stats
// are bit-identical to an uninterrupted run.
func TestRetryClientSurvivesServerKill(t *testing.T) {
	s := captureTestStream(t)
	want := refStats(t, s)
	srvA := newTestServer(t, Config{Shards: 2})
	srvB := newTestServer(t, Config{Shards: 2})

	rc, err := NewRetryClient(RetryConfig{
		Addrs:         []string{srvA.Addr().String(), srvB.Addr().String()},
		SnapshotEvery: 1,
		Seed:          42,
		BaseBackoff:   2 * time.Millisecond,
		MaxBackoff:    50 * time.Millisecond,
		MaxElapsed:    10 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Close()

	const session, batch = 11, 128
	if _, _, err := rc.Open(session); err != nil {
		t.Fatal(err)
	}
	cur := s.Cursor()
	half := int(s.Len()) / batch / 2
	feedBatches(t, rc, session, cur, batch, half)

	srvA.Close() // hard kill: no drain, session state on A is lost

	feedBatches(t, rc, session, cur, batch, -1)
	st, err := rc.Stats(session)
	if err != nil {
		t.Fatal(err)
	}
	if !st.Session.Equal(want) {
		t.Errorf("post-failover stats %+v, want %+v", st.Session, want)
	}
	if got := srvB.shardFor(session).counters.Restores.Load(); got == 0 {
		t.Error("survivor server saw no restore — failover path not exercised")
	}
}

// TestPeriodicCheckpointWritesFiles: with a short sweep interval, dirty
// sessions reach disk without any shutdown, and the files decode.
func TestPeriodicCheckpointWritesFiles(t *testing.T) {
	s := captureTestStream(t)
	dir := t.TempDir()
	srv := newTestServer(t, Config{Shards: 1, CheckpointDir: dir, CheckpointEvery: 10 * time.Millisecond})
	cl := dialT(t, srv)
	const session = 4
	if _, _, err := cl.Open(session); err != nil {
		t.Fatal(err)
	}
	feedBatches(t, cl, session, s.Cursor(), 128, 10)

	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, err := os.Stat(snapshotPath(dir, session)); err == nil {
			break
		}
		if time.Now().After(deadline) {
			ents, _ := os.ReadDir(dir)
			var names []string
			for _, e := range ents {
				names = append(names, e.Name())
			}
			t.Fatalf("no checkpoint for session %d after 5s; dir has %v", session, names)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if srv.ckpt.written.Load() == 0 {
		t.Error("checkpoint writer persisted no files")
	}
	// The file must be a valid frame for this session (atomic rename
	// means we never observe a partial write).
	b, err := os.ReadFile(snapshotPath(dir, session))
	if err != nil {
		t.Fatal(err)
	}
	sess, err := snapshot.Decode(b)
	if err != nil {
		t.Fatalf("checkpoint file: %v", err)
	}
	if sess.ID != session {
		t.Errorf("checkpoint holds session %d, want %d", sess.ID, session)
	}
}
