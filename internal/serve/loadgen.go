package serve

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"pathtrace/internal/faults"
	"pathtrace/internal/metrics"
	"pathtrace/internal/predictor"
	"pathtrace/internal/stream"
	"pathtrace/internal/trace"
)

// LoadgenConfig drives one load-generation run: every session replays
// the full stream through the server, batch by batch.
type LoadgenConfig struct {
	Addr     string         // server address
	Stream   *stream.Stream // the recorded trace stream to replay
	Conns    int            // TCP connections (default 1)
	Sessions int            // sessions, spread round-robin over conns (default = Conns)
	Batch    int            // traces per Update request (default 256, max MaxBatch)

	// ScalarOps replays through the legacy per-frame-sequenced OpUpdate
	// instead of OpUpdateBatch. The default (false) rides the batched
	// hot path; the scalar path stays exercised for compatibility runs
	// and as the -verify cross-check's second leg.
	ScalarOps bool

	// Verify replays the stream once in process with the same predictor
	// configuration and requires every session's server-side stats to
	// be bit-identical to that replay.
	Verify bool

	// Predictor must match the server's configuration for Verify to
	// mean anything; it is only used for the in-process reference.
	Predictor predictor.Config

	// Faults mirrors the server's fault plan for the in-process
	// reference replay (nil for clean runs).
	Faults *faults.Config

	// SessionBase offsets session IDs, so repeated runs against one
	// server use fresh sessions (default 1).
	SessionBase uint64

	// Metrics, when non-nil, registers the run's round-trip latency
	// histogram as loadgen_rtt_seconds, so an embedding process can
	// export loadgen latency alongside its own series.
	Metrics *metrics.Registry

	// Failover, when non-nil, replaces each plain connection with a
	// RetryClient built from this config: the run then rides out server
	// restarts, reconnecting with backoff and re-establishing sessions
	// from acked snapshots. An empty Addrs defaults to [Addr]; the
	// jitter seed is varied per connection so workers desynchronize.
	Failover *RetryConfig

	// ClientTag names this run to the server for per-client accounting
	// and admission control (announced on every connection). Running two
	// loadgens with different tags against a quota-limited server is the
	// fairness experiment: the server throttles each tag independently.
	ClientTag string
}

func (c LoadgenConfig) withDefaults() (LoadgenConfig, error) {
	if c.Stream == nil {
		return c, errors.New("serve: loadgen needs a stream")
	}
	if c.Conns <= 0 {
		c.Conns = 1
	}
	if c.Sessions <= 0 {
		c.Sessions = c.Conns
	}
	if c.Batch <= 0 {
		c.Batch = 256
	}
	if c.Batch > MaxBatch {
		return c, fmt.Errorf("serve: batch %d exceeds MaxBatch %d", c.Batch, MaxBatch)
	}
	if c.SessionBase == 0 {
		c.SessionBase = 1
	}
	return c, nil
}

// LoadgenReport is a run's outcome: volume, throughput, per-request
// latency quantiles, and the verification verdict.
//
// Quantiles are nearest-rank reads from a fixed-bucket histogram:
// never below the true sample quantile, and at most one bucket (12.5%
// relative) above it. Max is exact. The previous implementation sorted
// the raw samples and indexed int(q*(n-1)) — a truncating estimator
// that under-reports tail quantiles (for 100 samples, "p99" was the
// 99th of 100, and for 2 samples p99 was the MINIMUM); it also sorted
// the shared slice in place.
type LoadgenReport struct {
	Sessions           int
	Conns              int
	Batch              int
	ScalarOps          bool          // replayed via OpUpdate instead of OpUpdateBatch
	Skipped            uint64        // traces deduped server-side (failover replays)
	Traces             uint64        // traces delivered (all sessions)
	Requests           uint64        // Update round trips
	Retries            uint64        // overload retries
	Throttled          uint64        // admission-control rejections ridden out
	Correct            uint64        // server-reported correct predictions
	Duration           time.Duration // wall clock for the replay phase
	TracesPerSec       float64
	P50, P90, P99, Max time.Duration      // Update round-trip latency
	Latency            *metrics.Histogram // full RTT distribution (ns)
	Verified           bool               // stats checked bit-identical (when Verify)
}

func (r *LoadgenReport) String() string {
	op := "update_batch"
	if r.ScalarOps {
		op = "update"
	}
	s := fmt.Sprintf(
		"loadgen: %d traces in %.2fs over %d sessions / %d conns (%s)\n"+
			"  throughput: %.0f traces/sec at batch %d (%.0f req/sec, %d overload retries)\n"+
			"  latency:    p50 %s  p90 %s  p99 %s  max %s\n"+
			"  accuracy:   %.2f%% of server predictions correct",
		r.Traces, r.Duration.Seconds(), r.Sessions, r.Conns, op,
		r.TracesPerSec, r.Batch, float64(r.Requests)/r.Duration.Seconds(), r.Retries,
		r.P50, r.P90, r.P99, r.Max,
		100*float64(r.Correct)/float64(max64(r.Traces, 1)))
	if r.Throttled > 0 {
		s += fmt.Sprintf("\n  throttled:  %d admission rejections (slept the retry-after hint)", r.Throttled)
	}
	if r.Skipped > 0 {
		s += fmt.Sprintf("\n  dedup:      %d replayed traces skipped server-side", r.Skipped)
	}
	if r.Verified {
		s += "\n  verify:     server stats bit-identical to in-process replay"
	}
	return s
}

func max64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}

// lgConn is what a loadgen worker needs from its connection; satisfied
// by both Client and RetryClient.
type lgConn interface {
	Open(session uint64) (shard uint32, lastSeq uint64, err error)
	Update(session uint64, traces []trace.Trace) (applied, correct uint32, err error)
	UpdateBatch(session uint64, traces []trace.Trace) (skipped, applied, correct uint32, err error)
	Stats(session uint64) (SessionStats, error)
	Close() error
}

// lgSession is one session's replay state on a connection worker.
type lgSession struct {
	id     uint64
	cursor *stream.Cursor
	batch  []trace.Trace
}

// RunLoadgen replays cfg.Stream through the server from cfg.Sessions
// sessions over cfg.Conns connections and reports throughput, latency
// percentiles and (optionally) the bit-identical-stats verification.
//
// Each connection worker round-robins its sessions one batch at a
// time, so all sessions progress together and the server sees
// concurrent mixed-session traffic rather than one session at a time.
func RunLoadgen(ctx context.Context, cfg LoadgenConfig) (*LoadgenReport, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}

	// Partition sessions across connections.
	clients := make([]lgConn, cfg.Conns)
	for i := range clients {
		var c lgConn
		var err error
		if cfg.Failover != nil {
			rcfg := *cfg.Failover
			if len(rcfg.Addrs) == 0 {
				rcfg.Addrs = []string{cfg.Addr}
			}
			rcfg.Seed += uint64(i)
			if rcfg.ClientTag == "" {
				rcfg.ClientTag = cfg.ClientTag
			}
			c, err = NewRetryClient(rcfg)
		} else {
			var pc *Client
			pc, err = Dial(cfg.Addr)
			if err == nil && cfg.ClientTag != "" {
				pc.SetClientTag(cfg.ClientTag)
			}
			c = pc
		}
		if err != nil {
			closeAll(clients[:i])
			return nil, err
		}
		clients[i] = c
	}
	defer closeAll(clients)

	perConn := make([][]*lgSession, cfg.Conns)
	for i := 0; i < cfg.Sessions; i++ {
		id := cfg.SessionBase + uint64(i)
		conn := i % cfg.Conns
		if _, _, err := clients[conn].Open(id); err != nil {
			return nil, fmt.Errorf("open session %d: %w", id, err)
		}
		perConn[conn] = append(perConn[conn], &lgSession{
			id:     id,
			cursor: cfg.Stream.Cursor(),
			batch:  make([]trace.Trace, 0, cfg.Batch),
		})
	}

	// The shared histogram replaces the old per-worker latency slices:
	// Observe is wait-free, so workers record directly with no mutex
	// and no per-sample allocation.
	rtt := &metrics.Histogram{}
	if cfg.Metrics != nil {
		rtt = cfg.Metrics.Histogram("loadgen_rtt_seconds",
			"Update round-trip latency as seen by the load generator.", 1e-9, nil)
	}
	var (
		mu        sync.Mutex
		traces    uint64
		requests  uint64
		retries   uint64
		throttled uint64
		correct   uint64
		skipped   uint64
		firstErr  error
	)
	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
	}

	start := time.Now()
	var wg sync.WaitGroup
	for ci, cl := range clients {
		sessions := perConn[ci]
		if len(sessions) == 0 {
			continue
		}
		wg.Add(1)
		go func(cl lgConn, sessions []*lgSession) {
			defer wg.Done()
			var nTraces, nReq, nRetry, nThrottled, nCorrect, nSkipped uint64
			live := sessions
			for len(live) > 0 {
				if ctx != nil && ctx.Err() != nil {
					fail(ctx.Err())
					break
				}
				next := live[:0]
				for _, s := range live {
					// Refill the batch from the session's cursor. Traces
					// must be deep-copied out of the cursor's scratch: the
					// wire encoder reads them after the next cursor step.
					s.batch = s.batch[:0]
					var tr trace.Trace
					for len(s.batch) < cfg.Batch && s.cursor.Next(&tr) {
						s.batch = append(s.batch, tr)
					}
					if len(s.batch) == 0 {
						continue // session done
					}
					t0 := time.Now()
					skip, applied, corr, err := sendBatch(cl, s.id, s.batch, cfg.ScalarOps)
					for errors.Is(err, ErrOverloaded) || errors.Is(err, ErrThrottled) {
						// Both rejections happen before the predictor is
						// touched, so resending the same batch preserves
						// exact stream order. Overload (shard queue full)
						// backs off a fixed beat; throttled (admission
						// control) sleeps the server's retry-after hint.
						nRetry++
						if errors.Is(err, ErrThrottled) {
							nThrottled++
							time.Sleep(throttleDelay(err, time.Millisecond))
						} else {
							time.Sleep(200 * time.Microsecond)
						}
						skip, applied, corr, err = sendBatch(cl, s.id, s.batch, cfg.ScalarOps)
					}
					rtt.ObserveDuration(time.Since(t0))
					nReq++
					if err != nil {
						fail(fmt.Errorf("session %d: update: %w", s.id, err))
						return
					}
					// Every trace must be accounted for: applied now, or
					// deduped because a failover replay already applied it.
					if int(skip)+int(applied) != len(s.batch) {
						fail(fmt.Errorf("session %d: applied %d + skipped %d of %d", s.id, applied, skip, len(s.batch)))
						return
					}
					nTraces += uint64(applied)
					nSkipped += uint64(skip)
					nCorrect += uint64(corr)
					next = append(next, s)
				}
				live = next
			}
			mu.Lock()
			traces += nTraces
			requests += nReq
			retries += nRetry
			throttled += nThrottled
			correct += nCorrect
			skipped += nSkipped
			mu.Unlock()
		}(cl, sessions)
	}
	wg.Wait()
	elapsed := time.Since(start)
	if firstErr != nil {
		return nil, firstErr
	}

	rep := &LoadgenReport{
		Sessions:  cfg.Sessions,
		Conns:     cfg.Conns,
		Batch:     cfg.Batch,
		ScalarOps: cfg.ScalarOps,
		Traces:    traces,
		Requests:  requests,
		Retries:   retries,
		Throttled: throttled,
		Correct:   correct,
		Skipped:   skipped,
		Duration:  elapsed,
	}
	if elapsed > 0 {
		rep.TracesPerSec = float64(traces) / elapsed.Seconds()
	}
	rep.Latency = rtt
	rep.P50 = rtt.QuantileDuration(0.50)
	rep.P90 = rtt.QuantileDuration(0.90)
	rep.P99 = rtt.QuantileDuration(0.99)
	rep.Max = time.Duration(rtt.Max())

	if cfg.Verify {
		want, err := referenceStats(cfg)
		if err != nil {
			return rep, err
		}
		for i := 0; i < cfg.Sessions; i++ {
			id := cfg.SessionBase + uint64(i)
			st, err := clients[i%cfg.Conns].Stats(id)
			if err != nil {
				return rep, fmt.Errorf("stats for session %d: %w", id, err)
			}
			if !st.Session.Equal(want) {
				return rep, fmt.Errorf(
					"session %d: server stats %+v differ from in-process replay %+v",
					id, st.Session, want)
			}
		}
		rep.Verified = true
	}
	return rep, nil
}

// referenceStats replays the stream once in process under the same
// predictor (and fault) configuration and returns the exact stats a
// served session must reproduce.
func referenceStats(cfg LoadgenConfig) (predictor.Stats, error) {
	pcfg := cfg.Predictor
	pcfg.Faults = nil
	if cfg.Faults != nil {
		pcfg.Faults = faults.New(*cfg.Faults)
	}
	p, err := predictor.New(pcfg)
	if err != nil {
		return predictor.Stats{}, err
	}
	if _, _, err := cfg.Stream.Replay(nil, func(tr *trace.Trace) {
		p.Predict()
		p.Update(tr)
	}); err != nil {
		return predictor.Stats{}, err
	}
	return p.Stats(), nil
}

// sendBatch delivers one batch via the configured op family. The
// scalar path reports skipped 0: OpUpdate's dedup replays the cached
// whole-frame answer, indistinguishable from a fresh apply.
func sendBatch(cl lgConn, id uint64, batch []trace.Trace, scalar bool) (skipped, applied, correct uint32, err error) {
	if scalar {
		applied, correct, err = cl.Update(id, batch)
		return 0, applied, correct, err
	}
	return cl.UpdateBatch(id, batch)
}

func closeAll(clients []lgConn) {
	for _, c := range clients {
		if c != nil {
			c.Close()
		}
	}
}
