package serve

import (
	"bufio"
	"fmt"
	"net"
	"sync"
	"time"

	"pathtrace/internal/predictor"
	"pathtrace/internal/trace"
)

// Client speaks the ntpd wire protocol over one TCP connection. Calls
// are synchronous round trips and safe for concurrent use (a mutex
// serialises the connection); run one Client per connection and
// multiple Clients for parallelism.
type Client struct {
	mu    sync.Mutex
	conn  net.Conn
	br    *bufio.Reader
	bw    *bufio.Writer
	reqID uint32
	buf   []byte // request frame scratch, reused
	ubuf  []byte // update body scratch, reused
	rbuf  []byte // response scratch, reused
}

// Dial connects to an ntpd server.
func Dial(addr string) (*Client, error) {
	return DialTimeout(addr, 10*time.Second)
}

// DialTimeout connects with a dial deadline.
func DialTimeout(addr string, timeout time.Duration) (*Client, error) {
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, err
	}
	if tc, ok := conn.(*net.TCPConn); ok {
		tc.SetNoDelay(true) // round-trip latency matters more than packet count
	}
	return &Client{
		conn: conn,
		br:   bufio.NewReaderSize(conn, 1<<16),
		bw:   bufio.NewWriterSize(conn, 1<<16),
	}, nil
}

// Close closes the connection.
func (c *Client) Close() error { return c.conn.Close() }

// roundTrip sends one request frame and reads its response, returning
// the response body. Must be called with c.mu held.
func (c *Client) roundTrip(op uint8, session uint64, body []byte) ([]byte, error) {
	c.reqID++
	id := c.reqID
	c.buf = c.buf[:0]
	var hdr [reqHeaderBytes]byte
	hdr[0] = op
	le.PutUint32(hdr[1:], id)
	le.PutUint64(hdr[5:], session)
	c.buf = append(c.buf, hdr[:]...)
	c.buf = append(c.buf, body...)
	if err := writeFrame(c.bw, c.buf); err != nil {
		return nil, err
	}
	if err := c.bw.Flush(); err != nil {
		return nil, err
	}
	payload, err := readFrame(c.br, c.rbuf)
	if err != nil {
		return nil, err
	}
	c.rbuf = payload
	if len(payload) < respHeaderBytes {
		return nil, fmt.Errorf("%w: response %d bytes", ErrFrame, len(payload))
	}
	if payload[0] != op|respBit {
		return nil, fmt.Errorf("%w: response op 0x%02x for request 0x%02x", ErrFrame, payload[0], op)
	}
	if got := le.Uint32(payload[1:]); got != id {
		return nil, fmt.Errorf("%w: response id %d, want %d", ErrFrame, got, id)
	}
	if err := statusErr(payload[5]); err != nil {
		return nil, err
	}
	return payload[respHeaderBytes:], nil
}

// Open creates (or re-attaches to) a session and returns the shard it
// is pinned to.
func (c *Client) Open(session uint64) (shard uint32, err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	body, err := c.roundTrip(OpOpen, session, nil)
	if err != nil {
		return 0, err
	}
	if len(body) != 4 {
		return 0, fmt.Errorf("%w: open response %d bytes", ErrFrame, len(body))
	}
	return le.Uint32(body), nil
}

// Predict returns the session predictor's prediction for the next
// trace on its current path, without advancing any state.
func (c *Client) Predict(session uint64) (predictor.Prediction, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	body, err := c.roundTrip(OpPredict, session, nil)
	if err != nil {
		return predictor.Prediction{}, err
	}
	if len(body) != predictionBytes {
		return predictor.Prediction{}, fmt.Errorf("%w: predict response %d bytes", ErrFrame, len(body))
	}
	return getPrediction(body), nil
}

// Update reveals a batch of actual traces to the session's predictor,
// in order; the server runs the strict Predict/Update alternation for
// each. It returns how many traces were applied and how many of the
// server's predictions for them were correct.
func (c *Client) Update(session uint64, traces []trace.Trace) (applied, correct uint32, err error) {
	if len(traces) > MaxBatch {
		return 0, 0, fmt.Errorf("serve: batch %d exceeds MaxBatch %d", len(traces), MaxBatch)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	need := 4 + len(traces)*wireTraceBytes
	if cap(c.ubuf) < need {
		c.ubuf = make([]byte, need)
	}
	body := c.ubuf[:need]
	le.PutUint32(body, uint32(len(traces)))
	for i := range traces {
		putTrace(body[4+i*wireTraceBytes:], &traces[i])
	}
	resp, err := c.roundTrip(OpUpdate, session, body)
	if err != nil {
		return 0, 0, err
	}
	if len(resp) != 8 {
		return 0, 0, fmt.Errorf("%w: update response %d bytes", ErrFrame, len(resp))
	}
	return le.Uint32(resp), le.Uint32(resp[4:]), nil
}

// SessionStats is the OpStats answer: where the session lives and the
// predictor counters for the session and its whole shard.
type SessionStats struct {
	Shard    uint32
	Sessions uint32 // sessions resident on that shard
	Session  predictor.Stats
	ShardAgg predictor.Stats
}

// Stats fetches the session's predictor counters. The snapshot is
// taken on the shard goroutine, strictly ordered with the session's
// updates, so after the last Update of a stream it is the stream's
// final, exact state.
func (c *Client) Stats(session uint64) (SessionStats, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	body, err := c.roundTrip(OpStats, session, nil)
	if err != nil {
		return SessionStats{}, err
	}
	if len(body) != 8+2*statsBytes {
		return SessionStats{}, fmt.Errorf("%w: stats response %d bytes", ErrFrame, len(body))
	}
	return SessionStats{
		Shard:    le.Uint32(body),
		Sessions: le.Uint32(body[4:]),
		Session:  getStats(body[8:]),
		ShardAgg: getStats(body[8+statsBytes:]),
	}, nil
}
