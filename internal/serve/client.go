package serve

import (
	"bufio"
	"fmt"
	"net"
	"sync"
	"time"

	"pathtrace/internal/predictor"
	"pathtrace/internal/trace"
)

// Client speaks the ntpd wire protocol over one TCP connection. Calls
// are synchronous round trips and safe for concurrent use (a mutex
// serialises the connection); run one Client per connection and
// multiple Clients for parallelism.
type Client struct {
	mu        sync.Mutex
	conn      net.Conn
	br        *bufio.Reader
	bw        *bufio.Writer
	reqID     uint32
	opTimeout time.Duration     // per-op deadline, 0 = none
	clientTag string            // identity sent via OpHello, "" = untagged
	helloSent bool              // OpHello delivered on this connection
	seqs      map[uint64]uint64 // per-session last acked update sequence
	buf       []byte            // request frame scratch, reused
	ubuf      []byte            // update body scratch, reused
	rbuf      []byte            // response scratch, reused
}

// Dial connects to an ntpd server.
func Dial(addr string) (*Client, error) {
	return DialTimeout(addr, 10*time.Second)
}

// DialTimeout connects with a dial deadline.
func DialTimeout(addr string, timeout time.Duration) (*Client, error) {
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, err
	}
	if tc, ok := conn.(*net.TCPConn); ok {
		tc.SetNoDelay(true) // round-trip latency matters more than packet count
	}
	return &Client{
		conn: conn,
		br:   bufio.NewReaderSize(conn, 1<<16),
		bw:   bufio.NewWriterSize(conn, 1<<16),
		seqs: map[uint64]uint64{},
	}, nil
}

// Close closes the connection.
func (c *Client) Close() error { return c.conn.Close() }

// SetOpTimeout bounds every subsequent call's network round trip: the
// connection deadline is rearmed per op, so a dead or wedged server
// fails the call instead of hanging it. Zero restores blocking calls.
func (c *Client) SetOpTimeout(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.opTimeout = d
}

// SetClientTag names this connection's client identity: the tag is
// announced to the server (via OpHello, sent lazily before the next
// op), and the server accounts and admission-controls every request on
// the connection under it. Tags are 1..64 printable ASCII bytes.
func (c *Client) SetClientTag(tag string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.clientTag = tag
	c.helloSent = false
}

// roundTrip sends one request frame and reads its response, returning
// the response body. Must be called with c.mu held.
func (c *Client) roundTrip(op uint8, session uint64, body []byte) ([]byte, error) {
	if op != OpHello && c.clientTag != "" && !c.helloSent {
		// Announce the connection's identity before its first real op.
		// The recursion is one level deep by construction (op == OpHello
		// skips this branch), and the hello frame is fully written and
		// acked before the outer op touches the scratch buffers.
		if _, err := c.roundTrip(OpHello, 0, []byte(c.clientTag)); err != nil {
			return nil, fmt.Errorf("serve: hello %q: %w", c.clientTag, err)
		}
		c.helloSent = true
	}
	if c.opTimeout > 0 {
		c.conn.SetDeadline(time.Now().Add(c.opTimeout))
	}
	c.reqID++
	id := c.reqID
	c.buf = c.buf[:0]
	var hdr [reqHeaderBytes]byte
	hdr[0] = op
	le.PutUint32(hdr[1:], id)
	le.PutUint64(hdr[5:], session)
	c.buf = append(c.buf, hdr[:]...)
	c.buf = append(c.buf, body...)
	if err := writeFrame(c.bw, c.buf); err != nil {
		return nil, err
	}
	if err := c.bw.Flush(); err != nil {
		return nil, err
	}
	payload, err := readFrame(c.br, c.rbuf)
	if err != nil {
		return nil, err
	}
	c.rbuf = payload
	if len(payload) < respHeaderBytes {
		return nil, fmt.Errorf("%w: response %d bytes", ErrFrame, len(payload))
	}
	if payload[0] != op|respBit {
		return nil, fmt.Errorf("%w: response op 0x%02x for request 0x%02x", ErrFrame, payload[0], op)
	}
	if got := le.Uint32(payload[1:]); got != id {
		return nil, fmt.Errorf("%w: response id %d, want %d", ErrFrame, got, id)
	}
	if err := statusErr(payload[5]); err != nil {
		if payload[5] == StatusThrottled && len(payload) >= respHeaderBytes+4 {
			// Throttled responses carry the server's retry-after hint.
			ms := le.Uint32(payload[respHeaderBytes:])
			return nil, &ThrottledError{RetryAfter: time.Duration(ms) * time.Millisecond}
		}
		return nil, err
	}
	return payload[respHeaderBytes:], nil
}

// Open creates (or re-attaches to) a session. It returns the shard the
// session is pinned to and the session's last applied update sequence;
// the client seeds its own sequence counter from it, so updates after a
// reconnect neither collide with the server's duplicate detector nor
// bypass it.
func (c *Client) Open(session uint64) (shard uint32, lastSeq uint64, err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	body, err := c.roundTrip(OpOpen, session, nil)
	if err != nil {
		return 0, 0, err
	}
	if len(body) != openRespBytes {
		return 0, 0, fmt.Errorf("%w: open response %d bytes", ErrFrame, len(body))
	}
	lastSeq = le.Uint64(body[4:])
	c.seqs[session] = lastSeq
	return le.Uint32(body), lastSeq, nil
}

// Predict returns the session predictor's prediction for the next
// trace on its current path, without advancing any state.
func (c *Client) Predict(session uint64) (predictor.Prediction, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	body, err := c.roundTrip(OpPredict, session, nil)
	if err != nil {
		return predictor.Prediction{}, err
	}
	if len(body) != predictionBytes {
		return predictor.Prediction{}, fmt.Errorf("%w: predict response %d bytes", ErrFrame, len(body))
	}
	return getPrediction(body), nil
}

// Update reveals a batch of actual traces to the session's predictor,
// in order; the server runs the strict Predict/Update alternation for
// each. It returns how many traces were applied and how many of the
// server's predictions for them were correct.
//
// When the session was opened through this client, each Update carries
// the next sequence number in the session's stream, advanced only on a
// successful ack: a resend after a lost ack reuses the sequence and the
// server answers it from cache instead of re-training. Sessions not
// opened here send sequence 0 (no duplicate detection).
func (c *Client) Update(session uint64, traces []trace.Trace) (applied, correct uint32, err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	var seq uint64
	if last, ok := c.seqs[session]; ok {
		seq = last + 1
	}
	applied, correct, err = c.updateSeq(session, seq, traces)
	if err == nil && seq != 0 {
		c.seqs[session] = seq
	}
	return applied, correct, err
}

// UpdateSeq is Update with an explicit sequence number, for callers
// that manage their own sequence streams (the retrying client, tests).
// Sequence 0 disables duplicate detection for this batch.
func (c *Client) UpdateSeq(session, seq uint64, traces []trace.Trace) (applied, correct uint32, err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.updateSeq(session, seq, traces)
}

func (c *Client) updateSeq(session, seq uint64, traces []trace.Trace) (applied, correct uint32, err error) {
	if len(traces) > MaxBatch {
		return 0, 0, fmt.Errorf("serve: batch %d exceeds MaxBatch %d", len(traces), MaxBatch)
	}
	need := updateHeaderBytes + len(traces)*wireTraceBytes
	if cap(c.ubuf) < need {
		c.ubuf = make([]byte, need)
	}
	body := c.ubuf[:need]
	le.PutUint64(body, seq)
	le.PutUint32(body[8:], uint32(len(traces)))
	for i := range traces {
		putTrace(body[updateHeaderBytes+i*wireTraceBytes:], &traces[i])
	}
	resp, err := c.roundTrip(OpUpdate, session, body)
	if err != nil {
		return 0, 0, err
	}
	if len(resp) != 8 {
		return 0, 0, fmt.Errorf("%w: update response %d bytes", ErrFrame, len(resp))
	}
	return le.Uint32(resp), le.Uint32(resp[4:]), nil
}

// UpdateBatch reveals a batch of traces through OpUpdateBatch — one
// frame, one shard hop, one native predictor batch sweep. Unlike
// Update's per-frame sequences, batch sequences are per trace: the
// frame covers [start, start+len), and a replay after a lost ack makes
// the server skip the already-applied prefix (returned as skipped) and
// train only the unseen suffix. The client's sequence counter advances
// to the end of the range on a successful ack. A session must not mix
// Update and the batch ops — the two numbering styles do not compose.
func (c *Client) UpdateBatch(session uint64, traces []trace.Trace) (skipped, applied, correct uint32, err error) {
	return c.batchAuto(OpUpdateBatch, session, traces, nil)
}

// PredictBatch is UpdateBatch returning the server's predictions too.
// When preds is non-nil it must be at least len(traces) long;
// preds[skipped+i] receives the prediction the server made before the
// i'th applied trace (entries for the skipped prefix are untouched).
func (c *Client) PredictBatch(session uint64, traces []trace.Trace, preds []predictor.Prediction) (skipped, applied, correct uint32, err error) {
	if preds != nil && len(preds) < len(traces) {
		return 0, 0, 0, fmt.Errorf("serve: preds %d shorter than batch %d", len(preds), len(traces))
	}
	return c.batchAuto(OpPredictBatch, session, traces, preds)
}

// UpdateBatchSeq is UpdateBatch with an explicit start sequence, for
// callers that manage their own sequence streams (the retrying client,
// tests). Start 0 disables duplicate detection for this batch.
func (c *Client) UpdateBatchSeq(session, start uint64, traces []trace.Trace) (skipped, applied, correct uint32, err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.batchSeq(OpUpdateBatch, session, start, traces, nil)
}

// batchAuto runs one batch op with the session's tracked sequence
// stream, advancing it on ack.
func (c *Client) batchAuto(op uint8, session uint64, traces []trace.Trace, preds []predictor.Prediction) (skipped, applied, correct uint32, err error) {
	if len(traces) == 0 {
		return 0, 0, 0, nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	var start uint64
	if last, ok := c.seqs[session]; ok {
		start = last + 1
	}
	skipped, applied, correct, err = c.batchSeq(op, session, start, traces, preds)
	if err == nil && start != 0 {
		c.seqs[session] = start + uint64(len(traces)) - 1
	}
	return skipped, applied, correct, err
}

// batchSeq encodes and runs one batch op. Must be called with c.mu
// held.
func (c *Client) batchSeq(op uint8, session, start uint64, traces []trace.Trace, preds []predictor.Prediction) (skipped, applied, correct uint32, err error) {
	if len(traces) > MaxBatch {
		return 0, 0, 0, fmt.Errorf("serve: batch %d exceeds MaxBatch %d", len(traces), MaxBatch)
	}
	need := updateHeaderBytes + len(traces)*wireTraceBytes
	if cap(c.ubuf) < need {
		c.ubuf = make([]byte, need)
	}
	body := c.ubuf[:need]
	le.PutUint64(body, start)
	le.PutUint32(body[8:], uint32(len(traces)))
	for i := range traces {
		putTrace(body[updateHeaderBytes+i*wireTraceBytes:], &traces[i])
	}
	resp, err := c.roundTrip(op, session, body)
	if err != nil {
		return 0, 0, 0, err
	}
	if len(resp) < batchRespBytes {
		return 0, 0, 0, fmt.Errorf("%w: batch response %d bytes", ErrFrame, len(resp))
	}
	skipped = le.Uint32(resp)
	applied = le.Uint32(resp[4:])
	correct = le.Uint32(resp[8:])
	if int(skipped)+int(applied) > len(traces) {
		return 0, 0, 0, fmt.Errorf("%w: batch response covers %d+%d of %d traces", ErrFrame, skipped, applied, len(traces))
	}
	want := batchRespBytes
	if op == OpPredictBatch {
		want += int(applied) * predictionBytes
	}
	if len(resp) != want {
		return 0, 0, 0, fmt.Errorf("%w: batch response %d bytes, want %d", ErrFrame, len(resp), want)
	}
	if op == OpPredictBatch && preds != nil {
		for i := 0; i < int(applied); i++ {
			preds[int(skipped)+i] = getPrediction(resp[batchRespBytes+i*predictionBytes:])
		}
	}
	return skipped, applied, correct, nil
}

// Snapshot fetches the session's complete state as a checksummed
// internal/snapshot frame, suitable for Restore on this or another
// server.
func (c *Client) Snapshot(session uint64) ([]byte, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	body, err := c.roundTrip(OpSnapshot, session, nil)
	if err != nil {
		return nil, err
	}
	// The body aliases the reused response buffer; the frame outlives
	// the next call, so copy.
	return append([]byte(nil), body...), nil
}

// Restore installs a snapshot frame as the session's state, replacing
// whatever the server had for it. The returned shard is where the
// session now lives.
func (c *Client) Restore(session uint64, frame []byte) (shard uint32, err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	body, err := c.roundTrip(OpRestore, session, frame)
	if err != nil {
		return 0, err
	}
	if len(body) != 4 {
		return 0, fmt.Errorf("%w: restore response %d bytes", ErrFrame, len(body))
	}
	return le.Uint32(body), nil
}

// SessionStats is the OpStats answer: where the session lives and the
// predictor counters for the session and its whole shard.
type SessionStats struct {
	Shard    uint32
	Sessions uint32 // sessions resident on that shard
	Session  predictor.Stats
	ShardAgg predictor.Stats
}

// Stats fetches the session's predictor counters. The snapshot is
// taken on the shard goroutine, strictly ordered with the session's
// updates, so after the last Update of a stream it is the stream's
// final, exact state.
func (c *Client) Stats(session uint64) (SessionStats, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	body, err := c.roundTrip(OpStats, session, nil)
	if err != nil {
		return SessionStats{}, err
	}
	if len(body) != 8+2*statsBytes {
		return SessionStats{}, fmt.Errorf("%w: stats response %d bytes", ErrFrame, len(body))
	}
	return SessionStats{
		Shard:    le.Uint32(body),
		Sessions: le.Uint32(body[4:]),
		Session:  getStats(body[8:]),
		ShardAgg: getStats(body[8+statsBytes:]),
	}, nil
}
