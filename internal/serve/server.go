package serve

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"net"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"pathtrace/internal/faults"
	"pathtrace/internal/metrics"
	"pathtrace/internal/predictor"
)

// Config sizes a prediction server.
type Config struct {
	// Addr is the TCP listen address, e.g. "127.0.0.1:9191". Port 0
	// picks a free port; Server.Addr reports the bound address.
	Addr string

	// AdminAddr, when non-empty, starts the sidecar admin HTTP listener
	// (/healthz, /statsz, /varz) on this address.
	AdminAddr string

	// Shards is the number of predictor shards (default: GOMAXPROCS).
	// Sessions are hashed to shards; each shard processes its queue on
	// one goroutine.
	Shards int

	// QueueLen bounds each shard's request queue (default 1024). A full
	// queue overloads: the request is rejected immediately with
	// ErrOverloaded rather than queued unboundedly.
	QueueLen int

	// Predictor configures the per-session predictors. The zero value
	// defaults (inside predictor.New) to the basic correlated predictor;
	// servers usually want the paper's headline hybrid. Predictor.Backend
	// selects the serving backend from the registry.
	Predictor predictor.Config

	// Shadows names predictor backends to run in shadow-evaluation mode:
	// every session's applied updates also train one predictor per
	// listed backend (built from the same Predictor geometry), but only
	// the primary ever answers Predict or is snapshotted. Per-backend
	// accuracy is exported through the ntpd_backend_* metric families,
	// so contenders are compared on live traffic without risking it.
	Shadows []string

	// Faults, when non-nil, gives every session's predictor its own
	// deterministic injector built from this plan — the server-side
	// analogue of ntp -inject, for degraded-mode testing.
	Faults *faults.Config

	// CheckpointDir, when non-empty, enables crash-safe persistence:
	// every session is periodically snapshotted to
	// <dir>/<sessionID>.ntss (atomic rename, fsync'd), sessions found
	// there are restored on startup (warm restart), and a drain spills
	// sessions it cannot hand off to this directory.
	CheckpointDir string

	// CheckpointEvery is the periodic checkpoint interval (default 2s).
	CheckpointEvery time.Duration

	// HandoffAddr, when non-empty, is a peer ntpd address: Shutdown
	// streams every live session there via OpRestore before returning,
	// so a drain loses nothing even without a checkpoint directory.
	HandoffAddr string

	// WriteTimeout bounds each response frame write (default 30s,
	// negative disables). A peer that stops reading would otherwise
	// block the connection writer, back its channel up, and stall the
	// shard goroutine behind it.
	WriteTimeout time.Duration

	// IdleTimeout, when positive, closes connections that send no
	// request for this long. Zero disables (clients legitimately idle
	// between replay bursts).
	IdleTimeout time.Duration

	// WriteBufferSize sizes each connection's response write buffer
	// (default 64 KiB). Responses coalesce in this buffer and flush
	// once the response channel momentarily empties — one syscall per
	// burst of pipelined responses rather than one per frame. Size it
	// to at least a full batch response when raising MaxBatch-scale
	// batch sizes.
	WriteBufferSize int

	// Limits configures token-bucket admission control ahead of the
	// shard queues: per-client quotas keyed by the connection's OpHello
	// tag plus an optional global cap. The zero value disables it.
	// Hot-reloadable at runtime via Server.SetLimits (exposed as the
	// admin plane's /limitz endpoint) without disturbing sessions.
	Limits Limits
}

func (c Config) withDefaults() Config {
	if c.Shards <= 0 {
		c.Shards = runtime.GOMAXPROCS(0)
	}
	if c.QueueLen <= 0 {
		c.QueueLen = 1024
	}
	if c.CheckpointEvery <= 0 {
		c.CheckpointEvery = 2 * time.Second
	}
	switch {
	case c.WriteTimeout == 0:
		c.WriteTimeout = 30 * time.Second
	case c.WriteTimeout < 0:
		c.WriteTimeout = 0
	}
	if c.WriteBufferSize <= 0 {
		c.WriteBufferSize = 1 << 16
	}
	// The session predictor config must not carry a shared injector:
	// injectors are stateful and not concurrency-safe, so they are
	// created per session from c.Faults instead.
	c.Predictor.Faults = nil
	return c
}

// Server hosts predictor shards behind a TCP listener.
type Server struct {
	cfg     Config
	backend predictor.Backend // resolved primary backend
	ln      net.Listener
	shards  []*shard
	admin   *adminServer
	reg     *metrics.Registry
	ckpt    *checkpointer // nil without a checkpoint directory
	start   time.Time

	draining atomic.Bool
	inflight sync.WaitGroup // unfinished shard tasks

	// Admission control: the active limits (swapped atomically on hot
	// reload), the global token bucket, and per-client-tag accounting.
	limits       atomic.Pointer[Limits]
	globalBucket tokenBucket
	clients      *clientRegistry

	connMu sync.Mutex
	conns  map[net.Conn]struct{}
	connWG sync.WaitGroup

	counters serverCounters

	quiesceOnce sync.Once
	closeOnce   sync.Once
	closeErr    error
}

// serverCounters are the server-wide expvar-style counters.
type serverCounters struct {
	Accepted     atomic.Uint64 // connections accepted
	Active       atomic.Int64  // connections currently open
	Requests     atomic.Uint64 // frames parsed into requests
	BadFrames    atomic.Uint64 // connections dropped on malformed frames
	DrainRejects atomic.Uint64 // requests rejected while draining
	Throttled    atomic.Uint64 // requests rejected by admission control

	// Warm-restart accounting (set once during NewServer).
	RestoredSessions atomic.Uint64 // sessions loaded from checkpoints
	CorruptSnapshots atomic.Uint64 // checkpoint files rejected as invalid

	// Drain offload accounting (set during Shutdown).
	HandoffSessions atomic.Uint64 // sessions streamed to the handoff peer
	HandoffRetries  atomic.Uint64 // handoff attempts that had to be retried
	HandoffFailed   atomic.Uint64 // sessions the peer never accepted
	SpilledSessions atomic.Uint64 // sessions written to the checkpoint dir at drain
	LostSessions    atomic.Uint64 // sessions with nowhere to go (no peer, no dir)
}

// NewServer binds the listener(s) and starts the shard goroutines and
// accept loop. It returns once the server is serving.
func NewServer(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()

	// Resolve the primary backend and validate every shadow before
	// binding anything: a server that cannot build its predictors is a
	// configuration error at startup, not a per-session ErrBadRequest.
	backend, err := predictor.ResolveBackend(cfg.Predictor)
	if err != nil {
		return nil, err
	}
	if _, err := backend.New(cfg.Predictor); err != nil {
		return nil, fmt.Errorf("serve: backend %q: %w", backend.Name, err)
	}
	shadowCfgs := make([]shadowBackend, 0, len(cfg.Shadows))
	for _, name := range cfg.Shadows {
		b, ok := predictor.BackendByName(name)
		if !ok {
			return nil, fmt.Errorf("serve: unknown shadow backend %q (registered: %v)", name, predictor.BackendNames())
		}
		for _, prev := range shadowCfgs {
			if prev.b.Name == name {
				return nil, fmt.Errorf("serve: duplicate shadow backend %q", name)
			}
		}
		scfg := cfg.Predictor
		scfg.Backend = name
		if _, err := b.New(scfg); err != nil {
			return nil, fmt.Errorf("serve: shadow backend %q: %w", name, err)
		}
		shadowCfgs = append(shadowCfgs, shadowBackend{b: b, cfg: scfg})
	}

	ln, err := net.Listen("tcp", cfg.Addr)
	if err != nil {
		return nil, err
	}
	s := &Server{
		cfg:     cfg,
		backend: backend,
		ln:      ln,
		conns:   map[net.Conn]struct{}{},
		reg:     metrics.NewRegistry(),
		start:   time.Now(),
	}
	s.clients = newClientRegistry(s.reg)
	s.SetLimits(cfg.Limits)
	for i := 0; i < cfg.Shards; i++ {
		m := newShardMetrics(s.reg, i, backend.Name, cfg.Shadows)
		// Each shard gets its own shadow templates so shadow predictors
		// report into that shard's recorders.
		shadows := make([]shadowBackend, len(shadowCfgs))
		copy(shadows, shadowCfgs)
		for j := range shadows {
			shadows[j].cfg.Recorder = m.shadowRec[shadows[j].b.Name]
		}
		sh := newShard(i, backend, cfg.Predictor, cfg.Faults, shadows, cfg.QueueLen, m)
		s.shards = append(s.shards, sh)
	}
	// Warm restart: restore checkpointed sessions before the shards
	// start, while their session maps are still private to this
	// goroutine.
	if cfg.CheckpointDir != "" {
		if err := s.loadCheckpoints(cfg.CheckpointDir); err != nil {
			ln.Close()
			return nil, err
		}
	}
	for _, sh := range s.shards {
		sh.start()
	}
	if cfg.CheckpointDir != "" {
		s.ckpt = newCheckpointer(s, cfg.CheckpointDir, cfg.CheckpointEvery)
	}
	s.registerMetrics()
	if cfg.AdminAddr != "" {
		admin, err := newAdminServer(cfg.AdminAddr, s)
		if err != nil {
			s.Close()
			return nil, err
		}
		s.admin = admin
	}
	s.connWG.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the bound service address.
func (s *Server) Addr() net.Addr { return s.ln.Addr() }

// Metrics returns the server's metric registry — the source behind the
// admin listener's /metrics endpoint, exposed for in-process embedding.
func (s *Server) Metrics() *metrics.Registry { return s.reg }

// AdminAddr returns the bound admin address, or nil when disabled.
func (s *Server) AdminAddr() net.Addr {
	if s.admin == nil {
		return nil
	}
	return s.admin.ln.Addr()
}

// shardFor maps a session to its shard. Stable for a fixed shard
// count, so a session keeps its predictor across reconnects.
func (s *Server) shardFor(session uint64) *shard {
	return s.shards[splitmix64(session)%uint64(len(s.shards))]
}

func (s *Server) acceptLoop() {
	defer s.connWG.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.counters.Accepted.Add(1)
		s.counters.Active.Add(1)
		s.connMu.Lock()
		s.conns[conn] = struct{}{}
		s.connMu.Unlock()
		s.connWG.Add(1)
		go s.serveConn(conn)
	}
}

// serveConn runs one connection: a reader loop that parses frames and
// dispatches them to shards, plus a writer goroutine that serialises
// response frames. Responses may interleave across sessions; the
// request ID ties them back. Per-session order is preserved end to
// end: the reader dispatches in arrival order and each shard's queue
// is FIFO on a single goroutine.
func (s *Server) serveConn(conn net.Conn) {
	defer s.connWG.Done()
	defer func() {
		s.connMu.Lock()
		delete(s.conns, conn)
		s.connMu.Unlock()
		s.counters.Active.Add(-1)
	}()

	out := make(chan []byte, 64)
	var pending sync.WaitGroup // shard callbacks not yet delivered to out

	// Writer: drains out until closed. Write errors are ignored — the
	// reader will observe the dead connection and stop; pending shard
	// callbacks must still be consumed so shards never block on a dead
	// connection. Each frame rearms the write deadline: a peer that
	// stops reading fails the write instead of blocking this goroutine
	// (and, through the full channel behind it, a shard) forever.
	writerDone := make(chan struct{})
	go func() {
		defer close(writerDone)
		bw := bufio.NewWriterSize(conn, s.cfg.WriteBufferSize)
		for payload := range out {
			if wt := s.cfg.WriteTimeout; wt > 0 {
				conn.SetWriteDeadline(time.Now().Add(wt))
			}
			if writeFrame(bw, payload) != nil {
				continue
			}
			// Flush when the channel momentarily empties, so pipelined
			// responses batch into few syscalls without extra latency.
			if len(out) == 0 {
				bw.Flush()
			}
		}
		bw.Flush()
	}()

	br := bufio.NewReaderSize(conn, 1<<16)
	var buf []byte
	var cl *clientState // resolved on first dispatch or OpHello
	for {
		if it := s.cfg.IdleTimeout; it > 0 {
			conn.SetReadDeadline(time.Now().Add(it))
		}
		payload, err := readFrame(br, buf)
		if err != nil {
			if errors.Is(err, ErrFrame) {
				s.counters.BadFrames.Add(1)
			}
			break
		}
		buf = payload // keep the grown buffer
		req, err := parseRequest(payload)
		if err != nil {
			s.counters.BadFrames.Add(1)
			break // framing no longer trustworthy
		}
		s.counters.Requests.Add(1)
		if req.op == OpHello {
			// Connection-scoped identity: handled here, never enqueued.
			// An invalid tag is a per-request rejection, not a framing
			// error — the stream is still aligned.
			if !validClientTag(req.client) {
				out <- encodeResponse(req, shardResp{err: ErrBadRequest})
				continue
			}
			cl = s.clients.get(req.client)
			out <- encodeResponse(req, shardResp{})
			continue
		}
		if cl == nil {
			cl = s.clients.get(defaultClientTag)
		}
		s.dispatch(req, cl, out, &pending)
	}

	conn.Close() // unblocks any in-flight write
	pending.Wait()
	close(out)
	<-writerDone
}

// dispatch routes one request to its shard, or answers it immediately
// with a typed failure (draining, throttled, overload). Every request
// is accounted under the connection's client tag; work-carrying ops
// must additionally clear admission control before touching a queue.
func (s *Server) dispatch(req request, cl *clientState, out chan []byte, pending *sync.WaitGroup) {
	cl.requests.Inc()
	cl.bytes.Add(uint64(req.wireBytes))
	if s.draining.Load() {
		s.counters.DrainRejects.Add(1)
		out <- encodeResponse(req, shardResp{err: ErrDraining})
		return
	}
	cost := admissionCost(&req)
	if retryAfter, ok := s.admit(cl, cost); !ok {
		s.counters.Throttled.Add(1)
		cl.throttles.Inc()
		out <- encodeResponse(req, shardResp{err: &ThrottledError{RetryAfter: retryAfter}})
		return
	}
	sh := s.shardFor(req.session)
	pending.Add(1)
	s.inflight.Add(1)
	t := task{req: req, done: func(resp shardResp) {
		out <- encodeResponse(req, resp)
		pending.Done()
		s.inflight.Done()
	}}
	if !sh.enqueue(t) {
		pending.Done()
		s.inflight.Done()
		cl.overloads.Inc()
		out <- encodeResponse(req, shardResp{err: ErrOverloaded})
		return
	}
	if cost > 0 {
		cl.rounds.Add(uint64(cost))
	}
}

// encodeResponse renders a shard response as a wire frame payload.
func encodeResponse(req request, resp shardResp) []byte {
	buf := appendResponseHeader(nil, req.op, req.reqID, statusOf(resp.err))
	if resp.err != nil {
		var te *ThrottledError
		if errors.As(resp.err, &te) {
			// Throttled responses carry the retry-after hint (ms,
			// rounded up so a sub-millisecond wait never encodes as 0).
			ms := (te.RetryAfter + time.Millisecond - 1) / time.Millisecond
			if ms < 1 {
				ms = 1
			}
			var b [4]byte
			le.PutUint32(b[:], uint32(min(ms, 1<<31)))
			buf = append(buf, b[:]...)
		}
		return buf
	}
	switch req.op {
	case OpOpen:
		var b [openRespBytes]byte
		le.PutUint32(b[:], resp.shard)
		le.PutUint64(b[4:], resp.lastSeq)
		buf = append(buf, b[:]...)
	case OpRestore:
		var b [4]byte
		le.PutUint32(b[:], resp.shard)
		buf = append(buf, b[:]...)
	case OpSnapshot:
		buf = append(buf, resp.blob...)
	case OpPredict:
		var b [predictionBytes]byte
		putPrediction(b[:], resp.pred)
		buf = append(buf, b[:]...)
	case OpUpdate:
		var b [8]byte
		le.PutUint32(b[:], resp.applied)
		le.PutUint32(b[4:], resp.correct)
		buf = append(buf, b[:]...)
	case OpUpdateBatch, OpPredictBatch:
		var b [batchRespBytes]byte
		le.PutUint32(b[:], resp.skipped)
		le.PutUint32(b[4:], resp.applied)
		le.PutUint32(b[8:], resp.correct)
		buf = append(buf, b[:]...)
		if req.op == OpPredictBatch {
			off := len(buf)
			buf = append(buf, make([]byte, len(resp.preds)*predictionBytes)...)
			for i := range resp.preds {
				putPrediction(buf[off+i*predictionBytes:], resp.preds[i])
			}
		}
	case OpStats:
		var b [8 + 2*statsBytes]byte
		le.PutUint32(b[:], resp.shard)
		le.PutUint32(b[4:], resp.sessions)
		putStats(b[8:], resp.sess)
		putStats(b[8+statsBytes:], resp.agg)
		buf = append(buf, b[:]...)
	}
	return buf
}

// Shutdown drains the server gracefully and offloads its sessions:
// stop accepting connections, reject new requests with ErrDraining,
// let every already-enqueued request finish, quiesce the shards, then
// snapshot every live session and stream it to the handoff peer (or
// spill it to the checkpoint directory). ctx bounds the in-flight
// drain; on expiry the remaining work is abandoned, but the offload
// still runs — session state is exactly what makes a drain worth
// waiting for.
func (s *Server) Shutdown(ctx context.Context) error {
	s.draining.Store(true)
	s.ln.Close()

	drained := make(chan struct{})
	go func() {
		s.inflight.Wait()
		close(drained)
	}()
	var err error
	select {
	case <-drained:
	case <-ctx.Done():
		err = fmt.Errorf("serve: drain aborted: %w", ctx.Err())
	}
	s.quiesce()
	offErr := s.offload()
	s.Close()
	return errors.Join(err, offErr)
}

// quiesce stops all request processing: listener, checkpoint ticker,
// connections, then the shard goroutines. After quiesce the shard
// session maps are safe to read from the caller's goroutine. The
// checkpoint writer is still running (shard backlogs may hand it
// frames until the last shard stops); Close flushes and stops it.
func (s *Server) quiesce() {
	s.quiesceOnce.Do(func() {
		s.draining.Store(true)
		s.closeErr = s.ln.Close()
		if s.ckpt != nil {
			s.ckpt.stopTicker()
		}
		s.connMu.Lock()
		for conn := range s.conns {
			conn.Close()
		}
		s.connMu.Unlock()
		s.connWG.Wait() // all dispatchers gone: shards see no new tasks
		for _, sh := range s.shards {
			sh.stop()
		}
	})
}

// Close tears the server down immediately: listener, connections,
// shard goroutines, checkpoint writer, admin listener. Safe to call
// more than once and after Shutdown. Unlike Shutdown it does not
// offload sessions (checkpointed state, if any, survives on disk).
func (s *Server) Close() error {
	s.closeOnce.Do(func() {
		s.quiesce()
		if s.ckpt != nil {
			s.ckpt.close() // flush queued checkpoint writes
		}
		if s.admin != nil {
			s.admin.close()
		}
	})
	return s.closeErr
}
