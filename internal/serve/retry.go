package serve

import (
	"errors"
	"fmt"
	"time"

	"pathtrace/internal/predictor"
	"pathtrace/internal/trace"
)

// RetryConfig shapes a RetryClient: where to connect (a failover list),
// how long to keep trying, and how aggressively to snapshot for
// recovery.
type RetryConfig struct {
	// Addrs is the server list, tried in order; on connection failure
	// the client rotates to the next address. One entry is plain
	// reconnect-with-backoff.
	Addrs []string

	// DialTimeout bounds each connection attempt (default 2s).
	DialTimeout time.Duration

	// OpTimeout bounds each network round trip (default 10s).
	OpTimeout time.Duration

	// MaxElapsed bounds one logical operation including all retries,
	// reconnects and re-establishment (default 30s).
	MaxElapsed time.Duration

	// BaseBackoff and MaxBackoff shape the exponential reconnect
	// backoff (defaults 20ms and 1s); jitter is applied on top.
	BaseBackoff time.Duration
	MaxBackoff  time.Duration

	// Seed drives the backoff jitter deterministically: two clients
	// with different seeds desynchronize, one client reproduces its
	// exact retry schedule.
	Seed uint64

	// RetryBudget is the fraction of successful ops earned back as
	// Overloaded-retry tokens (default 0.2): under sustained overload a
	// client retries at most ~20% extra load instead of amplifying the
	// stampede. MinBudget is the token floor that lets isolated bursts
	// retry freely (default 16).
	RetryBudget float64
	MinBudget   int

	// SnapshotEvery takes a session snapshot after every N acked
	// updates (0 disables). With 1, recovery is exact: a session lost
	// to a crash is re-established from a snapshot that includes every
	// acked batch, and the stream continues bit-identically. Larger
	// values trade recovery fidelity for round trips.
	SnapshotEvery int

	// ClientTag names this client to the server for per-client
	// accounting and admission control; it is announced on every
	// connection the client establishes (including failover and
	// reconnect). Empty means untagged.
	ClientTag string
}

func (c RetryConfig) withDefaults() (RetryConfig, error) {
	if len(c.Addrs) == 0 {
		return c, errors.New("serve: retry client needs at least one address")
	}
	if c.DialTimeout <= 0 {
		c.DialTimeout = 2 * time.Second
	}
	if c.OpTimeout <= 0 {
		c.OpTimeout = 10 * time.Second
	}
	if c.MaxElapsed <= 0 {
		c.MaxElapsed = 30 * time.Second
	}
	if c.BaseBackoff <= 0 {
		c.BaseBackoff = 20 * time.Millisecond
	}
	if c.MaxBackoff <= 0 {
		c.MaxBackoff = time.Second
	}
	if c.RetryBudget <= 0 {
		c.RetryBudget = 0.2
	}
	if c.MinBudget <= 0 {
		c.MinBudget = 16
	}
	return c, nil
}

// rcSession is the client-side recovery state for one session: the
// sequence stream position and the last acked snapshot.
type rcSession struct {
	seq       uint64 // last acked update sequence
	snap      []byte // last acked snapshot frame (nil: none yet)
	snapSeq   uint64 // sequence the snapshot was taken at
	sinceSnap int    // acked updates since the last snapshot
}

// RetryClient wraps the wire client with the crash-safety behaviours a
// robust caller wants: per-op deadlines, exponential backoff with
// deterministic jitter on reconnect, failover across a server list,
// budgeted retries on overload, and transparent session
// re-establishment from the last acked snapshot when a server comes
// back empty-handed. Safe for one goroutine at a time per instance
// (like Client, run one per worker).
type RetryClient struct {
	cfg      RetryConfig
	c        *Client // live connection, nil when down
	addrIdx  int
	rngState uint64
	tokens   float64
	sessions map[uint64]*rcSession
}

// NewRetryClient builds a retrying client. No connection is made until
// the first operation.
func NewRetryClient(cfg RetryConfig) (*RetryClient, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	return &RetryClient{
		cfg:      cfg,
		rngState: cfg.Seed,
		tokens:   float64(cfg.MinBudget),
		sessions: map[uint64]*rcSession{},
	}, nil
}

// Close drops the current connection. Session recovery state is kept:
// a later call reconnects and re-establishes as needed.
func (rc *RetryClient) Close() error {
	if rc.c != nil {
		err := rc.c.Close()
		rc.c = nil
		return err
	}
	return nil
}

// rand returns the next deterministic jitter draw in [0, 1).
func (rc *RetryClient) rand() float64 {
	rc.rngState++
	return float64(splitmix64(rc.rngState^rc.cfg.Seed)>>11) / float64(1<<53)
}

// backoffFor returns attempt's exponential backoff: BaseBackoff doubled
// attempt times, saturating at MaxBackoff. Doubling with a pre-check
// (rather than a single shift) cannot overflow: the previous
// `BaseBackoff << min(attempt, 20)` wrapped for BaseBackoff above
// ~2.5h, and whether the wrapped value tripped the `<= 0` guard was
// luck of the sign bit — an overflowed-but-positive duration slept
// essentially forever.
func (rc *RetryClient) backoffFor(attempt int) time.Duration {
	d := rc.cfg.BaseBackoff
	for ; attempt > 0; attempt-- {
		if d >= rc.cfg.MaxBackoff/2 {
			return rc.cfg.MaxBackoff
		}
		d *= 2
	}
	return min(d, rc.cfg.MaxBackoff)
}

// sleepBackoff sleeps the attempt's backoff (exponential, capped,
// ±25% jitter) unless that would cross the deadline, in which case it
// reports false.
func (rc *RetryClient) sleepBackoff(attempt int, deadline time.Time) bool {
	d := rc.backoffFor(attempt)
	d += time.Duration((rc.rand() - 0.5) * 0.5 * float64(d))
	if time.Now().Add(d).After(deadline) {
		return false
	}
	time.Sleep(d)
	return true
}

// sleepThrottle honors a throttled rejection's retry-after hint,
// unless that would cross the deadline (reports false). Unlike
// overload, throttling needs no budget and no connection drop: the
// server told the client exactly when its bucket will cover the
// request, so retrying then adds no amplification.
func (rc *RetryClient) sleepThrottle(err error, deadline time.Time) bool {
	d := throttleDelay(err, rc.cfg.BaseBackoff)
	if time.Now().Add(d).After(deadline) {
		return false
	}
	time.Sleep(d)
	return true
}

// conn returns the live connection, dialing through the address list
// if needed. Does not retry: the caller owns backoff.
func (rc *RetryClient) conn() (*Client, error) {
	if rc.c != nil {
		return rc.c, nil
	}
	var lastErr error
	for range rc.cfg.Addrs {
		addr := rc.cfg.Addrs[rc.addrIdx%len(rc.cfg.Addrs)]
		c, err := DialTimeout(addr, rc.cfg.DialTimeout)
		if err != nil {
			lastErr = err
			rc.addrIdx++
			continue
		}
		c.SetOpTimeout(rc.cfg.OpTimeout)
		if rc.cfg.ClientTag != "" {
			c.SetClientTag(rc.cfg.ClientTag)
		}
		rc.c = c
		return c, nil
	}
	return nil, fmt.Errorf("serve: all %d addresses unreachable: %w", len(rc.cfg.Addrs), lastErr)
}

// dropConn discards a connection after a transport error and rotates
// to the next address.
func (rc *RetryClient) dropConn() {
	if rc.c != nil {
		rc.c.Close()
		rc.c = nil
	}
	rc.addrIdx++
}

// earnToken/spendToken implement the overload retry budget.
func (rc *RetryClient) earnToken() {
	rc.tokens = min(rc.tokens+rc.cfg.RetryBudget, float64(rc.cfg.MinBudget)*8)
}

func (rc *RetryClient) spendToken() bool {
	if rc.tokens < 1 {
		return false
	}
	rc.tokens--
	return true
}

// retryable reports whether err warrants dropping the connection and
// retrying (transport errors, server draining). Typed application
// rejections — including throttling, which must sleep the hint on the
// same connection — are handled by the callers.
func retryable(err error) bool {
	switch {
	case errors.Is(err, ErrOverloaded),
		errors.Is(err, ErrThrottled),
		errors.Is(err, ErrUnknownSession),
		errors.Is(err, ErrBadSnapshot),
		errors.Is(err, ErrBadRequest):
		return false
	}
	return true // transport error, deadline, draining peer, bad frame
}

// establish makes the server know the session: restore from the last
// acked snapshot when one exists, else a plain (idempotent) open. On
// success the server's duplicate detector is aligned with rc's state.
func (rc *RetryClient) establish(c *Client, session uint64, s *rcSession) error {
	if s.snap != nil {
		_, err := c.Restore(session, s.snap)
		return err
	}
	_, lastSeq, err := c.Open(session)
	if err == nil && lastSeq > s.seq {
		// The server already knew the session (it survived, or a peer
		// received it in a drain handoff) and is ahead of a fresh
		// counter; adopt its position.
		s.seq = lastSeq
	}
	return err
}

// Open creates (or re-attaches to) a session, retrying across
// reconnects, and seeds the session's recovery state. With snapshots
// enabled, the freshly opened session is snapshotted immediately so
// even a crash before the first update recovers exactly.
func (rc *RetryClient) Open(session uint64) (shard uint32, lastSeq uint64, err error) {
	deadline := time.Now().Add(rc.cfg.MaxElapsed)
	s := rc.session(session)
	for attempt := 0; ; attempt++ {
		c, cerr := rc.conn()
		if cerr == nil {
			shard, lastSeq, err = c.Open(session)
			if err == nil {
				if lastSeq > s.seq {
					s.seq = lastSeq
				}
				if rc.cfg.SnapshotEvery > 0 && s.snap == nil {
					if frame, serr := c.Snapshot(session); serr == nil {
						s.snap, s.snapSeq, s.sinceSnap = frame, s.seq, 0
					}
				}
				rc.earnToken()
				return shard, s.seq, nil
			}
			if errors.Is(err, ErrThrottled) {
				if !rc.sleepThrottle(err, deadline) {
					return 0, 0, fmt.Errorf("serve: open session %d: %w", session, err)
				}
				continue
			}
			if !retryable(err) {
				return 0, 0, err
			}
			rc.dropConn()
		} else {
			err = cerr
		}
		if !rc.sleepBackoff(attempt, deadline) {
			return 0, 0, fmt.Errorf("serve: open session %d: %w", session, err)
		}
	}
}

func (rc *RetryClient) session(id uint64) *rcSession {
	s, ok := rc.sessions[id]
	if !ok {
		s = &rcSession{}
		rc.sessions[id] = s
	}
	return s
}

// Update delivers one batch with exactly-once semantics across
// crashes: the batch carries the session's next sequence number, a
// lost ack is resolved by the server's duplicate detection, and a
// server that lost the session entirely is re-fed the last acked
// snapshot before the batch is resent. With SnapshotEvery == 1 the
// acked snapshot always includes every previously acked batch, so the
// recovered stream is bit-identical to an uninterrupted one.
func (rc *RetryClient) Update(session uint64, traces []trace.Trace) (applied, correct uint32, err error) {
	deadline := time.Now().Add(rc.cfg.MaxElapsed)
	s := rc.session(session)
	seq := s.seq + 1
	sent := false // batch acked; still snapshotting
	for attempt := 0; ; attempt++ {
		c, cerr := rc.conn()
		if cerr != nil {
			err = cerr
			if !rc.sleepBackoff(attempt, deadline) {
				return 0, 0, fmt.Errorf("serve: update session %d: %w", session, err)
			}
			continue
		}
		if !sent {
			applied, correct, err = c.UpdateSeq(session, seq, traces)
			switch {
			case err == nil:
				s.seq = seq
				s.sinceSnap++
				rc.earnToken()
				sent = true
			case errors.Is(err, ErrThrottled):
				// Admission control: sleep the server's retry-after hint
				// and resend on the same connection.
				if !rc.sleepThrottle(err, deadline) {
					return 0, 0, fmt.Errorf("serve: update session %d: %w", session, err)
				}
				continue
			case errors.Is(err, ErrOverloaded):
				if !rc.spendToken() {
					return 0, 0, fmt.Errorf("serve: update session %d: retry budget exhausted: %w", session, err)
				}
				// Overload is backpressure, not failure: short fixed
				// pause, same connection.
				time.Sleep(rc.cfg.BaseBackoff)
				if time.Now().After(deadline) {
					return 0, 0, fmt.Errorf("serve: update session %d: %w", session, err)
				}
				continue
			case errors.Is(err, ErrUnknownSession):
				if eerr := rc.establish(c, session, s); eerr != nil && !rc.sleepBackoff(attempt, deadline) {
					return 0, 0, fmt.Errorf("serve: update session %d: re-establish: %w", session, eerr)
				}
				continue // resend the batch (or re-dial if establish dropped)
			default:
				if !retryable(err) {
					return 0, 0, err
				}
				rc.dropConn()
				if !rc.sleepBackoff(attempt, deadline) {
					return 0, 0, fmt.Errorf("serve: update session %d: %w", session, err)
				}
				continue
			}
		}
		if rc.cfg.SnapshotEvery <= 0 || s.sinceSnap < rc.cfg.SnapshotEvery {
			return applied, correct, nil
		}
		frame, serr := c.Snapshot(session)
		if serr == nil {
			s.snap, s.snapSeq, s.sinceSnap = frame, s.seq, 0
			return applied, correct, nil
		}
		if errors.Is(serr, ErrUnknownSession) {
			// The server lost the session between the ack and the
			// snapshot. The old snapshot (if any) predates this batch,
			// so re-establish and RESEND the batch — the dedup layer
			// makes that safe if some replica did apply it.
			rc.establish(c, session, s)
			sent = false
			seq = s.seq
			if seq < s.snapSeq+1 {
				seq = s.snapSeq + 1
			}
			// The restored state is at snapSeq; replay this batch as
			// the next sequence after it.
			s.seq = seq - 1
			continue
		}
		if !retryable(serr) {
			return applied, correct, nil // batch is acked; stale snapshot is survivable
		}
		rc.dropConn()
		if !rc.sleepBackoff(attempt, deadline) {
			return applied, correct, nil
		}
	}
}

// UpdateBatch is Update over the batched wire op: the batch covers the
// per-trace sequence range [s.seq+1, s.seq+1+len(traces)), and
// recovery relies on the server's suffix-replay dedup instead of a
// cached whole-frame answer — a resend after a lost ack (or against a
// restored replica that had applied only part of the batch) trains
// exactly the unseen suffix. With SnapshotEvery == 1 the recovered
// stream is bit-identical to an uninterrupted one, same as Update.
func (rc *RetryClient) UpdateBatch(session uint64, traces []trace.Trace) (skipped, applied, correct uint32, err error) {
	if len(traces) == 0 {
		return 0, 0, 0, nil
	}
	deadline := time.Now().Add(rc.cfg.MaxElapsed)
	s := rc.session(session)
	start := s.seq + 1
	end := start + uint64(len(traces)) - 1
	sent := false // batch acked; still snapshotting
	for attempt := 0; ; attempt++ {
		c, cerr := rc.conn()
		if cerr != nil {
			err = cerr
			if !rc.sleepBackoff(attempt, deadline) {
				return 0, 0, 0, fmt.Errorf("serve: update session %d: %w", session, err)
			}
			continue
		}
		if !sent {
			skipped, applied, correct, err = c.UpdateBatchSeq(session, start, traces)
			switch {
			case err == nil:
				if end > s.seq {
					s.seq = end
				}
				s.sinceSnap++
				rc.earnToken()
				sent = true
			case errors.Is(err, ErrThrottled):
				if !rc.sleepThrottle(err, deadline) {
					return 0, 0, 0, fmt.Errorf("serve: update session %d: %w", session, err)
				}
				continue
			case errors.Is(err, ErrOverloaded):
				if !rc.spendToken() {
					return 0, 0, 0, fmt.Errorf("serve: update session %d: retry budget exhausted: %w", session, err)
				}
				time.Sleep(rc.cfg.BaseBackoff)
				if time.Now().After(deadline) {
					return 0, 0, 0, fmt.Errorf("serve: update session %d: %w", session, err)
				}
				continue
			case errors.Is(err, ErrUnknownSession):
				if eerr := rc.establish(c, session, s); eerr != nil && !rc.sleepBackoff(attempt, deadline) {
					return 0, 0, 0, fmt.Errorf("serve: update session %d: re-establish: %w", session, eerr)
				}
				// Resend the same range: the restored server skips
				// whatever prefix it already holds.
				continue
			default:
				if !retryable(err) {
					return 0, 0, 0, err
				}
				rc.dropConn()
				if !rc.sleepBackoff(attempt, deadline) {
					return 0, 0, 0, fmt.Errorf("serve: update session %d: %w", session, err)
				}
				continue
			}
		}
		if rc.cfg.SnapshotEvery <= 0 || s.sinceSnap < rc.cfg.SnapshotEvery {
			return skipped, applied, correct, nil
		}
		frame, serr := c.Snapshot(session)
		if serr == nil {
			s.snap, s.snapSeq, s.sinceSnap = frame, s.seq, 0
			return skipped, applied, correct, nil
		}
		if errors.Is(serr, ErrUnknownSession) {
			// Lost between ack and snapshot: re-establish and resend the
			// same range — suffix dedup absorbs whatever the restored
			// state already covers.
			rc.establish(c, session, s)
			sent = false
			continue
		}
		if !retryable(serr) {
			return skipped, applied, correct, nil // acked; stale snapshot is survivable
		}
		rc.dropConn()
		if !rc.sleepBackoff(attempt, deadline) {
			return skipped, applied, correct, nil
		}
	}
}

// Stats fetches the session's predictor counters, retrying across
// reconnects and re-establishing the session if the server lost it.
func (rc *RetryClient) Stats(session uint64) (SessionStats, error) {
	deadline := time.Now().Add(rc.cfg.MaxElapsed)
	s := rc.session(session)
	var err error
	for attempt := 0; ; attempt++ {
		c, cerr := rc.conn()
		if cerr == nil {
			var st SessionStats
			st, err = c.Stats(session)
			if err == nil {
				rc.earnToken()
				return st, nil
			}
			if errors.Is(err, ErrThrottled) {
				if !rc.sleepThrottle(err, deadline) {
					return SessionStats{}, fmt.Errorf("serve: stats session %d: %w", session, err)
				}
				continue
			}
			if errors.Is(err, ErrUnknownSession) {
				if eerr := rc.establish(c, session, s); eerr == nil {
					continue
				}
			}
			if !retryable(err) {
				return SessionStats{}, err
			}
			rc.dropConn()
		} else {
			err = cerr
		}
		if !rc.sleepBackoff(attempt, deadline) {
			return SessionStats{}, fmt.Errorf("serve: stats session %d: %w", session, err)
		}
	}
}

// Predict returns the session predictor's current prediction,
// retrying across reconnects.
func (rc *RetryClient) Predict(session uint64) (predictor.Prediction, error) {
	deadline := time.Now().Add(rc.cfg.MaxElapsed)
	s := rc.session(session)
	var err error
	for attempt := 0; ; attempt++ {
		c, cerr := rc.conn()
		if cerr == nil {
			var p predictor.Prediction
			p, err = c.Predict(session)
			if err == nil {
				rc.earnToken()
				return p, nil
			}
			if errors.Is(err, ErrThrottled) {
				if !rc.sleepThrottle(err, deadline) {
					return predictor.Prediction{}, fmt.Errorf("serve: predict session %d: %w", session, err)
				}
				continue
			}
			if errors.Is(err, ErrUnknownSession) {
				if eerr := rc.establish(c, session, s); eerr == nil {
					continue
				}
			}
			if !retryable(err) {
				return predictor.Prediction{}, err
			}
			rc.dropConn()
		} else {
			err = cerr
		}
		if !rc.sleepBackoff(attempt, deadline) {
			return predictor.Prediction{}, fmt.Errorf("serve: predict session %d: %w", session, err)
		}
	}
}
