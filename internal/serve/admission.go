package serve

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"pathtrace/internal/metrics"
)

// This file is the fairness half of overload handling. The shard queue
// bound (ErrOverloaded) protects the server from unbounded memory, but
// it is FIFO-blind: one hot client can keep every shard queue full and
// starve well-behaved sessions. Admission control sits ahead of the
// shard queues: every work-carrying request is charged against a
// per-client token bucket (and optionally a global one) before it may
// touch a queue, so overload degrades per client — the aggressor is
// throttled, everyone else proceeds.
//
// Throttle rejections are typed (ErrThrottled, wire status 0x06) and
// carry a retry-after hint, so a cooperating client backs off exactly
// as long as the deficit requires instead of guessing. Control-plane
// ops (Open, Stats, Snapshot, Restore, Hello) are exempt: a throttled
// client must still be able to re-establish, observe, and drain — only
// prediction work (Predict, Update, and the batch ops) is metered, at
// one token per trace.

// Limits configures admission control. The zero value disables it.
// Rates are in traces (Predict/Update rounds) per second; bursts are
// bucket depths in traces. A request costing more than the bucket depth
// is charged the full depth instead of being unadmittable, so a batch
// larger than the burst still passes once the bucket is full — the
// long-run rate is what the bucket enforces.
type Limits struct {
	// PerClientRate is each client tag's sustained trace budget per
	// second (0 = unlimited). Untagged connections share one bucket.
	PerClientRate float64 `json:"per_client_rate"`
	// PerClientBurst is the per-client bucket depth (default: one
	// second's worth of PerClientRate).
	PerClientBurst float64 `json:"per_client_burst"`
	// GlobalRate caps the server's total admitted trace rate across all
	// clients (0 = unlimited).
	GlobalRate float64 `json:"global_rate"`
	// GlobalBurst is the global bucket depth (default: one second's
	// worth of GlobalRate).
	GlobalBurst float64 `json:"global_burst"`
}

func (l Limits) enabled() bool { return l.PerClientRate > 0 || l.GlobalRate > 0 }

func (l Limits) withDefaults() Limits {
	if l.PerClientRate > 0 && l.PerClientBurst <= 0 {
		l.PerClientBurst = l.PerClientRate
	}
	if l.GlobalRate > 0 && l.GlobalBurst <= 0 {
		l.GlobalBurst = l.GlobalRate
	}
	return l
}

// tokenBucket is a mutex-guarded lazy-refill token bucket. Rate and
// burst are passed per call rather than stored, so a hot-reloaded
// Limits takes effect on the very next request with no bucket rebuild
// (accumulated tokens are simply re-capped at the new burst).
type tokenBucket struct {
	mu     sync.Mutex
	tokens float64
	last   time.Time
	primed bool
}

// take charges n tokens. When the bucket cannot cover them it charges
// nothing and reports how long the caller should wait for the deficit
// to refill. A fresh bucket starts full (burst tokens).
func (b *tokenBucket) take(n, rate, burst float64, now time.Time) (retryAfter time.Duration, ok bool) {
	if n > burst {
		n = burst // oversized requests cost a full bucket, not forever
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if !b.primed {
		b.tokens = burst
		b.last = now
		b.primed = true
	}
	if dt := now.Sub(b.last).Seconds(); dt > 0 {
		b.tokens += dt * rate
		b.last = now
	}
	if b.tokens > burst {
		b.tokens = burst
	}
	if b.tokens >= n {
		b.tokens -= n
		return 0, true
	}
	wait := time.Duration((n - b.tokens) / rate * float64(time.Second))
	if wait < time.Millisecond {
		wait = time.Millisecond
	}
	return wait, false
}

// refund returns tokens taken by a charge that was later rejected at
// another level (per-client admitted, global refused), so a client is
// never billed for work the server refused.
func (b *tokenBucket) refund(n float64) {
	b.mu.Lock()
	b.tokens += n
	b.mu.Unlock()
}

const (
	// defaultClientTag accounts connections that never sent OpHello.
	defaultClientTag = "default"
	// maxClientTagLen bounds the wire tag.
	maxClientTagLen = 64
	// maxClientTags bounds metric cardinality: tags beyond this fold
	// into overflowClientTag rather than minting new series forever.
	maxClientTags     = 256
	overflowClientTag = "overflow"
)

// validClientTag accepts printable ASCII without the two characters
// that need escaping in Prometheus label values.
func validClientTag(tag string) bool {
	if len(tag) == 0 || len(tag) > maxClientTagLen {
		return false
	}
	for i := 0; i < len(tag); i++ {
		c := tag[i]
		if c < 0x20 || c > 0x7e || c == '"' || c == '\\' {
			return false
		}
	}
	return true
}

// clientState is one client tag's accounting and admission state:
// counters registered under the ntpd_client_* families plus the tag's
// token bucket. Counters are atomics; the bucket has its own lock; the
// struct is shared by every connection carrying the tag.
type clientState struct {
	tag    string
	bucket tokenBucket

	requests  *metrics.Counter // frames dispatched
	rounds    *metrics.Counter // traces enqueued to shards
	bytes     *metrics.Counter // request payload bytes
	overloads *metrics.Counter // ErrOverloaded rejections
	throttles *metrics.Counter // ErrThrottled rejections
}

func newClientState(tag string, reg *metrics.Registry) *clientState {
	l := metrics.Labels{"client": tag}
	return &clientState{
		tag:       tag,
		requests:  reg.Counter("ntpd_client_requests_total", "Requests dispatched per client tag.", l),
		rounds:    reg.Counter("ntpd_client_rounds_total", "Predict/Update rounds (traces) admitted per client tag.", l),
		bytes:     reg.Counter("ntpd_client_bytes_total", "Request payload bytes received per client tag.", l),
		overloads: reg.Counter("ntpd_client_overload_rejects_total", "Requests rejected with ErrOverloaded per client tag.", l),
		throttles: reg.Counter("ntpd_client_throttled_total", "Requests rejected with ErrThrottled per client tag.", l),
	}
}

// clientRegistry interns clientState by tag, capping cardinality.
type clientRegistry struct {
	reg *metrics.Registry
	mu  sync.Mutex
	m   map[string]*clientState
}

func newClientRegistry(reg *metrics.Registry) *clientRegistry {
	return &clientRegistry{reg: reg, m: map[string]*clientState{}}
}

func (r *clientRegistry) get(tag string) *clientState {
	r.mu.Lock()
	defer r.mu.Unlock()
	if cs, ok := r.m[tag]; ok {
		return cs
	}
	if len(r.m) >= maxClientTags {
		tag = overflowClientTag
		if cs, ok := r.m[tag]; ok {
			return cs
		}
	}
	cs := newClientState(tag, r.reg)
	r.m[tag] = cs
	return cs
}

func (r *clientRegistry) len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.m)
}

// ClientStats is one client tag's accounting snapshot (rendered into
// /statsz and the ntpstat reporter).
type ClientStats struct {
	Client    string `json:"client"`
	Requests  uint64 `json:"requests"`
	Rounds    uint64 `json:"rounds"`
	Bytes     uint64 `json:"bytes"`
	Overloads uint64 `json:"overloads"`
	Throttled uint64 `json:"throttled"`
}

func (r *clientRegistry) stats() []ClientStats {
	r.mu.Lock()
	out := make([]ClientStats, 0, len(r.m))
	for _, cs := range r.m {
		out = append(out, ClientStats{
			Client:    cs.tag,
			Requests:  cs.requests.Load(),
			Rounds:    cs.rounds.Load(),
			Bytes:     cs.bytes.Load(),
			Overloads: cs.overloads.Load(),
			Throttled: cs.throttles.Load(),
		})
	}
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Client < out[j].Client })
	return out
}

// admissionCost is the token charge for one request: work-carrying ops
// pay per trace (minimum 1); control-plane ops are exempt (cost 0) so a
// throttled client can still open, observe, snapshot and recover.
func admissionCost(req *request) float64 {
	switch req.op {
	case OpPredict:
		return 1
	case OpUpdate, OpUpdateBatch, OpPredictBatch:
		if n := len(req.traces); n > 1 {
			return float64(n)
		}
		return 1
	}
	return 0
}

// admit charges cost against the client's bucket and then the global
// bucket. A global refusal refunds the client charge, so clients are
// only ever billed for work that reached a shard queue. Returns the
// retry-after hint on refusal.
func (s *Server) admit(cl *clientState, cost float64) (time.Duration, bool) {
	if cost == 0 {
		return 0, true
	}
	lim := s.limits.Load()
	if lim == nil || !lim.enabled() {
		return 0, true
	}
	now := time.Now()
	charged := 0.0
	if lim.PerClientRate > 0 {
		ra, ok := cl.bucket.take(cost, lim.PerClientRate, lim.PerClientBurst, now)
		if !ok {
			return ra, false
		}
		charged = min(cost, lim.PerClientBurst)
	}
	if lim.GlobalRate > 0 {
		ra, ok := s.globalBucket.take(cost, lim.GlobalRate, lim.GlobalBurst, now)
		if !ok {
			if charged > 0 {
				cl.bucket.refund(charged)
			}
			return ra, false
		}
	}
	return 0, true
}

// SetLimits installs new admission limits atomically; in-flight and
// future requests see them on their next admission check, with no
// session or connection disturbance. The zero Limits disables
// admission control.
func (s *Server) SetLimits(l Limits) {
	l = l.withDefaults()
	s.limits.Store(&l)
}

// Limits returns the currently installed admission limits.
func (s *Server) Limits() Limits {
	if p := s.limits.Load(); p != nil {
		return *p
	}
	return Limits{}
}

// ThrottledError is the error returned for admission-control
// rejections: errors.Is(err, ErrThrottled) matches, and RetryAfter
// carries the server's hint for when the client's bucket will cover
// the request.
type ThrottledError struct {
	RetryAfter time.Duration
}

func (e *ThrottledError) Error() string {
	return fmt.Sprintf("serve: client throttled (retry after %s)", e.RetryAfter)
}

// Is makes errors.Is(err, ErrThrottled) match.
func (e *ThrottledError) Is(target error) bool { return target == ErrThrottled }

// throttleDelay extracts the server's retry-after hint, falling back
// when the error carries none.
func throttleDelay(err error, fallback time.Duration) time.Duration {
	var te *ThrottledError
	if errors.As(err, &te) && te.RetryAfter > 0 {
		return te.RetryAfter
	}
	return fallback
}
