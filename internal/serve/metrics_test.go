package serve

import (
	"io"
	"net/http"
	"regexp"
	"strconv"
	"strings"
	"testing"
	"time"

	"pathtrace/internal/metrics"
	"pathtrace/internal/predictor"
	"pathtrace/internal/trace"
)

// scrape fetches /metrics and returns the body.
func scrape(t *testing.T, srv *Server) string {
	t.Helper()
	resp, err := http.Get("http://" + srv.AdminAddr().String() + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("/metrics status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != metrics.ContentType {
		t.Errorf("/metrics Content-Type = %q, want %q", ct, metrics.ContentType)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}

// metricValue extracts the value of the first sample line matching the
// series prefix (name plus any label subset, e.g. `ntpd_requests_total`
// or `ntpd_shard_traces_total{shard="0"}`).
func metricValue(t *testing.T, body, series string) float64 {
	t.Helper()
	for _, l := range strings.Split(body, "\n") {
		if !strings.HasPrefix(l, series) {
			continue
		}
		i := strings.LastIndexByte(l, ' ')
		v, err := strconv.ParseFloat(l[i+1:], 64)
		if err != nil {
			t.Fatalf("unparseable sample %q: %v", l, err)
		}
		return v
	}
	t.Fatalf("series %s not found in /metrics output:\n%s", series, body)
	return 0
}

// TestMetricsEndpoint drives real traffic through a served session and
// asserts that /metrics exposes a well-formed Prometheus document whose
// counters and per-shard op histograms reflect the traffic.
func TestMetricsEndpoint(t *testing.T) {
	s := captureTestStream(t)
	srv := newTestServer(t, Config{AdminAddr: "127.0.0.1:0", Shards: 2})

	cl, err := Dial(srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	shardID, _, err := cl.Open(1)
	if err != nil {
		t.Fatal(err)
	}
	batch := make([]trace.Trace, 0, 500)
	cur := s.Cursor()
	var tr trace.Trace
	for len(batch) < cap(batch) && cur.Next(&tr) {
		batch = append(batch, tr)
	}
	if _, _, err := cl.Update(1, batch); err != nil {
		t.Fatal(err)
	}
	// The shard publishes its snapshot after completing each task, and
	// Update's response is sent from the task callback, so by the time
	// the client returns the counters below are already final.
	body := scrape(t, srv)

	// Structure: every sample line matches the exposition grammar.
	line := regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_][a-zA-Z0-9_]*="[^"]*"(,[a-zA-Z_][a-zA-Z0-9_]*="[^"]*")*\})? \S+$`)
	for _, l := range strings.Split(strings.TrimRight(body, "\n"), "\n") {
		if strings.HasPrefix(l, "#") {
			continue
		}
		if !line.MatchString(l) {
			t.Errorf("malformed exposition line: %q", l)
		}
	}

	shard := strconv.Itoa(int(shardID))
	if v := metricValue(t, body, `ntpd_shard_traces_total{shard="`+shard+`"}`); v != float64(len(batch)) {
		t.Errorf("shard traces = %v, want %d", v, len(batch))
	}
	if v := metricValue(t, body, `ntpd_predictor_rounds_total{shard="`+shard+`"}`); v != float64(len(batch)) {
		t.Errorf("predictor rounds = %v, want %d", v, len(batch))
	}
	correct := metricValue(t, body, `ntpd_predictor_correct_total{shard="`+shard+`"}`)
	misses := metricValue(t, body, `ntpd_predictor_miss_total{shard="`+shard+`"}`)
	if correct+misses != float64(len(batch)) {
		t.Errorf("correct (%v) + misses (%v) != rounds (%d)", correct, misses, len(batch))
	}
	// The Recorder mirrors the predictor's own counters exactly.
	st, err := cl.Stats(1)
	if err != nil {
		t.Fatal(err)
	}
	if uint64(correct) != st.Session.Correct {
		t.Errorf("/metrics correct = %v, OpStats says %d", correct, st.Session.Correct)
	}

	// Per-shard, per-op latency histograms. Re-scrape so the stats op
	// issued just above is included.
	body = scrape(t, srv)
	for _, op := range []string{"open", "update", "stats"} {
		series := `ntpd_shard_op_seconds_count{op="` + op + `",shard="` + shard + `"}`
		if v := metricValue(t, body, series); v < 1 {
			t.Errorf("%s = %v, want >= 1", series, v)
		}
	}
	if sum := metricValue(t, body, `ntpd_shard_op_seconds_sum{op="update",shard="`+shard+`"}`); sum <= 0 {
		t.Errorf("update op latency sum = %v, want > 0", sum)
	}

	// Request counters moved: open + update + stats = 3 frames.
	if v := metricValue(t, body, "ntpd_requests_total"); v < 3 {
		t.Errorf("ntpd_requests_total = %v, want >= 3", v)
	}
}

// TestShadowEvalMetrics serves live traffic with a shadow backend and
// asserts the per-backend accuracy families: the primary's counters
// (role="primary") mirror the served predictor exactly, the shadow's
// (role="shadow") move by the same number of rounds, and the session's
// own stats stay bit-identical to an in-process replay — shadows
// measure, they never touch the serving path.
func TestShadowEvalMetrics(t *testing.T) {
	s := captureTestStream(t)
	srv := newTestServer(t, Config{AdminAddr: "127.0.0.1:0", Shards: 1, Shadows: []string{"tage"}})

	// In-process reference of the primary: shadows must not perturb it.
	ref := predictor.MustNew(headlineConfig())
	// Shadow reference: the same stream through a TAGE predictor of the
	// same geometry, which is exactly what the shard fans out to.
	shadowCfg := headlineConfig()
	shadowCfg.Backend = "tage"
	shadowRef := predictor.MustNew(shadowCfg)

	cl, err := Dial(srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if _, _, err := cl.Open(1); err != nil {
		t.Fatal(err)
	}
	batch := make([]trace.Trace, 0, 256)
	cur := s.Cursor()
	var tr trace.Trace
	rounds := 0
	for i := 0; i < 8; i++ {
		batch = batch[:0]
		for len(batch) < cap(batch) && cur.Next(&tr) {
			batch = append(batch, tr)
		}
		if len(batch) == 0 {
			break
		}
		if _, _, err := cl.Update(1, batch); err != nil {
			t.Fatal(err)
		}
		for j := range batch {
			ref.Predict()
			ref.Update(&batch[j])
			shadowRef.Predict()
			shadowRef.Update(&batch[j])
		}
		rounds += len(batch)
	}

	st, err := cl.Stats(1)
	if err != nil {
		t.Fatal(err)
	}
	if !st.Session.Equal(ref.Stats()) {
		t.Errorf("shadowed session stats %+v, want bit-identical %+v", st.Session, ref.Stats())
	}

	body := scrape(t, srv)
	primary := `ntpd_backend_rounds_total{backend="hybrid",role="primary",shard="0"}`
	if v := metricValue(t, body, primary); v != float64(rounds) {
		t.Errorf("%s = %v, want %d", primary, v, rounds)
	}
	if v := metricValue(t, body, `ntpd_backend_correct_total{backend="hybrid",role="primary",shard="0"}`); v != float64(ref.Stats().Correct) {
		t.Errorf("primary backend correct = %v, want %d", v, ref.Stats().Correct)
	}
	shadow := `ntpd_backend_rounds_total{backend="tage",role="shadow",shard="0"}`
	if v := metricValue(t, body, shadow); v != float64(rounds) {
		t.Errorf("%s = %v, want %d", shadow, v, rounds)
	}
	sc := metricValue(t, body, `ntpd_backend_correct_total{backend="tage",role="shadow",shard="0"}`)
	sm := metricValue(t, body, `ntpd_backend_miss_total{backend="tage",role="shadow",shard="0"}`)
	if sc+sm != float64(rounds) {
		t.Errorf("shadow correct (%v) + miss (%v) != rounds (%d)", sc, sm, rounds)
	}
	// The shadow's counters are the real TAGE accuracy on this stream.
	if uint64(sc) != shadowRef.Stats().Correct {
		t.Errorf("shadow correct = %v, in-process tage says %d", sc, shadowRef.Stats().Correct)
	}
}

// TestServerRejectsBadShadows pins the construction-time validation:
// unknown and duplicate shadow names fail NewServer, not the first
// session open.
func TestServerRejectsBadShadows(t *testing.T) {
	if _, err := NewServer(Config{Addr: "127.0.0.1:0", Predictor: headlineConfig(), Shadows: []string{"nope"}}); err == nil {
		t.Error("unknown shadow backend accepted")
	}
	if _, err := NewServer(Config{Addr: "127.0.0.1:0", Predictor: headlineConfig(), Shadows: []string{"tage", "tage"}}); err == nil {
		t.Error("duplicate shadow backend accepted")
	}
}

// TestLoadgenHistogramReport runs a real loadgen pass and pins the
// regression the histogram rewrite fixes: quantiles must be ordered,
// within one bucket above the true samples (in particular p99 can no
// longer come back below p50 on small request counts), and the report's
// counters must agree with the histogram.
func TestLoadgenHistogramReport(t *testing.T) {
	s := captureTestStream(t)
	srv := newTestServer(t, Config{Shards: 2})

	reg := metrics.NewRegistry()
	rep, err := RunLoadgen(nil, LoadgenConfig{
		Addr:      srv.Addr().String(),
		Stream:    s,
		Conns:     2,
		Sessions:  4,
		Batch:     256,
		Verify:    true,
		Predictor: headlineConfig(),
		Metrics:   reg,
	})
	if err != nil {
		t.Fatalf("RunLoadgen: %v", err)
	}
	if !rep.Verified {
		t.Error("loadgen did not verify server stats")
	}
	if rep.Latency == nil || rep.Latency.Count() != rep.Requests {
		t.Fatalf("latency histogram count = %v, want one sample per request (%d)",
			rep.Latency.Count(), rep.Requests)
	}
	if rep.Requests == 0 {
		t.Fatal("loadgen made no requests")
	}
	if !(rep.P50 <= rep.P90 && rep.P90 <= rep.P99 && rep.P99 <= rep.Max) {
		t.Errorf("quantiles not ordered: p50 %v p90 %v p99 %v max %v",
			rep.P50, rep.P90, rep.P99, rep.Max)
	}
	if rep.P50 <= 0 || rep.Max <= 0 {
		t.Errorf("degenerate latency report: p50 %v max %v", rep.P50, rep.Max)
	}
	// Max is tracked exactly, and nearest-rank quantiles never exceed it.
	if rep.Max != time.Duration(rep.Latency.Max()) {
		t.Errorf("report max %v != histogram max %v", rep.Max, time.Duration(rep.Latency.Max()))
	}

	// The run's histogram is also registered for export.
	var b strings.Builder
	if err := reg.Render(&b); err != nil {
		t.Fatal(err)
	}
	if v := metricValue(t, b.String(), "loadgen_rtt_seconds_count"); v != float64(rep.Requests) {
		t.Errorf("exported loadgen_rtt_seconds_count = %v, want %d", v, rep.Requests)
	}
}
