package serve

import (
	"strconv"
	"time"

	"pathtrace/internal/metrics"
	"pathtrace/internal/predictor"
)

// predRecorder adapts a shard's predictor event stream onto registry
// counters. One recorder is shared by every session on the shard — the
// shard goroutine is the only writer, and the counters are atomics, so
// the admin listener reads them without coordination. Record is a
// handful of atomic adds: nothing allocates, keeping the per-trace cost
// of instrumentation below the noise floor of the predict loop.
type predRecorder struct {
	rounds    *metrics.Counter
	correct   *metrics.Counter
	misses    *metrics.Counter
	cold      *metrics.Counter
	secondary *metrics.Counter
	replaced  *metrics.Counter

	// backend mirrors rounds/correct/misses under the per-backend
	// accuracy families (role="primary"), so the primary and its shadows
	// are directly comparable on one dashboard axis.
	backend backendRec
}

func (r *predRecorder) Record(ev predictor.Event) {
	r.backend.Record(ev)
	r.rounds.Inc()
	if ev&predictor.EvCorrect != 0 {
		r.correct.Inc()
	} else {
		r.misses.Inc()
	}
	if ev&predictor.EvCold != 0 {
		r.cold.Inc()
	}
	if ev&predictor.EvFromSecondary != 0 {
		r.secondary.Inc()
	}
	if ev&predictor.EvReplaced != 0 {
		r.replaced.Inc()
	}
}

// backendRec is the per-backend accuracy recorder behind the
// ntpd_backend_* families. The primary embeds one (role="primary");
// every shadow backend gets its own (role="shadow") and its sessions'
// evaluation predictors report into it via Config.Recorder.
type backendRec struct {
	rounds  *metrics.Counter
	correct *metrics.Counter
	misses  *metrics.Counter
}

func (r *backendRec) Record(ev predictor.Event) {
	r.rounds.Inc()
	if ev&predictor.EvCorrect != 0 {
		r.correct.Inc()
	} else {
		r.misses.Inc()
	}
}

func newBackendRec(reg *metrics.Registry, backend, role, shard string) *backendRec {
	l := metrics.Labels{"backend": backend, "role": role, "shard": shard}
	return &backendRec{
		rounds:  reg.Counter("ntpd_backend_rounds_total", "Predict/Update rounds evaluated per backend.", l),
		correct: reg.Counter("ntpd_backend_correct_total", "Correct predictions per backend.", l),
		misses:  reg.Counter("ntpd_backend_miss_total", "Mispredictions per backend (incl. cold).", l),
	}
}

// shardMetrics is the per-shard instrumentation bundle: one latency
// histogram per request op plus the predictor event recorder. Built at
// server startup; the shard loop only touches pre-registered atomics.
type shardMetrics struct {
	opSeconds [OpUpdateBatch + 1]*metrics.Histogram // indexed by op byte
	rec       predRecorder

	// Batch-shape instrumentation: how many traces each batch frame
	// carried, and how many batch frames arrived. Together with the
	// trace counters they answer the capacity question — is the fleet
	// sending batches big enough to amortize the frame and queue costs?
	batchSize   *metrics.Histogram
	batchFrames *metrics.Counter

	// shadowRec holds one accuracy recorder per shadow backend; the
	// shard wires it into each session's shadow predictors.
	shadowRec map[string]*backendRec
}

// opNames maps request op bytes to their metric label values.
// (opCheckpoint is internal and unmeasured: it is bulk work on the
// shard goroutine, not a request.)
var opNames = [OpUpdateBatch + 1]string{
	OpOpen:         "open",
	OpPredict:      "predict",
	OpUpdate:       "update",
	OpStats:        "stats",
	OpSnapshot:     "snapshot",
	OpRestore:      "restore",
	OpPredictBatch: "predict_batch",
	OpUpdateBatch:  "update_batch",
}

func newShardMetrics(reg *metrics.Registry, shardID int, primary string, shadows []string) *shardMetrics {
	shard := strconv.Itoa(shardID)
	m := &shardMetrics{}
	for op, name := range opNames {
		if name == "" {
			continue
		}
		m.opSeconds[op] = reg.Histogram("ntpd_shard_op_seconds",
			"Shard-side request processing latency by op.", 1e-9,
			metrics.Labels{"shard": shard, "op": name})
	}
	m.batchSize = reg.Histogram("ntpd_batch_size",
		"Traces carried per batch frame.", 1,
		metrics.Labels{"shard": shard})
	m.batchFrames = reg.Counter("ntpd_batch_frames_total",
		"Batch frames (OpPredictBatch/OpUpdateBatch) processed.",
		metrics.Labels{"shard": shard})
	l := metrics.Labels{"shard": shard}
	m.rec = predRecorder{
		rounds:    reg.Counter("ntpd_predictor_rounds_total", "Predict/Update rounds served.", l),
		correct:   reg.Counter("ntpd_predictor_correct_total", "Correct predictions served.", l),
		misses:    reg.Counter("ntpd_predictor_miss_total", "Mispredictions served (incl. cold).", l),
		cold:      reg.Counter("ntpd_predictor_cold_total", "Rounds with no valid prediction.", l),
		secondary: reg.Counter("ntpd_predictor_secondary_total", "Predictions supplied by the hybrid secondary table.", l),
		replaced:  reg.Counter("ntpd_predictor_replacements_total", "Trained table entries displaced during training.", l),
		backend:   *newBackendRec(reg, primary, "primary", shard),
	}
	if len(shadows) > 0 {
		m.shadowRec = make(map[string]*backendRec, len(shadows))
		for _, name := range shadows {
			m.shadowRec[name] = newBackendRec(reg, name, "shadow", shard)
		}
	}
	return m
}

// observe records one request's shard-side processing time.
func (m *shardMetrics) observe(op uint8, d time.Duration) {
	if m == nil {
		return
	}
	if int(op) < len(m.opSeconds) && m.opSeconds[op] != nil {
		m.opSeconds[op].ObserveDuration(d)
	}
}

// observeBatch records one batch frame's trace count. Nil-safe like
// observe, for tests that build shards without metrics.
func (m *shardMetrics) observeBatch(n int) {
	if m == nil {
		return
	}
	m.batchFrames.Inc()
	m.batchSize.Observe(int64(n))
}

// registerMetrics wires the server's pre-existing atomic counters into
// the registry as render-time reads, so /metrics and /varz always agree
// and the data plane is untouched.
func (s *Server) registerMetrics() {
	reg := s.reg
	reg.GaugeFunc("ntpd_uptime_seconds", "Seconds since the server started.", nil,
		func() float64 { return time.Since(s.start).Seconds() })
	reg.GaugeFunc("ntpd_draining", "1 while the server is draining, else 0.", nil,
		func() float64 {
			if s.draining.Load() {
				return 1
			}
			return 0
		})
	reg.CounterFunc("ntpd_connections_accepted_total", "TCP connections accepted.", nil,
		func() uint64 { return s.counters.Accepted.Load() })
	reg.GaugeFunc("ntpd_connections_active", "TCP connections currently open.", nil,
		func() float64 { return float64(s.counters.Active.Load()) })
	reg.CounterFunc("ntpd_requests_total", "Frames parsed into requests.", nil,
		func() uint64 { return s.counters.Requests.Load() })
	reg.CounterFunc("ntpd_bad_frames_total", "Connections dropped on malformed frames.", nil,
		func() uint64 { return s.counters.BadFrames.Load() })
	reg.CounterFunc("ntpd_drain_rejects_total", "Requests rejected with ErrDraining.", nil,
		func() uint64 { return s.counters.DrainRejects.Load() })
	reg.CounterFunc("ntpd_throttled_total", "Requests rejected by admission control (ErrThrottled).", nil,
		func() uint64 { return s.counters.Throttled.Load() })
	reg.GaugeFunc("ntpd_client_tags", "Distinct client tags with accounting state.", nil,
		func() float64 { return float64(s.clients.len()) })

	// Crash-safety counters. Registered unconditionally — even with no
	// checkpoint directory or handoff peer they render as explicit
	// zeros, so dashboards and smoke greps never miss them.
	reg.GaugeFunc("ntpd_checkpoint_restored_sessions", "Sessions restored from checkpoints at startup.", nil,
		func() float64 { return float64(s.counters.RestoredSessions.Load()) })
	reg.CounterFunc("ntpd_checkpoint_corrupt_total", "Checkpoint files rejected as corrupt or incompatible.", nil,
		func() uint64 { return s.counters.CorruptSnapshots.Load() })
	reg.CounterFunc("ntpd_checkpoint_written_total", "Checkpoint files persisted.", nil,
		func() uint64 {
			if s.ckpt == nil {
				return 0
			}
			return s.ckpt.written.Load()
		})
	reg.CounterFunc("ntpd_checkpoint_write_errors_total", "Checkpoint writes that failed.", nil,
		func() uint64 {
			if s.ckpt == nil {
				return 0
			}
			return s.ckpt.writeErrs.Load()
		})
	reg.CounterFunc("ntpd_checkpoint_dropped_total", "Checkpoint frames dropped because the writer was behind.", nil,
		func() uint64 {
			if s.ckpt == nil {
				return 0
			}
			return s.ckpt.dropped.Load()
		})
	reg.CounterFunc("ntpd_handoff_sessions_total", "Sessions streamed to the handoff peer at drain.", nil,
		func() uint64 { return s.counters.HandoffSessions.Load() })
	reg.CounterFunc("ntpd_handoff_retry_total", "Handoff attempts that had to be retried.", nil,
		func() uint64 { return s.counters.HandoffRetries.Load() })
	reg.CounterFunc("ntpd_handoff_failed_total", "Sessions the handoff peer never accepted.", nil,
		func() uint64 { return s.counters.HandoffFailed.Load() })
	reg.CounterFunc("ntpd_drain_spilled_sessions_total", "Sessions spilled to the checkpoint dir at drain.", nil,
		func() uint64 { return s.counters.SpilledSessions.Load() })
	reg.CounterFunc("ntpd_drain_lost_sessions_total", "Sessions lost at drain (no peer, no dir, or writes failed).", nil,
		func() uint64 { return s.counters.LostSessions.Load() })

	for _, sh := range s.shards {
		sh := sh
		l := metrics.Labels{"shard": strconv.Itoa(sh.id)}
		reg.CounterFunc("ntpd_shard_requests_total", "Requests processed per shard.", l,
			func() uint64 { return sh.counters.Requests.Load() })
		reg.CounterFunc("ntpd_shard_batches_total", "Update batches processed per shard.", l,
			func() uint64 { return sh.counters.Batches.Load() })
		reg.CounterFunc("ntpd_shard_traces_total", "Traces applied per shard.", l,
			func() uint64 { return sh.counters.Traces.Load() })
		reg.CounterFunc("ntpd_shard_overload_rejects_total", "Requests rejected with ErrOverloaded per shard.", l,
			func() uint64 { return sh.counters.Overloads.Load() })
		reg.CounterFunc("ntpd_snapshot_ops_total", "Session snapshot frames served per shard.", l,
			func() uint64 { return sh.counters.Snapshots.Load() })
		reg.CounterFunc("ntpd_snapshot_restores_total", "Sessions installed via OpRestore per shard.", l,
			func() uint64 { return sh.counters.Restores.Load() })
		reg.CounterFunc("ntpd_snapshot_restore_rejects_total", "OpRestore frames rejected per shard.", l,
			func() uint64 { return sh.counters.RestoreRejects.Load() })
		reg.CounterFunc("ntpd_update_dups_total", "Duplicate update sequences answered from cache per shard.", l,
			func() uint64 { return sh.counters.DupUpdates.Load() })
		reg.GaugeFunc("ntpd_shard_queue_depth", "Tasks waiting in the shard queue.", l,
			func() float64 { return float64(len(sh.queue)) })
		reg.GaugeFunc("ntpd_shard_sessions", "Sessions owned by the shard.", l,
			func() float64 {
				_, n := sh.snapshot()
				return float64(n)
			})
	}
}
