package serve

import (
	"strconv"
	"time"

	"pathtrace/internal/metrics"
	"pathtrace/internal/predictor"
)

// predRecorder adapts a shard's predictor event stream onto registry
// counters. One recorder is shared by every session on the shard — the
// shard goroutine is the only writer, and the counters are atomics, so
// the admin listener reads them without coordination. Record is a
// handful of atomic adds: nothing allocates, keeping the per-trace cost
// of instrumentation below the noise floor of the predict loop.
type predRecorder struct {
	rounds    *metrics.Counter
	correct   *metrics.Counter
	misses    *metrics.Counter
	cold      *metrics.Counter
	secondary *metrics.Counter
	replaced  *metrics.Counter
}

func (r *predRecorder) Record(ev predictor.Event) {
	r.rounds.Inc()
	if ev&predictor.EvCorrect != 0 {
		r.correct.Inc()
	} else {
		r.misses.Inc()
	}
	if ev&predictor.EvCold != 0 {
		r.cold.Inc()
	}
	if ev&predictor.EvFromSecondary != 0 {
		r.secondary.Inc()
	}
	if ev&predictor.EvReplaced != 0 {
		r.replaced.Inc()
	}
}

// shardMetrics is the per-shard instrumentation bundle: one latency
// histogram per request op plus the predictor event recorder. Built at
// server startup; the shard loop only touches pre-registered atomics.
type shardMetrics struct {
	opSeconds [OpStats + 1]*metrics.Histogram // indexed by op byte
	rec       predRecorder
}

// opNames maps request op bytes to their metric label values.
var opNames = [OpStats + 1]string{
	OpOpen:    "open",
	OpPredict: "predict",
	OpUpdate:  "update",
	OpStats:   "stats",
}

func newShardMetrics(reg *metrics.Registry, shardID int) *shardMetrics {
	shard := strconv.Itoa(shardID)
	m := &shardMetrics{}
	for op, name := range opNames {
		if name == "" {
			continue
		}
		m.opSeconds[op] = reg.Histogram("ntpd_shard_op_seconds",
			"Shard-side request processing latency by op.", 1e-9,
			metrics.Labels{"shard": shard, "op": name})
	}
	l := metrics.Labels{"shard": shard}
	m.rec = predRecorder{
		rounds:    reg.Counter("ntpd_predictor_rounds_total", "Predict/Update rounds served.", l),
		correct:   reg.Counter("ntpd_predictor_correct_total", "Correct predictions served.", l),
		misses:    reg.Counter("ntpd_predictor_miss_total", "Mispredictions served (incl. cold).", l),
		cold:      reg.Counter("ntpd_predictor_cold_total", "Rounds with no valid prediction.", l),
		secondary: reg.Counter("ntpd_predictor_secondary_total", "Predictions supplied by the hybrid secondary table.", l),
		replaced:  reg.Counter("ntpd_predictor_replacements_total", "Trained table entries displaced during training.", l),
	}
	return m
}

// observe records one request's shard-side processing time.
func (m *shardMetrics) observe(op uint8, d time.Duration) {
	if m == nil {
		return
	}
	if int(op) < len(m.opSeconds) && m.opSeconds[op] != nil {
		m.opSeconds[op].ObserveDuration(d)
	}
}

// registerMetrics wires the server's pre-existing atomic counters into
// the registry as render-time reads, so /metrics and /varz always agree
// and the data plane is untouched.
func (s *Server) registerMetrics() {
	reg := s.reg
	reg.GaugeFunc("ntpd_uptime_seconds", "Seconds since the server started.", nil,
		func() float64 { return time.Since(s.start).Seconds() })
	reg.GaugeFunc("ntpd_draining", "1 while the server is draining, else 0.", nil,
		func() float64 {
			if s.draining.Load() {
				return 1
			}
			return 0
		})
	reg.CounterFunc("ntpd_connections_accepted_total", "TCP connections accepted.", nil,
		func() uint64 { return s.counters.Accepted.Load() })
	reg.GaugeFunc("ntpd_connections_active", "TCP connections currently open.", nil,
		func() float64 { return float64(s.counters.Active.Load()) })
	reg.CounterFunc("ntpd_requests_total", "Frames parsed into requests.", nil,
		func() uint64 { return s.counters.Requests.Load() })
	reg.CounterFunc("ntpd_bad_frames_total", "Connections dropped on malformed frames.", nil,
		func() uint64 { return s.counters.BadFrames.Load() })
	reg.CounterFunc("ntpd_drain_rejects_total", "Requests rejected with ErrDraining.", nil,
		func() uint64 { return s.counters.DrainRejects.Load() })

	for _, sh := range s.shards {
		sh := sh
		l := metrics.Labels{"shard": strconv.Itoa(sh.id)}
		reg.CounterFunc("ntpd_shard_requests_total", "Requests processed per shard.", l,
			func() uint64 { return sh.counters.Requests.Load() })
		reg.CounterFunc("ntpd_shard_batches_total", "Update batches processed per shard.", l,
			func() uint64 { return sh.counters.Batches.Load() })
		reg.CounterFunc("ntpd_shard_traces_total", "Traces applied per shard.", l,
			func() uint64 { return sh.counters.Traces.Load() })
		reg.CounterFunc("ntpd_shard_overload_rejects_total", "Requests rejected with ErrOverloaded per shard.", l,
			func() uint64 { return sh.counters.Overloads.Load() })
		reg.GaugeFunc("ntpd_shard_queue_depth", "Tasks waiting in the shard queue.", l,
			func() float64 { return float64(len(sh.queue)) })
		reg.GaugeFunc("ntpd_shard_sessions", "Sessions owned by the shard.", l,
			func() float64 {
				_, n := sh.snapshot()
				return float64(n)
			})
	}
}
