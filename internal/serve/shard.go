package serve

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"pathtrace/internal/faults"
	"pathtrace/internal/predictor"
	"pathtrace/internal/snapshot"
)

// session is one client prediction stream: a predictor of the server's
// configuration, owned by exactly one shard and touched only on that
// shard's goroutine. Per-session predictors are what make serving
// transparent to prediction: a session's predictor sees exactly the
// trace sequence the client sent, in order, with no cross-session
// interleaving, so its stats are bit-identical to an in-process replay.
type session struct {
	id uint64
	p  predictor.NextTracePredictor

	// shadows are the session's evaluation-only contender predictors:
	// every applied update also trains them, but only p ever answers
	// Predict, and only p is snapshotted. They exist to measure — their
	// accuracy flows into the per-backend metric families — so losing
	// them (restore on another process, crash) costs a warm-up, never
	// correctness.
	shadows []shadowPred

	// Exactly-once bookkeeping: the last applied update sequence and its
	// cached response. A retried sequence (client resend after a lost
	// ack) replays the cached answer instead of re-training the
	// predictor. Zero means no sequenced update has been applied.
	lastSeq     uint64
	lastApplied uint32
	lastCorrect uint32

	// dirty marks state changed since the last checkpoint encode.
	dirty bool
}

// shadowPred is one shadow backend's predictor within a session.
type shadowPred struct {
	name string
	p    predictor.NextTracePredictor
}

// shadowBackend is a shard's template for building session shadows:
// the backend descriptor plus the fully derived config (shadow backend
// name, metrics recorder, no fault injector — shadows measure the
// backend, not the fault plan).
type shadowBackend struct {
	b   predictor.Backend
	cfg predictor.Config
}

// task is one unit of shard work: a parsed request plus the completion
// callback that delivers the shard's answer back to the connection.
// done is invoked exactly once, on the shard goroutine.
type task struct {
	req  request
	done func(resp shardResp)
}

// shardResp is a shard's answer to one request.
type shardResp struct {
	err      error  // nil, or a typed protocol error
	shard    uint32 // OpOpen, OpStats, OpRestore
	sessions uint32 // OpStats
	lastSeq  uint64 // OpOpen
	pred     predictor.Prediction
	skipped  uint32                 // batch ops: already-applied prefix length
	preds    []predictor.Prediction // OpPredictBatch: one per applied trace
	applied  uint32                 // OpUpdate, batch ops
	correct  uint32                 // OpUpdate, batch ops
	sess     predictor.Stats        // OpStats: this session's counters
	agg      predictor.Stats        // OpStats: shard-wide aggregate
	blob     []byte                 // OpSnapshot: the encoded frame
	ckpt     []ckptFrame            // opCheckpoint: dirty sessions, encoded
}

// ckptFrame is one session's encoded snapshot bound for the checkpoint
// writer.
type ckptFrame struct {
	id    uint64
	frame []byte
}

// shardCounters are the shard's externally visible load counters,
// updated atomically so the admin listener never touches predictor
// state.
type shardCounters struct {
	Requests       atomic.Uint64
	Batches        atomic.Uint64
	Traces         atomic.Uint64
	Overloads      atomic.Uint64
	Snapshots      atomic.Uint64 // OpSnapshot frames served
	Restores       atomic.Uint64 // sessions installed via OpRestore
	RestoreRejects atomic.Uint64 // OpRestore frames rejected
	DupUpdates     atomic.Uint64 // duplicate sequences answered from cache
}

// shard owns a set of sessions and processes their requests strictly
// in arrival order on a single goroutine. The queue is the unit of
// backpressure: enqueue never blocks — a full queue is an immediate
// typed overload, pushed back to the client.
type shard struct {
	id       int
	backend  predictor.Backend // resolved primary backend
	cfg      predictor.Config
	fcfg     *faults.Config  // per-session injector template, optional
	shadows  []shadowBackend // shadow-evaluation templates, may be empty
	queue    chan task
	sessions map[uint64]*session
	counters shardCounters
	metrics  *shardMetrics // nil only in tests that build shards directly

	// qmu guards queue liveness: enqueue holds the read side across its
	// send attempt and stop takes the write side before closing, so an
	// enqueue racing a drain is rejected instead of panicking on a send
	// to a closed channel. (The server's shutdown ordering — connections
	// before shards — makes the race unreachable in normal operation;
	// the lock makes it safe even when that ordering is violated.)
	qmu    sync.RWMutex
	closed bool

	// snap mirrors the shard's aggregate predictor stats and session
	// count for the admin listener, which must not wait on the queue.
	// Written only by the shard goroutine, after each task.
	snapMu   sync.Mutex
	snapAgg  predictor.Stats
	snapSess int

	wg sync.WaitGroup
}

func newShard(id int, backend predictor.Backend, cfg predictor.Config, fcfg *faults.Config, shadows []shadowBackend, queueLen int, m *shardMetrics) *shard {
	return &shard{
		id:       id,
		backend:  backend,
		cfg:      cfg,
		fcfg:     fcfg,
		shadows:  shadows,
		queue:    make(chan task, queueLen),
		sessions: make(map[uint64]*session),
		metrics:  m,
	}
}

// start launches the shard goroutine. The shard runs until its queue is
// closed, then finishes whatever was enqueued — the drain guarantee.
func (sh *shard) start() {
	sh.wg.Add(1)
	go func() {
		defer sh.wg.Done()
		for t := range sh.queue {
			t0 := time.Now()
			resp := sh.process(t.req)
			sh.metrics.observe(t.req.op, time.Since(t0))
			t.done(resp)
			sh.publishSnapshot()
		}
	}()
}

// stop closes the queue and waits for the shard goroutine to finish the
// backlog. Safe to call more than once, and safe against concurrent
// enqueue: the write lock waits out in-flight send attempts, and
// enqueues arriving after it are rejected.
func (sh *shard) stop() {
	sh.qmu.Lock()
	if !sh.closed {
		sh.closed = true
		close(sh.queue)
	}
	sh.qmu.Unlock()
	sh.wg.Wait()
}

// enqueue offers a task to the shard without blocking. A full queue is
// the overload condition; the caller replies ErrOverloaded. A stopped
// shard rejects without counting an overload — that is shutdown, not
// backpressure — and the caller's reply (ErrOverloaded) is retryable,
// which is what a racing client should see during a drain.
func (sh *shard) enqueue(t task) bool {
	sh.qmu.RLock()
	defer sh.qmu.RUnlock()
	if sh.closed {
		return false
	}
	select {
	case sh.queue <- t:
		return true
	default:
		sh.counters.Overloads.Add(1)
		return false
	}
}

// process executes one request on the shard goroutine.
func (sh *shard) process(req request) shardResp {
	sh.counters.Requests.Add(1)
	switch req.op {
	case OpOpen:
		return sh.open(req.session)
	case OpPredict:
		s, ok := sh.sessions[req.session]
		if !ok {
			return shardResp{err: ErrUnknownSession}
		}
		return shardResp{pred: s.p.Predict()}
	case OpUpdate:
		s, ok := sh.sessions[req.session]
		if !ok {
			return shardResp{err: ErrUnknownSession}
		}
		return sh.update(s, req)
	case OpUpdateBatch, OpPredictBatch:
		s, ok := sh.sessions[req.session]
		if !ok {
			return shardResp{err: ErrUnknownSession}
		}
		return sh.batch(s, req, req.op == OpPredictBatch)
	case OpSnapshot:
		s, ok := sh.sessions[req.session]
		if !ok {
			return shardResp{err: ErrUnknownSession}
		}
		return sh.snapshotSession(s)
	case OpRestore:
		return sh.restore(req)
	case opCheckpoint:
		return sh.checkpoint()
	case OpStats:
		s, ok := sh.sessions[req.session]
		if !ok {
			return shardResp{err: ErrUnknownSession}
		}
		return shardResp{
			shard:    uint32(sh.id),
			sessions: uint32(len(sh.sessions)),
			sess:     s.p.Stats(),
			agg:      sh.aggregate(),
		}
	default:
		return shardResp{err: ErrBadRequest}
	}
}

// sessionCfg is the predictor configuration for a session on this
// shard: the server's geometry plus the shard's process-local
// attachments (metrics recorder, and a fresh fault injector when the
// server runs an injection plan).
func (sh *shard) sessionCfg() predictor.Config {
	cfg := sh.cfg
	if sh.metrics != nil {
		// Every session on the shard reports into the shard's event
		// counters; the rollup is what operators watch, and the
		// per-session split stays available via OpStats.
		cfg.Recorder = &sh.metrics.rec
	}
	if sh.fcfg != nil {
		// Injectors are not concurrency-safe and their draw streams
		// are stateful; every predictor gets its own, seeded
		// identically, so a served session degrades exactly like an
		// in-process replay under the same fault plan.
		cfg.Faults = faults.New(*sh.fcfg)
	}
	return cfg
}

// open creates the session's predictor (idempotent: reopening an
// existing session is not an error and does not reset it, so a client
// reconnect cannot silently discard trained state). The response
// carries the session's last applied update sequence, so a
// reconnecting client seeds its counter instead of colliding with the
// duplicate detector.
func (sh *shard) open(id uint64) shardResp {
	s, ok := sh.sessions[id]
	if !ok {
		p, err := sh.backend.New(sh.sessionCfg())
		if err != nil {
			return shardResp{err: ErrBadRequest}
		}
		s = &session{id: id, p: p, shadows: sh.newShadows(), dirty: true}
		sh.sessions[id] = s
	}
	return shardResp{shard: uint32(sh.id), lastSeq: s.lastSeq}
}

// newShadows builds one fresh predictor per configured shadow backend.
// Shadow configs are validated at server construction, so a failure
// here cannot happen in a running server; a shadow that does fail is
// simply absent from the session rather than failing the open.
func (sh *shard) newShadows() []shadowPred {
	if len(sh.shadows) == 0 {
		return nil
	}
	out := make([]shadowPred, 0, len(sh.shadows))
	for _, sb := range sh.shadows {
		p, err := sb.b.New(sb.cfg)
		if err != nil {
			continue
		}
		out = append(out, shadowPred{name: sb.b.Name, p: p})
	}
	return out
}

// update runs the strict Predict/Update alternation for each trace in
// the batch — the immediate-update regime of the paper (§4.1), exactly
// as Stream.Replay drives it in process. The batch's correct count is
// read off the predictor's own counters, so it is authoritative for
// every variant (including cost-reduced, where the full ID is not
// stored and an ID comparison would always miss).
//
// A sequenced request matching the last applied sequence is a client
// retry after a lost ack: the cached response is replayed and the
// predictor untouched, which is what keeps retried streams
// bit-identical to uninterrupted ones.
func (sh *shard) update(s *session, req request) shardResp {
	if req.seq != 0 && req.seq == s.lastSeq {
		sh.counters.DupUpdates.Add(1)
		return shardResp{applied: s.lastApplied, correct: s.lastCorrect}
	}
	before := s.p.Stats().Correct
	for i := range req.traces {
		s.p.Predict()
		s.p.Update(&req.traces[i])
	}
	// Shadow fan-out: every shadow backend sees the same trace stream,
	// in the same strict Predict/Update alternation, after the primary
	// has answered. Shadows never touch the response — their accuracy
	// is visible only through the per-backend metric families — and a
	// duplicate-sequence replay (handled above) skips them exactly as it
	// skips the primary, so shadow counters move once per applied trace.
	for _, sp := range s.shadows {
		for i := range req.traces {
			sp.p.Predict()
			sp.p.Update(&req.traces[i])
		}
	}
	sh.counters.Batches.Add(1)
	sh.counters.Traces.Add(uint64(len(req.traces)))
	resp := shardResp{
		applied: uint32(len(req.traces)),
		correct: uint32(s.p.Stats().Correct - before),
	}
	if req.seq != 0 {
		s.lastSeq = req.seq
		s.lastApplied = resp.applied
		s.lastCorrect = resp.correct
	}
	s.dirty = true
	return resp
}

// batch runs one full Predict/Update round per trace through the
// predictor's native batch loop — the serving hot path. Sequences are
// per trace here: the frame covers [startSeq, startSeq+n), and the
// shard has already applied every sequence <= s.lastSeq, so a replayed
// frame (client resend after a lost ack, or a restore from a snapshot
// older than the last ack) skips its already-applied prefix and trains
// only the unseen suffix. That is the batch-granular form of the
// exactly-once guarantee: nothing trains twice, whatever boundary the
// retry lands on. correct covers the applied suffix only.
func (sh *shard) batch(s *session, req request, wantPreds bool) shardResp {
	n := uint64(len(req.traces))
	var skip uint64
	if req.seq != 0 && s.lastSeq >= req.seq {
		skip = s.lastSeq - req.seq + 1
		if skip > n {
			skip = n
		}
		sh.counters.DupUpdates.Add(1)
	}
	fresh := req.traces[skip:]
	var preds []predictor.Prediction
	if wantPreds && len(fresh) > 0 {
		preds = make([]predictor.Prediction, len(fresh))
	}
	correct := predictor.PredictBatch(s.p, fresh, preds)
	// Shadow fan-out, batched like the primary: each shadow sees the
	// same fresh suffix in the same strict alternation.
	for _, sp := range s.shadows {
		predictor.UpdateBatch(sp.p, fresh)
	}
	sh.metrics.observeBatch(len(req.traces))
	if len(fresh) > 0 {
		sh.counters.Batches.Add(1)
		sh.counters.Traces.Add(uint64(len(fresh)))
		s.dirty = true
	}
	if req.seq != 0 && n > 0 {
		if end := req.seq + n - 1; end > s.lastSeq {
			s.lastSeq = end
		}
	}
	return shardResp{
		skipped: uint32(skip),
		applied: uint32(len(fresh)),
		correct: uint32(correct),
		preds:   preds,
	}
}

// exportSession captures a session as a codec-ready snapshot: the
// primary backend's state section stamped with the backend name.
// Shadows are deliberately not captured — they are measurements, not
// state the client can lose. Runs on the shard goroutine (or after the
// shard is stopped, during drain).
func (sh *shard) exportSession(s *session) (*snapshot.Session, error) {
	if !sh.backend.Snapshottable() {
		return nil, predictor.ErrNotSnapshottable
	}
	state, err := sh.backend.Save(s.p)
	if err != nil {
		return nil, err
	}
	return &snapshot.Session{
		ID:          s.id,
		LastSeq:     s.lastSeq,
		LastApplied: s.lastApplied,
		LastCorrect: s.lastCorrect,
		Backend:     sh.backend.Name,
		State:       state,
	}, nil
}

// snapshotSession serializes one session into a checksummed frame.
// Save captures state at a round boundary, which holds by construction
// here: the shard runs complete Predict/Update rounds per request.
func (sh *shard) snapshotSession(s *session) shardResp {
	sess, err := sh.exportSession(s)
	if err != nil {
		return shardResp{err: ErrBadRequest}
	}
	b, err := snapshot.Encode(sess)
	if err != nil {
		return shardResp{err: ErrBadRequest}
	}
	sh.counters.Snapshots.Add(1)
	return shardResp{blob: b}
}

// restore decodes and installs a session snapshot, replacing any
// existing session of the same ID (the frame is authoritative: it is
// the client's — or the draining peer's — last known-good state). The
// frame's saved geometry must match this server's predictor
// configuration; installSnapshot enforces that, so a hostile frame
// cannot size tables beyond what the server already runs.
func (sh *shard) restore(req request) shardResp {
	sess, err := snapshot.Decode(req.blob)
	if err != nil {
		sh.counters.RestoreRejects.Add(1)
		return shardResp{err: ErrBadSnapshot}
	}
	if sess.ID != req.session {
		sh.counters.RestoreRejects.Add(1)
		return shardResp{err: ErrBadSnapshot}
	}
	if err := sh.installSnapshot(sess); err != nil {
		sh.counters.RestoreRejects.Add(1)
		return shardResp{err: ErrBadSnapshot}
	}
	sh.counters.Restores.Add(1)
	return shardResp{shard: uint32(sh.id)}
}

// installSnapshot rebuilds a decoded session and adds it to the shard.
// The frame's backend tag must resolve to a backend of the server's
// snapshot family — a TAGE frame can never install into a hybrid
// server, whatever its bytes claim — and the state then restores
// through that backend's own codec, which enforces the geometry match.
// Shadows restart cold: they are evaluation state, not session state.
// Runs on the shard goroutine, or before the shard starts (warm
// restart).
func (sh *shard) installSnapshot(sess *snapshot.Session) error {
	b, ok := predictor.BackendByName(sess.Backend)
	if !ok || !b.Snapshottable() {
		return fmt.Errorf("serve: snapshot backend %q not restorable", sess.Backend)
	}
	if b.Family != sh.backend.Family {
		return fmt.Errorf("serve: snapshot backend %q (family %q) incompatible with server backend %q (family %q)",
			b.Name, b.Family, sh.backend.Name, sh.backend.Family)
	}
	p, err := b.Restore(sess.State, sh.sessionCfg())
	if err != nil {
		return err
	}
	sh.sessions[sess.ID] = &session{
		id:          sess.ID,
		p:           p,
		shadows:     sh.newShadows(),
		lastSeq:     sess.LastSeq,
		lastApplied: sess.LastApplied,
		lastCorrect: sess.LastCorrect,
		dirty:       true,
	}
	return nil
}

// checkpoint encodes every dirty session for the checkpoint writer and
// clears the dirty marks. Sessions that fail to encode stay dirty and
// are skipped (nothing consumes a partial frame).
func (sh *shard) checkpoint() shardResp {
	var out []ckptFrame
	for _, s := range sh.sessions {
		if !s.dirty {
			continue
		}
		sess, err := sh.exportSession(s)
		if err != nil {
			continue
		}
		b, err := snapshot.Encode(sess)
		if err != nil {
			continue
		}
		s.dirty = false
		out = append(out, ckptFrame{id: s.id, frame: b})
	}
	return shardResp{ckpt: out}
}

// aggregate sums predictor stats across the shard's sessions.
func (sh *shard) aggregate() predictor.Stats {
	var agg predictor.Stats
	for _, s := range sh.sessions {
		agg = agg.Add(s.p.Stats())
	}
	return agg
}

// publishSnapshot refreshes the admin-visible copy of the shard's
// predictor aggregate. Runs on the shard goroutine.
func (sh *shard) publishSnapshot() {
	agg := sh.aggregate()
	n := len(sh.sessions)
	sh.snapMu.Lock()
	sh.snapAgg = agg
	sh.snapSess = n
	sh.snapMu.Unlock()
}

// snapshot returns the last published aggregate without touching
// predictor state.
func (sh *shard) snapshot() (agg predictor.Stats, sessions int) {
	sh.snapMu.Lock()
	defer sh.snapMu.Unlock()
	return sh.snapAgg, sh.snapSess
}

// splitmix64 is the session-to-shard hash: cheap, well mixed, and
// stable across runs (the same session always lands on the same shard
// for a given shard count).
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
