package serve

import (
	"context"
	"testing"
	"time"

	"pathtrace/internal/predictor"
	"pathtrace/internal/stream"
	"pathtrace/internal/trace"
)

// streamTraces materialises the shared test stream into a flat slice.
func streamTraces(t *testing.T) []trace.Trace {
	t.Helper()
	s := captureTestStream(t)
	out := make([]trace.Trace, s.Len())
	for i := range out {
		s.At(i, &out[i])
	}
	return out
}

// TestBatchOpsBitIdentical drives the whole stream through
// OpPredictBatch and requires both the predictions and the final
// session stats to be bit-identical to an in-process scalar replay —
// the wire-level form of the batch-equals-scalar invariant.
func TestBatchOpsBitIdentical(t *testing.T) {
	traces := streamTraces(t)
	srv := newTestServer(t, Config{Shards: 2})

	ref := predictor.MustNew(headlineConfig())
	wantPreds := make([]predictor.Prediction, len(traces))
	for i := range traces {
		wantPreds[i] = ref.Predict()
		ref.Update(&traces[i])
	}

	cl, err := Dial(srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	const session = 7
	if _, _, err := cl.Open(session); err != nil {
		t.Fatal(err)
	}

	got := make([]predictor.Prediction, len(traces))
	const batch = 173 // deliberately odd: boundaries align with nothing
	for off := 0; off < len(traces); off += batch {
		end := min(off+batch, len(traces))
		skipped, applied, _, err := cl.PredictBatch(session, traces[off:end], got[off:end])
		if err != nil {
			t.Fatal(err)
		}
		if skipped != 0 || int(applied) != end-off {
			t.Fatalf("batch at %d: skipped %d applied %d of %d", off, skipped, applied, end-off)
		}
	}
	for i := range wantPreds {
		if got[i] != wantPreds[i] {
			t.Fatalf("prediction %d: server %+v, in-process %+v", i, got[i], wantPreds[i])
		}
	}

	st, err := cl.Stats(session)
	if err != nil {
		t.Fatal(err)
	}
	if !st.Session.Equal(ref.Stats()) {
		t.Errorf("server stats %+v\nin-process  %+v\nnot bit-identical", st.Session, ref.Stats())
	}
}

// TestBatchSuffixDedup exercises the per-trace sequence dedup directly:
// overlapping, fully duplicate, and extending ranges must replay only
// the unseen suffix, leaving the predictor exactly where a
// single-application run would.
func TestBatchSuffixDedup(t *testing.T) {
	traces := streamTraces(t)
	if len(traces) < 300 {
		t.Fatalf("test stream too short: %d traces", len(traces))
	}
	srv := newTestServer(t, Config{Shards: 1})
	cl, err := Dial(srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	const session = 9
	if _, _, err := cl.Open(session); err != nil {
		t.Fatal(err)
	}

	// [1,200] fresh.
	skipped, applied, _, err := cl.UpdateBatchSeq(session, 1, traces[:200])
	if err != nil || skipped != 0 || applied != 200 {
		t.Fatalf("fresh batch: skipped %d applied %d err %v", skipped, applied, err)
	}
	// [101,300]: first half duplicate, second half fresh.
	skipped, applied, _, err = cl.UpdateBatchSeq(session, 101, traces[100:300])
	if err != nil || skipped != 100 || applied != 100 {
		t.Fatalf("overlap batch: skipped %d applied %d err %v", skipped, applied, err)
	}
	// [1,300]: wholly duplicate; nothing may train.
	skipped, applied, _, err = cl.UpdateBatchSeq(session, 1, traces[:300])
	if err != nil || skipped != 300 || applied != 0 {
		t.Fatalf("dup batch: skipped %d applied %d err %v", skipped, applied, err)
	}

	ref := predictor.MustNew(headlineConfig())
	for i := range traces[:300] {
		ref.Predict()
		ref.Update(&traces[i])
	}
	st, err := cl.Stats(session)
	if err != nil {
		t.Fatal(err)
	}
	if !st.Session.Equal(ref.Stats()) {
		t.Errorf("after dedup replays: server stats %+v, want single-application %+v", st.Session, ref.Stats())
	}
}

// TestBatchDedupAcrossReconnect is the crash-shaped version: a client
// that loses its connection after an ack and resends the same batch
// from a fresh connection (seeding its counter from Open's lastSeq)
// must train nothing twice.
func TestBatchDedupAcrossReconnect(t *testing.T) {
	traces := streamTraces(t)
	srv := newTestServer(t, Config{Shards: 1})
	const session = 11
	n := 128

	cl, err := Dial(srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := cl.Open(session); err != nil {
		t.Fatal(err)
	}
	if _, applied, _, err := cl.UpdateBatch(session, traces[:n]); err != nil || int(applied) != n {
		t.Fatalf("first send: applied %d err %v", applied, err)
	}
	cl.Close() // ack received, then the connection dies

	// Reconnect. The pessimistic client assumes the ack was lost and
	// resends the whole batch with its original range.
	cl2, err := Dial(srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer cl2.Close()
	_, lastSeq, err := cl2.Open(session)
	if err != nil {
		t.Fatal(err)
	}
	if lastSeq != uint64(n) {
		t.Fatalf("reopen lastSeq = %d, want %d", lastSeq, n)
	}
	skipped, applied, _, err := cl2.UpdateBatchSeq(session, 1, traces[:n])
	if err != nil || int(skipped) != n || applied != 0 {
		t.Fatalf("resend: skipped %d applied %d err %v", skipped, applied, err)
	}
	// And a half-applied shape: resend the second half plus new work.
	skipped, applied, _, err = cl2.UpdateBatchSeq(session, uint64(n/2+1), traces[n/2:2*n])
	if err != nil || int(skipped) != n/2 || int(applied) != n {
		t.Fatalf("half resend: skipped %d applied %d err %v", skipped, applied, err)
	}

	ref := predictor.MustNew(headlineConfig())
	for i := range traces[:2*n] {
		ref.Predict()
		ref.Update(&traces[i])
	}
	st, err := cl2.Stats(session)
	if err != nil {
		t.Fatal(err)
	}
	if !st.Session.Equal(ref.Stats()) {
		t.Errorf("after reconnect replays: server stats %+v, want %+v", st.Session, ref.Stats())
	}
}

// TestLoadgenBatchOps runs the load generator over the batched op
// (the default) and the scalar fallback, with -verify semantics on.
func TestLoadgenBatchOps(t *testing.T) {
	s := captureTestStream(t)
	for _, scalar := range []bool{false, true} {
		srv := newTestServer(t, Config{Shards: 2})
		rep, err := RunLoadgen(context.Background(), LoadgenConfig{
			Addr: srv.Addr().String(), Stream: s,
			Conns: 2, Sessions: 3, Batch: 64,
			ScalarOps: scalar,
			Verify:    true, Predictor: headlineConfig(),
			SessionBase: 1,
		})
		if err != nil {
			t.Fatalf("scalar=%v: %v", scalar, err)
		}
		if !rep.Verified {
			t.Fatalf("scalar=%v: not verified", scalar)
		}
		if want := uint64(s.Len()) * 3; rep.Traces != want {
			t.Fatalf("scalar=%v: %d traces delivered, want %d", scalar, rep.Traces, want)
		}
		srv.Close()
	}
}

// TestRetryClientBatchSurvivesServerKill is the batched analogue of
// TestRetryClientSurvivesServerKill: UpdateBatch streams ride the
// per-trace suffix dedup through a hard server kill and end
// bit-identical to an uninterrupted replay.
func TestRetryClientBatchSurvivesServerKill(t *testing.T) {
	s := captureTestStream(t)
	want := refStats(t, s)
	srvA := newTestServer(t, Config{Shards: 2})
	srvB := newTestServer(t, Config{Shards: 2})

	rc, err := NewRetryClient(RetryConfig{
		Addrs:         []string{srvA.Addr().String(), srvB.Addr().String()},
		SnapshotEvery: 1,
		Seed:          43,
		BaseBackoff:   2 * time.Millisecond,
		MaxBackoff:    50 * time.Millisecond,
		MaxElapsed:    10 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Close()

	const session, batch = 21, 64
	if _, _, err := rc.Open(session); err != nil {
		t.Fatal(err)
	}
	feed := func(n int, cur *stream.Cursor) int {
		var tr trace.Trace
		buf := make([]trace.Trace, 0, batch)
		sent := 0
		for n < 0 || sent < n {
			buf = buf[:0]
			for len(buf) < batch && cur.Next(&tr) {
				buf = append(buf, tr)
			}
			if len(buf) == 0 {
				break
			}
			skipped, applied, _, err := rc.UpdateBatch(session, buf)
			if err != nil {
				t.Fatalf("batch %d: %v", sent, err)
			}
			if int(skipped)+int(applied) != len(buf) {
				t.Fatalf("batch %d: skipped %d + applied %d of %d", sent, skipped, applied, len(buf))
			}
			sent++
		}
		return sent
	}
	cur := s.Cursor()
	feed(s.Len()/batch/2, cur)

	srvA.Close() // hard kill: no drain, session state on A is lost

	feed(-1, cur)
	st, err := rc.Stats(session)
	if err != nil {
		t.Fatal(err)
	}
	if !st.Session.Equal(want) {
		t.Errorf("post-failover stats %+v, want %+v", st.Session, want)
	}
	if got := srvB.shardFor(session).counters.Restores.Load(); got == 0 {
		t.Error("survivor server saw no restore — failover path not exercised")
	}
}

// FuzzDecodeBatchFrame fuzzes parseRequest with attacker-controlled
// payloads: it must never panic and never hand back more traces than
// the frame's byte count can honestly carry.
func FuzzDecodeBatchFrame(f *testing.F) {
	// Seed with a well-formed OpPredictBatch frame...
	valid := make([]byte, reqHeaderBytes+updateHeaderBytes+2*wireTraceBytes)
	valid[0] = OpPredictBatch
	le.PutUint32(valid[1:], 77)
	le.PutUint64(valid[5:], 1234)
	le.PutUint64(valid[reqHeaderBytes:], 1)
	le.PutUint32(valid[reqHeaderBytes+8:], 2)
	f.Add(valid)
	// ...and hostile shapes: oversized count, wrapping sequence range,
	// truncated body, unknown op.
	huge := append([]byte(nil), valid[:reqHeaderBytes+updateHeaderBytes]...)
	le.PutUint32(huge[reqHeaderBytes+8:], 1<<31)
	f.Add(huge)
	wrap := append([]byte(nil), valid...)
	le.PutUint64(wrap[reqHeaderBytes:], ^uint64(0))
	f.Add(wrap)
	f.Add(valid[:reqHeaderBytes+3])
	f.Add([]byte{0x7F, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0})

	f.Fuzz(func(t *testing.T, payload []byte) {
		req, err := parseRequest(payload)
		if err != nil {
			return
		}
		if len(req.traces) > MaxBatch {
			t.Fatalf("decoded %d traces, above MaxBatch %d", len(req.traces), MaxBatch)
		}
		if len(req.traces)*wireTraceBytes > len(payload) {
			t.Fatalf("decoded %d traces from a %d-byte payload", len(req.traces), len(payload))
		}
		if (req.op == OpPredictBatch || req.op == OpUpdateBatch) && req.seq != 0 && len(req.traces) > 0 {
			if end := req.seq + uint64(len(req.traces)) - 1; end < req.seq {
				t.Fatalf("accepted wrapping seq range %d+%d", req.seq, len(req.traces))
			}
		}
	})
}
