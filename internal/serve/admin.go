package serve

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"time"

	"pathtrace/internal/metrics"
	"pathtrace/internal/predictor"
)

// adminServer is the sidecar HTTP listener: liveness, JSON stats,
// expvar-style counters and the Prometheus exposition, kept off the
// data-plane port so operational probes never compete with prediction
// traffic for the protocol decoder.
type adminServer struct {
	ln  net.Listener
	srv *http.Server
}

func newAdminServer(addr string, s *Server) (*adminServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("serve: admin listen: %w", err)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		if s.draining.Load() {
			http.Error(w, "draining", http.StatusServiceUnavailable)
			return
		}
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/statsz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(s.Stats())
	})
	mux.HandleFunc("/varz", func(w http.ResponseWriter, r *http.Request) {
		// expvar-style flat counter map, one JSON object of numbers.
		st := s.Stats()
		vars := map[string]any{
			"uptime_sec":     st.UptimeSec,
			"conns.accepted": st.Conns.Accepted,
			"conns.active":   st.Conns.Active,
			"requests":       st.Requests,
			"bad_frames":     st.BadFrames,
			"drain_rejects":  st.DrainRejects,
			"throttled":      st.Throttled,
			"client_tags":    len(st.Clients),
			"batches":        st.Batches,
			"traces":         st.Traces,
			"overloads":      st.Overloads,
			"sessions":       st.Sessions,
			"predictions":    st.Predictor.Predictions,
			"mispredictions": st.Predictor.Mispredictions(),
			"miss_rate_pct":  st.MissRatePct,
			"draining":       st.Draining,
		}
		for _, sh := range st.Shard {
			prefix := fmt.Sprintf("shard.%d.", sh.ID)
			vars[prefix+"requests"] = sh.Requests
			vars[prefix+"batches"] = sh.Batches
			vars[prefix+"traces"] = sh.Traces
			vars[prefix+"queue_depth"] = sh.QueueDepth
			vars[prefix+"overloads"] = sh.Overloads
			vars[prefix+"sessions"] = sh.Sessions
			vars[prefix+"miss_rate_pct"] = sh.MissRatePct
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(vars)
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", metrics.ContentType)
		s.reg.Render(w)
	})
	mux.HandleFunc("/limitz", func(w http.ResponseWriter, r *http.Request) {
		// GET reads the active admission limits; POST installs new ones
		// atomically (the hot-reload path — no session or connection is
		// disturbed). The reply is always the now-active limits.
		if r.Method == http.MethodPost {
			var l Limits
			dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<16))
			dec.DisallowUnknownFields()
			if err := dec.Decode(&l); err != nil {
				http.Error(w, fmt.Sprintf("bad limits: %v", err), http.StatusBadRequest)
				return
			}
			if l.PerClientRate < 0 || l.PerClientBurst < 0 || l.GlobalRate < 0 || l.GlobalBurst < 0 {
				http.Error(w, "bad limits: rates and bursts must be >= 0", http.StatusBadRequest)
				return
			}
			s.SetLimits(l)
		} else if r.Method != http.MethodGet {
			http.Error(w, "GET or POST", http.StatusMethodNotAllowed)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(s.Limits())
	})
	// The admin plane is an operational surface exposed beyond localhost
	// in real fleets: without read/idle timeouts a single peer that
	// dribbles header bytes (slowloris) pins a connection and its
	// goroutine forever. Every endpoint answers from memory, so tight
	// bounds cost nothing.
	a := &adminServer{ln: ln, srv: &http.Server{
		Handler:           mux,
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       10 * time.Second,
		WriteTimeout:      30 * time.Second,
		IdleTimeout:       60 * time.Second,
	}}
	go a.srv.Serve(ln)
	return a, nil
}

func (a *adminServer) close() {
	a.srv.Close()
	a.ln.Close()
}

// ShardStats is one shard's externally visible state.
type ShardStats struct {
	ID          int             `json:"id"`
	Sessions    int             `json:"sessions"`
	Requests    uint64          `json:"requests"`
	Batches     uint64          `json:"batches"`
	Traces      uint64          `json:"traces"`
	QueueDepth  int             `json:"queue_depth"`
	QueueCap    int             `json:"queue_cap"`
	Overloads   uint64          `json:"overloads"`
	Predictor   predictor.Stats `json:"predictor"`
	MissRatePct float64         `json:"miss_rate_pct"`
}

// ServerStats is the /statsz document: server-wide counters plus one
// entry per shard.
type ServerStats struct {
	Addr      string   `json:"addr"`
	UptimeSec float64  `json:"uptime_sec"`
	Draining  bool     `json:"draining"`
	Shards    int      `json:"shards"`
	Backend   string   `json:"backend"`
	Shadows   []string `json:"shadows,omitempty"`

	Conns struct {
		Accepted uint64 `json:"accepted"`
		Active   int64  `json:"active"`
	} `json:"conns"`
	Requests     uint64 `json:"requests"`
	BadFrames    uint64 `json:"bad_frames"`
	DrainRejects uint64 `json:"drain_rejects"`
	Throttled    uint64 `json:"throttled"`

	Batches   uint64 `json:"batches"`
	Traces    uint64 `json:"traces"`
	Overloads uint64 `json:"overloads"`
	Sessions  int    `json:"sessions"`

	// Admission control: the active limits and per-client accounting.
	Limits  Limits        `json:"limits"`
	Clients []ClientStats `json:"clients,omitempty"`

	Predictor   predictor.Stats `json:"predictor"`
	MissRatePct float64         `json:"miss_rate_pct"`

	Shard []ShardStats `json:"shard"`
}

// Stats snapshots the server: connection and frame counters, per-shard
// load, and aggregated predictor accuracy. Predictor numbers come from
// each shard's published snapshot, so this never blocks on a shard
// queue.
func (s *Server) Stats() ServerStats {
	var st ServerStats
	st.Addr = s.ln.Addr().String()
	st.UptimeSec = time.Since(s.start).Seconds()
	st.Draining = s.draining.Load()
	st.Shards = len(s.shards)
	st.Backend = s.backend.Name
	st.Shadows = s.cfg.Shadows
	st.Conns.Accepted = s.counters.Accepted.Load()
	st.Conns.Active = s.counters.Active.Load()
	st.Requests = s.counters.Requests.Load()
	st.BadFrames = s.counters.BadFrames.Load()
	st.DrainRejects = s.counters.DrainRejects.Load()
	st.Throttled = s.counters.Throttled.Load()
	st.Limits = s.Limits()
	st.Clients = s.clients.stats()

	for _, sh := range s.shards {
		agg, sessions := sh.snapshot()
		ss := ShardStats{
			ID:          sh.id,
			Sessions:    sessions,
			Requests:    sh.counters.Requests.Load(),
			Batches:     sh.counters.Batches.Load(),
			Traces:      sh.counters.Traces.Load(),
			QueueDepth:  len(sh.queue),
			QueueCap:    cap(sh.queue),
			Overloads:   sh.counters.Overloads.Load(),
			Predictor:   agg,
			MissRatePct: agg.MissRate(),
		}
		st.Batches += ss.Batches
		st.Traces += ss.Traces
		st.Overloads += ss.Overloads
		st.Sessions += ss.Sessions
		st.Predictor = st.Predictor.Add(agg)
		st.Shard = append(st.Shard, ss)
	}
	st.MissRatePct = st.Predictor.MissRate()
	return st
}
