package serve

import (
	"bytes"
	"errors"
	"io"
	"reflect"
	"testing"

	"pathtrace/internal/predictor"
	"pathtrace/internal/trace"
)

func TestTraceWireRoundTrip(t *testing.T) {
	in := trace.Trace{
		ID:        trace.MakeID(0x1234, 0x2b),
		StartPC:   0x1234,
		NextPC:    0x5678,
		Len:       16,
		NumBr:     5,
		Calls:     2,
		EndsInRet: true,
		EndsHalt:  false,
	}
	in.Hash = in.ID.Hash()
	var buf [wireTraceBytes]byte
	putTrace(buf[:], &in)
	var out trace.Trace
	getTrace(buf[:], &out)
	if !reflect.DeepEqual(out, in) {
		t.Errorf("round trip: got %+v, want %+v", out, in)
	}
}

func TestStatsWireRoundTrip(t *testing.T) {
	in := predictor.Stats{
		Predictions: 100, Correct: 90, Cold: 3,
		FromSecondary: 11, AltCorrect: 2, AltPresent: 7,
	}
	var buf [statsBytes]byte
	putStats(buf[:], in)
	if out := getStats(buf[:]); out != in {
		t.Errorf("round trip: got %+v, want %+v", out, in)
	}
}

func TestPredictionWireRoundTrip(t *testing.T) {
	cases := []predictor.Prediction{
		{},
		{Valid: true, ID: trace.MakeID(0x40, 1), Hashed: 0x3ff},
		{Valid: true, AltValid: true, FromSecondary: true,
			ID: trace.MakeID(0x80, 2), Alt: trace.MakeID(0x84, 0)},
	}
	for i, in := range cases {
		var buf [predictionBytes]byte
		putPrediction(buf[:], in)
		if out := getPrediction(buf[:]); out != in {
			t.Errorf("case %d: got %+v, want %+v", i, out, in)
		}
	}
}

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	payloads := [][]byte{{1, 2, 3}, {}, bytes.Repeat([]byte{0xab}, 1000)}
	for _, p := range payloads {
		if err := writeFrame(&buf, p); err != nil {
			t.Fatal(err)
		}
	}
	var scratch []byte
	for i, want := range payloads {
		got, err := readFrame(&buf, scratch)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		scratch = got
		if !bytes.Equal(got, want) {
			t.Errorf("frame %d: got %x, want %x", i, got, want)
		}
	}
	if _, err := readFrame(&buf, scratch); err != io.EOF {
		t.Errorf("after last frame: err = %v, want io.EOF", err)
	}
}

func TestFrameRejectsOversize(t *testing.T) {
	var buf bytes.Buffer
	var hdr [4]byte
	le.PutUint32(hdr[:], MaxFrame+1)
	buf.Write(hdr[:])
	if _, err := readFrame(&buf, nil); !errors.Is(err, ErrFrame) {
		t.Errorf("oversize frame: err = %v, want ErrFrame", err)
	}
}

func TestParseRequestRejectsMalformed(t *testing.T) {
	okUpdate := func(count uint32, extra int) []byte {
		body := make([]byte, reqHeaderBytes+updateHeaderBytes+int(count)*wireTraceBytes+extra)
		body[0] = OpUpdate
		le.PutUint32(body[reqHeaderBytes+8:], count) // count follows the u64 sequence
		return body
	}
	cases := map[string][]byte{
		"empty":        {},
		"short header": {OpOpen, 0, 0},
		"unknown op":   make([]byte, reqHeaderBytes), // op 0x00
		"open with body": func() []byte {
			b := make([]byte, reqHeaderBytes+1)
			b[0] = OpOpen
			return b
		}(),
		"update short body":    okUpdate(2, -wireTraceBytes),
		"update long body":     okUpdate(2, 3),
		"update no count":      func() []byte { b := make([]byte, reqHeaderBytes); b[0] = OpUpdate; return b }(),
		"update batch too big": okUpdate(MaxBatch+1, 0),
	}
	for name, payload := range cases {
		if _, err := parseRequest(payload); !errors.Is(err, ErrFrame) {
			t.Errorf("%s: err = %v, want ErrFrame", name, err)
		}
	}

	// And a well-formed update parses.
	good := okUpdate(2, 0)
	req, err := parseRequest(good)
	if err != nil {
		t.Fatalf("good update: %v", err)
	}
	if req.op != OpUpdate || len(req.traces) != 2 {
		t.Errorf("good update: parsed %+v", req)
	}
}

func TestStatusErrRoundTrip(t *testing.T) {
	for _, err := range []error{nil, ErrOverloaded, ErrDraining, ErrUnknownSession, ErrBadRequest, ErrBadSnapshot} {
		if got := statusErr(statusOf(err)); !errors.Is(got, err) {
			t.Errorf("statusErr(statusOf(%v)) = %v", err, got)
		}
	}
	// Unmapped shard errors surface as bad request.
	if got := statusErr(statusOf(errors.New("boom"))); !errors.Is(got, ErrBadRequest) {
		t.Errorf("unmapped error -> %v, want ErrBadRequest", got)
	}
}
