// Package serve turns the single-process next-trace predictor into a
// network service: a TCP server hosting N predictor shards, a binary
// wire protocol with batched operations, and a load generator that
// replays recorded trace streams (internal/stream) as wire traffic.
//
// The design goal is that serving must not change prediction: a session
// is pinned to one shard, every session owns its own predictor, and a
// shard processes its queue on a single goroutine, so the trace order a
// session's predictor observes over the network is exactly the order of
// the replayed stream. Server-side predictor stats for a session are
// therefore bit-identical to an in-process Stream.Replay of the same
// stream — the property the load generator's -verify mode asserts.
//
// # Wire format
//
// Every frame is a little-endian length-prefixed payload on a plain TCP
// stream:
//
//	frame    := u32 payloadLen | payload            (payloadLen <= MaxFrame)
//	request  := u8 op | u32 reqID | u64 sessionID | body
//	response := u8 op|0x80 | u32 reqID | u8 status | body
//
// Operations and their bodies:
//
//	OpOpen     req:  (empty)
//	           resp: u32 shard | u64 lastSeq
//	OpPredict  req:  (empty)
//	           resp: u8 flags | u64 id | u64 alt | u16 hashed
//	OpUpdate   req:  u64 seq | u32 count | count * trace (24 bytes each)
//	           resp: u32 applied | u32 correct
//	OpStats    req:  (empty)
//	           resp: u32 shard | u32 sessions | session Stats | shard Stats
//	                 (each Stats is 6 * u64: predictions, correct, cold,
//	                 fromSecondary, altCorrect, altPresent)
//	OpSnapshot req:  (empty)
//	           resp: one internal/snapshot frame
//	OpRestore  req:  one internal/snapshot frame
//	           resp: u32 shard
//	OpHello    req:  client tag (1..64 printable ASCII bytes)
//	           resp: (empty)
//
// The batched ops run one full Predict/Update round per trace in a
// single frame and a single shard-queue hop — the serving hot path:
//
//	OpUpdateBatch  req:  u64 startSeq | u32 count | count * trace
//	               resp: u32 skipped | u32 applied | u32 correct
//	OpPredictBatch req:  u64 startSeq | u32 count | count * trace
//	               resp: u32 skipped | u32 applied | u32 correct |
//	                     applied * prediction (19 bytes each; the
//	                     prediction made before traces[skipped+i])
//
// # Exactly-once updates
//
// An Update carries a per-session sequence number. The server remembers
// the last applied sequence and its response; re-sending the same
// sequence (a client retry after a lost ack) returns the cached
// response without re-applying the batch, so crash/retry cycles leave
// the predictor exactly where an uninterrupted run would. Sequence 0
// opts out (no duplicate detection). OpOpen returns the session's last
// applied sequence so a reconnecting client can seed its counter.
//
// The batched ops number every trace: a frame with startSeq s and
// count n covers sequences [s, s+n). On replay after a lost ack the
// shard skips the prefix it has already applied (skipped in the
// response) and trains only the unseen suffix, so a re-sent
// half-applied batch trains nothing twice. correct counts the applied
// suffix only. startSeq 0 opts out, exactly as for OpUpdate. A session
// must stick to one numbering style — OpUpdate's per-frame sequences
// and the batch ops' per-trace sequences do not mix.
//
// # Session snapshots
//
// OpSnapshot serializes a session's complete predictor state into a
// checksummed internal/snapshot frame; OpRestore installs such a frame
// as a (new or replacement) session. Together they are the crash-safety
// primitives: clients re-establish lost sessions from their last acked
// snapshot, and a draining server streams its sessions to a peer.
// Restore validates the frame end to end — checksum, structure, and
// that the saved geometry matches the server's configured predictor —
// and rejects anything else with StatusBadSnapshot, so a corrupt or
// adversarial frame can neither install garbage state nor force large
// allocations.
//
// A trace on the wire carries exactly the fields the predictor consumes
// (identifier, hashed identifier, and the call/return metadata the
// Return History Stack needs), 24 bytes each:
//
//	u64 id | u16 hash | u32 startPC | u32 nextPC |
//	u16 len | u16 calls | u8 numBr | u8 flags (bit0 endsInRet, bit1 endsHalt)
//
// Responses carry a status byte; non-OK statuses map to the typed
// errors ErrOverloaded, ErrDraining, ErrUnknownSession, ErrBadRequest.
// Overload is the backpressure signal: the session's shard queue was
// full, and the client is expected to back off and retry.
//
// # Client identity and admission control
//
// OpHello tags a connection with a client identity; every request on
// the connection is then accounted under that tag (per-client
// request/round/byte/rejection counters on /metrics and /statsz).
// When the server runs with admission limits, work-carrying ops
// (OpPredict, OpUpdate, and the batch ops) are charged against the
// tag's token bucket and the global bucket before they may enter a
// shard queue; a refusal is StatusThrottled and the response body
// carries a u32 retry-after hint in milliseconds — unlike overload,
// throttling tells the client exactly when its bucket will cover the
// request. Control-plane ops (Open, Stats, Snapshot, Restore, Hello)
// are never throttled, so a throttled client can still re-establish
// and observe its sessions.
package serve

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"pathtrace/internal/predictor"
	"pathtrace/internal/snapshot"
	"pathtrace/internal/trace"
)

// Ops. The response op is the request op with the high bit set.
const (
	OpOpen     = 0x01
	OpPredict  = 0x02
	OpUpdate   = 0x03
	OpStats    = 0x04
	OpSnapshot = 0x05
	OpRestore  = 0x06
	// Batched rounds: one frame carries count traces with per-trace
	// sequence numbers; see the package comment for dedup semantics.
	OpPredictBatch = 0x07
	OpUpdateBatch  = 0x08
	// OpHello tags the connection with a client identity (body: the tag,
	// 1..64 printable ASCII bytes). Connection-scoped, handled before the
	// shard queues: every subsequent request on the connection is
	// accounted (and admission-controlled) under the tag. Optional —
	// untagged connections account under the "default" tag.
	OpHello = 0x09

	respBit = 0x80

	// opCheckpoint is an internal pseudo-op enqueued by the server's
	// checkpoint ticker, never parsed off the wire: it asks a shard to
	// encode its dirty sessions on the shard goroutine.
	opCheckpoint = 0xF0
)

// Status codes.
const (
	StatusOK             = 0x00
	StatusOverloaded     = 0x01
	StatusDraining       = 0x02
	StatusUnknownSession = 0x03
	StatusBadRequest     = 0x04
	StatusBadSnapshot    = 0x05
	// StatusThrottled reports an admission-control rejection: the client
	// exceeded its quota (or the server its global cap). The response
	// body carries a u32 retry-after hint in milliseconds.
	StatusThrottled = 0x06
)

// Typed protocol errors, one per non-OK status.
var (
	// ErrOverloaded reports that the session's shard queue was full —
	// the server's backpressure signal. Retryable after backoff.
	ErrOverloaded = errors.New("serve: shard overloaded")
	// ErrDraining reports that the server is shutting down and no
	// longer accepts work. Not retryable on this connection.
	ErrDraining = errors.New("serve: server draining")
	// ErrUnknownSession reports an op on a session that was never
	// opened (or was opened on a different server instance).
	ErrUnknownSession = errors.New("serve: unknown session")
	// ErrBadRequest reports a structurally invalid request.
	ErrBadRequest = errors.New("serve: bad request")
	// ErrBadSnapshot reports an OpRestore frame that failed validation:
	// corrupt, truncated, wrong version, or saved for a predictor
	// geometry other than this server's. Not retryable as-is.
	ErrBadSnapshot = errors.New("serve: bad snapshot")
	// ErrThrottled reports an admission-control rejection: the client's
	// quota (or the global cap) is exhausted. Retryable after the
	// retry-after hint; errors carrying a hint are *ThrottledError and
	// match this sentinel via errors.Is.
	ErrThrottled = errors.New("serve: client throttled")
)

// statusErr maps a wire status to its typed error (nil for StatusOK).
func statusErr(status uint8) error {
	switch status {
	case StatusOK:
		return nil
	case StatusOverloaded:
		return ErrOverloaded
	case StatusDraining:
		return ErrDraining
	case StatusUnknownSession:
		return ErrUnknownSession
	case StatusBadRequest:
		return ErrBadRequest
	case StatusBadSnapshot:
		return ErrBadSnapshot
	case StatusThrottled:
		return ErrThrottled
	default:
		return fmt.Errorf("serve: unknown status 0x%02x", status)
	}
}

// statusOf maps a shard error back to its wire status.
func statusOf(err error) uint8 {
	switch {
	case err == nil:
		return StatusOK
	case errors.Is(err, ErrOverloaded):
		return StatusOverloaded
	case errors.Is(err, ErrDraining):
		return StatusDraining
	case errors.Is(err, ErrUnknownSession):
		return StatusUnknownSession
	case errors.Is(err, ErrBadSnapshot):
		return StatusBadSnapshot
	case errors.Is(err, ErrThrottled):
		return StatusThrottled
	default:
		return StatusBadRequest
	}
}

// Frame and batch bounds. A decoder rejects anything larger before
// allocating: streams cross machines now, so frames are untrusted.
const (
	// MaxBatch bounds the traces in one Update request.
	MaxBatch = 8192
	// MaxFrame bounds a frame payload: the larger of an Update of
	// MaxBatch traces and an OpRestore carrying a full session snapshot
	// (snapshot responses fit under the same bound: the response header
	// is smaller than the request header).
	MaxFrame = max(
		reqHeaderBytes+updateHeaderBytes+MaxBatch*wireTraceBytes,
		reqHeaderBytes+snapshot.MaxEncoded,
	)
)

const (
	reqHeaderBytes    = 1 + 4 + 8 // op, reqID, sessionID
	respHeaderBytes   = 1 + 4 + 1 // op|respBit, reqID, status
	updateHeaderBytes = 8 + 4     // seq, count
	batchRespBytes    = 4 + 4 + 4 // skipped, applied, correct
	openRespBytes     = 4 + 8     // shard, lastSeq
	wireTraceBytes    = 24
	statsBytes        = 6 * 8
)

// ErrFrame reports a malformed or oversized frame; connections that
// produce one are closed (the stream can no longer be trusted to be
// frame-aligned).
var ErrFrame = errors.New("serve: malformed frame")

var le = binary.LittleEndian

// writeFrame writes one length-prefixed payload.
func writeFrame(w io.Writer, payload []byte) error {
	var hdr [4]byte
	le.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// readFrame reads one length-prefixed payload into buf (grown as
// needed) and returns the payload slice. io.EOF is returned unwrapped
// when the stream ends cleanly between frames.
func readFrame(r io.Reader, buf []byte) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if err == io.EOF {
			return nil, io.EOF
		}
		return nil, fmt.Errorf("%w: short header: %v", ErrFrame, err)
	}
	n := le.Uint32(hdr[:])
	if n > MaxFrame {
		return nil, fmt.Errorf("%w: payload %d exceeds %d", ErrFrame, n, MaxFrame)
	}
	if cap(buf) < int(n) {
		buf = make([]byte, n)
	}
	buf = buf[:n]
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, fmt.Errorf("%w: short payload: %v", ErrFrame, err)
	}
	return buf, nil
}

// putTrace encodes the predictor-relevant fields of tr into buf
// (wireTraceBytes long).
func putTrace(buf []byte, tr *trace.Trace) {
	le.PutUint64(buf[0:], uint64(tr.ID))
	le.PutUint16(buf[8:], uint16(tr.Hash))
	le.PutUint32(buf[10:], tr.StartPC)
	le.PutUint32(buf[14:], tr.NextPC)
	le.PutUint16(buf[18:], uint16(tr.Len))
	le.PutUint16(buf[20:], uint16(tr.Calls))
	buf[22] = uint8(tr.NumBr)
	var flags uint8
	if tr.EndsInRet {
		flags |= 1
	}
	if tr.EndsHalt {
		flags |= 2
	}
	buf[23] = flags
}

// getTrace decodes one wire trace into dst. Branches and Mems are nil:
// the predictor does not consume them, and the wire format omits them.
func getTrace(buf []byte, dst *trace.Trace) {
	*dst = trace.Trace{
		ID:        trace.ID(le.Uint64(buf[0:])),
		Hash:      trace.HashedID(le.Uint16(buf[8:])),
		StartPC:   le.Uint32(buf[10:]),
		NextPC:    le.Uint32(buf[14:]),
		Len:       int(le.Uint16(buf[18:])),
		Calls:     int(le.Uint16(buf[20:])),
		NumBr:     int(buf[22]),
		EndsInRet: buf[23]&1 != 0,
		EndsHalt:  buf[23]&2 != 0,
	}
}

// putStats encodes predictor stats (6 u64 counters) into buf.
func putStats(buf []byte, s predictor.Stats) {
	le.PutUint64(buf[0:], s.Predictions)
	le.PutUint64(buf[8:], s.Correct)
	le.PutUint64(buf[16:], s.Cold)
	le.PutUint64(buf[24:], s.FromSecondary)
	le.PutUint64(buf[32:], s.AltCorrect)
	le.PutUint64(buf[40:], s.AltPresent)
}

// getStats decodes predictor stats from buf.
func getStats(buf []byte) predictor.Stats {
	return predictor.Stats{
		Predictions:   le.Uint64(buf[0:]),
		Correct:       le.Uint64(buf[8:]),
		Cold:          le.Uint64(buf[16:]),
		FromSecondary: le.Uint64(buf[24:]),
		AltCorrect:    le.Uint64(buf[32:]),
		AltPresent:    le.Uint64(buf[40:]),
	}
}

// putPrediction encodes a prediction (flags, id, alt, hashed).
func putPrediction(buf []byte, p predictor.Prediction) {
	var flags uint8
	if p.Valid {
		flags |= 1
	}
	if p.AltValid {
		flags |= 2
	}
	if p.FromSecondary {
		flags |= 4
	}
	buf[0] = flags
	le.PutUint64(buf[1:], uint64(p.ID))
	le.PutUint64(buf[9:], uint64(p.Alt))
	le.PutUint16(buf[17:], uint16(p.Hashed))
}

const predictionBytes = 1 + 8 + 8 + 2

// getPrediction decodes a prediction.
func getPrediction(buf []byte) predictor.Prediction {
	return predictor.Prediction{
		Valid:         buf[0]&1 != 0,
		AltValid:      buf[0]&2 != 0,
		FromSecondary: buf[0]&4 != 0,
		ID:            trace.ID(le.Uint64(buf[1:])),
		Alt:           trace.ID(le.Uint64(buf[9:])),
		Hashed:        trace.HashedID(le.Uint16(buf[17:])),
	}
}

// request is a decoded request frame. Traces and blob are freshly
// allocated copies — the connection's read buffer is reused per frame,
// and the shard consumes requests asynchronously.
type request struct {
	op        uint8
	reqID     uint32
	session   uint64
	seq       uint64        // update ops: exactly-once sequence (per-frame for OpUpdate, per-trace start for batch ops), 0 = none
	traces    []trace.Trace // update and batch ops
	blob      []byte        // OpRestore only: the snapshot frame
	client    string        // OpHello only: the client tag (copied)
	wireBytes int           // payload size on the wire, for per-client byte accounting
}

// parseRequest decodes a request payload. The returned request shares
// no memory with payload.
func parseRequest(payload []byte) (request, error) {
	if len(payload) < reqHeaderBytes {
		return request{}, fmt.Errorf("%w: request %d bytes", ErrFrame, len(payload))
	}
	req := request{
		op:        payload[0],
		reqID:     le.Uint32(payload[1:]),
		session:   le.Uint64(payload[5:]),
		wireBytes: len(payload),
	}
	body := payload[reqHeaderBytes:]
	switch req.op {
	case OpOpen, OpPredict, OpStats, OpSnapshot:
		if len(body) != 0 {
			return request{}, fmt.Errorf("%w: op 0x%02x with %d-byte body", ErrFrame, req.op, len(body))
		}
	case OpUpdate, OpUpdateBatch, OpPredictBatch:
		if len(body) < updateHeaderBytes {
			return request{}, fmt.Errorf("%w: update body %d bytes", ErrFrame, len(body))
		}
		req.seq = le.Uint64(body)
		count := le.Uint32(body[8:])
		if count > MaxBatch {
			return request{}, fmt.Errorf("%w: batch %d exceeds %d", ErrFrame, count, MaxBatch)
		}
		if len(body) != updateHeaderBytes+int(count)*wireTraceBytes {
			return request{}, fmt.Errorf("%w: batch %d in %d-byte body", ErrFrame, count, len(body))
		}
		if req.op != OpUpdate && req.seq != 0 && count != 0 {
			// Per-trace numbering: the range [startSeq, startSeq+count)
			// must not wrap uint64.
			if end := req.seq + uint64(count) - 1; end < req.seq {
				return request{}, fmt.Errorf("%w: seq range %d+%d wraps", ErrFrame, req.seq, count)
			}
		}
		req.traces = make([]trace.Trace, count)
		for i := range req.traces {
			getTrace(body[updateHeaderBytes+i*wireTraceBytes:], &req.traces[i])
		}
	case OpRestore:
		if len(body) == 0 || len(body) > snapshot.MaxEncoded {
			return request{}, fmt.Errorf("%w: restore body %d bytes", ErrFrame, len(body))
		}
		req.blob = append([]byte(nil), body...)
	case OpHello:
		// Structural bound only; tag content is validated where the
		// connection handles the op, which answers StatusBadRequest
		// without killing the (frame-aligned) connection.
		if len(body) == 0 || len(body) > maxClientTagLen {
			return request{}, fmt.Errorf("%w: hello tag %d bytes", ErrFrame, len(body))
		}
		req.client = string(body)
	default:
		return request{}, fmt.Errorf("%w: unknown op 0x%02x", ErrFrame, req.op)
	}
	return req, nil
}

// appendResponseHeader appends a response header for req with status.
func appendResponseHeader(buf []byte, op uint8, reqID uint32, status uint8) []byte {
	var hdr [respHeaderBytes]byte
	hdr[0] = op | respBit
	le.PutUint32(hdr[1:], reqID)
	hdr[5] = status
	return append(buf, hdr[:]...)
}
