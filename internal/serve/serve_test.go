package serve

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"net"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"pathtrace/internal/faults"
	"pathtrace/internal/predictor"
	"pathtrace/internal/stream"
	"pathtrace/internal/trace"
	"pathtrace/internal/workload"
)

const testLimit = 50_000

// headlineConfig is the paper's headline predictor, the serving
// default.
func headlineConfig() predictor.Config {
	return predictor.Config{Depth: 7, IndexBits: 16, Hybrid: true, UseRHS: true}
}

var (
	testStreamOnce sync.Once
	testStream     *stream.Stream
	testStreamErr  error
)

// captureTestStream captures one small compress stream, shared across
// tests (capture simulates the workload, so do it once).
func captureTestStream(t *testing.T) *stream.Stream {
	t.Helper()
	testStreamOnce.Do(func() {
		w, ok := workload.ByName("compress")
		if !ok {
			testStreamErr = errors.New("unknown workload compress")
			return
		}
		testStream, testStreamErr = stream.Capture(nil, w, testLimit, trace.DefaultConfig())
	})
	if testStreamErr != nil {
		t.Fatalf("capture: %v", testStreamErr)
	}
	return testStream
}

func newTestServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	if cfg.Addr == "" {
		cfg.Addr = "127.0.0.1:0"
	}
	if cfg.Predictor == (predictor.Config{}) {
		cfg.Predictor = headlineConfig()
	}
	srv, err := NewServer(cfg)
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv
}

// TestServeBitIdenticalStats is the subsystem's anchor: a stream
// replayed over the wire must leave the session's predictor with
// exactly the stats of an in-process replay — same predictions, same
// hits, same cold misses, bit for bit.
func TestServeBitIdenticalStats(t *testing.T) {
	s := captureTestStream(t)
	srv := newTestServer(t, Config{Shards: 3})

	// In-process reference.
	ref := predictor.MustNew(headlineConfig())
	if _, _, err := s.Replay(nil, func(tr *trace.Trace) {
		ref.Predict()
		ref.Update(tr)
	}); err != nil {
		t.Fatal(err)
	}
	want := ref.Stats()
	if want.Predictions == 0 {
		t.Fatal("reference replay made no predictions")
	}

	cl, err := Dial(srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	const session = 42
	if _, _, err := cl.Open(session); err != nil {
		t.Fatal(err)
	}

	// Push the stream through in uneven batches (exercises batch
	// boundaries not aligning with anything).
	cur := s.Cursor()
	batch := make([]trace.Trace, 0, 173)
	var tr trace.Trace
	for {
		batch = batch[:0]
		for len(batch) < cap(batch) && cur.Next(&tr) {
			batch = append(batch, tr)
		}
		if len(batch) == 0 {
			break
		}
		applied, _, err := cl.Update(session, batch)
		if err != nil {
			t.Fatal(err)
		}
		if int(applied) != len(batch) {
			t.Fatalf("applied %d of %d", applied, len(batch))
		}
	}

	st, err := cl.Stats(session)
	if err != nil {
		t.Fatal(err)
	}
	if !st.Session.Equal(want) {
		t.Errorf("server stats %+v\nin-process  %+v\nnot bit-identical", st.Session, want)
	}
	if !st.ShardAgg.Equal(want) {
		t.Errorf("single-session shard aggregate %+v, want %+v", st.ShardAgg, want)
	}
}

// TestServeSessionIsolation runs two sessions through the same server
// (likely on different shards, but correctness must not depend on it)
// and requires both to match the in-process reference independently.
func TestServeSessionIsolation(t *testing.T) {
	s := captureTestStream(t)
	srv := newTestServer(t, Config{Shards: 2})

	rep, err := RunLoadgen(context.Background(), LoadgenConfig{
		Addr:      srv.Addr().String(),
		Stream:    s,
		Conns:     2,
		Sessions:  4,
		Batch:     97,
		Verify:    true,
		Predictor: headlineConfig(),
	})
	if err != nil {
		t.Fatalf("loadgen: %v", err)
	}
	if !rep.Verified {
		t.Error("loadgen did not verify")
	}
	if want := uint64(s.Len()) * 4; rep.Traces != want {
		t.Errorf("delivered %d traces, want %d", rep.Traces, want)
	}
	if rep.P50 <= 0 || rep.Max < rep.P99 || rep.P99 < rep.P50 {
		t.Errorf("implausible latency percentiles: %+v", rep)
	}
}

func TestServeUnknownSession(t *testing.T) {
	srv := newTestServer(t, Config{})
	cl, err := Dial(srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	if _, err := cl.Predict(7); !errors.Is(err, ErrUnknownSession) {
		t.Errorf("Predict on unopened session: %v, want ErrUnknownSession", err)
	}
	if _, _, err := cl.Update(7, make([]trace.Trace, 1)); !errors.Is(err, ErrUnknownSession) {
		t.Errorf("Update on unopened session: %v, want ErrUnknownSession", err)
	}
	if _, err := cl.Stats(7); !errors.Is(err, ErrUnknownSession) {
		t.Errorf("Stats on unopened session: %v, want ErrUnknownSession", err)
	}
}

func TestServePredictOp(t *testing.T) {
	s := captureTestStream(t)
	srv := newTestServer(t, Config{})
	cl, err := Dial(srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	const session = 9
	if _, _, err := cl.Open(session); err != nil {
		t.Fatal(err)
	}
	// Cold predictor: no path history, prediction invalid.
	p, err := cl.Predict(session)
	if err != nil {
		t.Fatal(err)
	}
	if p.Valid {
		t.Errorf("cold Predict = %+v, want invalid", p)
	}

	// Train on a prefix, then Predict must produce what the in-process
	// predictor produces at the same point.
	ref := predictor.MustNew(headlineConfig())
	batch := make([]trace.Trace, 0, 1000)
	cur := s.Cursor()
	var tr trace.Trace
	for len(batch) < cap(batch) && cur.Next(&tr) {
		batch = append(batch, tr)
	}
	for i := range batch {
		ref.Predict()
		ref.Update(&batch[i])
	}
	if _, _, err := cl.Update(session, batch); err != nil {
		t.Fatal(err)
	}
	want := ref.Predict()
	got, err := cl.Predict(session)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Errorf("Predict after %d traces = %+v, want %+v", len(batch), got, want)
	}
}

// TestServeOverload fills a tiny shard queue from a connection that
// never reads responses... that would stall the writer; instead it
// uses many concurrent clients against a 1-queue server and requires
// that overloads either happened (typed, recoverable) or everything
// succeeded — and that the server survives either way.
func TestServeOverload(t *testing.T) {
	s := captureTestStream(t)
	srv := newTestServer(t, Config{Shards: 1, QueueLen: 1})

	var overloads, oks atomic64
	var wg sync.WaitGroup
	for c := 0; c < 8; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			cl, err := Dial(srv.Addr().String())
			if err != nil {
				t.Errorf("dial: %v", err)
				return
			}
			defer cl.Close()
			session := uint64(100 + c)
			if _, err := openRetry(cl, session); err != nil {
				t.Errorf("open: %v", err)
				return
			}
			batch := make([]trace.Trace, 0, 64)
			cur := s.Cursor()
			var tr trace.Trace
			for len(batch) < cap(batch) && cur.Next(&tr) {
				batch = append(batch, tr)
			}
			for i := 0; i < 50; i++ {
				_, _, err := cl.Update(session, batch)
				switch {
				case err == nil:
					oks.add(1)
				case errors.Is(err, ErrOverloaded):
					overloads.add(1)
					time.Sleep(time.Millisecond)
				default:
					t.Errorf("update: %v", err)
					return
				}
			}
		}(c)
	}
	wg.Wait()
	if oks.load() == 0 {
		t.Error("no update ever succeeded under load")
	}
	t.Logf("oks=%d overloads=%d", oks.load(), overloads.load())

	// The server is still healthy after the storm.
	cl, err := Dial(srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if _, err := openRetry(cl, 999); err != nil {
		t.Errorf("post-storm open: %v", err)
	}
}

// openRetry retries Open over transient overloads (Open goes through
// the same bounded queue as everything else).
func openRetry(cl *Client, session uint64) (uint32, error) {
	for i := 0; ; i++ {
		shard, _, err := cl.Open(session)
		if !errors.Is(err, ErrOverloaded) || i == 200 {
			return shard, err
		}
		time.Sleep(time.Millisecond)
	}
}

type atomic64 struct {
	mu sync.Mutex
	v  uint64
}

func (a *atomic64) add(n uint64) { a.mu.Lock(); a.v += n; a.mu.Unlock() }
func (a *atomic64) load() uint64 { a.mu.Lock(); defer a.mu.Unlock(); return a.v }

// TestServeDrain checks graceful shutdown: after Shutdown begins, new
// requests get ErrDraining, in-flight requests complete, and Shutdown
// returns cleanly.
func TestServeDrain(t *testing.T) {
	// The checkpoint dir gives the drain offload somewhere to spill the
	// open session; without one, Shutdown reports the session as lost.
	srv := newTestServer(t, Config{Shards: 1, AdminAddr: "127.0.0.1:0", CheckpointDir: t.TempDir()})
	cl, err := Dial(srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if _, _, err := cl.Open(1); err != nil {
		t.Fatal(err)
	}

	// Force the draining state while the connection is still open: the
	// request must come back as a typed ErrDraining, and the reject must
	// be visible in every stats surface (Stats, /varz, /metrics) — the
	// counter used to be tracked but the drain path went unasserted.
	srv.draining.Store(true)
	if _, _, err := cl.Open(2); !errors.Is(err, ErrDraining) {
		t.Fatalf("Open while draining = %v, want ErrDraining", err)
	}
	if got := srv.Stats().DrainRejects; got != 1 {
		t.Errorf("Stats().DrainRejects = %d, want 1", got)
	}
	adminGet := func(path string) []byte {
		t.Helper()
		resp, err := http.Get("http://" + srv.AdminAddr().String() + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		buf, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("GET %s: read: %v", path, err)
		}
		return buf
	}
	var vars map[string]any
	if err := json.Unmarshal(adminGet("/varz"), &vars); err != nil {
		t.Fatalf("/varz JSON: %v", err)
	}
	if v, ok := vars["drain_rejects"].(float64); !ok || v != 1 {
		t.Errorf("/varz drain_rejects = %v, want 1", vars["drain_rejects"])
	}
	if body := string(adminGet("/metrics")); !strings.Contains(body, "ntpd_drain_rejects_total 1") {
		t.Errorf("/metrics missing ntpd_drain_rejects_total 1:\n%s", body)
	}
	srv.draining.Store(false)

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}

	// The connection is closed (or the request refused) after drain.
	if _, _, err := cl.Open(2); err == nil {
		t.Error("Open succeeded after Shutdown")
	}
	// New connections are refused: the listener is closed.
	if _, err := net.DialTimeout("tcp", srv.Addr().String(), 500*time.Millisecond); err == nil {
		t.Error("dial succeeded after Shutdown")
	}
}

// TestServeSessionSurvivesReconnect: a session's predictor lives on
// the shard, not the connection, so a reconnecting client resumes the
// same trained state (and Open is idempotent).
func TestServeSessionSurvivesReconnect(t *testing.T) {
	s := captureTestStream(t)
	srv := newTestServer(t, Config{})

	ref := predictor.MustNew(headlineConfig())
	if _, _, err := s.Replay(nil, func(tr *trace.Trace) {
		ref.Predict()
		ref.Update(tr)
	}); err != nil {
		t.Fatal(err)
	}
	want := ref.Stats()

	const session = 5
	half := s.Len() / 2
	cur := s.Cursor()

	send := func(cl *Client, n int) {
		t.Helper()
		batch := make([]trace.Trace, 0, 128)
		var tr trace.Trace
		for n > 0 {
			batch = batch[:0]
			for len(batch) < cap(batch) && n > 0 && cur.Next(&tr) {
				batch = append(batch, tr)
				n--
			}
			if len(batch) == 0 {
				return
			}
			if _, _, err := cl.Update(session, batch); err != nil {
				t.Fatal(err)
			}
		}
	}

	cl1, err := Dial(srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := cl1.Open(session); err != nil {
		t.Fatal(err)
	}
	send(cl1, half)
	cl1.Close()

	cl2, err := Dial(srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer cl2.Close()
	if _, _, err := cl2.Open(session); err != nil { // idempotent re-open
		t.Fatal(err)
	}
	send(cl2, s.Len()-half)

	st, err := cl2.Stats(session)
	if err != nil {
		t.Fatal(err)
	}
	if !st.Session.Equal(want) {
		t.Errorf("stats after reconnect %+v, want %+v", st.Session, want)
	}
}

// TestServeMalformedFrameClosesConn: a garbage frame drops the
// connection (framing is no longer trustworthy) without hurting other
// connections.
func TestServeMalformedFrameClosesConn(t *testing.T) {
	srv := newTestServer(t, Config{})

	raw, err := net.Dial("tcp", srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()
	// Legal length prefix, garbage op.
	payload := make([]byte, reqHeaderBytes)
	payload[0] = 0x7f
	if err := writeFrame(raw, payload); err != nil {
		t.Fatal(err)
	}
	raw.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := readFrame(raw, nil); err == nil {
		t.Error("expected connection close after malformed request")
	}

	// A healthy client on a fresh connection still works.
	cl, err := Dial(srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if _, _, err := cl.Open(1); err != nil {
		t.Errorf("open after another conn's bad frame: %v", err)
	}
}

// TestAdminEndpoints exercises /healthz, /statsz and /varz.
func TestAdminEndpoints(t *testing.T) {
	s := captureTestStream(t)
	srv := newTestServer(t, Config{AdminAddr: "127.0.0.1:0", Shards: 2})
	base := "http://" + srv.AdminAddr().String()

	get := func(path string) (int, []byte) {
		t.Helper()
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		buf, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("GET %s: read: %v", path, err)
		}
		return resp.StatusCode, buf
	}

	if code, body := get("/healthz"); code != 200 || string(body) != "ok\n" {
		t.Errorf("/healthz = %d %q", code, body)
	}

	// Run a little traffic so the counters move.
	cl, err := Dial(srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if _, _, err := cl.Open(1); err != nil {
		t.Fatal(err)
	}
	batch := make([]trace.Trace, 0, 500)
	cur := s.Cursor()
	var tr trace.Trace
	for len(batch) < cap(batch) && cur.Next(&tr) {
		batch = append(batch, tr)
	}
	if _, _, err := cl.Update(1, batch); err != nil {
		t.Fatal(err)
	}

	code, body := get("/statsz")
	if code != 200 {
		t.Fatalf("/statsz = %d", code)
	}
	var st ServerStats
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatalf("/statsz JSON: %v\n%s", err, body)
	}
	if st.Shards != 2 || st.Sessions != 1 || st.Traces != uint64(len(batch)) {
		t.Errorf("/statsz = shards %d, sessions %d, traces %d; want 2, 1, %d",
			st.Shards, st.Sessions, st.Traces, len(batch))
	}
	if st.Predictor.Predictions != uint64(len(batch)) {
		t.Errorf("/statsz predictor predictions = %d, want %d", st.Predictor.Predictions, len(batch))
	}

	code, body = get("/varz")
	if code != 200 {
		t.Fatalf("/varz = %d", code)
	}
	var vars map[string]any
	if err := json.Unmarshal(body, &vars); err != nil {
		t.Fatalf("/varz JSON: %v\n%s", err, body)
	}
	if v, ok := vars["traces"].(float64); !ok || uint64(v) != uint64(len(batch)) {
		t.Errorf("/varz traces = %v, want %d", vars["traces"], len(batch))
	}
	if _, ok := vars["shard.0.queue_depth"]; !ok {
		t.Errorf("/varz missing per-shard counters: %v", vars)
	}

	// Draining flips health.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	done := make(chan struct{})
	go func() { srv.Shutdown(ctx); close(done) }()
	<-done
	if resp, err := http.Get(base + "/healthz"); err == nil {
		resp.Body.Close()
		if resp.StatusCode == 200 {
			t.Error("/healthz still 200 after shutdown")
		}
	}
}

// TestShardHashingStable pins the session->shard mapping property the
// docs promise: deterministic for a fixed shard count.
func TestShardHashingStable(t *testing.T) {
	srv := newTestServer(t, Config{Shards: 4})
	cl, err := Dial(srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	for sess := uint64(1); sess <= 16; sess++ {
		a, _, err := cl.Open(sess)
		if err != nil {
			t.Fatal(err)
		}
		b, _, err := cl.Open(sess)
		if err != nil {
			t.Fatal(err)
		}
		if a != b {
			t.Errorf("session %d moved shard %d -> %d", sess, a, b)
		}
		if want := uint32(splitmix64(sess) % 4); a != want {
			t.Errorf("session %d on shard %d, want %d", sess, a, want)
		}
	}
}

// TestServeFaultInjection: a fault-injecting server must still be
// bit-identical to an in-process replay under the same plan, because
// every session gets its own deterministic injector.
func TestServeFaultInjection(t *testing.T) {
	s := captureTestStream(t)
	fcfg := faultsConfigForTest()
	srv := newTestServer(t, Config{Faults: &fcfg})

	rep, err := RunLoadgen(context.Background(), LoadgenConfig{
		Addr:      srv.Addr().String(),
		Stream:    s,
		Sessions:  2,
		Batch:     173,
		Verify:    true,
		Predictor: headlineConfig(),
		Faults:    &fcfg,
	})
	if err != nil {
		t.Fatalf("loadgen under faults: %v", err)
	}
	if !rep.Verified {
		t.Error("fault-injected run did not verify")
	}
}

func faultsConfigForTest() faults.Config {
	return faults.Config{Seed: 12345, Table: 1e-3, History: 1e-4}
}

// TestServeSmokeStream runs the committed testdata stream — the same
// file the CI serve-smoke job replays through the real ntpd binary —
// through the in-process loadgen with verification, so a change that
// breaks the .ntps format or the committed capture fails here first
// with a real diff instead of in a shell script.
func TestServeSmokeStream(t *testing.T) {
	s, err := stream.Load("testdata/smoke.ntps")
	if err != nil {
		t.Fatalf("Load smoke stream: %v", err)
	}
	if s.Len() == 0 {
		t.Fatal("smoke stream is empty")
	}
	srv := newTestServer(t, Config{Shards: 2})
	rep, err := RunLoadgen(context.Background(), LoadgenConfig{
		Addr: srv.Addr().String(), Stream: s,
		Conns: 2, Sessions: 3, Batch: 64,
		Verify: true, Predictor: headlineConfig(),
	})
	if err != nil {
		t.Fatalf("RunLoadgen: %v", err)
	}
	if !rep.Verified {
		t.Error("report not marked verified")
	}
	if want := uint64(3 * s.Len()); rep.Traces != want {
		t.Errorf("Traces = %d, want %d", rep.Traces, want)
	}
}
