package predictor

import (
	"pathtrace/internal/faults"
	"pathtrace/internal/history"
	"pathtrace/internal/trace"
)

// basic is the correlated predictor of §3.2: a single table indexed by
// the DOLC-generated path index; entries hold a predicted trace
// identifier, an increment-by-1/decrement-by-2 two-bit counter, and
// (per §6) an alternate identifier.
//
// Like Hybrid, the table is stored struct-of-arrays: tabMeta packs
// ctr<<8 | flags per entry (entValid/entAltValid) next to flat value
// and alternate slices, so a lookup touches two dense cache lines
// instead of a padded 32-byte struct.
type basic struct {
	cfg  Config
	hist history.Reg

	tabMeta []uint32 // ctr<<8 | flags
	tabVal  []uint64 // trace.ID, or trace.HashedID when cost-reduced
	tabAlt  []uint64

	stats   Stats
	tok     basicToken
	ctrMaxT int // ctrMax(CounterBits), hoisted off the round path
}

type basicToken struct {
	idx     uint32
	pred    Prediction
	predVal uint64
	altVal  uint64
}

func newBasic(cfg Config) (*basic, error) {
	h, err := history.NewReg(cfg.Depth + 1)
	if err != nil {
		return nil, err
	}
	b := &basic{
		cfg:     cfg,
		hist:    h,
		tabMeta: make([]uint32, 1<<cfg.IndexBits),
		tabVal:  make([]uint64, 1<<cfg.IndexBits),
		tabAlt:  make([]uint64, 1<<cfg.IndexBits),
		ctrMaxT: ctrMax(cfg.CounterBits),
	}
	if cfg.Faults != nil {
		b.hist.SetFaultHook(cfg.Faults)
	}
	return b, nil
}

// valBits is the stored-identifier width: the full trace ID, or its
// hash when cost-reduced.
func (cfg *Config) valBits() int {
	if cfg.CostReduced {
		return trace.HashBits
	}
	return trace.IDBits
}

// injectFaults applies one fault-injection opportunity to the table.
// Called once per update so rate-coupled injection streams stay
// aligned across configurations. Masks land on the same logical bits
// as in the array-of-structs layout (see Hybrid.injectFaults).
func (b *basic) injectFaults() {
	f := b.cfg.Faults.CorrFault(len(b.tabMeta), b.cfg.valBits(), 0, b.cfg.CounterBits)
	if !f.Fire {
		return
	}
	switch f.Slot {
	case faults.SlotValue:
		b.tabVal[f.Index] ^= f.Mask
	case faults.SlotAlt:
		b.tabAlt[f.Index] ^= f.Mask
	case faults.SlotCounter:
		b.tabMeta[f.Index] ^= uint32(uint8(f.Mask)) << 8
	}
}

// storedVal converts a trace to the value representation the table
// stores: the full identifier, or its hash when cost-reduced.
func (cfg *Config) storedVal(tr *trace.Trace) uint64 {
	if cfg.CostReduced {
		return uint64(tr.Hash)
	}
	return uint64(tr.ID)
}

// present converts a stored value back into Prediction fields.
func (cfg *Config) present(p *Prediction, val uint64) {
	if cfg.CostReduced {
		p.Hashed = trace.HashedID(val)
	} else {
		p.ID = trace.ID(val)
		p.Hashed = p.ID.Hash()
	}
}

// lookupInto fills tok with the prediction for the current path — the
// single lookup implementation shared by the scalar and batch paths.
func (b *basic) lookupInto(tok *basicToken) {
	idx := b.cfg.DOLC.IndexOf(&b.hist)
	m := b.tabMeta[idx]
	*tok = basicToken{idx: idx, predVal: b.tabVal[idx], altVal: b.tabAlt[idx]}
	if m&entValid != 0 {
		tok.pred.Valid = true
		b.cfg.present(&tok.pred, tok.predVal)
		if m&entAltValid != 0 {
			tok.pred.AltValid = true
			if !b.cfg.CostReduced {
				tok.pred.Alt = trace.ID(tok.altVal)
			}
		}
	}
}

// commit trains the table for the round described by tok and advances
// the path history — shared by Update and the batch loop.
func (b *basic) commit(tok *basicToken, actual *trace.Trace) {
	if b.cfg.Faults != nil {
		b.injectFaults()
	}
	actualVal := b.cfg.storedVal(actual)

	var ev Event
	b.stats.Predictions++
	correct := tok.pred.Valid && tok.predVal == actualVal
	if correct {
		b.stats.Correct++
		ev |= EvCorrect
	} else {
		if !tok.pred.Valid {
			b.stats.Cold++
			ev |= EvCold
		}
		if tok.pred.AltValid {
			b.stats.AltPresent++
			if tok.altVal == actualVal {
				b.stats.AltCorrect++
			}
		}
	}

	i := tok.idx
	m := b.tabMeta[i]
	switch {
	case m&entValid == 0:
		b.tabVal[i] = actualVal
		b.tabMeta[i] = entValid
	case b.tabVal[i] == actualVal:
		ctr := satInc(uint8(m>>8), b.cfg.CounterInc, b.ctrMaxT)
		b.tabMeta[i] = m&^uint32(0xff00) | uint32(ctr)<<8
	case uint8(m>>8) == 0:
		// Replace; the displaced prediction becomes the alternate (§6).
		b.tabAlt[i] = b.tabVal[i]
		b.tabVal[i] = actualVal
		b.tabMeta[i] = m | entAltValid
		ev |= EvReplaced
	default:
		ctr := satDec(uint8(m>>8), b.cfg.CounterDec)
		b.tabMeta[i] = m&^uint32(0xff00) | uint32(ctr)<<8 | entAltValid
		b.tabAlt[i] = actualVal
	}
	if b.cfg.Faults.StuckZero() {
		b.tabMeta[i] &^= 0xff00
	}

	b.hist.Push(actual.Hash)
	if b.cfg.Recorder != nil {
		b.cfg.Recorder.Record(ev)
	}
}

func (b *basic) Predict() Prediction {
	b.lookupInto(&b.tok)
	return b.tok.pred
}

func (b *basic) Update(actual *trace.Trace) {
	b.commit(&b.tok, actual)
}

// PredictBatch implements BatchPredictor: one full Predict/Update round
// per trace with a local token and direct calls into the shared
// lookup/commit primitives (no interface dispatch per round).
func (b *basic) PredictBatch(actuals []trace.Trace, preds []Prediction) uint64 {
	before := b.stats.Correct
	var tok basicToken
	for i := range actuals {
		b.lookupInto(&tok)
		if preds != nil {
			preds[i] = tok.pred
		}
		b.commit(&tok, &actuals[i])
	}
	return b.stats.Correct - before
}

// UpdateBatch implements BatchPredictor.
func (b *basic) UpdateBatch(actuals []trace.Trace) uint64 {
	return b.PredictBatch(actuals, nil)
}

func (b *basic) Stats() Stats { return b.stats }
