package predictor

import (
	"pathtrace/internal/faults"
	"pathtrace/internal/history"
	"pathtrace/internal/trace"
)

// basic is the correlated predictor of §3.2: a single table indexed by
// the DOLC-generated path index; entries hold a predicted trace
// identifier, an increment-by-1/decrement-by-2 two-bit counter, and
// (per §6) an alternate identifier.
type basic struct {
	cfg   Config
	hist  history.Reg
	table []basicEntry
	stats Stats
	tok   basicToken
}

type basicEntry struct {
	val      uint64 // trace.ID, or trace.HashedID when cost-reduced
	alt      uint64
	ctr      uint8
	valid    bool
	altValid bool
}

type basicToken struct {
	idx     uint32
	pred    Prediction
	predVal uint64
	altVal  uint64
}

func newBasic(cfg Config) (*basic, error) {
	h, err := history.NewReg(cfg.Depth + 1)
	if err != nil {
		return nil, err
	}
	b := &basic{
		cfg:   cfg,
		hist:  h,
		table: make([]basicEntry, 1<<cfg.IndexBits),
	}
	if cfg.Faults != nil {
		b.hist.SetFaultHook(cfg.Faults)
	}
	return b, nil
}

// valBits is the stored-identifier width: the full trace ID, or its
// hash when cost-reduced.
func (cfg *Config) valBits() int {
	if cfg.CostReduced {
		return trace.HashBits
	}
	return trace.IDBits
}

// injectFaults applies one fault-injection opportunity to the table.
// Called once per update so rate-coupled injection streams stay
// aligned across configurations.
func (b *basic) injectFaults() {
	f := b.cfg.Faults.CorrFault(len(b.table), b.cfg.valBits(), 0, b.cfg.CounterBits)
	if !f.Fire {
		return
	}
	e := &b.table[f.Index]
	switch f.Slot {
	case faults.SlotValue:
		e.val ^= f.Mask
	case faults.SlotAlt:
		e.alt ^= f.Mask
	case faults.SlotCounter:
		e.ctr ^= uint8(f.Mask)
	}
}

// storedVal converts a trace to the value representation the table
// stores: the full identifier, or its hash when cost-reduced.
func (cfg *Config) storedVal(tr *trace.Trace) uint64 {
	if cfg.CostReduced {
		return uint64(tr.Hash)
	}
	return uint64(tr.ID)
}

// present converts a stored value back into Prediction fields.
func (cfg *Config) present(p *Prediction, val uint64) {
	if cfg.CostReduced {
		p.Hashed = trace.HashedID(val)
	} else {
		p.ID = trace.ID(val)
		p.Hashed = p.ID.Hash()
	}
}

func (b *basic) Predict() Prediction {
	idx := b.cfg.DOLC.IndexOf(&b.hist)
	e := &b.table[idx]
	var p Prediction
	if e.valid {
		p.Valid = true
		b.cfg.present(&p, e.val)
		if e.altValid {
			p.AltValid = true
			if !b.cfg.CostReduced {
				p.Alt = trace.ID(e.alt)
			}
		}
	}
	b.tok = basicToken{idx: idx, pred: p, predVal: e.val, altVal: e.alt}
	return p
}

func (b *basic) Update(actual *trace.Trace) {
	if b.cfg.Faults != nil {
		b.injectFaults()
	}
	tok := b.tok
	actualVal := b.cfg.storedVal(actual)

	var ev Event
	b.stats.Predictions++
	correct := tok.pred.Valid && tok.predVal == actualVal
	if correct {
		b.stats.Correct++
		ev |= EvCorrect
	} else {
		if !tok.pred.Valid {
			b.stats.Cold++
			ev |= EvCold
		}
		if tok.pred.AltValid {
			b.stats.AltPresent++
			if tok.altVal == actualVal {
				b.stats.AltCorrect++
			}
		}
	}

	e := &b.table[tok.idx]
	max := ctrMax(b.cfg.CounterBits)
	switch {
	case !e.valid:
		e.val = actualVal
		e.ctr = 0
		e.valid = true
	case e.val == actualVal:
		e.ctr = satInc(e.ctr, b.cfg.CounterInc, max)
	case e.ctr == 0:
		// Replace; the displaced prediction becomes the alternate (§6).
		e.alt = e.val
		e.altValid = true
		e.val = actualVal
		ev |= EvReplaced
	default:
		e.ctr = satDec(e.ctr, b.cfg.CounterDec)
		e.alt = actualVal
		e.altValid = true
	}
	if b.cfg.Faults.StuckZero() {
		e.ctr = 0
	}

	b.hist.Push(actual.Hash)
	if b.cfg.Recorder != nil {
		b.cfg.Recorder.Record(ev)
	}
}

func (b *basic) Stats() Stats { return b.stats }
