package predictor

import (
	"errors"
	"fmt"

	"pathtrace/internal/faults"
	"pathtrace/internal/history"
)

// This file implements full-state save/restore for the table-bounded
// predictor variants. The paper's predictor is pure state — tables, the
// path history register, the Return History Stack and (here) the fault
// injector's PRNG positions — so a live predictor can be serialized and
// resumed bit-identically on another machine: every subsequent
// Predict/Update round produces exactly the output the original would
// have produced. That property is what turns a serving drain into a
// zero-loss session handoff (internal/snapshot + internal/serve).
//
// Save captures state at a round boundary: the token of an outstanding
// Predict is NOT part of the state, so callers must snapshot between
// Update and the next Predict (the serving layer's request boundaries
// satisfy this by construction).

// Typed errors for the save/restore layer.
var (
	// ErrNotSnapshottable reports a predictor variant without full-state
	// save support (the unbounded study variants).
	ErrNotSnapshottable = errors.New("predictor: variant not snapshottable")
	// ErrStateMismatch reports a saved state whose geometry differs from
	// the restoring configuration — restoring it would silently change
	// what the session predicts, so it is refused.
	ErrStateMismatch = errors.New("predictor: saved state incompatible with config")
	// ErrBadState reports a structurally invalid saved state (index out
	// of range, counter overflow, malformed history).
	ErrBadState = errors.New("predictor: invalid saved state")
)

// SavedKind identifies the predictor variant a SavedState came from.
type SavedKind uint8

const (
	// SavedBasic is the single-table correlated predictor (§3.2).
	SavedBasic SavedKind = 1
	// SavedHybrid is the hybrid predictor with secondary table and
	// optional RHS (§3.3–§3.4).
	SavedHybrid SavedKind = 2
)

// SavedEntry is one valid correlated-table (or basic-table) entry.
type SavedEntry struct {
	Index    uint32
	Tag      uint16 // zero for the untagged basic table
	Val      uint64
	Alt      uint64
	Ctr      uint8
	AltValid bool
}

// SavedSecEntry is one valid secondary-table entry.
type SavedSecEntry struct {
	Index uint32
	Val   uint64
	Ctr   uint8
}

// SavedState is the complete state of a basic or hybrid predictor:
// geometry (so a restore can verify it matches), accuracy counters,
// path history, RHS, fault-injector state, and the valid table entries
// in ascending index order (tables are usually sparse, so only valid
// entries are carried).
type SavedState struct {
	Kind SavedKind

	// Geometry, mirroring Config after defaults.
	Depth, IndexBits              int
	DOLC                          history.DOLC
	SecondaryBits, TagBits        int
	RHSDepth                      int
	CounterBits, CounterInc       int
	CounterDec                    int
	SecCounterBits, SecCounterDec int
	UseRHS, CostReduced           bool
	SecondaryFilter               bool

	Stats  Stats
	Hist   history.RegState
	RHS    *history.StackState   // nil unless UseRHS
	Faults *faults.InjectorState // nil unless fault injection active

	Corr []SavedEntry
	Sec  []SavedSecEntry // hybrid only
}

// Save captures the predictor's complete state. It fails with
// ErrNotSnapshottable for variants without save support.
func Save(p NextTracePredictor) (*SavedState, error) {
	switch v := p.(type) {
	case *Hybrid:
		return v.saveState(), nil
	case *basic:
		return v.saveState(), nil
	default:
		return nil, fmt.Errorf("%w: %T", ErrNotSnapshottable, p)
	}
}

func (p *Hybrid) saveState() *SavedState {
	cfg := p.cfg
	st := &SavedState{
		Kind:            SavedHybrid,
		Depth:           cfg.Depth,
		IndexBits:       cfg.IndexBits,
		DOLC:            cfg.DOLC,
		SecondaryBits:   cfg.SecondaryBits,
		TagBits:         cfg.TagBits,
		RHSDepth:        cfg.RHSDepth,
		CounterBits:     cfg.CounterBits,
		CounterInc:      cfg.CounterInc,
		CounterDec:      cfg.CounterDec,
		SecCounterBits:  cfg.SecCounterBits,
		SecCounterDec:   cfg.SecCounterDec,
		UseRHS:          p.rhs != nil,
		CostReduced:     cfg.CostReduced,
		SecondaryFilter: p.secFilter,
		Stats:           p.stats,
		Hist:            p.hist.State(),
	}
	if p.rhs != nil {
		s := p.rhs.State()
		st.RHS = &s
	}
	if cfg.Faults != nil {
		fs := cfg.Faults.State()
		st.Faults = &fs
	}
	for i, m := range p.corrMeta {
		if m&entValid == 0 {
			continue
		}
		st.Corr = append(st.Corr, SavedEntry{
			Index: uint32(i), Tag: uint16(m >> 16), Val: p.corrVal[i], Alt: p.corrAlt[i],
			Ctr: uint8(m >> 8), AltValid: m&entAltValid != 0,
		})
	}
	for i, m := range p.secMeta {
		if m&entValid == 0 {
			continue
		}
		st.Sec = append(st.Sec, SavedSecEntry{Index: uint32(i), Val: p.secVal[i], Ctr: uint8(m >> 8)})
	}
	return st
}

func (b *basic) saveState() *SavedState {
	cfg := b.cfg
	st := &SavedState{
		Kind:            SavedBasic,
		Depth:           cfg.Depth,
		IndexBits:       cfg.IndexBits,
		DOLC:            cfg.DOLC,
		SecondaryBits:   cfg.SecondaryBits,
		TagBits:         cfg.TagBits,
		RHSDepth:        cfg.RHSDepth,
		CounterBits:     cfg.CounterBits,
		CounterInc:      cfg.CounterInc,
		CounterDec:      cfg.CounterDec,
		SecCounterBits:  cfg.SecCounterBits,
		SecCounterDec:   cfg.SecCounterDec,
		CostReduced:     cfg.CostReduced,
		SecondaryFilter: *cfg.SecondaryFilter,
		Stats:           b.stats,
		Hist:            b.hist.State(),
	}
	if cfg.Faults != nil {
		fs := cfg.Faults.State()
		st.Faults = &fs
	}
	for i, m := range b.tabMeta {
		if m&entValid == 0 {
			continue
		}
		st.Corr = append(st.Corr, SavedEntry{
			Index: uint32(i), Val: b.tabVal[i], Alt: b.tabAlt[i],
			Ctr: uint8(m >> 8), AltValid: m&entAltValid != 0,
		})
	}
	return st
}

// compatibleWith verifies that the saved geometry matches a normalized
// configuration field for field, so a restore can never silently change
// what a session predicts (or how big its tables are).
func (st *SavedState) compatibleWith(full Config) error {
	mism := func(field string, got, want any) error {
		return fmt.Errorf("%w: %s saved %v vs config %v", ErrStateMismatch, field, got, want)
	}
	wantKind := SavedBasic
	if full.Hybrid {
		wantKind = SavedHybrid
	}
	if st.Kind != wantKind {
		return mism("kind", st.Kind, wantKind)
	}
	if st.Depth != full.Depth {
		return mism("depth", st.Depth, full.Depth)
	}
	if st.IndexBits != full.IndexBits {
		return mism("index bits", st.IndexBits, full.IndexBits)
	}
	if st.DOLC != full.DOLC {
		return mism("DOLC", st.DOLC, full.DOLC)
	}
	if st.CostReduced != full.CostReduced {
		return mism("cost-reduced", st.CostReduced, full.CostReduced)
	}
	if st.CounterBits != full.CounterBits || st.CounterInc != full.CounterInc || st.CounterDec != full.CounterDec {
		return mism("counter policy",
			[3]int{st.CounterBits, st.CounterInc, st.CounterDec},
			[3]int{full.CounterBits, full.CounterInc, full.CounterDec})
	}
	if !full.Hybrid {
		if st.UseRHS {
			return mism("RHS", true, false)
		}
		return nil
	}
	if st.SecondaryBits != full.SecondaryBits {
		return mism("secondary bits", st.SecondaryBits, full.SecondaryBits)
	}
	if st.TagBits != full.TagBits {
		return mism("tag bits", st.TagBits, full.TagBits)
	}
	if st.SecCounterBits != full.SecCounterBits || st.SecCounterDec != full.SecCounterDec {
		return mism("secondary counter policy",
			[2]int{st.SecCounterBits, st.SecCounterDec},
			[2]int{full.SecCounterBits, full.SecCounterDec})
	}
	if st.SecondaryFilter != *full.SecondaryFilter {
		return mism("secondary filter", st.SecondaryFilter, *full.SecondaryFilter)
	}
	if st.UseRHS != full.UseRHS {
		return mism("RHS", st.UseRHS, full.UseRHS)
	}
	if full.UseRHS && st.RHSDepth != full.RHSDepth {
		return mism("RHS depth", st.RHSDepth, full.RHSDepth)
	}
	return nil
}

// checkEntries validates saved table entries against a table geometry:
// ascending unique indices in range, counters within width, values
// within the stored-identifier width.
func checkEntries(what string, ctrBits, valBits int, idx func(i int) uint32, ctr func(i int) uint8, vals func(i int) []uint64, size, count int) error {
	prev := -1
	maxCtr := uint8(ctrMax(ctrBits))
	for i := 0; i < count; i++ {
		ix := idx(i)
		if int(ix) >= size {
			return fmt.Errorf("%w: %s index %d outside table of %d", ErrBadState, what, ix, size)
		}
		if int(ix) <= prev {
			return fmt.Errorf("%w: %s indices not strictly ascending at %d", ErrBadState, what, ix)
		}
		prev = int(ix)
		if c := ctr(i); c > maxCtr {
			return fmt.Errorf("%w: %s counter %d exceeds %d-bit max", ErrBadState, what, c, ctrBits)
		}
		for _, v := range vals(i) {
			if valBits < 64 && v>>uint(valBits) != 0 {
				return fmt.Errorf("%w: %s value %#x exceeds %d bits", ErrBadState, what, v, valBits)
			}
		}
	}
	return nil
}

// Restore builds a predictor of cfg's variant and loads st into it.
// cfg supplies the process-local attachments (Recorder, and a fault
// injector used only when st carries no injector state); geometry must
// match st exactly or Restore fails with ErrStateMismatch. When st
// carries injector state, the injector is rebuilt from it — mid-stream
// PRNG positions included — so a fault-injected session resumes the
// same fault sequence it would have seen uninterrupted.
func Restore(st *SavedState, cfg Config) (NextTracePredictor, error) {
	if st == nil {
		return nil, fmt.Errorf("%w: nil state", ErrBadState)
	}
	cfg.Hybrid = st.Kind == SavedHybrid
	full, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	if err := st.compatibleWith(full); err != nil {
		return nil, err
	}
	if st.Faults != nil {
		full.Faults = faults.FromState(*st.Faults)
	}
	hist, err := history.RegFromState(st.Hist)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadState, err)
	}
	if hist.Size() != full.Depth+1 {
		return nil, fmt.Errorf("%w: history size %d for depth %d", ErrBadState, hist.Size(), full.Depth)
	}
	valBits := full.valBits()

	switch st.Kind {
	case SavedHybrid:
		if err := checkEntries("correlated", full.CounterBits, valBits,
			func(i int) uint32 { return st.Corr[i].Index },
			func(i int) uint8 { return st.Corr[i].Ctr },
			func(i int) []uint64 { return []uint64{st.Corr[i].Val, st.Corr[i].Alt} },
			1<<full.IndexBits, len(st.Corr)); err != nil {
			return nil, err
		}
		if err := checkEntries("secondary", full.SecCounterBits, valBits,
			func(i int) uint32 { return st.Sec[i].Index },
			func(i int) uint8 { return st.Sec[i].Ctr },
			func(i int) []uint64 { return []uint64{st.Sec[i].Val} },
			1<<full.SecondaryBits, len(st.Sec)); err != nil {
			return nil, err
		}
		if full.UseRHS && st.RHS == nil {
			return nil, fmt.Errorf("%w: RHS enabled but no RHS state", ErrBadState)
		}
		p, err := newHybrid(full)
		if err != nil {
			return nil, err
		}
		p.hist = hist
		if full.Faults != nil {
			p.hist.SetFaultHook(full.Faults)
		}
		if st.RHS != nil {
			rhs, err := history.StackFromState(*st.RHS)
			if err != nil {
				return nil, fmt.Errorf("%w: %v", ErrBadState, err)
			}
			p.rhs = rhs
		}
		p.stats = st.Stats
		for _, e := range st.Corr {
			m := uint32(e.Tag)<<16 | uint32(e.Ctr)<<8 | entValid
			if e.AltValid {
				m |= entAltValid
			}
			p.corrMeta[e.Index] = m
			p.corrVal[e.Index] = e.Val
			p.corrAlt[e.Index] = e.Alt
		}
		for _, e := range st.Sec {
			p.secMeta[e.Index] = uint16(e.Ctr)<<8 | entValid
			p.secVal[e.Index] = e.Val
		}
		return p, nil

	case SavedBasic:
		if err := checkEntries("table", full.CounterBits, valBits,
			func(i int) uint32 { return st.Corr[i].Index },
			func(i int) uint8 { return st.Corr[i].Ctr },
			func(i int) []uint64 { return []uint64{st.Corr[i].Val, st.Corr[i].Alt} },
			1<<full.IndexBits, len(st.Corr)); err != nil {
			return nil, err
		}
		if len(st.Sec) != 0 {
			return nil, fmt.Errorf("%w: basic predictor with secondary entries", ErrBadState)
		}
		b, err := newBasic(full)
		if err != nil {
			return nil, err
		}
		b.hist = hist
		if full.Faults != nil {
			b.hist.SetFaultHook(full.Faults)
		}
		b.stats = st.Stats
		for _, e := range st.Corr {
			m := uint32(e.Ctr)<<8 | entValid
			if e.AltValid {
				m |= entAltValid
			}
			b.tabMeta[e.Index] = m
			b.tabVal[e.Index] = e.Val
			b.tabAlt[e.Index] = e.Alt
		}
		return b, nil
	}
	return nil, fmt.Errorf("%w: unknown kind %d", ErrBadState, st.Kind)
}
