package predictor

import (
	"encoding/binary"
	"fmt"

	"pathtrace/internal/history"
	"pathtrace/internal/trace"
)

// State codec for the TAGE backend. Layout (little-endian):
//
//	version u8 (currently 1)
//	geometry: nine u8 params (depth, index bits, secondary bits, tag
//	  bits, counter bits/inc/dec, sec counter bits/dec)
//	nTables u8, then nTables u8 history lengths
//	stats   six u64 counters
//	hist    register (u8 size, u8 fill, MaxSize u16 ids)
//	base    u32 count, count 13-byte entries (u32 idx, u64 val, u8 ctr)
//	tables  per table: u32 count, count 17-byte entries
//	        (u32 idx, u16 tag, u64 val, u8 ctr, u8 u, u8 spare=0)
//
// The same strictness rules as the paper codec apply: counts are
// bounded by the remaining input before any allocation, every decoded
// field is range-checked against the geometry, and trailing bytes fail
// the decode.

const (
	tageStateVersion = 1

	tageBaseEntryBytes = 13 // u32 idx | u64 val | u8 ctr
	tageEntryBytes     = 17 // u32 idx | u16 tag | u64 val | u8 ctr | u8 u | u8 spare
)

// tageSave is the backend Save hook.
func tageSave(p NextTracePredictor) ([]byte, error) {
	t, ok := p.(*tage)
	if !ok {
		return nil, fmt.Errorf("%w: %T", ErrNotSnapshottable, p)
	}
	le := binary.LittleEndian
	cfg := t.cfg
	b := make([]byte, 0, t.encodedSize())
	b = append(b, tageStateVersion)
	b = append(b, uint8(cfg.Depth), uint8(cfg.IndexBits), uint8(cfg.SecondaryBits),
		uint8(cfg.TagBits), uint8(cfg.CounterBits), uint8(cfg.CounterInc),
		uint8(cfg.CounterDec), uint8(cfg.SecCounterBits), uint8(cfg.SecCounterDec))
	b = append(b, uint8(t.nTables))
	for i := 0; i < t.nTables; i++ {
		b = append(b, uint8(t.lens[i]))
	}
	for _, v := range [...]uint64{
		t.stats.Predictions, t.stats.Correct, t.stats.Cold,
		t.stats.FromSecondary, t.stats.AltCorrect, t.stats.AltPresent,
	} {
		b = le.AppendUint64(b, v)
	}
	b = appendStateReg(b, t.hist.State())

	nValid := 0
	for i := range t.base {
		if t.base[i].valid {
			nValid++
		}
	}
	b = le.AppendUint32(b, uint32(nValid))
	for i := range t.base {
		e := &t.base[i]
		if !e.valid {
			continue
		}
		b = le.AppendUint32(b, uint32(i))
		b = le.AppendUint64(b, e.val)
		b = append(b, e.ctr)
	}

	for ti := 0; ti < t.nTables; ti++ {
		tbl := t.tables[ti]
		nValid = 0
		for i := range tbl {
			if tbl[i].valid {
				nValid++
			}
		}
		b = le.AppendUint32(b, uint32(nValid))
		for i := range tbl {
			e := &tbl[i]
			if !e.valid {
				continue
			}
			b = le.AppendUint32(b, uint32(i))
			b = le.AppendUint16(b, e.tag)
			b = le.AppendUint64(b, e.val)
			b = append(b, e.ctr, e.u, 0)
		}
	}
	return b, nil
}

func (t *tage) encodedSize() int {
	n := 1 + 9 + 1 + t.nTables + paperStatsBytes + stateRegBytes
	n += 4 + len(t.base)*tageBaseEntryBytes
	for i := 0; i < t.nTables; i++ {
		n += 4 + len(t.tables[i])*tageEntryBytes
	}
	return n
}

// tageRestore is the backend Restore hook: it rebuilds a TAGE predictor
// from a state section, verifying the saved geometry matches cfg so a
// restore can never silently change what a session predicts.
func tageRestore(state []byte, cfg Config) (NextTracePredictor, error) {
	full, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	r := &stateReader{b: state}
	if v := r.u8(); r.err == nil && v != tageStateVersion {
		return nil, fmt.Errorf("%w: tage state version %d (supported: %d)", ErrBadState, v, tageStateVersion)
	}

	geom := [9]int{int(r.u8()), int(r.u8()), int(r.u8()), int(r.u8()),
		int(r.u8()), int(r.u8()), int(r.u8()), int(r.u8()), int(r.u8())}
	want := [9]int{full.Depth, full.IndexBits, full.SecondaryBits, full.TagBits,
		full.CounterBits, full.CounterInc, full.CounterDec,
		full.SecCounterBits, full.SecCounterDec}
	if r.err == nil && geom != want {
		return nil, fmt.Errorf("%w: tage geometry saved %v vs config %v", ErrStateMismatch, geom, want)
	}

	t, err := newTage(full)
	if err != nil {
		return nil, err
	}
	nTables := int(r.u8())
	if r.err == nil && nTables != t.nTables {
		return nil, fmt.Errorf("%w: tage table count saved %d vs config %d", ErrStateMismatch, nTables, t.nTables)
	}
	for i := 0; i < nTables && r.err == nil; i++ {
		if l := int(r.u8()); r.err == nil && l != t.lens[i] {
			return nil, fmt.Errorf("%w: tage table %d length saved %d vs config %d", ErrStateMismatch, i, l, t.lens[i])
		}
	}

	t.stats.Predictions = r.u64()
	t.stats.Correct = r.u64()
	t.stats.Cold = r.u64()
	t.stats.FromSecondary = r.u64()
	t.stats.AltCorrect = r.u64()
	t.stats.AltPresent = r.u64()

	histState := r.reg()
	if r.err == nil {
		hist, err := history.RegFromState(histState)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadState, err)
		}
		if hist.Size() != full.Depth+1 {
			return nil, fmt.Errorf("%w: history size %d for depth %d", ErrBadState, hist.Size(), full.Depth)
		}
		t.hist = hist
	}

	maxVal := uint64(1)<<trace.IDBits - 1
	if n := r.count("tage base entries", tageBaseEntryBytes); r.err == nil {
		prev := -1
		secMax := uint8(ctrMax(full.SecCounterBits))
		for i := 0; i < n; i++ {
			idx := r.u32()
			val := r.u64()
			ctr := r.u8()
			if r.err != nil {
				break
			}
			if int(idx) >= len(t.base) || int(idx) <= prev {
				return nil, fmt.Errorf("%w: tage base index %d (prev %d, size %d)", ErrBadState, idx, prev, len(t.base))
			}
			prev = int(idx)
			if ctr > secMax || val > maxVal {
				return nil, fmt.Errorf("%w: tage base entry %d out of range", ErrBadState, idx)
			}
			t.base[idx] = tageBase{val: val, ctr: ctr, valid: true}
		}
	}

	ctrMaxV := uint8(ctrMax(full.CounterBits))
	for ti := 0; ti < t.nTables && r.err == nil; ti++ {
		n := r.count("tage table entries", tageEntryBytes)
		if r.err != nil {
			break
		}
		prev := -1
		for i := 0; i < n; i++ {
			idx := r.u32()
			tag := r.u16()
			val := r.u64()
			ctr := r.u8()
			u := r.u8()
			spare := r.u8()
			if r.err != nil {
				break
			}
			if int(idx) >= len(t.tables[ti]) || int(idx) <= prev {
				return nil, fmt.Errorf("%w: tage table %d index %d (prev %d, size %d)", ErrBadState, ti, idx, prev, len(t.tables[ti]))
			}
			prev = int(idx)
			if ctr > ctrMaxV || u > tageUMax || val > maxVal || tag&^uint16(t.tagMask) != 0 || spare != 0 {
				return nil, fmt.Errorf("%w: tage table %d entry %d out of range", ErrBadState, ti, idx)
			}
			t.tables[ti][idx] = tageEntry{val: val, tag: tag, ctr: ctr, u: u, valid: true}
		}
	}

	if r.err == nil && r.off != len(r.b) {
		r.fail("%d trailing bytes after tage state", len(r.b)-r.off)
	}
	if r.err != nil {
		return nil, r.err
	}
	return t, nil
}
