package predictor

import (
	"math/rand"
	"testing"

	"pathtrace/internal/trace"
)

// tr builds a minimal trace with a given start PC and branch outcomes.
func tr(pc uint32, outs uint8) *trace.Trace {
	id := trace.MakeID(pc, outs)
	return &trace.Trace{ID: id, Hash: id.Hash(), StartPC: pc}
}

// callTr marks a trace as containing n calls.
func callTr(pc uint32, calls int) *trace.Trace {
	t := tr(pc, 0)
	t.Calls = calls
	return t
}

// retTr marks a trace as ending in a return.
func retTr(pc uint32) *trace.Trace {
	t := tr(pc, 0)
	t.EndsInRet = true
	return t
}

// drive runs the immediate-update protocol over a repeating sequence,
// returning stats for the final `measure` predictions.
func drive(p NextTracePredictor, seq []*trace.Trace, rounds, measureRounds int) Stats {
	var warm Stats
	for r := 0; r < rounds; r++ {
		if r == rounds-measureRounds {
			warm = p.Stats()
		}
		for _, t := range seq {
			p.Predict()
			p.Update(t)
		}
	}
	final := p.Stats()
	return Stats{
		Predictions: final.Predictions - warm.Predictions,
		Correct:     final.Correct - warm.Correct,
	}
}

func TestBasicLearnsDeterministicSequence(t *testing.T) {
	// Period-4 sequence A B A C: every successor is determined by the
	// previous two traces, so depth>=1 must converge to 100%.
	seq := []*trace.Trace{tr(0x1000, 0), tr(0x2000, 1), tr(0x1000, 0), tr(0x3000, 2)}
	p := MustNew(Config{Depth: 1, IndexBits: 14})
	st := drive(p, seq, 50, 10)
	if st.Correct != st.Predictions {
		t.Errorf("steady state: %d/%d correct", st.Correct, st.Predictions)
	}
}

func TestDepthZeroCannotDisambiguate(t *testing.T) {
	// With depth 0, trace A's successor alternates B/C and cannot be
	// predicted reliably.
	seq := []*trace.Trace{tr(0x1000, 0), tr(0x2000, 1), tr(0x1000, 0), tr(0x3000, 2)}
	p := MustNew(Config{Depth: 0, IndexBits: 14})
	st := drive(p, seq, 50, 10)
	if st.Correct == st.Predictions {
		t.Errorf("depth 0 impossibly predicted alternating successor perfectly (%d/%d)",
			st.Correct, st.Predictions)
	}
}

func TestHybridLearnsDeterministicSequence(t *testing.T) {
	seq := []*trace.Trace{tr(0x1000, 0), tr(0x2000, 1), tr(0x1000, 0), tr(0x3000, 2)}
	for _, rhs := range []bool{false, true} {
		p := MustNew(Config{Depth: 2, IndexBits: 14, Hybrid: true, UseRHS: rhs})
		st := drive(p, seq, 50, 10)
		if st.Correct != st.Predictions {
			t.Errorf("rhs=%v steady state: %d/%d correct", rhs, st.Correct, st.Predictions)
		}
	}
}

func TestCounterReplaceOnZero(t *testing.T) {
	// White-box: correlated counter policy is inc-1/dec-2 with
	// replacement only at zero. Depth 0, so the table index is a
	// function of the most recent trace's hash alone.
	p := MustNew(Config{Depth: 0, IndexBits: 10}).(*basic)
	a, b := tr(0x1004, 0), tr(0x1008, 0)

	// Locate the entry for the path [a].
	h := p.hist
	h.Push(a.Hash)
	idxA := p.cfg.DOLC.IndexOf(&h)

	// Reinforce [a] -> a four times (a, a, a, a, a stream).
	for i := 0; i < 5; i++ {
		p.Predict()
		p.Update(a)
	}
	// ent reads the SoA table back into one comparable view.
	type ent struct {
		valid, altValid bool
		val, alt        uint64
		ctr             uint8
	}
	at := func(i uint32) ent {
		m := p.tabMeta[i]
		return ent{
			valid: m&entValid != 0, altValid: m&entAltValid != 0,
			val: p.tabVal[i], alt: p.tabAlt[i], ctr: uint8(m >> 8),
		}
	}
	if e := at(idxA); !e.valid || e.val != uint64(a.ID) || e.ctr != 3 {
		t.Fatalf("entry = %+v, want A with saturated ctr 3", e)
	}

	// Now alternate a, b: each (a -> b) observation decrements [a]'s
	// counter by 2 until replacement at zero.
	step := func() ent {
		p.Predict()
		p.Update(b) // [a] -> b: wrong w.r.t. stored a
		p.Predict()
		p.Update(a) // [b] -> a: trains the other entry
		return at(idxA)
	}
	if e := step(); e.val != uint64(a.ID) || e.ctr != 1 || !e.altValid || e.alt != uint64(b.ID) {
		t.Fatalf("after 1 miss entry = %+v", e)
	}
	if e := step(); e.val != uint64(a.ID) || e.ctr != 0 {
		t.Fatalf("after 2 misses entry = %+v", e)
	}
	if e := step(); e.val != uint64(b.ID) || e.alt != uint64(a.ID) || !e.altValid {
		t.Fatalf("after 3 misses entry = %+v (want replacement)", e)
	}
}

func TestHybridTagSelectsSecondary(t *testing.T) {
	p, err := NewHybrid(Config{Depth: 3, IndexBits: 14})
	if err != nil {
		t.Fatal(err)
	}
	a, b := tr(0x1004, 0), tr(0x1008, 0)
	// Train: A follows B and B follows A, repeatedly.
	for i := 0; i < 20; i++ {
		p.Predict()
		p.Update(a)
		p.Predict()
		p.Update(b)
	}
	pred, tok := p.Lookup()
	if !pred.Valid {
		t.Fatal("no prediction after training")
	}
	if pred.ID != a.ID {
		t.Errorf("predicted %v, want %v", pred.ID, a.ID)
	}
	// The secondary must know B's successor too.
	if !tok.secValid || tok.secPredVal != uint64(a.ID) {
		t.Errorf("secondary: valid=%v val=%#x", tok.secValid, tok.secPredVal)
	}
}

func TestSecondaryFilterSuppressesCorrelatedUpdate(t *testing.T) {
	// Single-successor behaviour: X is always followed by Y, approached
	// via many different paths. With the filter, once the secondary
	// saturates the correlated table stops being written.
	mk := func(filter bool) *Hybrid {
		p, err := NewHybrid(Config{
			Depth: 3, IndexBits: 12, SecondaryFilter: boolPtr(filter)})
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	run := func(p *Hybrid) int {
		x, y := tr(0x1010, 0), tr(0x1020, 0)
		// Phase 1: one fixed path saturates the secondary's X -> Y entry.
		pre0 := tr(0x1030, 0)
		for i := 0; i < 30; i++ {
			for _, t := range []*trace.Trace{pre0, x, y} {
				p.Predict()
				p.Update(t)
			}
		}
		// Phase 2: many fresh paths reach X. With the filter, the
		// saturated-and-correct secondary suppresses correlated writes
		// for these paths; without it every path claims an entry.
		for i := 0; i < 64; i++ {
			pre := tr(0x1100+uint32(i)*4, 0)
			for _, t := range []*trace.Trace{pre, x, y} {
				p.Predict()
				p.Update(t)
			}
		}
		n := 0
		for _, m := range p.corrMeta {
			if m&entValid != 0 {
				n++
			}
		}
		return n
	}
	withFilter := run(mk(true))
	without := run(mk(false))
	if withFilter >= without {
		t.Errorf("correlated entries: filter=%d, no-filter=%d; filter should reduce pollution",
			withFilter, without)
	}
}

func TestSaturatedSecondaryOverridesCorrelated(t *testing.T) {
	p, err := NewHybrid(Config{Depth: 1, IndexBits: 12})
	if err != nil {
		t.Fatal(err)
	}
	x, y := tr(0x1010, 0), tr(0x1020, 0)
	for i := 0; i < 40; i++ {
		p.Predict()
		p.Update(x)
		p.Predict()
		p.Update(y)
	}
	_, tok := p.Lookup()
	if !tok.secSaturated {
		t.Fatal("secondary not saturated after 40 consistent rounds")
	}
	pred, _ := p.Lookup()
	if !pred.FromSecondary {
		t.Error("saturated secondary did not supply the prediction")
	}
}

func TestRHSRecoversPreCallContext(t *testing.T) {
	// Two call sites invoke the same long subroutine; the trace after
	// the return depends on the call site. The subroutine is longer than
	// the history, so without the RHS the post-return prediction cannot
	// be disambiguated.
	sub := make([]*trace.Trace, 10)
	for i := range sub {
		sub[i] = tr(0x9000+uint32(i)*0x40, 0)
	}
	subRet := retTr(0xa000)
	seq := []*trace.Trace{}
	addCall := func(site uint32, post uint32) {
		seq = append(seq, callTr(site, 1))
		seq = append(seq, sub...)
		seq = append(seq, subRet, tr(post, 0))
	}
	addCall(0x1004, 0x1104)
	addCall(0x1008, 0x1208)

	mk := func(rhs bool) Stats {
		p := MustNew(Config{Depth: 7, IndexBits: 15, Hybrid: true, UseRHS: rhs})
		return drive(p, seq, 60, 10)
	}
	with := mk(true)
	without := mk(false)
	if with.Correct != with.Predictions {
		t.Errorf("with RHS: %d/%d in steady state, want perfect", with.Correct, with.Predictions)
	}
	if without.Correct >= without.Predictions {
		t.Errorf("without RHS impossibly perfect: %d/%d", without.Correct, without.Predictions)
	}
}

func TestAlternatePredictionCatchesSecondLikely(t *testing.T) {
	// Successor of X alternates between Y and Z unpredictably for a
	// depth-0 view; the alternate should hold the other candidate.
	p := MustNew(Config{Depth: 0, IndexBits: 12})
	x, y, z := tr(0x1004, 0), tr(0x1008, 0), tr(0x100c, 0)
	rng := rand.New(rand.NewSource(9))
	var primaryWrong, altRight uint64
	for i := 0; i < 2000; i++ {
		p.Predict()
		p.Update(x)
		pred := p.Predict()
		next := y
		if rng.Intn(2) == 0 {
			next = z
		}
		if pred.Valid && pred.ID != next.ID {
			primaryWrong++
			if pred.AltValid && pred.Alt == next.ID {
				altRight++
			}
		}
		p.Update(next)
	}
	if primaryWrong == 0 {
		t.Fatal("primary never wrong on random successor")
	}
	if float64(altRight)/float64(primaryWrong) < 0.5 {
		t.Errorf("alternate caught only %d of %d primary misses", altRight, primaryWrong)
	}
}

func TestUnboundedNoAliasing(t *testing.T) {
	// Feed many distinct deterministic contexts; an unbounded hybrid
	// must reach perfection regardless of how many paths exist.
	u := MustNewUnbounded(UnboundedConfig{Depth: 1, Hybrid: true})
	var seq []*trace.Trace
	for i := 0; i < 64; i++ {
		seq = append(seq, tr(0x1000+uint32(i)*0x10, 0), tr(0x20000+uint32(i)*0x10, 0))
	}
	st := drive(u, seq, 30, 5)
	if st.Correct != st.Predictions {
		t.Errorf("unbounded steady state %d/%d", st.Correct, st.Predictions)
	}
	if u.TableEntries() == 0 {
		t.Error("no entries learned")
	}
}

func TestUnboundedMatchesHybridSemantics(t *testing.T) {
	// On a stream small enough that the bounded tables never alias, the
	// bounded hybrid and unbounded hybrid must agree in steady state.
	seq := []*trace.Trace{tr(0x1000, 0), tr(0x2000, 1), tr(0x1000, 0), tr(0x3000, 2), tr(0x4000, 3)}
	b := MustNew(Config{Depth: 2, IndexBits: 16, Hybrid: true})
	u := MustNewUnbounded(UnboundedConfig{Depth: 2, Hybrid: true})
	sb := drive(b, seq, 40, 10)
	su := drive(u, seq, 40, 10)
	if sb.Correct != sb.Predictions || su.Correct != su.Predictions {
		t.Errorf("bounded %d/%d, unbounded %d/%d; both should be perfect",
			sb.Correct, sb.Predictions, su.Correct, su.Predictions)
	}
}

func TestUnboundedRHS(t *testing.T) {
	sub := make([]*trace.Trace, 10)
	for i := range sub {
		sub[i] = tr(0x9000+uint32(i)*0x40, 0)
	}
	subRet := retTr(0xa000)
	var seq []*trace.Trace
	for _, s := range []struct{ site, post uint32 }{{0x1004, 0x1104}, {0x1008, 0x1208}} {
		seq = append(seq, callTr(s.site, 1))
		seq = append(seq, sub...)
		seq = append(seq, subRet, tr(s.post, 0))
	}
	with := drive(MustNewUnbounded(UnboundedConfig{Depth: 7, Hybrid: true, UseRHS: true}), seq, 60, 10)
	without := drive(MustNewUnbounded(UnboundedConfig{Depth: 7, Hybrid: true}), seq, 60, 10)
	if with.Correct != with.Predictions {
		t.Errorf("unbounded with RHS: %d/%d", with.Correct, with.Predictions)
	}
	if without.Correct >= without.Predictions {
		t.Errorf("unbounded without RHS impossibly perfect")
	}
}

func TestCostReducedTracksFullAccuracy(t *testing.T) {
	// The cost-reduced predictor stores 10-bit hashed IDs; on the same
	// stream its accuracy must be at least the full predictor's (hash
	// collisions can only turn misses into spurious hits).
	mkSeq := func() []*trace.Trace {
		rng := rand.New(rand.NewSource(17))
		var seq []*trace.Trace
		for i := 0; i < 40; i++ {
			seq = append(seq, tr(0x1000+uint32(rng.Intn(4096))*4, uint8(rng.Intn(64))))
		}
		return seq
	}
	full := MustNew(Config{Depth: 3, IndexBits: 14, Hybrid: true})
	red := MustNew(Config{Depth: 3, IndexBits: 14, Hybrid: true, CostReduced: true})
	sf := drive(full, mkSeq(), 30, 10)
	sr := drive(red, mkSeq(), 30, 10)
	if sr.Correct < sf.Correct {
		t.Errorf("cost-reduced correct %d < full %d", sr.Correct, sf.Correct)
	}
	// And it must not be wildly optimistic on this small stream.
	if sr.Correct > sf.Correct+sf.Predictions/20 {
		t.Errorf("cost-reduced suspiciously optimistic: %d vs %d of %d",
			sr.Correct, sf.Correct, sf.Predictions)
	}
}

func TestHybridCheckpointRestore(t *testing.T) {
	p, err := NewHybrid(Config{Depth: 3, IndexBits: 14, Hybrid: true, UseRHS: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		p.Predict()
		p.Update(tr(0x1000+uint32(i)*4, 0))
	}
	_, tokBefore := p.Lookup()
	cp := p.Checkpoint()
	// Speculatively advance down a wrong path.
	p.Advance(callTr(0x7777, 1))
	p.Advance(tr(0x8888, 0))
	_, tokMid := p.Lookup()
	if tokMid.CorrIdx == tokBefore.CorrIdx && tokMid.Tag == tokBefore.Tag {
		t.Log("warning: speculative path coincidentally indexed the same entry")
	}
	p.Restore(cp)
	_, tokAfter := p.Lookup()
	if tokAfter != tokBefore {
		t.Errorf("restore mismatch: %+v vs %+v", tokAfter, tokBefore)
	}
}

func TestStatsArithmetic(t *testing.T) {
	s := Stats{Predictions: 200, Correct: 150, AltCorrect: 25}
	if s.Mispredictions() != 50 {
		t.Errorf("Mispredictions = %d", s.Mispredictions())
	}
	if s.MissRate() != 25 {
		t.Errorf("MissRate = %v", s.MissRate())
	}
	if s.AltMissRate() != 12.5 {
		t.Errorf("AltMissRate = %v", s.AltMissRate())
	}
	var zero Stats
	if zero.MissRate() != 0 || zero.AltMissRate() != 0 {
		t.Error("zero stats rates not 0")
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{Depth: -1},
		{Depth: 8},
		{Depth: 0, IndexBits: 30},
		{Depth: 0, TagBits: 20},
		{Depth: 0, SecondaryBits: 25},
		{Depth: 0, UseRHS: true}, // RHS without hybrid
	}
	for i, cfg := range bad {
		if _, err := New(cfg); err == nil {
			t.Errorf("bad config %d accepted: %+v", i, cfg)
		}
	}
	if _, err := NewUnbounded(UnboundedConfig{Depth: 9}); err == nil {
		t.Error("unbounded depth 9 accepted")
	}
	if _, err := NewUnbounded(UnboundedConfig{UseRHS: true}); err == nil {
		t.Error("unbounded RHS without hybrid accepted")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustNew on bad config did not panic")
		}
	}()
	MustNew(Config{Depth: -1})
}

// Property-style check: random streams keep invariants.
func TestStatsInvariantsRandomStream(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	preds := []NextTracePredictor{
		MustNew(Config{Depth: 2, IndexBits: 12}),
		MustNew(Config{Depth: 4, IndexBits: 12, Hybrid: true}),
		MustNew(Config{Depth: 7, IndexBits: 12, Hybrid: true, UseRHS: true}),
		MustNewUnbounded(UnboundedConfig{Depth: 5, Hybrid: true, UseRHS: true}),
	}
	for i := 0; i < 3000; i++ {
		t0 := tr(0x1000+uint32(rng.Intn(512))*4, uint8(rng.Intn(64)))
		t0.Calls = rng.Intn(3)
		t0.EndsInRet = rng.Intn(4) == 0
		for _, p := range preds {
			p.Predict()
			p.Update(t0)
		}
	}
	for i, p := range preds {
		s := p.Stats()
		if s.Predictions != 3000 {
			t.Errorf("pred %d: Predictions = %d", i, s.Predictions)
		}
		if s.Correct > s.Predictions {
			t.Errorf("pred %d: Correct > Predictions", i)
		}
		if s.AltCorrect > s.AltPresent {
			t.Errorf("pred %d: AltCorrect > AltPresent", i)
		}
		if s.Cold > s.Mispredictions() {
			t.Errorf("pred %d: Cold %d > mispredictions %d", i, s.Cold, s.Mispredictions())
		}
		if r := s.MissRate(); r < 0 || r > 100 {
			t.Errorf("pred %d: MissRate %v", i, r)
		}
	}
}
