package predictor

import (
	"bytes"
	"math/rand"
	"testing"

	"pathtrace/internal/trace"
)

func TestTageLearnsDeterministicSequence(t *testing.T) {
	seq := []*trace.Trace{tr(0x1000, 0), tr(0x2000, 1), tr(0x1000, 0), tr(0x3000, 2)}
	p := MustNew(Config{Backend: "tage", Depth: 2, IndexBits: 14})
	st := drive(p, seq, 50, 10)
	if st.Correct != st.Predictions {
		t.Errorf("steady state: %d/%d correct", st.Correct, st.Predictions)
	}
}

func TestTageDepthZeroCannotDisambiguate(t *testing.T) {
	seq := []*trace.Trace{tr(0x1000, 0), tr(0x2000, 1), tr(0x1000, 0), tr(0x3000, 2)}
	p := MustNew(Config{Backend: "tage", Depth: 0, IndexBits: 14})
	st := drive(p, seq, 50, 10)
	if st.Correct == st.Predictions {
		t.Errorf("depth 0 impossibly predicted alternating successor perfectly (%d/%d)",
			st.Correct, st.Predictions)
	}
}

func TestTageRejectsCostReduced(t *testing.T) {
	if _, err := New(Config{Backend: "tage", CostReduced: true}); err == nil {
		t.Fatal("tage accepted a cost-reduced config")
	}
}

// tageWorkload drives a deterministic pseudo-random trace mix with
// enough repeated paths that tagged tables allocate, train, and evict.
func tageWorkload(p NextTracePredictor, seed int64, n int) {
	rng := rand.New(rand.NewSource(seed))
	traces := make([]*trace.Trace, 64)
	for i := range traces {
		traces[i] = tr(uint32(0x1000+i*0x40), uint8(i))
	}
	state := 0
	for i := 0; i < n; i++ {
		p.Predict()
		// Mostly deterministic walk with occasional random jumps, so the
		// stream has both predictable and hard paths.
		if rng.Intn(8) == 0 {
			state = rng.Intn(len(traces))
		} else {
			state = (state*5 + 3) % len(traces)
		}
		p.Update(traces[state])
	}
}

func TestTageSaveRestoreResumesBitIdentically(t *testing.T) {
	cfg := Config{Backend: "tage", Depth: 7, IndexBits: 12}
	b, ok := BackendByName("tage")
	if !ok {
		t.Fatal("tage backend not registered")
	}

	orig := MustNew(cfg)
	tageWorkload(orig, 42, 20_000)

	state, err := b.Save(orig)
	if err != nil {
		t.Fatal(err)
	}
	restored, err := b.Restore(state, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := restored.Stats(), orig.Stats(); !got.Equal(want) {
		t.Fatalf("restored stats %+v != original %+v", got, want)
	}

	// Same continuation stream through both: every prediction must
	// match, and so must the final states.
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 5_000; i++ {
		po, pr := orig.Predict(), restored.Predict()
		if po != pr {
			t.Fatalf("round %d: original %+v restored %+v", i, po, pr)
		}
		next := tr(uint32(0x1000+rng.Intn(64)*0x40), uint8(rng.Intn(64)))
		orig.Update(next)
		restored.Update(next)
	}
	so, _ := b.Save(orig)
	sr, _ := b.Save(restored)
	if !bytes.Equal(so, sr) {
		t.Fatal("diverged after resume: saved states differ")
	}
}

func TestTageRestoreRejectsMismatchedGeometry(t *testing.T) {
	b, _ := BackendByName("tage")
	p := MustNew(Config{Backend: "tage", Depth: 7, IndexBits: 12})
	tageWorkload(p, 1, 1_000)
	state, err := b.Save(p)
	if err != nil {
		t.Fatal(err)
	}
	for _, cfg := range []Config{
		{Backend: "tage", Depth: 3, IndexBits: 12},
		{Backend: "tage", Depth: 7, IndexBits: 16},
		{Backend: "tage", Depth: 7, IndexBits: 12, TagBits: 12},
	} {
		if _, err := b.Restore(state, cfg); err == nil {
			t.Errorf("restore accepted mismatched config %+v", cfg)
		}
	}
}

func TestTageRestoreRejectsCorruptState(t *testing.T) {
	b, _ := BackendByName("tage")
	cfg := Config{Backend: "tage", Depth: 7, IndexBits: 12}
	p := MustNew(cfg)
	tageWorkload(p, 2, 5_000)
	state, err := b.Save(p)
	if err != nil {
		t.Fatal(err)
	}

	// Truncations at every boundary must error, never panic.
	for _, n := range []int{0, 1, 10, len(state) / 2, len(state) - 1} {
		if _, err := b.Restore(state[:n], cfg); err == nil {
			t.Errorf("restore accepted %d-byte truncation", n)
		}
	}
	// A wrong version byte is refused outright.
	bad := append([]byte(nil), state...)
	bad[0] = 99
	if _, err := b.Restore(bad, cfg); err == nil {
		t.Error("restore accepted unknown state version")
	}
	// Trailing garbage is refused.
	if _, err := b.Restore(append(append([]byte(nil), state...), 0), cfg); err == nil {
		t.Error("restore accepted trailing bytes")
	}
}

func TestTageHotPathDoesNotAllocate(t *testing.T) {
	p := MustNew(Config{Backend: "tage", Depth: 7, IndexBits: 12})
	traces := make([]*trace.Trace, 16)
	for i := range traces {
		traces[i] = tr(uint32(0x1000+i*0x40), uint8(i))
	}
	tageWorkload(p, 3, 2_000) // warm the tables first
	i := 0
	allocs := testing.AllocsPerRun(10_000, func() {
		p.Predict()
		p.Update(traces[i%len(traces)])
		i++
	})
	if allocs != 0 {
		t.Errorf("predict/update allocates %v per round, want 0", allocs)
	}
}

func FuzzTageStateDecode(f *testing.F) {
	cfg := Config{Backend: "tage", Depth: 7, IndexBits: 10}
	b, _ := BackendByName("tage")

	seedP := MustNew(cfg)
	tageWorkload(seedP, 11, 3_000)
	if state, err := b.Save(seedP); err == nil {
		f.Add(state)
	}
	f.Add([]byte{tageStateVersion})
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := b.Restore(data, cfg) // must not panic or overallocate
		if err != nil {
			return
		}
		// Valid states round-trip to a byte-identical fixed point.
		enc1, err := b.Save(p)
		if err != nil {
			t.Fatalf("re-save of decoded state failed: %v", err)
		}
		p2, err := b.Restore(enc1, cfg)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		enc2, err := b.Save(p2)
		if err != nil {
			t.Fatalf("second re-save failed: %v", err)
		}
		if !bytes.Equal(enc1, enc2) {
			t.Fatal("encode/decode did not reach a fixed point")
		}
	})
}
