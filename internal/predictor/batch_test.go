package predictor

import (
	"reflect"
	"testing"

	"pathtrace/internal/faults"
	"pathtrace/internal/stream"
	"pathtrace/internal/trace"
	"pathtrace/internal/workload"
)

// captureTraces simulates a workload prefix and materialises its trace
// stream into a flat slice the batch tests can slice up freely.
func captureTraces(t *testing.T, name string, limit uint64) []trace.Trace {
	t.Helper()
	w, ok := workload.ByName(name)
	if !ok {
		t.Fatalf("unknown workload %q", name)
	}
	s, err := stream.Capture(nil, w, limit, trace.DefaultConfig())
	if err != nil {
		t.Fatalf("capture %s: %v", name, err)
	}
	out := make([]trace.Trace, s.Len())
	for i := range out {
		s.At(i, &out[i])
	}
	return out
}

// runScalar drives p through the strict Predict/Update alternation and
// returns every prediction made.
func runScalar(p NextTracePredictor, traces []trace.Trace) []Prediction {
	preds := make([]Prediction, len(traces))
	for i := range traces {
		preds[i] = p.Predict()
		p.Update(&traces[i])
	}
	return preds
}

// runBatched drives p through the same rounds via the package batch
// helpers in uneven chunks (batchSize should not divide len(traces), so
// the final short batch is exercised too).
func runBatched(p NextTracePredictor, traces []trace.Trace, batchSize int) []Prediction {
	preds := make([]Prediction, len(traces))
	for off := 0; off < len(traces); off += batchSize {
		end := off + batchSize
		if end > len(traces) {
			end = len(traces)
		}
		PredictBatch(p, traces[off:end], preds[off:end])
	}
	return preds
}

// checkIdentical asserts the scalar and batched runs agree on every
// prediction, the stats counters, and (when the backend supports
// checkpointing) the entire saved table state.
func checkIdentical(t *testing.T, label string, sp, bp NextTracePredictor, sPreds, bPreds []Prediction) {
	t.Helper()
	for i := range sPreds {
		if sPreds[i] != bPreds[i] {
			t.Fatalf("%s: prediction %d diverged: scalar %+v batch %+v", label, i, sPreds[i], bPreds[i])
		}
	}
	if sp.Stats() != bp.Stats() {
		t.Fatalf("%s: stats diverged:\nscalar %+v\nbatch  %+v", label, sp.Stats(), bp.Stats())
	}
	sSt, sErr := Save(sp)
	bSt, bErr := Save(bp)
	if (sErr == nil) != (bErr == nil) {
		t.Fatalf("%s: Save support diverged: scalar err %v, batch err %v", label, sErr, bErr)
	}
	if sErr != nil {
		return // backend without checkpointing: stats + preds is the contract
	}
	if !reflect.DeepEqual(sSt, bSt) {
		t.Fatalf("%s: saved table state diverged after identical rounds", label)
	}
}

// TestBatchBitIdenticalScalar is the cross-check behind the "thin
// wrappers over the batch path" claim: for every workload and the three
// paper backends, N scalar rounds and the same N rounds run through
// PredictBatch (odd-sized chunks) must be bit-identical — predictions,
// counters, and full table contents.
func TestBatchBitIdenticalScalar(t *testing.T) {
	configs := []struct {
		label string
		cfg   Config
	}{
		{"hybrid", Config{Depth: 5, IndexBits: 12, Hybrid: true, UseRHS: true}},
		{"basic", Config{Depth: 5, IndexBits: 12}},
		{"costreduced", Config{Depth: 5, IndexBits: 12, CostReduced: true}},
	}
	for _, name := range workload.Names() {
		traces := captureTraces(t, name, 20_000)
		if len(traces) < 64 {
			t.Fatalf("%s: capture too short (%d traces) to exercise batching", name, len(traces))
		}
		for _, c := range configs {
			label := name + "/" + c.label
			sp, bp := MustNew(c.cfg), MustNew(c.cfg)
			sPreds := runScalar(sp, traces)
			bPreds := runBatched(bp, traces, 17)
			checkIdentical(t, label, sp, bp, sPreds, bPreds)
		}
	}
}

// TestBatchBitIdenticalUnderFaults repeats the cross-check with
// deterministic fault injection live: the injector advances once per
// round in both regimes, so the fault streams — and therefore the
// corrupted tables — must line up exactly.
func TestBatchBitIdenticalUnderFaults(t *testing.T) {
	fcfg, err := faults.ParseSpec("table:1e-3,sec:1e-3,history:1e-4,bits:2")
	if err != nil {
		t.Fatal(err)
	}
	fcfg.Seed = 42
	for _, name := range []string{"go", "gcc"} {
		traces := captureTraces(t, name, 20_000)
		mk := func() NextTracePredictor {
			return MustNew(Config{
				Depth: 5, IndexBits: 12, Hybrid: true, UseRHS: true,
				Faults: faults.New(fcfg), // fresh injector per predictor
			})
		}
		sp, bp := mk(), mk()
		sPreds := runScalar(sp, traces)
		bPreds := runBatched(bp, traces, 17)
		checkIdentical(t, name+"/hybrid+faults", sp, bp, sPreds, bPreds)
	}
}

// TestBatchGenericFallback checks the scalar-loop fallback used for
// backends without a native batch loop (tage) against plain scalar
// driving, and that the helpers report the batch's correct count.
func TestBatchGenericFallback(t *testing.T) {
	traces := captureTraces(t, "go", 20_000)
	cfg := Config{Backend: "tage", Depth: 5, IndexBits: 12}
	sp, bp := MustNew(cfg), MustNew(cfg)
	if _, ok := bp.(BatchPredictor); ok {
		t.Fatalf("tage unexpectedly implements BatchPredictor; pick another fallback backend for this test")
	}
	sPreds := runScalar(sp, traces)
	bPreds := make([]Prediction, len(traces))
	correct := PredictBatch(bp, traces, bPreds)
	for i := range sPreds {
		if sPreds[i] != bPreds[i] {
			t.Fatalf("fallback prediction %d diverged", i)
		}
	}
	if sp.Stats() != bp.Stats() {
		t.Fatalf("fallback stats diverged:\nscalar %+v\nbatch  %+v", sp.Stats(), bp.Stats())
	}
	if want := bp.Stats().Correct; correct != want {
		t.Fatalf("fallback correct count = %d, want %d", correct, want)
	}
}

// TestNativeBatchImplementations pins down which backends carry the
// native loop: the paper predictors must, so the serving hot path never
// silently degrades to per-round interface dispatch.
func TestNativeBatchImplementations(t *testing.T) {
	for _, c := range []struct {
		label string
		cfg   Config
	}{
		{"hybrid", Config{Hybrid: true}},
		{"basic", Config{}},
		{"costreduced", Config{CostReduced: true}},
	} {
		if _, ok := MustNew(c.cfg).(BatchPredictor); !ok {
			t.Errorf("%s: no native BatchPredictor implementation", c.label)
		}
	}
}
