package predictor

import (
	"fmt"

	"pathtrace/internal/trace"
)

// Confident wraps a hybrid predictor with a JRS-style resetting
// confidence estimator (Jacobson, Rotenberg, Smith: "Assigning
// Confidence to Conditional Branch Predictions", MICRO-29 1996 — the
// same authors' companion mechanism, applied here at trace granularity).
//
// A table of resetting counters sits in parallel with the predictor,
// indexed like the correlated table: a counter increments (saturating)
// when the prediction it covers is correct and resets to zero on a
// misprediction. A prediction is flagged high-confidence when its
// counter has reached the threshold — i.e. the same path context has
// predicted correctly at least `threshold` consecutive times.
//
// Downstream uses: gating aggressive speculation on low-confidence
// traces, or choosing when to fetch the alternate trace eagerly.
type Confident struct {
	hybrid    *Hybrid
	ctrs      []uint8
	max       uint8
	threshold uint8
	tok       Token
	cstats    ConfStats
}

// ConfStats accumulates confidence-quality counters.
type ConfStats struct {
	High        uint64 // predictions flagged high-confidence
	HighCorrect uint64
	Low         uint64
	LowCorrect  uint64
}

// Coverage is the fraction of predictions flagged high-confidence, in
// percent.
func (s ConfStats) Coverage() float64 {
	total := s.High + s.Low
	if total == 0 {
		return 0
	}
	return 100 * float64(s.High) / float64(total)
}

// HighAccuracy is the accuracy of high-confidence predictions, percent.
func (s ConfStats) HighAccuracy() float64 {
	if s.High == 0 {
		return 0
	}
	return 100 * float64(s.HighCorrect) / float64(s.High)
}

// LowAccuracy is the accuracy of low-confidence predictions, percent.
func (s ConfStats) LowAccuracy() float64 {
	if s.Low == 0 {
		return 0
	}
	return 100 * float64(s.LowCorrect) / float64(s.Low)
}

// ConfidentConfig sizes the estimator.
type ConfidentConfig struct {
	Predictor Config
	// CounterBits is the resetting counter width (default 4).
	CounterBits int
	// Threshold is the consecutive-correct count required for high
	// confidence (default 8).
	Threshold int
}

// NewConfident builds the wrapped predictor.
func NewConfident(cfg ConfidentConfig) (*Confident, error) {
	cfg.Predictor.Hybrid = true
	h, err := NewHybrid(cfg.Predictor)
	if err != nil {
		return nil, err
	}
	if cfg.CounterBits == 0 {
		cfg.CounterBits = 4
	}
	if cfg.CounterBits < 1 || cfg.CounterBits > 8 {
		return nil, fmt.Errorf("predictor: confidence counter bits %d outside [1, 8]", cfg.CounterBits)
	}
	if cfg.Threshold == 0 {
		cfg.Threshold = 8
	}
	max := ctrMax(cfg.CounterBits)
	if cfg.Threshold < 1 || cfg.Threshold > max {
		return nil, fmt.Errorf("predictor: confidence threshold %d outside [1, %d]", cfg.Threshold, max)
	}
	return &Confident{
		hybrid:    h,
		ctrs:      make([]uint8, 1<<h.cfg.IndexBits),
		max:       uint8(max),
		threshold: uint8(cfg.Threshold),
	}, nil
}

// MustNewConfident is NewConfident for static configurations.
func MustNewConfident(cfg ConfidentConfig) *Confident {
	c, err := NewConfident(cfg)
	if err != nil {
		panic(err)
	}
	return c
}

// Predict returns the underlying prediction and whether it is flagged
// high-confidence.
func (c *Confident) Predict() (Prediction, bool) {
	pred, tok := c.hybrid.Lookup()
	c.tok = tok
	confident := pred.Valid && c.ctrs[tok.CorrIdx] >= c.threshold
	return pred, confident
}

// Update reveals the actual trace, trains the predictor, and maintains
// the resetting counter.
func (c *Confident) Update(actual *trace.Trace) {
	tok := c.tok
	correct := tok.Pred.Valid && tok.predVal == c.hybrid.cfg.storedVal(actual)
	confident := tok.Pred.Valid && c.ctrs[tok.CorrIdx] >= c.threshold
	if confident {
		c.cstats.High++
		if correct {
			c.cstats.HighCorrect++
		}
	} else {
		c.cstats.Low++
		if correct {
			c.cstats.LowCorrect++
		}
	}
	ctr := &c.ctrs[tok.CorrIdx]
	if correct {
		if *ctr < c.max {
			*ctr++
		}
	} else {
		*ctr = 0 // resetting counter: one miss clears confidence
	}
	c.hybrid.CommitUpdate(tok, actual)
	c.hybrid.Advance(actual)
}

// Stats returns the wrapped predictor's accuracy counters.
func (c *Confident) Stats() Stats { return c.hybrid.Stats() }

// ConfStats returns the confidence-quality counters.
func (c *Confident) ConfStats() ConfStats { return c.cstats }
