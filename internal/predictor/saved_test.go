package predictor

import (
	"errors"
	"math/rand"
	"testing"

	"pathtrace/internal/faults"
	"pathtrace/internal/trace"
)

// randStream generates a deterministic pseudo-random trace stream with
// calls and returns, exercising the history register, the RHS and both
// tables.
func randStream(seed int64, n int) []*trace.Trace {
	rng := rand.New(rand.NewSource(seed))
	out := make([]*trace.Trace, n)
	for i := range out {
		t := tr(0x1000+uint32(rng.Intn(256))*4, uint8(rng.Intn(64)))
		t.Calls = rng.Intn(3)
		t.EndsInRet = rng.Intn(4) == 0
		out[i] = t
	}
	return out
}

// checkSaveRestore warms a predictor, saves it mid-stream, restores it
// under restoreCfg, and asserts the original and the restored copy stay
// bit-identical — same Prediction every round, same Stats — over a
// fresh tail of the stream.
func checkSaveRestore(t *testing.T, buildCfg, restoreCfg Config) {
	t.Helper()
	warm := randStream(11, 4000)
	tail := randStream(13, 2000)

	orig := MustNew(buildCfg)
	for _, tc := range warm {
		orig.Predict()
		orig.Update(tc)
	}
	st, err := Save(orig)
	if err != nil {
		t.Fatalf("Save: %v", err)
	}
	restored, err := Restore(st, restoreCfg)
	if err != nil {
		t.Fatalf("Restore: %v", err)
	}
	if got, want := restored.Stats(), orig.Stats(); got != want {
		t.Fatalf("restored stats %+v != original %+v", got, want)
	}
	for i, tc := range tail {
		a, b := orig.Predict(), restored.Predict()
		if a != b {
			t.Fatalf("round %d: original predicted %+v, restored %+v", i, a, b)
		}
		orig.Update(tc)
		restored.Update(tc)
	}
	if got, want := restored.Stats(), orig.Stats(); got != want {
		t.Fatalf("after tail: restored stats %+v != original %+v", got, want)
	}
}

func TestSaveRestoreBitIdentical(t *testing.T) {
	cases := map[string]Config{
		"basic":       {Depth: 3, IndexBits: 12},
		"hybrid":      {Depth: 7, IndexBits: 12, Hybrid: true, UseRHS: true},
		"hybridNoRHS": {Depth: 5, IndexBits: 12, Hybrid: true},
		"costReduced": {Depth: 7, IndexBits: 12, Hybrid: true, UseRHS: true, CostReduced: true},
	}
	for name, cfg := range cases {
		cfg := cfg
		t.Run(name, func(t *testing.T) { checkSaveRestore(t, cfg, cfg) })
	}
}

// A fault-injected session must resume the exact fault sequence: the
// saved state carries the injector's PRNG positions, so the restore
// side needs no injector of its own.
func TestSaveRestoreResumesFaultStream(t *testing.T) {
	buildCfg := Config{
		Depth: 7, IndexBits: 12, Hybrid: true, UseRHS: true,
		Faults: faults.New(faults.Config{Seed: 7, Table: 0.02, Secondary: 0.02, History: 0.02, Bits: 2}),
	}
	restoreCfg := buildCfg
	restoreCfg.Faults = nil
	checkSaveRestore(t, buildCfg, restoreCfg)
}

func TestSaveUnboundedNotSnapshottable(t *testing.T) {
	p := MustNewUnbounded(UnboundedConfig{Depth: 5, Hybrid: true, UseRHS: true})
	if _, err := Save(p); !errors.Is(err, ErrNotSnapshottable) {
		t.Fatalf("Save(unbounded) = %v, want ErrNotSnapshottable", err)
	}
}

// warmState trains a predictor on a short stream and saves it.
func warmState(t *testing.T, cfg Config) *SavedState {
	t.Helper()
	p := MustNew(cfg)
	for _, tc := range randStream(5, 500) {
		p.Predict()
		p.Update(tc)
	}
	st, err := Save(p)
	if err != nil {
		t.Fatalf("Save: %v", err)
	}
	return st
}

func TestRestoreGeometryMismatch(t *testing.T) {
	cfg := Config{Depth: 7, IndexBits: 12, Hybrid: true, UseRHS: true}
	st := warmState(t, cfg)
	cases := map[string]Config{
		"indexBits":   {Depth: 7, IndexBits: 13, Hybrid: true, UseRHS: true},
		"depth":       {Depth: 6, IndexBits: 12, Hybrid: true, UseRHS: true},
		"noRHS":       {Depth: 7, IndexBits: 12, Hybrid: true},
		"costReduced": {Depth: 7, IndexBits: 12, Hybrid: true, UseRHS: true, CostReduced: true},
		"tagBits":     {Depth: 7, IndexBits: 12, Hybrid: true, UseRHS: true, TagBits: 8},
	}
	for name, c := range cases {
		if _, err := Restore(st, c); !errors.Is(err, ErrStateMismatch) {
			t.Errorf("%s: Restore = %v, want ErrStateMismatch", name, err)
		}
	}
}

func TestRestoreRejectsCorruptState(t *testing.T) {
	cfg := Config{Depth: 4, IndexBits: 10, Hybrid: true, UseRHS: true}
	mutations := map[string]func(*SavedState){
		"corr index out of range": func(st *SavedState) { st.Corr[0].Index = 1 << 30 },
		"corr indices not ascending": func(st *SavedState) {
			st.Corr[1].Index = st.Corr[0].Index
		},
		"corr counter overflow": func(st *SavedState) { st.Corr[0].Ctr = 0xFF },
		"corr value overflow":   func(st *SavedState) { st.Corr[0].Val = 1 << 63 },
		"sec index out of range": func(st *SavedState) {
			st.Sec[0].Index = 1 << 30
		},
		"sec counter overflow": func(st *SavedState) { st.Sec[0].Ctr = 0xFF },
		"history size":         func(st *SavedState) { st.Hist.Size = 0 },
		"history fill":         func(st *SavedState) { st.Hist.N = 99 },
		"missing RHS":          func(st *SavedState) { st.RHS = nil },
		"rhs bad capacity":     func(st *SavedState) { st.RHS.Max = 0 },
	}
	for name, mut := range mutations {
		st := warmState(t, cfg)
		if len(st.Corr) < 2 || len(st.Sec) < 1 {
			t.Fatalf("warm state too sparse for mutation %q (corr %d, sec %d)",
				name, len(st.Corr), len(st.Sec))
		}
		mut(st)
		if _, err := Restore(st, cfg); !errors.Is(err, ErrBadState) {
			t.Errorf("%s: Restore = %v, want ErrBadState", name, err)
		}
	}
	if _, err := Restore(nil, cfg); !errors.Is(err, ErrBadState) {
		t.Errorf("Restore(nil) = %v, want ErrBadState", err)
	}
}

func TestRestoreRejectsBasicWithSecondaryEntries(t *testing.T) {
	cfg := Config{Depth: 3, IndexBits: 10}
	st := warmState(t, cfg)
	st.Sec = append(st.Sec, SavedSecEntry{Index: 0, Val: 1, Ctr: 0})
	if _, err := Restore(st, cfg); !errors.Is(err, ErrBadState) {
		t.Fatalf("Restore = %v, want ErrBadState", err)
	}
}
