package predictor

import "pathtrace/internal/trace"

// This file defines the batched round protocol. A "round" is the
// paper's strict Predict/Update alternation (§4.1): predict the next
// trace, reveal the actual one, train. The batch entry points run N
// consecutive rounds in one call, which is what the serving hot path
// rides on — one wire frame, one shard-queue hop and one cache-resident
// table sweep amortized over the whole batch. Batched execution is
// bit-identical to N scalar rounds by construction: the native
// implementations (Hybrid, basic) drive exactly the same lookup/commit
// primitives the scalar methods wrap, and the generic fallback below
// literally calls Predict/Update in a loop.

// BatchPredictor is implemented by predictors with a native batched
// round loop. PredictBatch runs one full round per trace — preds[i]
// (when preds is non-nil) receives the prediction made before
// actuals[i] was revealed — and returns how many of those predictions
// were correct by the predictor's own accounting. UpdateBatch is
// PredictBatch without materializing the predictions.
//
// Backends without a native loop (tage, the unbounded study variants)
// are driven through the package-level PredictBatch/UpdateBatch
// helpers, which fall back to a scalar loop.
type BatchPredictor interface {
	NextTracePredictor
	PredictBatch(actuals []trace.Trace, preds []Prediction) (correct uint64)
	UpdateBatch(actuals []trace.Trace) (correct uint64)
}

// PredictBatch runs one full Predict/Update round per trace of actuals
// against p, using the native batch loop when p implements
// BatchPredictor and a generic scalar loop otherwise. When preds is
// non-nil it must be at least len(actuals) long; preds[i] receives the
// prediction that preceded actuals[i]. Returns the number of correct
// predictions in the batch (by the predictor's own counters, so it is
// authoritative for every variant including cost-reduced).
func PredictBatch(p NextTracePredictor, actuals []trace.Trace, preds []Prediction) uint64 {
	if bp, ok := p.(BatchPredictor); ok {
		return bp.PredictBatch(actuals, preds)
	}
	before := p.Stats().Correct
	for i := range actuals {
		pr := p.Predict()
		if preds != nil {
			preds[i] = pr
		}
		p.Update(&actuals[i])
	}
	return p.Stats().Correct - before
}

// UpdateBatch runs one full Predict/Update round per trace of actuals
// against p and returns the batch's correct-prediction count, using the
// native batch loop when available.
func UpdateBatch(p NextTracePredictor, actuals []trace.Trace) uint64 {
	if bp, ok := p.(BatchPredictor); ok {
		return bp.UpdateBatch(actuals)
	}
	before := p.Stats().Correct
	for i := range actuals {
		p.Predict()
		p.Update(&actuals[i])
	}
	return p.Stats().Correct - before
}
