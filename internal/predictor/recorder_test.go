package predictor

import (
	"testing"

	"pathtrace/internal/trace"
)

// countingRecorder tallies events the way the serving layer's metrics
// adapter does.
type countingRecorder struct {
	rounds, correct, cold, fromSec, replaced uint64
}

func (r *countingRecorder) Record(ev Event) {
	r.rounds++
	if ev&EvCorrect != 0 {
		r.correct++
	}
	if ev&EvCold != 0 {
		r.cold++
	}
	if ev&EvFromSecondary != 0 {
		r.fromSec++
	}
	if ev&EvReplaced != 0 {
		r.replaced++
	}
}

// recorderSeq is a cyclic program with one noisy branch point, so a run
// exercises correct, cold, and replacement rounds.
func recorderSeq(i int) *trace.Trace {
	if i%13 == 0 {
		return tr(uint32(0x9000+16*(i%3)), uint8(i%4))
	}
	return tr(uint32(0x1000+16*(i%7)), 0)
}

// driveRecorder runs the deterministic sequence through a predictor
// built from cfg and returns its Stats.
func driveRecorder(t *testing.T, cfg Config, n int) Stats {
	t.Helper()
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		p.Predict()
		p.Update(recorderSeq(i))
	}
	return p.Stats()
}

// TestRecorderMirrorsStats: every Update round delivers exactly one
// event, and the event counts agree with the predictor's own counters.
func TestRecorderMirrorsStats(t *testing.T) {
	for _, tc := range []struct {
		name string
		cfg  Config
	}{
		{"basic", Config{Depth: 3, IndexBits: 10}},
		{"hybrid", Config{Depth: 3, IndexBits: 10, Hybrid: true}},
		{"hybrid-nofilter", Config{Depth: 3, IndexBits: 10, Hybrid: true, SecondaryFilter: NoFilter()}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			var rec countingRecorder
			cfg := tc.cfg
			cfg.Recorder = &rec
			st := driveRecorder(t, cfg, 500)
			if st.Predictions != 500 {
				t.Fatalf("Predictions = %d, want 500", st.Predictions)
			}
			if rec.rounds != st.Predictions {
				t.Errorf("rounds = %d, want one event per prediction (%d)", rec.rounds, st.Predictions)
			}
			if rec.correct != st.Correct {
				t.Errorf("EvCorrect count = %d, want Stats.Correct = %d", rec.correct, st.Correct)
			}
			if rec.cold != st.Cold {
				t.Errorf("EvCold count = %d, want Stats.Cold = %d", rec.cold, st.Cold)
			}
			if rec.fromSec != st.FromSecondary {
				t.Errorf("EvFromSecondary count = %d, want Stats.FromSecondary = %d", rec.fromSec, st.FromSecondary)
			}
			// The noisy branch point guarantees table churn: replacement
			// events must fire on this sequence.
			if rec.replaced == 0 {
				t.Error("no EvReplaced events on a sequence with forced churn")
			}
		})
	}
}

// TestRecorderNilIsSafe: the default (no recorder) path must not panic
// and attaching one must not change accuracy.
func TestRecorderNilIsSafe(t *testing.T) {
	base := Config{Depth: 3, IndexBits: 10, Hybrid: true}
	plain := driveRecorder(t, base, 300)

	withCfg := base
	var rec countingRecorder
	withCfg.Recorder = &rec
	instrumented := driveRecorder(t, withCfg, 300)

	if !plain.Equal(instrumented) {
		t.Errorf("attaching a recorder changed predictor behaviour: %+v vs %+v", instrumented, plain)
	}
	if rec.rounds != 300 {
		t.Errorf("recorder saw %d rounds, want 300", rec.rounds)
	}
}
