package predictor

import (
	"fmt"
	"sort"
	"sync"
)

// This file is the backend registry: every predictor variant — the
// paper's basic/hybrid/cost-reduced designs, the unbounded-table
// idealisation, and modern contenders like TAGE — registers itself as a
// named Backend, and everything above this package (serving, snapshots,
// experiments, the CLIs) selects variants by name instead of switching
// on concrete types. New backends plug in without touching the serving
// or snapshot layers: a descriptor supplies construction plus optional
// save/restore codec hooks, and snapshot frames carry the backend name
// so a session restores through the same codec that saved it.

// Backend describes one registered predictor variant.
type Backend struct {
	// Name is the registry key ("hybrid", "tage", ...), the value of
	// Config.Backend, ntpd's -backend/-shadow flags, and the backend tag
	// stored in snapshot frames.
	Name string

	// Family groups backends whose saved states are mutually
	// intelligible. The paper variants share one codec (and one family),
	// so a frame saved by a cost-reduced server can restore on a server
	// whose geometry matches; a TAGE frame can never install into a
	// hybrid session, whatever its bytes claim.
	Family string

	// Desc is a one-line human description for listings.
	Desc string

	// New builds a predictor for this backend. Implementations normalise
	// cfg themselves (forcing the variant-selection fields they imply)
	// and reject configurations they cannot honour.
	New func(cfg Config) (NextTracePredictor, error)

	// Save serializes a predictor's complete state as this backend's
	// state section, and Restore rebuilds a predictor from one. Both nil
	// marks the backend not snapshottable (the unbounded idealisation);
	// serving rejects snapshot ops for it but serves it fine otherwise.
	Save    func(p NextTracePredictor) ([]byte, error)
	Restore func(state []byte, cfg Config) (NextTracePredictor, error)
}

// Snapshottable reports whether the backend carries save/restore codec
// hooks.
func (b Backend) Snapshottable() bool { return b.Save != nil && b.Restore != nil }

var (
	backendMu  sync.RWMutex
	backendMap = map[string]Backend{}
)

// RegisterBackend adds a backend to the registry. It panics on a
// duplicate or malformed descriptor — registration is an init-time
// programming act, not a runtime input.
func RegisterBackend(b Backend) {
	if b.Name == "" || b.Family == "" || b.New == nil {
		panic(fmt.Sprintf("predictor: malformed backend descriptor %+v", b))
	}
	if (b.Save == nil) != (b.Restore == nil) {
		panic(fmt.Sprintf("predictor: backend %q has only one of Save/Restore", b.Name))
	}
	backendMu.Lock()
	defer backendMu.Unlock()
	if _, dup := backendMap[b.Name]; dup {
		panic(fmt.Sprintf("predictor: duplicate backend %q", b.Name))
	}
	backendMap[b.Name] = b
}

// BackendByName finds a registered backend.
func BackendByName(name string) (Backend, bool) {
	backendMu.RLock()
	defer backendMu.RUnlock()
	b, ok := backendMap[name]
	return b, ok
}

// Backends lists every registered backend, sorted by name.
func Backends() []Backend {
	backendMu.RLock()
	defer backendMu.RUnlock()
	out := make([]Backend, 0, len(backendMap))
	for _, b := range backendMap {
		out = append(out, b)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// BackendNames lists the registered backend names, sorted.
func BackendNames() []string {
	bs := Backends()
	names := make([]string, len(bs))
	for i, b := range bs {
		names[i] = b.Name
	}
	return names
}

// ResolveBackend maps a Config to its backend. An explicit
// Config.Backend wins; otherwise the legacy variant-selection fields
// pick the paper backend ("hybrid" when cfg.Hybrid, else "basic"), so
// every pre-registry configuration keeps meaning exactly what it meant.
func ResolveBackend(cfg Config) (Backend, error) {
	name := cfg.Backend
	if name == "" {
		if cfg.Hybrid {
			name = "hybrid"
		} else {
			name = "basic"
		}
	}
	b, ok := BackendByName(name)
	if !ok {
		return Backend{}, fmt.Errorf("predictor: unknown backend %q (registered: %v)", name, BackendNames())
	}
	return b, nil
}

// FamilyPaper is the shared snapshot family of the 1997 paper variants.
const FamilyPaper = "paper"

func init() {
	RegisterBackend(Backend{
		Name:   "basic",
		Family: FamilyPaper,
		Desc:   "single-table correlated path predictor (§3.2)",
		New: func(cfg Config) (NextTracePredictor, error) {
			cfg.Hybrid = false
			full, err := cfg.withDefaults()
			if err != nil {
				return nil, err
			}
			if full.UseRHS {
				return nil, fmt.Errorf("predictor: RHS requires the hybrid predictor in this implementation")
			}
			return newBasic(full)
		},
		Save:    paperSave,
		Restore: paperRestore,
	})
	RegisterBackend(Backend{
		Name:   "hybrid",
		Family: FamilyPaper,
		Desc:   "hybrid correlated + secondary predictor, optional RHS (§3.3–3.4)",
		New: func(cfg Config) (NextTracePredictor, error) {
			cfg.Hybrid = true
			full, err := cfg.withDefaults()
			if err != nil {
				return nil, err
			}
			return newHybrid(full)
		},
		Save:    paperSave,
		Restore: paperRestore,
	})
	RegisterBackend(Backend{
		Name:   "costreduced",
		Family: FamilyPaper,
		Desc:   "hybrid storing hashed trace identifiers only (§5.5)",
		New: func(cfg Config) (NextTracePredictor, error) {
			cfg.Hybrid = true
			cfg.CostReduced = true
			full, err := cfg.withDefaults()
			if err != nil {
				return nil, err
			}
			return newHybrid(full)
		},
		Save: paperSave,
		Restore: func(state []byte, cfg Config) (NextTracePredictor, error) {
			// Normalise exactly like New, so a config that builds this
			// backend also restores it.
			cfg.CostReduced = true
			return paperRestore(state, cfg)
		},
	})
	RegisterBackend(Backend{
		Name:   "unbounded",
		Family: "unbounded",
		Desc:   "unbounded-table idealisation (§5.2); not snapshottable",
		New: func(cfg Config) (NextTracePredictor, error) {
			full, err := cfg.withDefaults()
			if err != nil {
				return nil, err
			}
			return NewUnbounded(UnboundedConfig{
				Depth: full.Depth, Hybrid: full.Hybrid,
				UseRHS: full.UseRHS, RHSDepth: full.RHSDepth,
				CounterBits: full.CounterBits, CounterInc: full.CounterInc,
				CounterDec: full.CounterDec, SecCounterBits: full.SecCounterBits,
				SecCounterDec: full.SecCounterDec, SecondaryFilter: full.SecondaryFilter,
			})
		},
	})
	RegisterBackend(Backend{
		Name:   "tage",
		Family: "tage",
		Desc:   "TAGE-style tagged tables over geometric path-history lengths",
		New: func(cfg Config) (NextTracePredictor, error) {
			full, err := cfg.withDefaults()
			if err != nil {
				return nil, err
			}
			return newTage(full)
		},
		Save:    tageSave,
		Restore: tageRestore,
	})
}

// paperSave and paperRestore are the shared codec hooks of the paper
// family: the SavedState structural layer plus the byte codec in
// papercodec.go.
func paperSave(p NextTracePredictor) ([]byte, error) {
	st, err := Save(p)
	if err != nil {
		return nil, err
	}
	return EncodeSavedState(st)
}

func paperRestore(state []byte, cfg Config) (NextTracePredictor, error) {
	st, err := DecodeSavedState(state)
	if err != nil {
		return nil, err
	}
	return Restore(st, cfg)
}
