package predictor

// satInc increments a saturating counter by `by`, clamping at max.
func satInc(v uint8, by, max int) uint8 {
	n := int(v) + by
	if n > max {
		n = max
	}
	return uint8(n)
}

// satDec decrements a saturating counter by `by`, clamping at zero.
func satDec(v uint8, by int) uint8 {
	n := int(v) - by
	if n < 0 {
		n = 0
	}
	return uint8(n)
}

// ctrMax returns the saturation value of a counter of the given width.
func ctrMax(bits int) int { return 1<<bits - 1 }
