package predictor

import (
	"pathtrace/internal/faults"
	"pathtrace/internal/history"
	"pathtrace/internal/trace"
)

// Hybrid is the predictor of §3.3–§3.4: a tagged correlated table plus
// a smaller secondary table indexed only by the hashed identifier of
// the most recent trace, with an optional Return History Stack.
//
// Selection rule: if the secondary entry's 4-bit counter is saturated,
// the secondary's prediction is used (and, when correct, the correlated
// table is not updated — the aliasing filter). Otherwise the correlated
// prediction is used when its tag matches the hashed identifier of the
// immediately preceding trace, and the secondary's otherwise.
//
// Hybrid exposes a lower-level API (Lookup / CommitUpdate / Advance /
// Checkpoint / Restore) so package engine can model speculative history
// with delayed table updates (§5.4).
//
// # Table layout
//
// The tables are stored struct-of-arrays: per entry, the small fields
// (tag, counter, valid/alt-valid flags) pack into one 32-bit meta word
// and the stored identifiers live in flat uint64 slices. A lookup or
// update round touches corrMeta+corrVal (+corrAlt only when an
// alternate exists) and secMeta+secVal — at most four cache lines of
// table data, with no pointer chasing and no padding, versus the 32-byte
// padded per-entry structs this replaced. The batched round loops
// (PredictBatch/UpdateBatch) sweep these flat slices directly.
type Hybrid struct {
	cfg  Config
	hist history.Reg
	rhs  *history.ReturnStack // nil when RHS disabled

	// Correlated table, struct-of-arrays. corrMeta packs
	// tag<<16 | ctr<<8 | flags (see entValid/entAltValid).
	corrMeta []uint32
	corrVal  []uint64
	corrAlt  []uint64

	// Secondary table. secMeta packs ctr<<8 | flags.
	secMeta []uint16
	secVal  []uint64

	stats     Stats
	tok       Token
	secFilter bool
	tagMask   uint32
	secMask   uint32
	ctrMaxC   int // ctrMax(CounterBits), hoisted off the round path
	ctrMaxS   int // ctrMax(SecCounterBits)
}

// Packed-entry flag bits, shared by both tables (and by basic's table).
const (
	entValid    = 1 << 0
	entAltValid = 1 << 1
)

// Token captures everything a Lookup decided, so the matching update
// can be applied later (possibly much later, under delayed updates).
type Token struct {
	CorrIdx      uint32
	SecIdx       uint32
	Tag          uint16
	Pred         Prediction
	predVal      uint64
	altVal       uint64
	secPredVal   uint64
	secValid     bool
	secSaturated bool
}

func newHybrid(cfg Config) (*Hybrid, error) {
	h, err := history.NewReg(cfg.Depth + 1)
	if err != nil {
		return nil, err
	}
	p := &Hybrid{
		cfg:       cfg,
		hist:      h,
		corrMeta:  make([]uint32, 1<<cfg.IndexBits),
		corrVal:   make([]uint64, 1<<cfg.IndexBits),
		corrAlt:   make([]uint64, 1<<cfg.IndexBits),
		secMeta:   make([]uint16, 1<<cfg.SecondaryBits),
		secVal:    make([]uint64, 1<<cfg.SecondaryBits),
		secFilter: *cfg.SecondaryFilter,
		tagMask:   uint32(1)<<cfg.TagBits - 1,
		secMask:   uint32(1)<<cfg.SecondaryBits - 1,
		ctrMaxC:   ctrMax(cfg.CounterBits),
		ctrMaxS:   ctrMax(cfg.SecCounterBits),
	}
	if cfg.UseRHS {
		rhs, err := history.NewReturnStack(cfg.RHSDepth)
		if err != nil {
			return nil, err
		}
		p.rhs = rhs
	}
	if cfg.Faults != nil {
		p.hist.SetFaultHook(cfg.Faults)
	}
	return p, nil
}

// injectFaults applies one fault-injection opportunity to each table.
// Called once per CommitUpdate — before the update logic and before
// the secondary-filter early return — so the injection streams consume
// the same draws in every configuration and at every rate. The XOR
// masks land on the same logical bits as in the array-of-structs
// layout: value and alternate words directly, tag and counter through
// their lanes of the packed meta word (the flag bits are never
// touched, exactly as the struct layout never flipped valid bits).
func (p *Hybrid) injectFaults() {
	inj := p.cfg.Faults
	if f := inj.CorrFault(len(p.corrMeta), p.cfg.valBits(), p.cfg.TagBits, p.cfg.CounterBits); f.Fire {
		switch f.Slot {
		case faults.SlotValue:
			p.corrVal[f.Index] ^= f.Mask
		case faults.SlotAlt:
			p.corrAlt[f.Index] ^= f.Mask
		case faults.SlotTag:
			p.corrMeta[f.Index] ^= uint32(uint16(f.Mask)) << 16
		case faults.SlotCounter:
			p.corrMeta[f.Index] ^= uint32(uint8(f.Mask)) << 8
		}
	}
	if f := inj.SecFault(len(p.secMeta), p.cfg.valBits(), p.cfg.SecCounterBits); f.Fire {
		switch f.Slot {
		case faults.SlotValue:
			p.secVal[f.Index] ^= f.Mask
		case faults.SlotCounter:
			p.secMeta[f.Index] ^= uint16(uint8(f.Mask)) << 8
		}
	}
}

// NewHybrid builds a hybrid predictor directly, for callers that need
// the lower-level API (package engine). cfg.Hybrid is implied.
func NewHybrid(cfg Config) (*Hybrid, error) {
	cfg.Hybrid = true
	full, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	return newHybrid(full)
}

// lookupInto computes the prediction for the next trace from the
// current path history into tok, without changing any state. It is the
// single lookup implementation: Predict, Lookup and the batch loops all
// run it, so the scalar and batched paths cannot diverge. Taking the
// token by pointer keeps the (large) Token off the copy path.
func (p *Hybrid) lookupInto(tok *Token) {
	idx := p.cfg.DOLC.IndexOf(&p.hist)
	h0 := uint32(p.hist.At(0))
	*tok = Token{
		CorrIdx: idx,
		SecIdx:  h0 & p.secMask,
		Tag:     uint16(h0 & p.tagMask),
	}
	sm := p.secMeta[tok.SecIdx]
	tok.secValid = sm&entValid != 0
	tok.secPredVal = p.secVal[tok.SecIdx]
	tok.secSaturated = tok.secValid && int(sm>>8) == p.ctrMaxS

	cm := p.corrMeta[idx]
	useSecondary := tok.secSaturated || !(cm&entValid != 0 && uint16(cm>>16) == tok.Tag)
	if useSecondary {
		if tok.secValid {
			tok.Pred.Valid = true
			tok.Pred.FromSecondary = true
			p.cfg.present(&tok.Pred, tok.secPredVal)
			tok.predVal = tok.secPredVal
		}
	} else {
		val := p.corrVal[idx]
		tok.Pred.Valid = true
		p.cfg.present(&tok.Pred, val)
		tok.predVal = val
		if cm&entAltValid != 0 {
			tok.Pred.AltValid = true
			tok.altVal = p.corrAlt[idx]
			if !p.cfg.CostReduced {
				tok.Pred.Alt = trace.ID(tok.altVal)
			}
		}
	}
}

// Lookup computes the prediction for the next trace from the current
// path history, without changing any state.
func (p *Hybrid) Lookup() (Prediction, Token) {
	var tok Token
	p.lookupInto(&tok)
	return tok.Pred, tok
}

// commit trains the tables for a prediction described by tok, given the
// trace that actually followed. Like lookupInto it is the single
// training implementation behind Update, CommitUpdate and the batch
// loops. It does not touch the path history; pair it with Advance.
func (p *Hybrid) commit(tok *Token, actual *trace.Trace) {
	if p.cfg.Faults != nil {
		p.injectFaults()
	}
	actualVal := p.cfg.storedVal(actual)

	var ev Event
	p.stats.Predictions++
	correct := tok.Pred.Valid && tok.predVal == actualVal
	if correct {
		p.stats.Correct++
		ev |= EvCorrect
	} else {
		if !tok.Pred.Valid {
			p.stats.Cold++
			ev |= EvCold
		}
		if tok.Pred.AltValid {
			p.stats.AltPresent++
			if tok.altVal == actualVal {
				p.stats.AltCorrect++
			}
		}
	}
	if tok.Pred.FromSecondary {
		p.stats.FromSecondary++
		ev |= EvFromSecondary
	}

	// Secondary table update.
	si := tok.SecIdx
	sm := p.secMeta[si]
	switch {
	case sm&entValid == 0:
		p.secVal[si] = actualVal
		p.secMeta[si] = entValid
	case p.secVal[si] == actualVal:
		p.secMeta[si] = uint16(satInc(uint8(sm>>8), 1, p.ctrMaxS))<<8 | sm&0xff
	case sm>>8 == 0:
		p.secVal[si] = actualVal
		ev |= EvReplaced
	default:
		p.secMeta[si] = uint16(satDec(uint8(sm>>8), p.cfg.SecCounterDec))<<8 | sm&0xff
	}
	if p.cfg.Faults.StuckZero() {
		p.secMeta[si] &= 0xff
	}

	// Correlated table update — filtered when a saturated secondary was
	// correct, so single-successor traces do not pollute it.
	if p.secFilter && tok.secSaturated && tok.secPredVal == actualVal {
		if p.cfg.Recorder != nil {
			p.cfg.Recorder.Record(ev)
		}
		return
	}
	ci := tok.CorrIdx
	cm := p.corrMeta[ci]
	switch {
	case cm&entValid == 0 || uint16(cm>>16) != tok.Tag:
		if cm&entValid != 0 {
			ev |= EvReplaced
		}
		p.corrMeta[ci] = uint32(tok.Tag)<<16 | entValid
		p.corrVal[ci] = actualVal
		p.corrAlt[ci] = 0 // fresh entry: no alternate yet
	case p.corrVal[ci] == actualVal:
		ctr := satInc(uint8(cm>>8), p.cfg.CounterInc, p.ctrMaxC)
		p.corrMeta[ci] = cm&^uint32(0xff00) | uint32(ctr)<<8
	case uint8(cm>>8) == 0:
		p.corrAlt[ci] = p.corrVal[ci]
		p.corrVal[ci] = actualVal
		p.corrMeta[ci] = cm | entAltValid
		ev |= EvReplaced
	default:
		ctr := satDec(uint8(cm>>8), p.cfg.CounterDec)
		p.corrMeta[ci] = cm&^uint32(0xff00) | uint32(ctr)<<8 | entAltValid
		p.corrAlt[ci] = actualVal
	}
	if p.cfg.Faults.StuckZero() {
		p.corrMeta[ci] &^= 0xff00
	}
	if p.cfg.Recorder != nil {
		p.cfg.Recorder.Record(ev)
	}
}

// CommitUpdate trains the tables for a prediction described by tok,
// given the trace that actually followed. It does not touch the path
// history; pair it with Advance.
func (p *Hybrid) CommitUpdate(tok Token, actual *trace.Trace) {
	p.commit(&tok, actual)
}

// Advance pushes a trace onto the path history and applies the Return
// History Stack actions. Under speculation, call it with the predicted
// trace's metadata; under immediate updates, with the actual trace.
func (p *Hybrid) Advance(tr *trace.Trace) {
	p.hist.Push(tr.Hash)
	if p.rhs != nil {
		p.rhs.Observe(tr, &p.hist)
	}
}

// State is a speculation checkpoint of the history register and RHS.
type State struct {
	hist history.Reg
	rhs  *history.ReturnStack
}

// Checkpoint captures the speculative front-end state.
func (p *Hybrid) Checkpoint() State {
	st := State{hist: p.hist}
	if p.rhs != nil {
		st.rhs = p.rhs.Clone()
	}
	return st
}

// Restore rewinds the front-end state to a checkpoint (misprediction
// recovery: "in the case of an incorrect prediction the history is
// backed up to the state before the bad prediction").
func (p *Hybrid) Restore(st State) {
	p.hist = st.hist
	if p.rhs != nil && st.rhs != nil {
		p.rhs.Restore(st.rhs)
	}
}

// Predict implements NextTracePredictor (immediate-update protocol).
// It is a thin wrapper over the same lookup the batch path runs.
func (p *Hybrid) Predict() Prediction {
	p.lookupInto(&p.tok)
	return p.tok.Pred
}

// Update implements NextTracePredictor.
func (p *Hybrid) Update(actual *trace.Trace) {
	p.commit(&p.tok, actual)
	p.Advance(actual)
}

// PredictBatch implements BatchPredictor: one full Predict/Update round
// per trace, with the prediction made before actuals[i] is revealed
// written to preds[i] (preds may be nil). The loop keeps the round
// token local and calls the shared lookup/commit primitives directly —
// no interface dispatch, no Prediction or Token copies per round.
func (p *Hybrid) PredictBatch(actuals []trace.Trace, preds []Prediction) uint64 {
	before := p.stats.Correct
	var tok Token
	for i := range actuals {
		p.lookupInto(&tok)
		if preds != nil {
			preds[i] = tok.Pred
		}
		p.commit(&tok, &actuals[i])
		p.Advance(&actuals[i])
	}
	return p.stats.Correct - before
}

// UpdateBatch implements BatchPredictor: PredictBatch with the
// predictions discarded.
func (p *Hybrid) UpdateBatch(actuals []trace.Trace) uint64 {
	return p.PredictBatch(actuals, nil)
}

// Stats implements NextTracePredictor.
func (p *Hybrid) Stats() Stats { return p.stats }

// AddStats merges externally computed counters (used by the delayed-
// update engine, which performs its own accounting).
func (p *Hybrid) AddStats(s Stats) {
	p.stats.Predictions += s.Predictions
	p.stats.Correct += s.Correct
	p.stats.Cold += s.Cold
	p.stats.FromSecondary += s.FromSecondary
	p.stats.AltCorrect += s.AltCorrect
	p.stats.AltPresent += s.AltPresent
}
