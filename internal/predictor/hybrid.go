package predictor

import (
	"pathtrace/internal/faults"
	"pathtrace/internal/history"
	"pathtrace/internal/trace"
)

// Hybrid is the predictor of §3.3–§3.4: a tagged correlated table plus
// a smaller secondary table indexed only by the hashed identifier of
// the most recent trace, with an optional Return History Stack.
//
// Selection rule: if the secondary entry's 4-bit counter is saturated,
// the secondary's prediction is used (and, when correct, the correlated
// table is not updated — the aliasing filter). Otherwise the correlated
// prediction is used when its tag matches the hashed identifier of the
// immediately preceding trace, and the secondary's otherwise.
//
// Hybrid exposes a lower-level API (Lookup / CommitUpdate / Advance /
// Checkpoint / Restore) so package engine can model speculative history
// with delayed table updates (§5.4).
type Hybrid struct {
	cfg  Config
	hist history.Reg
	rhs  *history.ReturnStack // nil when RHS disabled

	corr []corrEntry
	sec  []secEntry

	stats     Stats
	tok       Token
	secFilter bool
	tagMask   uint32
	secMask   uint32
}

type corrEntry struct {
	tag      uint16
	val      uint64
	alt      uint64
	ctr      uint8
	valid    bool
	altValid bool
}

type secEntry struct {
	val   uint64
	ctr   uint8
	valid bool
}

// Token captures everything a Lookup decided, so the matching update
// can be applied later (possibly much later, under delayed updates).
type Token struct {
	CorrIdx      uint32
	SecIdx       uint32
	Tag          uint16
	Pred         Prediction
	predVal      uint64
	altVal       uint64
	secPredVal   uint64
	secValid     bool
	secSaturated bool
}

func newHybrid(cfg Config) (*Hybrid, error) {
	h, err := history.NewReg(cfg.Depth + 1)
	if err != nil {
		return nil, err
	}
	p := &Hybrid{
		cfg:       cfg,
		hist:      h,
		corr:      make([]corrEntry, 1<<cfg.IndexBits),
		sec:       make([]secEntry, 1<<cfg.SecondaryBits),
		secFilter: *cfg.SecondaryFilter,
		tagMask:   uint32(1)<<cfg.TagBits - 1,
		secMask:   uint32(1)<<cfg.SecondaryBits - 1,
	}
	if cfg.UseRHS {
		rhs, err := history.NewReturnStack(cfg.RHSDepth)
		if err != nil {
			return nil, err
		}
		p.rhs = rhs
	}
	if cfg.Faults != nil {
		p.hist.SetFaultHook(cfg.Faults)
	}
	return p, nil
}

// injectFaults applies one fault-injection opportunity to each table.
// Called once per CommitUpdate — before the update logic and before
// the secondary-filter early return — so the injection streams consume
// the same draws in every configuration and at every rate.
func (p *Hybrid) injectFaults() {
	inj := p.cfg.Faults
	if f := inj.CorrFault(len(p.corr), p.cfg.valBits(), p.cfg.TagBits, p.cfg.CounterBits); f.Fire {
		e := &p.corr[f.Index]
		switch f.Slot {
		case faults.SlotValue:
			e.val ^= f.Mask
		case faults.SlotAlt:
			e.alt ^= f.Mask
		case faults.SlotTag:
			e.tag ^= uint16(f.Mask)
		case faults.SlotCounter:
			e.ctr ^= uint8(f.Mask)
		}
	}
	if f := inj.SecFault(len(p.sec), p.cfg.valBits(), p.cfg.SecCounterBits); f.Fire {
		e := &p.sec[f.Index]
		switch f.Slot {
		case faults.SlotValue:
			e.val ^= f.Mask
		case faults.SlotCounter:
			e.ctr ^= uint8(f.Mask)
		}
	}
}

// NewHybrid builds a hybrid predictor directly, for callers that need
// the lower-level API (package engine). cfg.Hybrid is implied.
func NewHybrid(cfg Config) (*Hybrid, error) {
	cfg.Hybrid = true
	full, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	return newHybrid(full)
}

// Lookup computes the prediction for the next trace from the current
// path history, without changing any state.
func (p *Hybrid) Lookup() (Prediction, Token) {
	tok := Token{
		CorrIdx: p.cfg.DOLC.IndexOf(&p.hist),
		SecIdx:  uint32(p.hist.At(0)) & p.secMask,
		Tag:     uint16(uint32(p.hist.At(0)) & p.tagMask),
	}
	ce := &p.corr[tok.CorrIdx]
	se := &p.sec[tok.SecIdx]
	tok.secValid = se.valid
	tok.secPredVal = se.val
	tok.secSaturated = se.valid && int(se.ctr) == ctrMax(p.cfg.SecCounterBits)

	var pred Prediction
	useSecondary := tok.secSaturated || !(ce.valid && ce.tag == tok.Tag)
	if useSecondary {
		if se.valid {
			pred.Valid = true
			pred.FromSecondary = true
			p.cfg.present(&pred, se.val)
			tok.predVal = se.val
		}
	} else {
		pred.Valid = true
		p.cfg.present(&pred, ce.val)
		tok.predVal = ce.val
		if ce.altValid {
			pred.AltValid = true
			tok.altVal = ce.alt
			if !p.cfg.CostReduced {
				pred.Alt = trace.ID(ce.alt)
			}
		}
	}
	tok.Pred = pred
	return pred, tok
}

// CommitUpdate trains the tables for a prediction described by tok,
// given the trace that actually followed. It does not touch the path
// history; pair it with Advance.
func (p *Hybrid) CommitUpdate(tok Token, actual *trace.Trace) {
	if p.cfg.Faults != nil {
		p.injectFaults()
	}
	actualVal := p.cfg.storedVal(actual)

	var ev Event
	p.stats.Predictions++
	correct := tok.Pred.Valid && tok.predVal == actualVal
	if correct {
		p.stats.Correct++
		ev |= EvCorrect
	} else {
		if !tok.Pred.Valid {
			p.stats.Cold++
			ev |= EvCold
		}
		if tok.Pred.AltValid {
			p.stats.AltPresent++
			if tok.altVal == actualVal {
				p.stats.AltCorrect++
			}
		}
	}
	if tok.Pred.FromSecondary {
		p.stats.FromSecondary++
		ev |= EvFromSecondary
	}

	// Secondary table update.
	se := &p.sec[tok.SecIdx]
	secMax := ctrMax(p.cfg.SecCounterBits)
	switch {
	case !se.valid:
		se.val = actualVal
		se.ctr = 0
		se.valid = true
	case se.val == actualVal:
		se.ctr = satInc(se.ctr, 1, secMax)
	case se.ctr == 0:
		se.val = actualVal
		ev |= EvReplaced
	default:
		se.ctr = satDec(se.ctr, p.cfg.SecCounterDec)
	}
	if p.cfg.Faults.StuckZero() {
		se.ctr = 0
	}

	// Correlated table update — filtered when a saturated secondary was
	// correct, so single-successor traces do not pollute it.
	if p.secFilter && tok.secSaturated && tok.secPredVal == actualVal {
		if p.cfg.Recorder != nil {
			p.cfg.Recorder.Record(ev)
		}
		return
	}
	ce := &p.corr[tok.CorrIdx]
	max := ctrMax(p.cfg.CounterBits)
	switch {
	case !ce.valid || ce.tag != tok.Tag:
		if ce.valid {
			ev |= EvReplaced
		}
		*ce = corrEntry{tag: tok.Tag, val: actualVal, valid: true}
	case ce.val == actualVal:
		ce.ctr = satInc(ce.ctr, p.cfg.CounterInc, max)
	case ce.ctr == 0:
		ce.alt = ce.val
		ce.altValid = true
		ce.val = actualVal
		ev |= EvReplaced
	default:
		ce.ctr = satDec(ce.ctr, p.cfg.CounterDec)
		ce.alt = actualVal
		ce.altValid = true
	}
	if p.cfg.Faults.StuckZero() {
		ce.ctr = 0
	}
	if p.cfg.Recorder != nil {
		p.cfg.Recorder.Record(ev)
	}
}

// Advance pushes a trace onto the path history and applies the Return
// History Stack actions. Under speculation, call it with the predicted
// trace's metadata; under immediate updates, with the actual trace.
func (p *Hybrid) Advance(tr *trace.Trace) {
	p.hist.Push(tr.Hash)
	if p.rhs != nil {
		p.rhs.Observe(tr, &p.hist)
	}
}

// State is a speculation checkpoint of the history register and RHS.
type State struct {
	hist history.Reg
	rhs  *history.ReturnStack
}

// Checkpoint captures the speculative front-end state.
func (p *Hybrid) Checkpoint() State {
	st := State{hist: p.hist}
	if p.rhs != nil {
		st.rhs = p.rhs.Clone()
	}
	return st
}

// Restore rewinds the front-end state to a checkpoint (misprediction
// recovery: "in the case of an incorrect prediction the history is
// backed up to the state before the bad prediction").
func (p *Hybrid) Restore(st State) {
	p.hist = st.hist
	if p.rhs != nil && st.rhs != nil {
		p.rhs.Restore(st.rhs)
	}
}

// Predict implements NextTracePredictor (immediate-update protocol).
func (p *Hybrid) Predict() Prediction {
	pred, tok := p.Lookup()
	p.tok = tok
	return pred
}

// Update implements NextTracePredictor.
func (p *Hybrid) Update(actual *trace.Trace) {
	p.CommitUpdate(p.tok, actual)
	p.Advance(actual)
}

// Stats implements NextTracePredictor.
func (p *Hybrid) Stats() Stats { return p.stats }

// AddStats merges externally computed counters (used by the delayed-
// update engine, which performs its own accounting).
func (p *Hybrid) AddStats(s Stats) {
	p.stats.Predictions += s.Predictions
	p.stats.Correct += s.Correct
	p.stats.Cold += s.Cold
	p.stats.FromSecondary += s.FromSecondary
	p.stats.AltCorrect += s.AltCorrect
	p.stats.AltPresent += s.AltPresent
}
