package predictor

import (
	"encoding/binary"
	"fmt"
	"math"

	"pathtrace/internal/faults"
	"pathtrace/internal/history"
	"pathtrace/internal/trace"
)

// This file is the byte codec for the paper family's SavedState — the
// per-backend state section carried inside snapshot frames. The layout
// is exactly the state portion of the version-1 snapshot payload (the
// codec moved here when snapshot frames became backend-tagged), so a v1
// frame's state bytes decode through this function unchanged: the
// backend registry owns state layouts, the snapshot package owns the
// envelope.
//
// Layout (little-endian):
//
//	kind    u8
//	flags   u8   (RHS | cost-reduced | secondary-filter | has-faults)
//	geometry: nine u8 params, u16 RHS depth, five DOLC u8s
//	stats   six u64 counters
//	hist    register (u8 size, u8 fill, MaxSize u16 ids)
//	[RHS]   u16 max, u16 count, count registers   (flagged)
//	[faults] injector config + PRNG position      (flagged)
//	corr    u32 count, count 24-byte entries
//	sec     u32 count, count 13-byte entries
//
// Decode is strict: every count is bounded by the remaining input
// before sizing an allocation, unknown flag bits are rejected, and
// trailing bytes fail the decode.

const (
	paperCorrEntryBytes = 24 // u32 index | u16 tag | u64 val | u64 alt | u8 ctr | u8 flags
	paperSecEntryBytes  = 13 // u32 index | u64 val | u8 ctr
	stateRegBytes       = 2 + 2*history.MaxSize

	// kind + flags + geometry + stats + hist
	paperFixedBytes    = 1 + 1 + paperGeometryBytes + paperStatsBytes + stateRegBytes
	paperGeometryBytes = 9 + 2 + 5 // nine u8 params, u16 RHS depth, five DOLC u8s
	paperStatsBytes    = 6 * 8
	paperFaultsBytes   = 8 + 1 + 8 + 4*8 + 1 + 8 + 8 + 4*8 + 5*8
)

// paper-state flag bits.
const (
	paperFlagUseRHS          = 1 << 0
	paperFlagCostReduced     = 1 << 1
	paperFlagSecondaryFilter = 1 << 2
	paperFlagHasFaults       = 1 << 3
)

// EncodeSavedState serializes a paper-family SavedState as a state
// section. It fails on a structurally invalid state (RHS bookkeeping
// mismatch, fields that do not fit their wire widths) so it can never
// emit bytes its own decoder would refuse.
func EncodeSavedState(st *SavedState) ([]byte, error) {
	if st == nil {
		return nil, fmt.Errorf("%w: encode nil state", ErrBadState)
	}
	if st.UseRHS != (st.RHS != nil) {
		return nil, fmt.Errorf("%w: UseRHS %v but RHS state %v", ErrBadState, st.UseRHS, st.RHS != nil)
	}
	if err := checkStateRanges(st); err != nil {
		return nil, err
	}
	return AppendSavedState(make([]byte, 0, SavedStateSize(st)), st), nil
}

// SavedStateSize returns the exact encoded size of a state, for
// one-shot allocation.
func SavedStateSize(st *SavedState) int {
	n := paperFixedBytes
	if st.RHS != nil {
		n += 4 + len(st.RHS.Regs)*stateRegBytes
	}
	if st.Faults != nil {
		n += paperFaultsBytes
	}
	n += 4 + len(st.Corr)*paperCorrEntryBytes
	n += 4 + len(st.Sec)*paperSecEntryBytes
	return n
}

// checkStateRanges verifies every field fits its wire width, so the
// encoder never silently wraps a value.
func checkStateRanges(st *SavedState) error {
	u8 := func(name string, v int) error {
		if v < 0 || v > 0xFF {
			return fmt.Errorf("%w: %s %d does not fit u8", ErrBadState, name, v)
		}
		return nil
	}
	for _, f := range []struct {
		name string
		v    int
	}{
		{"depth", st.Depth}, {"index bits", st.IndexBits},
		{"secondary bits", st.SecondaryBits}, {"tag bits", st.TagBits},
		{"counter bits", st.CounterBits}, {"counter inc", st.CounterInc},
		{"counter dec", st.CounterDec}, {"sec counter bits", st.SecCounterBits},
		{"sec counter dec", st.SecCounterDec},
		{"DOLC depth", st.DOLC.Depth}, {"DOLC older", st.DOLC.Older},
		{"DOLC last", st.DOLC.Last}, {"DOLC current", st.DOLC.Current},
		{"DOLC index", st.DOLC.Index},
	} {
		if err := u8(f.name, f.v); err != nil {
			return err
		}
	}
	if st.RHSDepth < 0 || st.RHSDepth > 0xFFFF {
		return fmt.Errorf("%w: RHS depth %d does not fit u16", ErrBadState, st.RHSDepth)
	}
	if st.RHS != nil {
		if st.RHS.Max < 0 || st.RHS.Max > 0xFFFF {
			return fmt.Errorf("%w: RHS capacity %d does not fit u16", ErrBadState, st.RHS.Max)
		}
		if len(st.RHS.Regs) > 0xFFFF {
			return fmt.Errorf("%w: RHS holds %d regs, does not fit u16", ErrBadState, len(st.RHS.Regs))
		}
	}
	if st.Faults != nil {
		if bits := st.Faults.Config.Bits; bits < 0 || bits > 0xFF {
			return fmt.Errorf("%w: fault bits %d does not fit u8", ErrBadState, bits)
		}
	}
	return nil
}

// AppendSavedState appends the encoded state section to b. Callers that
// need validation use EncodeSavedState; this is the raw append path for
// the snapshot encoder, which validates first.
func AppendSavedState(b []byte, st *SavedState) []byte {
	le := binary.LittleEndian
	b = append(b, uint8(st.Kind))
	var flags uint8
	if st.UseRHS {
		flags |= paperFlagUseRHS
	}
	if st.CostReduced {
		flags |= paperFlagCostReduced
	}
	if st.SecondaryFilter {
		flags |= paperFlagSecondaryFilter
	}
	if st.Faults != nil {
		flags |= paperFlagHasFaults
	}
	b = append(b, flags)

	b = append(b, uint8(st.Depth), uint8(st.IndexBits), uint8(st.SecondaryBits),
		uint8(st.TagBits), uint8(st.CounterBits), uint8(st.CounterInc),
		uint8(st.CounterDec), uint8(st.SecCounterBits), uint8(st.SecCounterDec))
	b = le.AppendUint16(b, uint16(st.RHSDepth))
	b = append(b, uint8(st.DOLC.Depth), uint8(st.DOLC.Older), uint8(st.DOLC.Last),
		uint8(st.DOLC.Current), uint8(st.DOLC.Index))

	for _, v := range [...]uint64{
		st.Stats.Predictions, st.Stats.Correct, st.Stats.Cold,
		st.Stats.FromSecondary, st.Stats.AltCorrect, st.Stats.AltPresent,
	} {
		b = le.AppendUint64(b, v)
	}

	b = appendStateReg(b, st.Hist)

	if st.RHS != nil {
		b = le.AppendUint16(b, uint16(st.RHS.Max))
		b = le.AppendUint16(b, uint16(len(st.RHS.Regs)))
		for _, r := range st.RHS.Regs {
			b = appendStateReg(b, r)
		}
	}

	if st.Faults != nil {
		f := st.Faults
		b = le.AppendUint64(b, f.Config.Seed)
		b = append(b, uint8(f.Config.Bits))
		b = le.AppendUint64(b, f.Config.Interval)
		for _, rate := range [...]float64{
			f.Config.Table, f.Config.Secondary, f.Config.History, f.Config.TraceCache,
		} {
			b = le.AppendUint64(b, math.Float64bits(rate))
		}
		var stuck uint8
		if f.Config.StuckZero {
			stuck = 1
		}
		b = append(b, stuck)
		b = le.AppendUint64(b, f.Fire)
		b = le.AppendUint64(b, f.Eff)
		for _, t := range f.Ticks {
			b = le.AppendUint64(b, t)
		}
		for _, v := range [...]uint64{
			f.Stats.Opportunities, f.Stats.TableFaults, f.Stats.SecFaults,
			f.Stats.HistoryFaults, f.Stats.TCacheFaults,
		} {
			b = le.AppendUint64(b, v)
		}
	}

	b = le.AppendUint32(b, uint32(len(st.Corr)))
	for _, e := range st.Corr {
		b = le.AppendUint32(b, e.Index)
		b = le.AppendUint16(b, e.Tag)
		b = le.AppendUint64(b, e.Val)
		b = le.AppendUint64(b, e.Alt)
		var ef uint8
		if e.AltValid {
			ef = 1
		}
		b = append(b, e.Ctr, ef)
	}
	b = le.AppendUint32(b, uint32(len(st.Sec)))
	for _, e := range st.Sec {
		b = le.AppendUint32(b, e.Index)
		b = le.AppendUint64(b, e.Val)
		b = append(b, e.Ctr)
	}
	return b
}

func appendStateReg(b []byte, r history.RegState) []byte {
	b = append(b, uint8(r.Size), uint8(r.N))
	for _, id := range r.IDs {
		b = binary.LittleEndian.AppendUint16(b, uint16(id))
	}
	return b
}

// stateReader walks an encoded state section with sticky error state.
// Every read is bounds-checked; overrunning the input sets ErrBadState.
type stateReader struct {
	b   []byte
	off int
	err error
}

func (r *stateReader) fail(format string, args ...any) {
	if r.err == nil {
		r.err = fmt.Errorf("%w: "+format, append([]any{ErrBadState}, args...)...)
	}
}

func (r *stateReader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if n < 0 || len(r.b)-r.off < n {
		r.fail("state overrun at offset %d", r.off)
		return nil
	}
	s := r.b[r.off : r.off+n]
	r.off += n
	return s
}

func (r *stateReader) u8() uint8 {
	if s := r.take(1); s != nil {
		return s[0]
	}
	return 0
}

func (r *stateReader) u16() uint16 {
	if s := r.take(2); s != nil {
		return binary.LittleEndian.Uint16(s)
	}
	return 0
}

func (r *stateReader) u32() uint32 {
	if s := r.take(4); s != nil {
		return binary.LittleEndian.Uint32(s)
	}
	return 0
}

func (r *stateReader) u64() uint64 {
	if s := r.take(8); s != nil {
		return binary.LittleEndian.Uint64(s)
	}
	return 0
}

func (r *stateReader) rate(name string) float64 {
	v := math.Float64frombits(r.u64())
	if math.IsNaN(v) || v < 0 || v > 1 {
		r.fail("fault rate %s = %v outside [0, 1]", name, v)
	}
	return v
}

// count reads a u32 element count and verifies the remaining input can
// actually hold that many elemBytes-sized elements, bounding any
// allocation derived from it by the input length.
func (r *stateReader) count(what string, elemBytes int) int {
	n := int(r.u32())
	if r.err != nil {
		return 0
	}
	if rem := len(r.b) - r.off; n*elemBytes > rem || n < 0 {
		r.fail("%s count %d needs %d bytes, %d remain", what, n, n*elemBytes, rem)
		return 0
	}
	return n
}

func (r *stateReader) reg() history.RegState {
	var st history.RegState
	st.Size = int(r.u8())
	st.N = int(r.u8())
	for i := range st.IDs {
		st.IDs[i] = trace.HashedID(r.u16())
	}
	return st
}

// DecodeSavedState parses a paper-family state section. It is strict:
// the bytes must carry exactly the structure their counts imply — no
// trailing garbage — and every failure wraps ErrBadState. Structural
// validity of the decoded tables (index ranges, counter widths) is
// enforced by Restore, which knows the target geometry.
func DecodeSavedState(b []byte) (*SavedState, error) {
	r := &stateReader{b: b}
	st := &SavedState{}
	st.Kind = SavedKind(r.u8())
	flags := r.u8()
	if r.err == nil && flags&^uint8(paperFlagUseRHS|paperFlagCostReduced|paperFlagSecondaryFilter|paperFlagHasFaults) != 0 {
		r.fail("unknown flag bits %#x", flags)
	}
	st.UseRHS = flags&paperFlagUseRHS != 0
	st.CostReduced = flags&paperFlagCostReduced != 0
	st.SecondaryFilter = flags&paperFlagSecondaryFilter != 0

	st.Depth = int(r.u8())
	st.IndexBits = int(r.u8())
	st.SecondaryBits = int(r.u8())
	st.TagBits = int(r.u8())
	st.CounterBits = int(r.u8())
	st.CounterInc = int(r.u8())
	st.CounterDec = int(r.u8())
	st.SecCounterBits = int(r.u8())
	st.SecCounterDec = int(r.u8())
	st.RHSDepth = int(r.u16())
	st.DOLC.Depth = int(r.u8())
	st.DOLC.Older = int(r.u8())
	st.DOLC.Last = int(r.u8())
	st.DOLC.Current = int(r.u8())
	st.DOLC.Index = int(r.u8())

	st.Stats.Predictions = r.u64()
	st.Stats.Correct = r.u64()
	st.Stats.Cold = r.u64()
	st.Stats.FromSecondary = r.u64()
	st.Stats.AltCorrect = r.u64()
	st.Stats.AltPresent = r.u64()

	st.Hist = r.reg()

	if st.UseRHS {
		rhs := &history.StackState{Max: int(r.u16())}
		n := int(r.u16())
		if r.err == nil {
			if rem := len(r.b) - r.off; n*stateRegBytes > rem {
				r.fail("RHS count %d needs %d bytes, %d remain", n, n*stateRegBytes, rem)
			}
		}
		if r.err == nil {
			rhs.Regs = make([]history.RegState, n)
			for i := range rhs.Regs {
				rhs.Regs[i] = r.reg()
			}
			st.RHS = rhs
		}
	}

	if flags&paperFlagHasFaults != 0 {
		f := &faults.InjectorState{}
		f.Config.Seed = r.u64()
		f.Config.Bits = int(r.u8())
		f.Config.Interval = r.u64()
		f.Config.Table = r.rate("table")
		f.Config.Secondary = r.rate("secondary")
		f.Config.History = r.rate("history")
		f.Config.TraceCache = r.rate("tcache")
		switch stuck := r.u8(); {
		case r.err != nil:
		case stuck == 0:
		case stuck == 1:
			f.Config.StuckZero = true
		default:
			r.fail("stuck-zero byte %d", stuck)
		}
		f.Fire = r.u64()
		f.Eff = r.u64()
		for i := range f.Ticks {
			f.Ticks[i] = r.u64()
		}
		f.Stats.Opportunities = r.u64()
		f.Stats.TableFaults = r.u64()
		f.Stats.SecFaults = r.u64()
		f.Stats.HistoryFaults = r.u64()
		f.Stats.TCacheFaults = r.u64()
		if r.err == nil {
			st.Faults = f
		}
	}

	if n := r.count("correlated entries", paperCorrEntryBytes); r.err == nil && n > 0 {
		st.Corr = make([]SavedEntry, n)
		for i := range st.Corr {
			e := &st.Corr[i]
			e.Index = r.u32()
			e.Tag = r.u16()
			e.Val = r.u64()
			e.Alt = r.u64()
			e.Ctr = r.u8()
			switch ef := r.u8(); {
			case r.err != nil:
			case ef == 0:
			case ef == 1:
				e.AltValid = true
			default:
				r.fail("correlated entry %d flag byte %d", i, ef)
			}
		}
	}
	if n := r.count("secondary entries", paperSecEntryBytes); r.err == nil && n > 0 {
		st.Sec = make([]SavedSecEntry, n)
		for i := range st.Sec {
			e := &st.Sec[i]
			e.Index = r.u32()
			e.Val = r.u64()
			e.Ctr = r.u8()
		}
	}

	if r.err == nil && r.off != len(r.b) {
		r.fail("%d trailing bytes after state", len(r.b)-r.off)
	}
	if r.err != nil {
		return nil, r.err
	}
	return st, nil
}
