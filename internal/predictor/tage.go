package predictor

import (
	"fmt"

	"pathtrace/internal/history"
	"pathtrace/internal/trace"
)

// tage is a TAGE-style next-trace predictor: a directly indexed base
// table plus a bank of tagged tables, each hashing a geometrically
// longer prefix of the path-history register (Seznec & Michaud's
// "A case for (partially) TAgged GEometric history length branch
// prediction", adapted from branch outcomes to trace identifiers).
//
// Prediction: the longest tagged table whose entry's tag matches the
// path hash provides the prediction; the next-longest match (or the
// base table) is the alternate. The base table — indexed by the hashed
// identifier of the most recent trace, exactly like the hybrid's
// secondary table — serves cold paths. Base-supplied predictions are
// counted as FromSecondary so Stats keep one meaning across backends.
//
// Training is deterministic (no PRNG): the provider's counter trains
// toward the actual trace; on a misprediction one entry is allocated in
// the first longer table whose useful counter is zero, else every
// longer table's useful counter decays. Determinism is what keeps a
// served TAGE session bit-identical under save/restore, exactly like
// the paper predictors.
//
// Differences from the paper variants, by design: fault injection and
// cost-reduced storage are not modelled (the injector's table-slot
// model assumes the correlated layout), so newTage ignores cfg.Faults
// and rejects cfg.CostReduced.
type tage struct {
	cfg  Config
	hist history.Reg

	lens     [maxTageTables]int // history length per tagged table, ascending
	nTables  int
	idxMask  uint32
	tagMask  uint16
	baseMask uint32

	base   []tageBase
	tables [maxTageTables][]tageEntry

	stats Stats
	tok   tageTok
}

// maxTageTables bounds the tagged-table bank; the geometric series
// {1, 2, 4, 8} fits the history register's 8-identifier ceiling.
const maxTageTables = 4

// tageUMax is the 2-bit useful-counter ceiling.
const tageUMax = 3

type tageBase struct {
	val   uint64
	ctr   uint8
	valid bool
}

type tageEntry struct {
	val   uint64
	tag   uint16
	ctr   uint8
	u     uint8
	valid bool
}

// tageTok carries one Predict's decisions to the matching Update.
type tageTok struct {
	idx      [maxTageTables]uint32
	tag      [maxTageTables]uint16
	baseIdx  uint32
	provider int // tagged table that provided, -1 = base or cold
	altTbl   int // tagged table providing the alternate, -1 = base
	pred     Prediction
	predVal  uint64
	altVal   uint64
	altKnown bool // an alternate prediction existed (table or base)
}

// tageLens returns the geometric history lengths {1, 2, 4, 8} clipped
// to the register size (depth+1) and deduplicated.
func tageLens(depth int) []int {
	var lens []int
	for _, l := range [...]int{1, 2, 4, 8} {
		if l > depth+1 {
			l = depth + 1
		}
		if len(lens) == 0 || l > lens[len(lens)-1] {
			lens = append(lens, l)
		}
	}
	return lens
}

// tageTableBits sizes each tagged table: the total tagged budget stays
// comparable to the correlated table (four tables at IndexBits-2 each),
// floored so shallow configs still have room to allocate.
func tageTableBits(indexBits int) int {
	bits := indexBits - 2
	if bits < 4 {
		bits = 4
	}
	return bits
}

func newTage(cfg Config) (*tage, error) {
	if cfg.CostReduced {
		return nil, fmt.Errorf("predictor: tage backend does not support cost-reduced storage")
	}
	h, err := history.NewReg(cfg.Depth + 1)
	if err != nil {
		return nil, err
	}
	t := &tage{
		cfg:      cfg,
		hist:     h,
		idxMask:  uint32(1)<<tageTableBits(cfg.IndexBits) - 1,
		tagMask:  uint16(uint32(1)<<cfg.TagBits - 1),
		baseMask: uint32(1)<<cfg.SecondaryBits - 1,
		base:     make([]tageBase, 1<<cfg.SecondaryBits),
	}
	lens := tageLens(cfg.Depth)
	t.nTables = len(lens)
	size := int(t.idxMask) + 1
	for i, l := range lens {
		t.lens[i] = l
		t.tables[i] = make([]tageEntry, size)
	}
	return t, nil
}

// pathHash mixes the most recent n history identifiers with a per-table
// salt. Table index and tag are drawn from disjoint bit ranges of the
// result, so an aliased index does not imply an aliased tag.
func (t *tage) pathHash(tbl, n int) uint64 {
	h := 0x9e3779b97f4a7c15 * uint64(tbl+1)
	for i := 0; i < n; i++ {
		h = mix64(h ^ uint64(t.hist.At(i)) ^ uint64(i)<<trace.HashBits)
	}
	return h
}

// Predict implements NextTracePredictor.
func (t *tage) Predict() Prediction {
	tok := &t.tok
	*tok = tageTok{provider: -1, altTbl: -1}
	tok.baseIdx = uint32(t.hist.At(0)) & t.baseMask

	for i := 0; i < t.nTables; i++ {
		h := t.pathHash(i, t.lens[i])
		tok.idx[i] = uint32(h) & t.idxMask
		tok.tag[i] = uint16(h>>40) & t.tagMask
	}

	// Longest tag match provides; the next-longest is the alternate.
	for i := t.nTables - 1; i >= 0; i-- {
		e := &t.tables[i][tok.idx[i]]
		if !e.valid || e.tag != tok.tag[i] {
			continue
		}
		if tok.provider < 0 {
			tok.provider = i
		} else {
			tok.altTbl = i
			tok.altVal = e.val
			tok.altKnown = true
			break
		}
	}

	be := &t.base[tok.baseIdx]
	var pred Prediction
	switch {
	case tok.provider >= 0:
		e := &t.tables[tok.provider][tok.idx[tok.provider]]
		pred.Valid = true
		tok.predVal = e.val
		t.cfg.present(&pred, e.val)
		if !tok.altKnown && be.valid {
			tok.altVal = be.val
			tok.altKnown = true
		}
		if tok.altKnown {
			pred.AltValid = true
			pred.Alt = trace.ID(tok.altVal)
		}
	case be.valid:
		pred.Valid = true
		pred.FromSecondary = true
		tok.predVal = be.val
		t.cfg.present(&pred, be.val)
	}
	tok.pred = pred
	return pred
}

// Update implements NextTracePredictor.
func (t *tage) Update(actual *trace.Trace) {
	tok := &t.tok
	actualVal := uint64(actual.ID)

	var ev Event
	t.stats.Predictions++
	correct := tok.pred.Valid && tok.predVal == actualVal
	if correct {
		t.stats.Correct++
		ev |= EvCorrect
	} else {
		if !tok.pred.Valid {
			t.stats.Cold++
			ev |= EvCold
		}
		if tok.pred.AltValid {
			t.stats.AltPresent++
			if tok.altVal == actualVal {
				t.stats.AltCorrect++
			}
		}
	}
	if tok.pred.FromSecondary {
		t.stats.FromSecondary++
		ev |= EvFromSecondary
	}

	// Base table trains every round, like the hybrid's secondary table
	// and under the same counter policy.
	be := &t.base[tok.baseIdx]
	secMax := ctrMax(t.cfg.SecCounterBits)
	switch {
	case !be.valid:
		be.val = actualVal
		be.ctr = 0
		be.valid = true
	case be.val == actualVal:
		be.ctr = satInc(be.ctr, 1, secMax)
	case be.ctr == 0:
		be.val = actualVal
		ev |= EvReplaced
	default:
		be.ctr = satDec(be.ctr, t.cfg.SecCounterDec)
	}

	// Provider training plus useful-counter bookkeeping: the u counter
	// only moves when the provider and the alternate disagree, so it
	// measures where the long history actually earned its keep.
	if p := tok.provider; p >= 0 {
		e := &t.tables[p][tok.idx[p]]
		provCorrect := e.val == actualVal
		if tok.altKnown && tok.altVal != e.val {
			if provCorrect {
				e.u = satInc(e.u, 1, tageUMax)
			} else {
				e.u = satDec(e.u, 1)
			}
		}
		max := ctrMax(t.cfg.CounterBits)
		switch {
		case provCorrect:
			e.ctr = satInc(e.ctr, t.cfg.CounterInc, max)
		case e.ctr == 0:
			e.val = actualVal
			e.u = 0
			ev |= EvReplaced
		default:
			e.ctr = satDec(e.ctr, t.cfg.CounterDec)
		}
	}

	// Allocate on a misprediction: the first longer table with a spent
	// useful counter takes a fresh entry; if every candidate is still
	// useful, they all decay one step so the path eventually gets room.
	if !correct && tok.provider < t.nTables-1 {
		allocated := false
		for i := tok.provider + 1; i < t.nTables; i++ {
			e := &t.tables[i][tok.idx[i]]
			if e.u == 0 {
				if e.valid {
					ev |= EvReplaced
				}
				*e = tageEntry{val: actualVal, tag: tok.tag[i], valid: true}
				allocated = true
				break
			}
		}
		if !allocated {
			for i := tok.provider + 1; i < t.nTables; i++ {
				e := &t.tables[i][tok.idx[i]]
				e.u = satDec(e.u, 1)
			}
		}
	}

	t.hist.Push(actual.Hash)
	if t.cfg.Recorder != nil {
		t.cfg.Recorder.Record(ev)
	}
}

// Stats implements NextTracePredictor.
func (t *tage) Stats() Stats { return t.stats }
