package predictor

import (
	"fmt"

	"pathtrace/internal/history"
	"pathtrace/internal/trace"
)

// Unbounded is the idealised predictor of §5.2: "each unique sequence
// of trace identifiers maps to its own table entry, i.e. there is no
// aliasing". Tables are maps keyed by the exact path of full trace
// identifiers; counter policies match the bounded predictors.
type Unbounded struct {
	cfg    UnboundedConfig
	size   int // identifiers tracked = depth+1
	ids    [history.MaxSize]trace.ID
	n      int
	rhs    []ubSnap
	corr   map[pathKey]ubEntry
	sec    map[trace.ID]ubEntry
	stats  Stats
	tok    ubToken
	filter bool
}

// UnboundedConfig selects the unbounded variant.
type UnboundedConfig struct {
	Depth    int  // history depth 0..7
	Hybrid   bool // enable the secondary predictor
	UseRHS   bool // enable the Return History Stack (requires Hybrid)
	RHSDepth int  // default history.DefaultRHSDepth

	// Counter policies; zero values take the paper defaults (2-bit
	// inc-1/dec-2 correlated, 4-bit dec-4 secondary, filter on).
	CounterBits     int
	CounterInc      int
	CounterDec      int
	SecCounterBits  int
	SecCounterDec   int
	SecondaryFilter *bool
}

// pathKey identifies a unique sequence of full trace identifiers. The
// tracked IDs (up to 8 x 36 bits) are mixed into 64 bits with a
// splitmix-style finaliser; with well under 2^32 distinct paths per run
// the collision probability is negligible, so the table behaves as the
// paper's "each unique sequence maps to its own entry" ideal while
// keeping the map key compact.
type pathKey uint64

func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

type ubEntry struct {
	val      trace.ID
	alt      trace.ID
	ctr      uint8
	altValid bool
}

type ubSnap struct {
	ids [history.MaxSize]trace.ID
	n   int
}

type ubToken struct {
	key          pathKey
	secKey       trace.ID
	pred         Prediction
	predVal      trace.ID
	altVal       trace.ID
	corrEntry    ubEntry // entry read by Predict, reused by Update
	secEntry     ubEntry
	corrExists   bool
	secExists    bool
	secPredVal   trace.ID
	secSaturated bool
}

// NewUnbounded builds an unbounded-table predictor.
func NewUnbounded(cfg UnboundedConfig) (*Unbounded, error) {
	if cfg.Depth < 0 || cfg.Depth > history.MaxSize-1 {
		return nil, fmt.Errorf("predictor: depth %d outside [0, %d]", cfg.Depth, history.MaxSize-1)
	}
	if cfg.UseRHS && !cfg.Hybrid {
		return nil, fmt.Errorf("predictor: RHS requires the hybrid predictor")
	}
	if cfg.RHSDepth == 0 {
		cfg.RHSDepth = history.DefaultRHSDepth
	}
	if cfg.CounterBits == 0 {
		cfg.CounterBits = 2
	}
	if cfg.CounterInc == 0 {
		cfg.CounterInc = 1
	}
	if cfg.CounterDec == 0 {
		cfg.CounterDec = 2
	}
	if cfg.SecCounterBits == 0 {
		cfg.SecCounterBits = 4
	}
	if cfg.SecCounterDec == 0 {
		cfg.SecCounterDec = 15
	}
	if cfg.SecondaryFilter == nil {
		cfg.SecondaryFilter = boolPtr(true)
	}
	u := &Unbounded{
		cfg:    cfg,
		size:   cfg.Depth + 1,
		corr:   make(map[pathKey]ubEntry),
		filter: *cfg.SecondaryFilter,
	}
	if cfg.Hybrid {
		u.sec = make(map[trace.ID]ubEntry)
	}
	return u, nil
}

// MustNewUnbounded is NewUnbounded for static configurations.
func MustNewUnbounded(cfg UnboundedConfig) *Unbounded {
	u, err := NewUnbounded(cfg)
	if err != nil {
		panic(err)
	}
	return u
}

func (u *Unbounded) key() pathKey {
	var k uint64
	for i := 0; i < u.size; i++ {
		k = mix64(k ^ uint64(u.ids[i]))
	}
	return pathKey(k)
}

// Predict implements NextTracePredictor. The token (including the map
// entries just read) is built in place through the receiver so Update
// can reuse the lookups — under the Predict/Update protocol the tables
// cannot change in between, and the redundant map reads were the
// hottest part of the unbounded experiments.
func (u *Unbounded) Predict() Prediction {
	tok := &u.tok
	*tok = ubToken{key: u.key(), secKey: u.ids[0]}
	ce, corrOK := u.corr[tok.key]
	tok.corrEntry = ce
	tok.corrExists = corrOK

	var se ubEntry
	var secOK bool
	if u.cfg.Hybrid {
		se, secOK = u.sec[tok.secKey]
		tok.secEntry = se
		tok.secExists = secOK
		tok.secPredVal = se.val
		tok.secSaturated = secOK && int(se.ctr) == ctrMax(u.cfg.SecCounterBits)
	}

	var pred Prediction
	switch {
	case u.cfg.Hybrid && (tok.secSaturated || !corrOK):
		if secOK {
			pred = Prediction{ID: se.val, Valid: true, FromSecondary: true, Hashed: se.val.Hash()}
			tok.predVal = se.val
		}
	case corrOK:
		pred = Prediction{ID: ce.val, Valid: true, Hashed: ce.val.Hash()}
		tok.predVal = ce.val
		if ce.altValid {
			pred.Alt = ce.alt
			pred.AltValid = true
			tok.altVal = ce.alt
		}
	}
	tok.pred = pred
	return pred
}

// Update implements NextTracePredictor.
func (u *Unbounded) Update(actual *trace.Trace) {
	tok := &u.tok
	actualVal := actual.ID

	u.stats.Predictions++
	if tok.pred.Valid && tok.predVal == actualVal {
		u.stats.Correct++
	} else {
		if !tok.pred.Valid {
			u.stats.Cold++
		}
		if tok.pred.AltValid {
			u.stats.AltPresent++
			if tok.altVal == actualVal {
				u.stats.AltCorrect++
			}
		}
	}
	if tok.pred.FromSecondary {
		u.stats.FromSecondary++
	}

	// Secondary update, from the entry Predict already read.
	if u.cfg.Hybrid {
		se, ok := tok.secEntry, tok.secExists
		secMax := ctrMax(u.cfg.SecCounterBits)
		switch {
		case !ok:
			se = ubEntry{val: actualVal}
		case se.val == actualVal:
			se.ctr = satInc(se.ctr, 1, secMax)
		case se.ctr == 0:
			se.val = actualVal
		default:
			se.ctr = satDec(se.ctr, u.cfg.SecCounterDec)
		}
		u.sec[tok.secKey] = se
	}

	// Correlated update, with the saturated-secondary filter.
	if !(u.cfg.Hybrid && u.filter && tok.secSaturated && tok.secPredVal == actualVal) {
		ce, ok := tok.corrEntry, tok.corrExists
		max := ctrMax(u.cfg.CounterBits)
		switch {
		case !ok:
			ce = ubEntry{val: actualVal}
		case ce.val == actualVal:
			ce.ctr = satInc(ce.ctr, u.cfg.CounterInc, max)
		case ce.ctr == 0:
			ce.alt = ce.val
			ce.altValid = true
			ce.val = actualVal
		default:
			ce.ctr = satDec(ce.ctr, u.cfg.CounterDec)
			ce.alt = actualVal
			ce.altValid = true
		}
		u.corr[tok.key] = ce
	}

	u.advance(actual)
}

// advance pushes the actual trace onto the full-ID path history and
// applies the RHS actions.
func (u *Unbounded) advance(tr *trace.Trace) {
	copy(u.ids[1:u.size], u.ids[:u.size-1])
	u.ids[0] = tr.ID
	if u.n < u.size {
		u.n++
	}
	if !u.cfg.UseRHS {
		return
	}
	net := tr.NetCalls()
	switch {
	case net > 0:
		for i := 0; i < net; i++ {
			if len(u.rhs) >= u.cfg.RHSDepth {
				copy(u.rhs, u.rhs[1:])
				u.rhs = u.rhs[:len(u.rhs)-1]
			}
			u.rhs = append(u.rhs, ubSnap{ids: u.ids, n: u.n})
		}
	case tr.EndsInRet && tr.Calls == 0:
		if len(u.rhs) == 0 {
			return
		}
		top := u.rhs[len(u.rhs)-1]
		u.rhs = u.rhs[:len(u.rhs)-1]
		keep := history.SpliceKeep(u.size)
		if keep > u.size {
			keep = u.size
		}
		for i := keep; i < u.size; i++ {
			u.ids[i] = top.ids[i-keep]
		}
		if n := keep + top.n; n < u.size {
			u.n = n
		} else {
			u.n = u.size
		}
	}
}

// Stats implements NextTracePredictor.
func (u *Unbounded) Stats() Stats { return u.stats }

// TableEntries reports the number of distinct paths learned, a measure
// of each benchmark's working set (used to explain aliasing pressure).
func (u *Unbounded) TableEntries() int { return len(u.corr) }
