package predictor

import (
	"math/rand"
	"testing"
)

func TestConfidentValidation(t *testing.T) {
	base := Config{Depth: 2, IndexBits: 12}
	if _, err := NewConfident(ConfidentConfig{Predictor: base, CounterBits: 9}); err == nil {
		t.Error("counter bits 9 accepted")
	}
	if _, err := NewConfident(ConfidentConfig{Predictor: base, CounterBits: 2, Threshold: 5}); err == nil {
		t.Error("threshold above counter max accepted")
	}
	if _, err := NewConfident(ConfidentConfig{Predictor: Config{Depth: -1}}); err == nil {
		t.Error("bad predictor config accepted")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustNewConfident did not panic")
		}
	}()
	MustNewConfident(ConfidentConfig{Predictor: Config{Depth: -1}})
}

func TestConfidenceSeparatesStableFromChurn(t *testing.T) {
	c := MustNewConfident(ConfidentConfig{
		Predictor: Config{Depth: 1, IndexBits: 12},
		Threshold: 8,
	})
	rng := rand.New(rand.NewSource(21))
	// Stable pair A->B plus an unpredictable successor of C.
	a, b, x := tr(0x1004, 0), tr(0x1008, 0), tr(0x100c, 0)
	y, z := tr(0x1010, 0), tr(0x1014, 0)
	for i := 0; i < 4000; i++ {
		c.Predict()
		c.Update(a)
		c.Predict()
		c.Update(b)
		c.Predict()
		c.Update(x)
		c.Predict()
		if rng.Intn(2) == 0 {
			c.Update(y)
		} else {
			c.Update(z)
		}
	}
	st := c.ConfStats()
	if st.High == 0 || st.Low == 0 {
		t.Fatalf("confidence never split: %+v", st)
	}
	if st.HighAccuracy() <= st.LowAccuracy() {
		t.Errorf("high-confidence accuracy (%v) not above low (%v)",
			st.HighAccuracy(), st.LowAccuracy())
	}
	if st.HighAccuracy() < 98.5 {
		t.Errorf("high-confidence accuracy %v below 98.5%% on this stream", st.HighAccuracy())
	}
	if cov := st.Coverage(); cov <= 0 || cov >= 100 {
		t.Errorf("coverage %v degenerate", cov)
	}
}

func TestConfidenceResetsOnMiss(t *testing.T) {
	c := MustNewConfident(ConfidentConfig{
		Predictor: Config{Depth: 0, IndexBits: 10},
		Threshold: 3,
	})
	a, b := tr(0x1004, 0), tr(0x1008, 0)
	// Train A->A until confident.
	for i := 0; i < 10; i++ {
		c.Predict()
		c.Update(a)
	}
	_, confident := c.Predict()
	if !confident {
		t.Fatal("not confident after 10 consecutive correct predictions")
	}
	// One surprise resets the counter for that context.
	c.Update(b)
	c.Predict()
	c.Update(a) // back on the trained path; context [a] counter was reset
	_, confident = c.Predict()
	if confident {
		t.Error("still confident immediately after a misprediction reset")
	}
}

func TestConfidenceStatsZero(t *testing.T) {
	var s ConfStats
	if s.Coverage() != 0 || s.HighAccuracy() != 0 || s.LowAccuracy() != 0 {
		t.Error("zero stats produced nonzero rates")
	}
}
