package predictor

import (
	"bytes"
	"testing"
)

func TestBackendRegistryContents(t *testing.T) {
	want := []string{"basic", "costreduced", "hybrid", "tage", "unbounded"}
	got := BackendNames()
	if len(got) < len(want) {
		t.Fatalf("registered backends %v, want at least %v", got, want)
	}
	for _, name := range want {
		b, ok := BackendByName(name)
		if !ok {
			t.Errorf("backend %q not registered", name)
			continue
		}
		if b.Name != name || b.Family == "" || b.New == nil {
			t.Errorf("backend %q descriptor malformed: %+v", name, b)
		}
	}
	if b, _ := BackendByName("unbounded"); b.Snapshottable() {
		t.Error("unbounded backend claims to be snapshottable")
	}
	for _, name := range []string{"basic", "hybrid", "costreduced", "tage"} {
		if b, _ := BackendByName(name); !b.Snapshottable() {
			t.Errorf("backend %q should be snapshottable", name)
		}
	}
}

func TestBackendLegacyResolution(t *testing.T) {
	// Empty Backend keeps the pre-registry semantics.
	if p := MustNew(Config{Depth: 1, IndexBits: 10}); p == nil {
		t.Fatal("legacy basic construction failed")
	}
	if _, ok := MustNew(Config{Depth: 1, IndexBits: 10, Hybrid: true}).(*Hybrid); !ok {
		t.Fatal("legacy Hybrid flag no longer builds a hybrid")
	}
	// The basic predictor still refuses RHS.
	if _, err := New(Config{UseRHS: true}); err == nil {
		t.Fatal("basic + RHS accepted")
	}
	if _, err := New(Config{Backend: "basic", UseRHS: true}); err == nil {
		t.Fatal("explicit basic + RHS accepted")
	}
	// Unknown names are a construction-time error naming the registry.
	if _, err := New(Config{Backend: "nope"}); err == nil {
		t.Fatal("unknown backend accepted")
	}
	// The explicit names force their variant regardless of the flags.
	if _, ok := MustNew(Config{Backend: "hybrid"}).(*Hybrid); !ok {
		t.Fatal("explicit hybrid did not build a hybrid")
	}
	if _, ok := MustNew(Config{Backend: "unbounded", Hybrid: true}).(*Unbounded); !ok {
		t.Fatal("explicit unbounded did not build an unbounded predictor")
	}
}

// TestBackendSaveRestoreRoundTrip drives every snapshottable backend,
// saves it through its registry hooks, restores, and checks the resumed
// predictor is bit-identical — the per-backend contract the serving
// layer's snapshots rely on.
func TestBackendSaveRestoreRoundTrip(t *testing.T) {
	configs := map[string]Config{
		"basic":       {Backend: "basic", Depth: 5, IndexBits: 12},
		"hybrid":      {Backend: "hybrid", Depth: 7, IndexBits: 12, UseRHS: true},
		"costreduced": {Backend: "costreduced", Depth: 7, IndexBits: 12},
		"tage":        {Backend: "tage", Depth: 7, IndexBits: 12},
	}
	for _, b := range Backends() {
		if !b.Snapshottable() {
			continue
		}
		cfg, ok := configs[b.Name]
		if !ok {
			t.Errorf("no round-trip config for newly registered backend %q — add one", b.Name)
			continue
		}
		t.Run(b.Name, func(t *testing.T) {
			p, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			tageWorkload(p, 99, 10_000)
			state, err := b.Save(p)
			if err != nil {
				t.Fatal(err)
			}
			q, err := b.Restore(state, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if !q.Stats().Equal(p.Stats()) {
				t.Fatalf("restored stats %+v != %+v", q.Stats(), p.Stats())
			}
			for i := 0; i < 2_000; i++ {
				pp, pq := p.Predict(), q.Predict()
				if pp != pq {
					t.Fatalf("round %d: predictions diverge: %+v vs %+v", i, pp, pq)
				}
				next := tr(uint32(0x1000+(i%64)*0x40), uint8(i%64))
				p.Update(next)
				q.Update(next)
			}
			s1, _ := b.Save(p)
			s2, _ := b.Save(q)
			if !bytes.Equal(s1, s2) {
				t.Fatal("states diverged after resumed rounds")
			}
		})
	}
}

// TestPaperCodecRoundTrip round-trips a SavedState through the byte
// codec and checks structural equality at the bytes level.
func TestPaperCodecRoundTrip(t *testing.T) {
	p := MustNew(Config{Hybrid: true, UseRHS: true, Depth: 7, IndexBits: 12})
	tageWorkload(p, 5, 10_000)
	st, err := Save(p)
	if err != nil {
		t.Fatal(err)
	}
	enc, err := EncodeSavedState(st)
	if err != nil {
		t.Fatal(err)
	}
	if len(enc) != SavedStateSize(st) {
		t.Errorf("encoded %d bytes, SavedStateSize said %d", len(enc), SavedStateSize(st))
	}
	dec, err := DecodeSavedState(enc)
	if err != nil {
		t.Fatal(err)
	}
	enc2, err := EncodeSavedState(dec)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(enc, enc2) {
		t.Fatal("paper codec round trip not byte-identical")
	}
	// Strictness: truncation and trailing bytes are refused.
	if _, err := DecodeSavedState(enc[:len(enc)-1]); err == nil {
		t.Error("truncated state accepted")
	}
	if _, err := DecodeSavedState(append(append([]byte(nil), enc...), 0)); err == nil {
		t.Error("trailing bytes accepted")
	}
}
