// Package predictor implements the path-based next trace predictors of
// "Path-Based Next Trace Prediction" (Jacobson, Rotenberg, Smith;
// MICRO-30, 1997): the basic correlated predictor (§3.2), the hybrid
// predictor with a secondary table (§3.3), the Return History Stack
// enhancement (§3.4), unbounded-table variants (§5.2), the cost-reduced
// predictor that stores hashed identifiers (§5.5), and alternate trace
// prediction (§6).
package predictor

import (
	"fmt"

	"pathtrace/internal/faults"
	"pathtrace/internal/history"
	"pathtrace/internal/trace"
)

// Prediction is a predictor's output for the next trace.
type Prediction struct {
	ID    trace.ID // predicted next trace identifier
	Valid bool     // false when the predictor has nothing for this path

	// Alt is the alternate prediction (§6), when the source entry has
	// one. It is advisory: recovery hardware may fetch it when the
	// primary is wrong.
	Alt      trace.ID
	AltValid bool

	// Hashed is the predicted trace-cache index. For the cost-reduced
	// predictor (§5.5) this is all that is stored; for full predictors
	// it is simply ID.Hash().
	Hashed trace.HashedID

	// FromSecondary reports that the hybrid's secondary predictor
	// supplied the prediction.
	FromSecondary bool
}

// NextTracePredictor is the interface shared by every predictor
// variant. The call protocol is strict alternation:
//
//	for each completed trace t:
//	    p := pred.Predict()   // predict the NEXT trace
//	    ... compare p against the trace that actually follows ...
//	    pred.Update(actual)   // reveal the actual trace
//
// Update both trains the tables and advances the path history, so the
// next Predict sees the new path. This is the paper's "immediate
// update" regime (§4.1); package engine models delayed updates using
// the lower-level Hybrid API.
type NextTracePredictor interface {
	Predict() Prediction
	Update(actual *trace.Trace)
	Stats() Stats
}

// Stats accumulates accuracy counters inside a predictor.
type Stats struct {
	Predictions   uint64
	Correct       uint64
	Cold          uint64 // predictions with no valid entry
	FromSecondary uint64 // hybrid: predictions supplied by the secondary
	AltCorrect    uint64 // primary wrong but alternate right
	AltPresent    uint64 // primary wrong and an alternate existed
}

// Mispredictions returns Predictions - Correct.
func (s Stats) Mispredictions() uint64 { return s.Predictions - s.Correct }

// Add returns the counter-wise sum of two snapshots, for aggregating
// stats across predictors (e.g. the serving layer's per-shard and
// whole-server rollups).
func (s Stats) Add(o Stats) Stats {
	s.Predictions += o.Predictions
	s.Correct += o.Correct
	s.Cold += o.Cold
	s.FromSecondary += o.FromSecondary
	s.AltCorrect += o.AltCorrect
	s.AltPresent += o.AltPresent
	return s
}

// Sub returns the counter-wise difference s - o, for deriving the
// stats of a window between two snapshots of the same predictor.
func (s Stats) Sub(o Stats) Stats {
	s.Predictions -= o.Predictions
	s.Correct -= o.Correct
	s.Cold -= o.Cold
	s.FromSecondary -= o.FromSecondary
	s.AltCorrect -= o.AltCorrect
	s.AltPresent -= o.AltPresent
	return s
}

// Equal reports whether two snapshots hold identical counters. Stats
// is comparable, so this is ==; the method exists to make the serving
// layer's bit-identical-stats assertion read as what it is.
func (s Stats) Equal(o Stats) bool { return s == o }

// MissRate returns the misprediction rate in percent.
func (s Stats) MissRate() float64 {
	if s.Predictions == 0 {
		return 0
	}
	return 100 * float64(s.Mispredictions()) / float64(s.Predictions)
}

// AltMissRate returns the rate at which BOTH the primary and alternate
// predictions were wrong, in percent (§6, Figure 8).
func (s Stats) AltMissRate() float64 {
	if s.Predictions == 0 {
		return 0
	}
	both := s.Mispredictions() - s.AltCorrect
	return 100 * float64(both) / float64(s.Predictions)
}

// Event is a bitmask describing one Predict/Update round, delivered to
// an attached Recorder after the tables have been trained.
type Event uint8

const (
	// EvCorrect: the prediction matched the actual trace.
	EvCorrect Event = 1 << iota
	// EvCold: the path had no valid entry (the prediction was invalid).
	EvCold
	// EvFromSecondary: the hybrid's secondary table supplied the
	// prediction.
	EvFromSecondary
	// EvReplaced: training displaced a trained (valid) entry's value in
	// the correlated or secondary table — the table-churn signal.
	EvReplaced
)

// Recorder receives one Event per Predict/Update round, for live
// instrumentation of served predictors (hit/miss/cold/replacement
// counters). The hot path guards the single interface call with a nil
// check, so an unset Recorder costs one predicted branch and the
// attached case must not allocate: implementations should do nothing
// heavier than atomic counter updates. Stats() remains the
// authoritative accuracy record; a Recorder only mirrors it into an
// external metrics sink without snapshotting.
type Recorder interface {
	Record(Event)
}

// Config selects and sizes a predictor variant.
type Config struct {
	// Backend selects a registered predictor backend by name ("basic",
	// "hybrid", "costreduced", "unbounded", "tage"). Empty keeps the
	// legacy selection: "hybrid" when Hybrid is set, else "basic".
	Backend string

	// Depth is the path history depth: the number of traces besides the
	// most recent whose identifiers feed the index (0..7).
	Depth int

	// IndexBits sizes the correlated table at 1<<IndexBits entries.
	IndexBits int

	// DOLC overrides the index-generation configuration; when zero it
	// defaults to history.StandardDOLC(IndexBits, Depth).
	DOLC history.DOLC

	// Hybrid enables the secondary predictor and entry tags (§3.3).
	Hybrid bool

	// SecondaryBits sizes the secondary table (default 10 -> 1K entries).
	SecondaryBits int

	// UseRHS enables the Return History Stack (§3.4).
	UseRHS bool

	// RHSDepth bounds the RHS (default history.DefaultRHSDepth).
	RHSDepth int

	// TagBits is the width of the correlated entry tag (default 10).
	TagBits int

	// CostReduced stores only the hashed trace identifier in correlated
	// and secondary entries (§5.5).
	CostReduced bool

	// Counter policies. Defaults follow the paper: the correlated
	// counter is 2-bit, increment-by-1 / decrement-by-2; the secondary
	// counter is 4-bit and clears on a miss (decrement-by-15), so the
	// saturated-secondary override only ever applies to traces with a
	// truly dominant single successor.
	CounterBits    int
	CounterInc     int
	CounterDec     int
	SecCounterBits int
	SecCounterDec  int

	// SecondaryFilter applies the aliasing-pressure reduction: when the
	// secondary counter is saturated its prediction is used, and when
	// correct the correlated table is not updated (§3.3). Default true
	// for hybrids; settable to false for ablation.
	SecondaryFilter *bool

	// Recorder, when non-nil, receives one Event per Predict/Update
	// round. Nil (the default) is free on the hot path.
	Recorder Recorder

	// Faults, when non-nil, injects deterministic faults into the
	// prediction tables, the path history register and (via stuck-at-
	// zero mode) the counters. Wrong table contents can only cost
	// accuracy, never correctness — the predictor is a hint structure —
	// so injection is safe to enable on any run. Each predictor needs
	// its own injector; injectors are not concurrency-safe.
	Faults *faults.Injector
}

// withDefaults materialises unset fields.
func (c Config) withDefaults() (Config, error) {
	if c.Depth < 0 || c.Depth > history.MaxSize-1 {
		return c, fmt.Errorf("predictor: depth %d outside [0, %d]", c.Depth, history.MaxSize-1)
	}
	if c.IndexBits == 0 {
		c.IndexBits = 16
	}
	if c.IndexBits < 1 || c.IndexBits > 26 {
		return c, fmt.Errorf("predictor: IndexBits %d outside [1, 26]", c.IndexBits)
	}
	if c.DOLC == (history.DOLC{}) {
		c.DOLC = history.StandardDOLC(c.IndexBits, c.Depth)
	}
	if c.DOLC.Depth != c.Depth || c.DOLC.Index != c.IndexBits {
		return c, fmt.Errorf("predictor: DOLC %v inconsistent with depth %d / index %d",
			c.DOLC, c.Depth, c.IndexBits)
	}
	if err := c.DOLC.Validate(); err != nil {
		return c, err
	}
	if c.SecondaryBits == 0 {
		c.SecondaryBits = 10
	}
	if c.SecondaryBits < 1 || c.SecondaryBits > 20 {
		return c, fmt.Errorf("predictor: SecondaryBits %d outside [1, 20]", c.SecondaryBits)
	}
	if c.RHSDepth == 0 {
		c.RHSDepth = history.DefaultRHSDepth
	}
	if c.TagBits == 0 {
		c.TagBits = 10
	}
	if c.TagBits < 1 || c.TagBits > 16 {
		return c, fmt.Errorf("predictor: TagBits %d outside [1, 16]", c.TagBits)
	}
	if c.CounterBits == 0 {
		c.CounterBits = 2
	}
	if c.CounterInc == 0 {
		c.CounterInc = 1
	}
	if c.CounterDec == 0 {
		c.CounterDec = 2
	}
	if c.SecCounterBits == 0 {
		c.SecCounterBits = 4
	}
	if c.SecCounterDec == 0 {
		c.SecCounterDec = 15
	}
	if c.SecondaryFilter == nil {
		t := true
		c.SecondaryFilter = &t
	}
	return c, nil
}

// New constructs the predictor variant selected by cfg, resolved
// through the backend registry: cfg.Backend by name, or the legacy
// Hybrid-flag selection between the paper backends when unset.
func New(cfg Config) (NextTracePredictor, error) {
	b, err := ResolveBackend(cfg)
	if err != nil {
		return nil, err
	}
	return b.New(cfg)
}

// MustNew is New for static configurations; it panics on error.
func MustNew(cfg Config) NextTracePredictor {
	p, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return p
}

func boolPtr(b bool) *bool { return &b }

// NoFilter is a convenience for ablation configs.
func NoFilter() *bool { return boolPtr(false) }
