package trace

import (
	"math/rand"
	"testing"
	"testing/quick"

	"pathtrace/internal/asm"
	"pathtrace/internal/isa"
	"pathtrace/internal/sim"
)

func TestIDRoundTrip(t *testing.T) {
	id := MakeID(0x0001_0040, 0b101101)
	if got := id.StartPC(); got != 0x0001_0040 {
		t.Errorf("StartPC = %#x", got)
	}
	if got := id.Outcomes(); got != 0b101101 {
		t.Errorf("Outcomes = %#b", got)
	}
	if got, want := id.String(), "0x10040:TNTTNT"; got != want {
		t.Errorf("String = %q, want %q", got, want)
	}
}

func TestIDStringSingleAlloc(t *testing.T) {
	// The formatting buffer must stay on the stack: the only allocation
	// allowed is the returned string itself.
	id := MakeID(0xfffffffc, 0b111111)
	var sink string
	allocs := testing.AllocsPerRun(100, func() { sink = id.String() })
	if allocs > 1 {
		t.Errorf("ID.String allocates %v times, want <= 1", allocs)
	}
	_ = sink
}

func TestIDIgnoresHighPCBits(t *testing.T) {
	// Only 30 bits of word address are kept (32-bit byte PC).
	a := MakeID(0xfffffffc, 0)
	if a.StartPC() != 0xfffffffc {
		t.Errorf("StartPC = %#x", a.StartPC())
	}
}

func TestHashLayout(t *testing.T) {
	// Per §3.2: h[1:0] = outcomes of first two branches; h[3:2] = low two
	// bits of the word PC; h[9:4] = next six PC bits XOR remaining outcomes.
	pc := uint32(0b1010_1101_00) << 2 // word addr 0b1010110100
	outs := uint8(0b11_01_10)         // br0=0, br1=1, rest 0b1101
	id := MakeID(pc, outs)
	h := uint32(id.Hash())
	if got := h & 3; got != 0b10 {
		t.Errorf("h[1:0] = %#b, want 0b10", got)
	}
	if got := h >> 2 & 3; got != 0b00 {
		t.Errorf("h[3:2] = %#b, want 0b00 (low word-PC bits)", got)
	}
	wantUpper := (uint32(0b10101101) & 0x3f) ^ 0b1101
	if got := h >> 4; got != wantUpper {
		t.Errorf("h[9:4] = %#b, want %#b", got, wantUpper)
	}
}

func TestHashRangeQuick(t *testing.T) {
	f := func(pc uint32, outs uint8) bool {
		h := MakeID(pc&^3, outs&0x3f).Hash()
		return h < 1<<HashBits
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHashDeterministic(t *testing.T) {
	f := func(pc uint32, outs uint8) bool {
		id := MakeID(pc, outs)
		return id.Hash() == id.Hash()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// mkRetired builds a straight-line retired record.
func seqInstr(pc uint32) sim.Retired {
	return sim.Retired{PC: pc, Op: isa.ADD, Ctrl: isa.CtrlNone, NextPC: pc + 4}
}

func condBr(pc uint32, taken bool, target uint32) sim.Retired {
	next := pc + 4
	if taken {
		next = target
	}
	return sim.Retired{PC: pc, Op: isa.BNE, Ctrl: isa.CtrlCondDir, Taken: taken, NextPC: next}
}

func collect(t *testing.T, cfg Config) (*Selector, *[]Trace) {
	t.Helper()
	var out []Trace
	s, err := NewSelector(cfg, func(tr *Trace) {
		cp := *tr
		cp.Branches = append([]Branch(nil), tr.Branches...)
		out = append(out, cp)
	})
	if err != nil {
		t.Fatal(err)
	}
	// The slice header escapes; return a pointer so the caller sees appends.
	return s, &out
}

func TestSelectorMaxLen(t *testing.T) {
	s, out := collect(t, DefaultConfig())
	pc := uint32(0x10000)
	for i := 0; i < 40; i++ {
		s.Feed(seqInstr(pc))
		pc += 4
	}
	s.Flush()
	traces := *out
	if len(traces) != 3 {
		t.Fatalf("got %d traces, want 3", len(traces))
	}
	if traces[0].Len != 16 || traces[1].Len != 16 || traces[2].Len != 8 {
		t.Errorf("lengths = %d,%d,%d", traces[0].Len, traces[1].Len, traces[2].Len)
	}
	if traces[1].StartPC != 0x10000+16*4 {
		t.Errorf("trace 1 start = %#x", traces[1].StartPC)
	}
	if traces[0].NextPC != traces[1].StartPC {
		t.Errorf("NextPC chain broken: %#x vs %#x", traces[0].NextPC, traces[1].StartPC)
	}
	if traces[0].ID != MakeID(0x10000, 0) {
		t.Errorf("ID = %v", traces[0].ID)
	}
}

func TestSelectorBranchLimitAndOutcomes(t *testing.T) {
	s, out := collect(t, DefaultConfig())
	pc := uint32(0x10000)
	// 7 conditional branches, alternating T/N; 6th ends the trace.
	for i := 0; i < 7; i++ {
		taken := i%2 == 0
		r := condBr(pc, taken, pc+4) // target == fallthrough; fine for naming
		s.Feed(r)
		pc = r.NextPC
	}
	s.Flush()
	traces := *out
	if len(traces) != 2 {
		t.Fatalf("got %d traces, want 2", len(traces))
	}
	if traces[0].NumBr != 6 || traces[0].Len != 6 {
		t.Errorf("trace 0: NumBr=%d Len=%d", traces[0].NumBr, traces[0].Len)
	}
	// Outcomes: T,N,T,N,T,N => bits 0,2,4 set = 0b010101.
	if traces[0].ID.Outcomes() != 0b010101 {
		t.Errorf("outcomes = %#b, want 0b010101", traces[0].ID.Outcomes())
	}
	if len(traces[0].Branches) != 6 {
		t.Errorf("branch records = %d", len(traces[0].Branches))
	}
}

func TestSelectorIndirectTerminates(t *testing.T) {
	s, out := collect(t, DefaultConfig())
	s.Feed(seqInstr(0x10000))
	s.Feed(sim.Retired{PC: 0x10004, Op: isa.JR, Ctrl: isa.CtrlJumpInd, NextPC: 0x20000})
	s.Feed(seqInstr(0x20000))
	s.Feed(sim.Retired{PC: 0x20004, Op: isa.JALR, Ctrl: isa.CtrlCallInd, NextPC: 0x30000})
	s.Feed(sim.Retired{PC: 0x30000, Op: isa.RET, Ctrl: isa.CtrlReturn, NextPC: 0x20008})
	s.Flush()
	traces := *out
	if len(traces) != 3 {
		t.Fatalf("got %d traces, want 3", len(traces))
	}
	if traces[0].Len != 2 || traces[0].EndsInRet {
		t.Errorf("trace 0 = %+v", traces[0])
	}
	if traces[1].Calls != 1 || traces[1].NetCalls() != 1 {
		t.Errorf("trace 1 calls = %d net %d", traces[1].Calls, traces[1].NetCalls())
	}
	if !traces[2].EndsInRet || traces[2].NetCalls() != -1 {
		t.Errorf("trace 2 = %+v net=%d", traces[2], traces[2].NetCalls())
	}
}

func TestSelectorCallAndReturnSameTrace(t *testing.T) {
	s, out := collect(t, DefaultConfig())
	// call then return inside one trace: net calls 0.
	s.Feed(sim.Retired{PC: 0x10000, Op: isa.JAL, Ctrl: isa.CtrlCallDir, NextPC: 0x20000})
	s.Feed(sim.Retired{PC: 0x20000, Op: isa.RET, Ctrl: isa.CtrlReturn, NextPC: 0x10004})
	s.Flush()
	traces := *out
	if len(traces) != 1 {
		t.Fatalf("got %d traces, want 1", len(traces))
	}
	tr := traces[0]
	if tr.Calls != 1 || !tr.EndsInRet || tr.NetCalls() != 0 {
		t.Errorf("trace = %+v net=%d", tr, tr.NetCalls())
	}
	// Direct call is embedded mid-trace unless indirect: here the RET ended it.
	if tr.Len != 2 {
		t.Errorf("Len = %d, want 2", tr.Len)
	}
}

func TestSelectorHaltEndsTrace(t *testing.T) {
	s, out := collect(t, DefaultConfig())
	s.Feed(seqInstr(0x10000))
	s.Feed(sim.Retired{PC: 0x10004, Op: isa.HALT, Ctrl: isa.CtrlHalt, NextPC: 0x10008})
	traces := *out
	if len(traces) != 1 || !traces[0].EndsHalt {
		t.Fatalf("traces = %+v", traces)
	}
}

func TestSelectorConfigValidation(t *testing.T) {
	if _, err := NewSelector(Config{MaxLen: 0, MaxBranches: 6}, func(*Trace) {}); err == nil {
		t.Error("MaxLen 0 accepted")
	}
	if _, err := NewSelector(Config{MaxLen: 16, MaxBranches: 7}, func(*Trace) {}); err == nil {
		t.Error("MaxBranches 7 accepted")
	}
	if _, err := NewSelector(DefaultConfig(), nil); err == nil {
		t.Error("nil emit accepted")
	}
}

// Property: trace selection exactly partitions the instruction stream.
func TestSelectorPartitionsStream(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for iter := 0; iter < 50; iter++ {
		var fed []sim.Retired
		pc := uint32(0x10000)
		n := 1 + rng.Intn(200)
		for i := 0; i < n; i++ {
			var r sim.Retired
			switch rng.Intn(6) {
			case 0:
				r = condBr(pc, rng.Intn(2) == 0, pc+uint32(rng.Intn(64))*4+4)
			case 1:
				r = sim.Retired{PC: pc, Op: isa.JAL, Ctrl: isa.CtrlCallDir, NextPC: uint32(0x10000 + rng.Intn(1024)*4)}
			case 2:
				r = sim.Retired{PC: pc, Op: isa.RET, Ctrl: isa.CtrlReturn, NextPC: uint32(0x10000 + rng.Intn(1024)*4)}
			default:
				r = seqInstr(pc)
			}
			fed = append(fed, r)
			pc = r.NextPC
		}
		var total, maxLen, maxBr int
		var firstPCs []uint32
		s, err := NewSelector(DefaultConfig(), func(tr *Trace) {
			total += tr.Len
			if tr.Len > maxLen {
				maxLen = tr.Len
			}
			if tr.NumBr > maxBr {
				maxBr = tr.NumBr
			}
			firstPCs = append(firstPCs, tr.StartPC)
		})
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range fed {
			s.Feed(r)
		}
		s.Flush()
		if total != len(fed) {
			t.Fatalf("partition covers %d of %d instructions", total, len(fed))
		}
		if maxLen > DefaultMaxLen || maxBr > DefaultMaxBranches {
			t.Fatalf("limits exceeded: len %d br %d", maxLen, maxBr)
		}
		if len(firstPCs) == 0 || firstPCs[0] != fed[0].PC {
			t.Fatalf("first trace starts at %#x, want %#x", firstPCs[0], fed[0].PC)
		}
		if s.Instrs() != uint64(len(fed)) {
			t.Fatalf("Instrs() = %d, want %d", s.Instrs(), len(fed))
		}
	}
}

// Integration: select traces from a real simulated program and check
// structural invariants.
func TestSelectorOnRealProgram(t *testing.T) {
	prog := asm.MustAssemble(`
main:   li s0, 50
outer:  li t0, 5
inner:  addi t0, t0, -1
        bnez t0, inner
        jal work
        addi s0, s0, -1
        bnez s0, outer
        halt
work:   li t1, 3
w1:     addi t1, t1, -1
        bnez t1, w1
        ret
`)
	c := sim.MustNew(prog)
	var traces []Trace
	s, err := NewSelector(DefaultConfig(), func(tr *Trace) {
		cp := *tr
		cp.Branches = append([]Branch(nil), tr.Branches...)
		traces = append(traces, cp)
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Run(0, s.Feed); err != nil {
		t.Fatal(err)
	}
	s.Flush()
	if len(traces) < 10 {
		t.Fatalf("only %d traces", len(traces))
	}
	var instrs int
	for i, tr := range traces {
		instrs += tr.Len
		if tr.Len < 1 || tr.Len > DefaultMaxLen {
			t.Errorf("trace %d bad length %d", i, tr.Len)
		}
		if tr.NumBr > DefaultMaxBranches {
			t.Errorf("trace %d has %d branches", i, tr.NumBr)
		}
		// Indirect control flow only at trace end.
		for j, b := range tr.Branches {
			if b.Ctrl.Indirect() && j != len(tr.Branches)-1 {
				t.Errorf("trace %d: indirect branch mid-trace", i)
			}
		}
		if i > 0 && traces[i-1].NextPC != tr.StartPC {
			t.Errorf("trace %d start %#x does not chain from %#x", i, tr.StartPC, traces[i-1].NextPC)
		}
		if tr.ID != MakeID(tr.StartPC, tr.ID.Outcomes()) {
			t.Errorf("trace %d inconsistent ID", i)
		}
		if tr.Hash != tr.ID.Hash() {
			t.Errorf("trace %d inconsistent hash", i)
		}
	}
	if instrs != int(c.InstrCount) {
		t.Errorf("traces cover %d instructions, CPU retired %d", instrs, c.InstrCount)
	}
	if !traces[len(traces)-1].EndsHalt {
		t.Error("last trace does not end in halt")
	}
}

func TestSelectorRecordsMemoryReferences(t *testing.T) {
	prog := asm.MustAssemble(`
        .data
buf:    .space 64
        .text
main:   la   t0, buf
        li   t1, 5
loop:   sw   t1, 0(t0)
        lw   t2, 0(t0)
        lbu  t3, 1(t0)
        addi t0, t0, 4
        addi t1, t1, -1
        bnez t1, loop
        halt
`)
	c := sim.MustNew(prog)
	var loads, stores int
	var lastAddrOK = true
	s, err := NewSelector(DefaultConfig(), func(tr *Trace) {
		for _, m := range tr.Mems {
			if m.Store {
				stores++
			} else {
				loads++
			}
			if m.Addr < 0x0010_0000 || m.Addr > 0x0010_0040+4 {
				lastAddrOK = false
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Run(0, s.Feed); err != nil {
		t.Fatal(err)
	}
	s.Flush()
	// 5 iterations: 1 store + 2 loads each.
	if stores != 5 || loads != 10 {
		t.Errorf("stores=%d loads=%d, want 5/10", stores, loads)
	}
	if !lastAddrOK {
		t.Error("memory reference address outside the buffer")
	}
}
