// Package trace implements trace selection and naming for a trace-cache
// front end, following §3.1 and §4.2 of "Path-Based Next Trace
// Prediction" (Jacobson, Rotenberg, Smith; MICRO-30, 1997).
//
// A trace is a dynamic sequence of up to MaxLen instructions containing
// up to MaxBranches embedded conditional branches. Direct jumps and
// direct calls may be embedded, because their targets are static; any
// instruction with an indirect target (indirect jump, indirect call, or
// return) must be the last instruction of a trace, so that a trace is
// uniquely identified by its starting PC plus the outcomes of its
// conditional branches.
package trace

import (
	"fmt"
	"strconv"

	"pathtrace/internal/isa"
	"pathtrace/internal/sim"
)

// Default trace selection limits (paper §3.1: 16-instruction traces
// with up to six embedded conditional branches).
const (
	DefaultMaxLen      = 16
	DefaultMaxBranches = 6
)

// ID is the canonical trace identifier: 36 bits comprising the
// word-address of the starting PC (30 bits) and the outcomes of up to
// six embedded conditional branches (6 bits, bit i = outcome of the
// i-th branch, 1 = taken, zero beyond the last branch).
type ID uint64

// idBranchBits is the number of branch-outcome bits in an ID.
const idBranchBits = 6

// IDBits is the total width of a trace identifier (30 PC bits plus
// idBranchBits outcome bits).
const IDBits = 30 + idBranchBits

// MakeID builds a trace identifier from a starting PC and the packed
// branch outcomes.
func MakeID(startPC uint32, outcomes uint8) ID {
	return ID(startPC>>2)&0x3fffffff<<idBranchBits | ID(outcomes)&0x3f
}

// StartPC recovers the starting byte address of the trace.
func (id ID) StartPC() uint32 { return uint32(id>>idBranchBits) << 2 }

// Outcomes recovers the packed conditional branch outcomes.
func (id ID) Outcomes() uint8 { return uint8(id) & 0x3f }

// String renders the ID as "pc:TNT..." with one letter per outcome
// bit. It formats into a stack buffer (one allocation, for the
// returned string, instead of the escaping []byte plus fmt state a
// Sprintf-based rendering costs); even so it is for error paths and
// diagnostics only — hot paths work with the raw ID.
func (id ID) String() string {
	// "0x" + up to 8 hex digits + ":" + idBranchBits outcome letters.
	var buf [2 + 8 + 1 + idBranchBits]byte
	b := append(buf[:0], '0', 'x')
	b = strconv.AppendUint(b, uint64(id.StartPC()), 16)
	b = append(b, ':')
	out := id.Outcomes()
	for i := 0; i < idBranchBits; i++ {
		if out>>i&1 == 1 {
			b = append(b, 'T')
		} else {
			b = append(b, 'N')
		}
	}
	return string(b)
}

// HashBits is the width of a hashed trace identifier. The paper uses
// ~10-bit hashed IDs: the correlated table's tag is "the low 10 bits of
// the hashed identifier", and the cost-reduced predictor stores the
// 10-bit hash in place of the full ID.
const HashBits = 10

// HashedID is a HashBits-bit hash of a trace ID, used in the path
// history register, as the correlated-table tag, as the secondary-table
// index, and as the trace-cache index.
type HashedID uint16

// Hash compresses the trace ID per §3.2 of the paper: the outcomes of
// the first two conditional branches form the least significant two
// bits; the two least significant bits of the (word) starting PC are the
// next two; the upper bits are the next PC bits exclusive-ored with the
// remaining branch outcomes (zero beyond the last branch).
func (id ID) Hash() HashedID {
	pcw := uint32(id >> idBranchBits) // word address of start PC
	outs := uint32(id) & 0x3f
	h := outs & 3
	h |= (pcw & 3) << 2
	upper := (pcw >> 2 & 0x3f) ^ (outs >> 2)
	h |= upper << 4
	return HashedID(h & (1<<HashBits - 1))
}

// Branch records one control-flow instruction inside a trace, as needed
// by the sequential multiple-branch baseline predictor (§5.1).
type Branch struct {
	PC     uint32
	Ctrl   isa.CtrlClass
	Taken  bool   // conditional branches only
	Target uint32 // actual successor PC
}

// MemRef records one data-memory access inside a trace, consumed by
// the engine's data-cache model.
type MemRef struct {
	Addr  uint32
	Store bool
}

// Trace is one selected trace plus the metadata every front-end
// component consumes.
type Trace struct {
	ID        ID
	Hash      HashedID
	StartPC   uint32
	Len       int  // instructions in the trace
	NumBr     int  // embedded conditional branches
	Calls     int  // procedure calls contained in the trace
	EndsInRet bool // last instruction is a return
	EndsHalt  bool // trace ended because the program halted
	NextPC    uint32

	// Branches lists every control-flow instruction in the trace, in
	// order (conditional branches, jumps, calls, returns). The backing
	// array is reused by the Selector; copy it to retain past the
	// callback.
	Branches []Branch

	// Mems lists the trace's data-memory accesses in order. Reused like
	// Branches.
	Mems []MemRef
}

// NetCalls is the trace's call count adjusted for a terminal return:
// "a field is added to each trace indicating the number of calls it
// contains; if the trace ends in a return, the number of calls is
// decremented by one" (§3.4).
func (t *Trace) NetCalls() int {
	n := t.Calls
	if t.EndsInRet {
		n--
	}
	return n
}

// Config controls trace selection limits.
type Config struct {
	MaxLen      int // maximum instructions per trace
	MaxBranches int // maximum embedded conditional branches

	// BreakOnLoopClosure additionally ends a trace (once at least half
	// full) after a backward taken branch, so loop bodies map to stable
	// trace identifiers — a variant of the paper's "beginning and ending
	// on basic block boundaries" heuristic. It trades shorter traces and
	// invisible fixed-trip-count loop exits for phase-stable loop IDs;
	// off by default, studied by the trace-selection ablation.
	BreakOnLoopClosure bool
}

// DefaultConfig returns the paper's selection limits.
func DefaultConfig() Config {
	return Config{MaxLen: DefaultMaxLen, MaxBranches: DefaultMaxBranches}
}

func (c Config) validate() error {
	if c.MaxLen < 1 {
		return fmt.Errorf("trace: MaxLen %d < 1", c.MaxLen)
	}
	if c.MaxBranches < 0 || c.MaxBranches > idBranchBits {
		return fmt.Errorf("trace: MaxBranches %d outside [0, %d]", c.MaxBranches, idBranchBits)
	}
	return nil
}

// Selector partitions a retired-instruction stream into traces.
type Selector struct {
	cfg  Config
	emit func(*Trace)

	cur      Trace
	building bool
	outcomes uint8

	traces uint64
	instrs uint64
}

// NewSelector returns a selector that invokes emit for every completed
// trace. The *Trace passed to emit (including its Branches slice) is
// reused; emit must copy whatever it retains.
func NewSelector(cfg Config, emit func(*Trace)) (*Selector, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if emit == nil {
		return nil, fmt.Errorf("trace: nil emit callback")
	}
	return &Selector{cfg: cfg, emit: emit}, nil
}

// Feed adds one retired instruction to the trace under construction,
// emitting a completed trace when a selection limit is reached.
func (s *Selector) Feed(r sim.Retired) {
	if !s.building {
		s.cur = Trace{StartPC: r.PC, Branches: s.cur.Branches[:0], Mems: s.cur.Mems[:0]}
		s.outcomes = 0
		s.building = true
	}
	s.cur.Len++
	s.instrs++
	if r.Mem != sim.MemNone {
		s.cur.Mems = append(s.cur.Mems, MemRef{Addr: r.MemAddr, Store: r.Mem == sim.MemStore})
	}

	end := false
	switch r.Ctrl {
	case isa.CtrlCondDir:
		s.cur.Branches = append(s.cur.Branches, Branch{PC: r.PC, Ctrl: r.Ctrl, Taken: r.Taken, Target: r.NextPC})
		if r.Taken {
			s.outcomes |= 1 << s.cur.NumBr
		}
		s.cur.NumBr++
		if s.cur.NumBr >= s.cfg.MaxBranches {
			end = true
		}
		if s.cfg.BreakOnLoopClosure && r.Taken && r.NextPC <= r.PC && s.cur.Len >= s.cfg.MaxLen/2 {
			end = true
		}
	case isa.CtrlJumpDir:
		s.cur.Branches = append(s.cur.Branches, Branch{PC: r.PC, Ctrl: r.Ctrl, Taken: true, Target: r.NextPC})
		if s.cfg.BreakOnLoopClosure && r.NextPC <= r.PC && s.cur.Len >= s.cfg.MaxLen/2 {
			end = true
		}
	case isa.CtrlCallDir, isa.CtrlCallInd:
		s.cur.Branches = append(s.cur.Branches, Branch{PC: r.PC, Ctrl: r.Ctrl, Taken: true, Target: r.NextPC})
		s.cur.Calls++
		if r.Ctrl.Indirect() {
			end = true
		}
	case isa.CtrlJumpInd:
		s.cur.Branches = append(s.cur.Branches, Branch{PC: r.PC, Ctrl: r.Ctrl, Taken: true, Target: r.NextPC})
		end = true
	case isa.CtrlReturn:
		s.cur.Branches = append(s.cur.Branches, Branch{PC: r.PC, Ctrl: r.Ctrl, Taken: true, Target: r.NextPC})
		s.cur.EndsInRet = true
		end = true
	case isa.CtrlHalt:
		s.cur.EndsHalt = true
		end = true
	}
	if s.cur.Len >= s.cfg.MaxLen {
		end = true
	}
	if end {
		s.finish(r.NextPC)
	}
}

// Flush emits any partially built trace (used at the end of a stream
// that did not terminate in HALT, e.g. an instruction-count limit).
func (s *Selector) Flush() {
	if s.building && s.cur.Len > 0 {
		s.finish(0)
	}
}

func (s *Selector) finish(nextPC uint32) {
	s.cur.NextPC = nextPC
	s.cur.ID = MakeID(s.cur.StartPC, s.outcomes)
	s.cur.Hash = s.cur.ID.Hash()
	s.traces++
	s.building = false
	s.emit(&s.cur)
}

// Traces reports the number of traces emitted so far.
func (s *Selector) Traces() uint64 { return s.traces }

// Instrs reports the number of instructions consumed so far.
func (s *Selector) Instrs() uint64 { return s.instrs }
