package sim

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"pathtrace/internal/asm"
	"pathtrace/internal/isa"
)

// Differential testing: generate random straight-line ALU programs,
// evaluate them with an independent Go interpreter over the same
// semantics, and compare every register the program outputs. This
// catches subtle ISA-semantics bugs (sign extension, shift masking,
// logical-immediate zero extension, division edge cases) that
// hand-written unit tests miss.

type refState struct {
	regs [isa.NumRegs]uint32
}

func (r *refState) set(reg isa.Reg, v uint32) {
	if reg != isa.Zero {
		r.regs[reg] = v
	}
}

// evalALU applies one R/I-type ALU instruction to the reference state.
func (r *refState) evalALU(in isa.Instr) {
	rs, rt := r.regs[in.Rs], r.regs[in.Rt]
	switch in.Op {
	case isa.ADD:
		r.set(in.Rd, rs+rt)
	case isa.SUB:
		r.set(in.Rd, rs-rt)
	case isa.MUL:
		r.set(in.Rd, rs*rt)
	case isa.DIV:
		if rt == 0 {
			r.set(in.Rd, 0)
		} else {
			r.set(in.Rd, uint32(int32(rs)/int32(rt)))
		}
	case isa.REM:
		if rt == 0 {
			r.set(in.Rd, 0)
		} else {
			r.set(in.Rd, uint32(int32(rs)%int32(rt)))
		}
	case isa.AND:
		r.set(in.Rd, rs&rt)
	case isa.OR:
		r.set(in.Rd, rs|rt)
	case isa.XOR:
		r.set(in.Rd, rs^rt)
	case isa.NOR:
		r.set(in.Rd, ^(rs | rt))
	case isa.SLT:
		r.set(in.Rd, b2u(int32(rs) < int32(rt)))
	case isa.SLTU:
		r.set(in.Rd, b2u(rs < rt))
	case isa.SLLV:
		r.set(in.Rd, rs<<(rt&31))
	case isa.SRLV:
		r.set(in.Rd, rs>>(rt&31))
	case isa.SRAV:
		r.set(in.Rd, uint32(int32(rs)>>(rt&31)))
	case isa.ADDI:
		r.set(in.Rt, rs+uint32(in.Imm))
	case isa.ANDI:
		r.set(in.Rt, rs&(uint32(in.Imm)&0xffff))
	case isa.ORI:
		r.set(in.Rt, rs|(uint32(in.Imm)&0xffff))
	case isa.XORI:
		r.set(in.Rt, rs^(uint32(in.Imm)&0xffff))
	case isa.SLTI:
		r.set(in.Rt, b2u(int32(rs) < in.Imm))
	case isa.SLTIU:
		r.set(in.Rt, b2u(rs < uint32(in.Imm)))
	case isa.SLL:
		r.set(in.Rt, rs<<(uint32(in.Imm)&31))
	case isa.SRL:
		r.set(in.Rt, rs>>(uint32(in.Imm)&31))
	case isa.SRA:
		r.set(in.Rt, uint32(int32(rs)>>(uint32(in.Imm)&31)))
	case isa.LUI:
		r.set(in.Rt, uint32(in.Imm)<<16)
	}
}

var aluOps = []isa.Opcode{
	isa.ADD, isa.SUB, isa.MUL, isa.DIV, isa.REM, isa.AND, isa.OR, isa.XOR,
	isa.NOR, isa.SLT, isa.SLTU, isa.SLLV, isa.SRLV, isa.SRAV,
	isa.ADDI, isa.ANDI, isa.ORI, isa.XORI, isa.SLTI, isa.SLTIU,
	isa.SLL, isa.SRL, isa.SRA, isa.LUI,
}

// genALU returns a random ALU instruction over registers t0..s7
// (indices 8..23), leaving the special registers alone.
func genALU(rng *rand.Rand) isa.Instr {
	reg := func() isa.Reg { return isa.Reg(8 + rng.Intn(16)) }
	op := aluOps[rng.Intn(len(aluOps))]
	in := isa.Instr{Op: op}
	switch op.Format() {
	case isa.FormatR:
		in.Rd, in.Rs, in.Rt = reg(), reg(), reg()
	case isa.FormatI:
		in.Rt, in.Rs = reg(), reg()
		switch op {
		case isa.SLL, isa.SRL, isa.SRA:
			in.Imm = int32(rng.Intn(32))
		case isa.LUI:
			in.Imm = int32(rng.Intn(1 << 16))
		case isa.ANDI, isa.ORI, isa.XORI:
			in.Imm = int32(rng.Intn(1 << 16))
		default:
			in.Imm = int32(int16(rng.Uint32()))
		}
	}
	return in
}

func TestSimulatorDifferentialALU(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for iter := 0; iter < 100; iter++ {
		n := 5 + rng.Intn(60)
		instrs := make([]isa.Instr, n)
		for i := range instrs {
			instrs[i] = genALU(rng)
		}

		// Build assembly source: seed some registers, run the block,
		// output every working register.
		var b strings.Builder
		b.WriteString("main:\n")
		ref := &refState{}
		for i := 0; i < 16; i++ {
			v := rng.Uint32()
			reg := isa.Reg(8 + i)
			fmt.Fprintf(&b, "        li %s, %d\n", reg, int64(v))
			ref.set(reg, v)
		}
		for _, in := range instrs {
			fmt.Fprintf(&b, "        %s\n", in)
			ref.evalALU(in)
		}
		for i := 0; i < 16; i++ {
			fmt.Fprintf(&b, "        out %s\n", isa.Reg(8+i))
		}
		b.WriteString("        halt\n")

		prog, err := asm.Assemble(b.String())
		if err != nil {
			t.Fatalf("iter %d: assemble: %v\n%s", iter, err, b.String())
		}
		cpu := MustNew(prog)
		if err := cpu.Run(0, nil); err != nil {
			t.Fatalf("iter %d: run: %v", iter, err)
		}
		if len(cpu.Output) != 16 {
			t.Fatalf("iter %d: %d outputs", iter, len(cpu.Output))
		}
		for i := 0; i < 16; i++ {
			want := ref.regs[8+i]
			if cpu.Output[i] != want {
				t.Fatalf("iter %d: register %s = %#x, reference %#x\nprogram:\n%s",
					iter, isa.Reg(8+i), cpu.Output[i], want, b.String())
			}
		}
	}
}

// The assembler's disassembly (Instr.String) must round-trip through
// the parser for every generated ALU instruction — the differential
// test above depends on it, and it validates the assembler/disassembler
// pair against each other.
func TestDisassemblyRoundTripsThroughAssembler(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	for iter := 0; iter < 500; iter++ {
		in := genALU(rng)
		src := "main: " + in.String() + "\nhalt\n"
		prog, err := asm.Assemble(src)
		if err != nil {
			t.Fatalf("assemble %q: %v", in.String(), err)
		}
		got, err := prog.Instr(prog.TextBase)
		if err != nil {
			t.Fatal(err)
		}
		// Normalise: the immediate of logical ops parses as unsigned.
		if got.String() != in.String() {
			t.Fatalf("round trip: %q -> %q", in.String(), got.String())
		}
	}
}
